// SGX: attack a victim running inside an SGX enclave (§9). The enclave's
// memory is sealed — nothing in the system can read the secret array —
// but the branch prediction unit is shared with the outside, and the
// malicious OS can single-step the enclave with APIC-timer interrupts.
// The spy recovers the enclave's secret with a lower error rate than in
// user space because the OS suppresses all other activity.
package main

import (
	"fmt"
	"log"

	"branchscope"
)

func main() {
	sys := branchscope.NewSystem(branchscope.Skylake(), 7)

	// The sealed secret lives only inside the enclave's closure.
	secret := branchscope.NewRand(0x5ea1).Bits(96)
	enclave := branchscope.LaunchEnclave(sys, "trojan",
		branchscope.LoopingSecretArraySender(secret, 0))
	defer enclave.Destroy()

	// The spy is a normal process; the attacker-controlled OS steps the
	// enclave one branch at a time between prime and probe.
	spy := sys.NewProcess("spy")
	sess, err := branchscope.NewSession(spy, branchscope.NewRand(1), branchscope.AttackConfig{
		Search: branchscope.SearchConfig{
			TargetAddr: branchscope.SecretBranchAddr,
			Focused:    true,
		},
	})
	if err != nil {
		log.Fatalf("pre-attack search failed: %v", err)
	}

	errs := 0
	for _, want := range secret {
		// Enclave implements the same Stepper interface as a regular
		// process: the attack code is identical (§9's point).
		if sess.SpyBit(enclave, nil, nil) != want {
			errs++
		}
	}
	fmt.Printf("leaked %d bits out of the enclave, %d error(s)\n", len(secret), errs)
}
