// Poisoning: run the BranchScope collision primitive in reverse (§1).
// Instead of reading the victim's branch direction, the attacker *writes*
// the prediction: it primes the victim's PHT entry against the branch's
// actual direction, forcing a misprediction on every execution — the
// directional-predictor half of a Spectre-style branch-poisoning setup,
// which the paper identifies as sharing BranchScope's mechanism.
package main

import (
	"context"
	"fmt"
	"log"

	"branchscope"
)

func main() {
	r, err := branchscope.RunPoisoningDemo(context.Background(), 512, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r)
	fmt.Println("\nthe same PHT collisions that *read* a victim's branch direction")
	fmt.Println("can *write* its next prediction — on demand, per execution.")
}
