// Quickstart: steal a secret bit array from a victim process through the
// shared directional branch predictor — the paper's covert-channel flow
// (§7) in ~40 lines against the public API.
package main

import (
	"fmt"
	"log"

	"branchscope"
)

func main() {
	// Boot a simulated Skylake machine. The victim and the spy will be
	// two processes co-resident on its single physical core.
	sys := branchscope.NewSystem(branchscope.Skylake(), 2024)

	// The victim: walks a secret bit array, executing one conditional
	// branch per bit at a fixed address (Listing 2 of the paper).
	secret := branchscope.NewRand(7).Bits(64)
	victim := sys.Spawn("victim", branchscope.SecretArraySender(secret, 0))

	// The spy: performs the one-time pre-attack search for a
	// randomization block that primes the target PHT entry to the
	// strongly-not-taken state (§6.2), then attacks bit by bit.
	spy := sys.NewProcess("spy")
	sess, err := branchscope.NewSession(spy, branchscope.NewRand(1), branchscope.AttackConfig{
		Search: branchscope.SearchConfig{
			TargetAddr: branchscope.SecretBranchAddr,
			Focused:    true,
		},
	})
	if err != nil {
		log.Fatalf("pre-attack search failed: %v", err)
	}
	fmt.Printf("selected randomization %s\n", sess.Block())

	recovered := make([]bool, len(secret))
	for i := range secret {
		// One attack episode: prime, let the victim execute exactly
		// one branch (victim slowdown, §3), probe, decode.
		recovered[i] = sess.SpyBit(victim, nil, nil)
	}

	errs := 0
	for i := range secret {
		if recovered[i] != secret[i] {
			errs++
		}
	}
	fmt.Printf("secret:    %s\n", bits(secret))
	fmt.Printf("recovered: %s\n", bits(recovered))
	fmt.Printf("errors: %d/%d\n", errs, len(secret))
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
