// Timing: run the attack without performance counters, detecting branch
// predictor events purely through rdtscp latency (§8). The spy first
// calibrates a hit/miss threshold on its own branches, then probes with
// timestamp measurements instead of PMC reads — the variant available to
// fully unprivileged attackers.
package main

import (
	"fmt"
	"log"

	"branchscope"
)

func main() {
	sys := branchscope.NewSystem(branchscope.Haswell(), 12)
	secret := branchscope.NewRand(3).Bits(200)
	victim := sys.Spawn("victim", branchscope.SecretArraySender(secret, 0))

	spy := sys.NewProcess("spy")
	sess, err := branchscope.NewSession(spy, branchscope.NewRand(1), branchscope.AttackConfig{
		Search: branchscope.SearchConfig{
			TargetAddr: branchscope.SecretBranchAddr,
			Focused:    true,
		},
		UseTiming: true, // rdtscp probing instead of the PMC
	})
	if err != nil {
		log.Fatalf("pre-attack search failed: %v", err)
	}
	fmt.Printf("calibrated %s\n", sess.Detector())

	errs := 0
	for _, want := range secret {
		if sess.SpyBit(victim, nil, nil) != want {
			errs++
		}
	}
	fmt.Printf("timing-only attack: %d/%d bit errors (%.2f%%)\n",
		errs, len(secret), 100*float64(errs)/float64(len(secret)))
	fmt.Println("(single-shot timing detection carries ~10% error — Figure 8's")
	fmt.Println(" m=1 point; the PMC variant of the same attack is near-zero error,")
	fmt.Println(" and averaging repeated measurements drives timing error to ~0)")
}
