// Montgomery: recover a 256-bit private exponent from a Montgomery-ladder
// modular exponentiation service (§9.2). The ladder performs identical
// work on both paths — defeating classic timing attacks — but its
// key-bit branch direction leaks through the directional predictor.
package main

import (
	"fmt"
	"log"
	"math/big"

	"branchscope"
)

func main() {
	sys := branchscope.NewSystem(branchscope.Skylake(), 99)

	// The secret exponent of the victim's decryption service.
	exp, _ := new(big.Int).SetString(
		"c3a9f1d4820b67e5d1139a4b55f0286ce9f10c44ab317d0297b6e8d24f3a5c71", 16)

	fmt.Printf("victim exponent: %x\n", exp)
	res, err := branchscope.RecoverMontgomeryExponent(sys, exp, 1, 5)
	if err != nil {
		log.Fatalf("attack setup failed: %v", err)
	}
	fmt.Printf("recovered:       %x\n", res.Recovered)
	fmt.Println(res)
	if res.Recovered.Cmp(exp) == 0 {
		fmt.Println("private exponent fully recovered")
	}
}
