// PHT discovery: reverse engineer the size of the pattern history table
// from user space (§6.3, Figure 5). The attacker decodes the PHT state
// behind a contiguous address range and finds the window size at which
// the state vector repeats, using the normalized Hamming distance
// statistic H(w)/w of Equations 1-4.
package main

import (
	"fmt"

	"branchscope"
)

func main() {
	model := branchscope.SandyBridge() // 4096-entry PHT keeps the demo fast
	sys := branchscope.NewSystem(model, 31)
	spy := sys.NewProcess("spy")

	mapper := branchscope.NewMapper(sys, spy, branchscope.NewRand(5))
	const start = 0x300000
	addresses := 4 * model.BPU.PHTSize
	fmt.Printf("probing %d contiguous addresses from %#x on %s...\n",
		addresses, start, model)
	states := mapper.MapStates(start, addresses, 3000)

	fmt.Print("first 24 decoded states: ")
	for _, s := range states[:24] {
		fmt.Printf("%s ", s)
	}
	fmt.Println()

	size, scan := branchscope.DiscoverPHTSize(states, nil, 80, branchscope.NewRand(9))
	fmt.Println("window    H(w)/w")
	for _, p := range scan {
		fmt.Printf("%-9d %.4f\n", p.Window, p.Ratio)
	}
	fmt.Printf("discovered PHT size: %d entries (model truth: %d)\n",
		size, model.BPU.PHTSize)
}
