// Detector: the §10.2 countermeasure that hunts the attack's footprint.
// The interesting part is *which* footprint works: the randomization
// block's mispredictions disappear after its first execution (static code
// — the predictor learns it), but the block cannot avoid churning the
// predictor's branch working set, because evicting the victim's branch is
// its entire purpose. An allocation-density monitor separates a
// BranchScope spy from benign services cleanly.
package main

import (
	"context"
	"fmt"
	"log"

	"branchscope"
)

func main() {
	r, err := branchscope.RunDetectionDemo(context.Background(), 400, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r)
	fmt.Println("\nmisprediction rate is the wrong footprint (the spy's block is")
	fmt.Println("learned after one run); working-set churn is the durable one.")
}
