// Hot-path throughput guardrail: the per-branch execution path was
// refactored (compiled FSM transition plane, resolved predictor sites,
// quantized jitter sampler, batched ExecPlan) and this file keeps the
// win from regressing. The baseline is a faithful in-test replica of
// the pre-refactor executor — the retained bpu.ReferenceUnit behind the
// original per-branch cost arithmetic, polar-method jitter, and
// per-event counter updates — measured in the same run as the live
// path, so the reported speedup is machine-independent. Results go to
// BENCH_hotpath.json; CI runs TestHotpathGuardrail and fails on
// regression below the gate.
package branchscope_test

import (
	"encoding/json"
	"os"
	"testing"

	"branchscope/internal/bpu"
	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// hotpathSites is the benchmark working set: enough distinct branch
// addresses to exercise real index computation, few enough to stay
// icache-warm — the steady state of a prime loop.
const hotpathSites = 24

// legacyICacheEntry mirrors the (unchanged) icache line tags.
type legacyICacheEntry struct {
	valid  bool
	domain uint64
	line   uint64
}

// legacyMachine replays the pre-refactor per-branch execution path: the
// spec-walking ReferenceUnit predictor with eager per-call index
// resolution, the polar-method normal jitter draw, and the original
// cost arithmetic of Context.BranchTo, preserved operation for
// operation from the pre-refactor source.
type legacyMachine struct {
	unit   *bpu.ReferenceUnit
	timing cpu.Timing
	rnd    *rng.Source
	icache [cpu.ICacheLines]legacyICacheEntry
	clock  uint64
	pmc    [4]uint64 // instructions, branches, misses, allocations
}

func newLegacyMachine(seed uint64) *legacyMachine {
	return &legacyMachine{
		unit:   bpu.NewReference(uarch.Skylake().BPU),
		timing: cpu.DefaultTiming(),
		rnd:    rng.New(seed),
	}
}

func (m *legacyMachine) icacheAccess(domain, addr uint64) uint64 {
	line := addr >> 6
	e := &m.icache[line%cpu.ICacheLines]
	if e.valid && e.domain == domain && e.line == line {
		return 0
	}
	*e = legacyICacheEntry{valid: true, domain: domain, line: line}
	span := m.timing.ICacheMissMax - m.timing.ICacheMissMin
	if span == 0 {
		return m.timing.ICacheMissMin
	}
	return m.timing.ICacheMissMin + m.rnd.Uint64n(span+1)
}

func (m *legacyMachine) jitter() uint64 {
	n := m.rnd.NormFloat64() * m.timing.JitterSigma
	if n < 0 {
		n = -n
	}
	j := uint64(n)
	if m.rnd.Chance(m.timing.SpikeProb) {
		j += m.rnd.Uint64n(m.timing.SpikeMax + 1)
	}
	return j
}

func (m *legacyMachine) branch(domain, addr uint64, taken bool) {
	cost := m.timing.BranchBase
	cost += m.icacheAccess(domain, addr)
	l := m.unit.Predict(domain, addr)
	if l.Taken != taken {
		cost += m.timing.MispredictPenalty
		m.pmc[2]++
	}
	if taken && !l.BTBHit {
		cost += m.timing.BTBMissPenalty
	}
	cost += m.jitter()
	if m.unit.Commit(l, taken, addr+16) {
		m.pmc[3]++
	}
	m.clock += cost
	m.pmc[0]++
	m.pmc[1]++
}

// hotpathAddr returns the i-th branch address of the working set.
func hotpathAddr(i int) uint64 {
	return 0x6100_0000 + uint64(i%hotpathSites)*20
}

// BenchmarkHotpathLegacy measures the pre-refactor per-branch cost via
// the retained reference implementation.
func BenchmarkHotpathLegacy(b *testing.B) {
	m := newLegacyMachine(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.branch(1, hotpathAddr(i), i%3 == 0)
	}
}

// BenchmarkHotpathSerial measures the live per-call Branch path.
func BenchmarkHotpathSerial(b *testing.B) {
	mach := uarch.Skylake().NewCore(42)
	ctx := mach.NewContext(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Branch(hotpathAddr(i), i%3 == 0)
	}
}

// BenchmarkHotpathBatched measures the live batched ExecPlan path: the
// working set compiled once, executed b.N/hotpathSites times. ns/op is
// per branch, like the other two.
func BenchmarkHotpathBatched(b *testing.B) {
	mach := uarch.Skylake().NewCore(42)
	ctx := mach.NewContext(1)
	plan := ctx.NewPlan(hotpathSites)
	for i := 0; i < hotpathSites; i++ {
		plan.Branch(hotpathAddr(i), i%3 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += hotpathSites {
		plan.Run()
	}
}

// readBitSession builds the steady-state resilient-read workload: a
// focused-block attack session against a looping victim.
func readBitSession(t testing.TB) (*core.Session, core.Stepper, func()) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	secret := rng.New(1).Bits(64)
	victim := sys.Spawn("victim", victims.LoopingSecretArraySender(secret, 0))
	spy := sys.NewProcess("spy")
	sess, err := core.NewSession(spy, rng.New(2), core.AttackConfig{
		Search: core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
		Retry:  core.RetryConfig{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess, victim, func() { victim.Kill() }
}

// TestReadBitZeroAlloc pins the steady-state allocation contract of the
// resilient read path: after warm-up (plan compilation, detector state),
// a ReadBit — prime, victim step, probe, vote — performs zero heap
// allocations.
func TestReadBitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	sess, victim, stop := readBitSession(t)
	defer stop()
	// Warm up: compile the block plan and settle predictor state.
	for i := 0; i < 8; i++ {
		sess.ReadBit(victim, nil, nil)
	}
	allocs := testing.AllocsPerRun(200, func() {
		sess.ReadBit(victim, nil, nil)
	})
	if allocs != 0 {
		t.Errorf("steady-state ReadBit allocates %.1f objects per read, want 0", allocs)
	}
}

// TestHotpathGuardrail measures the three executors in one run and
// writes BENCH_hotpath.json. The gate: the batched path must be at
// least minSpeedup times faster per branch than the pre-refactor
// baseline, and the steady-state probe path must not allocate.
func TestHotpathGuardrail(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guardrail skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("benchmark guardrail skipped under the race detector")
	}

	legacy := testing.Benchmark(BenchmarkHotpathLegacy)
	serial := testing.Benchmark(BenchmarkHotpathSerial)
	batched := testing.Benchmark(BenchmarkHotpathBatched)

	legacyNs := float64(legacy.T.Nanoseconds()) / float64(legacy.N)
	serialNs := float64(serial.T.Nanoseconds()) / float64(serial.N)
	batchedNs := float64(batched.T.Nanoseconds()) / float64(batched.N)
	speedup := legacyNs / batchedNs

	sess, victim, stop := readBitSession(t)
	defer stop()
	for i := 0; i < 8; i++ {
		sess.ReadBit(victim, nil, nil)
	}
	allocs := testing.AllocsPerRun(100, func() {
		sess.ReadBit(victim, nil, nil)
	})

	const minSpeedup = 2.0
	pass := speedup >= minSpeedup && allocs == 0

	report := struct {
		LegacyNsPerBranch  float64 `json:"baseline_ns_per_branch"`
		SerialNsPerBranch  float64 `json:"serial_ns_per_branch"`
		BatchedNsPerBranch float64 `json:"batched_ns_per_branch"`
		Speedup            float64 `json:"speedup_batched_over_baseline"`
		MinSpeedup         float64 `json:"min_speedup"`
		AllocsPerProbe     float64 `json:"allocs_per_readbit"`
		Sites              int     `json:"working_set_branches"`
		Pass               bool    `json:"pass"`
	}{
		LegacyNsPerBranch:  legacyNs,
		SerialNsPerBranch:  serialNs,
		BatchedNsPerBranch: batchedNs,
		Speedup:            speedup,
		MinSpeedup:         minSpeedup,
		AllocsPerProbe:     allocs,
		Sites:              hotpathSites,
		Pass:               pass,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_hotpath.json", append(out, '\n'), 0o644); err != nil {
		t.Fatalf("writing BENCH_hotpath.json: %v", err)
	}
	t.Logf("legacy %.1f ns/branch, serial %.1f, batched %.1f: speedup %.2fx, ReadBit allocs %.1f",
		legacyNs, serialNs, batchedNs, speedup, allocs)
	if speedup < minSpeedup {
		t.Errorf("batched hot path is only %.2fx the pre-refactor baseline (want >= %.1fx)",
			speedup, minSpeedup)
	}
	if allocs != 0 {
		t.Errorf("steady-state ReadBit allocates %.1f objects per read, want 0", allocs)
	}
}
