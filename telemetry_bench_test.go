// Telemetry overhead guardrail: the covert channel must cost the same
// whether or not the telemetry package is linked in, as long as no
// telemetry set is attached. The pair of benchmarks below measures the
// same covert run with telemetry disabled (nil set — the default for
// every library user) and fully enabled (registry + tracer); the
// guardrail test compares them with testing.Benchmark and emits
// BENCH_telemetry.json so CI history can track the ratio.
package branchscope_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"branchscope/internal/experiments"
	"branchscope/internal/telemetry"
	"branchscope/internal/uarch"
)

// benchCovertConfig is the workload under measurement: one quick covert
// run, sized so a single iteration is milliseconds, not seconds.
func benchCovertConfig(set *telemetry.Set) experiments.CovertConfig {
	return experiments.CovertConfig{
		Model:     uarch.Skylake(),
		Setting:   experiments.Isolated,
		Pattern:   experiments.RandomBits,
		Bits:      200,
		Runs:      1,
		Seed:      1,
		Telemetry: set,
	}
}

func runCovertBench(b *testing.B, set *telemetry.Set) {
	b.Helper()
	cfg := benchCovertConfig(set)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		r, err := experiments.RunCovert(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.SetupFailed != 0 {
			b.Fatal("block search failed")
		}
	}
}

// BenchmarkCovertTelemetryDisabled is the uninstrumented baseline: the
// nil-set fast path every library caller gets by default.
func BenchmarkCovertTelemetryDisabled(b *testing.B) {
	runCovertBench(b, nil)
}

// BenchmarkCovertTelemetryEnabled runs the same workload with a live
// registry and tracer attached (the -metrics-out -trace-out CLI cost).
func BenchmarkCovertTelemetryEnabled(b *testing.B) {
	runCovertBench(b, telemetry.New(telemetry.NewRegistry(), telemetry.NewTracer()))
}

// BenchmarkNilCounterInc measures the per-instrument cost on the
// disabled path: a nil-receiver method call the compiler can inline.
func BenchmarkNilCounterInc(b *testing.B) {
	var c *telemetry.Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// TestTelemetryOverheadGuardrail asserts the disabled-telemetry path is
// not paying for the instrumentation: the nil-set covert run must not be
// slower than the fully-enabled run beyond noise, and a nil counter
// increment must stay in fast-inlined-call territory. Results go to
// BENCH_telemetry.json in the repo root.
func TestTelemetryOverheadGuardrail(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guardrail skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("benchmark guardrail skipped under the race detector")
	}

	disabled := testing.Benchmark(BenchmarkCovertTelemetryDisabled)
	enabled := testing.Benchmark(BenchmarkCovertTelemetryEnabled)
	nilInc := testing.Benchmark(BenchmarkNilCounterInc)

	ratio := float64(disabled.NsPerOp()) / float64(enabled.NsPerOp())
	nilNs := float64(nilInc.T.Nanoseconds()) / float64(nilInc.N)

	// Disabled must not exceed enabled by more than measurement noise:
	// the nil path does strictly less work, so anything past 25% means
	// the fast path regressed (e.g. a map lookup or allocation snuck in).
	const maxRatio = 1.25
	// A nil counter increment is one inlinable nil check; 25ns leaves
	// room for slow CI machines while still catching an accidental
	// mutex or map on the path (those cost hundreds of ns).
	const maxNilNs = 25.0

	pass := ratio <= maxRatio && nilNs <= maxNilNs
	report := struct {
		DisabledNsPerOp     int64   `json:"covert_disabled_ns_per_op"`
		EnabledNsPerOp      int64   `json:"covert_enabled_ns_per_op"`
		DisabledOverEnabled float64 `json:"disabled_over_enabled_ratio"`
		MaxRatio            float64 `json:"max_ratio"`
		NilCounterIncNs     float64 `json:"nil_counter_inc_ns"`
		MaxNilCounterNs     float64 `json:"max_nil_counter_inc_ns"`
		Bits                int     `json:"bits_per_op"`
		Pass                bool    `json:"pass"`
	}{
		DisabledNsPerOp:     disabled.NsPerOp(),
		EnabledNsPerOp:      enabled.NsPerOp(),
		DisabledOverEnabled: ratio,
		MaxRatio:            maxRatio,
		NilCounterIncNs:     nilNs,
		MaxNilCounterNs:     maxNilNs,
		Bits:                benchCovertConfig(nil).Bits,
		Pass:                pass,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_telemetry.json", append(out, '\n'), 0o644); err != nil {
		t.Fatalf("writing BENCH_telemetry.json: %v", err)
	}
	t.Logf("disabled %d ns/op, enabled %d ns/op (ratio %.3f), nil Inc %.2f ns",
		disabled.NsPerOp(), enabled.NsPerOp(), ratio, nilNs)
	if ratio > maxRatio {
		t.Errorf("disabled-telemetry run is %.2fx the enabled run (max %.2f): nil fast path regressed",
			ratio, maxRatio)
	}
	if nilNs > maxNilNs {
		t.Errorf("nil counter Inc costs %.1f ns (max %.0f): disabled instruments are no longer free",
			nilNs, maxNilNs)
	}
}
