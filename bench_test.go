// Benchmarks: one testing.B per paper table/figure (plus the extension
// experiments), each regenerating the artifact at test scale per
// iteration. They measure the cost of reproducing the paper's evaluation
// on the simulated substrate; `go test -bench=. -benchmem` runs them all.
// Full-scale runs are available through cmd/experiments.
package branchscope_test

import (
	"context"
	"testing"

	"branchscope/internal/core"
	"branchscope/internal/experiments"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// BenchmarkFig2SelectionLearning regenerates the §5.1 learning curve (E1).
func BenchmarkFig2SelectionLearning(b *testing.B) {
	cfg := experiments.QuickFig2Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunFig2(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) != 2 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTable1FSMTransitions regenerates Table 1 on all models (E2).
func BenchmarkTable1FSMTransitions(b *testing.B) {
	models := uarch.All()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			r, err := experiments.RunTable1(context.Background(), m, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			if !r.MatchesPaper() {
				b.Fatalf("%s diverged from the paper", m.Name)
			}
		}
	}
}

// BenchmarkFig4StateDistribution regenerates the Figure 4 block
// characterization (E3).
func BenchmarkFig4StateDistribution(b *testing.B) {
	cfg := experiments.QuickFig4Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunFig4(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig5PHTSizeDiscovery regenerates the Figure 5 reverse
// engineering (E4).
func BenchmarkFig5PHTSizeDiscovery(b *testing.B) {
	cfg := experiments.QuickFig5Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunFig5(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.DiscoveredSize != r.TrueSize {
			b.Fatalf("discovered %d, want %d", r.DiscoveredSize, r.TrueSize)
		}
	}
}

// BenchmarkFig6CovertDemo regenerates the Figure 6 decode demo (E5).
func BenchmarkFig6CovertDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig6(context.Background(), experiments.Fig6Config{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Decoded) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTable2CovertErrorRates regenerates the Table 2 grid (E6).
func BenchmarkTable2CovertErrorRates(b *testing.B) {
	cfg := experiments.QuickTable2Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunTable2(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cells) != 6 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig7BranchLatency regenerates the Figure 7 latency
// populations (E7).
func BenchmarkFig7BranchLatency(b *testing.B) {
	cfg := experiments.QuickFig7Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunFig7(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cases) != 4 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig8TimingError regenerates the Figure 8 error curves (E8).
func BenchmarkFig8TimingError(b *testing.B) {
	cfg := experiments.QuickFig8Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunFig8(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig9StateLatency regenerates the Figure 9 per-state latency
// cells (E9).
func BenchmarkFig9StateLatency(b *testing.B) {
	cfg := experiments.QuickFig9Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunFig9(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cells) != 8 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTable3SGXCovert regenerates the Table 3 SGX grid (E10).
func BenchmarkTable3SGXCovert(b *testing.B) {
	cfg := experiments.QuickTable3Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunTable3(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cells) != 2 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkMitigationAblation regenerates the §10.2 defense ablation (E11).
func BenchmarkMitigationAblation(b *testing.B) {
	cfg := experiments.QuickMitigationsConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunMitigations(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cells) != 5 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkMontgomeryKeyRecovery regenerates the §9.2 ladder attack (E12).
func BenchmarkMontgomeryKeyRecovery(b *testing.B) {
	cfg := experiments.QuickMontgomeryConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunMontgomery(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Result.Bits == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkJPEGRecovery regenerates the §9.2 libjpeg attack (E13).
func BenchmarkJPEGRecovery(b *testing.B) {
	cfg := experiments.QuickJPEGConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunJPEG(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Result.Recovered) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkASLRRecovery regenerates the §9.2 derandomization (E14).
func BenchmarkASLRRecovery(b *testing.B) {
	cfg := experiments.QuickASLRConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunASLR(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.SingleBranch.Candidates == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkBTBBaseline regenerates the §11 baseline comparison (E15).
func BenchmarkBTBBaseline(b *testing.B) {
	cfg := experiments.QuickBTBBaselineConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunBTBBaseline(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.BTBError == 0 && r.BranchScope == 0 {
			b.Fatal("bad result")
		}
	}
}

// --- Micro-benchmarks of the substrate's hot paths ---

// BenchmarkBranchExecution measures the cost of one simulated branch.
func BenchmarkBranchExecution(b *testing.B) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	ctx := sys.NewProcess("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Branch(uint64(0x1000+i%4096), i&1 == 0)
	}
}

// BenchmarkAttackEpisode measures one full prime+step+probe episode.
func BenchmarkAttackEpisode(b *testing.B) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	secret := rng.New(1).Bits(64)
	victim := sys.Spawn("victim", victims.LoopingSecretArraySender(secret, 0))
	defer victim.Kill()
	spy := sys.NewProcess("spy")
	sess, err := core.NewSession(spy, rng.New(2), core.AttackConfig{
		Search: core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.SpyBit(victim, nil, nil)
	}
}

// BenchmarkRandomizationBlock measures one Listing 1 block execution.
func BenchmarkRandomizationBlock(b *testing.B) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	ctx := sys.NewProcess("bench")
	block := core.GenerateBlock(rng.New(3), 0x6100_0000, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block.Run(ctx)
	}
}

// BenchmarkPMCProbe measures one two-branch PMC probe.
func BenchmarkPMCProbe(b *testing.B) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	ctx := sys.NewProcess("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ProbePMC(ctx, victims.SecretBranchAddr, true)
	}
}

// BenchmarkIfConversionMitigation regenerates the §10.1 software
// mitigation study (extension).
func BenchmarkIfConversionMitigation(b *testing.B) {
	cfg := experiments.QuickIfConversionConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunIfConversion(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.BranchlessError < 0.2 {
			b.Fatal("if-conversion failed to close the channel")
		}
	}
}

// BenchmarkBranchPoisoning regenerates the §1 poisoning study (extension).
func BenchmarkBranchPoisoning(b *testing.B) {
	cfg := experiments.QuickPoisoningConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunPoisoning(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.PoisonedMissRate < 0.5 {
			b.Fatal("poisoning ineffective")
		}
	}
}

// BenchmarkAttackDetection regenerates the §10.2 detector study
// (extension).
func BenchmarkAttackDetection(b *testing.B) {
	cfg := experiments.QuickDetectionConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunDetection(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Workloads) != 4 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkSlidingWindowRecovery regenerates the §9.2 partial-leakage
// study (extension).
func BenchmarkSlidingWindowRecovery(b *testing.B) {
	cfg := experiments.QuickSlidingWindowConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunSlidingWindow(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Result.Steps == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkSMTChannel regenerates the §1 cross-hyperthread channel
// (extension).
func BenchmarkSMTChannel(b *testing.B) {
	cfg := experiments.QuickSMTConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunSMT(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.ErrorRate > 0.2 {
			b.Fatal("channel broken")
		}
	}
}

// BenchmarkPredictorAblation regenerates the §5 predictor-organization
// ablation (extension).
func BenchmarkPredictorAblation(b *testing.B) {
	cfg := experiments.QuickPredictorAblationConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunPredictorAblation(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Modes) != 3 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTimingChannel regenerates the §8 PMC-vs-rdtscp comparison
// (extension).
func BenchmarkTimingChannel(b *testing.B) {
	cfg := experiments.QuickTimingChannelConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunTimingChannel(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.TSCError > 0.3 {
			b.Fatal("timing channel broken")
		}
	}
}

// BenchmarkFSMWidthAblation regenerates the counter-width ablation
// (extension).
func BenchmarkFSMWidthAblation(b *testing.B) {
	cfg := experiments.QuickFSMWidthConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		r, err := experiments.RunFSMWidth(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("bad result")
		}
	}
}
