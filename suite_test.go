// Suite-level guardrails for the execution engine: the quick experiment
// suite must render byte-identical output at any parallelism level, the
// JSON export must match its golden file key for key, and a panicking
// experiment must be reported in place without taking the suite down.
package branchscope_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"branchscope/internal/engine"
	"branchscope/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// fastIDs is the subset of experiments cheap enough (~10ms each at quick
// scale) to re-run at several parallelism levels in every test run; the
// full-suite comparison below covers the rest outside -short.
var fastIDs = []string{"fig2", "table1", "fig6", "fig7", "fig9", "montgomery", "slidingwindow"}

func tasksByID(t *testing.T, ids []string) []engine.Task {
	t.Helper()
	var exps []experiments.Experiment
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	return experiments.Tasks(exps)
}

// renderSuite runs tasks at the given worker count and returns the
// deterministic text rendering plus the reports.
func renderSuite(tasks []engine.Task, workers int, seed uint64) (string, []engine.Report) {
	r := &engine.Runner{Pool: engine.NewPool(workers)}
	reports := r.RunSuite(context.Background(), tasks, engine.Config{Quick: true, Seed: seed})
	var buf bytes.Buffer
	engine.FormatText(&buf, reports)
	return buf.String(), reports
}

// TestSuiteDeterminismFastSubset is the always-on (and race-detector)
// guardrail: a subset of the suite, sequential vs 8 workers, must render
// byte-identically.
func TestSuiteDeterminismFastSubset(t *testing.T) {
	tasks := tasksByID(t, fastIDs)
	seq, seqReports := renderSuite(tasks, 1, 1)
	par, _ := renderSuite(tasks, 8, 1)
	if seq != par {
		t.Errorf("suite output differs between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if engine.Failed(seqReports) != 0 {
		t.Errorf("%d experiments failed", engine.Failed(seqReports))
	}
}

// TestQuickSuiteDeterministicAcrossParallelism runs the FULL quick suite
// twice — the acceptance criterion behind `cmd/experiments -quick`.
func TestQuickSuiteDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite takes ~25s per parallelism level")
	}
	if raceEnabled {
		t.Skip("full quick suite is too slow under the race detector; the fast subset covers the race check")
	}
	tasks := experiments.Tasks(experiments.All())
	seq, seqReports := renderSuite(tasks, 1, 1)
	par, _ := renderSuite(tasks, 8, 1)
	if seq != par {
		t.Error("full quick suite output differs between -parallel 1 and -parallel 8")
	}
	if n := engine.Failed(seqReports); n != 0 {
		t.Errorf("%d experiments failed:\n%s", n, seq)
	}
}

// TestSuitePanickingExperimentIsolated injects a deliberately panicking
// test-only experiment into a real suite run: it must be reported as that
// experiment's error while every other experiment completes normally.
func TestSuitePanickingExperimentIsolated(t *testing.T) {
	tasks := tasksByID(t, []string{"table1", "fig6"})
	tasks = append(tasks, engine.Task{
		ID: "testpanic", Artifact: "test-only", Description: "always panics",
		Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			panic("injected suite panic")
		},
	})
	tasks = append(tasks, tasksByID(t, []string{"fig7"})...)

	r := &engine.Runner{Pool: engine.NewPool(4)}
	reports := r.RunSuite(context.Background(), tasks, engine.Config{Quick: true, Seed: 1})
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, rep := range reports {
		if rep.Task.ID == "testpanic" {
			if rep.Err == nil || !rep.Panicked {
				t.Errorf("panic not reported as the task's error: %+v", rep)
			}
			continue
		}
		if rep.Err != nil {
			t.Errorf("%s failed alongside the panicking task: %v", rep.Task.ID, rep.Err)
		}
	}
	var buf bytes.Buffer
	engine.FormatText(&buf, reports)
	if !bytes.Contains(buf.Bytes(), []byte("!!! testpanic failed:")) {
		t.Error("rendered suite output does not surface the panic")
	}
}

// TestSuiteJSONGoldenExport pins the -json export byte for byte
// (schema, key order, row shapes) on a small suite at seed 1. Regenerate
// with `go test -run SuiteJSONGolden -update .` after intentional
// changes to experiment rows or the export schema.
func TestSuiteJSONGoldenExport(t *testing.T) {
	tasks := tasksByID(t, []string{"table1", "fig6"})
	r := &engine.Runner{}
	reports := r.RunSuite(context.Background(), tasks, engine.Config{Quick: true, Seed: 1})
	for i := range reports {
		reports[i].Wall = 0 // the one nondeterministic export field
	}
	var buf bytes.Buffer
	if err := engine.WriteJSON(&buf, engine.ExportMeta{BaseSeed: 1, Quick: true}, reports); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "suite_export.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON export drifted from %s (run with -update if intentional):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
