// Command phtmap reverse engineers the simulated PHT the way §6.3 of the
// paper does on real silicon: it decodes the predictor state behind a
// contiguous range of virtual addresses and recovers the PHT size from
// the periodicity of the state vector (Figure 5).
//
// Usage:
//
//	phtmap [-model Skylake] [-start 0x300000] [-addresses 65536]
//	       [-block 4000] [-pairs 100] [-seed 1]
//	       [-chaos light|moderate|heavy|FLOAT|JSON] [-chaos-seed 0]
//	       [-serve addr] [-ledger-out l.jsonl]
//	       [-metrics-out m.json] [-trace-out t.json]
//	       [-introspect-out pht.json] [-archive dir]
//	       [-log-format text|json] [-log-level info]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Observability (shared surface, see internal/cliutil): the flags above
// match cmd/branchscope and cmd/experiments exactly. -metrics-out and
// -trace-out export the mapping run's telemetry (simulated cycles only,
// deterministic per seed, flushed even on SIGINT); -serve exposes
// /metrics, /statusz, /healthz, /readyz and /debug/pprof live during
// the run; -ledger-out appends one branchscope.ledger/v1 provenance
// record with the run's config, seed, outcome and result digest.
// -archive <dir> snapshots every sink plus a branchscope.run/v1
// manifest under <dir>/<run-id>/, where <run-id> digests only the
// result-shaping knobs (see internal/runstore; inspect with cmd/bsctl).
//
// Predictor introspection (see DESIGN §3.17): after the mapping pass
// RunFig5 publishes the decoded machine's BPU snapshot — per-entry
// 2-bit counter states, state census, and the per-set mispredict
// heatmap — so /introspect/pht serves it live and -introspect-out
// writes it at exit as canonical branchscope.introspect/v1 JSON. This
// is Figure 5a's raw material seen from the predictor's side.
//
// Resilience (see DESIGN §3.15): -chaos attaches the deterministic
// fault injector in self-clocked mode — the mapper has no episode
// structure, so fault windows are synthesized from counter reads.
// Mapping under chaos shows how much interference the §6.3 state
// decoding tolerates before the discovered size drifts.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"branchscope/internal/chaos"
	"branchscope/internal/cliutil"
	"branchscope/internal/engine"
	"branchscope/internal/experiments"
	"branchscope/internal/obs"
	"branchscope/internal/runstore"
	"branchscope/internal/sched"
	"branchscope/internal/telemetry"
	"branchscope/internal/uarch"
)

func main() { os.Exit(run()) }

func run() (code int) {
	var (
		model = flag.String("model", "Skylake", "CPU model: Skylake, Haswell or SandyBridge")
		start = flag.String("start", "0x300000", "first probed virtual address (64 KiB aligned)")
		count = flag.Int("addresses", 0, "number of contiguous addresses to probe (default 4x PHT size)")
		block = flag.Int("block", 4000, "randomization block size in branches")
		pairs = flag.Int("pairs", 100, "random subvector pairs per window size")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	var obsFlags cliutil.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	m, err := uarch.ByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	startAddr, err := strconv.ParseUint(*start, 0, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -start: %v\n", err)
		return 2
	}
	if err := obsFlags.RequireNoCampaign("phtmap"); err != nil {
		fmt.Fprintln(os.Stderr, "phtmap:", err)
		flag.Usage()
		return 2
	}
	if err := obsFlags.RequireNoFabric("phtmap"); err != nil {
		fmt.Fprintln(os.Stderr, "phtmap:", err)
		flag.Usage()
		return 2
	}
	if err := obsFlags.RequireNoService("phtmap"); err != nil {
		fmt.Fprintln(os.Stderr, "phtmap:", err)
		flag.Usage()
		return 2
	}

	// The single mapping task this CLI runs, as /statusz reports it.
	tracker := obs.NewTracker("phtmap", *seed, false, []string{"fig5"})
	sess, err := cliutil.NewSession("phtmap", obsFlags, cliutil.Options{
		Status: tracker.Status,
		Ready:  tracker.Ready,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		return 2
	}
	// Close flushes metrics/trace/ledger and shuts the server down on
	// every exit path, including SIGINT-canceled runs.
	defer func() {
		if err := sess.Close(); err != nil {
			sess.Log.Error("flushing observability exports", "err", err)
			if code == 0 {
				code = 1
			}
		}
	}()
	if sess.Metrics != nil || sess.Trace != nil {
		experiments.SetDefaultTelemetry(telemetry.New(sess.Metrics, sess.Trace))
		defer experiments.SetDefaultTelemetry(nil)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The mapper probes in a flat loop with no episode structure, so a
	// requested chaos plan runs self-clocked: the injector synthesizes
	// an episode boundary every few counter reads (roughly one probed
	// address). -retry has no resilient loop to switch on here and is
	// accepted for flag parity only.
	plan, err := obsFlags.ChaosPlan(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phtmap:", err)
		flag.Usage()
		return 2
	}
	var prepare func(*sched.System)
	// Only plans with episode faults install an injector: a crash-only
	// plan has nothing to inject here and must not perturb the mapping.
	if plan != nil && plan.HasEpisodeFaults() {
		sess.Log.Info("chaos enabled", "plan", plan.String(), "mode", "self-clocked")
		prepare = func(sys *sched.System) {
			inj := chaos.NewInjector(sys, *plan)
			inj.SelfClock(4)
		}
	}

	// Causal run identity over the result-shaping knobs only (sink
	// paths and execution shape excluded); stamped into the ledger
	// record, /statusz, and — under -archive — the run manifest.
	idCfg, err := obsFlags.IdentityConfig(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phtmap:", err)
		flag.Usage()
		return 2
	}
	idCfg["model"] = m.Name
	idCfg["start"] = *start
	idCfg["addresses"] = *count
	idCfg["block"] = *block
	idCfg["pairs"] = *pairs
	identity := runstore.Identity{
		Program: "phtmap", BaseSeed: *seed, Tasks: []string{"fig5"}, Config: idCfg,
	}
	runID := identity.RunID()
	sess.SetRunID(runID)
	arc := obsFlags.Archiver(identity)
	sess.SetArchiver(arc)

	tracker.Begin("fig5", *seed)
	sess.Deltas.Begin("fig5")
	sess.Log.Info("task start", "id", "fig5", "seed", *seed, "model", m.Name, "start", *start)
	if obsFlags.Watchdog > 0 {
		w := time.AfterFunc(obsFlags.Watchdog, func() {
			tracker.MarkStuck("fig5")
			sess.Log.Warn("task stuck past watchdog", "id", "fig5", "watchdog", obsFlags.Watchdog.String())
		})
		defer w.Stop()
	}
	begin := time.Now()
	res, err := experiments.RunFig5(ctx, experiments.Fig5Config{
		Model:         m,
		Start:         startAddr,
		Addresses:     *count,
		BlockBranches: *block,
		Pairs:         *pairs,
		Prepare:       prepare,
		Seed:          *seed,
	})
	wall := time.Since(begin)
	tracker.End("fig5", wall, "", err)
	rec := obs.LedgerRecord{
		Program:  "phtmap",
		ID:       "fig5",
		Artifact: "Figure 5",
		Config: map[string]any{
			"model":     m.Name,
			"start":     *start,
			"addresses": *count,
			"block":     *block,
			"pairs":     *pairs,
			"chaos":     obsFlags.Chaos,
		},
		BaseSeed: *seed,
		Seed:     *seed,
		Outcome:  obs.OutcomeOf(err),
		// WallSeconds is the one nondeterministic ledger field.
		WallSeconds:  wall.Seconds(),
		MetricsDelta: sess.Deltas.End("fig5"),
	}
	rec.Leakage = obs.LeakageFields(rec.MetricsDelta)
	if err != nil {
		rec.Error = err.Error()
		arc.Record(runstore.TaskOutcome{ID: "fig5", Seed: *seed, Outcome: rec.Outcome, Error: err.Error()})
		if lerr := sess.Ledger.Append(rec); lerr != nil {
			sess.Log.Error("appending ledger record", "err", lerr)
		}
		sess.Log.Error("task failed", "id", "fig5", "outcome", rec.Outcome, "err", err)
		return 1
	}
	rec.ResultDigest = obs.Digest(res.String())
	if lerr := sess.Ledger.Append(rec); lerr != nil {
		sess.Log.Error("appending ledger record", "err", lerr)
	}
	arc.Record(runstore.TaskOutcome{ID: "fig5", Seed: *seed, Outcome: rec.Outcome})
	if arc != nil {
		arc.AddBlob("report", []byte(res.String()))
		rep := engine.Report{
			Task:   engine.Task{ID: "fig5", Artifact: "Figure 5"},
			Seed:   *seed,
			RunID:  runID,
			Result: res,
		}
		var export bytes.Buffer
		if werr := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: *seed, RunID: runID}, []engine.Report{rep}); werr != nil {
			sess.Log.Error("rendering archive export", "err", werr)
		} else {
			arc.AddBlob("export", export.Bytes())
		}
	}
	sess.Log.Info("task done", "id", "fig5", "outcome", "ok", "wall", wall.String())
	fmt.Print(res)
	return 0
}
