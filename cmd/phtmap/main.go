// Command phtmap reverse engineers the simulated PHT the way §6.3 of the
// paper does on real silicon: it decodes the predictor state behind a
// contiguous range of virtual addresses and recovers the PHT size from
// the periodicity of the state vector (Figure 5).
//
// Usage:
//
//	phtmap [-model Skylake] [-start 0x300000] [-addresses 65536] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"branchscope/internal/experiments"
	"branchscope/internal/uarch"
)

func main() {
	var (
		model = flag.String("model", "Skylake", "CPU model: Skylake, Haswell or SandyBridge")
		start = flag.String("start", "0x300000", "first probed virtual address (64 KiB aligned)")
		count = flag.Int("addresses", 0, "number of contiguous addresses to probe (default 4x PHT size)")
		block = flag.Int("block", 4000, "randomization block size in branches")
		pairs = flag.Int("pairs", 100, "random subvector pairs per window size")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	m, err := uarch.ByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	startAddr, err := strconv.ParseUint(*start, 0, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -start: %v\n", err)
		os.Exit(2)
	}
	res, err := experiments.RunFig5(context.Background(), experiments.Fig5Config{
		Model:         m,
		Start:         startAddr,
		Addresses:     *count,
		BlockBranches: *block,
		Pairs:         *pairs,
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(res)
}
