package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"branchscope/internal/obs"
	"branchscope/internal/runstore"
)

// cmdList prints one line per archived run under a directory.
func cmdList(args []string) error {
	fs := flag.NewFlagSet("bsctl list", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("list takes exactly one archive directory")
	}
	runs, err := runstore.List(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		fmt.Println("no archived runs")
		return nil
	}
	for _, m := range runs {
		fmt.Printf("%s  program=%s seed=%d quick=%v tasks=%d %s\n",
			m.RunID, m.Identity.Program, m.Identity.BaseSeed, m.Identity.Quick,
			len(m.Outcomes), countsLine(m.Counts))
	}
	return nil
}

// countsLine renders outcome counts in sorted-key order ("ok=6").
func countsLine(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, counts[k])
	}
	return b.String()
}

// cmdShow renders one run's manifest: identity, outcomes, artifacts
// with digests — and, when the run archived a ledger, its record count
// and torn-tail state.
func cmdShow(args []string) error {
	fs := flag.NewFlagSet("bsctl show", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("show takes exactly one run directory or manifest path")
	}
	dir, m, err := runstore.LoadRun(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("run     %s\n", m.RunID)
	fmt.Printf("program %s  seed=%d quick=%v\n", m.Identity.Program, m.Identity.BaseSeed, m.Identity.Quick)
	fmt.Printf("tasks   %v\n", m.Identity.Tasks)
	if len(m.Identity.Config) > 0 {
		keys := make([]string, 0, len(m.Identity.Config))
		for k := range m.Identity.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Print("config  ")
		for i, k := range keys {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s=%v", k, m.Identity.Config[k])
		}
		fmt.Println()
	}
	fmt.Printf("counts  %s\n", countsLine(m.Counts))
	if m.DegradedProbes > 0 {
		fmt.Printf("degraded_probes %d\n", m.DegradedProbes)
	}
	for _, b := range m.Breakers {
		fmt.Printf("breaker %s state=%s skipped=%d\n", b.Family, b.State, b.Skipped)
	}
	fmt.Println("outcomes:")
	for _, o := range m.Outcomes {
		line := fmt.Sprintf("  %-12s %-10s seed=%d", o.ID, o.Outcome, o.Seed)
		if o.Attempts > 1 {
			line += fmt.Sprintf(" attempts=%d", o.Attempts)
		}
		if o.Error != "" {
			line += " error=" + o.Error
		}
		fmt.Println(line)
	}
	fmt.Println("artifacts:")
	for _, a := range m.Artifacts {
		switch {
		case a.Volatile:
			fmt.Printf("  %-16s %-12s (volatile)\n", a.Name, a.Kind)
		default:
			fmt.Printf("  %-16s %-12s %s\n", a.Name, a.Kind, a.Digest)
		}
	}
	// An archived ledger gets its tail checked here too: show is often
	// the first stop after a crashed run.
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	if f, err := os.Open(ledgerPath); err == nil {
		recs, torn, rerr := obs.ReadLedger(f)
		f.Close()
		switch {
		case rerr != nil:
			fmt.Printf("ledger: unreadable: %v\n", rerr)
		case torn:
			fmt.Printf("ledger: %d records — WARNING: torn final record (crash mid-append), ignored\n", len(recs))
		default:
			fmt.Printf("ledger: %d records\n", len(recs))
		}
	}
	return nil
}

// cmdTail prints a run-provenance ledger's records, one line each,
// tolerating (and flagging) a torn final record. With -f it keeps
// polling the file and prints records as tasks complete — following a
// live run's ledger from another terminal.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("bsctl tail", flag.ExitOnError)
	follow := fs.Bool("f", false, "follow the ledger, printing new records as they land")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval with -f")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("tail takes exactly one ledger path")
	}
	path := fs.Arg(0)

	p := &tailPrinter{path: path, follow: *follow}
	if err := p.emit(); err != nil {
		return err
	}
	if *follow {
		followLedger(p.emit, *interval, time.Sleep, func() bool { return true })
	}
	return nil
}

// tailPrinter incrementally prints a ledger's records across repeated
// reads of the same file, tolerating truncation between reads (a new
// run re-creating the ledger restarts the tail from the top).
type tailPrinter struct {
	path    string
	follow  bool
	printed int
	warned  bool
}

func (p *tailPrinter) emit() error {
	data, err := os.ReadFile(p.path)
	if err != nil {
		return err
	}
	recs, torn, err := obs.ReadLedger(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if len(recs) < p.printed {
		// The ledger shrank under us: a new run re-created the file.
		// Restart from the top instead of slicing past the end.
		fmt.Fprintln(os.Stderr, "bsctl: ledger truncated (new run?), restarting from the top")
		p.printed = 0
	}
	for _, rec := range recs[p.printed:] {
		line := fmt.Sprintf("%-12s %-10s seed=%d", rec.ID, rec.Outcome, rec.Seed)
		if rec.RunID != "" {
			line += " run=" + rec.RunID
		}
		if rec.Error != "" {
			line += " error=" + rec.Error
		}
		fmt.Println(line)
	}
	p.printed = len(recs)
	if torn && !p.follow && !p.warned {
		// A torn tail mid-follow is normal (an append in flight);
		// only a final torn record is worth a warning.
		fmt.Fprintln(os.Stderr, "bsctl: WARNING: torn final record (crash mid-append), ignored")
		p.warned = true
	}
	return nil
}

// maxTailBackoff caps the follow loop's retry backoff.
const maxTailBackoff = 5 * time.Second

// followLedger drives tail -f: re-emit at interval, and survive
// transient read errors — the file mid-rename during an atomic rewrite,
// a short read racing an append, a checksum caught on a partially
// flushed line — with capped doubling backoff instead of exiting on the
// first one. The outage is reported once on entry and once on recovery,
// not per retry. sleep and cont are seams for tests (time.Sleep and an
// always-true predicate in production).
func followLedger(emit func() error, interval time.Duration, sleep func(time.Duration), cont func() bool) {
	delay := interval
	down := false
	for cont() {
		sleep(delay)
		if err := emit(); err != nil {
			if !down {
				fmt.Fprintf(os.Stderr, "bsctl: transient read error (retrying): %v\n", err)
				down = true
			}
			delay *= 2
			if delay > maxTailBackoff {
				delay = maxTailBackoff
			}
			continue
		}
		if down {
			fmt.Fprintln(os.Stderr, "bsctl: ledger readable again")
			down = false
		}
		delay = interval
	}
}
