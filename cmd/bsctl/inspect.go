package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"branchscope/internal/obs"
	"branchscope/internal/runstore"
)

// cmdList prints one line per archived run under a directory.
func cmdList(args []string) error {
	fs := flag.NewFlagSet("bsctl list", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("list takes exactly one archive directory")
	}
	runs, err := runstore.List(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		fmt.Println("no archived runs")
		return nil
	}
	for _, m := range runs {
		fmt.Printf("%s  program=%s seed=%d quick=%v tasks=%d %s\n",
			m.RunID, m.Identity.Program, m.Identity.BaseSeed, m.Identity.Quick,
			len(m.Outcomes), countsLine(m.Counts))
	}
	return nil
}

// countsLine renders outcome counts in sorted-key order ("ok=6").
func countsLine(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, counts[k])
	}
	return b.String()
}

// cmdShow renders one run's manifest: identity, outcomes, artifacts
// with digests — and, when the run archived a ledger, its record count
// and torn-tail state.
func cmdShow(args []string) error {
	fs := flag.NewFlagSet("bsctl show", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("show takes exactly one run directory or manifest path")
	}
	dir, m, err := runstore.LoadRun(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("run     %s\n", m.RunID)
	fmt.Printf("program %s  seed=%d quick=%v\n", m.Identity.Program, m.Identity.BaseSeed, m.Identity.Quick)
	fmt.Printf("tasks   %v\n", m.Identity.Tasks)
	if len(m.Identity.Config) > 0 {
		keys := make([]string, 0, len(m.Identity.Config))
		for k := range m.Identity.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Print("config  ")
		for i, k := range keys {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s=%v", k, m.Identity.Config[k])
		}
		fmt.Println()
	}
	fmt.Printf("counts  %s\n", countsLine(m.Counts))
	if m.DegradedProbes > 0 {
		fmt.Printf("degraded_probes %d\n", m.DegradedProbes)
	}
	for _, b := range m.Breakers {
		fmt.Printf("breaker %s state=%s skipped=%d\n", b.Family, b.State, b.Skipped)
	}
	fmt.Println("outcomes:")
	for _, o := range m.Outcomes {
		line := fmt.Sprintf("  %-12s %-10s seed=%d", o.ID, o.Outcome, o.Seed)
		if o.Attempts > 1 {
			line += fmt.Sprintf(" attempts=%d", o.Attempts)
		}
		if o.Error != "" {
			line += " error=" + o.Error
		}
		fmt.Println(line)
	}
	fmt.Println("artifacts:")
	for _, a := range m.Artifacts {
		switch {
		case a.Volatile:
			fmt.Printf("  %-16s %-12s (volatile)\n", a.Name, a.Kind)
		default:
			fmt.Printf("  %-16s %-12s %s\n", a.Name, a.Kind, a.Digest)
		}
	}
	// An archived ledger gets its tail checked here too: show is often
	// the first stop after a crashed run.
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	if f, err := os.Open(ledgerPath); err == nil {
		recs, torn, rerr := obs.ReadLedger(f)
		f.Close()
		switch {
		case rerr != nil:
			fmt.Printf("ledger: unreadable: %v\n", rerr)
		case torn:
			fmt.Printf("ledger: %d records — WARNING: torn final record (crash mid-append), ignored\n", len(recs))
		default:
			fmt.Printf("ledger: %d records\n", len(recs))
		}
	}
	return nil
}

// cmdTail prints a run-provenance ledger's records, one line each,
// tolerating (and flagging) a torn final record. With -f it keeps
// polling the file and prints records as tasks complete — following a
// live run's ledger from another terminal.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("bsctl tail", flag.ExitOnError)
	follow := fs.Bool("f", false, "follow the ledger, printing new records as they land")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval with -f")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("tail takes exactly one ledger path")
	}
	path := fs.Arg(0)

	printed := 0
	warned := false
	emit := func() error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		recs, torn, err := obs.ReadLedger(bytes.NewReader(data))
		if err != nil {
			return err
		}
		for _, rec := range recs[printed:] {
			line := fmt.Sprintf("%-12s %-10s seed=%d", rec.ID, rec.Outcome, rec.Seed)
			if rec.RunID != "" {
				line += " run=" + rec.RunID
			}
			if rec.Error != "" {
				line += " error=" + rec.Error
			}
			fmt.Println(line)
		}
		printed = len(recs)
		if torn && !*follow && !warned {
			// A torn tail mid-follow is normal (an append in flight);
			// only a final torn record is worth a warning.
			fmt.Fprintln(os.Stderr, "bsctl: WARNING: torn final record (crash mid-append), ignored")
			warned = true
		}
		return nil
	}
	if err := emit(); err != nil {
		return err
	}
	for *follow {
		time.Sleep(*interval)
		if err := emit(); err != nil {
			return err
		}
	}
	return nil
}
