package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"branchscope/internal/svc"
)

// cmdJob drives the campaign job service (cmd/experiments -service):
// submit a branchscope.job/v1 spec, inspect jobs, follow a job's
// branchscope.ledger/v1 stream, cancel a job.
func cmdJob(args []string) error {
	if len(args) == 0 {
		return errors.New("job requires a subcommand: submit | status | stream | cancel")
	}
	switch sub := args[0]; sub {
	case "submit":
		return jobSubmit(args[1:])
	case "status":
		return jobStatus(args[1:])
	case "stream":
		return jobStream(args[1:])
	case "cancel":
		return jobCancel(args[1:])
	default:
		return fmt.Errorf("unknown job subcommand %q (want submit, status, stream or cancel)", sub)
	}
}

// addrFlag registers the shared -addr flag.
func addrFlag(fs *flag.FlagSet) *string {
	return fs.String("addr", "", "campaign service base URL, e.g. http://127.0.0.1:8080 (required)")
}

// baseURL validates and normalizes -addr.
func baseURL(addr string) (string, error) {
	if addr == "" {
		return "", errors.New("job requires -addr (the service's -serve address)")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/"), nil
}

// apiError renders a non-2xx answer, surfacing the structured errorDoc
// fields (scope, Retry-After) the service shed with.
func apiError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var doc struct {
		Error             string `json:"error"`
		Scope             string `json:"scope"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if json.Unmarshal(b, &doc) == nil && doc.Error != "" {
		msg := fmt.Sprintf("%s: %s", resp.Status, doc.Error)
		if doc.Scope != "" {
			msg += fmt.Sprintf(" (scope %s)", doc.Scope)
		}
		if doc.RetryAfterSeconds > 0 {
			msg += fmt.Sprintf("; retry after %ds", doc.RetryAfterSeconds)
		}
		return errors.New(msg)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
}

// copyBody streams a 2xx response body (already JSON or NDJSON) to
// stdout; non-2xx becomes an error.
func copyBody(resp *http.Response) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	_, err := io.Copy(os.Stdout, resp.Body)
	return err
}

// jobSubmit posts a spec assembled from flags mirroring the
// cmd/experiments result-shaping flags; trailing args select
// experiment ids (empty = the full suite). -stream follows the job to
// completion after the 201.
func jobSubmit(args []string) error {
	fs := flag.NewFlagSet("bsctl job submit", flag.ExitOnError)
	addr := addrFlag(fs)
	tenant := fs.String("tenant", "", "tenant name, a safe path component (required)")
	seed := fs.Uint64("seed", 0, "base seed (0 = service default, 1)")
	quick := fs.Bool("quick", false, "run test-scale configurations")
	chaosFlag := fs.String("chaos", "", "chaos plan: light|moderate|heavy, an intensity float, or JSON")
	chaosSeed := fs.Uint64("chaos-seed", 0, "chaos schedule seed (0 = derive from the base seed)")
	retry := fs.Int("retry", 0, "per-task retry budget (0 = no retries)")
	breaker := fs.Int("breaker", 0, "per-family circuit-breaker threshold (0 = off)")
	timeout := fs.Duration("timeout", 0, "per-task wall-time limit (0 = unbounded)")
	deadline := fs.Duration("deadline", 0, "whole-job wall-time limit (0 = unbounded)")
	follow := fs.Bool("stream", false, "follow the job's ledger stream after submitting")
	fs.Parse(args)
	base, err := baseURL(*addr)
	if err != nil {
		return err
	}
	if *tenant == "" {
		return errors.New("job submit requires -tenant")
	}
	sp := svc.Spec{
		Schema:     svc.SpecSchema,
		Tenant:     *tenant,
		BaseSeed:   *seed,
		Quick:      *quick,
		Tasks:      fs.Args(),
		Chaos:      *chaosFlag,
		ChaosSeed:  *chaosSeed,
		Retry:      *retry,
		Breaker:    *breaker,
		TimeoutMS:  timeout.Milliseconds(),
		DeadlineMS: deadline.Milliseconds(),
	}
	body, err := json.Marshal(sp)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return apiError(resp)
	}
	var st svc.JobStatus
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("decoding job status: %w", err)
	}
	os.Stdout.Write(raw)
	if !*follow {
		return nil
	}
	return streamJob(base, st.ID)
}

// jobStatus fetches one job (trailing job-id) or lists jobs
// (optionally filtered by -tenant).
func jobStatus(args []string) error {
	fs := flag.NewFlagSet("bsctl job status", flag.ExitOnError)
	addr := addrFlag(fs)
	tenant := fs.String("tenant", "", "list only this tenant's jobs")
	fs.Parse(args)
	base, err := baseURL(*addr)
	if err != nil {
		return err
	}
	url := base + "/jobs"
	switch {
	case fs.NArg() == 1:
		url += "/" + fs.Arg(0)
	case fs.NArg() > 1:
		return errors.New("job status takes at most one job-id")
	case *tenant != "":
		url += "?tenant=" + *tenant
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return copyBody(resp)
}

// jobStream follows one job's ledger stream to EOF (job settled).
func jobStream(args []string) error {
	fs := flag.NewFlagSet("bsctl job stream", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	base, err := baseURL(*addr)
	if err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("job stream takes exactly one job-id")
	}
	return streamJob(base, fs.Arg(0))
}

func streamJob(base, id string) error {
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		return err
	}
	return copyBody(resp)
}

// jobCancel cancels a queued or running job.
func jobCancel(args []string) error {
	fs := flag.NewFlagSet("bsctl job cancel", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	base, err := baseURL(*addr)
	if err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("job cancel takes exactly one job-id")
	}
	resp, err := http.Post(base+"/jobs/"+fs.Arg(0)+"/cancel", "application/json", nil)
	if err != nil {
		return err
	}
	return copyBody(resp)
}
