package main

import (
	"errors"
	"flag"
	"fmt"

	"branchscope/internal/runstore"
)

// cmdCheck is the cross-run regression gate: it loads baseline samples
// (an archive of runs, a single run, a directory of pinned BENCH
// JSONs, or one JSON file), loads the candidate paths the same way,
// and flags any shared metric drifting outside the robust median/MAD
// envelope. Exit 1 on drift makes it a drop-in CI gate — the
// cross-machine sibling of TestHotpathGuardrail.
func cmdCheck(args []string) (bool, error) {
	fs := flag.NewFlagSet("bsctl check", flag.ExitOnError)
	baseline := fs.String("baseline", "", "baseline: archive dir, run dir, bench-JSON dir, or one JSON file (required)")
	opt := runstore.DefaultCheckOptions()
	fs.Float64Var(&opt.MADK, "madk", opt.MADK, "allowed deviation in normalized MADs of the baseline")
	fs.Float64Var(&opt.Rel, "rel", opt.Rel, "relative tolerance floor for dimensionless metrics")
	fs.Float64Var(&opt.RelNoisy, "rel-noisy", opt.RelNoisy, "relative tolerance floor for wall-clock (ns/seconds) metrics")
	fs.Float64Var(&opt.Abs, "abs", opt.Abs, "absolute tolerance floor (protects near-zero baselines)")
	fs.Parse(args)
	if *baseline == "" {
		return false, errors.New("check requires -baseline")
	}
	if fs.NArg() == 0 {
		return false, errors.New("check takes at least one candidate path")
	}

	base, err := runstore.LoadSamples(*baseline)
	if err != nil {
		return false, fmt.Errorf("baseline: %w", err)
	}
	cand := runstore.Sample{}
	for _, path := range fs.Args() {
		samples, err := runstore.LoadSamples(path)
		if err != nil {
			return false, fmt.Errorf("candidate: %w", err)
		}
		for _, s := range samples {
			for k, v := range s {
				cand[k] = v
			}
		}
	}

	findings := runstore.Check(base, cand, opt)
	if len(findings) == 0 {
		return false, errors.New("baseline and candidate share no metrics — nothing was checked")
	}
	for _, f := range findings {
		verdict := "ok   "
		if f.Drift {
			verdict = "DRIFT"
		}
		fmt.Printf("%s %-45s value=%-12.6g median=%-12.6g tol=%.6g\n",
			verdict, f.Metric, f.Value, f.Median, f.Tol)
	}
	if n := runstore.Drifted(findings); n > 0 {
		fmt.Printf("%d of %d metrics drifted beyond the baseline envelope\n", n, len(findings))
		return true, nil
	}
	fmt.Printf("all %d shared metrics within the baseline envelope\n", len(findings))
	return false, nil
}
