package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"branchscope/internal/runstore"
)

// cmdDiff structurally compares two archived runs: manifest identity,
// outcome vectors, artifact digests, and the exported result rows.
// Byte-identical runs produce no output and exit 0 — the property CI's
// archive smoke asserts. Volatile artifacts (wall clocks, live slots)
// are skipped unless -all asks for them.
func cmdDiff(args []string) (bool, error) {
	fs := flag.NewFlagSet("bsctl diff", flag.ExitOnError)
	all := fs.Bool("all", false, "also diff volatile artifacts (leakage report headline numbers)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return false, errors.New("diff takes exactly two run directories or manifest paths")
	}
	dirA, ma, err := runstore.LoadRun(fs.Arg(0))
	if err != nil {
		return false, err
	}
	dirB, mb, err := runstore.LoadRun(fs.Arg(1))
	if err != nil {
		return false, err
	}

	diffs := diffManifests(ma, mb)
	rows, err := diffExports(dirA, dirB)
	if err != nil {
		return false, err
	}
	diffs = append(diffs, rows...)
	if *all {
		leak, err := diffLeakage(dirA, dirB)
		if err != nil {
			return false, err
		}
		diffs = append(diffs, leak...)
	}

	for _, d := range diffs {
		fmt.Println(d)
	}
	return len(diffs) > 0, nil
}

// diffManifests compares the deterministic manifest content.
func diffManifests(a, b runstore.Manifest) []string {
	var diffs []string
	if a.RunID != b.RunID {
		diffs = append(diffs, fmt.Sprintf("run_id: %s vs %s (different identities)", a.RunID, b.RunID))
	}
	ja, _ := json.Marshal(a.Identity)
	jb, _ := json.Marshal(b.Identity)
	if !bytes.Equal(ja, jb) {
		diffs = append(diffs, fmt.Sprintf("identity: %s vs %s", ja, jb))
	}

	for _, k := range unionKeys(a.Counts, b.Counts) {
		if a.Counts[k] != b.Counts[k] {
			diffs = append(diffs, fmt.Sprintf("counts[%s]: %d vs %d", k, a.Counts[k], b.Counts[k]))
		}
	}

	oa := outcomesByID(a.Outcomes)
	ob := outcomesByID(b.Outcomes)
	for _, id := range unionKeys(oa, ob) {
		x, okA := oa[id]
		y, okB := ob[id]
		switch {
		case !okA:
			diffs = append(diffs, fmt.Sprintf("outcome %s: only in %s", id, b.RunID))
		case !okB:
			diffs = append(diffs, fmt.Sprintf("outcome %s: only in %s", id, a.RunID))
		case x != y:
			diffs = append(diffs, fmt.Sprintf("outcome %s: %+v vs %+v", id, x, y))
		}
	}

	if a.DegradedProbes != b.DegradedProbes {
		diffs = append(diffs, fmt.Sprintf("degraded_probes: %d vs %d", a.DegradedProbes, b.DegradedProbes))
	}
	if len(a.Breakers) != 0 || len(b.Breakers) != 0 {
		ba, _ := json.Marshal(a.Breakers)
		bb, _ := json.Marshal(b.Breakers)
		if !bytes.Equal(ba, bb) {
			diffs = append(diffs, fmt.Sprintf("breakers: %s vs %s", ba, bb))
		}
	}

	aa := artifactsByName(a.Artifacts)
	ab := artifactsByName(b.Artifacts)
	for _, name := range unionKeys(aa, ab) {
		x, okA := aa[name]
		y, okB := ab[name]
		switch {
		case !okA:
			diffs = append(diffs, fmt.Sprintf("artifact %s: only in %s", name, b.RunID))
		case !okB:
			diffs = append(diffs, fmt.Sprintf("artifact %s: only in %s", name, a.RunID))
		case x.Volatile != y.Volatile:
			diffs = append(diffs, fmt.Sprintf("artifact %s: volatile=%v vs %v", name, x.Volatile, y.Volatile))
		case x.Digest != y.Digest:
			diffs = append(diffs, fmt.Sprintf("artifact %s: digest %s vs %s", name, x.Digest, y.Digest))
		}
	}
	return diffs
}

func outcomesByID(os []runstore.TaskOutcome) map[string]runstore.TaskOutcome {
	m := make(map[string]runstore.TaskOutcome, len(os))
	for _, o := range os {
		m[o.ID] = o
	}
	return m
}

func artifactsByName(as []runstore.Artifact) map[string]runstore.Artifact {
	m := make(map[string]runstore.Artifact, len(as))
	for _, a := range as {
		m[a.Name] = a
	}
	return m
}

// unionKeys returns the sorted union of two maps' keys.
func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// exportDoc is the subset of the experiments JSON export diff reads.
type exportDoc struct {
	Experiments []struct {
		ID    string            `json:"id"`
		Error string            `json:"error"`
		Rows  []json.RawMessage `json:"rows"`
	} `json:"experiments"`
}

// diffExports compares the structured result rows of the two runs'
// archived JSON exports, row by row — finer grained than the export
// digest: it names the experiment and row where the bytes diverge.
func diffExports(dirA, dirB string) ([]string, error) {
	da, okA, err := readExport(dirA)
	if err != nil {
		return nil, err
	}
	db, okB, err := readExport(dirB)
	if err != nil {
		return nil, err
	}
	if !okA || !okB {
		return nil, nil // absence is already reported as an artifact diff
	}
	type exp struct {
		err  string
		rows []json.RawMessage
	}
	byID := func(d exportDoc) map[string]exp {
		m := make(map[string]exp, len(d.Experiments))
		for _, e := range d.Experiments {
			m[e.ID] = exp{err: e.Error, rows: e.Rows}
		}
		return m
	}
	ea, eb := byID(da), byID(db)
	var diffs []string
	for _, id := range unionKeys(ea, eb) {
		x, okA := ea[id]
		y, okB := eb[id]
		switch {
		case !okA || !okB:
			diffs = append(diffs, fmt.Sprintf("export %s: present in only one run", id))
			continue
		case x.err != y.err:
			diffs = append(diffs, fmt.Sprintf("export %s: error %q vs %q", id, x.err, y.err))
			continue
		case len(x.rows) != len(y.rows):
			diffs = append(diffs, fmt.Sprintf("export %s: %d rows vs %d", id, len(x.rows), len(y.rows)))
			continue
		}
		for i := range x.rows {
			if !bytes.Equal(x.rows[i], y.rows[i]) {
				diffs = append(diffs, fmt.Sprintf("export %s row %d: %s vs %s", id, i, x.rows[i], y.rows[i]))
			}
		}
	}
	return diffs, nil
}

func readExport(dir string) (exportDoc, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, "export.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return exportDoc{}, false, nil
		}
		return exportDoc{}, false, err
	}
	var d exportDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return exportDoc{}, false, fmt.Errorf("%s/export.json: %w", dir, err)
	}
	return d, true, nil
}

// diffLeakage (-all) compares the archived leakage reports' headline
// channel-quality numbers and window counts. The report is a volatile
// artifact — under -parallel the live slot is last-writer-wins — which
// is exactly why it only diffs on request.
func diffLeakage(dirA, dirB string) ([]string, error) {
	la, okA, err := readLeakage(dirA)
	if err != nil {
		return nil, err
	}
	lb, okB, err := readLeakage(dirB)
	if err != nil {
		return nil, err
	}
	if !okA || !okB {
		return nil, nil
	}
	var diffs []string
	cmp := func(name string, a, b float64) {
		if a != b {
			diffs = append(diffs, fmt.Sprintf("leakage %s: %v vs %v", name, a, b))
		}
	}
	cmp("windows", float64(la.Windows), float64(lb.Windows))
	cmp("bits", float64(la.Bits), float64(lb.Bits))
	cmp("bit_error_rate", la.BitErrorRate, lb.BitErrorRate)
	cmp("mutual_information_bits", la.MutualInformationBits, lb.MutualInformationBits)
	cmp("capacity_bits", la.CapacityBits, lb.CapacityBits)
	cmp("snr", la.SNR, lb.SNR)
	return diffs, nil
}

type leakageDoc struct {
	Windows               uint64  `json:"windows"`
	Bits                  uint64  `json:"bits"`
	BitErrorRate          float64 `json:"bit_error_rate"`
	MutualInformationBits float64 `json:"mutual_information_bits"`
	CapacityBits          float64 `json:"capacity_bits"`
	SNR                   float64 `json:"snr"`
}

func readLeakage(dir string) (leakageDoc, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, "leakage.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return leakageDoc{}, false, nil
		}
		return leakageDoc{}, false, err
	}
	var d leakageDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return leakageDoc{}, false, fmt.Errorf("%s/leakage.json: %w", dir, err)
	}
	return d, true, nil
}
