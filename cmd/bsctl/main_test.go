package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"branchscope/internal/engine"
	"branchscope/internal/runstore"
)

// capture runs fn with stdout and stderr redirected and returns both.
func capture(t *testing.T, fn func() error) (stdout, stderr string, err error) {
	t.Helper()
	origOut, origErr := os.Stdout, os.Stderr
	ro, wo, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	re, we, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	os.Stdout, os.Stderr = wo, we
	err = fn()
	os.Stdout, os.Stderr = origOut, origErr
	wo.Close()
	we.Close()
	var bo, be bytes.Buffer
	io.Copy(&bo, ro)
	io.Copy(&be, re)
	return bo.String(), be.String(), err
}

// writeArchive runs a small deterministic suite at the given
// parallelism and archives it, returning the run directory.
func writeArchive(t *testing.T, workers int, seed uint64, failTask string) string {
	t.Helper()
	ids := []string{"alpha", "bravo", "charlie"}
	var tasks []engine.Task
	for _, id := range ids {
		id := id
		tasks = append(tasks, engine.Task{ID: id, Artifact: "T",
			Run: func(_ context.Context, cfg engine.Config) (engine.Result, error) {
				if id == failTask {
					return nil, fmt.Errorf("induced failure")
				}
				return litResult{id: id, seed: cfg.Seed}, nil
			}})
	}
	id := runstore.Identity{Program: "t", BaseSeed: seed, Quick: true, Tasks: ids}
	r := &engine.Runner{Pool: engine.NewPool(workers)}
	reports := r.RunSuite(context.Background(), tasks, engine.Config{Quick: true, Seed: seed})

	arc := runstore.New(t.TempDir(), id)
	for i := range reports {
		reports[i].Wall = 0
		rep := reports[i]
		o := runstore.TaskOutcome{ID: rep.Task.ID, Seed: rep.Seed, Outcome: rep.Outcome(), Attempts: rep.Attempts}
		if rep.Err != nil {
			o.Error = rep.Err.Error()
		}
		arc.Record(o)
	}
	var report, export bytes.Buffer
	engine.FormatText(&report, reports)
	if err := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: seed, Quick: true, RunID: id.RunID()}, reports); err != nil {
		t.Fatal(err)
	}
	arc.AddBlob("report", report.Bytes())
	arc.AddBlob("export", export.Bytes())
	dir, err := arc.Write()
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

type litResult struct {
	id   string
	seed uint64
}

func (r litResult) String() string { return fmt.Sprintf("%s seed %d\n", r.id, r.seed) }
func (r litResult) Rows() []engine.Row {
	return []engine.Row{{engine.F("id", r.id), engine.F("seed", r.seed)}}
}

// TestDiffEmptyAcrossParallelism: the ISSUE's acceptance property at
// the bsctl level — a -parallel 1 and a -parallel 8 run of the same
// identity diff empty.
func TestDiffEmptyAcrossParallelism(t *testing.T) {
	a := writeArchive(t, 1, 7, "")
	b := writeArchive(t, 8, 7, "")
	out, _, err := capture(t, func() error {
		dirty, err := cmdDiff([]string{a, b})
		if dirty {
			t.Error("identical runs reported dirty")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != "" {
		t.Errorf("diff of identical runs printed output:\n%s", out)
	}
}

// TestDiffFlagsDivergence: different seeds are different identities,
// and a failure shows up as an outcome/row diff, with exit-1 semantics.
func TestDiffFlagsDivergence(t *testing.T) {
	a := writeArchive(t, 1, 7, "")
	b := writeArchive(t, 1, 8, "")
	out, _, err := capture(t, func() error {
		dirty, err := cmdDiff([]string{a, b})
		if !dirty {
			t.Error("different-seed runs reported clean")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "run_id:") {
		t.Errorf("seed divergence not reported as identity diff:\n%s", out)
	}

	c := writeArchive(t, 1, 7, "bravo")
	out, _, err = capture(t, func() error {
		dirty, err := cmdDiff([]string{a, c})
		if !dirty {
			t.Error("failing run diffed clean against passing run")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "outcome bravo") {
		t.Errorf("induced failure not localized to its task:\n%s", out)
	}
}

// TestCheckGate: true positive on synthetic drift, false positive
// check on matching benches.
func TestCheckGate(t *testing.T) {
	dir := t.TempDir()
	baseDir := filepath.Join(dir, "base")
	if err := os.MkdirAll(baseDir, 0o755); err != nil {
		t.Fatal(err)
	}
	bench := func(path, doc string) {
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bench(filepath.Join(baseDir, "BENCH_hotpath.json"), `{"speedup": 2.5, "batched_ns_per_branch": 4.0, "pass": true}`)

	good := filepath.Join(dir, "BENCH_hotpath.json")
	bench(good, `{"speedup": 2.6, "batched_ns_per_branch": 7.0, "pass": true}`)
	_, _, err := capture(t, func() error {
		dirty, err := cmdCheck([]string{"-baseline", baseDir, good})
		if dirty {
			t.Error("in-envelope candidate flagged as drift")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	badDir := t.TempDir()
	bad := filepath.Join(badDir, "BENCH_hotpath.json")
	bench(bad, `{"speedup": 1.1, "batched_ns_per_branch": 4.0, "pass": false}`)
	out, _, err := capture(t, func() error {
		dirty, err := cmdCheck([]string{"-baseline", baseDir, bad})
		if !dirty {
			t.Error("synthetic regression passed the gate")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DRIFT") {
		t.Errorf("drift not reported:\n%s", out)
	}

	// Disjoint metrics must fail loudly, not silently pass.
	empty := filepath.Join(t.TempDir(), "BENCH_other.json")
	bench(empty, `{"unrelated": 1}`)
	_, _, err = capture(t, func() error {
		_, err := cmdCheck([]string{"-baseline", baseDir, empty})
		return err
	})
	if err == nil {
		t.Error("check with zero shared metrics did not error")
	}
}

// TestTailTornWarning: tail prints every intact record and warns on a
// torn final line instead of failing or silently dropping it.
func TestTailTornWarning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	rec := `{"schema":"branchscope.ledger/v1","run_id":"bsr-1234","program":"t","id":"a","config":{},"base_seed":1,"seed":1,"outcome":"ok","wall_seconds":0}` + "\n"
	if err := os.WriteFile(path, []byte(rec+`{"schema":"branchscope.led`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut, err := capture(t, func() error { return cmdTail([]string{path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "ok") || !strings.Contains(out, "run=bsr-1234") {
		t.Errorf("record not rendered: %q", out)
	}
	if !strings.Contains(errOut, "torn") {
		t.Errorf("torn final record not warned about: %q", errOut)
	}
}

// TestFollowRetriesTransientErrors: tail -f must survive transient
// read errors with capped doubling backoff — report the outage once,
// keep retrying, recover silently — instead of exiting on the first
// error.
func TestFollowRetriesTransientErrors(t *testing.T) {
	boom := errors.New("read /tmp/ledger.jsonl: resource temporarily unavailable")
	calls := 0
	emit := func() error {
		calls++
		if calls <= 4 {
			return boom
		}
		return nil
	}
	var sleeps []time.Duration
	sleep := func(d time.Duration) { sleeps = append(sleeps, d) }
	iterations := 0
	cont := func() bool { iterations++; return iterations <= 6 }

	_, errOut, err := capture(t, func() error {
		followLedger(emit, 100*time.Millisecond, sleep, cont)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Errorf("emit called %d times, want 6 (the loop must keep retrying)", calls)
	}
	want := []time.Duration{
		100 * time.Millisecond, // first try
		200 * time.Millisecond, // doubled after failure 1
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		100 * time.Millisecond, // success resets to the interval
	}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, sleeps[i], want[i])
		}
	}
	if got := strings.Count(errOut, "transient read error"); got != 1 {
		t.Errorf("outage reported %d times, want exactly once:\n%s", got, errOut)
	}
	if !strings.Contains(errOut, "readable again") {
		t.Errorf("recovery not reported:\n%s", errOut)
	}
}

// TestFollowBackoffCap: the retry backoff never exceeds maxTailBackoff.
func TestFollowBackoffCap(t *testing.T) {
	emit := func() error { return errors.New("still broken") }
	var last time.Duration
	sleep := func(d time.Duration) { last = d }
	iterations := 0
	cont := func() bool { iterations++; return iterations <= 20 }
	_, _, err := capture(t, func() error {
		followLedger(emit, time.Second, sleep, cont)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != maxTailBackoff {
		t.Errorf("backoff after 20 failures = %v, want capped at %v", last, maxTailBackoff)
	}
}

// TestTailTruncationRestart: a ledger that shrinks between reads (a new
// run re-created it) restarts printing from the top instead of slicing
// past the end.
func TestTailTruncationRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	rec := func(id string) string {
		return `{"schema":"branchscope.ledger/v1","program":"t","id":"` + id + `","config":{},"base_seed":1,"seed":1,"outcome":"ok","wall_seconds":0}` + "\n"
	}
	if err := os.WriteFile(path, []byte(rec("a")+rec("b")+rec("c")), 0o644); err != nil {
		t.Fatal(err)
	}
	// Drive one tail's emit twice: print the 3-record file, replace it
	// with a 1-record one, and require the second pass to restart from
	// the top instead of panicking on recs[3:].
	out, errOut, err := capture(t, func() error {
		p := &tailPrinter{path: path, follow: true}
		if err := p.emit(); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(rec("z")), 0o644); err != nil {
			return err
		}
		return p.emit()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c", "z"} {
		if !strings.Contains(out, id) {
			t.Errorf("record %q not printed:\n%s", id, out)
		}
	}
	if !strings.Contains(errOut, "truncated") {
		t.Errorf("truncation not reported:\n%s", errOut)
	}
}

// TestListAndShow smoke the render paths over a real archive.
func TestListAndShow(t *testing.T) {
	run := writeArchive(t, 1, 7, "")
	archiveRoot := filepath.Dir(run)
	out, _, err := capture(t, func() error { return cmdList([]string{archiveRoot}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bsr-") || !strings.Contains(out, "ok=3") {
		t.Errorf("list output missing run line: %q", out)
	}
	out, _, err = capture(t, func() error { return cmdShow([]string{run}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run     bsr-", "export.json", "report.txt", "sha256:"} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}
}
