// Command bsctl inspects branchscope run archives: the manifests,
// ledgers and leakage reports that -archive (and -ledger-out) leave
// behind. It is the operator half of internal/runstore — the CLIs
// write archives, bsctl answers questions about them:
//
//	bsctl list <archive-dir>             # archived runs, one line each
//	bsctl show <run-dir|manifest.json>   # one run's manifest + artifacts
//	bsctl tail [-f] <ledger.jsonl>       # follow a live ledger, torn-tolerant
//	bsctl diff [-all] <runA> <runB>      # structural diff; empty = same run
//	bsctl check -baseline <path> <path>  # median/MAD regression gate
//	bsctl job <submit|status|stream|cancel> -addr URL ...
//	                                     # drive a campaign job service
//
// Exit codes: 0 clean, 1 differences/drift/failed records, 2 usage or
// I/O errors — so `bsctl diff` and `bsctl check` gate CI directly.
package main

import (
	"fmt"
	"os"
)

func usage() {
	fmt.Fprint(os.Stderr, `usage: bsctl <command> [args]

commands:
  list  <archive-dir>              list archived runs
  show  <run-dir|manifest.json>    render one run's manifest and artifacts
  tail  [-f] <ledger.jsonl>        print (and follow) a run-provenance ledger
  diff  [-all] <runA> <runB>       structural diff of two archived runs
  check -baseline <path> [flags] <candidate>...
                                   robust regression gate vs a baseline
  job   submit -addr URL -tenant T [flags] [id ...]
                                   submit a job to a campaign service
  job   status -addr URL [-tenant T] [job-id]
  job   stream -addr URL <job-id>  follow a job's ledger stream to EOF
  job   cancel -addr URL <job-id>
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	var dirty bool // differences or drift found (exit 1, not an error)
	switch cmd := os.Args[1]; cmd {
	case "list":
		err = cmdList(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "tail":
		err = cmdTail(os.Args[2:])
	case "diff":
		dirty, err = cmdDiff(os.Args[2:])
	case "check":
		dirty, err = cmdCheck(os.Args[2:])
	case "job":
		err = cmdJob(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "bsctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bsctl: %v\n", err)
		os.Exit(2)
	}
	if dirty {
		os.Exit(1)
	}
}
