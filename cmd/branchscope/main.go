// Command branchscope runs the covert-channel attack end to end on a
// simulated machine and reports the error rate: a demo driver for the
// library's main flow (spawn sender, pre-attack search, prime–step–probe
// per bit, decode).
//
// Usage:
//
//	branchscope [-model Skylake] [-bits 10000] [-pattern random]
//	            [-noisy] [-sgx] [-timing] [-seed 1] [-v]
//	            [-chaos light|moderate|heavy|FLOAT|JSON] [-chaos-seed 0]
//	            [-retry N]
//	            [-serve addr] [-ledger-out l.jsonl]
//	            [-metrics-out m.json] [-trace-out t.json]
//	            [-leakage-out lk.json] [-introspect-out pht.json]
//	            [-archive dir]
//	            [-log-format text|json] [-log-level info]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Observability (shared surface, see internal/cliutil): -metrics-out
// writes the telemetry registry (episode counts, pattern distribution,
// per-stage cycle histograms, scheduler and CPU counters) as JSON;
// -trace-out writes a Chrome trace-event JSON of the run — per-thread
// timelines with one span per attack episode — loadable at
// ui.perfetto.dev. Both record simulated cycles only and are
// byte-identical across runs with the same seed, and both are flushed
// even when the run is interrupted by SIGINT. -serve exposes /metrics,
// /leakage, /introspect/pht, /statusz, /healthz, /readyz and
// /debug/pprof live during the run; -ledger-out appends one
// branchscope.ledger/v1 provenance record for the run (config, seed,
// outcome, error-rate digest, metrics delta, flattened leakage
// gauges). -v additionally prints a metrics summary table with
// p50/p95/p99 cycle quantiles. -archive <dir> snapshots every sink
// plus a branchscope.run/v1 manifest under <dir>/<run-id>/, where
// <run-id> digests only the result-shaping knobs (see
// internal/runstore; inspect archives with cmd/bsctl).
//
// Leakage analytics (see internal/leakage and DESIGN §3.17): every run
// streams per-window channel-quality estimates — BER, mutual
// information and Blahut–Arimoto capacity in bits/branch, probe-signal
// SNR, and the 3-outcome confusion matrix — and the summary line after
// the error rate reports them. -leakage-out writes the final
// branchscope.leakage/v1 report; -introspect-out writes the decoded
// machine's predictor snapshot (per-entry 2-bit counter states and the
// per-set mispredict heatmap) as branchscope.introspect/v1 JSON.
//
// Resilience (see DESIGN §3.15): -chaos attaches a deterministic fault
// injector to the run; -retry N switches the spy to the resilient
// per-bit majority-vote read, reporting bits whose vote stays
// ambiguous as unknown rather than silently wrong.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"branchscope/internal/cliutil"
	"branchscope/internal/cpu"
	"branchscope/internal/engine"
	"branchscope/internal/experiments"
	"branchscope/internal/fabric"
	"branchscope/internal/obs"
	"branchscope/internal/runstore"
	"branchscope/internal/telemetry"
	"branchscope/internal/trace"
	"branchscope/internal/uarch"
)

func main() { os.Exit(run()) }

// usageErr reports a flag-validation failure the way the flag package
// does: message to stderr, usage, exit status 2.
func usageErr(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	return 2
}

func run() (code int) {
	var (
		model   = flag.String("model", "Skylake", "CPU model: Skylake, Haswell or SandyBridge")
		bits    = flag.Int("bits", 10000, "number of secret bits to transmit per run")
		runs    = flag.Int("runs", 1, "independent runs to average")
		pattern = flag.String("pattern", "random", "bit pattern: zeros, ones or random")
		noisy   = flag.Bool("noisy", false, "unrestricted setting (background noise shares the core)")
		sgxMode = flag.Bool("sgx", false, "run the sender inside an SGX enclave with an OS-assisted spy")
		timing  = flag.Bool("timing", false, "probe with rdtscp timing instead of the misprediction PMC")
		seed    = flag.Uint64("seed", 1, "random seed (runs are fully deterministic per seed)")
		verbose = flag.Bool("v", false, "print per-run error rates and a metrics summary table")
		traced  = flag.Bool("trace", false, "record and summarize the spy's execution trace")
	)
	var obsFlags cliutil.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	// Validate the flag set up front; nonsensical combinations are
	// usage errors, not silently ignored knobs.
	if flag.NArg() > 0 {
		return usageErr("unexpected arguments: %v", flag.Args())
	}
	if *bits <= 0 {
		return usageErr("-bits must be positive (got %d)", *bits)
	}
	if *runs <= 0 {
		return usageErr("-runs must be positive (got %d)", *runs)
	}
	if *sgxMode && *noisy {
		return usageErr("-sgx cannot be combined with -noisy: the SGX threat model's malicious OS " +
			"controls scheduling (use `experiments table3` for the partially-suppressed-noise cell)")
	}
	if *traced && *runs > 1 {
		return usageErr("-trace requires -runs 1: per-run recorder summaries would be " +
			"misattributed when averaging over runs")
	}
	if err := obsFlags.RequireNoCampaign("branchscope"); err != nil {
		return usageErr("%v", err)
	}
	if err := obsFlags.RequireNoService("branchscope"); err != nil {
		return usageErr("%v", err)
	}
	// -coordinator/-worker/-workers: the distributed fabric (see
	// internal/fabric). For this single-task CLI the coordinator
	// dispatches the one covert run to the pool and prints the merged
	// result line; -v and -trace need the in-process result and stay
	// local-only.
	workerURLs, err := obsFlags.FabricWorkers()
	if err != nil {
		return usageErr("branchscope: %v", err)
	}
	if (obsFlags.Worker || len(workerURLs) > 0) && (*verbose || *traced) {
		return usageErr("branchscope: -v/-trace need the in-process run; they cannot be combined with -worker/-coordinator")
	}
	m, err := uarch.ByName(*model)
	if err != nil {
		return usageErr("%v", err)
	}
	var pat experiments.BitPattern
	switch *pattern {
	case "zeros":
		pat = experiments.AllZeros
	case "ones":
		pat = experiments.AllOnes
	case "random":
		pat = experiments.RandomBits
	default:
		return usageErr("unknown pattern %q (want zeros, ones or random)", *pattern)
	}
	setting := experiments.Isolated
	if *noisy {
		setting = experiments.Noisy
	}

	// The single root task this CLI runs, as /statusz reports it.
	tracker := obs.NewTracker("branchscope", *seed, false, []string{"covert"})
	opts := cliutil.Options{
		// The registry is always on (the CLI is not a hot path; the -v
		// table reads it); the tracer only when its output is
		// requested, since it retains every event.
		ForceMetrics: true,
		Status:       tracker.Status,
		Ready:        tracker.Ready,
	}
	var wk *fabric.Worker
	if obsFlags.Worker {
		wk = &fabric.Worker{}
		opts.Fabric = wk.Handler()
	}
	sess, err := cliutil.NewSession("branchscope", obsFlags, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		return 2
	}
	// Close flushes metrics/trace/ledger and shuts the server down on
	// every exit path, including SIGINT-canceled runs.
	defer func() {
		if err := sess.Close(); err != nil {
			sess.Log.Error("flushing observability exports", "err", err)
			if code == 0 {
				code = 1
			}
		}
	}()
	reg := sess.Metrics
	set := telemetry.New(reg, sess.Trace)

	cfg := experiments.CovertConfig{
		Model:     m,
		Setting:   setting,
		Pattern:   pat,
		Bits:      *bits,
		Runs:      *runs,
		SGX:       *sgxMode,
		UseTiming: *timing,
		Seed:      *seed,
		Telemetry: set,
	}
	plan, err := obsFlags.ChaosPlan(*seed)
	if err != nil {
		return usageErr("branchscope: %v", err)
	}
	if plan != nil {
		sess.Log.Info("chaos enabled", "plan", plan.String())
		cfg.Chaos = plan
	}
	if rc := obsFlags.RetryConfig(); rc != nil {
		cfg.Retry = *rc
	}

	// Causal run identity over the result-shaping knobs only (sink
	// paths and execution shape excluded); stamped into the ledger
	// record, /statusz, and — under -archive — the run manifest.
	idCfg, err := obsFlags.IdentityConfig(*seed)
	if err != nil {
		return usageErr("branchscope: %v", err)
	}
	idCfg["model"] = m.Name
	idCfg["bits"] = *bits
	idCfg["runs"] = *runs
	idCfg["pattern"] = *pattern
	idCfg["setting"] = setting.String()
	idCfg["sgx"] = *sgxMode
	idCfg["timing"] = *timing

	// The covert run as an engine task. Its Run deliberately ignores
	// the engine-derived seed and uses the flag config: in fabric mode
	// the assignment identity check guarantees both sides share -seed
	// and every covert knob, and local mode's output (which runs with
	// the bare -seed, not a task-derived one) stays the oracle.
	covertTask := engine.Task{
		ID: "covert", Artifact: "covert channel",
		Run: func(ctx context.Context, _ engine.Config) (engine.Result, error) {
			return experiments.RunCovert(ctx, cfg)
		},
	}

	// Worker mode: serve the covert task to a coordinator until
	// interrupted; everything below (identity, archive, report) is
	// coordinator-side.
	if wk != nil {
		wk.Program = "branchscope"
		wk.BaseSeed = *seed
		wk.Config = idCfg
		wk.Resolve = func(id string) (engine.Task, bool) {
			if id != "covert" {
				return engine.Task{}, false
			}
			return covertTask, true
		}
		wk.Runner = &engine.Runner{
			OnStart: func(t engine.Task, s uint64) {
				tracker.Begin(t.ID, *seed)
				sess.Log.Info("task start", "id", t.ID, "seed", *seed)
			},
			OnDone: func(rep engine.Report) {
				tracker.End(rep.Task.ID, rep.Wall, rep.Outcome(), rep.Err)
				sess.Log.Info("task done", "id", rep.Task.ID, "outcome", rep.Outcome())
			},
		}
		wk.RunCfg = engine.Config{Seed: *seed}
		if plan != nil {
			// Worker-targeted chaos crash: exit(3) right after the Nth
			// streamed outcome.
			wk.CrashAfter = plan.CrashPoint()
		}
		wk.Logf = func(format string, args ...any) { sess.Log.Info(fmt.Sprintf(format, args...)) }
		wctx, wstop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer wstop()
		sess.Log.Info("fabric worker serving", "task", "covert", "crash_after", wk.CrashAfter)
		<-wctx.Done()
		sess.Log.Info("fabric worker interrupted, shutting down")
		return 0
	}

	identity := runstore.Identity{
		Program: "branchscope", BaseSeed: *seed, Tasks: []string{"covert"}, Config: idCfg,
	}
	runID := identity.RunID()
	sess.SetRunID(runID)
	arc := obsFlags.Archiver(identity)
	sess.SetArchiver(arc)

	var recorders []*trace.Recorder
	if *traced {
		cfg.SpyHook = func(ctx *cpu.Context) {
			recorders = append(recorders, trace.Attach(ctx, 64))
		}
	}
	fmt.Printf("BranchScope covert channel: %s, %s, %s, %d bits x %d run(s)",
		m, setting, pat, *bits, *runs)
	if *sgxMode {
		fmt.Print(", sender in SGX enclave")
	}
	if *timing {
		fmt.Print(", rdtscp probing")
	}
	if plan != nil {
		fmt.Printf(", chaos %s", obsFlags.Chaos)
	}
	if cfg.Retry.MaxAttempts > 0 {
		fmt.Printf(", retry budget %d", cfg.Retry.MaxAttempts)
	}
	fmt.Println()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ledgerConfig := map[string]any{
		"model":   m.Name,
		"bits":    *bits,
		"runs":    *runs,
		"pattern": *pattern,
		"setting": setting.String(),
		"sgx":     *sgxMode,
		"timing":  *timing,
		"chaos":   obsFlags.Chaos,
		"retry":   obsFlags.Retry,
	}
	tracker.Begin("covert", *seed)
	sess.Deltas.Begin("covert")
	sess.Log.Info("task start", "id", "covert", "seed", *seed, "model", m.Name, "bits", *bits, "runs", *runs)
	if obsFlags.Watchdog > 0 {
		w := time.AfterFunc(obsFlags.Watchdog, func() {
			tracker.MarkStuck("covert")
			sess.Log.Warn("task stuck past watchdog", "id", "covert", "watchdog", obsFlags.Watchdog.String())
		})
		defer w.Stop()
	}
	start := time.Now()

	// Coordinator mode: dispatch the covert task to the worker pool and
	// settle the merged report through the same ledger/archive surface
	// as the local path. The report and export blobs are byte-identical
	// to a local run (the worker's result text and rows round-trip
	// verbatim through the replay path); the stdout summary prints the
	// merged result line instead of the local per-field breakdown.
	if len(workerURLs) > 0 {
		coord := &fabric.Coordinator{
			Workers:   workerURLs,
			Program:   "branchscope",
			BaseSeed:  *seed,
			Config:    idCfg,
			RunID:     runID,
			Local:     &engine.Runner{RunID: runID},
			LocalCfg:  engine.Config{Seed: *seed},
			OnDegrade: func(reason string) { sess.Log.Warn("fabric degraded", "reason", reason) },
			Logf:      func(format string, args ...any) { sess.Log.Info(fmt.Sprintf(format, args...)) },
		}
		reports, jerr := coord.Run(ctx, []engine.Task{covertTask})
		if jerr != nil {
			sess.Log.Error("fabric journal", "err", jerr)
		}
		rep := reports[0]
		wall := time.Since(start)
		tracker.End("covert", wall, "", rep.Err)
		// Seed and outcome are normalized to the local run's: the fabric
		// derives a per-task seed (which the covert task ignores — see
		// above) and marks merged successes "replayed".
		outcome := runstore.CanonicalOutcome(rep.Outcome(), rep.Attempts)
		rec := obs.LedgerRecord{
			Program:      "branchscope",
			ID:           "covert",
			Artifact:     "covert channel",
			Config:       ledgerConfig,
			BaseSeed:     *seed,
			Seed:         *seed,
			Outcome:      outcome,
			WallSeconds:  wall.Seconds(),
			MetricsDelta: sess.Deltas.End("covert"),
		}
		rec.Leakage = obs.LeakageFields(rec.MetricsDelta)
		if rep.Err != nil {
			rec.Error = rep.Err.Error()
			arc.Record(runstore.TaskOutcome{ID: "covert", Seed: *seed, Outcome: outcome, Error: rep.Err.Error()})
			if lerr := sess.Ledger.Append(rec); lerr != nil {
				sess.Log.Error("appending ledger record", "err", lerr)
			}
			sess.Log.Error("task failed", "id", "covert", "outcome", outcome, "err", rep.Err)
			return 1
		}
		rec.ResultDigest = obs.Digest(rep.Result.String())
		if lerr := sess.Ledger.Append(rec); lerr != nil {
			sess.Log.Error("appending ledger record", "err", lerr)
		}
		arc.Record(runstore.TaskOutcome{ID: "covert", Seed: *seed, Outcome: outcome})
		if arc != nil {
			arc.AddBlob("report", []byte(rep.Result.String()))
			exp := engine.Report{
				Task:   engine.Task{ID: "covert", Artifact: "covert channel"},
				Seed:   *seed,
				RunID:  runID,
				Result: rep.Result,
			}
			var export bytes.Buffer
			if werr := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: *seed, RunID: runID}, []engine.Report{exp}); werr != nil {
				sess.Log.Error("rendering archive export", "err", werr)
			} else {
				arc.AddBlob("export", export.Bytes())
			}
		}
		sess.Log.Info("task done", "id", "covert", "outcome", outcome, "wall", wall.String())
		fmt.Println(rep.Result.String())
		return 0
	}

	res, err := experiments.RunCovert(ctx, cfg)
	wall := time.Since(start)
	tracker.End("covert", wall, "", err)
	rec := obs.LedgerRecord{
		Program:  "branchscope",
		ID:       "covert",
		Artifact: "covert channel",
		Config:   ledgerConfig,
		BaseSeed: *seed,
		Seed:     *seed,
		Outcome:  obs.OutcomeOf(err),
		// WallSeconds is the one nondeterministic ledger field.
		WallSeconds:  wall.Seconds(),
		MetricsDelta: sess.Deltas.End("covert"),
	}
	rec.Leakage = obs.LeakageFields(rec.MetricsDelta)
	if err != nil {
		rec.Error = err.Error()
		arc.Record(runstore.TaskOutcome{ID: "covert", Seed: *seed, Outcome: rec.Outcome, Error: err.Error()})
		if lerr := sess.Ledger.Append(rec); lerr != nil {
			sess.Log.Error("appending ledger record", "err", lerr)
		}
		sess.Log.Error("task failed", "id", "covert", "outcome", rec.Outcome, "err", err)
		return 1
	}
	rec.ResultDigest = obs.Digest(res.String())
	if lerr := sess.Ledger.Append(rec); lerr != nil {
		sess.Log.Error("appending ledger record", "err", lerr)
	}
	arc.Record(runstore.TaskOutcome{ID: "covert", Seed: *seed, Outcome: rec.Outcome})
	if arc != nil {
		arc.AddBlob("report", []byte(res.String()))
		rep := engine.Report{
			Task:   engine.Task{ID: "covert", Artifact: "covert channel"},
			Seed:   *seed,
			RunID:  runID,
			Result: res,
		}
		var export bytes.Buffer
		if werr := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: *seed, RunID: runID}, []engine.Report{rep}); werr != nil {
			sess.Log.Error("rendering archive export", "err", werr)
		} else {
			arc.AddBlob("export", export.Bytes())
		}
	}
	sess.Log.Info("task done", "id", "covert", "outcome", "ok",
		"wall", wall.String(), "error_rate", res.ErrorRate)

	if *verbose {
		for i, r := range res.PerRun {
			fmt.Printf("  run %d: %.3f%%\n", i+1, 100*r)
		}
	}
	if res.SetupFailed > 0 {
		fmt.Printf("pre-attack block search failed in %d run(s)\n", res.SetupFailed)
	}
	if res.Unknown > 0 {
		fmt.Printf("unknown bits: %d (budget exhausted; each scored as a coin flip)\n", res.Unknown)
	}
	if res.Recalibrations > 0 {
		fmt.Printf("timing detector recalibrated %d time(s) after drift\n", res.Recalibrations)
	}
	fmt.Printf("average error rate: %.3f%%\n", 100*res.ErrorRate)
	fmt.Printf("channel quality: BER %.4f, MI %.3f bits/branch, capacity %.3f bits/branch, SNR %.3f\n",
		res.Leakage.BitErrorRate, res.Leakage.MutualInformationBits,
		res.Leakage.CapacityBits, res.Leakage.SNR)
	if *traced {
		for i, rec := range recorders {
			s := rec.Summary()
			fmt.Printf("spy trace, run %d: %s\n", i+1, s)
			fmt.Printf("  last branches: %s\n", rec.Directions())
		}
	}
	if *verbose {
		fmt.Println("metrics:")
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}
