// Command branchscope runs the covert-channel attack end to end on a
// simulated machine and reports the error rate: a demo driver for the
// library's main flow (spawn sender, pre-attack search, prime–step–probe
// per bit, decode).
//
// Usage:
//
//	branchscope [-model Skylake] [-bits 10000] [-pattern random]
//	            [-noisy] [-sgx] [-timing] [-seed 1] [-v]
//	            [-metrics-out m.json] [-trace-out t.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Observability: -metrics-out writes the telemetry registry (episode
// counts, pattern distribution, per-stage cycle histograms, scheduler
// and CPU counters) as JSON; -trace-out writes a Chrome trace-event
// JSON of the run — per-thread timelines with one span per attack
// episode — loadable at ui.perfetto.dev. Both exports record simulated
// cycles only and are byte-identical across runs with the same seed.
// -v additionally prints a metrics summary table.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"branchscope/internal/cpu"
	"branchscope/internal/experiments"
	"branchscope/internal/telemetry"
	"branchscope/internal/trace"
	"branchscope/internal/uarch"
)

func main() { os.Exit(run()) }

// usageErr reports a flag-validation failure the way the flag package
// does: message to stderr, usage, exit status 2.
func usageErr(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	return 2
}

func run() int {
	var (
		model      = flag.String("model", "Skylake", "CPU model: Skylake, Haswell or SandyBridge")
		bits       = flag.Int("bits", 10000, "number of secret bits to transmit per run")
		runs       = flag.Int("runs", 1, "independent runs to average")
		pattern    = flag.String("pattern", "random", "bit pattern: zeros, ones or random")
		noisy      = flag.Bool("noisy", false, "unrestricted setting (background noise shares the core)")
		sgxMode    = flag.Bool("sgx", false, "run the sender inside an SGX enclave with an OS-assisted spy")
		timing     = flag.Bool("timing", false, "probe with rdtscp timing instead of the misprediction PMC")
		seed       = flag.Uint64("seed", 1, "random seed (runs are fully deterministic per seed)")
		verbose    = flag.Bool("v", false, "print per-run error rates and a metrics summary table")
		traced     = flag.Bool("trace", false, "record and summarize the spy's execution trace")
		metricsOut = flag.String("metrics-out", "", "write telemetry metrics as JSON to this file")
		traceOut   = flag.String("trace-out", "", "write a Perfetto-loadable Chrome trace JSON to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	// Validate the flag set up front; nonsensical combinations are
	// usage errors, not silently ignored knobs.
	if flag.NArg() > 0 {
		return usageErr("unexpected arguments: %v", flag.Args())
	}
	if *bits <= 0 {
		return usageErr("-bits must be positive (got %d)", *bits)
	}
	if *runs <= 0 {
		return usageErr("-runs must be positive (got %d)", *runs)
	}
	if *sgxMode && *noisy {
		return usageErr("-sgx cannot be combined with -noisy: the SGX threat model's malicious OS " +
			"controls scheduling (use `experiments table3` for the partially-suppressed-noise cell)")
	}
	if *traced && *runs > 1 {
		return usageErr("-trace requires -runs 1: per-run recorder summaries would be " +
			"misattributed when averaging over runs")
	}
	m, err := uarch.ByName(*model)
	if err != nil {
		return usageErr("%v", err)
	}
	var pat experiments.BitPattern
	switch *pattern {
	case "zeros":
		pat = experiments.AllZeros
	case "ones":
		pat = experiments.AllOnes
	case "random":
		pat = experiments.RandomBits
	default:
		return usageErr("unknown pattern %q (want zeros, ones or random)", *pattern)
	}
	setting := experiments.Isolated
	if *noisy {
		setting = experiments.Noisy
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "starting CPU profile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// The registry is always on (the CLI is not a hot path); the tracer
	// only when its output is requested, since it retains every event.
	reg := telemetry.NewRegistry()
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer()
	}
	set := telemetry.New(reg, tracer)

	cfg := experiments.CovertConfig{
		Model:     m,
		Setting:   setting,
		Pattern:   pat,
		Bits:      *bits,
		Runs:      *runs,
		SGX:       *sgxMode,
		UseTiming: *timing,
		Seed:      *seed,
		Telemetry: set,
	}
	var recorders []*trace.Recorder
	if *traced {
		cfg.SpyHook = func(ctx *cpu.Context) {
			recorders = append(recorders, trace.Attach(ctx, 64))
		}
	}
	fmt.Printf("BranchScope covert channel: %s, %s, %s, %d bits x %d run(s)",
		m, setting, pat, *bits, *runs)
	if *sgxMode {
		fmt.Print(", sender in SGX enclave")
	}
	if *timing {
		fmt.Print(", rdtscp probing")
	}
	fmt.Println()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := experiments.RunCovert(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *verbose {
		for i, r := range res.PerRun {
			fmt.Printf("  run %d: %.3f%%\n", i+1, 100*r)
		}
	}
	if res.SetupFailed > 0 {
		fmt.Printf("pre-attack block search failed in %d run(s)\n", res.SetupFailed)
	}
	fmt.Printf("average error rate: %.3f%%\n", 100*res.ErrorRate)
	if *traced {
		for i, rec := range recorders {
			s := rec.Summary()
			fmt.Printf("spy trace, run %d: %s\n", i+1, s)
			fmt.Printf("  last branches: %s\n", rec.Directions())
		}
	}
	if *verbose {
		fmt.Println("metrics:")
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	if *metricsOut != "" {
		if err := writeFileWith(*metricsOut, reg.Snapshot().WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "writing metrics:", err)
			return 1
		}
		fmt.Println("metrics written to", *metricsOut)
	}
	if *traceOut != "" {
		if err := writeFileWith(*traceOut, tracer.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			return 1
		}
		fmt.Println("trace written to", *traceOut, "(load at ui.perfetto.dev)")
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "writing heap profile:", err)
			return 1
		}
	}
	return 0
}

// writeFileWith streams writer-based output (WriteJSON) into path.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
