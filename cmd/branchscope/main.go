// Command branchscope runs the covert-channel attack end to end on a
// simulated machine and reports the error rate: a demo driver for the
// library's main flow (spawn sender, pre-attack search, prime–step–probe
// per bit, decode).
//
// Usage:
//
//	branchscope [-model Skylake] [-bits 10000] [-pattern random]
//	            [-noisy] [-sgx] [-timing] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"branchscope/internal/cpu"
	"branchscope/internal/experiments"
	"branchscope/internal/trace"
	"branchscope/internal/uarch"
)

func main() {
	var (
		model   = flag.String("model", "Skylake", "CPU model: Skylake, Haswell or SandyBridge")
		bits    = flag.Int("bits", 10000, "number of secret bits to transmit per run")
		runs    = flag.Int("runs", 1, "independent runs to average")
		pattern = flag.String("pattern", "random", "bit pattern: zeros, ones or random")
		noisy   = flag.Bool("noisy", false, "unrestricted setting (background noise shares the core)")
		sgxMode = flag.Bool("sgx", false, "run the sender inside an SGX enclave with an OS-assisted spy")
		timing  = flag.Bool("timing", false, "probe with rdtscp timing instead of the misprediction PMC")
		seed    = flag.Uint64("seed", 1, "random seed (runs are fully deterministic per seed)")
		verbose = flag.Bool("v", false, "print per-run error rates")
		traced  = flag.Bool("trace", false, "record and summarize the spy's execution trace")
	)
	flag.Parse()

	m, err := uarch.ByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var pat experiments.BitPattern
	switch *pattern {
	case "zeros":
		pat = experiments.AllZeros
	case "ones":
		pat = experiments.AllOnes
	case "random":
		pat = experiments.RandomBits
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q (want zeros, ones or random)\n", *pattern)
		os.Exit(2)
	}
	setting := experiments.Isolated
	if *noisy {
		setting = experiments.Noisy
	}

	cfg := experiments.CovertConfig{
		Model:     m,
		Setting:   setting,
		Pattern:   pat,
		Bits:      *bits,
		Runs:      *runs,
		SGX:       *sgxMode,
		UseTiming: *timing,
		Seed:      *seed,
	}
	var recorders []*trace.Recorder
	if *traced {
		cfg.SpyHook = func(ctx *cpu.Context) {
			recorders = append(recorders, trace.Attach(ctx, 64))
		}
	}
	fmt.Printf("BranchScope covert channel: %s, %s, %s, %d bits x %d run(s)",
		m, setting, pat, *bits, *runs)
	if *sgxMode {
		fmt.Print(", sender in SGX enclave")
	}
	if *timing {
		fmt.Print(", rdtscp probing")
	}
	fmt.Println()

	res := experiments.RunCovert(cfg)
	if *verbose {
		for i, r := range res.PerRun {
			fmt.Printf("  run %d: %.3f%%\n", i+1, 100*r)
		}
	}
	if res.SetupFailed > 0 {
		fmt.Printf("pre-attack block search failed in %d run(s)\n", res.SetupFailed)
	}
	fmt.Printf("average error rate: %.3f%%\n", 100*res.ErrorRate)
	if *traced {
		for i, rec := range recorders {
			s := rec.Summary()
			fmt.Printf("spy trace, run %d: %s\n", i+1, s)
			fmt.Printf("  last branches: %s\n", rec.Directions())
		}
	}
}
