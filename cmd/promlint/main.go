// Command promlint validates a Prometheus text-format exposition read
// from stdin against the same grammar internal/telemetry/promtext
// emits: HELP/TYPE preceding every family, parseable samples,
// cumulative histogram buckets closed by an le="+Inf" bucket equal to
// _count, and a non-empty exposition. CI pipes the /metrics and
// /leakage scrapes of a live -serve session through it so a formatting
// regression fails the build rather than a downstream scraper.
//
// Usage:
//
//	some-scrape | promlint
//
// Exit status 0 when the exposition lints clean, 1 with the first
// violation on stderr otherwise.
package main

import (
	"fmt"
	"os"

	"branchscope/internal/telemetry/promtext"
)

func main() {
	if err := promtext.Lint(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}
