// Command experiments regenerates the paper's tables and figures on the
// simulated substrate and prints them in the paper's layout. Running it
// with no arguments executes every experiment at full (paper-shaped)
// scale; -quick runs the scaled-down configurations the test suite uses.
//
// Usage:
//
//	experiments [-quick] [-seed 1] [-parallel N] [-timeout 0]
//	            [-chaos light|moderate|heavy|FLOAT|JSON] [-chaos-seed 0]
//	            [-retry N] [-watchdog 0] [-breaker 0]
//	            [-checkpoint run.journal] [-resume]
//	            [-list] [-check] [-md out.md] [-json out.json]
//	            [-serve addr] [-ledger-out l.jsonl]
//	            [-metrics-out m.json] [-trace-out t.json]
//	            [-leakage-out lk.json] [-introspect-out pht.json]
//	            [-archive dir]
//	            [-service] [-svc-jobs N] [-svc-queue N]
//	            [-svc-tenant-running N] [-svc-tenant-queue N]
//	            [-svc-journal svc.journal]
//	            [-log-format text|json] [-log-level info]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [id ...]
//
// Available ids (see -list): fig2 table1 fig4 fig5 fig6 table2 fig7 fig8
// fig9 table3 mitigations montgomery jpeg aslr ifconversion poisoning
// detection slidingwindow smt predictors timingchannel fsmwidth btb
//
// Execution engine: the suite runs on internal/engine. -parallel N
// (default: GOMAXPROCS) executes experiments — and their per-CPU-model
// sub-runs — on a bounded worker pool. Every unit's randomness derives
// from (seed, experiment ID, unit labels), never from scheduling order,
// so stdout is byte-identical between -parallel 1 and -parallel 8 for
// the same seed. -timeout bounds each experiment's wall time, and a
// panicking or failing experiment is reported in place while the rest
// of the suite completes (exit code 1). SIGINT/SIGTERM cancel the run
// cooperatively — and every requested export is still flushed on that
// path. -json writes every result as structured rows (schema
// branchscope.experiments/v1; see engine.WriteJSON).
//
// Resilience (shared surface, see internal/cliutil and DESIGN §3.15):
// -chaos attaches a deterministic fault injector — scheduler
// preemption, core migration, PMC corruption, TSC jitter, victim
// slowdown — to every covert measurement; -chaos-seed reseeds the
// fault schedule independently of -seed. -retry N switches the spy to
// the resilient read loop (per-bit majority voting, outlier rejection,
// Unknown on exhaustion) and also grants transiently-failed tasks up
// to N attempts with derived per-attempt seeds. Chaos is part of the
// determinism contract: same seed, plan, and flags give byte-identical
// stdout at any -parallel.
//
// Durability (see internal/campaign and DESIGN §3.16): -checkpoint
// journals every task outcome to a crash-safe branchscope.campaign/v1
// file (fsynced per record); -resume replays the journal's completed
// tasks and re-runs only the rest with the same derived seeds, so a run
// killed at any point converges to the byte-identical report of an
// uninterrupted one (campaign mode zeroes the nondeterministic
// wall_seconds export field). -watchdog marks tasks running past a soft
// deadline as stuck in /statusz without killing them; -breaker N opens
// a per-family circuit breaker after N consecutive permanent failures,
// skipping the family's remaining tasks ("skipped-open-breaker") and
// degrading /readyz while open.
//
// Observability (shared surface, see internal/cliutil): stdout carries
// only the deterministic report; progress is structured slog on stderr
// (-log-format/-log-level), one start and one finish/fail event per
// task with its derived seed, duration, and error. -serve exposes live
// endpoints while the suite runs — /metrics (Prometheus text v0.0.4),
// /statusz (task progress JSON), /healthz, /readyz, /debug/pprof —
// and never perturbs stdout. -ledger-out appends one
// branchscope.ledger/v1 JSONL provenance record per task: config,
// seeds, outcome, wall time, result digest, the task's metrics
// delta, and any leakage gauges the task moved (flattened
// channel-quality fields). -metrics-out/-trace-out write the registry
// and the Perfetto trace at exit (trace requires -parallel 1, where
// one experiment owns the span timeline at a time).
//
// Leakage analytics (see internal/leakage and DESIGN §3.17): covert
// measurements stream per-window channel-quality estimates — BER,
// mutual information and Blahut–Arimoto capacity in bits/branch, and
// probe-signal SNR — into the leakage.* metric family. -serve adds
// /leakage (the leakage.* family as Prometheus text) and
// /introspect/pht (the last published predictor snapshot: per-entry
// 2-bit counter states plus a per-set mispredict heatmap, canonical
// JSON); -leakage-out and -introspect-out write the final channel
// report and predictor snapshot at exit. The live endpoints are
// last-writer-wins diagnostics under -parallel; the per-cell numbers
// in reports and ledger records stay deterministic.
//
// Run archive (see internal/runstore and DESIGN §3.19): every
// invocation derives a causal run identity — a digest of the
// result-shaping inputs (program, seed, quick, task list,
// chaos/retry/breaker/timeout knobs) that deliberately excludes
// execution shape (-parallel, -checkpoint/-resume, sink paths) — and
// stamps it into the report export, every ledger record, the campaign
// journal header, leakage reports, and /statusz. -archive <dir> also
// writes a branchscope.run/v1 manifest plus copies of every sink under
// <dir>/<run-id>/; the manifest is byte-identical at any -parallel and
// across a crash+-resume. Inspect archives with cmd/bsctl
// (list/show/tail/diff/check).
//
// Campaign service (see internal/svc and DESIGN §3.21): -service turns
// the process into a multi-tenant job service on the -serve address.
// Clients POST branchscope.job/v1 specs to /jobs; each job runs in its
// own isolated simulator instance (own runner, breakers, retry policy,
// chaos overrides, deadline) on the shared pool, streams its results
// as branchscope.ledger/v1 JSONL from /jobs/{id}/stream, and archives
// under -archive <dir>/<tenant>/<run-id>/ with the same run ID — and
// byte-identical report/export/manifest — as a direct CLI run of the
// same spec. -svc-jobs/-svc-queue/-svc-tenant-running/-svc-tenant-queue
// set the admission quotas (shed with 429 + Retry-After); -svc-journal
// makes submissions durable across restarts. Drive it with bsctl job
// submit/status/stream/cancel.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"branchscope/internal/campaign"
	"branchscope/internal/cliutil"
	"branchscope/internal/engine"
	"branchscope/internal/experiments"
	"branchscope/internal/fabric"
	"branchscope/internal/obs"
	"branchscope/internal/runstore"
	"branchscope/internal/svc"
	"branchscope/internal/telemetry"
)

func main() { os.Exit(run()) }

func run() (code int) {
	var (
		quick    = flag.Bool("quick", false, "run test-scale configurations")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max experiments (and experiment-internal units) running concurrently")
		timeout  = flag.Duration("timeout", 0, "per-experiment wall-time limit (0 = unbounded)")
		list     = flag.Bool("list", false, "list available experiments and exit")
		check    = flag.Bool("check", false, "run the reproduction scorecard (paper-claim validation) and exit")
		mdPath   = flag.String("md", "", "also write the results as a markdown report to this file")
		jsonPath = flag.String("json", "", "write results as structured JSON (branchscope.experiments/v1) to this file")
	)
	var obsFlags cliutil.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -parallel must be >= 1 (got %d)\n", *parallel)
		flag.Usage()
		return 2
	}
	if obsFlags.TraceOut != "" && *parallel > 1 {
		fmt.Fprintln(os.Stderr, "experiments: -trace-out requires -parallel 1 (concurrent experiments would interleave one span timeline)")
		flag.Usage()
		return 2
	}
	// -coordinator/-worker/-workers: the distributed campaign fabric
	// (see internal/fabric and DESIGN §3.20). Execution-shape flags:
	// like -parallel they never change what the run produces, only
	// where it executes, so they stay out of the run identity.
	workerURLs, err := obsFlags.FabricWorkers()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		flag.Usage()
		return 2
	}
	if obsFlags.Worker {
		if *check || *mdPath != "" || *jsonPath != "" || flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "experiments: -worker serves tasks chosen by its coordinator; -check/-md/-json and experiment ids belong on the coordinator")
			flag.Usage()
			return 2
		}
	}
	// -service/-svc-*: the multi-tenant campaign job service (see
	// internal/svc and DESIGN §3.21). Execution-shape flags: a job's
	// outputs are shaped by its spec, never by where it ran.
	if err := obsFlags.ServiceMode(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		flag.Usage()
		return 2
	}
	if obsFlags.Service {
		if *check || *mdPath != "" || *jsonPath != "" || flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "experiments: -service runs jobs submitted over HTTP; -check/-md/-json and experiment ids belong to direct invocations (or job specs)")
			flag.Usage()
			return 2
		}
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %-18s %s\n", e.ID, e.Artifact, e.Description)
		}
		return 0
	}

	pool := engine.NewPool(*parallel)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *check {
		sc, err := experiments.Validate(engine.WithPool(ctx, pool), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: scorecard:", err)
			return 1
		}
		fmt.Print(sc)
		if !sc.AllPassed() {
			return 1
		}
		return 0
	}

	var selected []experiments.Experiment
	if flag.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				flag.Usage()
				return 2
			}
			selected = append(selected, e)
		}
	}
	tasks := experiments.Tasks(selected)
	ids := make([]string, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
	}

	tracker := obs.NewTracker("experiments", *seed, *quick, ids)
	breakers := obsFlags.Breakers()
	var sess *cliutil.Session
	var service *svc.Service
	// /statusz reflects breaker state and probe degradations alongside
	// task progress; /readyz degrades while any family's breaker is open.
	statusFn := func() obs.Status {
		st := tracker.Status()
		for _, b := range breakers.Status() {
			st.Breakers = append(st.Breakers, obs.BreakerStatus{
				Family: b.Family, State: b.State,
				ConsecutiveFailures: b.ConsecutiveFailures, Skipped: b.Skipped,
			})
		}
		if sess != nil && sess.Metrics != nil {
			st.DegradedProbes = sess.Metrics.Counter("core.probe.degradations").Value()
		}
		st.Service = service.Status()
		return st
	}
	// Worker mode mounts the fabric endpoint on the -serve server; the
	// worker's runner and identity fields are filled in below, before
	// any coordinator can find the process ready. Service mode mounts
	// the /jobs handler the same way (503 until Start wires it below).
	var wk *fabric.Worker
	opts := cliutil.Options{
		Status: statusFn,
		Ready: func() bool {
			return tracker.Ready() && !breakers.AnyOpen() && (service == nil || service.Ready())
		},
	}
	if obsFlags.Worker {
		wk = &fabric.Worker{}
		opts.Fabric = wk.Handler()
	}
	if obsFlags.Service {
		service = svc.New()
		opts.Jobs = service.Handler()
	}
	sess, err = cliutil.NewSession("experiments", obsFlags, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		return 2
	}
	// Close flushes metrics/trace/ledger and shuts the server down on
	// every exit path, including SIGINT-canceled runs.
	defer func() {
		if err := sess.Close(); err != nil {
			sess.Log.Error("flushing observability exports", "err", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	// Experiment harnesses that boot simulated machines (the
	// covert-channel cells) pick the process-wide set up automatically.
	reg := sess.Metrics
	if reg != nil || sess.Trace != nil {
		experiments.SetDefaultTelemetry(telemetry.New(reg, sess.Trace))
		defer experiments.SetDefaultTelemetry(nil)
	}

	// -chaos/-retry reach every covert measurement the suite regenerates
	// through the same process-wide default idiom. The robustness sweep
	// pins its own plan and budget per cell, so its axes stay clean even
	// under these flags.
	plan, err := obsFlags.ChaosPlan(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		flag.Usage()
		return 2
	}
	if plan != nil {
		sess.Log.Info("chaos enabled", "plan", plan.String())
		// A crash-only plan must not perturb the simulation: only plans
		// with episode faults become the process-wide default.
		if plan.HasEpisodeFaults() {
			experiments.SetDefaultChaos(plan)
			defer experiments.SetDefaultChaos(nil)
		}
	}
	if rc := obsFlags.RetryConfig(); rc != nil {
		experiments.SetDefaultRetry(rc)
		defer experiments.SetDefaultRetry(nil)
	}

	// The shared result-shaping config: the run identity's Config, and
	// the fabric identity basis workers verify assignments against.
	idCfg, err := obsFlags.IdentityConfig(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	if *timeout > 0 {
		idCfg["timeout"] = timeout.String()
	}

	ledgerConfig := map[string]any{
		"quick":    *quick,
		"parallel": *parallel,
		"timeout":  timeout.String(),
	}
	var done atomic.Int64
	runner := &engine.Runner{
		Pool:     pool,
		Timeout:  *timeout,
		Retry:    obsFlags.RetryPolicy(),
		Watchdog: obsFlags.Watchdog,
		Breakers: breakers,
		OnStuck: func(t engine.Task, seed uint64) {
			tracker.MarkStuck(t.ID)
			sess.Log.Warn("task stuck past watchdog", "id", t.ID, "seed", seed,
				"watchdog", obsFlags.Watchdog.String())
		},
		OnStart: func(t engine.Task, seed uint64) {
			tracker.Begin(t.ID, seed)
			sess.Deltas.Begin(t.ID)
			sess.Log.Info("task start", "id", t.ID, "artifact", t.Artifact, "seed", seed)
		},
		OnDone: func(rep engine.Report) {
			n := done.Add(1)
			tracker.End(rep.Task.ID, rep.Wall, rep.Outcome(), rep.Err)
			delta := sess.Deltas.End(rep.Task.ID)
			attrs := []any{
				"id", rep.Task.ID, "seed", rep.Seed, "outcome", rep.Outcome(),
				"wall", rep.Wall.Round(time.Millisecond).String(),
				"n", n, "total", len(tasks),
			}
			if rep.Err != nil {
				sess.Log.Error("task failed", append(attrs, "err", rep.Err)...)
			} else {
				sess.Log.Info("task done", attrs...)
			}
			if reg != nil {
				reg.Gauge("experiments." + rep.Task.ID + ".wall_seconds").Set(rep.Wall.Seconds())
			}
			rec := obs.LedgerRecord{
				Program:  "experiments",
				ID:       rep.Task.ID,
				Artifact: rep.Task.Artifact,
				Config:   ledgerConfig,
				BaseSeed: *seed,
				Seed:     rep.Seed,
				Outcome:  rep.Outcome(),
				// WallSeconds is the one nondeterministic ledger field.
				WallSeconds:  rep.Wall.Seconds(),
				MetricsDelta: delta,
				Leakage:      obs.LeakageFields(delta),
			}
			if rep.Err != nil {
				rec.Error = rep.Err.Error()
			} else {
				rec.ResultDigest = obs.Digest(rep.Result.String())
			}
			if err := sess.Ledger.Append(rec); err != nil {
				sess.Log.Error("appending ledger record", "id", rep.Task.ID, "err", err)
			}
		},
	}

	// Worker mode: serve fabric assignments until interrupted. The
	// worker never selects tasks or derives a suite identity — the
	// coordinator owns both — so everything below (identity, archive,
	// campaign, report rendering) stays coordinator-side.
	if wk != nil {
		wkRunner := *runner
		// Circuit breaking is coordinator-central: the coordinator
		// admits tasks against its breaker set before dispatch, which
		// is what propagates a family tripped on one worker to all.
		wkRunner.Breakers = nil
		byID := map[string]engine.Task{}
		for _, t := range experiments.Tasks(experiments.All()) {
			byID[t.ID] = t
		}
		wk.Program = "experiments"
		wk.BaseSeed = *seed
		wk.Quick = *quick
		wk.Config = idCfg
		wk.Resolve = func(id string) (engine.Task, bool) {
			t, ok := byID[id]
			return t, ok
		}
		wk.Runner = &wkRunner
		wk.RunCfg = engine.Config{Quick: *quick, Seed: *seed}
		if plan != nil {
			// The chaos crash fault class, worker-targeted: exit(3)
			// right after the Nth streamed outcome, instead of after
			// the Nth journaled one.
			wk.CrashAfter = plan.CrashPoint()
		}
		wk.Logf = func(format string, args ...any) { sess.Log.Info(fmt.Sprintf(format, args...)) }
		sess.Log.Info("fabric worker serving", "tasks", len(byID), "crash_after", wk.CrashAfter)
		<-ctx.Done()
		sess.Log.Info("fabric worker interrupted, shutting down")
		return 0
	}

	// Service mode: host the campaign job service until interrupted.
	// Job specs carry their own chaos/retry knobs; Isolate installs them
	// as context-scoped overrides so a job never inherits this CLI's
	// -chaos/-retry defaults — or another tenant's. Crash faults never
	// apply in-process (a job spec must not kill the service), which
	// matches the identity: Spec identities zero the crash point too.
	if service != nil {
		isolate := func(jctx context.Context, sp svc.Spec) context.Context {
			ov := &experiments.Overrides{Retry: sp.Flags().RetryConfig()}
			if p, err := sp.Flags().ChaosPlan(sp.Seed()); err == nil && p != nil && p.HasEpisodeFaults() {
				ov.Chaos = p
			}
			return experiments.WithOverrides(jctx, ov)
		}
		err := service.Start(svc.Config{
			Program:     "experiments",
			Tasks:       experiments.Tasks(experiments.All()),
			Pool:        pool,
			ArchiveDir:  obsFlags.Archive,
			JournalPath: obsFlags.SvcJournal,
			Limits: svc.Limits{
				Jobs: obsFlags.SvcJobs, Queue: obsFlags.SvcQueue,
				TenantRunning: obsFlags.SvcTenantRunning, TenantQueue: obsFlags.SvcTenantQueue,
			},
			Isolate: isolate,
			Log:     sess.Log,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		defer service.Close()
		sess.Log.Info("campaign service serving",
			"archive", obsFlags.Archive, "journal", obsFlags.SvcJournal)
		<-ctx.Done()
		// Drain: stop admissions (new submissions get 503 + Retry-After),
		// give running jobs a bounded grace window, then cancel them.
		// Queued jobs stay journaled; a restart re-enqueues them.
		sess.Log.Info("campaign service interrupted, draining")
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		service.Drain(dctx)
		return 0
	}

	// Causal run identity: a digest of the result-shaping inputs only,
	// so the same logical run keeps one RunID across -parallel widths
	// and crash+-resume. The ID is stamped everywhere results land; the
	// archiver (nil without -archive, and nil-safe) snapshots every sink
	// plus a branchscope.run/v1 manifest when the session closes.
	identity := runstore.Identity{
		Program: "experiments", BaseSeed: *seed, Quick: *quick, Tasks: ids, Config: idCfg,
	}
	runID := identity.RunID()
	sess.SetRunID(runID)
	arc := obsFlags.Archiver(identity)
	sess.SetArchiver(arc)
	arc.AddFile("journal", obsFlags.Checkpoint)
	arc.AddFile("md", *mdPath)

	// -checkpoint/-resume make the suite durable: every outcome is
	// journaled as it completes, and a resumed run replays the journal
	// and re-runs only what's missing, with the same derived seeds.
	camp, err := obsFlags.Campaign(campaign.Header{
		Program: "experiments", BaseSeed: *seed, Quick: *quick, Tasks: ids, RunID: runID,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	if camp != nil {
		defer camp.Journal.Close()
		if plan != nil {
			camp.CrashAfter = plan.CrashPoint()
		}
		sess.Log.Info("campaign journal open", "path", camp.Journal.Path(),
			"replayed", len(camp.Replayed), "crash_after", camp.CrashAfter)
	}

	// Per-experiment simulated-cycle attribution only works when one
	// experiment owns the process-wide counter at a time.
	if reg != nil && pool == nil {
		simCycles := reg.Counter("covert.simulated_cycles")
		for i := range tasks {
			t := tasks[i]
			inner := t.Run
			tasks[i].Run = func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
				before := simCycles.Value()
				res, err := inner(ctx, cfg)
				reg.Gauge("experiments." + t.ID + ".simulated_cycles").Set(float64(simCycles.Value() - before))
				return res, err
			}
		}
	}

	runner.RunID = runID
	var reports []engine.Report
	var journalErr error
	ecfg := engine.Config{Quick: *quick, Seed: *seed}
	switch {
	case len(workerURLs) > 0:
		// Coordinator mode: shard the task list across the worker pool
		// and merge the streamed outcomes. Degrades to local execution
		// (with the runner above) when no worker is reachable.
		coord := &fabric.Coordinator{
			Workers:  workerURLs,
			Program:  "experiments",
			BaseSeed: *seed,
			Quick:    *quick,
			Config:   idCfg,
			RunID:    runID,
			Breakers: breakers,
			Campaign: camp,
			Local:    runner,
			LocalCfg: ecfg,
			OnDone:   runner.OnDone,
			OnDegrade: func(reason string) {
				sess.Log.Warn("fabric degraded to local execution", "reason", reason)
			},
			Logf: func(format string, args ...any) { sess.Log.Info(fmt.Sprintf(format, args...)) },
		}
		reports, journalErr = coord.Run(ctx, tasks)
		// Fabric mode zeroes Wall like campaign mode: merged exports
		// must be byte-identical to a single-process run's.
		for i := range reports {
			reports[i].Wall = 0
		}
	case camp != nil:
		reports, journalErr = camp.Run(ctx, runner, tasks, ecfg)
		// Wall time is the one nondeterministic report field; campaign
		// mode zeroes it so an interrupted-and-resumed run's exports are
		// byte-identical to an uninterrupted run's.
		for i := range reports {
			reports[i].Wall = 0
		}
	default:
		reports = runner.RunSuite(ctx, tasks, ecfg)
	}
	engine.FormatText(os.Stdout, reports)

	if arc != nil {
		// The archived report/export blobs are rendered over a
		// wall-zeroed copy so the manifest digests stay byte-identical
		// across -parallel widths and crash+-resume (campaign mode has
		// already zeroed Wall; plain runs haven't).
		arcReports := append([]engine.Report(nil), reports...)
		for i := range arcReports {
			arcReports[i].Wall = 0
		}
		for _, rep := range arcReports {
			o := runstore.TaskOutcome{
				ID: rep.Task.ID, Seed: rep.Seed,
				Outcome: rep.Outcome(), Attempts: rep.Attempts,
			}
			if rep.Err != nil {
				o.Error = rep.Err.Error()
			}
			arc.Record(o)
		}
		var report, export bytes.Buffer
		engine.FormatText(&report, arcReports)
		arc.AddBlob("report", report.Bytes())
		if err := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: *seed, Quick: *quick, RunID: runID}, arcReports); err != nil {
			sess.Log.Error("rendering archive export", "err", err)
		} else {
			arc.AddBlob("export", export.Bytes())
		}
		var sums []runstore.BreakerSummary
		for _, b := range breakers.Status() {
			if b.State != "closed" || b.Skipped > 0 {
				sums = append(sums, runstore.BreakerSummary{Family: b.Family, State: b.State, Skipped: b.Skipped})
			}
		}
		arc.SetBreakers(sums)
		if reg != nil {
			arc.SetDegradedProbes(reg.Counter("core.probe.degradations").Value())
		}
	}

	if *mdPath != "" {
		var md strings.Builder
		scale := "full scale"
		if *quick {
			scale = "quick scale"
		}
		fmt.Fprintf(&md, "# BranchScope reproduction results\n\n")
		fmt.Fprintf(&md, "Generated by `cmd/experiments` (seed %d, %s). Paper-vs-measured\n", *seed, scale)
		fmt.Fprintf(&md, "commentary lives in EXPERIMENTS.md; this file is the raw regeneration.\n")
		for _, rep := range reports {
			body := ""
			if rep.Err != nil {
				body = fmt.Sprintf("FAILED: %v\n", rep.Err)
			} else {
				body = rep.Result.String()
			}
			fmt.Fprintf(&md, "\n## %s — %s\n\n%s\n\n```\n%s```\n\n*(regenerated in %v)*\n",
				rep.Task.Artifact, rep.Task.ID, rep.Task.Description, body,
				rep.Wall.Round(time.Millisecond))
		}
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			sess.Log.Error("writing markdown report", "path", *mdPath, "err", err)
			return 1
		}
		sess.Log.Info("markdown report written", "path", *mdPath)
	}
	if *jsonPath != "" {
		err := cliutil.WriteFile(*jsonPath, func(w io.Writer) error {
			return engine.WriteJSON(w, engine.ExportMeta{BaseSeed: *seed, Quick: *quick, RunID: runID}, reports)
		})
		if err != nil {
			sess.Log.Error("writing JSON export", "path", *jsonPath, "err", err)
			return 1
		}
		sess.Log.Info("JSON export written", "path", *jsonPath, "schema", "branchscope.experiments/v1")
	}
	if journalErr != nil {
		sess.Log.Error("campaign journal failed", "err", journalErr)
		return 1
	}
	if n := engine.Failed(reports); n > 0 {
		sess.Log.Error("suite finished with failures", "failed", n, "total", len(reports))
		return 1
	}
	return 0
}
