// Command experiments regenerates the paper's tables and figures on the
// simulated substrate and prints them in the paper's layout. Running it
// with no arguments executes every experiment at full (paper-shaped)
// scale; -quick runs the scaled-down configurations the test suite uses.
//
// Usage:
//
//	experiments [-quick] [-seed 1] [-parallel N] [-timeout 0]
//	            [-list] [-check] [-md out.md] [-json out.json]
//	            [-metrics-out m.json] [-trace-out t.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [id ...]
//
// Available ids (see -list): fig2 table1 fig4 fig5 fig6 table2 fig7 fig8
// fig9 table3 mitigations montgomery jpeg aslr ifconversion poisoning
// detection slidingwindow smt predictors timingchannel fsmwidth btb
//
// Execution engine: the suite runs on internal/engine. -parallel N
// (default: GOMAXPROCS) executes experiments — and their per-CPU-model
// sub-runs — on a bounded worker pool. Every unit's randomness derives
// from (seed, experiment ID, unit labels), never from scheduling order,
// so stdout is byte-identical between -parallel 1 and -parallel 8 for
// the same seed; elapsed times go to stderr only. -timeout bounds each
// experiment's wall time, and a panicking or failing experiment is
// reported in place while the rest of the suite completes (exit code 1).
// SIGINT/SIGTERM cancel the run cooperatively. -json writes every
// result as structured rows (schema branchscope.experiments/v1; see
// engine.WriteJSON for the documented key order).
//
// Observability: -metrics-out installs a process-wide telemetry set
// (see internal/telemetry) that the covert-channel harness reports
// through, and writes the registry as JSON at exit, including a
// wall-time gauge per executed experiment (and a simulated-cycle gauge
// at -parallel 1, where the process-wide cycle counter is attributable
// to one experiment at a time). -trace-out additionally captures
// per-thread span timelines as Chrome trace-event JSON for Perfetto; it
// requires -parallel 1 because concurrent experiments would interleave
// their spans into one meaningless timeline. Wall-time gauges are the
// one deliberately nondeterministic metric; everything else is
// cycle-derived and reproducible per seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"branchscope/internal/engine"
	"branchscope/internal/experiments"
	"branchscope/internal/telemetry"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		quick      = flag.Bool("quick", false, "run test-scale configurations")
		seed       = flag.Uint64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "max experiments (and experiment-internal units) running concurrently")
		timeout    = flag.Duration("timeout", 0, "per-experiment wall-time limit (0 = unbounded)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		check      = flag.Bool("check", false, "run the reproduction scorecard (paper-claim validation) and exit")
		mdPath     = flag.String("md", "", "also write the results as a markdown report to this file")
		jsonPath   = flag.String("json", "", "write results as structured JSON (branchscope.experiments/v1) to this file")
		metricsOut = flag.String("metrics-out", "", "write telemetry metrics as JSON to this file")
		traceOut   = flag.String("trace-out", "", "write a Perfetto-loadable Chrome trace JSON to this file (requires -parallel 1)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -parallel must be >= 1 (got %d)\n", *parallel)
		flag.Usage()
		return 2
	}
	if *traceOut != "" && *parallel > 1 {
		fmt.Fprintln(os.Stderr, "experiments: -trace-out requires -parallel 1 (concurrent experiments would interleave one span timeline)")
		flag.Usage()
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %-18s %s\n", e.ID, e.Artifact, e.Description)
		}
		return 0
	}

	pool := engine.NewPool(*parallel)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *check {
		sc, err := experiments.Validate(engine.WithPool(ctx, pool), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: scorecard:", err)
			return 1
		}
		fmt.Print(sc)
		if !sc.AllPassed() {
			return 1
		}
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "starting CPU profile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// Install the process-wide telemetry set when any export is
	// requested; experiment harnesses that boot simulated machines
	// (the covert-channel cells) pick it up automatically.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if *metricsOut != "" || *traceOut != "" {
		reg = telemetry.NewRegistry()
		if *traceOut != "" {
			tracer = telemetry.NewTracer()
		}
		experiments.SetDefaultTelemetry(telemetry.New(reg, tracer))
		defer experiments.SetDefaultTelemetry(nil)
	}

	var selected []experiments.Experiment
	if flag.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				flag.Usage()
				return 2
			}
			selected = append(selected, e)
		}
	}

	tasks := experiments.Tasks(selected)
	// Per-experiment simulated-cycle attribution only works when one
	// experiment owns the process-wide counter at a time.
	if reg != nil && pool == nil {
		simCycles := reg.Counter("covert.simulated_cycles")
		for i := range tasks {
			t := tasks[i]
			inner := t.Run
			tasks[i].Run = func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
				before := simCycles.Value()
				res, err := inner(ctx, cfg)
				reg.Gauge("experiments." + t.ID + ".simulated_cycles").Set(float64(simCycles.Value() - before))
				return res, err
			}
		}
	}

	var done atomic.Int64
	runner := &engine.Runner{
		Pool:    pool,
		Timeout: *timeout,
		OnDone: func(rep engine.Report) {
			n := done.Add(1)
			status := "done"
			if rep.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s in %v\n",
				n, len(tasks), rep.Task.ID, status, rep.Wall.Round(time.Millisecond))
			if reg != nil {
				reg.Gauge("experiments." + rep.Task.ID + ".wall_seconds").Set(rep.Wall.Seconds())
			}
		},
	}
	reports := runner.RunSuite(ctx, tasks, engine.Config{Quick: *quick, Seed: *seed})
	engine.FormatText(os.Stdout, reports)

	if *mdPath != "" {
		var md strings.Builder
		scale := "full scale"
		if *quick {
			scale = "quick scale"
		}
		fmt.Fprintf(&md, "# BranchScope reproduction results\n\n")
		fmt.Fprintf(&md, "Generated by `cmd/experiments` (seed %d, %s). Paper-vs-measured\n", *seed, scale)
		fmt.Fprintf(&md, "commentary lives in EXPERIMENTS.md; this file is the raw regeneration.\n")
		for _, rep := range reports {
			body := ""
			if rep.Err != nil {
				body = fmt.Sprintf("FAILED: %v\n", rep.Err)
			} else {
				body = rep.Result.String()
			}
			fmt.Fprintf(&md, "\n## %s — %s\n\n%s\n\n```\n%s```\n\n*(regenerated in %v)*\n",
				rep.Task.Artifact, rep.Task.ID, rep.Task.Description, body,
				rep.Wall.Round(time.Millisecond))
		}
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing markdown report:", err)
			return 1
		}
		fmt.Println("markdown report written to", *mdPath)
	}
	if *jsonPath != "" {
		err := writeFileWith(*jsonPath, func(w io.Writer) error {
			return engine.WriteJSON(w, engine.ExportMeta{BaseSeed: *seed, Quick: *quick}, reports)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing JSON export:", err)
			return 1
		}
		fmt.Println("JSON export written to", *jsonPath)
	}
	if *metricsOut != "" {
		if err := writeFileWith(*metricsOut, reg.Snapshot().WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "writing metrics:", err)
			return 1
		}
		fmt.Println("metrics written to", *metricsOut)
	}
	if *traceOut != "" {
		if err := writeFileWith(*traceOut, tracer.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			return 1
		}
		fmt.Println("trace written to", *traceOut, "(load at ui.perfetto.dev)")
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "writing heap profile:", err)
			return 1
		}
	}
	if n := engine.Failed(reports); n > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed\n", n, len(reports))
		return 1
	}
	return 0
}

// writeFileWith streams writer-based output (WriteJSON) into path.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
