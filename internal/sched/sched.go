// Package sched provides the operating-system substrate of the
// simulation: processes scheduled onto the hardware contexts of a
// simulated core, with attacker-relevant control over interleaving.
//
// The paper's threat model (§3) requires (a) attacker/victim co-residency
// on one physical core, (b) the ability to slow the victim down so it
// executes a single branch between the attacker's prime and probe stages
// (via scheduler exploitation in user space, or trivially via a malicious
// OS for SGX), and (c) the attacker triggering victim executions. The
// Thread abstraction realizes exactly these capabilities: a victim runs
// as a cooperative coroutine that the attacker steps by instruction or
// branch quanta, while the attacker's own code runs directly on its
// context.
//
// Threads use strict channel handoff: at any moment either the scheduler
// or exactly one thread is running, so the simulated core's state needs
// no locking and execution is fully deterministic.
package sched

import (
	"fmt"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/telemetry"
	"branchscope/internal/uarch"
)

// System is a simulated machine with one physical core and a process
// registry. It hands out hardware contexts with distinct security
// domains.
type System struct {
	model      uarch.Model
	core       *cpu.Core
	rnd        *rng.Source
	nextDomain uint64
	tel        *telemetry.Set
	ctr        sysCounters
}

// sysCounters caches the scheduler's metric handles (all nil when
// telemetry is disabled).
type sysCounters struct {
	processes *telemetry.Counter
	spawns    *telemetry.Counter
	steps     *telemetry.Counter
	switches  *telemetry.Counter
	kills     *telemetry.Counter
}

// NewSystem boots a machine of the given model. All randomness in the
// machine derives from seed.
func NewSystem(model uarch.Model, seed uint64) *System {
	r := rng.New(seed)
	return &System{
		model: model,
		core:  model.NewCore(r.Uint64()),
		rnd:   r.Split(),
		// Domain 0 is reserved for the kernel; processes start at 1.
		nextDomain: 1,
	}
}

// SetTelemetry attaches a telemetry set to the machine: the core's
// retire paths, the scheduler's bookkeeping and every layer above
// (attack sessions, SGX) pick it up from here. Call it right after
// NewSystem, before any process exists — contexts and threads capture
// their handles at creation time.
func (s *System) SetTelemetry(t *telemetry.Set) {
	s.tel = t
	s.core.SetTelemetry(t)
	s.ctr = sysCounters{
		processes: t.Counter("sched.processes"),
		spawns:    t.Counter("sched.spawns"),
		steps:     t.Counter("sched.steps"),
		switches:  t.Counter("sched.context_switches"),
		kills:     t.Counter("sched.kills"),
	}
}

// Telemetry returns the machine's telemetry set (nil when disabled).
func (s *System) Telemetry() *telemetry.Set { return s.tel }

// Model returns the machine's microarchitecture model.
func (s *System) Model() uarch.Model { return s.model }

// Core returns the machine's physical core.
func (s *System) Core() *cpu.Core { return s.core }

// Rand returns the system's random source (for noise generation and
// experiment harnesses).
func (s *System) Rand() *rng.Source { return s.rnd }

// NewProcess allocates a hardware context for a new process. The caller's
// goroutine runs the process directly; use Spawn for a steppable
// coroutine process instead.
func (s *System) NewProcess(name string) *cpu.Context {
	d := s.nextDomain
	s.nextDomain++
	ctx := s.core.NewContext(d)
	s.ctr.processes.Inc()
	s.tel.NameThread(ctx.TID(), name)
	return ctx
}

// grant is one scheduling quantum: budgets in retired instructions and
// retired branches. A negative budget is unlimited. kill tears the thread
// down instead of resuming it.
type grant struct {
	instr    int64
	branches int64
	kill     bool
}

// killed is the sentinel panic value used to unwind a killed thread.
type killed struct{}

// Thread is a process running as a cooperative coroutine. It executes
// only while the scheduler has granted it a quantum; it pauses itself by
// blocking in its instruction-retire hook.
type Thread struct {
	Name string

	ctx      *cpu.Context
	resume   chan grant
	paused   chan struct{}
	finished chan struct{}

	// Owned by the thread goroutine while running.
	budget grant

	// tel/steps/switches are captured from the System at spawn time
	// (nil when telemetry is disabled).
	tel      *telemetry.Set
	steps    *telemetry.Counter
	switches *telemetry.Counter
}

// Spawn creates a process executing fn on a fresh context and returns its
// scheduling handle. fn starts suspended; nothing executes until the
// first Step call.
func (s *System) Spawn(name string, fn func(*cpu.Context)) *Thread {
	t := &Thread{
		Name:     name,
		ctx:      s.NewProcess(name),
		resume:   make(chan grant),
		paused:   make(chan struct{}),
		finished: make(chan struct{}),
		tel:      s.tel,
		steps:    s.ctr.steps,
		switches: s.ctr.switches,
	}
	s.ctr.spawns.Inc()
	t.ctx.SetHook(t.onRetire)
	go func() {
		defer close(t.finished)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					panic(r)
				}
			}
		}()
		t.budget = <-t.resume
		if t.budget.kill {
			return
		}
		fn(t.ctx)
	}()
	return t
}

// onRetire is the context hook: it spends budget and parks the thread
// when the quantum is exhausted.
func (t *Thread) onRetire(isBranch bool) {
	if t.budget.instr > 0 {
		t.budget.instr--
	}
	if isBranch && t.budget.branches > 0 {
		t.budget.branches--
	}
	exhausted := t.budget.instr == 0 || t.budget.branches == 0
	if exhausted {
		t.paused <- struct{}{}
		t.budget = <-t.resume
		if t.budget.kill {
			panic(killed{})
		}
	}
}

// step grants a quantum and blocks until the thread pauses or finishes.
// It reports whether the thread is still alive. With telemetry attached
// it counts the dispatch (a context switch in and back out) and emits
// one "quantum" span per grant on the thread's trace timeline, covering
// the cycles the thread actually ran.
func (t *Thread) step(g grant) bool {
	var start uint64
	if t.tel != nil {
		t.steps.Inc()
		t.switches.Add(2)
		start = t.ctx.Core().Clock()
	}
	alive := func() bool {
		select {
		case <-t.finished:
			return false
		case t.resume <- g:
		}
		select {
		case <-t.paused:
			return true
		case <-t.finished:
			return false
		}
	}()
	if t.tel != nil {
		if end := t.ctx.Core().Clock(); end > start {
			t.tel.Span(t.ctx.TID(), "sched", "quantum", start, end, nil)
		}
	}
	return alive
}

// Step runs the thread for exactly n retired instructions (of any kind).
// It reports whether the thread is still runnable afterwards. n <= 0 is a
// no-op that reports liveness.
func (t *Thread) Step(n int) bool {
	if n <= 0 {
		return !t.Finished()
	}
	return t.step(grant{instr: int64(n), branches: -1})
}

// StepBranches runs the thread until k more conditional branches have
// retired, pausing immediately after the k-th. This is the victim
// slowdown primitive: StepBranches(1) is "let the victim execute a single
// branch during the context switch" (§7). It reports whether the thread
// is still runnable.
func (t *Thread) StepBranches(k int) bool {
	if k <= 0 {
		return !t.Finished()
	}
	return t.step(grant{instr: -1, branches: int64(k)})
}

// Run lets the thread execute to completion.
func (t *Thread) Run() {
	for t.step(grant{instr: -1, branches: -1}) {
	}
}

// Kill terminates a suspended thread: its next resume unwinds the process
// function instead of continuing it. Killing a finished thread is a
// no-op. This models the OS reclaiming a process (noise generators run
// forever and must be reaped at the end of an experiment).
func (t *Thread) Kill() {
	select {
	case <-t.finished:
		return
	case t.resume <- grant{kill: true}:
	}
	<-t.finished
	if t.tel != nil {
		t.tel.Counter("sched.kills").Inc()
	}
}

// Finished reports whether the thread's function has returned.
func (t *Thread) Finished() bool {
	select {
	case <-t.finished:
		return true
	default:
		return false
	}
}

// Context exposes the thread's hardware context; useful for reading its
// performance counters after it finishes.
func (t *Thread) Context() *cpu.Context { return t.ctx }

// String implements fmt.Stringer.
func (t *Thread) String() string {
	state := "runnable"
	if t.Finished() {
		state = "finished"
	}
	return fmt.Sprintf("thread %q (%s)", t.Name, state)
}

// Interleave runs the given threads in weighted random order until total
// instructions have been distributed or every thread has finished.
// weights must parallel threads; a weight of zero disables a thread. It
// models timesharing of the core among background processes.
func Interleave(rnd *rng.Source, threads []*Thread, weights []int, total int) {
	if len(threads) != len(weights) {
		panic("sched: Interleave weights/threads length mismatch")
	}
	sum := 0
	for _, w := range weights {
		if w < 0 {
			panic("sched: negative weight")
		}
		sum += w
	}
	if sum == 0 {
		return
	}
	const slice = 16 // instructions per mini-quantum
	var slices *telemetry.Counter
	for _, t := range threads {
		if t.tel != nil {
			slices = t.tel.Counter("sched.interleave_slices")
			break
		}
	}
	remaining := total
	alive := len(threads)
	for remaining > 0 && alive > 0 {
		// Pick a thread by weight.
		pick := rnd.Intn(sum)
		var t *Thread
		for i, w := range weights {
			if pick < w {
				t = threads[i]
				break
			}
			pick -= w
		}
		n := slice
		if n > remaining {
			n = remaining
		}
		slices.Inc()
		if !t.Step(n) {
			alive = 0
			for _, th := range threads {
				if !th.Finished() {
					alive++
				}
			}
		}
		remaining -= n
	}
}
