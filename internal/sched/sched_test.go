package sched

import (
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/uarch"
)

func newSys() *System {
	return NewSystem(uarch.Skylake(), 1)
}

func TestNewProcessDistinctDomains(t *testing.T) {
	s := newSys()
	a := s.NewProcess("a")
	b := s.NewProcess("b")
	if a.Domain() == b.Domain() {
		t.Error("two processes share a domain")
	}
	if a.Domain() == 0 || b.Domain() == 0 {
		t.Error("process got the reserved kernel domain")
	}
}

func TestSpawnStartsSuspended(t *testing.T) {
	s := newSys()
	ran := false
	th := s.Spawn("v", func(ctx *cpu.Context) {
		ran = true
		ctx.Nop(0x10)
	})
	if ran {
		t.Fatal("thread ran before first Step")
	}
	if th.Finished() {
		t.Fatal("thread finished before running")
	}
	th.Run()
	if !ran || !th.Finished() {
		t.Error("thread did not run to completion")
	}
}

func TestStepExactInstructionCount(t *testing.T) {
	s := newSys()
	th := s.Spawn("v", func(ctx *cpu.Context) {
		for i := 0; i < 100; i++ {
			ctx.Nop(uint64(0x10 + i))
		}
	})
	th.Step(30)
	if got := th.Context().ReadPMC(cpu.Instructions); got != 30 {
		t.Errorf("after Step(30): %d instructions retired", got)
	}
	th.Step(20)
	if got := th.Context().ReadPMC(cpu.Instructions); got != 50 {
		t.Errorf("after Step(20) more: %d instructions retired", got)
	}
	th.Run()
	if got := th.Context().ReadPMC(cpu.Instructions); got != 100 {
		t.Errorf("after Run: %d instructions retired", got)
	}
}

func TestStepBranchesPausesAfterKthBranch(t *testing.T) {
	s := newSys()
	th := s.Spawn("v", func(ctx *cpu.Context) {
		for i := 0; i < 10; i++ {
			ctx.Work(5)
			ctx.Branch(0x100, true)
		}
	})
	th.StepBranches(1)
	if got := th.Context().ReadPMC(cpu.BranchInstructions); got != 1 {
		t.Errorf("after StepBranches(1): %d branches retired", got)
	}
	// Exactly the 5 work instructions + 1 branch must have retired: the
	// thread pauses immediately after the branch, before more work.
	if got := th.Context().ReadPMC(cpu.Instructions); got != 6 {
		t.Errorf("after StepBranches(1): %d instructions retired, want 6", got)
	}
	th.StepBranches(3)
	if got := th.Context().ReadPMC(cpu.BranchInstructions); got != 4 {
		t.Errorf("after StepBranches(3): %d branches retired", got)
	}
}

func TestStepReturnsFalseWhenFinished(t *testing.T) {
	s := newSys()
	th := s.Spawn("v", func(ctx *cpu.Context) {
		ctx.Nop(0x10)
	})
	if !th.Step(1) {
		// One instruction then pause: thread paused inside hook; it
		// has not returned yet, so Step may report alive.
		t.Log("thread reported finished at pause point")
	}
	// Drain to completion.
	th.Run()
	if th.Step(5) {
		t.Error("Step on finished thread reported runnable")
	}
	if th.StepBranches(1) {
		t.Error("StepBranches on finished thread reported runnable")
	}
}

func TestStepZeroReportsLiveness(t *testing.T) {
	s := newSys()
	th := s.Spawn("v", func(ctx *cpu.Context) { ctx.Nop(1) })
	if !th.Step(0) {
		t.Error("Step(0) on live thread = false")
	}
	th.Run()
	if th.Step(0) {
		t.Error("Step(0) on finished thread = true")
	}
}

func TestThreadsShareCoreBPU(t *testing.T) {
	s := newSys()
	victim := s.Spawn("victim", func(ctx *cpu.Context) {
		for i := 0; i < 4; i++ {
			ctx.Branch(0x100, true)
		}
	})
	victim.Run()
	// The attacker process (direct context) now executes a branch at
	// the same address: the shared PHT entry is strongly taken, so no
	// misprediction.
	spy := s.NewProcess("spy")
	before := spy.ReadPMC(cpu.BranchMisses)
	spy.Branch(0x100, true)
	if spy.ReadPMC(cpu.BranchMisses) != before {
		t.Error("spy mispredicted: PHT not shared across processes")
	}
}

func TestInterleaveDistributesWork(t *testing.T) {
	s := newSys()
	mk := func() func(*cpu.Context) {
		return func(ctx *cpu.Context) {
			for {
				ctx.Nop(0x10)
			}
		}
	}
	a := s.Spawn("a", mk())
	b := s.Spawn("b", mk())
	Interleave(rng.New(7), []*Thread{a, b}, []int{1, 3}, 4000)
	ia := a.Context().ReadPMC(cpu.Instructions)
	ib := b.Context().ReadPMC(cpu.Instructions)
	if ia+ib != 4000 {
		t.Errorf("total interleaved instructions = %d, want 4000", ia+ib)
	}
	if ib <= ia {
		t.Errorf("weight-3 thread ran %d vs weight-1 thread %d", ib, ia)
	}
}

func TestInterleaveStopsWhenAllFinished(t *testing.T) {
	s := newSys()
	a := s.Spawn("a", func(ctx *cpu.Context) { ctx.Nop(1) })
	// Must terminate even though the budget far exceeds the work.
	Interleave(rng.New(1), []*Thread{a}, []int{1}, 1_000_000)
	if !a.Finished() {
		t.Error("thread not finished")
	}
}

func TestInterleavePanics(t *testing.T) {
	s := newSys()
	a := s.Spawn("a", func(ctx *cpu.Context) { ctx.Nop(1) })
	defer a.Run()
	for _, c := range []struct {
		name    string
		weights []int
	}{
		{"mismatch", []int{1, 2}},
		{"negative", []int{-1}},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			Interleave(rng.New(1), []*Thread{a}, c.weights, 10)
		})
	}
}

func TestInterleaveZeroWeightNoop(t *testing.T) {
	s := newSys()
	a := s.Spawn("a", func(ctx *cpu.Context) { ctx.Nop(1) })
	Interleave(rng.New(1), []*Thread{a}, []int{0}, 100)
	if got := a.Context().ReadPMC(cpu.Instructions); got != 0 {
		t.Errorf("zero-weight thread ran %d instructions", got)
	}
	a.Run()
}

func TestNoiseProcessRunsForever(t *testing.T) {
	s := newSys()
	n := s.Spawn("noise", noise.Process(3, noise.DefaultRegion, 1<<16))
	if !n.Step(500) {
		t.Fatal("noise process finished")
	}
	got := n.Context().ReadPMC(cpu.Instructions)
	if got != 500 {
		t.Errorf("noise executed %d instructions, want 500", got)
	}
	if b := n.Context().ReadPMC(cpu.BranchInstructions); b < 300 {
		t.Errorf("noise executed only %d branches out of 500 instructions", b)
	}
}

func TestNoiseBurst(t *testing.T) {
	s := newSys()
	ctx := s.NewProcess("noise")
	b := noise.NewBurst(9, 0x5000, 1<<12)
	b.Run(ctx, 200)
	if got := ctx.ReadPMC(cpu.Instructions); got != 200 {
		t.Errorf("burst executed %d instructions", got)
	}
	// Zero span falls back to a default rather than panicking.
	nb := noise.NewBurst(1, 0, 0)
	nb.Run(ctx, 10)
}

func TestThreadString(t *testing.T) {
	s := newSys()
	th := s.Spawn("x", func(ctx *cpu.Context) { ctx.Nop(1) })
	if th.String() == "" {
		t.Error("empty String")
	}
	th.Run()
	if th.String() == "" {
		t.Error("empty String after finish")
	}
}

func TestSystemAccessors(t *testing.T) {
	s := newSys()
	if s.Model().Name != "Skylake" {
		t.Errorf("Model = %s", s.Model().Name)
	}
	if s.Core() == nil || s.Rand() == nil {
		t.Error("nil accessor")
	}
}

func TestKillSuspendedThread(t *testing.T) {
	s := newSys()
	th := s.Spawn("noise", noise.Process(3, noise.DefaultRegion, 1<<16))
	th.Step(100)
	th.Kill()
	if !th.Finished() {
		t.Error("killed thread not finished")
	}
	if th.Step(10) {
		t.Error("killed thread still runnable")
	}
}

func TestKillNeverStartedThread(t *testing.T) {
	s := newSys()
	ran := false
	th := s.Spawn("x", func(ctx *cpu.Context) { ran = true })
	th.Kill()
	if !th.Finished() {
		t.Error("killed thread not finished")
	}
	if ran {
		t.Error("killed-before-start thread ran")
	}
}

func TestKillFinishedThreadNoop(t *testing.T) {
	s := newSys()
	th := s.Spawn("x", func(ctx *cpu.Context) { ctx.Nop(1) })
	th.Run()
	th.Kill() // must not hang or panic
}
