package sched

import (
	"testing"
	"testing/quick"

	"branchscope/internal/cpu"
	"branchscope/internal/uarch"
)

// Property: a stepped thread retires exactly the same instruction stream
// as the same function run directly — scheduling must be transparent to
// architectural state.
func TestQuickSteppingTransparent(t *testing.T) {
	program := func(ctx *cpu.Context, script []byte) {
		for i, b := range script {
			addr := uint64(0x2000 + int(b)*17 + i)
			if b%3 == 0 {
				ctx.Branch(addr, b&4 != 0)
			} else {
				ctx.Nop(addr)
			}
		}
	}
	f := func(seed uint64, script []byte, cuts []uint8) bool {
		// Direct execution.
		direct := NewSystem(uarch.SandyBridge(), seed)
		dctx := direct.NewProcess("direct")
		program(dctx, script)

		// Stepped execution with arbitrary quanta.
		stepped := NewSystem(uarch.SandyBridge(), seed)
		th := stepped.Spawn("stepped", func(ctx *cpu.Context) {
			program(ctx, script)
		})
		for _, c := range cuts {
			if c == 0 {
				continue
			}
			if c%2 == 0 {
				th.Step(int(c % 7 * 3))
			} else {
				th.StepBranches(int(c % 3))
			}
			if th.Finished() {
				break
			}
		}
		th.Run()

		return dctx.ReadPMC(cpu.Instructions) == th.Context().ReadPMC(cpu.Instructions) &&
			dctx.ReadPMC(cpu.BranchInstructions) == th.Context().ReadPMC(cpu.BranchInstructions) &&
			dctx.ReadPMC(cpu.BranchMisses) == th.Context().ReadPMC(cpu.BranchMisses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: StepBranches(k) retires at most k branches (exactly k unless
// the program ends first).
func TestQuickStepBranchesExact(t *testing.T) {
	f := func(seed uint64, nBranches uint8, k uint8) bool {
		n := int(nBranches%50) + 1
		sys := NewSystem(uarch.SandyBridge(), seed)
		th := sys.Spawn("v", func(ctx *cpu.Context) {
			for i := 0; i < n; i++ {
				ctx.Work(2)
				ctx.Branch(0x100, i%2 == 0)
			}
		})
		want := int(k%8) + 1
		th.StepBranches(want)
		got := int(th.Context().ReadPMC(cpu.BranchInstructions))
		th.Run()
		if want > n {
			return got == n
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
