package sched

import (
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/telemetry"
	"branchscope/internal/uarch"
)

// TestSystemTelemetry checks the scheduler's counters and the per-thread
// quantum spans on a stepped thread.
func TestSystemTelemetry(t *testing.T) {
	sys := NewSystem(uarch.Skylake(), 1)
	set := telemetry.New(telemetry.NewRegistry(), telemetry.NewTracer())
	sys.SetTelemetry(set)
	if sys.Telemetry() != set {
		t.Fatal("Telemetry() did not return the attached set")
	}

	th := sys.Spawn("worker", func(ctx *cpu.Context) {
		for i := 0; i < 8; i++ {
			ctx.Branch(uint64(0x100+16*i), true)
		}
	})
	th.StepBranches(3)
	th.Run()
	th.Kill()

	reg := set.Metrics
	if reg.Counter("sched.spawns").Value() != 1 {
		t.Error("sched.spawns != 1")
	}
	if reg.Counter("sched.processes").Value() != 1 {
		t.Error("sched.processes != 1")
	}
	if got := reg.Counter("sched.steps").Value(); got < 2 {
		t.Errorf("sched.steps = %d, want >= 2", got)
	}
	if reg.Counter("cpu.branches").Value() != 8 {
		t.Errorf("cpu.branches = %d, want 8", reg.Counter("cpu.branches").Value())
	}

	var quanta, named int
	for _, ev := range set.Trace.Events() {
		switch {
		case ev.Name == "quantum" && ev.Phase == telemetry.PhaseComplete:
			quanta++
			if ev.TID != th.Context().TID() {
				t.Errorf("quantum span on tid %d, want %d", ev.TID, th.Context().TID())
			}
		case ev.Phase == telemetry.PhaseMetadata && ev.Args["name"] == "worker":
			named = ev.TID
		}
	}
	if quanta < 2 {
		t.Errorf("trace has %d quantum spans, want >= 2", quanta)
	}
	if named != th.Context().TID() {
		t.Errorf("thread_name metadata on tid %d, want %d", named, th.Context().TID())
	}
}

// TestTelemetryDisabledThreads pins the nil fast path: without
// SetTelemetry, contexts get tid 0 and stepping emits nothing.
func TestTelemetryDisabledThreads(t *testing.T) {
	sys := NewSystem(uarch.Skylake(), 1)
	th := sys.Spawn("quiet", func(ctx *cpu.Context) { ctx.Work(10) })
	if th.Context().TID() != 0 {
		t.Error("untracked context has a nonzero tid")
	}
	th.Run()
}

// TestInterleaveTelemetry checks slice accounting during timesharing.
func TestInterleaveTelemetry(t *testing.T) {
	sys := NewSystem(uarch.Skylake(), 2)
	set := telemetry.New(telemetry.NewRegistry(), nil)
	sys.SetTelemetry(set)
	a := sys.Spawn("a", func(ctx *cpu.Context) { ctx.Work(1 << 20) })
	b := sys.Spawn("b", func(ctx *cpu.Context) { ctx.Work(1 << 20) })
	defer a.Kill()
	defer b.Kill()
	Interleave(sys.Rand(), []*Thread{a, b}, []int{1, 1}, 160)
	if got := set.Metrics.Counter("sched.interleave_slices").Value(); got != 10 {
		t.Errorf("sched.interleave_slices = %d, want 10", got)
	}
}
