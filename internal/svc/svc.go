// Package svc is the multi-tenant campaign job service: the serving
// surface that turns the single-operator CLI stack into a shared
// execution platform. Clients POST branchscope.job/v1 specs — tenant
// ID plus the same result-shaping knobs the CLIs take (seed, quick,
// task list, chaos/retry/breaker/timeout) — and the service validates
// the spec, admits it against per-tenant and global quotas (shedding
// with a structured 429 + Retry-After when a queue is full), and runs
// each job in its own isolated simulator instance on a shared bounded
// engine.Pool with per-tenant fair scheduling.
//
// Determinism is the service's core contract, inherited from the
// engine (PR 2), the campaign journal (PR 5) and the run identity
// (PR 8): a job's report, JSON export, run ID and manifest are
// byte-identical to the same spec run directly via cmd/experiments,
// because both paths derive every task seed from (base seed, task ID)
// and digest the same identity basis. Where a job ran — CLI, service,
// worker fleet — never changes what it produced.
//
// Isolation: each job gets its own engine.Runner, breaker set, retry
// policy, chaos plan (carried through the context, never through the
// process-wide defaults), deadline context and panic recovery, so one
// tenant's pathological spec — a chaos storm, an exhausted retry
// budget, a watchdog-stuck task — can never stall or corrupt another
// tenant's results. The shared pool uses caller-runs overflow (see
// engine.Pool), so a saturated pool degrades parallelism, never
// liveness: every job goroutine always makes progress on its own.
//
// Jobs stream per-task progress and row results as branchscope.ledger/v1
// JSONL (GET /jobs/{id}/stream), archive through runstore.Archiver
// under <dir>/<tenant>/<run-id>/, and survive a service restart via a
// CRC-framed journal: queued jobs are re-enqueued, jobs that were
// running settle as failed with an explicit reason, finished jobs keep
// their settled state. See DESIGN §3.21.
package svc

import (
	"errors"
	"fmt"
	"time"

	"branchscope/internal/cliutil"
	"branchscope/internal/runstore"
)

// SpecSchema versions job submissions; the service refuses others.
const SpecSchema = "branchscope.job/v1"

// Spec is one submitted campaign job: the tenant it belongs to plus
// exactly the result-shaping knobs runstore.Identity digests for a CLI
// run. Execution-shape knobs (-parallel, sink paths, worker fleets)
// deliberately have no spec fields: they belong to the service, and
// the run identity guarantees they cannot change the result.
type Spec struct {
	Schema string `json:"schema"`
	// Tenant names the submitting client. It keys quotas, fair
	// scheduling and the archive subdirectory, so it must be a safe
	// path component (letters, digits, '.', '_', '-').
	Tenant string `json:"tenant"`
	// Program must match the serving program ("experiments"); a spec
	// for a foreign program is refused like a foreign fabric
	// assignment.
	Program string `json:"program,omitempty"`
	// BaseSeed is the suite seed task seeds derive from (0 means the
	// CLI default, 1).
	BaseSeed uint64 `json:"base_seed,omitempty"`
	Quick    bool   `json:"quick,omitempty"`
	// Tasks selects experiment IDs in order; empty runs the full
	// registry, exactly like a bare CLI invocation.
	Tasks []string `json:"tasks,omitempty"`
	// Chaos/ChaosSeed/Retry/Breaker mirror the CLI flags of the same
	// names (see cliutil.Flags); they shape results and therefore the
	// run identity.
	Chaos     string `json:"chaos,omitempty"`
	ChaosSeed uint64 `json:"chaos_seed,omitempty"`
	Retry     int    `json:"retry,omitempty"`
	Breaker   int    `json:"breaker,omitempty"`
	// TimeoutMS bounds each task's wall time (the CLI's -timeout);
	// part of the identity like the flag.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// DeadlineMS bounds the whole job's wall time. Execution shape:
	// it decides whether the job finishes, never what finished tasks
	// produced, so it stays out of the identity.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Seed resolves the spec's base seed with the CLI's default.
func (sp Spec) Seed() uint64 {
	if sp.BaseSeed == 0 {
		return 1
	}
	return sp.BaseSeed
}

// Timeout returns the per-task timeout as a duration (0 = unbounded).
func (sp Spec) Timeout() time.Duration { return time.Duration(sp.TimeoutMS) * time.Millisecond }

// Deadline returns the per-job deadline as a duration (0 = unbounded).
func (sp Spec) Deadline() time.Duration { return time.Duration(sp.DeadlineMS) * time.Millisecond }

// Flags assembles the cliutil flag view of the spec's result-shaping
// knobs, so identity derivation — and the host's per-job chaos/retry
// isolation — goes through the exact code path the CLIs use: RunID
// parity with cmd/experiments is a construction, not a convention.
func (sp Spec) Flags() cliutil.Flags {
	return cliutil.Flags{
		Chaos:     sp.Chaos,
		ChaosSeed: sp.ChaosSeed,
		Retry:     sp.Retry,
		Breaker:   sp.Breaker,
	}
}

// Identity derives the job's causal run identity over the resolved
// task-ID list, byte-for-byte the identity cmd/experiments would
// derive for the same invocation.
func (sp Spec) Identity(taskIDs []string) (runstore.Identity, error) {
	cfg, err := sp.Flags().IdentityConfig(sp.Seed())
	if err != nil {
		return runstore.Identity{}, err
	}
	if sp.TimeoutMS > 0 {
		cfg["timeout"] = sp.Timeout().String()
	}
	return runstore.Identity{
		Program:  sp.Program,
		BaseSeed: sp.Seed(),
		Quick:    sp.Quick,
		Tasks:    taskIDs,
		Config:   cfg,
	}, nil
}

// validTenant reports whether the tenant name is a safe archive path
// component.
func validTenant(t string) bool {
	if t == "" || len(t) > 64 {
		return false
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return t != "." && t != ".."
}

// Validate checks the spec against the serving program. Chaos plans
// are parsed (via the identity derivation) so a malformed plan is a
// 400 at submit, not a failed job later.
func (sp Spec) Validate(program string) error {
	if sp.Schema != SpecSchema {
		return fmt.Errorf("svc: spec schema %q, this service speaks %q", sp.Schema, SpecSchema)
	}
	if !validTenant(sp.Tenant) {
		return errors.New("svc: tenant must be 1-64 characters of [a-zA-Z0-9._-]")
	}
	if sp.Program != "" && sp.Program != program {
		return fmt.Errorf("svc: spec is for program %q, this service runs %q", sp.Program, program)
	}
	if sp.Retry < 0 || sp.Breaker < 0 {
		return errors.New("svc: retry and breaker must be >= 0")
	}
	if sp.TimeoutMS < 0 || sp.DeadlineMS < 0 {
		return errors.New("svc: timeout_ms and deadline_ms must be >= 0")
	}
	if _, err := sp.Flags().ChaosPlan(sp.Seed()); err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	return nil
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// settledState reports whether a state is terminal.
func settledState(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}
