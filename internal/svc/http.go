package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// JobsSchema versions the GET /jobs listing document.
const JobsSchema = "branchscope.jobs/v1"

// Handler serves the job API. Mount it on the obs server at /jobs
// (the handler parses the full path itself):
//
//	POST /jobs              submit a branchscope.job/v1 spec → 201 JobStatus
//	GET  /jobs[?tenant=t]   list jobs in submission order
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/stream  follow the job's branchscope.ledger/v1 JSONL
//	                        stream; EOF means the job settled
//	POST /jobs/{id}/cancel  cancel a queued or running job
//
// The handler is mountable before Start: it answers 503 until the
// service is wired.
func (s *Service) Handler() http.Handler { return http.HandlerFunc(s.serveHTTP) }

func (s *Service) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if !s.started.Load() {
		writeError(w, http.StatusServiceUnavailable, 1, "", errors.New("svc: service is starting"))
		return
	}
	rest := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/jobs"), "/")
	if rest == "" {
		switch r.Method {
		case http.MethodPost:
			s.handleSubmit(w, r)
		case http.MethodGet:
			s.handleList(w, r)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
		return
	}
	id, action, _ := strings.Cut(rest, "/")
	switch {
	case action == "" && r.Method == http.MethodGet:
		s.handleGet(w, id)
	case action == "stream" && r.Method == http.MethodGet:
		s.handleStream(w, r, id)
	case action == "cancel" && r.Method == http.MethodPost:
		s.handleCancel(w, id)
	case action == "" || action == "stream" || action == "cancel":
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	default:
		http.NotFound(w, r)
	}
}

// errorDoc is the structured body every non-2xx answer carries, so a
// shed client can distinguish which quota it hit without parsing prose.
type errorDoc struct {
	Error string `json:"error"`
	Scope string `json:"scope,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header for clients that
	// only read bodies.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func writeError(w http.ResponseWriter, code, retryAfter int, scope string, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorDoc{Error: err.Error(), Scope: scope, RetryAfterSeconds: retryAfter})
}

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, 0, "", fmt.Errorf("svc: decoding spec: %w", err))
		return
	}
	st, err := s.Submit(sp)
	if err != nil {
		var se *SubmitError
		if errors.As(err, &se) {
			writeError(w, se.Code, se.RetryAfter, se.Scope, se)
		} else {
			writeError(w, http.StatusInternalServerError, 0, "", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	doc := struct {
		Schema string      `json:"schema"`
		Jobs   []JobStatus `json:"jobs"`
	}{Schema: JobsSchema, Jobs: s.List(r.URL.Query().Get("tenant"))}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Service) handleGet(w http.ResponseWriter, id string) {
	st, err := s.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, 0, "", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, id string) {
	st, err := s.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, 0, "", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream replays the job's ledger lines from the start, then
// follows live appends, flushing per line; the response ends when the
// job settles (or the client goes away). Settled jobs replay and EOF
// immediately, so streaming is safe at any point in a job's life.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request, id string) {
	st, err := s.subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, 0, "", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for i := 0; ; i++ {
		line, ok, err := st.next(r.Context(), i)
		if err != nil || !ok {
			return
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}
