package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"sync"
	"sync/atomic"

	"branchscope/internal/campaign"
	"branchscope/internal/engine"
	"branchscope/internal/obs"
	"branchscope/internal/runstore"
)

// Limits is the admission-control surface: how much concurrent and
// queued work the service accepts, globally and per tenant. Zero
// fields take the defaults in withDefaults.
type Limits struct {
	// Jobs bounds jobs running concurrently across all tenants.
	Jobs int
	// Queue bounds jobs queued across all tenants; submissions beyond
	// it shed with 429.
	Queue int
	// TenantRunning bounds one tenant's concurrently running jobs;
	// submissions beyond it queue (fair scheduling), they don't shed.
	TenantRunning int
	// TenantQueue bounds one tenant's queued jobs; submissions beyond
	// it shed with 429 so a single tenant cannot fill the global queue.
	TenantQueue int
}

// withDefaults resolves zero limits to the service defaults.
func (l Limits) withDefaults() Limits {
	if l.Jobs <= 0 {
		l.Jobs = 2
	}
	if l.Queue <= 0 {
		l.Queue = 16
	}
	if l.TenantRunning <= 0 {
		l.TenantRunning = 1
	}
	if l.TenantQueue <= 0 {
		l.TenantQueue = 4
	}
	return l
}

// Config wires a Service to its host process.
type Config struct {
	// Program is the serving program name ("experiments"); specs naming
	// another program are refused.
	Program string
	// Tasks is the full task registry jobs select from, in registry
	// order (an empty spec task list runs all of them, like the CLI).
	Tasks []engine.Task
	// Pool is the shared execution pool all jobs run on. Caller-runs
	// overflow (see engine.Pool) means a saturated pool degrades
	// parallelism, never liveness, so jobs cannot deadlock each other.
	Pool *engine.Pool
	// ArchiveDir, when set, archives each completed job under
	// <ArchiveDir>/<tenant>/<run-id>/ via runstore.Archiver.
	ArchiveDir string
	// JournalPath, when set, journals submissions to a crash-safe file:
	// after a restart, queued jobs re-enqueue and jobs that were running
	// settle failed with an explicit reason. Empty runs in-memory only.
	JournalPath string
	Limits      Limits
	// Isolate, when non-nil, prepares a job's context before execution —
	// the host injects per-job chaos/retry overrides here (see
	// experiments.WithOverrides) so a job can never inherit another
	// tenant's (or the host CLI's) process-wide defaults.
	Isolate func(ctx context.Context, sp Spec) context.Context
	// Log receives progress events; nil discards them.
	Log *slog.Logger
}

// JobStatus is the client-visible view of one job.
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// RunID is the job's causal run identity — identical to the run ID
	// a direct CLI run of the same spec derives (see runstore).
	RunID  string `json:"run_id"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
}

// SubmitError maps an admission failure to its HTTP response.
type SubmitError struct {
	// Code is the HTTP status (400 invalid, 429 shed, 503 draining,
	// 500 internal).
	Code int
	// RetryAfter, when > 0, is the Retry-After header in seconds.
	RetryAfter int
	// Scope names the quota a 429 hit: "tenant-queue" or "global-queue".
	Scope string
	Err   error
}

// Error implements error.
func (e *SubmitError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause.
func (e *SubmitError) Unwrap() error { return e.Err }

// ErrDraining rejects submissions while the service drains for
// shutdown.
var ErrDraining = errors.New("svc: service is draining for shutdown")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("svc: no such job")

// stream is one job's replayable broadcast of ledger-record lines:
// subscribers replay everything from the start, then follow appends
// until the stream closes (the job settled).
type stream struct {
	mu     sync.Mutex
	lines  [][]byte
	closed bool
	wake   chan struct{}
}

func newStream() *stream { return &stream{wake: make(chan struct{})} }

// wakeLocked signals every blocked subscriber; callers hold mu.
func (st *stream) wakeLocked() {
	close(st.wake)
	st.wake = make(chan struct{})
}

// append publishes one line.
func (st *stream) append(line []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.lines = append(st.lines, line)
	st.wakeLocked()
}

// close ends the stream; subscribers see EOF after the last line.
func (st *stream) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.closed {
		st.closed = true
		st.wakeLocked()
	}
}

// next blocks until line i exists (returned with ok=true), the stream
// closes with fewer lines (ok=false: EOF), or ctx ends.
func (st *stream) next(ctx context.Context, i int) ([]byte, bool, error) {
	for {
		st.mu.Lock()
		if i < len(st.lines) {
			line := st.lines[i]
			st.mu.Unlock()
			return line, true, nil
		}
		if st.closed {
			st.mu.Unlock()
			return nil, false, nil
		}
		wake := st.wake
		st.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// job is one submitted campaign job. Mutable fields are guarded by the
// service mutex.
type job struct {
	id     string
	tenant string
	spec   Spec
	runID  string
	tasks  []engine.Task
	ids    []string

	state    string
	reason   string
	canceled bool // client requested cancellation
	cancel   context.CancelFunc
	stream   *stream
}

// statusLocked renders the client view; callers hold the service mutex.
func (j *job) statusLocked() JobStatus {
	return JobStatus{ID: j.id, Tenant: j.tenant, RunID: j.runID, State: j.state, Reason: j.reason}
}

// Service is the multi-tenant campaign job service. Construct with
// New, mount Handler on the obs server, then Start it; Drain on
// shutdown.
type Service struct {
	started atomic.Bool

	program    string
	registry   map[string]engine.Task
	regOrder   []string
	pool       *engine.Pool
	archiveDir string
	isolate    func(context.Context, Spec) context.Context
	limits     Limits
	log        *slog.Logger
	jnl        *journal

	mu         sync.Mutex
	jobs       map[string]*job
	order      []*job            // submission order, for listings
	queues     map[string][]*job // per-tenant FIFO of queued jobs
	tenantSeen []string          // tenant first-seen order, for round-robin
	lastServed string            // tenant that last received a slot
	running    map[string]int    // per-tenant running counts
	totalRunning int
	totalQueued  int
	seq          int
	shed         int64
	nDone        int
	nFailed      int
	nCanceled    int
	draining     bool
	wg           sync.WaitGroup
}

// New allocates an unstarted service. The handler can be mounted
// immediately (it answers 503 until Start); Start wires the config and
// begins scheduling.
func New() *Service { return &Service{} }

// Start wires the service, replays the journal (re-enqueueing queued
// jobs, settling was-running jobs as failed with a reason), and starts
// scheduling.
func (s *Service) Start(cfg Config) error {
	if s.started.Load() {
		return errors.New("svc: service already started")
	}
	s.program = cfg.Program
	s.pool = cfg.Pool
	s.archiveDir = cfg.ArchiveDir
	s.isolate = cfg.Isolate
	s.limits = cfg.Limits.withDefaults()
	s.log = cfg.Log
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.registry = make(map[string]engine.Task, len(cfg.Tasks))
	for _, t := range cfg.Tasks {
		s.registry[t.ID] = t
		s.regOrder = append(s.regOrder, t.ID)
	}
	s.jobs = map[string]*job{}
	s.queues = map[string][]*job{}
	s.running = map[string]int{}

	if cfg.JournalPath != "" {
		jnl, recovered, err := openJournal(cfg.JournalPath)
		if err != nil {
			return err
		}
		s.jnl = jnl
		s.mu.Lock()
		for _, rj := range recovered {
			s.recoverLocked(rj)
		}
		s.mu.Unlock()
	}
	s.started.Store(true)
	s.mu.Lock()
	s.scheduleLocked()
	s.mu.Unlock()
	return nil
}

// Close releases the journal. Call after Drain.
func (s *Service) Close() error { return s.jnl.close() }

// recoverLocked reconstructs one journaled job at startup.
func (s *Service) recoverLocked(rj recoveredJob) {
	j := &job{
		id:     rj.rec.ID,
		tenant: rj.rec.Spec.Tenant,
		spec:   rj.rec.Spec,
		runID:  rj.rec.RunID,
		stream: newStream(),
	}
	if n := jobSeq(j.id); n > s.seq {
		s.seq = n
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.seeTenantLocked(j.tenant)
	switch {
	case rj.state != "":
		j.state, j.reason = rj.state, rj.reason
		s.countSettledLocked(rj.state)
		j.stream.close()
	case rj.started:
		// The job was running when the previous process died. Its
		// partial work is unrecoverable (and its archive was never
		// written), so it settles failed with an explicit reason rather
		// than silently vanishing or re-running under a stale stream.
		j.state = StateFailed
		j.reason = "service restarted while job was running"
		s.countSettledLocked(StateFailed)
		j.stream.close()
		s.journalDone(j)
		s.log.Warn("recovered job settled failed", "job", j.id, "tenant", j.tenant, "reason", j.reason)
	default:
		tasks, ids, err := s.resolve(j.spec.Tasks)
		if err != nil {
			j.state, j.reason = StateFailed, err.Error()
			s.countSettledLocked(StateFailed)
			j.stream.close()
			s.journalDone(j)
			return
		}
		j.tasks, j.ids = tasks, ids
		j.state = StateQueued
		s.enqueueLocked(j)
		s.log.Info("recovered queued job", "job", j.id, "tenant", j.tenant, "run_id", j.runID)
	}
}

// jobSeq parses the numeric suffix of a job ID (0 when malformed).
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// resolve maps a spec's task selection onto the registry: empty means
// the full registry in order, exactly like a bare CLI invocation.
func (s *Service) resolve(sel []string) ([]engine.Task, []string, error) {
	ids := sel
	if len(ids) == 0 {
		ids = s.regOrder
	}
	tasks := make([]engine.Task, 0, len(ids))
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		t, ok := s.registry[id]
		if !ok {
			return nil, nil, fmt.Errorf("svc: unknown experiment %q", id)
		}
		tasks = append(tasks, t)
		out = append(out, id)
	}
	return tasks, out, nil
}

// Submit validates and admits one job. On success the job is durably
// journaled and either started or queued; the returned status carries
// the run ID the job's outputs will be archived under. Admission
// failures return a *SubmitError carrying the HTTP mapping.
func (s *Service) Submit(sp Spec) (JobStatus, error) {
	if !s.started.Load() {
		return JobStatus{}, &SubmitError{Code: 503, RetryAfter: 1, Err: errors.New("svc: service is starting")}
	}
	if sp.Program == "" {
		sp.Program = s.program
	}
	if err := sp.Validate(s.program); err != nil {
		return JobStatus{}, &SubmitError{Code: 400, Err: err}
	}
	tasks, ids, err := s.resolve(sp.Tasks)
	if err != nil {
		return JobStatus{}, &SubmitError{Code: 400, Err: err}
	}
	identity, err := sp.Identity(ids)
	if err != nil {
		return JobStatus{}, &SubmitError{Code: 400, Err: err}
	}
	runID := identity.RunID()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.shed++
		return JobStatus{}, &SubmitError{Code: 503, RetryAfter: 30, Err: ErrDraining}
	}
	if len(s.queues[sp.Tenant]) >= s.limits.TenantQueue {
		s.shed++
		return JobStatus{}, &SubmitError{
			Code: 429, RetryAfter: 5, Scope: "tenant-queue",
			Err: fmt.Errorf("svc: tenant %q already has %d job(s) queued (limit %d)",
				sp.Tenant, len(s.queues[sp.Tenant]), s.limits.TenantQueue),
		}
	}
	if s.totalQueued >= s.limits.Queue {
		s.shed++
		return JobStatus{}, &SubmitError{
			Code: 429, RetryAfter: 5, Scope: "global-queue",
			Err: fmt.Errorf("svc: global queue is full (%d queued, limit %d)", s.totalQueued, s.limits.Queue),
		}
	}
	s.seq++
	j := &job{
		id:     fmt.Sprintf("job-%06d", s.seq),
		tenant: sp.Tenant,
		spec:   sp,
		runID:  runID,
		tasks:  tasks,
		ids:    ids,
		state:  StateQueued,
		stream: newStream(),
	}
	// The submit record must be durable before the client sees 201:
	// a 201'd job survives a restart, full stop.
	if err := s.jnl.append(kindJob, jobRecord{ID: j.id, RunID: runID, Spec: sp}); err != nil {
		return JobStatus{}, &SubmitError{Code: 500, Err: err}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.seeTenantLocked(sp.Tenant)
	s.enqueueLocked(j)
	s.log.Info("job submitted", "job", j.id, "tenant", j.tenant, "run_id", runID, "tasks", len(ids))
	s.scheduleLocked()
	return j.statusLocked(), nil
}

// seeTenantLocked records a tenant's first appearance for round-robin.
func (s *Service) seeTenantLocked(t string) {
	for _, seen := range s.tenantSeen {
		if seen == t {
			return
		}
	}
	s.tenantSeen = append(s.tenantSeen, t)
}

// enqueueLocked appends a queued job to its tenant FIFO.
func (s *Service) enqueueLocked(j *job) {
	s.queues[j.tenant] = append(s.queues[j.tenant], j)
	s.totalQueued++
}

// scheduleLocked starts queued jobs while global capacity remains,
// rotating round-robin over tenants so no tenant's backlog can starve
// another's — per-tenant fairness is positional, not proportional.
func (s *Service) scheduleLocked() {
	if !s.started.Load() || s.draining {
		return
	}
	for s.totalRunning < s.limits.Jobs {
		j := s.nextLocked()
		if j == nil {
			return
		}
		s.startLocked(j)
	}
}

// nextLocked pops the next runnable job: scanning tenants round-robin
// starting AFTER the tenant that last received a slot, so freed
// capacity rotates to waiting tenants before the last-served tenant's
// backlog — even when a tenant first appeared after that slot was
// handed out.
func (s *Service) nextLocked() *job {
	n := len(s.tenantSeen)
	start := 0
	for i, t := range s.tenantSeen {
		if t == s.lastServed {
			start = i + 1
			break
		}
	}
	for k := 0; k < n; k++ {
		t := s.tenantSeen[(start+k)%n]
		if s.running[t] >= s.limits.TenantRunning {
			continue
		}
		q := s.queues[t]
		if len(q) == 0 {
			continue
		}
		s.queues[t] = q[1:]
		s.totalQueued--
		s.lastServed = t
		return q[0]
	}
	return nil
}

// startLocked transitions a job to running and launches its executor.
func (s *Service) startLocked(j *job) {
	j.state = StateRunning
	s.running[j.tenant]++
	s.totalRunning++
	if err := s.jnl.append(kindStart, markRecord{ID: j.id}); err != nil {
		s.log.Error("journaling job start", "job", j.id, "err", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	s.log.Info("job started", "job", j.id, "tenant", j.tenant, "run_id", j.runID)
	s.wg.Add(1)
	go s.run(j, ctx, cancel)
}

// run executes one job in its own isolated simulator instance: its own
// runner, breaker set, retry policy, deadline context and panic
// recovery, sharing only the caller-runs pool with other jobs.
func (s *Service) run(j *job, ctx context.Context, cancel context.CancelFunc) {
	defer s.wg.Done()
	defer cancel()
	defer func() {
		// A panic that escapes the engine's per-task recovery (or hits
		// the service's own code) fails this job only.
		if p := recover(); p != nil {
			s.settle(j, StateFailed, fmt.Sprintf("job executor panicked: %v", p))
		}
	}()
	sp := j.spec
	if d := sp.Deadline(); d > 0 {
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithTimeout(ctx, d)
		defer dcancel()
	}
	if s.isolate != nil {
		ctx = s.isolate(ctx, sp)
	}

	ledgerCfg := map[string]any{"quick": sp.Quick, "tenant": sp.Tenant, "job": j.id}
	runner := &engine.Runner{
		Pool:     s.pool,
		Timeout:  sp.Timeout(),
		Retry:    sp.Flags().RetryPolicy(),
		Breakers: engine.NewBreakerSet(sp.Breaker),
		RunID:    j.runID,
		OnStart: func(t engine.Task, seed uint64) {
			s.log.Info("job task start", "job", j.id, "tenant", j.tenant, "id", t.ID, "seed", seed)
		},
		OnDone: func(rep engine.Report) { s.streamReport(j, ledgerCfg, rep) },
	}
	reports := runner.RunSuite(ctx, j.tasks, engine.Config{Quick: sp.Quick, Seed: sp.Seed()})

	s.mu.Lock()
	userCanceled := j.canceled
	s.mu.Unlock()
	switch {
	case userCanceled:
		s.settle(j, StateCanceled, "canceled by client")
	case ctx.Err() != nil:
		reason := "job context canceled during drain"
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			reason = fmt.Sprintf("job deadline (%s) exceeded", sp.Deadline())
		}
		s.settle(j, StateFailed, reason)
	default:
		if err := s.archive(j, runner, reports); err != nil {
			s.settle(j, StateFailed, fmt.Sprintf("archiving results: %v", err))
			return
		}
		reason := ""
		if n := engine.Failed(reports); n > 0 {
			reason = fmt.Sprintf("%d of %d task(s) failed", n, len(reports))
		}
		s.settle(j, StateDone, reason)
	}
}

// streamReport publishes one finished task as a branchscope.ledger/v1
// line on the job's stream — the same wire shape file ledgers use,
// plus the result rows so stream clients get data, not just digests.
func (s *Service) streamReport(j *job, ledgerCfg map[string]any, rep engine.Report) {
	rec := obs.LedgerRecord{
		Schema:   obs.LedgerSchema,
		RunID:    j.runID,
		Program:  s.program,
		ID:       rep.Task.ID,
		Artifact: rep.Task.Artifact,
		Config:   ledgerCfg,
		BaseSeed: j.spec.Seed(),
		Seed:     rep.Seed,
		Outcome:  rep.Outcome(),
		// WallSeconds is the one nondeterministic field, exactly as in
		// file ledgers; the deterministic outputs live in the archive.
		WallSeconds: rep.Wall.Seconds(),
	}
	if rep.Err != nil {
		rec.Error = rep.Err.Error()
	} else {
		rec.ResultDigest = obs.Digest(rep.Result.String())
		rec.Rows = campaign.RecordOf(rep).Rows
	}
	line, err := json.Marshal(rec)
	if err != nil {
		s.log.Error("encoding stream record", "job", j.id, "id", rep.Task.ID, "err", err)
		return
	}
	j.stream.append(line)
	s.log.Info("job task done", "job", j.id, "tenant", j.tenant, "id", rep.Task.ID, "outcome", rec.Outcome)
}

// archive writes the job's deterministic outputs — task outcomes,
// report and export blobs, manifest — under <dir>/<tenant>/<run-id>/.
// The blobs are rendered over wall-zeroed reports, so they are
// byte-identical to a direct CLI run of the same spec.
func (s *Service) archive(j *job, runner *engine.Runner, reports []engine.Report) error {
	if s.archiveDir == "" {
		return nil
	}
	identity, err := j.spec.Identity(j.ids)
	if err != nil {
		return err
	}
	arc := runstore.New(filepath.Join(s.archiveDir, j.tenant), identity)
	arcReports := append([]engine.Report(nil), reports...)
	for i := range arcReports {
		arcReports[i].Wall = 0
	}
	for _, rep := range arcReports {
		o := runstore.TaskOutcome{
			ID: rep.Task.ID, Seed: rep.Seed,
			Outcome: rep.Outcome(), Attempts: rep.Attempts,
		}
		if rep.Err != nil {
			o.Error = rep.Err.Error()
		}
		arc.Record(o)
	}
	var report, export bytes.Buffer
	engine.FormatText(&report, arcReports)
	arc.AddBlob("report", report.Bytes())
	if err := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: j.spec.Seed(), Quick: j.spec.Quick, RunID: j.runID}, arcReports); err != nil {
		return err
	}
	arc.AddBlob("export", export.Bytes())
	var sums []runstore.BreakerSummary
	for _, b := range runner.Breakers.Status() {
		if b.State != "closed" || b.Skipped > 0 {
			sums = append(sums, runstore.BreakerSummary{Family: b.Family, State: b.State, Skipped: b.Skipped})
		}
	}
	arc.SetBreakers(sums)
	dir, err := arc.Write()
	if err != nil {
		return err
	}
	s.log.Info("job archived", "job", j.id, "tenant", j.tenant, "dir", dir, "run_id", j.runID)
	return nil
}

// settle finalizes a job's state exactly once, frees its running slot,
// journals the outcome, closes the stream, and schedules successors.
func (s *Service) settle(j *job, state, reason string) {
	s.mu.Lock()
	if settledState(j.state) {
		s.mu.Unlock()
		return
	}
	wasRunning := j.state == StateRunning
	j.state, j.reason = state, reason
	if wasRunning {
		s.running[j.tenant]--
		s.totalRunning--
	}
	s.countSettledLocked(state)
	s.journalDone(j)
	s.scheduleLocked()
	s.mu.Unlock()
	j.stream.close()
	s.log.Info("job settled", "job", j.id, "tenant", j.tenant, "state", state, "reason", reason)
}

// journalDone appends the settlement record; best-effort (the
// in-memory state is already authoritative for this process's life).
func (s *Service) journalDone(j *job) {
	if err := s.jnl.append(kindDone, markRecord{ID: j.id, State: j.state, Reason: j.reason}); err != nil {
		s.log.Error("journaling job settlement", "job", j.id, "err", err)
	}
}

// countSettledLocked bumps the settled-state counters.
func (s *Service) countSettledLocked(state string) {
	switch state {
	case StateDone:
		s.nDone++
	case StateFailed:
		s.nFailed++
	case StateCanceled:
		s.nCanceled++
	}
}

// Cancel cancels a job: a queued job settles canceled immediately, a
// running one gets its context canceled and settles when its executor
// notices. Canceling a settled job is a no-op returning its state.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return JobStatus{}, ErrNotFound
	}
	settleQueued := false
	switch j.state {
	case StateQueued:
		q := s.queues[j.tenant]
		for i := range q {
			if q[i] == j {
				s.queues[j.tenant] = append(append([]*job{}, q[:i]...), q[i+1:]...)
				s.totalQueued--
				break
			}
		}
		j.canceled = true
		settleQueued = true
	case StateRunning:
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	if settleQueued {
		s.settle(j, StateCanceled, "canceled by client before start")
	}
	return s.Get(id)
}

// Get returns one job's status.
func (s *Service) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	return j.statusLocked(), nil
}

// List returns job statuses in submission order, optionally filtered
// by tenant.
func (s *Service) List(tenant string) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []JobStatus{}
	for _, j := range s.order {
		if tenant != "" && j.tenant != tenant {
			continue
		}
		out = append(out, j.statusLocked())
	}
	return out
}

// subscribe returns a job's stream for following.
func (s *Service) subscribe(id string) (*stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	return j.stream, nil
}

// Draining reports whether the service has begun draining.
func (s *Service) Draining() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Saturated reports whether the global queue is full — the /readyz
// signal that a load balancer should send new submissions elsewhere.
func (s *Service) Saturated() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalQueued >= s.limits.Queue
}

// Ready is the /readyz gate: started, not draining, queue not full.
func (s *Service) Ready() bool {
	return s != nil && s.started.Load() && !s.Draining() && !s.Saturated()
}

// Status renders the /statusz service section; nil before Start.
func (s *Service) Status() *obs.ServiceStatus {
	if s == nil || !s.started.Load() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &obs.ServiceStatus{
		Tenants:   len(s.tenantSeen),
		Running:   s.totalRunning,
		Queued:    s.totalQueued,
		Done:      s.nDone,
		Failed:    s.nFailed,
		Canceled:  s.nCanceled,
		Shed:      s.shed,
		QueueCap:  s.limits.Queue,
		Saturated: s.totalQueued >= s.limits.Queue,
		Draining:  s.draining,
	}
}

// Drain stops admissions and scheduling, lets running jobs finish
// until ctx expires, then cancels what remains and waits for every
// executor to settle. Queued jobs stay journaled as queued: a
// restarted service re-enqueues them.
func (s *Service) Drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.order {
			if j.state == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
	}
	s.log.Info("service drained", "running", 0, "queued", s.queuedCount())
}

// queuedCount reports the current queue depth.
func (s *Service) queuedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalQueued
}
