package svc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"branchscope/internal/campaign"
)

// JournalSchema versions the service journal; bump on incompatible
// change.
const JournalSchema = "branchscope.svc/v1"

// The service journal reuses the campaign journal's CRC-framed JSONL
// lines (campaign.Frame/ParseFrame) with its own kinds:
//
//	{"sum":"crc32:...","svc":{"schema":"branchscope.svc/v1"}}  (header)
//	{"sum":"crc32:...","job":{...jobRecord...}}                (submit)
//	{"sum":"crc32:...","start":{"id":"job-000001"}}            (begin)
//	{"sum":"crc32:...","done":{"id":...,"state":...,"reason":...}}
//
// Like the campaign journal it is fsynced per append, torn-tail
// tolerant, and created atomically — the restart-recovery contract
// (queued jobs resume, running jobs settle failed with a reason)
// depends on the submit record being durable before the client sees
// its 201.
const (
	kindHeader = "svc"
	kindJob    = "job"
	kindStart  = "start"
	kindDone   = "done"
)

// jobRecord is the durable submit record.
type jobRecord struct {
	ID    string `json:"id"`
	RunID string `json:"run_id"`
	Spec  Spec   `json:"spec"`
}

// markRecord is the durable start/done record.
type markRecord struct {
	ID     string `json:"id"`
	State  string `json:"state,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// svcHeader is the journal's first line.
type svcHeader struct {
	Schema string `json:"schema"`
}

// journal is the open service journal; appends are mutex-serialized
// and fsynced, mirroring campaign.Journal.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// recoveredJob is one job reconstructed from the journal.
type recoveredJob struct {
	rec     jobRecord
	started bool
	state   string // settled state, "" when the job never settled
	reason  string
}

// openJournal opens (creating if absent) the service journal and
// replays it: every intact record is returned in submit order, a torn
// final line is dropped, and the surviving content is compacted back
// to disk so the reopened file is clean before new appends land.
func openJournal(path string) (*journal, []recoveredJob, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		line, ferr := campaign.Frame(kindHeader, svcHeader{Schema: JournalSchema})
		if ferr != nil {
			return nil, nil, fmt.Errorf("svc: encoding journal header: %w", ferr)
		}
		if werr := writeAtomic(path, line); werr != nil {
			return nil, nil, fmt.Errorf("svc: creating journal: %w", werr)
		}
		j, oerr := openAppend(path)
		return j, nil, oerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("svc: reading journal: %w", err)
	}

	jobs, err := replayJournal(data)
	if err != nil {
		return nil, nil, err
	}
	// Compact: rewrite the surviving intact lines atomically, dropping
	// a torn tail before new appends could bury it mid-file.
	var buf bytes.Buffer
	line, err := campaign.Frame(kindHeader, svcHeader{Schema: JournalSchema})
	if err != nil {
		return nil, nil, fmt.Errorf("svc: re-encoding journal header: %w", err)
	}
	buf.Write(line)
	for _, rj := range jobs {
		if err := appendFrames(&buf, rj); err != nil {
			return nil, nil, err
		}
	}
	if err := writeAtomic(path, buf.Bytes()); err != nil {
		return nil, nil, fmt.Errorf("svc: compacting journal: %w", err)
	}
	j, err := openAppend(path)
	return j, jobs, err
}

// appendFrames re-frames one recovered job's surviving records.
func appendFrames(buf *bytes.Buffer, rj recoveredJob) error {
	line, err := campaign.Frame(kindJob, rj.rec)
	if err != nil {
		return fmt.Errorf("svc: re-encoding job %s: %w", rj.rec.ID, err)
	}
	buf.Write(line)
	if rj.started {
		line, err = campaign.Frame(kindStart, markRecord{ID: rj.rec.ID})
		if err != nil {
			return fmt.Errorf("svc: re-encoding start %s: %w", rj.rec.ID, err)
		}
		buf.Write(line)
	}
	if rj.state != "" {
		line, err = campaign.Frame(kindDone, markRecord{ID: rj.rec.ID, State: rj.state, Reason: rj.reason})
		if err != nil {
			return fmt.Errorf("svc: re-encoding done %s: %w", rj.rec.ID, err)
		}
		buf.Write(line)
	}
	return nil
}

// replayJournal folds the journal lines into per-job recovery state.
// A torn final line is dropped; a corrupt line anywhere earlier is
// real damage and fails the load, matching campaign.Load.
func replayJournal(data []byte) ([]recoveredJob, error) {
	var jobs []recoveredJob
	byID := map[string]*recoveredJob{}
	var pending error
	sawHeader := false
	for i, raw := range bytes.Split(data, []byte("\n")) {
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			continue
		}
		if pending != nil {
			return nil, pending
		}
		kind, payload, err := campaign.ParseFrame(line)
		if err != nil {
			pending = fmt.Errorf("svc: journal line %d: %w", i+1, err)
			continue
		}
		switch kind {
		case kindHeader:
			var h svcHeader
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, fmt.Errorf("svc: journal line %d: bad header: %w", i+1, err)
			}
			if h.Schema != JournalSchema {
				return nil, fmt.Errorf("svc: journal schema %q, want %q", h.Schema, JournalSchema)
			}
			sawHeader = true
		case kindJob:
			var rec jobRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return nil, fmt.Errorf("svc: journal line %d: bad job record: %w", i+1, err)
			}
			jobs = append(jobs, recoveredJob{rec: rec})
			byID[rec.ID] = &jobs[len(jobs)-1]
		case kindStart:
			var m markRecord
			if err := json.Unmarshal(payload, &m); err != nil {
				return nil, fmt.Errorf("svc: journal line %d: bad start record: %w", i+1, err)
			}
			if rj := byID[m.ID]; rj != nil {
				rj.started = true
			}
		case kindDone:
			var m markRecord
			if err := json.Unmarshal(payload, &m); err != nil {
				return nil, fmt.Errorf("svc: journal line %d: bad done record: %w", i+1, err)
			}
			if rj := byID[m.ID]; rj != nil {
				rj.state, rj.reason = m.State, m.Reason
			}
		default:
			return nil, fmt.Errorf("svc: journal line %d: unknown kind %q", i+1, kind)
		}
	}
	if !sawHeader && len(data) > 0 && pending == nil {
		return nil, errors.New("svc: journal has no header")
	}
	return jobs, nil
}

// openAppend opens the journal file for appending.
func openAppend(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("svc: opening journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append frames and fsyncs one record. Nil-safe: a service without a
// journal path runs in-memory only.
func (j *journal) append(kind string, payload any) error {
	if j == nil {
		return nil
	}
	line, err := campaign.Frame(kind, payload)
	if err != nil {
		return fmt.Errorf("svc: encoding %s record: %w", kind, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("svc: appending %s record: %w", kind, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("svc: syncing journal: %w", err)
	}
	return nil
}

// close closes the journal file. Nil-safe.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// writeAtomic writes data via sibling temp file + fsync + rename,
// mirroring the campaign journal's creation path.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "svc-journal.tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
