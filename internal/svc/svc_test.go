package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"branchscope/internal/engine"
	"branchscope/internal/experiments"
	"branchscope/internal/obs"
	"branchscope/internal/runstore"
)

// rowResult renders deterministically from the seed a task ran with, so
// any seed drift between service and direct execution shows up as a
// byte difference in report, export and manifest.
type rowResult struct {
	id   string
	seed uint64
}

func (r rowResult) String() string {
	return fmt.Sprintf("%s: deterministic result for seed %d\n", r.id, r.seed)
}

func (r rowResult) Rows() []engine.Row {
	return []engine.Row{{engine.F("id", r.id), engine.F("seed", r.seed)}}
}

// testRegistry builds the task registry test services run: two
// deterministic tasks plus a "slow" task gated on proceed (one receive
// per completion; cancellation unblocks it with ctx.Err()).
func testRegistry(proceed chan struct{}) []engine.Task {
	det := func(id string) engine.Task {
		return engine.Task{
			ID: id, Artifact: "table", Description: "deterministic test task",
			Run: func(_ context.Context, cfg engine.Config) (engine.Result, error) {
				return rowResult{id, cfg.Seed}, nil
			},
		}
	}
	slow := engine.Task{
		ID: "slow", Artifact: "table", Description: "gated test task",
		Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			select {
			case <-proceed:
				return rowResult{"slow", cfg.Seed}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	return []engine.Task{det("alpha"), det("beta"), slow}
}

// startService starts a service and tears it down (canceling whatever
// still runs) when the test ends.
func startService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New()
	if err := s.Start(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // expired: cancel running jobs immediately
		s.Drain(ctx)
		s.Close()
	})
	return s
}

// waitState polls until the job reaches state (10s deadline).
func waitState(t *testing.T, s *Service, id, state string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Get(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.State == state {
			return st
		}
		if settledState(st.State) || time.Now().After(deadline) {
			t.Fatalf("job %s: state %q (reason %q), want %q", id, st.State, st.Reason, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// directArchive runs the spec the way cmd/experiments would — same
// runner shape, same wall-zeroing, same blobs — and archives it under
// dir, returning the run directory. This is the byte-identity
// reference service archives are compared against.
func directArchive(t *testing.T, dir string, sp Spec, tasks []engine.Task, ids []string) string {
	t.Helper()
	if sp.Program == "" {
		sp.Program = "experiments" // the normalization Submit applies
	}
	identity, err := sp.Identity(ids)
	if err != nil {
		t.Fatal(err)
	}
	runner := &engine.Runner{
		Timeout:  sp.Timeout(),
		Retry:    sp.Flags().RetryPolicy(),
		Breakers: engine.NewBreakerSet(sp.Breaker),
		RunID:    identity.RunID(),
	}
	reports := runner.RunSuite(context.Background(), tasks, engine.Config{Quick: sp.Quick, Seed: sp.Seed()})
	for i := range reports {
		reports[i].Wall = 0
	}
	arc := runstore.New(dir, identity)
	for _, rep := range reports {
		o := runstore.TaskOutcome{ID: rep.Task.ID, Seed: rep.Seed, Outcome: rep.Outcome(), Attempts: rep.Attempts}
		if rep.Err != nil {
			o.Error = rep.Err.Error()
		}
		arc.Record(o)
	}
	var report, export bytes.Buffer
	engine.FormatText(&report, reports)
	arc.AddBlob("report", report.Bytes())
	if err := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: sp.Seed(), Quick: sp.Quick, RunID: identity.RunID()}, reports); err != nil {
		t.Fatal(err)
	}
	arc.AddBlob("export", export.Bytes())
	var sums []runstore.BreakerSummary
	for _, b := range runner.Breakers.Status() {
		if b.State != "closed" || b.Skipped > 0 {
			sums = append(sums, runstore.BreakerSummary{Family: b.Family, State: b.State, Skipped: b.Skipped})
		}
	}
	arc.SetBreakers(sums)
	runDir, err := arc.Write()
	if err != nil {
		t.Fatal(err)
	}
	return runDir
}

// tenantRunDir locates the single run directory archived for a tenant.
func tenantRunDir(t *testing.T, archiveDir, tenant string) string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(archiveDir, tenant))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("tenant %s: %d run dirs, want 1", tenant, len(entries))
	}
	return filepath.Join(archiveDir, tenant, entries[0].Name())
}

// assertRunDirsIdentical compares two run directories byte-for-byte:
// same directory name (same run ID) and identical report, export and
// manifest bytes.
func assertRunDirsIdentical(t *testing.T, got, want string) {
	t.Helper()
	if filepath.Base(got) != filepath.Base(want) {
		t.Errorf("run dir %q, want %q (run IDs diverged)", filepath.Base(got), filepath.Base(want))
	}
	for _, name := range []string{"report.txt", "export.json", runstore.ManifestName} {
		a, err := os.ReadFile(filepath.Join(got, name))
		if err != nil {
			t.Fatalf("service archive: %v", err)
		}
		b, err := os.ReadFile(filepath.Join(want, name))
		if err != nil {
			t.Fatalf("reference archive: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between service and direct run:\nservice:\n%s\ndirect:\n%s", name, a, b)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Schema: SpecSchema, Tenant: "alice"}
	if err := good.Validate("experiments"); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		sp   Spec
	}{
		{"bad schema", Spec{Schema: "nope/v9", Tenant: "a"}},
		{"empty tenant", Spec{Schema: SpecSchema}},
		{"path tenant", Spec{Schema: SpecSchema, Tenant: "../escape"}},
		{"dot tenant", Spec{Schema: SpecSchema, Tenant: ".."}},
		{"foreign program", Spec{Schema: SpecSchema, Tenant: "a", Program: "other"}},
		{"negative retry", Spec{Schema: SpecSchema, Tenant: "a", Retry: -1}},
		{"negative deadline", Spec{Schema: SpecSchema, Tenant: "a", DeadlineMS: -5}},
		{"bad chaos", Spec{Schema: SpecSchema, Tenant: "a", Chaos: "not-a-plan"}},
	}
	for _, tc := range cases {
		if err := tc.sp.Validate("experiments"); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestJobArchiveByteIdenticalToDirectRun: a service job's run ID,
// report, export and manifest must match a direct run of the same spec
// byte for byte — where a job ran never changes what it produced.
func TestJobArchiveByteIdenticalToDirectRun(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(nil)
	s := startService(t, Config{
		Program: "experiments", Tasks: reg, ArchiveDir: dir,
		JournalPath: filepath.Join(dir, "svc.journal"),
	})
	sp := Spec{Schema: SpecSchema, Tenant: "alice", Quick: true, BaseSeed: 9, Tasks: []string{"alpha", "beta"}, Retry: 2}
	st, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if st.RunID == "" {
		t.Fatal("submit returned no run ID")
	}
	final := waitState(t, s, st.ID, StateDone)
	if final.Reason != "" {
		t.Errorf("done job has reason %q", final.Reason)
	}

	ref := directArchive(t, t.TempDir(), sp, reg[:2], []string{"alpha", "beta"})
	assertRunDirsIdentical(t, tenantRunDir(t, dir, "alice"), ref)

	// The job's stream replays every task as a branchscope.ledger/v1
	// record carrying the run ID and result rows, then EOFs.
	stm, err := s.subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		line, ok, err := stm.next(context.Background(), i)
		if err != nil || !ok {
			t.Fatalf("stream line %d: ok=%v err=%v", i, ok, err)
		}
		var rec obs.LedgerRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("stream line %d not a ledger record: %v", i, err)
		}
		if rec.Schema != obs.LedgerSchema || rec.RunID != st.RunID || rec.Outcome != "ok" || len(rec.Rows) == 0 {
			t.Errorf("stream line %d: schema=%q run_id=%q outcome=%q rows=%d", i, rec.Schema, rec.RunID, rec.Outcome, len(rec.Rows))
		}
	}
	if _, ok, err := stm.next(context.Background(), 2); ok || err != nil {
		t.Errorf("stream should EOF after 2 lines (ok=%v err=%v)", ok, err)
	}
}

// TestAdmissionQuotasAndFairness: per-tenant queue overflow and global
// queue overflow shed with structured 429s without perturbing admitted
// jobs, and freed capacity goes to the other tenant before the
// flooding tenant's backlog (round-robin fairness).
func TestAdmissionQuotasAndFairness(t *testing.T) {
	proceed := make(chan struct{})
	s := startService(t, Config{
		Program: "experiments", Tasks: testRegistry(proceed),
		Limits: Limits{Jobs: 1, Queue: 2, TenantRunning: 1, TenantQueue: 1},
	})
	submit := func(tenant string) (JobStatus, error) {
		return s.Submit(Spec{Schema: SpecSchema, Tenant: tenant, Tasks: []string{"slow"}})
	}
	a1, err := submit("alice")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, a1.ID, StateRunning)
	a2, err := submit("alice") // queued: alice is at her running cap
	if err != nil {
		t.Fatal(err)
	}
	_, err = submit("alice") // alice's queue (cap 1) is full
	var se *SubmitError
	if !errors.As(err, &se) || se.Code != 429 || se.Scope != "tenant-queue" || se.RetryAfter <= 0 {
		t.Fatalf("third alice submit: got %v, want 429 tenant-queue with Retry-After", err)
	}
	b1, err := submit("bob") // queued: global queue has room
	if err != nil {
		t.Fatal(err)
	}
	_, err = submit("carol") // global queue (cap 2) is full
	if !errors.As(err, &se) || se.Code != 429 || se.Scope != "global-queue" {
		t.Fatalf("carol submit: got %v, want 429 global-queue", err)
	}

	// Shedding must not have perturbed the admitted jobs.
	if st, _ := s.Get(a1.ID); st.State != StateRunning {
		t.Errorf("a1 state %q after sheds, want running", st.State)
	}
	if st, _ := s.Get(a2.ID); st.State != StateQueued {
		t.Errorf("a2 state %q after sheds, want queued", st.State)
	}
	status := s.Status()
	if status.Shed != 2 {
		t.Errorf("status.Shed = %d, want 2", status.Shed)
	}

	// Fairness: when a1's slot frees, bob's first job must start before
	// alice's backlog even though alice queued first.
	proceed <- struct{}{}
	waitState(t, s, b1.ID, StateRunning)
	if st, _ := s.Get(a2.ID); st.State != StateQueued {
		t.Errorf("a2 state %q while bob runs, want queued", st.State)
	}
	proceed <- struct{}{} // finish bob
	waitState(t, s, a2.ID, StateRunning)
	proceed <- struct{}{} // finish alice's second job
	waitState(t, s, a2.ID, StateDone)
	if st, _ := s.Get(b1.ID); st.State != StateDone {
		t.Errorf("b1 state %q, want done", st.State)
	}
}

// TestCancel: canceling a queued job settles it without running;
// canceling a running job cancels its context and settles it canceled;
// canceling a settled job is a no-op; unknown IDs are ErrNotFound.
func TestCancel(t *testing.T) {
	proceed := make(chan struct{})
	s := startService(t, Config{
		Program: "experiments", Tasks: testRegistry(proceed),
		Limits: Limits{Jobs: 1, TenantRunning: 1},
	})
	r1, err := s.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, r1.ID, StateRunning)
	q1, err := s.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Cancel(q1.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: state %q err %v, want canceled", st.State, err)
	}
	if st, err = s.Cancel(r1.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, r1.ID, StateCanceled)
	if final.Reason == "" {
		t.Error("canceled running job carries no reason")
	}
	// Canceling again is a no-op on the settled state.
	if st, err = s.Cancel(r1.ID); err != nil || st.State != StateCanceled {
		t.Errorf("re-cancel: state %q err %v", st.State, err)
	}
	if _, err := s.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown job: %v, want ErrNotFound", err)
	}
	// The canceled running job's stream is closed (EOF for followers).
	stm, _ := s.subscribe(r1.ID)
	if _, ok, err := stm.next(context.Background(), 1000); ok || err != nil {
		t.Errorf("canceled job's stream should EOF, got ok=%v err=%v", ok, err)
	}
}

// TestDeadlineFailsJob: a job past its deadline_ms settles failed with
// an explicit deadline reason, not canceled and not hung.
func TestDeadlineFailsJob(t *testing.T) {
	proceed := make(chan struct{})
	s := startService(t, Config{Program: "experiments", Tasks: testRegistry(proceed)})
	st, err := s.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"slow"}, DeadlineMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateFailed)
	if !strings.Contains(final.Reason, "deadline") {
		t.Errorf("deadline failure reason %q", final.Reason)
	}
}

// TestJournalRecovery: a restarted service re-enqueues journaled queued
// jobs (which then run to completion) and settles was-running jobs as
// failed with an explicit reason; settled jobs keep their state.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "svc.journal")
	proceed := make(chan struct{})
	s1 := New()
	if err := s1.Start(Config{
		Program: "experiments", Tasks: testRegistry(proceed), JournalPath: journal,
		ArchiveDir: dir, Limits: Limits{Jobs: 1, TenantRunning: 1},
	}); err != nil {
		t.Fatal(err)
	}
	done1, err := s1.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, done1.ID, StateDone)
	running, err := s1.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, running.ID, StateRunning)
	queued, err := s1.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"beta"}})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash: no drain, no settle — a second service replays
	// the same journal while the first still has an executor blocked.
	s2 := startService(t, Config{
		Program: "experiments", Tasks: testRegistry(proceed), JournalPath: journal,
		ArchiveDir: t.TempDir(),
	})
	if st, err := s2.Get(done1.ID); err != nil || st.State != StateDone {
		t.Errorf("settled job after restart: state %q err %v, want done", st.State, err)
	}
	st, err := s2.Get(running.ID)
	if err != nil || st.State != StateFailed {
		t.Fatalf("was-running job after restart: state %q err %v, want failed", st.State, err)
	}
	if !strings.Contains(st.Reason, "restarted") {
		t.Errorf("was-running job reason %q", st.Reason)
	}
	// The queued job re-enqueues and completes; its ID survives.
	waitState(t, s2, queued.ID, StateDone)
	// New submissions don't collide with recovered IDs.
	fresh, err := s2.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == done1.ID || fresh.ID == running.ID || fresh.ID == queued.ID {
		t.Errorf("fresh job reused an ID: %s", fresh.ID)
	}

	// Tear down the crashed service's blocked executor.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s1.Drain(ctx)
	s1.Close()
}

// TestJournalToleratesTornTail: a torn final line (crash mid-append) is
// dropped on replay; the journaled jobs before it survive.
func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "svc.journal")
	s1 := New()
	if err := s1.Start(Config{Program: "experiments", Tasks: testRegistry(nil), JournalPath: journal}); err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, st.ID, StateDone)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s1.Drain(ctx)
	s1.Close()

	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"torn`) // no newline, no CRC
	f.Close()

	s2 := startService(t, Config{Program: "experiments", Tasks: testRegistry(nil), JournalPath: journal})
	if got, err := s2.Get(st.ID); err != nil || got.State != StateDone {
		t.Errorf("after torn tail: state %q err %v, want done", got.State, err)
	}
}

// TestChaoticTenantKilledMidStreamLeavesOthersByteIdentical is the
// isolation end-to-end: a tenant running a pathological spec — heavy
// chaos, retries, a gated task — is killed mid-stream while another
// tenant's job runs concurrently on the same pool, and the surviving
// tenant's archive is still byte-identical to a direct run of its
// spec. One tenant's chaos must never leak into another's bytes.
func TestChaoticTenantKilledMidStreamLeavesOthersByteIdentical(t *testing.T) {
	dir := t.TempDir()
	proceed := make(chan struct{})
	reg := testRegistry(proceed)
	// The cmd/experiments Isolate wiring: per-job overrides from the
	// job's own spec, installed on the job context only.
	isolate := func(ctx context.Context, sp Spec) context.Context {
		ov := &experiments.Overrides{Retry: sp.Flags().RetryConfig()}
		if p, err := sp.Flags().ChaosPlan(sp.Seed()); err == nil && p != nil && p.HasEpisodeFaults() {
			ov.Chaos = p
		}
		return experiments.WithOverrides(ctx, ov)
	}
	s := startService(t, Config{
		Program: "experiments", Tasks: reg, ArchiveDir: dir,
		Pool:    engine.NewPool(4),
		Isolate: isolate,
		Limits:  Limits{Jobs: 2, TenantRunning: 1},
	})

	mallorySpec := Spec{
		Schema: SpecSchema, Tenant: "mallory",
		Tasks: []string{"slow", "alpha"}, Chaos: "heavy", Retry: 3, BaseSeed: 13,
	}
	mallory, err := s.Submit(mallorySpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, mallory.ID, StateRunning)

	aliceSpec := Spec{Schema: SpecSchema, Tenant: "alice", Quick: true, BaseSeed: 9, Tasks: []string{"alpha", "beta"}}
	alice, err := s.Submit(aliceSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Kill mallory's job mid-stream: its "slow" task is blocked, its
	// stream has no settle yet. Alice's job must be unaffected.
	if _, err := s.Cancel(mallory.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, mallory.ID, StateCanceled)
	if st := waitState(t, s, alice.ID, StateDone); st.RunID == "" {
		t.Fatal("alice's job lost its run ID")
	}

	// Mallory left no archive (the job never completed)…
	if _, err := os.Stat(filepath.Join(dir, "mallory")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("canceled job archived anyway: %v", err)
	}
	// …and alice's bytes are exactly what a direct run produces.
	ref := directArchive(t, t.TempDir(), aliceSpec, reg[:2], []string{"alpha", "beta"})
	assertRunDirsIdentical(t, tenantRunDir(t, dir, "alice"), ref)
}

// TestHTTPAPI exercises the wire surface end to end: submit (201 and
// structured 429/400), list, get, NDJSON stream to EOF, cancel, 404.
func TestHTTPAPI(t *testing.T) {
	proceed := make(chan struct{})
	s := startService(t, Config{
		Program: "experiments", Tasks: testRegistry(proceed),
		Limits: Limits{Jobs: 1, Queue: 1, TenantRunning: 1, TenantQueue: 1},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post(`{"schema":"branchscope.job/v1","tenant":"alice","tasks":["alpha","beta"],"quick":true}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" || st.RunID == "" {
		t.Fatalf("submit returned %+v", st)
	}

	// Malformed and invalid specs are 400s.
	if resp := post(`{"schema":"wrong/v1","tenant":"alice"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad schema: status %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := post(`{"schema":"branchscope.job/v1","tenant":"alice","tasks":["nope"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown task: status %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Streaming follows the job to EOF and yields valid NDJSON.
	streamResp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		var rec obs.LedgerRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line %d: %v", lines, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 2 {
		t.Errorf("streamed %d lines, want 2", lines)
	}
	waitState(t, s, st.ID, StateDone)

	// Quota overflow over the wire: fill alice's queue, then shed with
	// a structured 429 carrying Retry-After header and scope body.
	submitSlow := `{"schema":"branchscope.job/v1","tenant":"alice","tasks":["slow"]}`
	r1 := post(submitSlow) // runs
	r1.Body.Close()
	r2 := post(submitSlow) // queues
	r2.Body.Close()
	shed := post(submitSlow)
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", shed.StatusCode)
	}
	if ra := shed.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	var doc struct {
		Error string `json:"error"`
		Scope string `json:"scope"`
	}
	if err := json.NewDecoder(shed.Body).Decode(&doc); err != nil || doc.Scope != "tenant-queue" {
		t.Errorf("429 body scope %q err %v, want tenant-queue", doc.Scope, err)
	}
	shed.Body.Close()

	// List filters by tenant; get and cancel round-trip; 404s are 404s.
	listResp, err := http.Get(srv.URL + "/jobs?tenant=alice")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Schema string      `json:"schema"`
		Jobs   []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if listing.Schema != JobsSchema || len(listing.Jobs) != 3 {
		t.Errorf("listing: schema %q, %d jobs, want %s with 3", listing.Schema, len(listing.Jobs), JobsSchema)
	}
	if resp, err := http.Get(srv.URL + "/jobs/job-999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job GET: %v status %d, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	cancelResp, err := http.Post(srv.URL+"/jobs/"+listing.Jobs[2].ID+"/cancel", "application/json", nil)
	if err != nil || cancelResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v status %d", err, cancelResp.StatusCode)
	}
	cancelResp.Body.Close()

	// Drain the still-running slow jobs so cleanup is prompt.
	proceed <- struct{}{}
}

// TestHandlerBeforeStart: the handler is mountable before Start and
// answers 503 until the service is wired.
func TestHandlerBeforeStart(t *testing.T) {
	s := New()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unstarted service: status %d, want 503", resp.StatusCode)
	}
}

// TestSubmitWhileDraining: a draining service sheds submissions with
// 503 + Retry-After and still lets the running work settle.
func TestSubmitWhileDraining(t *testing.T) {
	proceed := make(chan struct{})
	s := startService(t, Config{Program: "experiments", Tasks: testRegistry(proceed)})
	st, err := s.Submit(Spec{Schema: SpecSchema, Tenant: "alice", Tasks: []string{"slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s.Drain(context.Background())
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("service never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = s.Submit(Spec{Schema: SpecSchema, Tenant: "bob", Tasks: []string{"alpha"}})
	var se *SubmitError
	if !errors.As(err, &se) || se.Code != 503 || se.RetryAfter <= 0 || !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want 503 + Retry-After wrapping ErrDraining", err)
	}
	proceed <- struct{}{}
	<-drained
	if got, _ := s.Get(st.ID); got.State != StateDone {
		t.Errorf("running job after graceful drain: state %q, want done", got.State)
	}
	if !s.Ready() || s.Status().Draining {
		// Ready must be false while draining; Status must say so.
	} else {
		t.Error("draining service still reports ready")
	}
}
