package bpu

import "branchscope/internal/pht"

// heatSets returns the mispredict-heatmap resolution for a PHT of the
// given size: one set per entry for small tables, at most 64 coarse
// sets for realistic ones (16384 entries → 256 entries per set). The
// bound keeps introspection snapshots a constant, scrape-friendly
// size regardless of the configured table.
func heatSets(phtSize int) int {
	if phtSize < 64 {
		return phtSize
	}
	return 64
}

// Introspection is a canonical-JSON snapshot of the predictor's
// internal state and lifetime diagnostics: the configuration facets
// that shape behaviour, the full per-entry PHT counter state, and the
// per-set mispredict heatmap. It is a self-contained deep copy.
type Introspection struct {
	Mode       string `json:"mode"`
	Mitigation string `json:"mitigation"`
	PHTSize    int    `json:"pht_size"`
	GHR        uint64 `json:"ghr"`
	// Commits and Mispredicts count committed (non-static) branches
	// and direction mispredictions over the unit's lifetime (reset by
	// Reset, not by Snapshot/Restore replays).
	Commits     uint64 `json:"commits"`
	Mispredicts uint64 `json:"mispredicts"`
	// PHT is the per-entry 2-bit counter state.
	PHT pht.Introspection `json:"pht"`
	// Heatmap counts mispredictions per contiguous PHT set (the
	// entry range [i*PHTSize/len, (i+1)*PHTSize/len) maps to set i).
	Heatmap []uint64 `json:"mispredict_heatmap"`
}

// Introspect captures the unit's current state for the /introspect/pht
// endpoint and -introspect-out exports.
func (u *Unit) Introspect() Introspection {
	return Introspection{
		Mode:        u.cfg.Mode.String(),
		Mitigation:  u.cfg.Mitigation.String(),
		PHTSize:     u.cfg.PHTSize,
		GHR:         u.ghr,
		Commits:     u.commits,
		Mispredicts: u.mispredicts,
		PHT:         u.pht.Introspect(),
		Heatmap:     append([]uint64(nil), u.heat...),
	}
}
