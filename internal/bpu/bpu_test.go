package bpu

import (
	"strings"
	"testing"

	"branchscope/internal/fsm"
)

func testConfig() Config {
	return Config{
		FSM:          fsm.Textbook2Bit(),
		PHTSize:      1024,
		SelectorSize: 512,
		GHRBits:      10,
		TagEntries:   256,
		BTBEntries:   256,
		Mode:         Hybrid,
		SelectorInit: 0,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		substr string
	}{
		{"missing-fsm", func(c *Config) { c.FSM = nil }, "FSM"},
		{"bad-pht", func(c *Config) { c.PHTSize = 0 }, "positive"},
		{"bad-selector", func(c *Config) { c.SelectorSize = -1 }, "positive"},
		{"bad-tag", func(c *Config) { c.TagEntries = 0 }, "positive"},
		{"bad-btb", func(c *Config) { c.BTBEntries = 0 }, "positive"},
		{"bad-ghr-low", func(c *Config) { c.GHRBits = 0 }, "GHRBits"},
		{"bad-ghr-high", func(c *Config) { c.GHRBits = 65 }, "GHRBits"},
		{"bad-selinit", func(c *Config) { c.SelectorInit = 16 }, "SelectorInit"},
		{"bad-domains", func(c *Config) { c.Mitigation = MitigationPartitioned; c.Domains = 1 }, "Domains"},
		{"bad-stochastic", func(c *Config) { c.Mitigation = MitigationStochasticFSM; c.StochasticP = 0 }, "StochasticP"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := testConfig()
			c.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted broken config")
			}
			if !strings.Contains(err.Error(), c.substr) {
				t.Errorf("error %q does not mention %q", err, c.substr)
			}
		})
	}
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Config{})
}

func TestNewBranchUsesOneLevel(t *testing.T) {
	cfg := testConfig()
	cfg.SelectorInit = 15 // selector strongly prefers gshare
	u := New(cfg)
	l := u.Predict(0, 0x1000)
	if l.UsedGshare {
		t.Error("branch with no tag used the 2-level predictor")
	}
	u.Commit(l, true, 0x2000)
	if !u.TagLive(0, 0x1000) {
		t.Error("tag not allocated after commit")
	}
	// Now the tag is live and the selector prefers gshare.
	l = u.Predict(0, 0x1000)
	if !l.UsedGshare {
		t.Error("tagged branch with gshare-leaning selector did not use gshare")
	}
}

func TestTagEvictionForcesOneLevel(t *testing.T) {
	cfg := testConfig()
	cfg.SelectorInit = 15
	u := New(cfg)
	addr := uint64(0x1000)
	l := u.Predict(0, addr)
	u.Commit(l, true, 0)
	// An aliasing branch (same tag slot, different address) evicts it.
	alias := addr + uint64(cfg.TagEntries)
	l = u.Predict(0, alias)
	u.Commit(l, false, 0)
	if u.TagLive(0, addr) {
		t.Fatal("tag survived aliasing branch")
	}
	if l := u.Predict(0, addr); l.UsedGshare {
		t.Error("evicted branch still predicted by gshare")
	}
}

func TestBimodalLearnsDirection(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = BimodalOnly
	u := New(cfg)
	addr := uint64(0x42)
	for i := 0; i < 3; i++ {
		l := u.Predict(0, addr)
		u.Commit(l, true, 0)
	}
	if !u.Predict(0, addr).Taken {
		t.Error("bimodal did not learn taken after three taken outcomes")
	}
	for i := 0; i < 4; i++ {
		l := u.Predict(0, addr)
		u.Commit(l, false, 0)
	}
	if u.Predict(0, addr).Taken {
		t.Error("bimodal did not learn not-taken")
	}
}

// TestHybridLearnsIrregularPattern is the §5.1 selection-logic experiment
// in miniature: an irregular 10-bit pattern is unpredictable for the
// 1-level component but learnable by gshare; after a handful of pattern
// iterations the hybrid should predict it almost perfectly.
func TestHybridLearnsIrregularPattern(t *testing.T) {
	u := New(testConfig())
	pattern := []bool{true, false, false, true, true, true, false, true, false, false}
	addr := uint64(0x5000)
	missesPerIter := make([]int, 20)
	for iter := 0; iter < 20; iter++ {
		for _, taken := range pattern {
			l := u.Predict(0, addr)
			if l.Taken != taken {
				missesPerIter[iter]++
			}
			u.Commit(l, taken, 0)
		}
	}
	early := missesPerIter[0]
	if early < 2 {
		t.Errorf("first iteration missed only %d/10; expected near-random", early)
	}
	for iter := 12; iter < 20; iter++ {
		if missesPerIter[iter] > 1 {
			t.Errorf("iteration %d still misses %d/10 after training", iter, missesPerIter[iter])
		}
	}
}

func TestStaticOnlyNeverLearns(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = StaticOnly
	u := New(cfg)
	addr := uint64(0x77)
	for i := 0; i < 10; i++ {
		l := u.Predict(0, addr)
		if l.Taken {
			t.Fatal("static predictor predicted taken")
		}
		if !l.Static {
			t.Fatal("static mode lookup not marked Static")
		}
		u.Commit(l, true, 0x1234)
	}
	if u.TagLive(0, addr) {
		t.Error("static mode allocated a tag")
	}
	if hit, _ := u.btbLookup(addr); hit {
		t.Error("static mode updated the BTB")
	}
}

func TestBTBSemantics(t *testing.T) {
	u := New(testConfig())
	addr, target := uint64(0x9000), uint64(0xa000)
	l := u.Predict(0, addr)
	if l.BTBHit {
		t.Fatal("BTB hit before any execution")
	}
	// A not-taken branch must not install a BTB entry.
	u.Commit(l, false, target)
	if l := u.Predict(0, addr); l.BTBHit {
		t.Error("not-taken branch installed BTB entry")
	}
	// A taken branch installs it.
	l = u.Predict(0, addr)
	u.Commit(l, true, target)
	l = u.Predict(0, addr)
	if !l.BTBHit || l.Target != target {
		t.Errorf("BTBHit=%v Target=%#x after taken commit", l.BTBHit, l.Target)
	}
	// An aliasing taken branch evicts it.
	alias := addr + uint64(u.cfg.BTBEntries)
	l = u.Predict(0, alias)
	u.Commit(l, true, 0xbeef)
	if l := u.Predict(0, addr); l.BTBHit {
		t.Error("BTB entry survived aliasing taken branch")
	}
}

func TestGHRShifts(t *testing.T) {
	u := New(testConfig())
	for _, taken := range []bool{true, false, true, true} {
		l := u.Predict(0, 0x10)
		u.Commit(l, taken, 0)
	}
	if got := u.GHR(); got != 0b1011 {
		t.Errorf("GHR = %#b, want 0b1011", got)
	}
}

func TestGHRMasked(t *testing.T) {
	cfg := testConfig()
	cfg.GHRBits = 3
	u := New(cfg)
	for i := 0; i < 10; i++ {
		l := u.Predict(0, 0x10)
		u.Commit(l, true, 0)
	}
	if got := u.GHR(); got != 0b111 {
		t.Errorf("GHR = %#b, want 0b111 (3-bit mask)", got)
	}
}

func TestReset(t *testing.T) {
	u := New(testConfig())
	l := u.Predict(0, 0x10)
	u.Commit(l, true, 0x20)
	u.Reset()
	if u.GHR() != 0 || u.TagLive(0, 0x10) {
		t.Error("Reset left state behind")
	}
	if hit, _ := u.btbLookup(0x10); hit {
		t.Error("Reset left BTB entry")
	}
}

func TestRandomizedIndexBreaksCrossDomainCollision(t *testing.T) {
	cfg := testConfig()
	cfg.Mitigation = MitigationRandomizedIndex
	cfg.IndexKey = 0xfeedface
	u := New(cfg)
	addr := uint64(0x4000)
	// Same address, different domains: indices should differ for almost
	// any address; verify over several addresses that at least most
	// differ (hash collisions are possible but rare).
	same := 0
	for i := 0; i < 64; i++ {
		a := addr + uint64(i)*7
		if u.bimodalIndex(1, a) == u.bimodalIndex(2, a) {
			same++
		}
	}
	if same > 8 {
		t.Errorf("randomized index: %d/64 cross-domain collisions", same)
	}
}

func TestPartitionedDomainsDisjoint(t *testing.T) {
	cfg := testConfig()
	cfg.Mitigation = MitigationPartitioned
	cfg.Domains = 2
	u := New(cfg)
	for i := 0; i < 256; i++ {
		a := uint64(i) * 13
		i0 := u.bimodalIndex(0, a)
		i1 := u.bimodalIndex(1, a)
		if i0 >= cfg.PHTSize/2 {
			t.Fatalf("domain 0 index %d in domain 1 partition", i0)
		}
		if i1 < cfg.PHTSize/2 {
			t.Fatalf("domain 1 index %d in domain 0 partition", i1)
		}
	}
}

func TestSensitiveRangeStatic(t *testing.T) {
	cfg := testConfig()
	cfg.Mitigation = MitigationNoPredictSensitive
	u := New(cfg)
	u.MarkSensitive(0x1000, 0x2000)
	l := u.Predict(0, 0x1800)
	if !l.Static {
		t.Fatal("sensitive branch not statically predicted")
	}
	u.Commit(l, true, 0x9999)
	if u.TagLive(0, 0x1800) {
		t.Error("sensitive branch allocated a tag")
	}
	// Outside the range prediction is dynamic.
	if l := u.Predict(0, 0x3000); l.Static {
		t.Error("non-sensitive branch statically predicted")
	}
}

func TestSnapshotRestore(t *testing.T) {
	u := New(testConfig())
	for i := 0; i < 50; i++ {
		l := u.Predict(0, uint64(i*3))
		u.Commit(l, i%3 == 0, uint64(i))
	}
	snap := u.Snapshot()
	ghr := u.GHR()
	for i := 0; i < 50; i++ {
		l := u.Predict(0, uint64(i*5))
		u.Commit(l, i%2 == 0, 0)
	}
	u.Restore(snap)
	if u.GHR() != ghr {
		t.Error("GHR not restored")
	}
	// Behavioural check: predictions after restore match predictions
	// taken right after the snapshot point.
	u2 := New(testConfig())
	for i := 0; i < 50; i++ {
		l := u2.Predict(0, uint64(i*3))
		u2.Commit(l, i%3 == 0, uint64(i))
	}
	for i := 0; i < 20; i++ {
		a := uint64(i * 7)
		if u.Predict(0, a).Taken != u2.Predict(0, a).Taken {
			t.Fatalf("restored unit diverges at addr %#x", a)
		}
	}
}

func TestModeMitigationStrings(t *testing.T) {
	for _, m := range []Mode{Hybrid, BimodalOnly, GshareOnly, StaticOnly, Mode(9)} {
		if m.String() == "" {
			t.Error("empty Mode string")
		}
	}
	for _, m := range []Mitigation{MitigationNone, MitigationRandomizedIndex,
		MitigationPartitioned, MitigationNoPredictSensitive, MitigationStochasticFSM, Mitigation(9)} {
		if m.String() == "" {
			t.Error("empty Mitigation string")
		}
	}
}

func TestCommitReportsAllocation(t *testing.T) {
	u := New(testConfig())
	addr := uint64(0x3000)
	l := u.Predict(0, addr)
	if !u.Commit(l, true, 0) {
		t.Error("first commit did not report a tag allocation")
	}
	l = u.Predict(0, addr)
	if u.Commit(l, true, 0) {
		t.Error("repeat commit reported an allocation")
	}
	// Evict and return: allocation again.
	alias := addr + uint64(u.cfg.TagEntries)
	l = u.Predict(0, alias)
	u.Commit(l, false, 0)
	l = u.Predict(0, addr)
	if !u.Commit(l, true, 0) {
		t.Error("post-eviction commit did not report an allocation")
	}
}

func TestStaticCommitReportsNoAllocation(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = StaticOnly
	u := New(cfg)
	l := u.Predict(0, 0x40)
	if u.Commit(l, true, 0) {
		t.Error("static commit reported an allocation")
	}
}

func TestFlushBTB(t *testing.T) {
	u := New(testConfig())
	l := u.Predict(0, 0x50)
	u.Commit(l, true, 0x60)
	if hit, _ := u.btbLookup(0x50); !hit {
		t.Fatal("BTB entry not installed")
	}
	u.FlushBTB()
	if hit, _ := u.btbLookup(0x50); hit {
		t.Error("BTB entry survived flush")
	}
	// Direction prediction is unaffected by the flush.
	if !u.Predict(0, 0x50).Taken {
		t.Error("direction state was clobbered by a BTB flush")
	}
}
