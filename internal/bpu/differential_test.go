package bpu

import (
	"fmt"
	"reflect"
	"testing"

	"branchscope/internal/fsm"
	"branchscope/internal/rng"
)

// referenceSnapshot captures the reference unit's architectural state in
// the same shape as Unit.Snapshot so the two can be compared directly.
func (u *ReferenceUnit) snapshot() *Snapshot {
	return &Snapshot{
		pht:      append([]uint8(nil), u.entries...),
		selector: append([]uint8(nil), u.selector...),
		ghr:      u.ghr,
		tags:     append([]tagEntry(nil), u.tags...),
		btb:      append([]btbEntry(nil), u.btb...),
	}
}

// diffConfigs enumerates the matrix the differential satellite requires:
// every FSM spec the models use (the textbook counter of Sandy Bridge
// and Haswell, the asymmetric Skylake counter, plus a wider generic
// shape) under every mode and every §10.2 mitigation. Table sizes are
// kept small so collisions and partition effects are exercised heavily;
// one full-size Skylake-shaped config guards the realistic geometry.
func diffConfigs() []Config {
	specs := []*fsm.Spec{
		fsm.Textbook2Bit(), // Sandy Bridge / Haswell
		fsm.SkylakeAsym(),  // Skylake
		fsm.Saturating("wide-3-3", 3, 3, 2),
	}
	var cfgs []Config
	for _, spec := range specs {
		for _, mode := range []Mode{Hybrid, BimodalOnly, GshareOnly, StaticOnly} {
			for _, mit := range []Mitigation{
				MitigationNone,
				MitigationRandomizedIndex,
				MitigationPartitioned,
				MitigationNoPredictSensitive,
				MitigationStochasticFSM,
			} {
				cfg := Config{
					FSM:          spec,
					PHTSize:      64,
					SelectorSize: 16,
					GHRBits:      8,
					TagEntries:   24, // deliberately not a power of two
					BTBEntries:   32,
					Mode:         mode,
					SelectorInit: 3,
					Mitigation:   mit,
				}
				switch mit {
				case MitigationRandomizedIndex:
					cfg.IndexKey = 0xfeed_f00d_dead_beef
				case MitigationPartitioned:
					cfg.Domains = 3 // odd partition span: exercises the modulo fallback
				case MitigationStochasticFSM:
					cfg.StochasticP = 0.5
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	// Realistic Skylake geometry (matches uarch.Skylake).
	cfgs = append(cfgs, Config{
		FSM:          fsm.SkylakeAsym(),
		PHTSize:      16384,
		SelectorSize: 4096,
		GHRBits:      16,
		TagEntries:   2048,
		BTBEntries:   4096,
		Mode:         Hybrid,
		SelectorInit: 3,
	})
	return cfgs
}

// TestDifferentialReferenceVsFast steps the retained pre-refactor
// predictor and the flat-plane/resolved-site fast path over identical
// randomized branch streams and asserts prediction-for-prediction and
// state-for-state equivalence at every step.
func TestDifferentialReferenceVsFast(t *testing.T) {
	for _, cfg := range diffConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%s/%s/%s/pht%d",
			cfg.FSM.Name, cfg.Mode, cfg.Mitigation, cfg.PHTSize)
		t.Run(name, func(t *testing.T) {
			fast := New(cfg)
			ref := NewReference(cfg)
			if cfg.Mitigation == MitigationNoPredictSensitive {
				fast.MarkSensitive(0x2000, 0x2800)
				ref.MarkSensitive(0x2000, 0x2800)
			}
			r := rng.New(0xd1ff + uint64(len(cfg.FSM.Name)))
			// A handful of recurring sites (so tags/selector train) mixed
			// with fresh addresses (so allocation churn is exercised),
			// spread across the sensitive range and three domains.
			hot := make([]uint64, 12)
			for i := range hot {
				hot[i] = 0x1000 + uint64(i)*0x151
			}
			hot[3], hot[7] = 0x2100, 0x2404 // inside the sensitive range
			for step := 0; step < 6000; step++ {
				domain := r.Uint64n(3)
				addr := hot[r.Uint64n(uint64(len(hot)))]
				if r.Chance(0.25) {
					addr = 0x4000 + r.Uint64n(1<<20)
				}
				taken := r.Chance(0.6)
				target := addr + 16 + r.Uint64n(256)

				lf := fast.Predict(domain, addr)
				lr := ref.Predict(domain, addr)
				if lf.Taken != lr.Taken || lf.BTBHit != lr.BTBHit ||
					lf.Target != lr.Target || lf.UsedGshare != lr.UsedGshare ||
					lf.Static != lr.Static {
					t.Fatalf("step %d: lookup diverged for addr %#x domain %d:\nfast %+v\nref  %+v",
						step, addr, domain, lf, lr)
				}
				af := fast.Commit(lf, taken, target)
				ar := ref.Commit(lr, taken, target)
				if af != ar {
					t.Fatalf("step %d: allocation diverged: fast %v ref %v", step, af, ar)
				}
			}
			sf, sr := fast.Snapshot(), ref.snapshot()
			if !reflect.DeepEqual(sf, sr) {
				t.Fatalf("architectural state diverged after stream:\nghr fast %#x ref %#x\npht equal: %v\nselector equal: %v",
					sf.ghr, sr.ghr,
					reflect.DeepEqual(sf.pht, sr.pht),
					reflect.DeepEqual(sf.selector, sr.selector))
			}
		})
	}
}

// TestDifferentialSiteReuse pins the resolved-site path specifically: a
// Site cached across thousands of executions (the ExecPlan situation)
// must behave exactly like per-call Predict, including across a
// MarkSensitive layout change that invalidates it mid-stream.
func TestDifferentialSiteReuse(t *testing.T) {
	cfg := Config{
		FSM:          fsm.SkylakeAsym(),
		PHTSize:      256,
		SelectorSize: 64,
		GHRBits:      10,
		TagEntries:   64,
		BTBEntries:   64,
		Mode:         Hybrid,
		SelectorInit: 3,
		Mitigation:   MitigationNoPredictSensitive,
	}
	cached := New(cfg)
	fresh := New(cfg)
	addr := uint64(0x9000)
	site := cached.Resolve(1, addr)
	r := rng.New(42)
	for step := 0; step < 4000; step++ {
		if step == 2000 {
			// Invalidate the cached layout mid-stream.
			cached.MarkSensitive(addr, addr+4)
			fresh.MarkSensitive(addr, addr+4)
		}
		taken := r.Chance(0.5)
		lc := cached.PredictSite(&site)
		lfr := fresh.Predict(1, addr)
		if lc != lfr {
			t.Fatalf("step %d: cached site diverged from fresh predict:\ncached %+v\nfresh  %+v", step, lc, lfr)
		}
		cached.Commit(lc, taken, addr+32)
		fresh.Commit(lfr, taken, addr+32)
	}
	if !reflect.DeepEqual(cached.Snapshot(), fresh.Snapshot()) {
		t.Fatal("architectural state diverged between cached-site and fresh-predict units")
	}
}
