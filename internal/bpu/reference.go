package bpu

import (
	"branchscope/internal/fsm"
	"branchscope/internal/rng"
)

// ReferenceUnit is the pre-refactor predictor, retained verbatim as the
// differential-testing oracle and the in-PR performance baseline for
// BENCH_hotpath.json. It executes the exact code shape the hot path had
// before the flat-plane/resolved-site overhaul:
//
//   - FSM steps walk the declarative spec tables (fsm.ReferenceNext /
//     ReferencePredict) instead of the compiled transition plane;
//   - every PHT update re-checks the stochastic-mitigation probability
//     with a float compare and an rng nil check;
//   - every Predict recomputes the bimodal, gshare, selector, tag and
//     BTB indexes with 64-bit modulo reductions — nothing is resolved
//     per site or masked.
//
// Its observable behaviour (predictions, state evolution, randomness
// draw order under MitigationStochasticFSM) must stay bit-identical to
// Unit; TestDifferentialReferenceVsFast pins that equivalence for every
// FSM spec, mode, and mitigation.
type ReferenceUnit struct {
	cfg      Config
	spec     *fsm.Spec
	entries  []uint8
	selector []uint8
	ghr      uint64
	ghrMask  uint64
	tags     []tagEntry
	btb      []btbEntry

	updateProb float64
	rnd        *rng.Source
}

// NewReference constructs the reference predictor from the same Config
// that New accepts, including the internally derived stochastic stream
// seed, so a same-config Unit and ReferenceUnit consume identical
// randomness.
func NewReference(cfg Config) *ReferenceUnit {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	u := &ReferenceUnit{
		cfg:        cfg,
		spec:       cfg.FSM,
		entries:    make([]uint8, cfg.PHTSize),
		selector:   make([]uint8, cfg.SelectorSize),
		ghrMask:    (uint64(1) << uint(cfg.GHRBits)) - 1,
		tags:       make([]tagEntry, cfg.TagEntries),
		btb:        make([]btbEntry, cfg.BTBEntries),
		updateProb: 1,
	}
	if cfg.Mitigation == MitigationStochasticFSM {
		u.updateProb = cfg.StochasticP
		u.rnd = rng.New(cfg.mitigationSeed + 0x5eed)
	}
	for i := range u.entries {
		u.entries[i] = u.spec.Init
	}
	for i := range u.selector {
		u.selector[i] = cfg.SelectorInit
	}
	return u
}

// MarkSensitive mirrors Unit.MarkSensitive.
func (u *ReferenceUnit) MarkSensitive(lo, hi uint64) {
	u.cfg.sensitiveRanges = append(u.cfg.sensitiveRanges, addrRange{lo, hi})
}

func (u *ReferenceUnit) sensitive(addr uint64) bool {
	if u.cfg.Mitigation != MitigationNoPredictSensitive {
		return false
	}
	for _, r := range u.cfg.sensitiveRanges {
		if addr >= r.lo && addr < r.hi {
			return true
		}
	}
	return false
}

func (u *ReferenceUnit) domainKey(domain uint64) uint64 {
	return u.cfg.IndexKey ^ (domain * 0x9e3779b97f4a7c15)
}

func (u *ReferenceUnit) phtSpan(domain uint64) (base, size int) {
	if u.cfg.Mitigation != MitigationPartitioned {
		return 0, u.cfg.PHTSize
	}
	n := u.cfg.Domains
	size = u.cfg.PHTSize / n
	if size == 0 {
		size = 1
	}
	base = int(domain%uint64(n)) * size
	return base, size
}

// The reference index functions reduce with `%` unconditionally, as the
// pre-refactor pht package did.
func refFold(addr uint64) uint64 { return addr ^ (addr >> 16) }

func refKeyedIndex(addr, key uint64, size int) int {
	x := addr ^ key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(size))
}

func (u *ReferenceUnit) bimodalIndex(domain, addr uint64) int {
	base, size := u.phtSpan(domain)
	if u.cfg.Mitigation == MitigationRandomizedIndex {
		return base + refKeyedIndex(addr, u.domainKey(domain), size)
	}
	return base + int(refFold(addr)%uint64(size))
}

func (u *ReferenceUnit) gshareIndex(domain, addr uint64) int {
	base, size := u.phtSpan(domain)
	if u.cfg.Mitigation == MitigationRandomizedIndex {
		return base + refKeyedIndex(addr^(u.ghr<<1), u.domainKey(domain), size)
	}
	return base + int((refFold(addr)^u.ghr)%uint64(size))
}

func (u *ReferenceUnit) tagIndex(domain, addr uint64) int {
	if u.cfg.Mitigation == MitigationPartitioned {
		n := uint64(u.cfg.Domains)
		per := u.cfg.TagEntries / int(n)
		if per == 0 {
			per = 1
		}
		return int(domain%n)*per + int(addr%uint64(per))
	}
	return int(addr % uint64(u.cfg.TagEntries))
}

func (u *ReferenceUnit) phtPredict(idx int32) bool {
	return u.spec.ReferencePredict(u.entries[idx])
}

func (u *ReferenceUnit) phtUpdate(idx int32, taken bool) {
	if u.updateProb < 1 && u.rnd != nil && !u.rnd.Chance(u.updateProb) {
		return
	}
	u.entries[idx] = u.spec.ReferenceNext(u.entries[idx], taken)
}

// Predict is the pre-refactor prediction path: all indexes recomputed
// eagerly with modulo reductions on every call.
func (u *ReferenceUnit) Predict(domain, addr uint64) Lookup {
	l := Lookup{
		domain:     domain,
		addr:       addr,
		bimodalIdx: int32(u.bimodalIndex(domain, addr)),
		gshareIdx:  int32(u.gshareIndex(domain, addr)),
		selIdx:     int32(addr % uint64(u.cfg.SelectorSize)),
		tagIdx:     int32(u.tagIndex(domain, addr)),
		btbIdx:     int32(addr % uint64(u.cfg.BTBEntries)),
	}
	if u.cfg.Mode == StaticOnly || u.sensitive(addr) {
		l.Static = true
		l.Taken = false
		l.BTBHit, l.Target = u.btbLookup(addr)
		return l
	}
	te := u.tags[l.tagIdx]
	l.tagHit = te.valid && te.addr == addr

	switch u.cfg.Mode {
	case BimodalOnly:
		l.Taken = u.phtPredict(l.bimodalIdx)
	case GshareOnly:
		l.Taken = u.phtPredict(l.gshareIdx)
		l.UsedGshare = true
	default: // Hybrid
		if l.tagHit && u.selector[l.selIdx] >= selectorThreshold {
			l.Taken = u.phtPredict(l.gshareIdx)
			l.UsedGshare = true
		} else {
			l.Taken = u.phtPredict(l.bimodalIdx)
		}
	}
	l.BTBHit, l.Target = u.btbLookup(addr)
	return l
}

func (u *ReferenceUnit) btbLookup(addr uint64) (bool, uint64) {
	e := u.btb[addr%uint64(u.cfg.BTBEntries)]
	if e.valid && e.addr == addr {
		return true, e.target
	}
	return false, 0
}

// Commit is the pre-refactor resolution path.
func (u *ReferenceUnit) Commit(l Lookup, taken bool, target uint64) (allocated bool) {
	if l.Static {
		return false
	}
	switch u.cfg.Mode {
	case BimodalOnly:
		u.phtUpdate(l.bimodalIdx, taken)
	case GshareOnly:
		u.phtUpdate(l.gshareIdx, taken)
	default:
		bim := u.phtPredict(l.bimodalIdx)
		gsh := u.phtPredict(l.gshareIdx)
		if bim != gsh {
			if gsh == taken {
				if u.selector[l.selIdx] < selectorMax {
					u.selector[l.selIdx]++
				}
			} else {
				if u.selector[l.selIdx] > 0 {
					u.selector[l.selIdx]--
				}
			}
		}
		u.phtUpdate(l.bimodalIdx, taken)
		if l.gshareIdx != l.bimodalIdx {
			u.phtUpdate(l.gshareIdx, taken)
		}
	}
	u.ghr = ((u.ghr << 1) | b2u(taken)) & u.ghrMask
	if !l.tagHit {
		u.selector[l.selIdx] = u.cfg.SelectorInit
	}
	u.tags[l.tagIdx] = tagEntry{valid: true, addr: l.addr}
	if taken {
		u.btb[l.addr%uint64(u.cfg.BTBEntries)] = btbEntry{valid: true, addr: l.addr, target: target}
	}
	return !l.tagHit
}

// GHR returns the reference unit's history register. Inspection hook.
func (u *ReferenceUnit) GHR() uint64 { return u.ghr }

// PHTState returns the raw FSM state of entry idx. Inspection hook.
func (u *ReferenceUnit) PHTState(idx int) uint8 { return u.entries[idx] }
