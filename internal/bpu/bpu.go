// Package bpu implements the branch prediction unit of the simulated
// cores: a hybrid (tournament) directional predictor in the style of
// McFarling's combining predictor — the organization the paper reverse
// engineers on Intel parts (§2, Figure 1) — plus the branch target buffer.
//
// The unit is composed of:
//
//   - a pattern history table (PHT) of saturating counters, shared by the
//     two component predictors, which index it differently;
//   - a 1-level (bimodal) component indexed purely by branch address;
//   - a 2-level (gshare) component indexed by address XOR global history;
//   - a selector table that learns which component predicts a given
//     branch better;
//   - a tagged "seen branch" tracker. A branch whose tag is absent (new,
//     or evicted by other branch-intensive code) is predicted by the
//     1-level component regardless of the selector — the behaviour
//     BranchScope establishes experimentally in §5.1 and then exploits to
//     force 1-level mode;
//   - a direct-mapped BTB holding targets of taken branches (§2), used
//     for the baseline BTB attack and the timing model.
//
// The unit also implements the §10.2 hardware mitigations (randomized PHT
// indexing, static partitioning, no-prediction for marked sensitive
// ranges, stochastic FSM updates) behind Config switches so the
// mitigation study can measure the attack against each.
package bpu

import (
	"fmt"

	"branchscope/internal/fsm"
	"branchscope/internal/pht"
	"branchscope/internal/rng"
)

// Mode selects which component predictors are active. Hybrid is the
// realistic configuration; the single-component modes exist for ablation
// studies and the Fig 2 analysis.
type Mode int

const (
	// Hybrid combines bimodal and gshare behind the selector.
	Hybrid Mode = iota
	// BimodalOnly always uses the 1-level predictor.
	BimodalOnly
	// GshareOnly always uses the 2-level predictor.
	GshareOnly
	// StaticOnly always predicts not-taken and never learns.
	StaticOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Hybrid:
		return "hybrid"
	case BimodalOnly:
		return "bimodal"
	case GshareOnly:
		return "gshare"
	case StaticOnly:
		return "static"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Mitigation selects one of the §10.2 hardware defenses.
type Mitigation int

const (
	// MitigationNone is the unprotected baseline.
	MitigationNone Mitigation = iota
	// MitigationRandomizedIndex hashes the branch address with a
	// per-security-domain key before indexing the PHT, so cross-domain
	// collisions are unpredictable.
	MitigationRandomizedIndex
	// MitigationPartitioned statically splits the PHT (and selector and
	// tag tracker) between security domains, removing sharing entirely.
	MitigationPartitioned
	// MitigationNoPredictSensitive disables dynamic prediction — and all
	// predictor updates — for branches inside ranges the software marked
	// sensitive; those branches use static not-taken prediction.
	MitigationNoPredictSensitive
	// MitigationStochasticFSM applies PHT counter updates only with a
	// configured probability, degrading the attacker's inference.
	MitigationStochasticFSM
)

// String implements fmt.Stringer.
func (m Mitigation) String() string {
	switch m {
	case MitigationNone:
		return "none"
	case MitigationRandomizedIndex:
		return "randomized-index"
	case MitigationPartitioned:
		return "partitioned"
	case MitigationNoPredictSensitive:
		return "no-predict-sensitive"
	case MitigationStochasticFSM:
		return "stochastic-fsm"
	}
	return fmt.Sprintf("Mitigation(%d)", int(m))
}

// Config describes a branch prediction unit. All sizes must be positive;
// see Validate.
type Config struct {
	// FSM is the per-entry counter specification.
	FSM *fsm.Spec
	// PHTSize is the number of PHT entries (16384 on the paper's
	// Skylake part, per the §6.3 reverse engineering).
	PHTSize int
	// SelectorSize is the number of selector counters.
	SelectorSize int
	// GHRBits is the length of the global history register.
	GHRBits int
	// TagEntries is the size of the seen-branch tracker.
	TagEntries int
	// BTBEntries is the size of the branch target buffer.
	BTBEntries int
	// Mode selects the active components.
	Mode Mode
	// SelectorInit is the initial selector counter value (0..15 for the
	// 4-bit selector counters; >= 8 prefers gshare). Higher values model
	// cores that migrate to the 2-level predictor sooner.
	SelectorInit uint8

	// Mitigation and its parameters.
	Mitigation      Mitigation
	IndexKey        uint64  // base key for MitigationRandomizedIndex
	Domains         int     // partition count for MitigationPartitioned
	StochasticP     float64 // update probability for MitigationStochasticFSM
	mitigationSeed  uint64
	sensitiveRanges []addrRange
}

type addrRange struct{ lo, hi uint64 }

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	if c.FSM == nil {
		return fmt.Errorf("bpu: config missing FSM spec")
	}
	if c.PHTSize <= 0 || c.SelectorSize <= 0 || c.TagEntries <= 0 || c.BTBEntries <= 0 {
		return fmt.Errorf("bpu: table sizes must be positive (pht=%d sel=%d tag=%d btb=%d)",
			c.PHTSize, c.SelectorSize, c.TagEntries, c.BTBEntries)
	}
	if c.GHRBits < 1 || c.GHRBits > 64 {
		return fmt.Errorf("bpu: GHRBits must be in [1,64], got %d", c.GHRBits)
	}
	if c.SelectorInit > selectorMax {
		return fmt.Errorf("bpu: SelectorInit must be in [0,%d], got %d", selectorMax, c.SelectorInit)
	}
	if c.Mitigation == MitigationPartitioned && c.Domains < 2 {
		return fmt.Errorf("bpu: partitioned mitigation needs Domains >= 2, got %d", c.Domains)
	}
	if c.Mitigation == MitigationStochasticFSM && (c.StochasticP <= 0 || c.StochasticP > 1) {
		return fmt.Errorf("bpu: stochastic mitigation needs StochasticP in (0,1], got %v", c.StochasticP)
	}
	return nil
}

// The selector table uses 4-bit saturating counters: values of
// selectorThreshold and above choose the 2-level (gshare) component. The
// width is an observable model choice — it sets how many net wins the
// 2-level predictor needs before the selection flips, which the paper's
// Figure 2 measures at roughly five to seven pattern iterations.
const (
	selectorMax       = 15
	selectorThreshold = 8
)

type tagEntry struct {
	valid bool
	addr  uint64
}

type btbEntry struct {
	valid  bool
	addr   uint64
	target uint64
}

// Unit is a branch prediction unit. One Unit is shared per physical core;
// it is not safe for concurrent use (the simulated core executes one
// hardware context at a time).
type Unit struct {
	cfg      Config
	pht      *pht.Table
	selector []uint8
	ghr      uint64
	ghrMask  uint64
	tags     []tagEntry
	btb      []btbEntry

	// epoch versions the index-function layout. It starts at 1 (so a
	// zero-valued Site is never considered current) and is bumped by
	// MarkSensitive, the only post-construction mutation that changes
	// how addresses resolve. Cached Sites revalidate against it.
	epoch uint32

	// Inline PHT fast path: the table's live entry array and compiled
	// transition plane (see pht.Raw), plus whether updates may bypass
	// the stochastic check. Caching them here turns the per-branch
	// predict/update into direct slice steps with no cross-package
	// calls.
	phtEntries []uint8
	phtPlane   []uint8
	phtFast    bool

	// Introspection diagnostics (not architectural state): lifetime
	// commit/mispredict counts and a coarse per-set mispredict heatmap.
	// Deliberately excluded from Snapshot/Restore — the PHT mapper's
	// memoized replays must not rewind monotonic diagnostics.
	commits     uint64
	mispredicts uint64
	heat        []uint64
}

// New constructs a Unit from cfg. It panics if cfg is invalid: a broken
// BPU configuration is a programming error in the simulator setup, not a
// runtime condition.
func New(cfg Config) *Unit {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	u := &Unit{
		cfg:      cfg,
		pht:      pht.New(cfg.FSM, cfg.PHTSize),
		selector: make([]uint8, cfg.SelectorSize),
		ghrMask:  (uint64(1) << uint(cfg.GHRBits)) - 1,
		tags:     make([]tagEntry, cfg.TagEntries),
		btb:      make([]btbEntry, cfg.BTBEntries),
		epoch:    1,
		heat:     make([]uint64, heatSets(cfg.PHTSize)),
	}
	if cfg.Mitigation == MitigationStochasticFSM {
		u.pht.SetStochastic(cfg.StochasticP, rng.New(cfg.mitigationSeed+0x5eed))
	}
	u.phtEntries, u.phtPlane = u.pht.Raw()
	u.phtFast = !u.pht.Stochastic()
	u.resetSelector()
	return u
}

// phtPredict reads entry idx's predicted direction inline.
func (u *Unit) phtPredict(idx int32) bool {
	return u.cfg.FSM.Predict(u.phtEntries[idx])
}

// phtUpdate steps entry idx inline on deterministic tables; stochastic
// tables (§10.2) keep the table's slow path and its draw order.
func (u *Unit) phtUpdate(idx int32, taken bool) {
	if !u.phtFast {
		u.pht.Update(int(idx), taken)
		return
	}
	b := uint(0)
	if taken {
		b = 1
	}
	e := u.phtEntries
	e[idx] = u.phtPlane[uint(e[idx])<<1|b]
}

// Config returns the unit's configuration.
func (u *Unit) Config() Config { return u.cfg }

// MarkSensitive registers [lo, hi) as a software-marked sensitive code
// range for MitigationNoPredictSensitive. Ranges accumulate. Marking a
// range invalidates every cached Site (epoch bump) so batched plans
// resolved before the call observe the new layout.
func (u *Unit) MarkSensitive(lo, hi uint64) {
	u.cfg.sensitiveRanges = append(u.cfg.sensitiveRanges, addrRange{lo, hi})
	u.epoch++
}

// Epoch returns the current index-layout version; see Site.
func (u *Unit) Epoch() uint32 { return u.epoch }

func (u *Unit) sensitive(addr uint64) bool {
	if u.cfg.Mitigation != MitigationNoPredictSensitive {
		return false
	}
	for _, r := range u.cfg.sensitiveRanges {
		if addr >= r.lo && addr < r.hi {
			return true
		}
	}
	return false
}

func (u *Unit) resetSelector() {
	for i := range u.selector {
		u.selector[i] = u.cfg.SelectorInit
	}
}

// Reset returns the entire unit to power-on state.
func (u *Unit) Reset() {
	u.pht.Reset()
	u.resetSelector()
	u.ghr = 0
	for i := range u.tags {
		u.tags[i] = tagEntry{}
	}
	for i := range u.btb {
		u.btb[i] = btbEntry{}
	}
	u.commits, u.mispredicts = 0, 0
	for i := range u.heat {
		u.heat[i] = 0
	}
}

// domainKey derives the effective randomized-index key for a domain.
func (u *Unit) domainKey(domain uint64) uint64 {
	return u.cfg.IndexKey ^ (domain * 0x9e3779b97f4a7c15)
}

// phtSpan returns the slice of the PHT available to a domain: the whole
// table normally, a static partition slice under MitigationPartitioned.
func (u *Unit) phtSpan(domain uint64) (base, size int) {
	if u.cfg.Mitigation != MitigationPartitioned {
		return 0, u.cfg.PHTSize
	}
	n := u.cfg.Domains
	size = u.cfg.PHTSize / n
	if size == 0 {
		size = 1
	}
	base = int(domain%uint64(n)) * size
	return base, size
}

func (u *Unit) bimodalIndex(domain, addr uint64) int {
	base, size := u.phtSpan(domain)
	if u.cfg.Mitigation == MitigationRandomizedIndex {
		return base + pht.KeyedIndex(addr, u.domainKey(domain), size)
	}
	return base + pht.BimodalIndex(addr, size)
}

func (u *Unit) gshareIndex(domain, addr uint64) int {
	base, size := u.phtSpan(domain)
	if u.cfg.Mitigation == MitigationRandomizedIndex {
		return base + pht.KeyedIndex(addr^(u.ghr<<1), u.domainKey(domain), size)
	}
	return base + pht.GshareIndex(addr, u.ghr, size)
}

func (u *Unit) tagIndex(domain, addr uint64) int {
	if u.cfg.Mitigation == MitigationPartitioned {
		n := uint64(u.cfg.Domains)
		per := u.cfg.TagEntries / int(n)
		if per == 0 {
			per = 1
		}
		return int(domain%n)*per + int(addr%uint64(per))
	}
	return int(addr % uint64(u.cfg.TagEntries))
}

// Lookup is the result of a direction+target prediction for one branch
// instance. It carries the component indices so Commit can update exactly
// the state that produced the prediction.
type Lookup struct {
	// Taken is the predicted direction.
	Taken bool
	// BTBHit reports whether the BTB held a target for this branch.
	BTBHit bool
	// Target is the predicted target when BTBHit.
	Target uint64
	// UsedGshare reports whether the 2-level component supplied the
	// direction (false means 1-level or static).
	UsedGshare bool
	// Static reports that the branch was statically predicted
	// (sensitive range or StaticOnly mode) and will not update state.
	Static bool

	tagHit bool
	// Index fields are int32: every table size fits comfortably, and
	// the narrower Lookup avoids bulk struct-copy (duffcopy) cost on
	// the per-branch path.
	bimodalIdx int32
	gshareIdx  int32
	selIdx     int32
	tagIdx     int32
	btbIdx     int32
	domain     uint64
	addr       uint64
}

// Site is the resolved indexing state of one static branch site for one
// security domain: every index that does not depend on mutable predictor
// state, computed once and reused across executions. The gshare index is
// the exception — it depends on the GHR — so the Site keeps the folded
// address (and, under the randomized-index mitigation, the domain key)
// and finishes that index per prediction.
//
// A zero Site is valid and simply resolves on first use; Sites
// revalidate against the unit's layout epoch, so holding one across
// MarkSensitive is safe.
type Site struct {
	addr   uint64
	domain uint64
	gFold  uint64 // pht.Fold(addr), XORed with the GHR at predict time
	gKey   uint64 // per-domain key when gKeyed

	bimodalIdx int32
	selIdx     int32
	tagIdx     int32
	btbIdx     int32
	gBase      int32 // partition base of the domain's PHT span
	gSize      int32 // partition size of the domain's PHT span

	epoch  uint32
	static bool
	gKeyed bool // randomized-index mitigation active
}

// Addr returns the branch address the site was resolved for.
func (s *Site) Addr() uint64 { return s.addr }

// Resolve computes the Site for a branch at addr in the given domain.
func (u *Unit) Resolve(domain, addr uint64) Site {
	var s Site
	u.ResolveInto(&s, domain, addr)
	return s
}

// ResolveInto is Resolve writing into a caller-owned Site, avoiding the
// return-value copy on hot compile paths.
func (u *Unit) ResolveInto(s *Site, domain, addr uint64) {
	base, size := u.phtSpan(domain)
	*s = Site{
		addr:       addr,
		domain:     domain,
		epoch:      u.epoch,
		static:     u.cfg.Mode == StaticOnly || u.sensitive(addr),
		bimodalIdx: int32(u.bimodalIndex(domain, addr)),
		selIdx:     int32(pht.IndexMod(addr, u.cfg.SelectorSize)),
		tagIdx:     int32(u.tagIndex(domain, addr)),
		btbIdx:     int32(pht.IndexMod(addr, u.cfg.BTBEntries)),
		gFold:      pht.Fold(addr),
		gBase:      int32(base),
		gSize:      int32(size),
	}
	if u.cfg.Mitigation == MitigationRandomizedIndex {
		s.gKeyed = true
		s.gKey = u.domainKey(domain)
	}
}

// gshareIdx finishes the 2-level index for the current GHR value.
func (s *Site) gshareIdx(ghr uint64) int32 {
	if s.gKeyed {
		return s.gBase + int32(pht.KeyedIndex(s.addr^(ghr<<1), s.gKey, int(s.gSize)))
	}
	return s.gBase + int32(pht.IndexMod(s.gFold^ghr, int(s.gSize)))
}

// Predict produces a direction and target prediction for the branch at
// addr, executed by the given security domain (hardware contexts in the
// same process share a domain; the mitigations key on it).
func (u *Unit) Predict(domain, addr uint64) Lookup {
	s := u.Resolve(domain, addr)
	return u.PredictSite(&s)
}

// PredictSite is Predict for a previously resolved Site.
func (u *Unit) PredictSite(s *Site) Lookup {
	var l Lookup
	u.PredictSiteInto(&l, s)
	return l
}

// PredictSiteInto is the per-branch hot path: Predict for a previously
// resolved Site, written into a caller-owned Lookup (no struct-copy
// traffic). It skips every index computation except the GHR-dependent
// gshare finish, revalidating (and re-resolving in place) if the unit's
// index layout changed since the Site was built.
func (u *Unit) PredictSiteInto(l *Lookup, s *Site) {
	if s.epoch != u.epoch {
		u.ResolveInto(s, s.domain, s.addr)
	}
	*l = Lookup{
		domain:     s.domain,
		addr:       s.addr,
		bimodalIdx: s.bimodalIdx,
		selIdx:     s.selIdx,
		tagIdx:     s.tagIdx,
		btbIdx:     s.btbIdx,
	}
	if s.static {
		l.Static = true
		l.BTBHit, l.Target = u.btbLookupAt(s.btbIdx, s.addr)
		return
	}
	l.gshareIdx = s.gshareIdx(u.ghr)
	te := u.tags[s.tagIdx]
	l.tagHit = te.valid && te.addr == s.addr

	switch u.cfg.Mode {
	case BimodalOnly:
		l.Taken = u.phtPredict(l.bimodalIdx)
	case GshareOnly:
		l.Taken = u.phtPredict(l.gshareIdx)
		l.UsedGshare = true
	default: // Hybrid
		// A branch without a live tag is new to the unit: the 2-level
		// predictor has no usable history for it, so the 1-level
		// prediction is used (§5.1).
		if l.tagHit && u.selector[l.selIdx] >= selectorThreshold {
			l.Taken = u.phtPredict(l.gshareIdx)
			l.UsedGshare = true
		} else {
			l.Taken = u.phtPredict(l.bimodalIdx)
		}
	}
	l.BTBHit, l.Target = u.btbLookupAt(s.btbIdx, s.addr)
}

func (u *Unit) btbLookup(addr uint64) (bool, uint64) {
	return u.btbLookupAt(int32(pht.IndexMod(addr, u.cfg.BTBEntries)), addr)
}

func (u *Unit) btbLookupAt(idx int32, addr uint64) (bool, uint64) {
	e := u.btb[idx]
	if e.valid && e.addr == addr {
		return true, e.target
	}
	return false, 0
}

// Commit resolves a previously predicted branch with its actual outcome
// and target, updating the direction predictor, history, tags and BTB.
// It reports whether the branch was newly allocated in the seen-branch
// tracker (a tag miss) — the churn signal the internal/detect hardware
// countermeasure monitors.
func (u *Unit) Commit(l Lookup, taken bool, target uint64) (allocated bool) {
	return u.CommitRef(&l, taken, target)
}

// CommitRef is Commit through a caller-owned Lookup, paired with
// PredictSiteInto on the per-branch hot path. The Lookup is not
// modified.
func (u *Unit) CommitRef(l *Lookup, taken bool, target uint64) (allocated bool) {
	if l.Static {
		// Sensitive/static branches leave no trace in the BPU; that is
		// the entire point of the mitigation (§10.2 "avoid updating any
		// BPU structures after such branches are executed"). The BTB is
		// also left untouched.
		return false
	}
	u.commits++
	if l.Taken != taken {
		u.mispredicts++
		idx := l.bimodalIdx
		if l.UsedGshare {
			idx = l.gshareIdx
		}
		u.heat[int(idx)*len(u.heat)/u.cfg.PHTSize]++
	}
	switch u.cfg.Mode {
	case BimodalOnly:
		u.phtUpdate(l.bimodalIdx, taken)
	case GshareOnly:
		u.phtUpdate(l.gshareIdx, taken)
	default:
		// Tournament update: train the selector on disagreement, using
		// each component's pre-update prediction.
		bim := u.phtPredict(l.bimodalIdx)
		gsh := u.phtPredict(l.gshareIdx)
		if bim != gsh {
			if gsh == taken {
				if u.selector[l.selIdx] < selectorMax {
					u.selector[l.selIdx]++
				}
			} else {
				if u.selector[l.selIdx] > 0 {
					u.selector[l.selIdx]--
				}
			}
		}
		// Both components observe the outcome (shared physical PHT).
		u.phtUpdate(l.bimodalIdx, taken)
		if l.gshareIdx != l.bimodalIdx {
			u.phtUpdate(l.gshareIdx, taken)
		}
	}

	// History and allocation. Allocating a tag for a branch the unit has
	// not seen recently also restarts the predictor choice for its
	// selector slot: a new branch begins life on the 1-level predictor
	// and must re-earn the 2-level choice (§5.1's observed behaviour —
	// "for new branches whose information is not stored in the predictor
	// history, the 1-level predictor is used").
	u.ghr = ((u.ghr << 1) | b2u(taken)) & u.ghrMask
	if !l.tagHit {
		u.selector[l.selIdx] = u.cfg.SelectorInit
	}
	u.tags[l.tagIdx] = tagEntry{valid: true, addr: l.addr}

	// The BTB stores the target only when the branch is taken (§1: "the
	// target of a conditional branch is updated only when the branch is
	// taken").
	if taken {
		u.btb[l.btbIdx] = btbEntry{valid: true, addr: l.addr, target: target}
	}
	return !l.tagHit
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// FlushBTB invalidates every BTB entry. It models the BTB-flush-on-
// context-switch defense deployed against BTB-based attacks (§9.2 notes
// such attacks "do not work on recent Intel processors"); BranchScope is
// unaffected by it because it never relies on BTB state.
func (u *Unit) FlushBTB() {
	for i := range u.btb {
		u.btb[i] = btbEntry{}
	}
}

// GHR returns the current global history register value. Inspection hook
// for tests.
func (u *Unit) GHR() uint64 { return u.ghr }

// PHT exposes the pattern history table for white-box tests and the
// ground-truth checks of the experiment harness. Attack code must not use
// it.
func (u *Unit) PHT() *pht.Table { return u.pht }

// TagLive reports whether the seen-branch tracker currently holds addr.
// Inspection hook for tests.
func (u *Unit) TagLive(domain, addr uint64) bool {
	e := u.tags[u.tagIndex(domain, addr)]
	return e.valid && e.addr == addr
}

// SelectorValue returns the selector counter governing addr. Inspection
// hook for tests.
func (u *Unit) SelectorValue(addr uint64) uint8 {
	return u.selector[addr%uint64(u.cfg.SelectorSize)]
}

// Snapshot captures the complete unit state for checkpoint/replay (used
// by the PHT mapper harness as a memoization of deterministic re-runs).
type Snapshot struct {
	pht      []uint8
	selector []uint8
	ghr      uint64
	tags     []tagEntry
	btb      []btbEntry
}

// Snapshot returns a deep copy of the unit state.
func (u *Unit) Snapshot() *Snapshot {
	return &Snapshot{
		pht:      u.pht.Snapshot(),
		selector: append([]uint8(nil), u.selector...),
		ghr:      u.ghr,
		tags:     append([]tagEntry(nil), u.tags...),
		btb:      append([]btbEntry(nil), u.btb...),
	}
}

// Restore reinstates a snapshot taken from this unit (or an identically
// configured one).
func (u *Unit) Restore(s *Snapshot) {
	u.pht.Restore(s.pht)
	copy(u.selector, s.selector)
	u.ghr = s.ghr
	copy(u.tags, s.tags)
	copy(u.btb, s.btb)
}
