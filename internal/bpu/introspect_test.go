package bpu

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestIntrospectCountsAndHeatmap drives the unit through known-outcome
// branches and checks the lifetime diagnostics: commits count every
// non-static committed branch, mispredicts count direction misses, and
// every miss lands in the heatmap set of the component index used.
func TestIntrospectCountsAndHeatmap(t *testing.T) {
	u := New(testConfig())
	const addr = 0x400100
	// Fresh table, SelectorInit 0 → bimodal path, predicts not-taken.
	// Commit taken twice: the first resolves against a not-taken
	// prediction (mispredict), the second against weakly-not-taken
	// (still a mispredict on Textbook2Bit: WN predicts not-taken).
	misses := uint64(0)
	for i := 0; i < 4; i++ {
		l := u.Predict(0, addr)
		if l.Taken != true {
			misses++
		}
		u.Commit(l, true, addr+64)
	}
	in := u.Introspect()
	if in.Commits != 4 {
		t.Errorf("commits = %d, want 4", in.Commits)
	}
	if in.Mispredicts != misses || misses == 0 {
		t.Errorf("mispredicts = %d, want %d (nonzero)", in.Mispredicts, misses)
	}
	var heatTotal uint64
	for _, h := range in.Heatmap {
		heatTotal += h
	}
	if heatTotal != in.Mispredicts {
		t.Errorf("heatmap sums to %d, want %d", heatTotal, in.Mispredicts)
	}
	if len(in.Heatmap) != heatSets(u.cfg.PHTSize) {
		t.Errorf("heatmap has %d sets, want %d", len(in.Heatmap), heatSets(u.cfg.PHTSize))
	}
	if in.PHT.Size != u.cfg.PHTSize || in.PHT.FSM == "" {
		t.Errorf("pht introspection = %+v", in.PHT)
	}
	// The trained entry must be counted under a taken-side label now.
	if in.PHT.StateCounts["ST"] == 0 {
		t.Errorf("state counts %v missing the trained ST entry", in.PHT.StateCounts)
	}
}

// TestIntrospectStaticExcluded: statically predicted branches never
// commit, so they must not move the diagnostics.
func TestIntrospectStaticExcluded(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = StaticOnly
	u := New(cfg)
	for i := 0; i < 8; i++ {
		l := u.Predict(0, 0x400100)
		u.Commit(l, true, 0x400164) // always mispredicted, never counted
	}
	in := u.Introspect()
	if in.Commits != 0 || in.Mispredicts != 0 {
		t.Errorf("static branches counted: commits=%d mispredicts=%d", in.Commits, in.Mispredicts)
	}
}

// TestDiagnosticsSurviveSnapshotRestore: Snapshot/Restore is a replay
// memoization; rewinding it must not rewind the monotonic diagnostics,
// while Reset (power-on) must zero them.
func TestDiagnosticsSurviveSnapshotRestore(t *testing.T) {
	u := New(testConfig())
	snap := u.Snapshot()
	l := u.Predict(0, 0x400100)
	u.Commit(l, true, 0x400164)
	before := u.Introspect()
	u.Restore(snap)
	after := u.Introspect()
	if after.Commits != before.Commits || after.Mispredicts != before.Mispredicts {
		t.Errorf("Restore rewound diagnostics: %+v -> %+v", before, after)
	}
	u.Reset()
	in := u.Introspect()
	if in.Commits != 0 || in.Mispredicts != 0 {
		t.Errorf("Reset left diagnostics: %+v", in)
	}
	for _, h := range in.Heatmap {
		if h != 0 {
			t.Errorf("Reset left heatmap: %v", in.Heatmap)
		}
	}
}

// TestIntrospectionJSONDeterministic: identical predictor states must
// serialize byte-identically (map keys sort, entries are base64).
func TestIntrospectionJSONDeterministic(t *testing.T) {
	build := func() []byte {
		u := New(testConfig())
		for i := 0; i < 32; i++ {
			l := u.Predict(0, 0x400000+uint64(i)*6)
			u.Commit(l, i%3 == 0, 0x500000)
		}
		data, err := json.Marshal(u.Introspect())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Error("introspection JSON is not deterministic")
	}
	// The snapshot must be self-contained: mutating the unit afterwards
	// must not change an already-taken introspection.
	u := New(testConfig())
	in := u.Introspect()
	entry0 := in.PHT.Entries[0]
	for i := 0; i < 8; i++ {
		l := u.Predict(0, 0x400100)
		u.Commit(l, true, 0x400164)
	}
	if in.PHT.Entries[0] != entry0 || in.Commits != 0 {
		t.Error("introspection aliases live unit state")
	}
}

// TestHeatSets pins the resolution rule.
func TestHeatSets(t *testing.T) {
	cases := []struct{ size, want int }{{1, 1}, {16, 16}, {63, 63}, {64, 64}, {1024, 64}, {16384, 64}}
	for _, c := range cases {
		if got := heatSets(c.size); got != c.want {
			t.Errorf("heatSets(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}
