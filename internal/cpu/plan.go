package cpu

import "branchscope/internal/bpu"

// planOp is one precompiled instruction of an ExecPlan.
type planOp struct {
	site   bpu.Site // resolved indexing state (branches only)
	addr   uint64
	target uint64
	taken  bool
	branch bool
}

// ExecPlan is a batched execution program for one context: a sequence of
// branch and nop instructions whose BPU index resolution is computed at
// compile (append) time and reused across runs. Attack loops that
// re-execute the same instruction block thousands of times — prime
// blocks, probe episodes — compile it once and call Run per iteration,
// paying only the per-branch predictor step, timing draw, and commit.
//
// Run is observationally identical to issuing the same Branch/Nop calls
// serially: the clock, PMCs, predictor state, and randomness draw order
// all evolve exactly as in serial execution (the per-op telemetry
// increments are flushed as per-run batch Adds, which preserves the
// totals every reader observes between runs). Contexts with a retire
// hook installed (scheduler-stepped victims) take a per-op fallback so
// hook delivery points — the chaos preemption surface — are unchanged.
//
// Plans hold resolved bpu.Site values, which revalidate against the
// unit's index-layout epoch inside PredictSite, so a plan compiled
// before MarkSensitive stays correct. A plan is tied to the context
// that created it and, like the context itself, is not safe for
// concurrent use. The steady-state Run path performs no heap
// allocations.
type ExecPlan struct {
	x   *Context
	ops []planOp
}

// NewPlan creates an empty plan for this context with room for capacity
// ops before the backing array grows.
func (x *Context) NewPlan(capacity int) *ExecPlan {
	return &ExecPlan{x: x, ops: make([]planOp, 0, capacity)}
}

// Reset empties the plan, retaining its op buffer for reuse.
func (p *ExecPlan) Reset() { p.ops = p.ops[:0] }

// Len returns the number of compiled ops.
func (p *ExecPlan) Len() int { return len(p.ops) }

// Branch appends a conditional branch at addr with the default
// fall-through target convention of Context.Branch (addr+16).
func (p *ExecPlan) Branch(addr uint64, taken bool) {
	p.BranchTo(addr, taken, addr+16)
}

// BranchTo appends a conditional branch with an explicit taken-target.
func (p *ExecPlan) BranchTo(addr uint64, taken bool, target uint64) {
	p.ops = append(p.ops, planOp{
		site:   p.x.core.bpuUnit.Resolve(p.x.domain, addr),
		addr:   addr,
		target: target,
		taken:  taken,
		branch: true,
	})
}

// Nop appends a non-branch instruction at addr.
func (p *ExecPlan) Nop(addr uint64) {
	p.ops = append(p.ops, planOp{addr: addr})
}

// Run executes the compiled ops in order.
func (p *ExecPlan) Run() {
	x := p.x
	if x.hook != nil {
		p.runHooked()
		return
	}
	c := x.core
	var instr, branches, misses, allocs, btbMiss, icMiss uint64
	for i := range p.ops {
		op := &p.ops[i]
		extra, miss := c.icacheTouch(x.domain, op.addr)
		if miss {
			icMiss++
		}
		if !op.branch {
			c.clock += c.timing.BaseInstr + extra
			instr++
			continue
		}
		cost := c.timing.BranchBase + extra
		var l bpu.Lookup
		c.bpuUnit.PredictSiteInto(&l, &op.site)
		if l.Taken != op.taken {
			cost += c.timing.MispredictPenalty
			misses++
		}
		if op.taken && !l.BTBHit {
			cost += c.timing.BTBMissPenalty
			btbMiss++
		}
		cost += c.jitter()
		if c.bpuUnit.CommitRef(&l, op.taken, op.target) {
			allocs++
		}
		c.clock += cost
		instr++
		branches++
	}
	x.pmc[Instructions] += instr
	x.pmc[BranchInstructions] += branches
	x.pmc[BranchMisses] += misses
	x.pmc[BranchAllocations] += allocs
	c.ctr.instructions.Add(instr)
	c.ctr.branches.Add(branches)
	c.ctr.misses.Add(misses)
	c.ctr.allocations.Add(allocs)
	c.ctr.btbMisses.Add(btbMiss)
	c.ctr.icacheMisses.Add(icMiss)
}

// runHooked is the faithful per-op path for contexts with a retire hook
// installed: every op goes through the exact serial execution functions,
// so hooks fire (and may block) at the same delivery points as unbatched
// execution.
func (p *ExecPlan) runHooked() {
	for i := range p.ops {
		op := &p.ops[i]
		if op.branch {
			p.x.branchSite(&op.site, op.taken, op.target)
		} else {
			p.x.Nop(op.addr)
		}
	}
}
