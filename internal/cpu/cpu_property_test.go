package cpu

import (
	"testing"
	"testing/quick"

	"branchscope/internal/bpu"
	"branchscope/internal/fsm"
)

// Property tests over random operation sequences: the architectural
// invariants any hardware context must uphold regardless of workload.

// opSeq drives a context through a pseudo-random instruction mix derived
// from a byte script, returning the context.
func opSeq(core *Core, script []byte) *Context {
	ctx := core.NewContext(1)
	for i, b := range script {
		addr := uint64(0x1000 + int(b)*33 + i)
		switch b % 4 {
		case 0:
			ctx.Branch(addr, b&8 != 0)
		case 1:
			ctx.Nop(addr)
		case 2:
			ctx.Work(uint64(b % 5))
		case 3:
			ctx.ReadTSC()
		}
	}
	return ctx
}

func propCore(seed uint64) *Core {
	return NewCore(bpu.Config{
		FSM:          fsm.SkylakeAsym(),
		PHTSize:      512,
		SelectorSize: 128,
		GHRBits:      12,
		TagEntries:   128,
		BTBEntries:   128,
		Mode:         bpu.Hybrid,
	}, DefaultTiming(), seed)
}

// Property: the cycle clock never decreases and every retired instruction
// advances the instruction counter by exactly one (Work(n) by n).
func TestQuickClockMonotonicCountersExact(t *testing.T) {
	f := func(seed uint64, script []byte) bool {
		core := propCore(seed)
		ctx := core.NewContext(1)
		prevClock := core.Clock()
		var wantInstr uint64
		for i, b := range script {
			addr := uint64(0x1000 + int(b)*33 + i)
			switch b % 4 {
			case 0:
				ctx.Branch(addr, b&8 != 0)
				wantInstr++
			case 1:
				ctx.Nop(addr)
				wantInstr++
			case 2:
				n := uint64(b % 5)
				ctx.Work(n)
				wantInstr += n
			case 3:
				ctx.ReadTSC()
				wantInstr++
			}
			if core.Clock() < prevClock {
				return false
			}
			prevClock = core.Clock()
		}
		return ctx.ReadPMC(Instructions) == wantInstr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: misses never exceed branches, allocations never exceed
// branches, and all PMCs are monotone.
func TestQuickPMCConsistency(t *testing.T) {
	f := func(seed uint64, script []byte) bool {
		ctx := opSeq(propCore(seed), script)
		branches := ctx.ReadPMC(BranchInstructions)
		misses := ctx.ReadPMC(BranchMisses)
		allocs := ctx.ReadPMC(BranchAllocations)
		return misses <= branches && allocs <= branches &&
			branches <= ctx.ReadPMC(Instructions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: snapshot/restore is transparent — replaying the same script
// after a restore reproduces identical TSC readings.
func TestQuickSnapshotReplayIdentical(t *testing.T) {
	f := func(seed uint64, warm, script []byte) bool {
		core := propCore(seed)
		opSeq(core, warm)
		snap := core.Snapshot()
		a := opSeq(core, script).ReadTSC()
		core.Restore(snap)
		b := opSeq(core, script).ReadTSC()
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: two cores built from the same seed behave identically under
// the same script (full determinism).
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64, script []byte) bool {
		a := opSeq(propCore(seed), script)
		b := opSeq(propCore(seed), script)
		return a.ReadPMC(BranchMisses) == b.ReadPMC(BranchMisses) &&
			a.Core().Clock() == b.Core().Clock()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the TSC is strictly increasing across reads (rdtscp has a
// positive cost), so timing deltas are always positive.
func TestQuickTSCStrictlyIncreasing(t *testing.T) {
	f := func(seed uint64, script []byte) bool {
		core := propCore(seed)
		ctx := opSeq(core, script)
		t1 := ctx.ReadTSC()
		t2 := ctx.ReadTSC()
		return t2 > t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
