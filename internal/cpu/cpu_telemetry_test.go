package cpu

import (
	"testing"

	"branchscope/internal/telemetry"
)

// TestCoreTelemetryCounters cross-checks the core-wide retire metrics
// against the architectural PMCs, and the per-context TSC/PMC read
// counters.
func TestCoreTelemetryCounters(t *testing.T) {
	c := testCore()
	set := telemetry.New(telemetry.NewRegistry(), nil)
	c.SetTelemetry(set)
	if c.Telemetry() != set {
		t.Fatal("Telemetry() did not return the attached set")
	}
	x := c.NewContext(1)
	y := c.NewContext(2)
	if x.TID() == 0 || y.TID() == 0 || x.TID() == y.TID() {
		t.Fatalf("bad tids %d, %d", x.TID(), y.TID())
	}

	for i := 0; i < 6; i++ {
		x.Branch(0x100, true)
	}
	x.Nop(0x200)
	x.Work(3)
	x.ReadTSC()
	x.ReadTSC()
	x.ReadPMC(BranchMisses)
	y.ReadTSC()

	reg := set.Metrics
	wantInstr := x.ReadPMC(Instructions) + y.ReadPMC(Instructions)
	if got := reg.Counter("cpu.instructions").Value(); got != wantInstr {
		t.Errorf("cpu.instructions = %d, want %d (PMC sum)", got, wantInstr)
	}
	if got := reg.Counter("cpu.branches").Value(); got != 6 {
		t.Errorf("cpu.branches = %d, want 6", got)
	}
	if got, want := reg.Counter("cpu.branch_misses").Value(), x.ReadPMC(BranchMisses); got != want {
		t.Errorf("cpu.branch_misses = %d, want %d (PMC)", got, want)
	}
	if reg.Counter("cpu.icache_misses").Value() == 0 {
		t.Error("no icache misses recorded for cold code")
	}
	name := func(tid int, suffix string) string {
		return "cpu.ctx" + string(rune('0'+tid)) + "." + suffix
	}
	if got := reg.Counter(name(x.TID(), "tsc_reads")).Value(); got != 2 {
		t.Errorf("spy tsc_reads = %d, want 2", got)
	}
	if got := reg.Counter(name(y.TID(), "tsc_reads")).Value(); got != 1 {
		t.Errorf("sibling tsc_reads = %d, want 1", got)
	}
	if reg.Counter(name(x.TID(), "pmc_reads")).Value() == 0 {
		t.Error("pmc_reads not recorded")
	}
}

// TestTelemetryDisabledIsInert pins the nil fast path on the retire
// paths: no telemetry, no tids, no panics, PMCs unaffected.
func TestTelemetryDisabledIsInert(t *testing.T) {
	c := testCore()
	x := c.NewContext(1)
	if x.TID() != 0 {
		t.Error("tid allocated without telemetry")
	}
	x.Branch(0x100, true)
	x.Nop(0x200)
	x.Work(2)
	x.ReadTSC()
	if got := x.ReadPMC(Instructions); got != 5 {
		t.Errorf("Instructions PMC = %d, want 5", got)
	}
}
