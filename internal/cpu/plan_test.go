package cpu

import (
	"reflect"
	"testing"

	"branchscope/internal/bpu"
	"branchscope/internal/fsm"
)

func planTestCore(seed uint64) *Core {
	return NewCore(bpu.Config{
		FSM:          fsm.SkylakeAsym(),
		PHTSize:      1024,
		SelectorSize: 256,
		GHRBits:      12,
		TagEntries:   128,
		BTBEntries:   256,
		Mode:         bpu.Hybrid,
		SelectorInit: 3,
	}, DefaultTiming(), seed)
}

// TestPlanMatchesSerialExecution pins the ExecPlan contract: a batched
// run must leave the machine — clock, PMCs, predictor state, icache,
// and the randomness stream — in exactly the state the equivalent
// serial Branch/Nop calls produce.
func TestPlanMatchesSerialExecution(t *testing.T) {
	serialCore, batchCore := planTestCore(77), planTestCore(77)
	serial := serialCore.NewContext(1)
	batch := batchCore.NewContext(1)

	type op struct {
		addr   uint64
		taken  bool
		branch bool
	}
	var ops []op
	base := uint64(0x6100_0000)
	for i := 0; i < 300; i++ {
		a := base + uint64(i%24)*20
		ops = append(ops, op{addr: a, branch: i%5 != 0, taken: i%3 == 0})
	}

	plan := batch.NewPlan(len(ops))
	for _, o := range ops {
		if o.branch {
			plan.Branch(o.addr, o.taken)
		} else {
			plan.Nop(o.addr)
		}
	}

	for rep := 0; rep < 50; rep++ {
		for _, o := range ops {
			if o.branch {
				serial.Branch(o.addr, o.taken)
			} else {
				serial.Nop(o.addr)
			}
		}
		plan.Run()

		if serialCore.Clock() != batchCore.Clock() {
			t.Fatalf("rep %d: clock diverged: serial %d batch %d", rep, serialCore.Clock(), batchCore.Clock())
		}
		for e := Event(0); e < numEvents; e++ {
			if sv, bv := serial.ReadPMC(e), batch.ReadPMC(e); sv != bv {
				t.Fatalf("rep %d: PMC %v diverged: serial %d batch %d", rep, e, sv, bv)
			}
		}
	}
	if !reflect.DeepEqual(serialCore.Snapshot(), batchCore.Snapshot()) {
		t.Fatal("core state diverged between serial and batched execution")
	}
}

// TestPlanHookedFallback pins that a context with a retire hook gets
// per-op hook delivery from Run, in order, with correct branch flags.
func TestPlanHookedFallback(t *testing.T) {
	core := planTestCore(5)
	x := core.NewContext(1)
	var got []bool
	x.SetHook(func(isBranch bool) { got = append(got, isBranch) })

	plan := x.NewPlan(4)
	plan.Branch(0x100, true)
	plan.Nop(0x200)
	plan.Branch(0x300, false)
	plan.Run()

	want := []bool{true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hook delivery = %v, want %v", got, want)
	}
}

// TestResolvedBranchMatchesBranch pins ResolvedBranch/BranchRepeat
// against per-call Branch on identically seeded cores.
func TestResolvedBranchMatchesBranch(t *testing.T) {
	serialCore, cachedCore := planTestCore(9), planTestCore(9)
	serial := serialCore.NewContext(2)
	cached := cachedCore.NewContext(2)

	addr := uint64(0x4000)
	rb := cached.ResolveBranch(addr)
	for i := 0; i < 2000; i++ {
		taken := i%7 < 4
		serial.Branch(addr, taken)
		rb.Execute(taken)
	}
	serial.BranchRepeat(addr+64, true, 100) // same-machine API sanity
	cached.BranchRepeat(addr+64, true, 100)

	if serialCore.Clock() != cachedCore.Clock() {
		t.Fatalf("clock diverged: serial %d cached %d", serialCore.Clock(), cachedCore.Clock())
	}
	if !reflect.DeepEqual(serialCore.Snapshot(), cachedCore.Snapshot()) {
		t.Fatal("core state diverged between Branch and ResolvedBranch execution")
	}
}

// TestJitterTableDistribution sanity-checks the quantized sampler: the
// empirical mean of uint64(|N(0,σ)|) is ~σ·√(2/π) − 1/2 (half-normal
// mean shifted by the floor), and the table is monotone and saturated.
func TestJitterTableDistribution(t *testing.T) {
	tab := buildJitterTab(2.5)
	if tab[len(tab)-1] != ^uint64(0) {
		t.Fatalf("jitter table not saturated: last threshold %#x", tab[len(tab)-1])
	}
	for i := 1; i < len(tab); i++ {
		if tab[i] < tab[i-1] {
			t.Fatalf("jitter table not monotone at %d", i)
		}
	}
	core := planTestCore(123)
	core.spikeThr = 0 // isolate the half-normal term
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(core.jitter())
	}
	mean := sum / n
	// E[floor(|N(0,2.5)|)] ≈ 2.5·√(2/π) − 0.5 ≈ 1.49; allow generous slack.
	if mean < 1.3 || mean > 1.7 {
		t.Fatalf("jitter mean = %.3f, want ≈1.49", mean)
	}

	if got := buildJitterTab(0); len(got) != 1 || got[0] != ^uint64(0) {
		t.Fatalf("σ=0 table = %v, want single saturated bucket", got)
	}
}
