package cpu

import (
	"testing"

	"branchscope/internal/bpu"
	"branchscope/internal/fsm"
)

func testCore() *Core {
	cfg := bpu.Config{
		FSM:          fsm.Textbook2Bit(),
		PHTSize:      1024,
		SelectorSize: 512,
		GHRBits:      10,
		TagEntries:   256,
		BTBEntries:   256,
		Mode:         bpu.Hybrid,
	}
	return NewCore(cfg, DefaultTiming(), 42)
}

// quietCore returns a core with all stochastic timing disabled, for
// deterministic latency assertions.
func quietCore() *Core {
	cfg := bpu.Config{
		FSM:          fsm.Textbook2Bit(),
		PHTSize:      1024,
		SelectorSize: 512,
		GHRBits:      10,
		TagEntries:   256,
		BTBEntries:   256,
		Mode:         bpu.Hybrid,
	}
	tm := DefaultTiming()
	tm.JitterSigma = 0
	tm.SpikeProb = 0
	tm.ICacheMissMin = 0
	tm.ICacheMissMax = 0
	return NewCore(cfg, tm, 42)
}

func TestPMCCountsBranches(t *testing.T) {
	ctx := testCore().NewContext(1)
	for i := 0; i < 5; i++ {
		ctx.Branch(0x100, true)
	}
	if got := ctx.ReadPMC(BranchInstructions); got != 5 {
		t.Errorf("BranchInstructions = %d, want 5", got)
	}
	if got := ctx.ReadPMC(Instructions); got != 5 {
		t.Errorf("Instructions = %d, want 5", got)
	}
}

func TestPMCCountsMispredictions(t *testing.T) {
	ctx := quietCore().NewContext(1)
	// Train the branch taken, then surprise it.
	for i := 0; i < 4; i++ {
		ctx.Branch(0x100, true)
	}
	before := ctx.ReadPMC(BranchMisses)
	ctx.Branch(0x100, false) // must mispredict: counter is strongly taken
	if got := ctx.ReadPMC(BranchMisses) - before; got != 1 {
		t.Errorf("mispredictions = %d, want 1", got)
	}
	// The fresh-state counter predicts not-taken, so the very first
	// taken execution also counted as a miss.
	if ctx.ReadPMC(BranchMisses) < 2 {
		t.Errorf("total misses = %d, want >= 2", ctx.ReadPMC(BranchMisses))
	}
}

func TestMispredictionCostsCycles(t *testing.T) {
	core := quietCore()
	ctx := core.NewContext(1)
	// Warm up: train taken, warm icache and BTB.
	for i := 0; i < 4; i++ {
		ctx.Branch(0x100, true)
	}
	t0 := ctx.ReadTSC()
	ctx.Branch(0x100, true) // predicted correctly, BTB hit
	hit := ctx.ReadTSC() - t0
	t0 = ctx.ReadTSC()
	ctx.Branch(0x100, false) // mispredicted
	miss := ctx.ReadTSC() - t0
	if miss <= hit {
		t.Fatalf("miss latency %d not greater than hit latency %d", miss, hit)
	}
	if got := miss - hit; got != core.Timing().MispredictPenalty {
		t.Errorf("penalty = %d cycles, want %d", got, core.Timing().MispredictPenalty)
	}
}

func TestBTBMissCostsCycles(t *testing.T) {
	core := quietCore()
	ctx := core.NewContext(1)
	// Make the direction predictable-taken but keep the BTB cold by
	// evicting between runs.
	for i := 0; i < 4; i++ {
		ctx.Branch(0x100, true)
	}
	// BTB now holds 0x100. A taken branch aliasing it evicts the entry.
	evict := uint64(0x100 + 256) // BTBEntries = 256
	ctx.Branch(evict, true)
	ctx.Branch(evict, true) // train alias so it no longer mispredicts

	t0 := ctx.ReadTSC()
	ctx.Branch(0x100, true) // direction correct (ST), BTB miss
	cold := ctx.ReadTSC() - t0
	t0 = ctx.ReadTSC()
	ctx.Branch(0x100, true) // direction correct, BTB hit now
	warm := ctx.ReadTSC() - t0
	if cold-warm != core.Timing().BTBMissPenalty {
		t.Errorf("BTB miss extra = %d, want %d", cold-warm, core.Timing().BTBMissPenalty)
	}
}

func TestICacheFirstTouchCost(t *testing.T) {
	core := testCore()
	tm := core.Timing()
	ctx := core.NewContext(1)
	// First execution at a fresh address must cost at least the minimum
	// cold-miss penalty more than a warm one on average. Use Nop to
	// avoid branch-prediction effects.
	t0 := core.Clock()
	ctx.Nop(0x4000)
	first := core.Clock() - t0
	t0 = core.Clock()
	ctx.Nop(0x4000)
	second := core.Clock() - t0
	if first < second+tm.ICacheMissMin {
		t.Errorf("first touch %d vs warm %d: expected cold-miss penalty >= %d",
			first, second, tm.ICacheMissMin)
	}
}

func TestICacheCrossDomainEviction(t *testing.T) {
	core := quietCoreWithICache()
	a := core.NewContext(1)
	b := core.NewContext(2)
	a.Nop(0x4000)
	t0 := core.Clock()
	a.Nop(0x4000)
	warm := core.Clock() - t0
	if warm != core.Timing().BaseInstr {
		t.Fatalf("warm nop cost %d", warm)
	}
	// Same line index, different domain: evicts.
	b.Nop(0x4000)
	t0 = core.Clock()
	a.Nop(0x4000)
	after := core.Clock() - t0
	if after <= warm {
		t.Error("cross-domain access did not evict icache line")
	}
}

func quietCoreWithICache() *Core {
	c := quietCore()
	c.timing.ICacheMissMin = 30
	c.timing.ICacheMissMax = 30
	return c
}

func TestReadTSCAdvancesClock(t *testing.T) {
	core := quietCore()
	ctx := core.NewContext(1)
	t1 := ctx.ReadTSC()
	t2 := ctx.ReadTSC()
	if t2-t1 != core.Timing().TSCOverhead {
		t.Errorf("TSC delta = %d, want overhead %d", t2-t1, core.Timing().TSCOverhead)
	}
}

func TestWorkAdvances(t *testing.T) {
	core := quietCore()
	ctx := core.NewContext(1)
	c0 := core.Clock()
	ctx.Work(10)
	if core.Clock()-c0 != 10*core.Timing().BaseInstr {
		t.Errorf("Work(10) advanced %d cycles", core.Clock()-c0)
	}
	if ctx.ReadPMC(Instructions) != 10 {
		t.Errorf("Instructions = %d", ctx.ReadPMC(Instructions))
	}
}

func TestContextsSharePMCsSeparately(t *testing.T) {
	core := testCore()
	a := core.NewContext(1)
	b := core.NewContext(2)
	a.Branch(0x10, true)
	if b.ReadPMC(BranchInstructions) != 0 {
		t.Error("PMC leaked across contexts")
	}
}

func TestContextsShareBPU(t *testing.T) {
	core := quietCore()
	a := core.NewContext(1)
	b := core.NewContext(2)
	// a trains a branch address strongly taken; b then executes a
	// branch at the same address and benefits (no mispredict) —
	// the cross-process collision BranchScope relies on.
	for i := 0; i < 4; i++ {
		a.Branch(0x100, true)
	}
	before := b.ReadPMC(BranchMisses)
	b.Branch(0x100, true)
	if got := b.ReadPMC(BranchMisses) - before; got != 0 {
		t.Errorf("context b mispredicted despite a's training (misses=%d)", got)
	}
}

func TestHookCalled(t *testing.T) {
	ctx := testCore().NewContext(1)
	var instr, branches int
	ctx.SetHook(func(isBranch bool) {
		instr++
		if isBranch {
			branches++
		}
	})
	ctx.Branch(0x10, true)
	ctx.Nop(0x20)
	ctx.Work(3)
	ctx.ReadTSC()
	if branches != 1 {
		t.Errorf("branch hooks = %d, want 1", branches)
	}
	if instr != 6 {
		t.Errorf("instruction hooks = %d, want 6", instr)
	}
}

func TestSnapshotRestoreDeterministic(t *testing.T) {
	core := testCore()
	ctx := core.NewContext(1)
	for i := 0; i < 100; i++ {
		ctx.Branch(uint64(0x100+i*2), i%2 == 0)
	}
	snap := core.Snapshot()

	run := func() []uint64 {
		var out []uint64
		c := core.NewContext(1)
		for i := 0; i < 50; i++ {
			t0 := c.ReadTSC()
			c.Branch(uint64(0x100+i*2), true)
			out = append(out, c.ReadTSC()-t0)
		}
		return out
	}
	first := run()
	core.Restore(snap)
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at step %d: %d vs %d", i, first[i], second[i])
		}
	}
}

func TestReadPMCPanicsOnBadEvent(t *testing.T) {
	ctx := testCore().NewContext(1)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	ctx.ReadPMC(Event(99))
}

func TestEventString(t *testing.T) {
	for _, e := range []Event{Instructions, BranchInstructions, BranchMisses, Event(9)} {
		if e.String() == "" {
			t.Error("empty Event string")
		}
	}
}

func TestDomainAccessors(t *testing.T) {
	core := testCore()
	ctx := core.NewContext(7)
	if ctx.Domain() != 7 {
		t.Errorf("Domain = %d", ctx.Domain())
	}
	if ctx.Core() != core {
		t.Error("Core accessor mismatch")
	}
}
