// Package cpu implements the execution substrate of the simulation: a
// physical core with a cycle clock, a shared branch prediction unit, an
// instruction cache, and per-hardware-context architectural interfaces —
// branch execution, a timestamp counter (the paper's rdtscp, §8), and
// performance counters (the paper's branch-misprediction PMC, §7).
//
// Code running on a Context only sees architectural state: it executes
// instructions and reads counters. All microarchitectural state (PHT,
// selector, GHR, tags, BTB, icache) lives in the Core and is observable
// only through its timing and prediction side effects — which is exactly
// the channel BranchScope exploits.
package cpu

import (
	"fmt"
	"math"

	"branchscope/internal/bpu"
	"branchscope/internal/rng"
	"branchscope/internal/telemetry"
)

// Event identifies a hardware performance counter.
type Event int

const (
	// Instructions counts retired instructions.
	Instructions Event = iota
	// BranchInstructions counts retired conditional branches.
	BranchInstructions
	// BranchMisses counts mispredicted conditional branches.
	BranchMisses
	// BranchAllocations counts conditional branches newly allocated in
	// the predictor's seen-branch tracker (tag misses at commit) — the
	// branch-working-set churn signal used by the hardware detection
	// countermeasure of internal/detect.
	BranchAllocations
	// numEvents sizes the counter file.
	numEvents
)

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e {
	case Instructions:
		return "instructions"
	case BranchInstructions:
		return "branch-instructions"
	case BranchMisses:
		return "branch-misses"
	case BranchAllocations:
		return "branch-allocations"
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Timing parameterizes the cycle cost model. The absolute values are
// calibrated so the TSC-observable distributions have the shape of the
// paper's Figures 7–9 (measured hit latency near 90 cycles, miss near
// 140, noisy first executions); they are not claimed to match any
// specific silicon.
type Timing struct {
	// BaseInstr is the cycle cost of a non-branch instruction.
	BaseInstr uint64
	// BranchBase is the cost of a correctly predicted branch as
	// observed by a TSC measurement pair around it (it folds in the
	// surrounding measurement scaffolding, as real rdtscp timings do).
	BranchBase uint64
	// MispredictPenalty is the extra cost of a direction misprediction
	// (pipeline flush and refetch).
	MispredictPenalty uint64
	// BTBMissPenalty is the extra cost of a taken branch whose target
	// missed in the BTB (front-end redirect).
	BTBMissPenalty uint64
	// TSCOverhead is the cost of one ReadTSC (rdtscp serializes).
	TSCOverhead uint64
	// JitterSigma is the standard deviation of the per-branch Gaussian
	// timing noise.
	JitterSigma float64
	// SpikeProb is the probability that an instruction's timing is
	// perturbed by an unrelated event (interrupt, SMT contention,
	// frequency wiggle); SpikeMax bounds the uniform perturbation.
	SpikeProb float64
	// SpikeMax is the maximum extra cycles added by a spike.
	SpikeMax uint64
	// ICacheMissMin and ICacheMissMax bound the uniform extra cost of a
	// first-touch (cold) instruction fetch. The wide range models the
	// unpredictable level of the memory hierarchy that services the
	// miss; it is what makes the paper's first measurement unreliable
	// (Figure 8).
	ICacheMissMin uint64
	ICacheMissMax uint64
}

// DefaultTiming returns the calibrated timing model shared by the three
// CPU models (the paper's figures do not differentiate latency by
// microarchitecture).
func DefaultTiming() Timing {
	return Timing{
		BaseInstr:         1,
		BranchBase:        88,
		MispredictPenalty: 54,
		BTBMissPenalty:    18,
		TSCOverhead:       24,
		JitterSigma:       2.5,
		SpikeProb:         0.13,
		SpikeMax:          260,
		ICacheMissMin:     28,
		ICacheMissMax:     230,
	}
}

// ICacheLines is the capacity of the per-core instruction cache model in
// 64-byte lines (32 KiB L1I).
const ICacheLines = 512

type icacheEntry struct {
	valid  bool
	domain uint64
	line   uint64
}

// Core is one simulated physical core: a cycle clock, a branch prediction
// unit shared by its hardware contexts, and an instruction cache. Cores
// are not safe for concurrent use; the scheduler serializes contexts.
type Core struct {
	bpuUnit *bpu.Unit
	timing  Timing
	clock   uint64
	icache  [ICacheLines]icacheEntry
	rnd     *rng.Source
	faults  ReadFaults
	tel     *telemetry.Set
	ctr     coreCounters

	// jitterTab is the quantized half-normal sampler built once from
	// Timing.JitterSigma: jitterTab[k] = round(2^64 · P(jitter ≤ k)),
	// so one uniform Uint64 draw compared against the cumulative
	// thresholds yields a sample of uint64(|N(0,σ)|) exact to within
	// 2^-64 per bucket — the distribution the polar-method sampler
	// produced, at a fraction of its cost (no Log/Sqrt, no rejection
	// loop). Timing is fixed at construction, so the table never
	// changes. spikeThr is Timing.SpikeProb quantized the same way:
	// one uniform draw per branch decides the spike, no float compare.
	jitterTab []uint64
	spikeThr  uint64
}

// ReadFaults intercepts architectural counter reads on a core. The
// fault-injection layer (internal/chaos) installs them to model PMC
// readout corruption and rdtscp latency shifts: the faults live in the
// hardware model, so attack code above experiences them exactly as it
// would on real interference-prone silicon — through garbage readings —
// without either side reaching into the other's internals. Both funcs
// may be nil; they apply to every context of the core (it is the
// machine that misbehaves, not one process).
type ReadFaults struct {
	// PMC maps a counter read's true value to the observed value.
	PMC func(e Event, v uint64) uint64
	// TSCExtra returns extra cycles charged to (and observed through)
	// a ReadTSC — a perturbed rdtscp costs real time, so the shift
	// lands on the measured latency of whatever the read brackets.
	TSCExtra func() uint64
}

// SetReadFaults installs the core's read-fault hooks; the zero value
// clears them. Snapshot/Restore deliberately does not capture hooks:
// faults are external interference, not microarchitectural state.
func (c *Core) SetReadFaults(f ReadFaults) { c.faults = f }

// coreCounters caches the core-wide metric handles. All fields are nil
// when telemetry is disabled, collapsing every update to an inlined nil
// check on the retire paths.
type coreCounters struct {
	instructions *telemetry.Counter
	branches     *telemetry.Counter
	misses       *telemetry.Counter
	allocations  *telemetry.Counter
	btbMisses    *telemetry.Counter
	icacheMisses *telemetry.Counter
}

// NewCore builds a core around a BPU configuration.
func NewCore(cfg bpu.Config, timing Timing, seed uint64) *Core {
	return &Core{
		bpuUnit:   bpu.New(cfg),
		timing:    timing,
		rnd:       rng.New(seed),
		jitterTab: buildJitterTab(timing.JitterSigma),
		spikeThr:  quantizeProb(timing.SpikeProb),
	}
}

// quantizeProb maps a probability to a 64-bit acceptance threshold:
// a uniform Uint64 draw below it occurs with probability p (to within
// 2^-64).
func quantizeProb(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	v := p * 18446744073709551616.0 // 2^64
	if v >= 18446744073709551615.0 {
		return ^uint64(0)
	}
	return uint64(v)
}

// buildJitterTab quantizes the half-normal |N(0,σ)| to cumulative
// 64-bit thresholds: P(floor(|N|) ≤ k) = erf((k+1) / (σ√2)). The table
// ends with a saturated ^uint64(0) bucket, so a lookup always lands.
func buildJitterTab(sigma float64) []uint64 {
	if sigma <= 0 {
		return []uint64{^uint64(0)}
	}
	denom := sigma * math.Sqrt2
	var tab []uint64
	for k := 0; ; k++ {
		p := math.Erf(float64(k+1) / denom)
		v := p * 18446744073709551616.0 // 2^64
		if v >= 18446744073709551615.0 {
			tab = append(tab, ^uint64(0))
			return tab
		}
		tab = append(tab, uint64(v))
	}
}

// SetTelemetry attaches a telemetry set to the core (nil detaches).
// Call it before creating contexts: a context captures its per-context
// instrument handles at creation time. Disabled telemetry costs one
// inlined nil check per retired operation, keeping hot paths intact.
func (c *Core) SetTelemetry(t *telemetry.Set) {
	c.tel = t
	c.ctr = coreCounters{
		instructions: t.Counter("cpu.instructions"),
		branches:     t.Counter("cpu.branches"),
		misses:       t.Counter("cpu.branch_misses"),
		allocations:  t.Counter("cpu.branch_allocations"),
		btbMisses:    t.Counter("cpu.btb_misses"),
		icacheMisses: t.Counter("cpu.icache_misses"),
	}
}

// Telemetry returns the attached telemetry set (nil when disabled).
// Layers above the CPU (scheduler, attack sessions) pick their sink up
// from here so one SetTelemetry call instruments the whole machine.
func (c *Core) Telemetry() *telemetry.Set { return c.tel }

// BPU exposes the core's branch prediction unit for white-box tests and
// mitigation configuration (MarkSensitive). Attack code must not use it.
func (c *Core) BPU() *bpu.Unit { return c.bpuUnit }

// Timing returns the core's timing parameters.
func (c *Core) Timing() Timing { return c.timing }

// Clock returns the current cycle count.
func (c *Core) Clock() uint64 { return c.clock }

// icacheAccess models one instruction fetch: returns the extra cycles
// charged (zero on a hit).
func (c *Core) icacheAccess(domain, addr uint64) uint64 {
	extra, miss := c.icacheTouch(domain, addr)
	if miss {
		c.ctr.icacheMisses.Inc()
	}
	return extra
}

// icacheTouch is icacheAccess without the telemetry increment, so the
// batched executor can count misses locally and flush one Add per run.
func (c *Core) icacheTouch(domain, addr uint64) (extra uint64, miss bool) {
	line := addr >> 6
	e := &c.icache[line%ICacheLines]
	if e.valid && e.domain == domain && e.line == line {
		return 0, false
	}
	*e = icacheEntry{valid: true, domain: domain, line: line}
	span := c.timing.ICacheMissMax - c.timing.ICacheMissMin
	if span == 0 {
		return c.timing.ICacheMissMin, true
	}
	return c.timing.ICacheMissMin + c.rnd.Uint64n(span+1), true
}

// jitter draws the ambient timing noise for one instruction: one
// uniform draw against the quantized half-normal thresholds (the
// expected scan depth is E[jitter]+1 buckets, ~3 at the default σ),
// plus the spike perturbation.
func (c *Core) jitter() uint64 {
	u := c.rnd.Uint64()
	j := uint64(0)
	for _, th := range c.jitterTab {
		if u < th {
			break
		}
		j++
	}
	if j >= uint64(len(c.jitterTab)) {
		j = uint64(len(c.jitterTab)) - 1
	}
	if c.rnd.Uint64() < c.spikeThr {
		j += c.rnd.Uint64n(c.timing.SpikeMax + 1)
	}
	return j
}

// Snapshot captures the full microarchitectural state of the core for the
// checkpoint/replay harness (deterministic re-execution memoization).
type Snapshot struct {
	bpu    *bpu.Snapshot
	clock  uint64
	icache [ICacheLines]icacheEntry
	rnd    rng.Source
}

// Snapshot returns a deep copy of core state.
func (c *Core) Snapshot() *Snapshot {
	return &Snapshot{
		bpu:    c.bpuUnit.Snapshot(),
		clock:  c.clock,
		icache: c.icache,
		rnd:    *c.rnd,
	}
}

// Restore reinstates a snapshot taken from this core.
func (c *Core) Restore(s *Snapshot) {
	c.bpuUnit.Restore(s.bpu)
	c.clock = s.clock
	c.icache = s.icache
	*c.rnd = s.rnd
}

// Hook observes retired operations on a context; the scheduler uses it to
// enforce instruction and branch quanta. It may block (that is how a
// context is descheduled).
type Hook func(isBranch bool)

// Context is one hardware thread of a core: the architectural interface
// programs execute against. Two contexts of the same core share its BPU,
// icache and clock (SMT), but have private performance counters.
type Context struct {
	core   *Core
	domain uint64
	pmc    [numEvents]uint64
	hook   Hook

	// tid is the trace thread id (0 when telemetry is disabled);
	// tscReads/pmcReads are the per-context counter-read metrics.
	tid      int
	tscReads *telemetry.Counter
	pmcReads *telemetry.Counter
}

// NewContext creates a hardware context on the core for the given
// security domain (process). Domains separate icache lines and are the
// key for the per-domain BPU mitigations; co-resident attacker and victim
// processes have different domains yet share the BPU — the paper's threat
// model.
func (c *Core) NewContext(domain uint64) *Context {
	x := &Context{core: c, domain: domain}
	if c.tel != nil {
		x.tid = c.tel.NewThreadID()
		x.tscReads = c.tel.Counter(fmt.Sprintf("cpu.ctx%d.tsc_reads", x.tid))
		x.pmcReads = c.tel.Counter(fmt.Sprintf("cpu.ctx%d.pmc_reads", x.tid))
	}
	return x
}

// TID returns the context's trace thread identifier (0 when the core
// had no telemetry attached at context creation). Spans emitted for
// work on this context use it as their Chrome-trace tid.
func (x *Context) TID() int { return x.tid }

// Domain returns the context's security domain identifier.
func (x *Context) Domain() uint64 { return x.domain }

// Core returns the core this context belongs to.
func (x *Context) Core() *Core { return x.core }

// SetHook installs the scheduler callback invoked after every retired
// operation.
func (x *Context) SetHook(h Hook) { x.hook = h }

// Hook returns the currently installed retire hook (nil if none). Tools
// that observe execution (internal/trace) use it to compose with the
// scheduler's hook rather than replace it.
func (x *Context) Hook() Hook { return x.hook }

func (x *Context) retire(isBranch bool) {
	if x.hook != nil {
		x.hook(isBranch)
	}
}

// Branch executes one conditional branch instruction at addr with the
// given actual direction. The fall-through target convention is
// addr+targetStride for taken branches; use BranchTo when the target
// matters (BTB experiments).
func (x *Context) Branch(addr uint64, taken bool) {
	x.BranchTo(addr, taken, addr+16)
}

// BranchTo executes one conditional branch with an explicit taken-target.
func (x *Context) BranchTo(addr uint64, taken bool, target uint64) {
	s := x.core.bpuUnit.Resolve(x.domain, addr)
	x.branchSite(&s, taken, target)
}

// branchSite executes one branch through a previously resolved site: the
// shared serial execution path behind BranchTo, ResolvedBranch and the
// hooked ExecPlan fallback.
func (x *Context) branchSite(s *bpu.Site, taken bool, target uint64) {
	c := x.core
	cost := c.timing.BranchBase
	cost += c.icacheAccess(x.domain, s.Addr())
	var l bpu.Lookup
	c.bpuUnit.PredictSiteInto(&l, s)
	if l.Taken != taken {
		cost += c.timing.MispredictPenalty
		x.pmc[BranchMisses]++
		c.ctr.misses.Inc()
	}
	if taken && !l.BTBHit {
		cost += c.timing.BTBMissPenalty
		c.ctr.btbMisses.Inc()
	}
	cost += c.jitter()
	if c.bpuUnit.CommitRef(&l, taken, target) {
		x.pmc[BranchAllocations]++
		c.ctr.allocations.Inc()
	}
	c.clock += cost
	x.pmc[Instructions]++
	x.pmc[BranchInstructions]++
	c.ctr.instructions.Inc()
	c.ctr.branches.Inc()
	x.retire(true)
}

// ResolvedBranch caches the BPU site resolution for one (context,
// address) pair so loops that re-execute the same branch — prime
// bursts, probe pairs, calibration training — skip the per-call index
// computations. The zero value is not usable; obtain one from
// ResolveBranch and keep it by value (no heap allocation).
type ResolvedBranch struct {
	x      *Context
	site   bpu.Site
	target uint64
}

// ResolveBranch resolves the branch at addr for this context, with the
// default fall-through target convention of Branch (addr+16).
func (x *Context) ResolveBranch(addr uint64) ResolvedBranch {
	return ResolvedBranch{
		x:      x,
		site:   x.core.bpuUnit.Resolve(x.domain, addr),
		target: addr + 16,
	}
}

// Addr returns the resolved branch's address.
func (rb *ResolvedBranch) Addr() uint64 { return rb.site.Addr() }

// Execute runs the resolved branch once with the given direction; it is
// observationally identical to Context.Branch at the same address.
func (rb *ResolvedBranch) Execute(taken bool) {
	rb.x.branchSite(&rb.site, taken, rb.target)
}

// BranchRepeat executes n consecutive branches at addr with the same
// direction — the prime-burst shape of the attack loops — resolving the
// site once.
func (x *Context) BranchRepeat(addr uint64, taken bool, n int) {
	rb := x.ResolveBranch(addr)
	for i := 0; i < n; i++ {
		rb.Execute(taken)
	}
}

// Nop executes one non-branch instruction at addr (the address matters:
// it occupies icache space and, in attacker blocks, shifts subsequent
// branch addresses — the Listing 1 randomization trick).
func (x *Context) Nop(addr uint64) {
	c := x.core
	cost := c.timing.BaseInstr + c.icacheAccess(x.domain, addr)
	c.clock += cost
	x.pmc[Instructions]++
	c.ctr.instructions.Inc()
	x.retire(false)
}

// Work executes n generic non-branch instructions that are not
// cache-modelled (arithmetic on warm code); it advances time and the
// instruction counter.
func (x *Context) Work(n uint64) {
	c := x.core
	c.ctr.instructions.Add(n)
	for i := uint64(0); i < n; i++ {
		c.clock += c.timing.BaseInstr
		x.pmc[Instructions]++
		x.retire(false)
	}
}

// ReadTSC reads the timestamp counter (rdtscp): it returns the core cycle
// clock and charges the serialization overhead.
func (x *Context) ReadTSC() uint64 {
	c := x.core
	c.clock += c.timing.TSCOverhead
	if f := c.faults.TSCExtra; f != nil {
		c.clock += f()
	}
	x.pmc[Instructions]++
	c.ctr.instructions.Inc()
	x.tscReads.Inc()
	t := c.clock
	x.retire(false)
	return t
}

// ReadPMC reads a performance counter of this context. Counter reads are
// architecturally free in the model (the paper's attacker reads PMCs via
// the perf subsystem outside the timed region).
func (x *Context) ReadPMC(e Event) uint64 {
	if e < 0 || e >= numEvents {
		panic(fmt.Sprintf("cpu: invalid PMC event %d", int(e)))
	}
	x.pmcReads.Inc()
	v := x.pmc[e]
	if f := x.core.faults.PMC; f != nil {
		v = f(e, v)
	}
	return v
}
