package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"branchscope/internal/campaign"
	"branchscope/internal/engine"
	"branchscope/internal/runstore"
)

const testSeed = 42

// testResult renders deterministically from the seed the task ran with,
// so any seed drift between local and distributed execution shows up as
// a byte difference.
type testResult struct {
	id   string
	seed uint64
}

func (r testResult) String() string {
	return fmt.Sprintf("%s: deterministic result for seed %d\n", r.id, r.seed)
}

func (r testResult) Rows() []engine.Row {
	return []engine.Row{{engine.F("id", r.id), engine.F("seed", r.seed)}}
}

// okTask succeeds with a seed-derived result after an optional delay
// (the delay exercises heartbeat-based lease renewal; the result does
// not depend on it).
func okTask(id string, delay time.Duration) engine.Task {
	return engine.Task{
		ID: id, Artifact: "test artifact", Description: "deterministic test task",
		Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			if delay > 0 {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(delay):
				}
			}
			return testResult{id: id, seed: cfg.Seed}, nil
		},
	}
}

// failTask fails permanently with a deterministic error.
func failTask(id, family string) engine.Task {
	return engine.Task{
		ID: id, Artifact: "test artifact", Description: "failing test task", Family: family,
		Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			return nil, errors.New("systematic failure")
		},
	}
}

func taskIDs(tasks []engine.Task) []string {
	ids := make([]string, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
	}
	return ids
}

// testWorker is one worker process stand-in: the fabric handler mounted
// under /fabric/ next to /readyz, exactly as the obs server mounts it,
// with a kill switch that simulates a crashed process (refuses new
// requests, severs live streams).
type testWorker struct {
	wk   *Worker
	srv  *httptest.Server
	down atomic.Bool
}

func newTestWorker(t *testing.T, tasks []engine.Task) *testWorker {
	t.Helper()
	byID := make(map[string]engine.Task, len(tasks))
	for _, task := range tasks {
		byID[task.ID] = task
	}
	tw := &testWorker{
		wk: &Worker{
			Program:  "fabrictest",
			BaseSeed: testSeed,
			Config:   map[string]any{"knob": "v"},
			Resolve: func(id string) (engine.Task, bool) {
				task, ok := byID[id]
				return task, ok
			},
			Runner:    &engine.Runner{},
			Heartbeat: 50 * time.Millisecond,
		},
	}
	mux := http.NewServeMux()
	mux.Handle("/fabric/", http.StripPrefix("/fabric", tw.wk.Handler()))
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	tw.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tw.down.Load() {
			http.Error(w, "worker down", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(tw.srv.Close)
	return tw
}

// kill simulates the worker process dying: every new request is refused
// and in-flight streams are severed mid-line.
func (tw *testWorker) kill() {
	tw.down.Store(true)
	tw.srv.CloseClientConnections()
}

func newCoordinator(urls []string, runID string) *Coordinator {
	return &Coordinator{
		Workers:       urls,
		Program:       "fabrictest",
		BaseSeed:      testSeed,
		Config:        map[string]any{"knob": "v"},
		RunID:         runID,
		Lease:         2 * time.Second,
		Local:         &engine.Runner{RunID: runID},
		LocalCfg:      engine.Config{Seed: testSeed},
		ProbeAttempts: 1,
		ProbeBackoff:  10 * time.Millisecond,
	}
}

// logCapture collects coordinator log lines for assertions.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) joined() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return strings.Join(lc.lines, "\n")
}

// render produces the merged run's full deterministic surface: the text
// report, the JSON export, and the archive manifest.
func render(t *testing.T, reports []engine.Report, runID string, ids []string) (string, string, string) {
	t.Helper()
	for i := range reports {
		reports[i].Wall = 0
	}
	var text, export bytes.Buffer
	engine.FormatText(&text, reports)
	if err := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: testSeed, RunID: runID}, reports); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	outs := make([]runstore.TaskOutcome, 0, len(reports))
	for _, rep := range reports {
		o := runstore.TaskOutcome{ID: rep.Task.ID, Seed: rep.Seed, Outcome: rep.Outcome(), Attempts: rep.Attempts}
		if rep.Err != nil {
			o.Error = rep.Err.Error()
		}
		outs = append(outs, o)
	}
	id := runstore.Identity{Program: "fabrictest", BaseSeed: testSeed, Tasks: ids, Config: map[string]any{"knob": "v"}}
	man, err := json.MarshalIndent(runstore.NewManifest(id, outs), "", "  ")
	if err != nil {
		t.Fatalf("marshaling manifest: %v", err)
	}
	return text.String(), export.String(), string(man)
}

// oracle runs the suite locally in-process — the byte-identity baseline
// every fabric configuration must reproduce.
func oracle(t *testing.T, tasks []engine.Task, runID string) (string, string, string) {
	t.Helper()
	r := &engine.Runner{RunID: runID}
	reports := r.RunSuite(context.Background(), tasks, engine.Config{Seed: testSeed})
	return render(t, reports, runID, taskIDs(tasks))
}

func suite(n int) []engine.Task {
	tasks := make([]engine.Task, 0, n)
	for i := 0; i < n; i++ {
		delay := time.Duration(0)
		if i == 1 {
			// One slow task so a heartbeat, not an outcome, renews its
			// lease at least once.
			delay = 300 * time.Millisecond
		}
		tasks = append(tasks, okTask(fmt.Sprintf("task%02d", i), delay))
	}
	return tasks
}

// TestMergedRunByteIdentical is the tentpole contract: the merged text
// report, JSON export and run manifest are byte-identical to a
// single-process run at worker counts 1 and 4.
func TestMergedRunByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tasks := suite(8)
			wantText, wantJSON, wantMan := oracle(t, tasks, "bsr-test")
			urls := make([]string, workers)
			for i := range urls {
				urls[i] = newTestWorker(t, tasks).srv.URL
			}
			var lc logCapture
			coord := newCoordinator(urls, "bsr-test")
			coord.Logf = lc.logf
			coord.OnDegrade = func(reason string) { t.Errorf("unexpected degradation: %s", reason) }
			reports, err := coord.Run(context.Background(), tasks)
			if err != nil {
				t.Fatalf("coordinator run: %v", err)
			}
			gotText, gotJSON, gotMan := render(t, reports, "bsr-test", taskIDs(tasks))
			if gotText != wantText {
				t.Errorf("merged text report differs from single-process run:\n--- got ---\n%s\n--- want ---\n%s", gotText, wantText)
			}
			if gotJSON != wantJSON {
				t.Errorf("merged JSON export differs from single-process run:\n--- got ---\n%s\n--- want ---\n%s", gotJSON, wantJSON)
			}
			if gotMan != wantMan {
				t.Errorf("merged manifest differs from single-process run:\n--- got ---\n%s\n--- want ---\n%s", gotMan, wantMan)
			}
			if log := lc.joined(); strings.Contains(log, "lease expired") {
				t.Errorf("healthy run saw a lease expiry:\n%s", log)
			}
		})
	}
}

// TestWorkerCrashMidRun kills one of two workers right after it streams
// its second outcome (the chaos crash class's worker-targeted mode) and
// requires the merged output to stay byte-identical: the dead worker's
// unsettled tasks are reassigned and re-run with task-derived seeds.
func TestWorkerCrashMidRun(t *testing.T) {
	tasks := suite(8)
	wantText, wantJSON, wantMan := oracle(t, tasks, "bsr-test")

	victim := newTestWorker(t, tasks)
	victim.wk.CrashAfter = 2
	victim.wk.CrashFn = victim.kill
	survivor := newTestWorker(t, tasks)

	coord := newCoordinator([]string{victim.srv.URL, survivor.srv.URL}, "bsr-test")
	coord.StealAfter = time.Minute // reassignment must come from the requeue, not stealing
	coord.DispatchBudget = 10
	coord.WorkerBudget = 1 // drop the dead worker on its first post-crash failure
	reports, err := coord.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	if !victim.down.Load() {
		t.Fatal("victim worker never crashed: CrashAfter did not fire")
	}
	gotText, gotJSON, gotMan := render(t, reports, "bsr-test", taskIDs(tasks))
	if gotText != wantText {
		t.Errorf("merged text report differs after worker crash:\n--- got ---\n%s\n--- want ---\n%s", gotText, wantText)
	}
	if gotJSON != wantJSON {
		t.Errorf("merged JSON export differs after worker crash")
	}
	if gotMan != wantMan {
		t.Errorf("merged manifest differs after worker crash:\n--- got ---\n%s\n--- want ---\n%s", gotMan, wantMan)
	}
}

// TestLeaseExpiryReassigns points the coordinator at one worker that
// accepts assignments and then goes silent (no heartbeats, no outcomes)
// plus one healthy worker: the silent worker's lease must expire and
// every task must still settle byte-identically via the healthy one.
func TestLeaseExpiryReassigns(t *testing.T) {
	tasks := suite(6)
	wantText, wantJSON, _ := oracle(t, tasks, "bsr-test")

	// The dead-air worker: 200 OK, then silence until the coordinator
	// hangs up.
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc(RunPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done()
	})
	deadAir := httptest.NewServer(mux)
	defer deadAir.Close()
	healthy := newTestWorker(t, tasks)

	var lc logCapture
	coord := newCoordinator([]string{deadAir.URL, healthy.srv.URL}, "bsr-test")
	coord.Lease = 150 * time.Millisecond
	coord.DispatchBudget = 20
	coord.WorkerBudget = 20 // keep probing the silent worker; progress must come from reassignment
	coord.Logf = lc.logf
	healthy.wk.Heartbeat = 25 * time.Millisecond
	reports, err := coord.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	gotText, gotJSON, _ := render(t, reports, "bsr-test", taskIDs(tasks))
	if gotText != wantText {
		t.Errorf("merged text report differs under lease expiry:\n--- got ---\n%s\n--- want ---\n%s", gotText, wantText)
	}
	if gotJSON != wantJSON {
		t.Errorf("merged JSON export differs under lease expiry")
	}
	if log := lc.joined(); !strings.Contains(log, "lease expired") {
		t.Errorf("coordinator never reported a lease expiry:\n%s", log)
	}
}

// TestStartupDegradation: no worker reachable at startup degrades to
// local in-process execution with a logged degradation event, and the
// local run is (trivially but importantly) byte-identical.
func TestStartupDegradation(t *testing.T) {
	tasks := suite(4)
	wantText, wantJSON, _ := oracle(t, tasks, "bsr-test")

	var degraded atomic.Value
	coord := newCoordinator([]string{"http://127.0.0.1:1", "http://127.0.0.1:2"}, "bsr-test")
	coord.OnDegrade = func(reason string) { degraded.Store(reason) }
	reports, err := coord.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	reason, _ := degraded.Load().(string)
	if !strings.Contains(reason, "no reachable workers") {
		t.Errorf("degradation reason = %q, want it to mention no reachable workers", reason)
	}
	gotText, gotJSON, _ := render(t, reports, "bsr-test", taskIDs(tasks))
	if gotText != wantText {
		t.Errorf("degraded-local text report differs:\n--- got ---\n%s\n--- want ---\n%s", gotText, wantText)
	}
	if gotJSON != wantJSON {
		t.Errorf("degraded-local JSON export differs")
	}
}

// TestTakeRefusesTrippedFamily pins pool-wide breaker propagation at
// the dispatch gate: once a streamed failure from any worker trips a
// family, take() refuses the family's not-yet-dispatched tasks with the
// engine's skipped-breaker report instead of handing them to another
// worker.
func TestTakeRefusesTrippedFamily(t *testing.T) {
	tasks := []engine.Task{failTask("bad1", "bad"), okTask("bad2", 0), okTask("good1", 0)}
	tasks[1].Family = "bad"
	tasks[2].Family = "good"

	c := newCoordinator([]string{"http://unused:1"}, "bsr-test")
	c.Breakers = engine.NewBreakerSet(1)
	c.states = make(map[string]*taskState, len(tasks))
	for _, task := range tasks {
		c.states[task.ID] = &taskState{task: task}
		c.order = append(c.order, task.ID)
	}

	// A failure streamed by some worker settles and trips the family.
	c.settle(campaign.TaskRecord{ID: "bad1", Seed: 1, Outcome: "error", Error: "systematic failure", Attempts: 1})

	batch := c.take()
	if len(batch) != 1 || batch[0].task.ID != "good1" {
		ids := make([]string, len(batch))
		for i, st := range batch {
			ids[i] = st.task.ID
		}
		t.Fatalf("take() = %v, want only good1 (bad family refused)", ids)
	}
	st := c.states["bad2"]
	if !st.settled {
		t.Fatal("bad2 not settled by breaker refusal")
	}
	if got := st.rep.Outcome(); got != "skipped-open-breaker" {
		t.Errorf("bad2 outcome = %q, want skipped-open-breaker", got)
	}
	if !errors.Is(st.rep.Err, engine.ErrBreakerOpen) {
		t.Errorf("bad2 error = %v, want ErrBreakerOpen", st.rep.Err)
	}
	if want := engine.DeriveSeed(testSeed, "bad2"); st.rep.Seed != want {
		t.Errorf("bad2 refusal seed = %d, want derived %d (byte-identity with a local run's skip)", st.rep.Seed, want)
	}

	// A requeued task re-enters admission: the release resets the
	// one-time admission decision so the next take re-checks the
	// breaker.
	st2 := &taskState{task: tasks[1], copies: 1, admitted: true}
	c.requeue([]*taskState{st2}, nil)
	if st2.admitted {
		t.Error("requeue did not reset admission for a released task")
	}
}

// TestBreakerPropagation end-to-end: the only worker fails a family
// task and crashes; the family's remaining tasks — re-run through the
// degraded local path that shares the coordinator's breaker set — must
// be refused, while the other family still completes.
func TestBreakerPropagation(t *testing.T) {
	tasks := []engine.Task{
		failTask("bad1", "bad"), okTask("bad2", 0), okTask("bad3", 0), okTask("good1", 0),
	}
	tasks[1].Family = "bad"
	tasks[2].Family = "bad"
	tasks[3].Family = "good"

	victim := newTestWorker(t, tasks)
	victim.wk.CrashAfter = 1 // crash right after streaming bad1's failure
	victim.wk.CrashFn = victim.kill

	coord := newCoordinator([]string{victim.srv.URL}, "bsr-test")
	coord.Breakers = engine.NewBreakerSet(1)
	coord.Local.Breakers = coord.Breakers // one central set, shared with degraded-local execution
	coord.StealAfter = time.Minute
	coord.WorkerBudget = 1
	reports, err := coord.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	byID := make(map[string]engine.Report, len(reports))
	for _, rep := range reports {
		byID[rep.Task.ID] = rep
	}
	if got := byID["bad1"].Outcome(); got != "error" {
		t.Errorf("bad1 outcome = %q, want error", got)
	}
	for _, id := range []string{"bad2", "bad3"} {
		rep := byID[id]
		if got := rep.Outcome(); got != "skipped-open-breaker" {
			t.Errorf("%s outcome = %q, want skipped-open-breaker", id, got)
			continue
		}
		if !errors.Is(rep.Err, engine.ErrBreakerOpen) {
			t.Errorf("%s error = %v, want ErrBreakerOpen", id, rep.Err)
		}
	}
	if got := runstore.CanonicalOutcome(byID["good1"].Outcome(), byID["good1"].Attempts); got != "ok" {
		t.Errorf("good1 canonical outcome = %q, want ok (other families must keep running)", got)
	}
}

// TestWorkerRefusesForeignAssignment pins the 409 identity check: an
// assignment whose identity basis disagrees with the worker's flags is
// refused with a message naming both sides, mirroring campaign.Resume's
// journal-header refusal.
func TestWorkerRefusesForeignAssignment(t *testing.T) {
	tasks := suite(2)
	tw := newTestWorker(t, tasks)

	post := func(t *testing.T, a Assignment) (int, string) {
		t.Helper()
		body, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("marshaling assignment: %v", err)
		}
		resp, err := http.Post(tw.srv.URL+RunPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		return resp.StatusCode, msg.String()
	}

	good := Assignment{
		Schema: Schema, Program: "fabrictest", BaseSeed: testSeed,
		Config: map[string]any{"knob": "v"}, Tasks: taskIDs(tasks), LeaseMS: 2000,
	}

	badSeed := good
	badSeed.BaseSeed = testSeed + 1
	if code, msg := post(t, badSeed); code != http.StatusConflict || !strings.Contains(msg, "-seed 43") || !strings.Contains(msg, "42") {
		t.Errorf("foreign seed: status %d, body %q; want 409 naming both seeds", code, msg)
	}

	badCfg := good
	badCfg.Config = map[string]any{"knob": "other"}
	if code, msg := post(t, badCfg); code != http.StatusConflict || !strings.Contains(msg, "config") {
		t.Errorf("foreign config: status %d, body %q; want 409 naming the config", code, msg)
	}

	badProg := good
	badProg.Program = "experiments"
	if code, _ := post(t, badProg); code != http.StatusConflict {
		t.Errorf("foreign program: status %d, want 409", code)
	}

	unknown := good
	unknown.Tasks = []string{"no-such-task"}
	if code, msg := post(t, unknown); code != http.StatusBadRequest || !strings.Contains(msg, "no-such-task") {
		t.Errorf("unknown task: status %d, body %q; want 400 naming the task", code, msg)
	}

	if code, _ := post(t, good); code != http.StatusOK {
		t.Errorf("matching assignment: status %d, want 200", code)
	}
}

// TestCampaignCrashResume runs a checkpointed distributed campaign,
// crashes the coordinator at its chaos crash point (after 3 journaled
// outcomes), resumes from the journal, and requires the final merged
// output to be byte-identical to an uninterrupted single-process run.
func TestCampaignCrashResume(t *testing.T) {
	tasks := suite(8)
	ids := taskIDs(tasks)
	wantText, wantJSON, wantMan := oracle(t, tasks, "bsr-test")

	path := filepath.Join(t.TempDir(), "campaign.journal")
	header := campaign.Header{RunID: "bsr-test", Program: "fabrictest", BaseSeed: testSeed, Tasks: ids}
	camp, err := campaign.New(path, header)
	if err != nil {
		t.Fatalf("creating campaign: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	camp.CrashAfter = 3
	camp.CrashFn = cancel // the non-exiting test stand-in for os.Exit(3)

	w1, w2 := newTestWorker(t, tasks), newTestWorker(t, tasks)
	coord := newCoordinator([]string{w1.srv.URL, w2.srv.URL}, "bsr-test")
	coord.Campaign = camp
	if _, err := coord.Run(ctx, tasks); err != nil {
		t.Fatalf("first (crashing) coordinator run: %v", err)
	}
	if err := camp.Journal.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}

	resumed, err := campaign.Resume(path, header)
	if err != nil {
		t.Fatalf("resuming campaign: %v", err)
	}
	if len(resumed.Replayed) < 3 {
		t.Fatalf("resumed campaign replays %d records, want >= 3 (crash point)", len(resumed.Replayed))
	}
	coord2 := newCoordinator([]string{w1.srv.URL, w2.srv.URL}, "bsr-test")
	coord2.Campaign = resumed
	reports, err := coord2.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("resumed coordinator run: %v", err)
	}
	gotText, gotJSON, gotMan := render(t, reports, "bsr-test", ids)
	if gotText != wantText {
		t.Errorf("crash-resumed merged text differs:\n--- got ---\n%s\n--- want ---\n%s", gotText, wantText)
	}
	if gotJSON != wantJSON {
		t.Errorf("crash-resumed merged JSON export differs")
	}
	if gotMan != wantMan {
		t.Errorf("crash-resumed merged manifest differs:\n--- got ---\n%s\n--- want ---\n%s", gotMan, wantMan)
	}
}

// TestMidRunTotalWorkerLoss kills every worker mid-run: the coordinator
// must degrade the unsettled remainder to local execution (with a
// degradation event) and still merge byte-identically.
func TestMidRunTotalWorkerLoss(t *testing.T) {
	tasks := suite(6)
	wantText, wantJSON, _ := oracle(t, tasks, "bsr-test")

	w1 := newTestWorker(t, tasks)
	w1.wk.CrashAfter = 2
	w1.wk.CrashFn = w1.kill

	var degraded atomic.Value
	coord := newCoordinator([]string{w1.srv.URL}, "bsr-test")
	coord.StealAfter = time.Minute
	coord.WorkerBudget = 1
	coord.OnDegrade = func(reason string) { degraded.Store(reason) }
	reports, err := coord.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	reason, _ := degraded.Load().(string)
	if !strings.Contains(reason, "all workers lost") {
		t.Errorf("degradation reason = %q, want it to mention all workers lost", reason)
	}
	gotText, gotJSON, _ := render(t, reports, "bsr-test", taskIDs(tasks))
	if gotText != wantText {
		t.Errorf("total-loss merged text differs:\n--- got ---\n%s\n--- want ---\n%s", gotText, wantText)
	}
	if gotJSON != wantJSON {
		t.Errorf("total-loss merged JSON export differs")
	}
}

// TestRequeueReasonClassification pins the structured reason vocabulary
// requeue logs with: a clean stream end, a lease expiry (matched through
// error wrapping), and everything else.
func TestRequeueReasonClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "worker-closed"},
		{ErrLeaseExpired, "lease-expired"},
		{fmt.Errorf("fabric: worker w: %w after 1s of silence", ErrLeaseExpired), "lease-expired"},
		{errors.New("connection refused"), "dispatch-failed"},
	}
	for _, tc := range cases {
		if got := requeueReason(tc.err); got != tc.want {
			t.Errorf("requeueReason(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestRequeueLogsStructuredReason: every reassignment emits a per-task
// log line carrying the classified reason and the attempt budget, so an
// operator can reconstruct where (and why) a task bounced.
func TestRequeueLogsStructuredReason(t *testing.T) {
	var lc logCapture
	c := newCoordinator(nil, "bsr-requeue-log")
	c.Logf = lc.logf
	c.DispatchBudget = 5
	mk := func(id string) *taskState {
		return &taskState{task: engine.Task{ID: id}, copies: 1}
	}
	c.requeue([]*taskState{mk("a")}, nil)
	c.requeue([]*taskState{mk("b")}, fmt.Errorf("fabric: worker w: %w after 1s of silence", ErrLeaseExpired))
	c.requeue([]*taskState{mk("c")}, errors.New("read tcp: connection reset"))
	out := lc.joined()
	for _, want := range []string{
		"fabric: task a requeued: reason=worker-closed attempts=0/5",
		"fabric: task b requeued: reason=lease-expired attempts=1/5",
		"fabric: task c requeued: reason=dispatch-failed attempts=1/5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q; got:\n%s", want, out)
		}
	}
}
