package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"branchscope/internal/campaign"
	"branchscope/internal/engine"
)

// Coordinator defaults.
const (
	// DefaultLease is the longest a worker may go without streaming a
	// frame before its assignment is abandoned and reassigned.
	DefaultLease = 30 * time.Second
	// DefaultDispatchBudget is how many dispatch attempts a task gets
	// across all workers before it settles as a permanent failure.
	DefaultDispatchBudget = 3
	// DefaultWorkerBudget is how many consecutive dispatch failures a
	// worker survives before it is dropped even though its /readyz
	// probe keeps passing (every failure is probed; probe failure drops
	// the worker immediately).
	DefaultWorkerBudget = 3
	// stealCopies caps concurrent copies of one task under work
	// stealing: the original plus one thief. First settle wins; the
	// duplicate is byte-identical (task-derived seeds), so the race is
	// harmless by construction.
	stealCopies = 2
	// failBackoff/maxFailBackoff bound the pause a probe-passing worker
	// takes after a failed dispatch before re-taking work (doubling,
	// reset on success).
	failBackoff    = 50 * time.Millisecond
	maxFailBackoff = time.Second
)

// ErrLeaseExpired marks a dispatch that ended because the worker's
// lease timed out. requeue classifies errors wrapping it as
// reason=lease-expired in its per-task reassignment log lines.
var ErrLeaseExpired = errors.New("lease expired")

// requeueReason classifies why a batch came back: a nil dispatch error
// is a clean stream end without an outcome (worker shut down
// mid-batch), a lease expiry is distinguished from every other
// transport or protocol failure.
func requeueReason(dispatchErr error) string {
	switch {
	case dispatchErr == nil:
		return "worker-closed"
	case errors.Is(dispatchErr, ErrLeaseExpired):
		return "lease-expired"
	default:
		return "dispatch-failed"
	}
}

// Coordinator shards a campaign's task list across worker processes
// and merges their streamed outcomes into reports byte-identical to a
// single-process run. See the package comment for the protocol and
// DESIGN §3.20 for the full semantics.
type Coordinator struct {
	// Workers are the worker base URLs ("http://127.0.0.1:9001"). The
	// fabric endpoints hang off each worker's obs address.
	Workers []string
	// Client performs the HTTP requests; nil uses a client with no
	// overall timeout (streams are bounded by the lease, not a request
	// deadline).
	Client *http.Client

	// Program/BaseSeed/Quick/Config are the run identity basis sent in
	// every assignment for the worker-side mismatch check.
	Program  string
	BaseSeed uint64
	Quick    bool
	Config   map[string]any
	// RunID is the run's causal identity, stamped into merged reports.
	RunID string

	// Lease bounds worker silence (0 = DefaultLease). Heartbeats and
	// outcomes both renew it.
	Lease time.Duration
	// StealAfter is how long a task may be in flight before an idle
	// worker duplicates it (work stealing); 0 = half the lease.
	StealAfter time.Duration
	// DispatchBudget / WorkerBudget override the defaults above; 0
	// means default.
	DispatchBudget int
	WorkerBudget   int
	// ProbeAttempts/ProbeBackoff shape the /readyz health probe a
	// failing worker must pass: up to ProbeAttempts GETs (0 = 3) with
	// doubling backoff starting at ProbeBackoff (0 = 100ms, capped 1s).
	ProbeAttempts int
	ProbeBackoff  time.Duration

	// Breakers, when non-nil, is the coordinator-central circuit
	// breaker: tasks are admitted here before dispatch and outcomes
	// observed here on settle, so a family tripping on one worker
	// propagates to all workers.
	Breakers *engine.BreakerSet

	// Campaign, when non-nil, journals every settled outcome (and
	// replays the journal's completed records on resume) exactly as a
	// local campaign.Run would, including the chaos crash point when
	// the append count reaches Campaign.CrashAfter.
	Campaign *campaign.Campaign

	// Local runs tasks in-process when the fabric degrades: at start
	// when no worker is reachable, or mid-run when every worker has
	// been dropped. Required.
	Local *engine.Runner
	// LocalCfg is the engine config for degraded local execution.
	LocalCfg engine.Config

	// OnDone observes each merged report as its task settles (settle
	// order, concurrently across worker streams) — progress reporting,
	// not part of the deterministic output.
	OnDone func(engine.Report)
	// OnDegrade observes a degradation to local execution with a
	// human-readable reason.
	OnDegrade func(reason string)
	// Logf receives coordinator progress lines; nil discards them.
	Logf func(format string, args ...any)

	mu         sync.Mutex
	states     map[string]*taskState
	order      []string
	journalErr error
}

// taskState is the coordinator-side life of one task.
type taskState struct {
	task engine.Task
	// copies counts in-flight dispatch copies (work stealing allows up
	// to stealCopies).
	copies int
	// attempts counts dispatch attempts that ended without a settle —
	// the permanent-failure budget's clock.
	attempts int
	// admitted records that the breaker admission decision was taken
	// (exactly once per task, like RunTask's).
	admitted bool
	// firstDispatch anchors the work-stealing age check.
	firstDispatch time.Time
	settled       bool
	rep           engine.Report
	lastErr       error
}

// Run executes the suite across the worker pool and returns one merged
// report per task in task order — the same contract as campaign.Run.
// The returned error reports journal failures; per-task failures live
// in the reports.
func (c *Coordinator) Run(ctx context.Context, tasks []engine.Task) ([]engine.Report, error) {
	healthy := c.probeAll(ctx)
	if len(healthy) == 0 {
		reason := fmt.Sprintf("fabric: no reachable workers among %d configured; degrading to local in-process execution", len(c.Workers))
		c.degrade(reason)
		if c.Campaign != nil {
			// Delegate wholesale: campaign.Run owns replay, journaling
			// and the crash point, so a degraded coordinator is exactly
			// a single-process campaign.
			local := *c.Local
			local.OnDone = c.chainLocal(c.Local.OnDone)
			return c.Campaign.Run(ctx, &local, tasks, c.LocalCfg)
		}
		local := *c.Local
		local.OnDone = c.chainLocal(c.Local.OnDone)
		return local.RunSuite(ctx, tasks, c.LocalCfg), nil
	}

	c.mu.Lock()
	c.states = make(map[string]*taskState, len(tasks))
	c.order = c.order[:0]
	replayed := make(map[string]campaign.TaskRecord)
	if c.Campaign != nil {
		for _, rec := range c.Campaign.Replayed {
			if rec.Completed() {
				replayed[rec.ID] = rec
			}
		}
	}
	for _, t := range tasks {
		c.states[t.ID] = &taskState{task: t}
		c.order = append(c.order, t.ID)
	}
	c.mu.Unlock()

	// Replay first, in task order: observers see the recovered history
	// before any fresh progress, exactly like campaign.Run. Replayed
	// records are not re-journaled and don't advance the crash clock.
	for _, t := range tasks {
		rec, ok := replayed[t.ID]
		if !ok {
			continue
		}
		rep := campaign.ReplayReport(t, rec)
		rep.RunID = c.RunID
		c.mu.Lock()
		st := c.states[t.ID]
		st.settled = true
		st.rep = rep
		c.mu.Unlock()
		if c.OnDone != nil {
			c.OnDone(rep)
		}
	}

	var wg sync.WaitGroup
	for _, w := range healthy {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			c.workerLoop(ctx, url)
		}(w)
	}
	wg.Wait()

	// Whatever is still unsettled survived every worker (total worker
	// loss, or cancellation): degrade the remainder to local execution
	// so the run still completes — the local re-run settles with the
	// same bytes a worker would have streamed.
	if rest := c.unsettledTasks(); len(rest) > 0 && ctx.Err() == nil {
		c.degrade(fmt.Sprintf("fabric: all workers lost with %d task(s) unsettled; degrading to local in-process execution", len(rest)))
		local := *c.Local
		local.OnDone = c.chainLocal(c.Local.OnDone)
		local.RunSuite(ctx, rest, c.LocalCfg)
	}

	// Tasks never settled (cancelled before dispatch and before the
	// local fallback) get the runner's cancellation report so the
	// merged slice is total.
	reports := make([]engine.Report, 0, len(tasks))
	c.mu.Lock()
	journalErr := c.journalErr
	for _, id := range c.order {
		st := c.states[id]
		if !st.settled {
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			st.rep = engine.Report{
				Task:  st.task,
				Seed:  engine.DeriveSeed(c.BaseSeed, id),
				Err:   fmt.Errorf("engine: task %s: %w", id, err),
				RunID: c.RunID,
			}
		}
		reports = append(reports, st.rep)
	}
	c.mu.Unlock()
	return reports, journalErr
}

// chainLocal wraps the local runner's OnDone so degraded in-process
// outcomes flow through the same settle path as streamed ones
// (journal, breaker observation, merged-report bookkeeping) — minus
// double observation: the local runner already observed its breakers,
// so settleLocal skips Observe.
func (c *Coordinator) chainLocal(orig func(engine.Report)) func(engine.Report) {
	return func(rep engine.Report) {
		if orig != nil {
			orig(rep)
		}
		c.settleLocal(rep)
	}
}

// settleLocal records a locally-run report in the merged result set.
// When the coordinator delegated wholesale to campaign.Run (startup
// degradation) states is nil and campaign.Run owns the journal; mid-run
// degradation journals like a streamed settle. Either way the local
// runner's own OnDone has already notified observers, so — unlike
// settle — no OnDone fires here.
func (c *Coordinator) settleLocal(rep engine.Report) {
	c.mu.Lock()
	if c.states == nil {
		c.mu.Unlock()
		return
	}
	st, ok := c.states[rep.Task.ID]
	if !ok || st.settled {
		c.mu.Unlock()
		return
	}
	rep.Wall = 0
	rep.RunID = c.RunID
	st.settled = true
	st.rep = rep
	c.mu.Unlock()
	c.journal(campaign.RecordOf(rep))
}

// workerLoop drives one worker: pull a batch, dispatch it, settle the
// streamed outcomes, requeue what didn't settle; steal a straggler
// when idle; drop the worker on a transport failure that a /readyz
// probe cannot clear, or after WorkerBudget failures that can.
func (c *Coordinator) workerLoop(ctx context.Context, url string) {
	fails := 0
	backoff := failBackoff
	for ctx.Err() == nil {
		batch := c.take()
		if len(batch) == 0 {
			if c.done() {
				return
			}
			batch = c.steal()
			if len(batch) == 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(10 * time.Millisecond):
				}
				continue
			}
		}
		err := c.dispatch(ctx, url, batch)
		requeued := c.requeue(batch, err)
		if err != nil && ctx.Err() == nil {
			fails++
			c.logf("fabric: worker %s: dispatch failed (%d task(s) requeued): %v", url, requeued, err)
			// Probe on every failure, not after a strike count: a
			// SIGKILLed worker must leave the pool on its first failed
			// dispatch. Otherwise this loop hot-spins re-taking its own
			// requeued tasks against a dead socket, burning their
			// dispatch budgets before a busy healthy worker can claim
			// them.
			if !c.probe(ctx, url) {
				c.logf("fabric: worker %s: dropped after %d consecutive failure(s) and a failed /readyz probe", url, fails)
				return
			}
			if fails >= c.workerBudget() {
				c.logf("fabric: worker %s: dropped after %d consecutive dispatch failures despite passing /readyz", url, fails)
				return
			}
			// Alive but failing (a dead-air stream, a mid-batch reset):
			// back off before re-taking so idle healthy workers claim
			// the requeued tasks first.
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > maxFailBackoff {
				backoff = maxFailBackoff
			}
			continue
		}
		fails = 0
		backoff = failBackoff
	}
}

// take claims the next batch of never-dispatched tasks for a worker,
// deciding breaker admission (exactly once per task) on the way: a
// refused task settles immediately with the engine's skipped-breaker
// report, byte-identical to a single-process run's.
func (c *Coordinator) take() []*taskState {
	c.mu.Lock()
	chunk := c.chunkSize()
	var batch []*taskState
	var refused []*taskState
	for _, id := range c.order {
		st := c.states[id]
		if st.settled || st.copies > 0 {
			continue
		}
		if !st.admitted {
			st.admitted = true
			if !c.Breakers.Admit(st.task.BreakerFamily()) {
				st.settled = true
				st.rep = engine.SkippedBreakerReport(st.task, engine.DeriveSeed(c.BaseSeed, id), c.RunID)
				refused = append(refused, st)
				continue
			}
		}
		st.copies++
		if st.firstDispatch.IsZero() {
			st.firstDispatch = time.Now()
		}
		batch = append(batch, st)
		if len(batch) >= chunk {
			break
		}
	}
	c.mu.Unlock()
	// Settle refusals outside the lock: journal + OnDone, but no
	// breaker Observe — RunTask doesn't observe skipped tasks either.
	for _, st := range refused {
		c.journal(campaign.RecordOf(st.rep))
		if c.OnDone != nil {
			c.OnDone(st.rep)
		}
	}
	return batch
}

// chunkSize balances initial sharding: roughly an even split of the
// remaining work across the pool, at least one. Called under mu.
func (c *Coordinator) chunkSize() int {
	unsettled := 0
	for _, st := range c.states {
		if !st.settled {
			unsettled++
		}
	}
	n := len(c.Workers)
	if n < 1 {
		n = 1
	}
	chunk := (unsettled + n - 1) / n
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// steal duplicates the longest-in-flight unsettled task for an idle
// worker, if it has been running past StealAfter and is not already
// duplicated. First settle wins; the loser's bytes are identical.
func (c *Coordinator) steal() []*taskState {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := time.Now().Add(-c.stealAfter())
	var oldest *taskState
	for _, id := range c.order {
		st := c.states[id]
		if st.settled || st.copies == 0 || st.copies >= stealCopies {
			continue
		}
		if st.firstDispatch.After(cutoff) {
			continue
		}
		if oldest == nil || st.firstDispatch.Before(oldest.firstDispatch) {
			oldest = st
		}
	}
	if oldest == nil {
		return nil
	}
	oldest.copies++
	c.logf("fabric: task %s duplicated: reason=stolen in_flight=%s",
		oldest.task.ID, time.Since(oldest.firstDispatch).Round(time.Millisecond))
	return []*taskState{oldest}
}

// requeue releases a batch's unsettled tasks after a dispatch ends.
// On a failed dispatch each unsettled task is charged one attempt;
// tasks exhausting the dispatch budget settle as permanent failures
// and their outcome feeds the breaker set like any other permanent
// failure — which is how a poison task that keeps killing workers
// trips its family's breaker for the whole pool.
func (c *Coordinator) requeue(batch []*taskState, dispatchErr error) int {
	reason := requeueReason(dispatchErr)
	c.mu.Lock()
	var exhausted []*taskState
	var released []string
	requeued := 0
	for _, st := range batch {
		if st.settled {
			continue
		}
		if st.copies > 0 {
			st.copies--
		}
		// A released task re-enters breaker admission on its next take:
		// if its family tripped while it was in flight (a poison batch
		// killing a worker), the reassignment is refused pool-wide
		// instead of re-running a family that is demonstrably broken.
		if st.copies == 0 {
			st.admitted = false
		}
		if dispatchErr == nil {
			// Clean stream end without an outcome (worker shut down
			// mid-batch): requeue without charging the budget.
			requeued++
			released = append(released, fmt.Sprintf("fabric: task %s requeued: reason=%s attempts=%d/%d",
				st.task.ID, reason, st.attempts, c.dispatchBudget()))
			continue
		}
		st.attempts++
		st.lastErr = dispatchErr
		if st.attempts >= c.dispatchBudget() && st.copies == 0 {
			st.settled = true
			st.rep = engine.Report{
				Task:     st.task,
				Seed:     engine.DeriveSeed(c.BaseSeed, st.task.ID),
				Attempts: st.attempts,
				RunID:    c.RunID,
				Err: fmt.Errorf("fabric: task %s: no worker completed it after %d dispatch attempts: %w",
					st.task.ID, st.attempts, st.lastErr),
			}
			exhausted = append(exhausted, st)
			continue
		}
		requeued++
		released = append(released, fmt.Sprintf("fabric: task %s requeued: reason=%s attempts=%d/%d",
			st.task.ID, reason, st.attempts, c.dispatchBudget()))
	}
	c.mu.Unlock()
	// Every reassignment is logged with a structured reason so an
	// operator can tell lease expiries from transport failures from
	// clean worker shutdowns when reconstructing where a task bounced.
	for _, line := range released {
		c.logf("%s", line)
	}
	for _, st := range exhausted {
		c.Breakers.Observe(st.task.BreakerFamily(), st.rep.Outcome())
		c.journal(campaign.RecordOf(st.rep))
		if c.OnDone != nil {
			c.OnDone(st.rep)
		}
	}
	return requeued
}

// dispatch POSTs one assignment and consumes its outcome stream under
// the lease: any frame (heartbeat or outcome) renews the timer; a
// lease expiry cancels the request, which surfaces here as a read
// error and sends the batch back through requeue.
func (c *Coordinator) dispatch(ctx context.Context, url string, batch []*taskState) error {
	ids := make([]string, len(batch))
	for i, st := range batch {
		ids[i] = st.task.ID
	}
	asn := Assignment{
		Schema:   Schema,
		RunID:    c.RunID,
		Program:  c.Program,
		BaseSeed: c.BaseSeed,
		Quick:    c.Quick,
		Config:   c.Config,
		Tasks:    ids,
		LeaseMS:  c.lease().Milliseconds(),
	}
	body, err := json.Marshal(asn)
	if err != nil {
		return fmt.Errorf("fabric: encoding assignment: %w", err)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url+RunPath, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fabric: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return fmt.Errorf("fabric: dispatch to %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fabric: worker %s refused assignment: %s (%s)", url, bytes.TrimSpace(msg), resp.Status)
	}

	// The lease timer: reset on every frame, cancel the stream when it
	// fires. Renewal is piggybacked on the stream itself — heartbeats
	// while a task runs, outcome records as tasks finish.
	var expired atomic.Bool
	lease := time.AfterFunc(c.lease(), func() {
		expired.Store(true)
		cancel()
	})
	defer lease.Stop()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 32<<20)
	for sc.Scan() {
		lease.Reset(c.lease())
		kind, payload, err := campaign.ParseFrame(sc.Bytes())
		if err != nil {
			return fmt.Errorf("fabric: worker %s: %w", url, err)
		}
		switch kind {
		case KindLease:
			// Renewal only; payload names the still-running task.
		case KindTask:
			var rec campaign.TaskRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("fabric: worker %s: bad task record: %w", url, err)
			}
			c.settle(rec)
		default:
			return fmt.Errorf("fabric: worker %s: unknown frame kind %q", url, kind)
		}
	}
	if err := sc.Err(); err != nil {
		if expired.Load() {
			return fmt.Errorf("fabric: worker %s: %w after %s of silence", url, ErrLeaseExpired, c.lease())
		}
		return fmt.Errorf("fabric: worker %s: reading outcome stream: %w", url, err)
	}
	if expired.Load() {
		return fmt.Errorf("fabric: worker %s: %w after %s of silence", url, ErrLeaseExpired, c.lease())
	}
	return nil
}

// settle records one streamed outcome: first settle wins (a stolen
// duplicate arriving later is dropped — identical bytes, so nothing is
// lost), the record is journaled exactly as a local campaign would
// journal it, the breaker set observes the outcome, and the merged
// report is rebuilt through the replay path so its rendering is
// byte-identical to a single-process run's.
func (c *Coordinator) settle(rec campaign.TaskRecord) {
	c.mu.Lock()
	st, ok := c.states[rec.ID]
	if !ok || st.settled {
		c.mu.Unlock()
		return
	}
	st.settled = true
	rep := mergedReport(st.task, rec, c.RunID)
	st.rep = rep
	family := st.task.BreakerFamily()
	c.mu.Unlock()

	c.Breakers.Observe(family, rec.Outcome)
	c.journal(rec)
	if c.OnDone != nil {
		c.OnDone(rep)
	}
}

// mergedReport reconstructs a report from a streamed record. Completed
// records go through campaign.ReplayReport (checkpointed bytes
// verbatim); failed records rebuild the failure so FormatText and the
// JSON export render the worker's error exactly as a local run would.
func mergedReport(t engine.Task, rec campaign.TaskRecord, runID string) engine.Report {
	if rec.Completed() {
		rep := campaign.ReplayReport(t, rec)
		rep.RunID = runID
		return rep
	}
	return engine.Report{
		Task:           t,
		Seed:           rec.Seed,
		Attempts:       rec.Attempts,
		Err:            errors.New(rec.Error),
		Panicked:       rec.Outcome == "panic",
		Exhausted:      rec.Outcome == "exhausted",
		SkippedBreaker: rec.Outcome == "skipped-open-breaker",
		RunID:          runID,
	}
}

// journal appends a settled record to the campaign journal (when
// checkpointing) and fires the coordinator-targeted crash point when
// the append count reaches it — the fabric analog of campaign.Run's
// OnDone wrapper.
func (c *Coordinator) journal(rec campaign.TaskRecord) {
	if c.Campaign == nil {
		return
	}
	n, err := c.Campaign.Journal.Append(rec)
	if err != nil {
		c.logf("fabric: journaling %s: %v", rec.ID, err)
		c.mu.Lock()
		if c.journalErr == nil {
			c.journalErr = err
		}
		c.mu.Unlock()
	}
	if c.Campaign.CrashAfter > 0 && n >= c.Campaign.CrashAfter {
		c.Campaign.Crash()
	}
}

// probeAll health-checks the configured workers and returns the
// reachable ones.
func (c *Coordinator) probeAll(ctx context.Context) []string {
	var healthy []string
	for _, w := range c.Workers {
		if c.probe(ctx, w) {
			healthy = append(healthy, w)
		} else {
			c.logf("fabric: worker %s unreachable at startup", w)
		}
	}
	sort.Strings(healthy)
	return healthy
}

// probe GETs a worker's /readyz with capped doubling backoff.
func (c *Coordinator) probe(ctx context.Context, url string) bool {
	attempts := c.ProbeAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := c.ProbeBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return false
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > time.Second {
				backoff = time.Second
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
		if err != nil {
			return false
		}
		resp, err := c.client().Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true
		}
	}
	return false
}

// unsettledTasks returns the tasks still unsettled, in task order.
func (c *Coordinator) unsettledTasks() []engine.Task {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rest []engine.Task
	for _, id := range c.order {
		if st := c.states[id]; !st.settled {
			rest = append(rest, st.task)
		}
	}
	return rest
}

// done reports whether every task has settled.
func (c *Coordinator) done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.states {
		if !st.settled {
			return false
		}
	}
	return true
}

func (c *Coordinator) degrade(reason string) {
	c.logf("%s", reason)
	if c.OnDegrade != nil {
		c.OnDegrade(reason)
	}
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *Coordinator) lease() time.Duration {
	if c.Lease > 0 {
		return c.Lease
	}
	return DefaultLease
}

func (c *Coordinator) stealAfter() time.Duration {
	if c.StealAfter > 0 {
		return c.StealAfter
	}
	return c.lease() / 2
}

func (c *Coordinator) dispatchBudget() int {
	if c.DispatchBudget > 0 {
		return c.DispatchBudget
	}
	return DefaultDispatchBudget
}

func (c *Coordinator) workerBudget() int {
	if c.WorkerBudget > 0 {
		return c.WorkerBudget
	}
	return DefaultWorkerBudget
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
