package fabric

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"branchscope/internal/campaign"
	"branchscope/internal/engine"
)

// Worker executes assignments on behalf of a coordinator. Its identity
// fields mirror the coordinator's and an assignment whose identity
// basis disagrees is refused with 409 — running tasks under a foreign
// seed or config would splice unrelated results into the merged run,
// the same hazard campaign.Resume refuses on a journal header mismatch.
type Worker struct {
	// Program/BaseSeed/Quick/Config are this worker's identity basis,
	// built from its own flags (Config as runstore.Identity.Config
	// would record it).
	Program  string
	BaseSeed uint64
	Quick    bool
	Config   map[string]any

	// Resolve maps an assigned task ID to its runnable task. Unknown
	// IDs fail the whole assignment with 400 before any task runs.
	Resolve func(id string) (engine.Task, bool)
	// Runner executes the tasks. Its Breakers should be nil: circuit
	// breaking is coordinator-central so a family tripping on one
	// worker propagates to all (DESIGN §3.20).
	Runner *engine.Runner
	// RunCfg is the engine config tasks run under; its Seed is forced
	// to BaseSeed so execution can never drift from the verified
	// identity.
	RunCfg engine.Config

	// Heartbeat overrides the lease-renewal interval while a task is
	// still running; 0 derives a third of the assignment's lease.
	Heartbeat time.Duration

	// CrashAfter, when > 0, crashes the process right after that many
	// task outcomes have been streamed by this worker — the chaos crash
	// fault class's worker-targeted mode. The streamed-outcome counter
	// is the worker-side analog of the campaign journal's append
	// counter, and survives across assignments.
	CrashAfter int
	// CrashFn is the crash action; nil means os.Exit(CrashExitCode).
	CrashFn func()

	// Logf receives worker progress lines; nil discards them.
	Logf func(format string, args ...any)

	crashOnce sync.Once

	mu       sync.Mutex
	streamed int
}

// Handler returns the worker's fabric endpoint handler, to be mounted
// under the obs server's /fabric/ prefix (so the coordinator POSTs to
// RunPath on the worker's obs address).
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", wk.serveRun)
	return mux
}

// verify checks an assignment's identity basis against the worker's.
func (wk *Worker) verify(a Assignment) error {
	if a.Schema != Schema {
		return fmt.Errorf("fabric: assignment schema %q, this worker speaks %q", a.Schema, Schema)
	}
	if a.Program != wk.Program {
		return fmt.Errorf("fabric: assignment is for program %q, this worker runs %q", a.Program, wk.Program)
	}
	if a.BaseSeed != wk.BaseSeed {
		return fmt.Errorf("fabric: assignment derives task seeds from -seed %d, this worker from %d", a.BaseSeed, wk.BaseSeed)
	}
	if a.Quick != wk.Quick {
		return fmt.Errorf("fabric: assignment was built with quick=%v, this worker runs quick=%v", a.Quick, wk.Quick)
	}
	want, err := configJSON(a.Config)
	if err != nil {
		return err
	}
	got, err := configJSON(wk.Config)
	if err != nil {
		return err
	}
	if want != got {
		return fmt.Errorf("fabric: assignment config %s, this worker's is %s", want, got)
	}
	return nil
}

// serveRun handles one assignment: verify identity, run the tasks in
// order, stream each outcome back as a CRC-framed journal record, and
// keep the lease alive with heartbeat frames while a task is running.
func (wk *Worker) serveRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "fabric: POST only", http.StatusMethodNotAllowed)
		return
	}
	var a Assignment
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		http.Error(w, fmt.Sprintf("fabric: decoding assignment: %v", err), http.StatusBadRequest)
		return
	}
	if err := wk.verify(a); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	tasks := make([]engine.Task, 0, len(a.Tasks))
	for _, id := range a.Tasks {
		t, ok := wk.Resolve(id)
		if !ok {
			http.Error(w, fmt.Sprintf("fabric: unknown task %q", id), http.StatusBadRequest)
			return
		}
		tasks = append(tasks, t)
	}

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	sw := &streamWriter{w: w, f: flusher}

	cfg := wk.RunCfg
	cfg.Seed = wk.BaseSeed
	cfg.Quick = wk.Quick
	wk.logf("fabric: worker accepted %d task(s) for run %s", len(tasks), a.RunID)
	for _, t := range tasks {
		stop := wk.heartbeat(sw, t.ID, a.Lease())
		rep := wk.Runner.RunTask(r.Context(), t, cfg)
		stop()
		line, err := frameRecord(campaign.RecordOf(rep))
		if err != nil {
			wk.logf("fabric: worker: encoding %s outcome: %v", t.ID, err)
			return
		}
		if err := sw.writeLine(line); err != nil {
			// The coordinator hung up (lease expiry, shutdown); the
			// outcome is abandoned and the task will be reassigned —
			// harmless, because its re-run settles with identical bytes.
			wk.logf("fabric: worker: streaming %s outcome: %v", t.ID, err)
			return
		}
		wk.logf("fabric: worker streamed %s (%s)", t.ID, rep.Outcome())
		if n := wk.bumpStreamed(); wk.CrashAfter > 0 && n >= wk.CrashAfter {
			wk.crash()
		}
	}
}

// heartbeat streams lease-renewal frames for the named task until the
// returned stop function is called. Interval: Heartbeat, else a third
// of the lease, else off (an unleased assignment needs no renewal).
func (wk *Worker) heartbeat(sw *streamWriter, taskID string, lease time.Duration) (stop func()) {
	interval := wk.Heartbeat
	if interval <= 0 {
		interval = lease / 3
	}
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				line, err := campaign.Frame(KindLease, Heartbeat{Task: taskID})
				if err != nil {
					return
				}
				if err := sw.writeLine(line); err != nil {
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// bumpStreamed advances the streamed-outcome counter (the worker-side
// crash-point clock).
func (wk *Worker) bumpStreamed() int {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	wk.streamed++
	return wk.streamed
}

// crash fires the worker crash point exactly once.
func (wk *Worker) crash() {
	wk.crashOnce.Do(func() {
		if wk.CrashFn != nil {
			wk.CrashFn()
			return
		}
		os.Exit(campaign.CrashExitCode)
	})
}

func (wk *Worker) logf(format string, args ...any) {
	if wk.Logf != nil {
		wk.Logf(format, args...)
	}
}

// streamWriter serializes frame writes from the task loop and the
// heartbeat goroutine onto one response stream, flushing per frame so
// the coordinator's lease timer sees every line promptly.
type streamWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	f  http.Flusher
}

func (s *streamWriter) writeLine(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(line); err != nil {
		return err
	}
	if s.f != nil {
		s.f.Flush()
	}
	return nil
}
