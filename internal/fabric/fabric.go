// Package fabric is the fault-tolerant distributed campaign layer: a
// coordinator process shards a campaign's task list across N worker
// processes over HTTP, and merges the streamed outcomes into reports
// that are byte-identical to a single-process run — at any worker
// count, and under any worker kill schedule.
//
// Why this works at all: PR 2 made every task's randomness derive from
// (base seed, task ID) alone, PR 5 made task outcomes serializable,
// replayable journal records, and PR 8 pinned the run's causal
// identity. A task is therefore location-independent — running it on
// worker 3, worker 7, or the coordinator itself after every worker
// died produces the same record bytes — and the coordinator is free to
// reassign, duplicate ("work-steal"), or locally re-run tasks without
// ever perturbing the merged result.
//
// Wire protocol (schema branchscope.fabric/v1, DESIGN §3.20). The
// coordinator POSTs an Assignment to a worker's /fabric/run endpoint:
// the run identity basis (program, base seed, quick, result-shaping
// config), a slice of task IDs, and a lease duration. The worker
// refuses an assignment whose identity basis disagrees with its own
// flags (mirroring campaign.Resume's refusal of a foreign journal) and
// otherwise answers with a stream of CRC-framed JSONL lines — the
// campaign journal's exact framing reused as the wire format:
//
//	{"sum":"crc32:<8 hex>","task":{...campaign.TaskRecord...}}
//	{"sum":"crc32:<8 hex>","lease":{"task":"fig6"}}
//
// "task" frames are finished outcomes, byte-for-byte what a local
// campaign would journal; "lease" frames are heartbeats emitted while
// a task is still running. Both renew the assignment's lease — renewal
// is piggybacked on the outcome stream, there is no separate lease
// endpoint. A worker that crashes, hangs past its lease, or fails
// /readyz probes has its in-flight tasks reassigned; because seeds are
// task-derived, a task settled twice (a straggler stolen by an idle
// worker) settles with identical bytes and the coordinator keeps the
// first copy.
package fabric

import (
	"encoding/json"
	"fmt"
	"time"

	"branchscope/internal/campaign"
)

// Schema versions the fabric wire protocol; bump on incompatible
// change. Workers refuse assignments with a different schema.
const Schema = "branchscope.fabric/v1"

// RunPath is the worker endpoint the coordinator POSTs assignments to,
// mounted under the worker's obs HTTP server.
const RunPath = "/fabric/run"

// Wire frame kinds carried by campaign.Frame/ParseFrame on top of the
// journal's "task" records.
const (
	// KindTask frames one finished campaign.TaskRecord.
	KindTask = "task"
	// KindLease frames a Heartbeat while a task is still running.
	KindLease = "lease"
)

// Assignment is the coordinator's request body: run identity basis,
// tasks to run, and the lease the worker must keep renewing.
type Assignment struct {
	Schema string `json:"schema"`
	// RunID is the coordinator's causal run identity, informational on
	// the wire (the worker verifies the identity *basis* below — it
	// cannot recompute the ID without the full task list).
	RunID   string `json:"run_id,omitempty"`
	Program string `json:"program"`
	// BaseSeed/Quick/Config are the identity basis the worker checks
	// against its own flags: task seeds derive from BaseSeed, and
	// Config carries the result-shaping knobs (chaos plan, retry
	// budget, timeout, program-specific flags) exactly as they appear
	// in runstore.Identity.Config.
	BaseSeed uint64         `json:"base_seed"`
	Quick    bool           `json:"quick"`
	Config   map[string]any `json:"config"`
	// Tasks is the ordered slice of task IDs to run.
	Tasks []string `json:"tasks"`
	// LeaseMS is the lease duration in milliseconds: the longest the
	// worker may go without streaming a frame before the coordinator
	// abandons the assignment and reassigns its unsettled tasks.
	LeaseMS int64 `json:"lease_ms"`
}

// Lease returns the assignment's lease as a duration (0 when unset).
func (a Assignment) Lease() time.Duration {
	return time.Duration(a.LeaseMS) * time.Millisecond
}

// Heartbeat is the KindLease frame payload: which task the worker is
// still running.
type Heartbeat struct {
	Task string `json:"task"`
}

// configJSON canonicalizes an identity-config map for comparison: Go
// marshals maps with sorted keys, so two maps with equal plain-JSON
// content render identically.
func configJSON(cfg map[string]any) (string, error) {
	if cfg == nil {
		cfg = map[string]any{}
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("fabric: identity config not marshalable: %w", err)
	}
	return string(b), nil
}

// frameRecord renders one task-record wire line.
func frameRecord(rec campaign.TaskRecord) ([]byte, error) {
	return campaign.Frame(KindTask, rec)
}
