package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"branchscope/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestLedgerGolden pins the v1 record encoding byte for byte: schema
// and key order are a contract with downstream grep/jq consumers.
// Regenerate with `go test ./internal/obs -run LedgerGolden -update`.
func TestLedgerGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("covert.episodes").Add(3)
	prev := reg.Snapshot()
	reg.Counter("covert.episodes").Add(17)
	reg.Histogram("probe.cycles", []uint64{64, 128}).Observe(70)
	delta := reg.Snapshot().Delta(prev)

	var buf bytes.Buffer
	l := NewLedger(&buf)
	if err := l.Append(LedgerRecord{
		Program:  "experiments",
		ID:       "table2",
		Artifact: "Table 2",
		Config:   map[string]any{"quick": true, "parallel": 4, "timeout": "0s"},
		BaseSeed: 1,
		Seed:     8690149346391973011,
		Outcome:  "ok",
		// WallSeconds stays 0: the one nondeterministic field.
		ResultDigest: Digest("Skylake isolated random: 0.21%\n"),
		MetricsDelta: &delta,
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(LedgerRecord{
		Program:  "experiments",
		ID:       "fig9",
		Artifact: "Figure 9",
		Config:   map[string]any{"quick": true},
		BaseSeed: 1,
		Seed:     42,
		Outcome:  "error",
		Error:    "engine: task fig9: context canceled",
	}); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "ledger.golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("ledger encoding drifted from %s (run with -update if intentional):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}

	// Every line must round-trip as a schema-stamped record.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var rec LedgerRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line does not parse: %v\n%s", err, sc.Text())
		}
		if rec.Schema != LedgerSchema {
			t.Errorf("record schema = %q, want %q", rec.Schema, LedgerSchema)
		}
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	if err := l.Append(LedgerRecord{ID: "x"}); err != nil {
		t.Errorf("nil ledger append: %v", err)
	}
	var d *DeltaRecorder
	d.Begin("x")
	if got := d.End("x"); got != nil {
		t.Errorf("nil recorder delta = %+v", got)
	}
	if NewDeltaRecorder(nil) != nil {
		t.Error("recorder over nil registry should be nil")
	}
}

func TestLedgerConcurrentAppendsDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := l.Append(LedgerRecord{Program: "t", ID: "task", Seed: uint64(n*100 + j), Outcome: "ok"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var rec LedgerRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved line %d: %v", lines, err)
		}
	}
	if lines != 400 {
		t.Errorf("lines = %d, want 400", lines)
	}
}

func TestDeltaRecorderAttributesWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("before").Add(5)
	d := NewDeltaRecorder(reg)
	d.Begin("task")
	reg.Counter("during").Add(3)
	delta := d.End("task")
	if delta == nil || len(delta.Counters) != 1 || delta.Counters[0].Name != "during" || delta.Counters[0].Value != 3 {
		t.Errorf("delta = %+v, want only during=3", delta)
	}
	// A quiet window yields nil, keeping ledger records small.
	d.Begin("quiet")
	if got := d.End("quiet"); got != nil {
		t.Errorf("quiet window delta = %+v, want nil", got)
	}
	// End without Begin is nil.
	if got := d.End("never"); got != nil {
		t.Errorf("unopened window delta = %+v, want nil", got)
	}
}

func TestDigestStable(t *testing.T) {
	a, b := Digest("result\n"), Digest("result\n")
	if a != b || a == Digest("other") {
		t.Errorf("digest not a stable fingerprint: %q %q", a, b)
	}
	if len(a) != len("sha256:")+64 {
		t.Errorf("digest shape = %q", a)
	}
}

// TestReadLedgerToleratesTornTail is the torn-file regression test: a
// process killed mid-append leaves a truncated final JSONL line, and
// the reader must surface every intact record plus a torn flag instead
// of failing the whole file. Damage with further content after it is
// real corruption and stays fatal.
func TestReadLedgerToleratesTornTail(t *testing.T) {
	intact := `{"schema":"` + LedgerSchema + `","program":"p","id":"a","config":null,"base_seed":1,"seed":1,"outcome":"ok","wall_seconds":0}` + "\n" +
		`{"schema":"` + LedgerSchema + `","program":"p","id":"b","config":null,"base_seed":1,"seed":2,"outcome":"ok","wall_seconds":0}` + "\n"

	// A clean file: all records, no torn flag.
	recs, torn, err := ReadLedger(strings.NewReader(intact))
	if err != nil || torn || len(recs) != 2 {
		t.Fatalf("clean ledger: recs=%d torn=%v err=%v", len(recs), torn, err)
	}

	// The same file with a truncated final append.
	tornFile := intact + `{"schema":"` + LedgerSchema + `","program":"p","id":"c","conf`
	recs, torn, err = ReadLedger(strings.NewReader(tornFile))
	if err != nil {
		t.Fatalf("torn tail must not fail the read: %v", err)
	}
	if !torn {
		t.Error("torn tail not flagged")
	}
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "b" {
		t.Errorf("intact records lost: %+v", recs)
	}

	// Trailing blank lines after the torn line are still a torn tail.
	recs, torn, err = ReadLedger(strings.NewReader(tornFile + "\n\n"))
	if err != nil || !torn || len(recs) != 2 {
		t.Errorf("blank lines after torn tail: recs=%d torn=%v err=%v", len(recs), torn, err)
	}

	// Damage mid-file — content after the bad line — is fatal.
	corrupt := `{"schema":"` + LedgerSchema + `","program":"p","id":"a","conf` + "\n" + intact
	if _, _, err := ReadLedger(strings.NewReader(corrupt)); err == nil {
		t.Error("mid-file corruption read without error")
	}

	// An empty ledger is valid and empty.
	recs, torn, err = ReadLedger(strings.NewReader(""))
	if err != nil || torn || len(recs) != 0 {
		t.Errorf("empty ledger: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
}

// TestReadLedgerRoundTripsWriter reads back what Ledger.Append wrote.
func TestReadLedgerRoundTripsWriter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	for i := 0; i < 3; i++ {
		if err := l.Append(LedgerRecord{Program: "p", ID: string(rune('a' + i)), BaseSeed: 1, Seed: uint64(i), Outcome: "ok"}); err != nil {
			t.Fatal(err)
		}
	}
	recs, torn, err := ReadLedger(&buf)
	if err != nil || torn {
		t.Fatalf("round trip: torn=%v err=%v", torn, err)
	}
	if len(recs) != 3 || recs[2].ID != "c" || recs[2].Schema != LedgerSchema {
		t.Errorf("round trip lost records: %+v", recs)
	}
}
