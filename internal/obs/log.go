package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process logger behind the CLIs' -log-format and
// -log-level flags. Logs always go to the writer the caller passes
// (stderr in the CLIs — stdout is reserved for the deterministic
// report, so enabling logging never perturbs byte-identical output).
// Format is "text" or "json"; level is "debug", "info", "warn" or
// "error". Unknown values are flag-validation errors.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
	return slog.New(h), nil
}
