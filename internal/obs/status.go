package obs

import (
	"sync"
	"time"
)

// StatusSchema versions the /statusz JSON document.
const StatusSchema = "branchscope.statusz/v1"

// TaskStatus is one task's live state in a Status document.
type TaskStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // pending | running | stuck | done | failed
	// Seed is the derived seed the task runs with (0 until it starts).
	Seed uint64 `json:"seed,omitempty"`
	// WallSeconds is the task's duration once finished, or its age so
	// far while running.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Outcome is the finished task's engine classification ("ok",
	// "retried-ok", "exhausted", "timeout", "canceled", ...) — finer
	// grained than State, which only distinguishes done from failed.
	Outcome string `json:"outcome,omitempty"`
	Error   string `json:"error,omitempty"`
}

// BreakerStatus mirrors one family's circuit-breaker state for
// /statusz. It deliberately duplicates the engine's shape instead of
// importing it — obs stays a leaf the engine never depends on.
type BreakerStatus struct {
	Family string `json:"family"`
	State  string `json:"state"` // closed | open
	// ConsecutiveFailures is the current run of permanent failures.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Skipped counts tasks short-circuited while the breaker was open.
	Skipped int `json:"skipped"`
}

// LeakageStatus is the /statusz channel-quality section, filled by the
// obs server from the leakage.* gauges of the live metrics registry.
// Like BreakerStatus it mirrors a shape (leakage.Report's headline
// numbers) instead of importing the package — obs stays a leaf.
type LeakageStatus struct {
	// Windows is the completed attack-window count.
	Windows uint64 `json:"windows"`
	// BitErrorRate through SNR echo the latest covert cell's channel-
	// quality gauges; see internal/leakage for definitions.
	BitErrorRate          float64 `json:"bit_error_rate"`
	MutualInformationBits float64 `json:"mutual_information_bits"`
	CapacityBits          float64 `json:"capacity_bits"`
	SNR                   float64 `json:"snr"`
}

// ServiceStatus is the /statusz section for the multi-tenant campaign
// job service (internal/svc). Like BreakerStatus it mirrors the
// shape instead of importing the package — obs stays a leaf.
type ServiceStatus struct {
	// Tenants counts distinct tenants seen since startup.
	Tenants int `json:"tenants"`
	// Running/Queued are current occupancy; Done/Failed/Canceled count
	// settled jobs.
	Running  int `json:"running"`
	Queued   int `json:"queued"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// Shed counts submissions rejected by admission control (429/503).
	Shed int64 `json:"shed"`
	// QueueCap is the global queue bound; Saturated means the queue is
	// full (and /readyz degrades).
	QueueCap  int  `json:"queue_cap"`
	Saturated bool `json:"saturated"`
	Draining  bool `json:"draining"`
}

// HistogramStatus summarizes one metrics histogram for /statusz.
type HistogramStatus struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   uint64  `json:"max"`
}

// Status is the /statusz document: live suite progress plus process
// identity. It deliberately lives outside the simulated machine — wall
// clocks here never feed back into experiment results.
type Status struct {
	Schema string `json:"schema"`
	// RunID is the run's causal identity (see internal/runstore),
	// present whether or not the run archives anything.
	RunID         string  `json:"run_id,omitempty"`
	Program       string  `json:"program"`
	PID           int     `json:"pid"`
	GoVersion     string  `json:"go"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	BaseSeed      uint64  `json:"base_seed"`
	Quick         bool    `json:"quick"`
	Pending       int     `json:"pending"`
	Running       int     `json:"running"`
	Done          int     `json:"done"`
	Failed        int     `json:"failed"`
	// Stuck counts tasks currently past their soft watchdog deadline
	// (they also count as Running: stuck is advisory, not terminal).
	Stuck int `json:"stuck,omitempty"`
	// Replayed counts tasks whose outcome was reconstructed from a
	// campaign journal instead of a fresh run (they also count as Done).
	Replayed int          `json:"replayed,omitempty"`
	Tasks    []TaskStatus `json:"tasks"`
	// Breakers lists families with tripped-or-tripping circuit
	// breakers; filled by the serving program, not the tracker.
	Breakers []BreakerStatus `json:"breakers,omitempty"`
	// DegradedProbes counts attack sessions whose health gate fell back
	// from PMC to timing probing; filled by the serving program from
	// the core.probe.degradations counter.
	DegradedProbes uint64 `json:"degraded_probes,omitempty"`
	// Leakage carries the live channel-quality numbers once at least
	// one attack window has completed; filled by the obs server from
	// the leakage.* metrics, not the tracker.
	Leakage *LeakageStatus `json:"leakage,omitempty"`
	// Histograms carries p50/p95/p99 summaries of the live metrics
	// registry; filled by the obs server, not the tracker.
	Histograms []HistogramStatus `json:"histograms,omitempty"`
	// LedgerTorn reports that the session found — and truncated — a torn
	// final record in a pre-existing ledger it reopened for append (see
	// RepairLedgerTail). Surfaced here so the data loss is visible
	// instead of silent.
	LedgerTorn bool `json:"ledger_torn,omitempty"`
	// Service carries the campaign job service's occupancy and
	// admission-control state when the process runs one; filled by the
	// serving program, not the tracker.
	Service *ServiceStatus `json:"service,omitempty"`
}

// Tracker accumulates per-task progress from engine runner hooks and
// renders it as a Status. All methods are safe for concurrent use (the
// runner invokes hooks from worker goroutines) and no-ops on a nil
// tracker.
type Tracker struct {
	program  string
	baseSeed uint64
	quick    bool
	start    time.Time

	mu      sync.Mutex
	order   []string
	tasks   map[string]*TaskStatus
	started map[string]time.Time
}

// NewTracker declares the suite up front: every id starts pending, so
// /statusz shows the full suite shape from the first scrape.
func NewTracker(program string, baseSeed uint64, quick bool, ids []string) *Tracker {
	t := &Tracker{
		program:  program,
		baseSeed: baseSeed,
		quick:    quick,
		start:    time.Now(),
		tasks:    make(map[string]*TaskStatus, len(ids)),
		started:  make(map[string]time.Time),
	}
	for _, id := range ids {
		t.add(id)
	}
	return t
}

// add registers id if new; callers hold mu or have exclusive access.
func (t *Tracker) add(id string) *TaskStatus {
	ts := t.tasks[id]
	if ts == nil {
		ts = &TaskStatus{ID: id, State: "pending"}
		t.tasks[id] = ts
		t.order = append(t.order, id)
	}
	return ts
}

// Begin marks a task running with its derived seed.
func (t *Tracker) Begin(id string, seed uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.add(id)
	ts.State = "running"
	ts.Seed = seed
	t.started[id] = time.Now()
}

// MarkStuck flags a running task as past its soft watchdog deadline.
// The state is advisory: End overwrites it with the task's real
// outcome, and marking a task that is not currently running is a no-op
// (the watchdog may race the task's own completion).
func (t *Tracker) MarkStuck(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts := t.add(id); ts.State == "running" {
		ts.State = "stuck"
	}
}

// End marks a task done or failed. outcome is the engine's fine-grained
// classification (Report.Outcome or OutcomeOf); empty derives it from
// err, so callers without an engine report can pass "". A task whose
// outcome is a success class ("ok", "retried-ok") ends done even
// with retries behind it; everything else with a non-nil err is failed.
func (t *Tracker) End(id string, wall time.Duration, outcome string, err error) {
	if t == nil {
		return
	}
	if outcome == "" {
		outcome = OutcomeOf(err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.add(id)
	ts.State = "done"
	ts.WallSeconds = wall.Seconds()
	ts.Outcome = outcome
	if err != nil {
		ts.State = "failed"
		ts.Error = err.Error()
	}
	delete(t.started, id)
}

// Ready reports whether the suite has been declared — the /readyz
// answer. A nil tracker is never ready.
func (t *Tracker) Ready() bool { return t != nil }

// Status renders the current progress. Safe on a nil tracker (an empty
// document), so the obs server works without one.
func (t *Tracker) Status() Status {
	s := Status{Schema: StatusSchema}
	if t == nil {
		return s
	}
	s.Program = t.program
	s.BaseSeed = t.baseSeed
	s.Quick = t.quick
	s.UptimeSeconds = time.Since(t.start).Seconds()

	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	for _, id := range t.order {
		ts := *t.tasks[id]
		if ts.State == "running" || ts.State == "stuck" {
			ts.WallSeconds = now.Sub(t.started[id]).Seconds()
		}
		switch ts.State {
		case "pending":
			s.Pending++
		case "running":
			s.Running++
		case "stuck":
			s.Running++
			s.Stuck++
		case "done":
			s.Done++
			if ts.Outcome == "replayed" {
				s.Replayed++
			}
		case "failed":
			s.Failed++
		}
		s.Tasks = append(s.Tasks, ts)
	}
	return s
}
