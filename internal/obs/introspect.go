package obs

import (
	"encoding/json"
	"io"
)

// IntrospectSchema versions the /introspect/pht JSON document.
const IntrospectSchema = "branchscope.introspect/v1"

// introspectDoc wraps a predictor snapshot for serving/export. The
// snapshot is whatever the simulator published (a bpu.Introspection in
// practice); obs carries it opaquely to stay a leaf package.
type introspectDoc struct {
	Schema    string `json:"schema"`
	Available bool   `json:"available"`
	Snapshot  any    `json:"snapshot,omitempty"`
}

// WriteIntrospection writes a predictor introspection snapshot as an
// indented, schema-stamped JSON document — the /introspect/pht body
// and the -introspect-out file format. A nil snapshot yields a valid
// document with "available": false.
func WriteIntrospection(w io.Writer, snapshot any) error {
	doc := introspectDoc{Schema: IntrospectSchema, Available: snapshot != nil, Snapshot: snapshot}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
