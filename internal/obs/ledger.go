package obs

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"branchscope/internal/telemetry"
)

// LedgerSchema versions ledger records; bump on incompatible change.
const LedgerSchema = "branchscope.ledger/v1"

// LedgerRecord is one run-provenance entry: everything needed to
// re-derive and audit a result claim — which experiment, under which
// configuration and seeds, what came out, and what the telemetry
// registry saw while it ran. RESULTS.md numbers become greppable
// artifacts: `grep '"id":"table2"' ledger.jsonl | jq .result_digest`.
type LedgerRecord struct {
	Schema string `json:"schema"`
	// RunID is the run's causal identity (see internal/runstore),
	// stamped even when nothing is archived so a bare ledger stays
	// joinable against archives and other ledgers after the fact.
	RunID    string `json:"run_id,omitempty"`
	Program  string `json:"program"`
	ID       string `json:"id"`
	Artifact string `json:"artifact,omitempty"`
	// Config is the flag-level configuration the task ran under. A Go
	// map marshals with sorted keys, so records are deterministic.
	Config map[string]any `json:"config"`
	// BaseSeed is the root seed; Seed the task's derived seed (equal
	// when the program runs a single root task).
	BaseSeed uint64 `json:"base_seed"`
	Seed     uint64 `json:"seed"`
	// Outcome is "ok", "retried-ok", "error", "panic", "exhausted",
	// "timeout" or "canceled" (engine.Report.Outcome's vocabulary).
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// WallSeconds is the one nondeterministic field (0 in golden tests).
	WallSeconds float64 `json:"wall_seconds"`
	// ResultDigest fingerprints the rendered result ("sha256:<hex>");
	// two runs agreeing here produced byte-identical result text.
	ResultDigest string `json:"result_digest,omitempty"`
	// MetricsDelta is the telemetry registry's change attributed to
	// this task (see DeltaRecorder for the attribution caveat).
	MetricsDelta *telemetry.Snapshot `json:"metrics_delta,omitempty"`
	// Leakage carries the channel-quality gauges (leakage.* with the
	// prefix stripped) the task published, extracted from MetricsDelta
	// by LeakageFields; omitted for tasks that measured no channel.
	Leakage map[string]float64 `json:"leakage,omitempty"`
	// Rows carries the task's structured result rows. Only the campaign
	// service's job streams set it (file ledgers keep digests only, so
	// their shape is unchanged); stream clients get the data itself
	// without waiting for the archive.
	Rows []json.RawMessage `json:"rows,omitempty"`
}

// Digest fingerprints a rendered result for a LedgerRecord.
func Digest(result string) string {
	sum := sha256.Sum256([]byte(result))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Ledger appends schema-versioned JSONL records to a writer, one line
// per completed task/run. Appends are mutex-serialized so concurrent
// runner hooks never interleave lines. The nil Ledger is valid and
// drops records, matching the telemetry layer's nil-safety idiom.
type Ledger struct {
	mu    sync.Mutex
	w     io.Writer
	runID string
}

// NewLedger wraps w; the caller owns closing it.
func NewLedger(w io.Writer) *Ledger { return &Ledger{w: w} }

// SetRunID sets the run identity stamped into records whose caller
// left RunID empty. Nil-safe.
func (l *Ledger) SetRunID(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.runID = id
	l.mu.Unlock()
}

// Append writes one record as a single JSON line, stamping the schema
// and run identity if the caller left them empty.
func (l *Ledger) Append(rec LedgerRecord) error {
	if l == nil {
		return nil
	}
	if rec.Schema == "" {
		rec.Schema = LedgerSchema
	}
	if rec.RunID == "" {
		l.mu.Lock()
		rec.RunID = l.runID
		l.mu.Unlock()
	}
	if rec.Config == nil {
		rec.Config = map[string]any{}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(data)
	return err
}

// ReadLedger parses a branchscope.ledger/v1 JSONL stream. A ledger is
// an append-only crash-safety artifact: a process killed mid-append
// leaves a truncated final line behind, and that must not cost the
// reader every record before it. A malformed line is therefore
// tolerated — and reported via torn — if and only if nothing but blank
// lines follows it; a malformed line in the middle of the stream is
// real corruption and fails the parse.
func ReadLedger(r io.Reader) (recs []LedgerRecord, torn bool, err error) {
	sc := bufio.NewScanner(r)
	// Records embed full metrics snapshots; lines run far past the
	// default 64 KiB token limit.
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pending error // a bad line, fatal only if more content follows
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if pending != nil {
			return nil, false, pending
		}
		var rec LedgerRecord
		if uerr := json.Unmarshal(b, &rec); uerr != nil {
			pending = fmt.Errorf("obs: ledger line %d: %w", line, uerr)
			continue
		}
		recs = append(recs, rec)
	}
	if serr := sc.Err(); serr != nil {
		return nil, false, fmt.Errorf("obs: reading ledger: %w", serr)
	}
	return recs, pending != nil, nil
}

// DeltaRecorder attributes registry deltas to tasks: Begin snapshots
// the registry when a task starts, End returns what changed while it
// ran (nil when nothing did). Attribution is exact at -parallel 1; with
// concurrent tasks the windows overlap and each open window sees every
// concurrent task's updates — still useful as an upper bound, and the
// ledger's per-task seeds disambiguate reruns. Nil-safe throughout.
type DeltaRecorder struct {
	reg  *telemetry.Registry
	mu   sync.Mutex
	prev map[string]telemetry.Snapshot
}

// NewDeltaRecorder returns a recorder over reg, or nil when reg is nil
// (no registry means no deltas to record).
func NewDeltaRecorder(reg *telemetry.Registry) *DeltaRecorder {
	if reg == nil {
		return nil
	}
	return &DeltaRecorder{reg: reg, prev: make(map[string]telemetry.Snapshot)}
}

// Begin opens id's attribution window.
func (d *DeltaRecorder) Begin(id string) {
	if d == nil {
		return
	}
	snap := d.reg.Snapshot()
	d.mu.Lock()
	d.prev[id] = snap
	d.mu.Unlock()
}

// End closes id's window and returns the delta, nil when empty or when
// Begin was never called for id.
func (d *DeltaRecorder) End(id string) *telemetry.Snapshot {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	prev, ok := d.prev[id]
	delete(d.prev, id)
	d.mu.Unlock()
	if !ok {
		return nil
	}
	delta := d.reg.Snapshot().Delta(prev)
	if len(delta.Counters)+len(delta.Gauges)+len(delta.Histograms) == 0 {
		return nil
	}
	return &delta
}

// LeakageFields extracts the channel-quality gauges from a task's
// metrics delta for LedgerRecord.Leakage: every gauge under the
// "leakage." prefix, keyed with the prefix stripped ("leakage.ber" →
// "ber"). Nil-safe; returns nil when the delta carries none, so the
// ledger field marshals away. Go maps marshal with sorted keys, so the
// extraction preserves record determinism.
func LeakageFields(delta *telemetry.Snapshot) map[string]float64 {
	if delta == nil {
		return nil
	}
	var out map[string]float64
	const prefix = "leakage."
	for _, g := range delta.Gauges {
		if !strings.HasPrefix(g.Name, prefix) {
			continue
		}
		if out == nil {
			out = make(map[string]float64)
		}
		out[strings.TrimPrefix(g.Name, prefix)] = g.Value
	}
	return out
}

// RepairLedgerTail heals a ledger about to be reopened for append: a
// process killed mid-append leaves a truncated final line, which
// ReadLedger tolerates only while it stays final — the next append
// would bury it mid-file and turn it into hard corruption. Repair
// truncates the torn line off before that happens. Returns whether a
// torn record was dropped. A missing file is fine (nothing to repair);
// corruption *before* the final line is an error, not repairable.
func RepairLedgerTail(path string) (torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("obs: repairing ledger: %w", err)
	}
	if _, torn, err = ReadLedger(bytes.NewReader(data)); err != nil {
		return false, err
	}
	if !torn {
		return false, nil
	}
	// Truncate at the start of the last non-blank line.
	trimmed := bytes.TrimRight(data, " \t\r\n")
	cut := bytes.LastIndexByte(trimmed, '\n') + 1 // 0 when it is the only line
	if err := os.Truncate(path, int64(cut)); err != nil {
		return false, fmt.Errorf("obs: repairing ledger: %w", err)
	}
	return true, nil
}

// OutcomeOf classifies a single-run error the way engine.Report.Outcome
// classifies suite tasks, for programs (branchscope, phtmap) that run
// one root task without the engine runner.
func OutcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}
