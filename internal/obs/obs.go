// Package obs is the live observability service layer: an HTTP server
// exposing the telemetry registry as Prometheus text (/metrics), the
// channel-quality subset of it (/leakage), the latest predictor
// introspection snapshot (/introspect/pht), suite progress as JSON
// (/statusz), the archived run manifests (/runs), liveness and
// readiness probes, and the Go profiler (/debug/pprof) — plus the
// structured logger and the run-provenance ledger shared by the CLIs.
//
// Everything here lives outside the simulated machine: handlers read
// wall clocks and atomics but never write into the simulator, so
// serving a scrape mid-run cannot perturb the deterministic report on
// stdout (see DESIGN.md §3.14).
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"branchscope/internal/telemetry"
	"branchscope/internal/telemetry/promtext"
)

// Server assembles the endpoint handlers. Every field is optional:
// a zero Server still serves /healthz and pprof.
type Server struct {
	// Program names the process in /statusz ("experiments", ...).
	Program string
	// Metrics feeds /metrics and the /statusz histogram summaries.
	Metrics *telemetry.Registry
	// Status feeds /statusz; nil serves a minimal document.
	Status func() Status
	// Ready feeds /readyz; nil means always ready.
	Ready func() bool
	// Introspect feeds /introspect/pht with the latest predictor
	// snapshot (typically leakage.LatestIntrospection); nil or a nil
	// return serves an "available": false document.
	Introspect func() any
	// Runs feeds /runs with the archived run manifests (typically a
	// runstore.List closure over the -archive directory, injected by
	// cliutil so obs stays a leaf). nil serves an empty listing.
	Runs func() (any, error)
	// Fabric, when non-nil, is mounted under /fabric/ — the
	// distributed-campaign worker endpoint (typically a fabric.Worker
	// handler, injected by cliutil so obs stays a leaf). nil serves
	// 404 under the prefix.
	Fabric http.Handler
	// Jobs, when non-nil, is mounted at /jobs and /jobs/ — the
	// multi-tenant campaign job service (typically a svc.Service
	// handler, injected by cliutil so obs stays a leaf). nil serves
	// 404 under the prefix.
	Jobs http.Handler
	// Log receives handler errors; nil discards them.
	Log *slog.Logger
}

// Handler builds the endpoint mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Ready != nil && !s.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", promtext.ContentType)
		if err := promtext.Write(w, s.Metrics.Snapshot()); err != nil && s.Log != nil {
			s.Log.Error("metrics scrape failed", "err", err)
		}
	})
	mux.HandleFunc("/leakage", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", promtext.ContentType)
		// Scoped view over one registry snapshot: scrapes must never
		// create instruments, or -metrics-out would become
		// scrape-dependent and break its determinism contract.
		snap := s.Metrics.Snapshot().Filter("leakage.")
		if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) == 0 {
			fmt.Fprintln(w, "# leakage: no windows observed yet")
			return
		}
		if err := promtext.Write(w, snap); err != nil && s.Log != nil {
			s.Log.Error("leakage scrape failed", "err", err)
		}
	})
	mux.HandleFunc("/introspect/pht", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var snap any
		if s.Introspect != nil {
			snap = s.Introspect()
		}
		if err := WriteIntrospection(w, snap); err != nil && s.Log != nil {
			s.Log.Error("introspection render failed", "err", err)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		st := Status{Schema: StatusSchema}
		if s.Status != nil {
			st = s.Status()
		}
		if st.Program == "" {
			st.Program = s.Program
		}
		st.PID = os.Getpid()
		st.GoVersion = runtime.Version()
		snap := s.Metrics.Snapshot()
		st.Leakage = leakageStatus(snap)
		for _, h := range snap.Histograms {
			st.Histograms = append(st.Histograms, HistogramStatus{
				Name:  h.Name,
				Count: h.Count,
				Mean:  h.Mean(),
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
				Max:   h.Max,
			})
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil && s.Log != nil {
			s.Log.Error("statusz render failed", "err", err)
		}
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		doc := struct {
			Schema string `json:"schema"`
			Runs   any    `json:"runs"`
		}{Schema: "branchscope.runs/v1", Runs: []any{}}
		if s.Runs != nil {
			runs, err := s.Runs()
			if err != nil {
				if s.Log != nil {
					s.Log.Error("runs listing failed", "err", err)
				}
				http.Error(w, fmt.Sprintf("listing runs: %v", err), http.StatusInternalServerError)
				return
			}
			if runs != nil {
				doc.Runs = runs
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil && s.Log != nil {
			s.Log.Error("runs render failed", "err", err)
		}
	})
	if s.Fabric != nil {
		mux.Handle("/fabric/", http.StripPrefix("/fabric", s.Fabric))
	}
	if s.Jobs != nil {
		mux.Handle("/jobs", s.Jobs)
		mux.Handle("/jobs/", s.Jobs)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "branchscope observability (%s)\nendpoints: /metrics /leakage /introspect/pht /statusz /runs /healthz /readyz /debug/pprof/\n", s.Program)
	})
	return mux
}

// leakageStatus extracts the /statusz channel-quality section from an
// already-taken registry snapshot, or nil before the first completed
// attack window. Reading the snapshot (never the registry) keeps
// scrapes from creating instruments.
func leakageStatus(snap telemetry.Snapshot) *LeakageStatus {
	var windows uint64
	for _, c := range snap.Counters {
		if c.Name == "leakage.windows" {
			windows = c.Value
		}
	}
	if windows == 0 {
		return nil
	}
	ls := &LeakageStatus{Windows: windows}
	for _, g := range snap.Gauges {
		switch g.Name {
		case "leakage.ber":
			ls.BitErrorRate = g.Value
		case "leakage.mi_bits":
			ls.MutualInformationBits = g.Value
		case "leakage.capacity_bits":
			ls.CapacityBits = g.Value
		case "leakage.snr":
			ls.SNR = g.Value
		}
	}
	return ls
}

// Start binds addr (":8080", "127.0.0.1:0", ...) and serves in the
// background. The returned Handle reports the bound address — so
// ":0" callers can discover their port — and shuts the server down
// gracefully.
func (s *Server) Start(addr string) (*Handle, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	h := &Handle{addr: ln.Addr(), done: make(chan struct{})}
	// Count in-flight requests so Drain can report how many a
	// deadline-bounded shutdown had to abandon. While draining, reject
	// submissions of new work (fabric assignments, service jobs) with
	// 503 + Retry-After instead of accepting tasks that shutdown will
	// abandon — reads and cancels still pass, so clients can observe
	// the drain and withdraw their own work.
	inner := s.Handler()
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.inflight.Add(1)
		defer h.inflight.Add(-1)
		if h.draining.Load() && rejectWhileDraining(r) {
			w.Header().Set("Retry-After", "30")
			http.Error(w, "draining: not accepting new work", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := &http.Server{Handler: counted, ReadHeaderTimeout: 5 * time.Second}
	h.srv = srv
	go func() {
		defer close(h.done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			h.serveErr = err
			if s.Log != nil {
				s.Log.Error("observability server failed", "addr", ln.Addr().String(), "err", err)
			}
		}
	}()
	return h, nil
}

// Handle is a started server.
type Handle struct {
	addr     net.Addr
	srv      *http.Server
	done     chan struct{}
	serveErr error
	inflight atomic.Int64
	draining atomic.Bool
}

// rejectWhileDraining reports whether a request submits new work the
// draining server must shed: fabric task dispatches and service job
// submissions. Job cancellation (POST /jobs/{id}/cancel) stays
// allowed — withdrawing work helps a drain, it doesn't add to it.
func rejectWhileDraining(r *http.Request) bool {
	if r.Method != http.MethodPost {
		return false
	}
	return r.URL.Path == "/fabric/run" || r.URL.Path == "/jobs" || r.URL.Path == "/jobs/"
}

// BeginDrain flips the server into draining mode: work-submitting
// requests are rejected with 503 + Retry-After while everything else
// (scrapes, status reads, job streams, cancels) keeps serving. Drain
// calls it first; exposing it separately lets a host shed new work
// before it starts waiting on in-flight jobs. Nil-safe.
func (h *Handle) BeginDrain() {
	if h != nil {
		h.draining.Store(true)
	}
}

// DrainResult reports how a graceful shutdown went: whether every
// in-flight scrape/ledger request completed before the deadline, how
// many were abandoned when it hit, and how long the drain waited.
type DrainResult struct {
	Drained bool
	Active  int
	Waited  time.Duration
}

// String renders the result for the final shutdown log line.
func (d DrainResult) String() string {
	if d.Drained {
		return fmt.Sprintf("drained in-flight requests in %s", d.Waited.Round(time.Millisecond))
	}
	return fmt.Sprintf("drain deadline hit after %s with %d request(s) in flight (force-closed)",
		d.Waited.Round(time.Millisecond), d.Active)
}

// Drain shuts the server down gracefully, letting in-flight requests
// finish until ctx expires; on deadline it force-closes what remains.
// Either way the serve loop has exited when Drain returns. Nil-safe;
// idempotent.
func (h *Handle) Drain(ctx context.Context) (DrainResult, error) {
	if h == nil {
		return DrainResult{Drained: true}, nil
	}
	h.BeginDrain()
	start := time.Now()
	err := h.srv.Shutdown(ctx)
	res := DrainResult{Waited: time.Since(start)}
	if err != nil {
		// Deadline hit with connections still open: report what was
		// abandoned, then close them so the serve loop exits.
		res.Active = int(h.inflight.Load())
		h.srv.Close()
	} else {
		res.Drained = true
	}
	<-h.done
	if err == nil {
		err = h.serveErr
	}
	return res, err
}

// Addr returns the bound address ("127.0.0.1:43521").
func (h *Handle) Addr() string {
	if h == nil {
		return ""
	}
	return h.addr.String()
}

// Shutdown is Drain without the result — kept for callers that don't
// log the drain outcome.
func (h *Handle) Shutdown(ctx context.Context) error {
	_, err := h.Drain(ctx)
	return err
}
