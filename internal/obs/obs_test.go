package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"branchscope/internal/telemetry"
	"branchscope/internal/telemetry/promtext"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("covert.episodes").Add(7)
	reg.Histogram("probe.cycles", []uint64{10, 100}).Observe(42)
	tracker := NewTracker("test", 1, true, []string{"fig2", "table1"})
	tracker.Begin("fig2", 99)
	tracker.End("fig2", 80*time.Millisecond, "", nil)
	tracker.Begin("table1", 42)

	s := &Server{Program: "test", Metrics: reg, Status: tracker.Status, Ready: tracker.Ready}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, srv, "/readyz"); code != 200 || body != "ready\n" {
		t.Errorf("/readyz = %d %q", code, body)
	}

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if err := promtext.Lint(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics fails exposition lint: %v\n%s", err, body)
	}
	if !strings.Contains(body, "covert_episodes_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, srv, "/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	if st.Schema != StatusSchema || st.Program != "test" || st.BaseSeed != 1 || !st.Quick {
		t.Errorf("statusz header = %+v", st)
	}
	if st.Done != 1 || st.Running != 1 || st.Pending != 0 {
		t.Errorf("statusz counts = done=%d running=%d pending=%d, want 1/1/0", st.Done, st.Running, st.Pending)
	}
	if len(st.Tasks) != 2 || st.Tasks[0].ID != "fig2" || st.Tasks[0].State != "done" || st.Tasks[0].Seed != 99 {
		t.Errorf("statusz tasks = %+v", st.Tasks)
	}
	if len(st.Histograms) != 1 || st.Histograms[0].Name != "probe.cycles" || st.Histograms[0].P50 != 42 {
		t.Errorf("statusz histograms = %+v", st.Histograms)
	}
	if st.PID == 0 || st.GoVersion == "" {
		t.Errorf("statusz missing process identity: %+v", st)
	}

	if code, body := get(t, srv, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestReadyzNotReady(t *testing.T) {
	s := &Server{Ready: func() bool { return false }}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if code, _ := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d, want 503", code)
	}
	// Liveness is independent of readiness.
	if code, _ := get(t, srv, "/healthz"); code != 200 {
		t.Errorf("/healthz = %d, want 200", code)
	}
}

func TestNilRegistryServesEmptyMetrics(t *testing.T) {
	s := &Server{}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if code, body := get(t, srv, "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics on nil registry = %d %q, want 200 and empty", code, body)
	}
	code, body := get(t, srv, "/statusz")
	var st Status
	if code != 200 || json.Unmarshal([]byte(body), &st) != nil {
		t.Errorf("/statusz on zero server = %d %q", code, body)
	}
}

// TestConcurrentScrape hits /metrics and /statusz while instruments and
// the tracker are updated concurrently — the mid-run scrape path, run
// under -race in CI.
func TestConcurrentScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracker := NewTracker("race", 1, true, []string{"a", "b", "c"})
	s := &Server{Program: "race", Metrics: reg, Status: tracker.Status}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := reg.Histogram("h", telemetry.ExpBuckets(1, 2, 10))
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				reg.Counter("c").Inc()
				h.Observe(i % 500)
				id := string(rune('a' + i%3))
				tracker.Begin(id, i)
				tracker.End(id, time.Duration(i), "", nil)
			}
		}
	}()
	for i := 0; i < 30; i++ {
		_, body := get(t, srv, "/metrics")
		if err := promtext.Lint(strings.NewReader(body)); err != nil {
			t.Fatalf("scrape %d fails lint: %v\n%s", i, err, body)
		}
		var st Status
		if _, body := get(t, srv, "/statusz"); json.Unmarshal([]byte(body), &st) != nil {
			t.Fatalf("scrape %d: statusz not JSON:\n%s", i, body)
		}
	}
	close(stop)
	wg.Wait()
}

func TestStartShutdown(t *testing.T) {
	s := &Server{Program: "t"}
	h, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if h.Addr() == "" || strings.HasSuffix(h.Addr(), ":0") {
		t.Errorf("bound address not discovered: %q", h.Addr())
	}
	resp, err := http.Get("http://" + h.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := h.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + h.Addr() + "/healthz"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}

func TestOutcomeOf(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{context.Canceled, "canceled"},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), "timeout"},
		{errors.New("boom"), "error"},
	}
	for _, c := range cases {
		if got := OutcomeOf(c.err); got != c.want {
			t.Errorf("OutcomeOf(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestNilTrackerAndLogger(t *testing.T) {
	var tr *Tracker
	tr.Begin("x", 1)
	tr.End("x", 0, "", nil)
	if tr.Ready() {
		t.Error("nil tracker reports ready")
	}
	if st := tr.Status(); st.Schema != StatusSchema {
		t.Errorf("nil tracker status = %+v", st)
	}
	if _, err := NewLogger(io.Discard, "yaml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(io.Discard, "json", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	log, err := NewLogger(io.Discard, "json", "debug")
	if err != nil || log == nil {
		t.Fatalf("valid logger rejected: %v", err)
	}
}

// TestTrackerStuckAndReplayed pins the supervision surface of
// /statusz: MarkStuck flips only running tasks to the advisory stuck
// state (still counted as running), End overwrites it with the real
// outcome, and replayed outcomes are tallied separately.
func TestTrackerStuckAndReplayed(t *testing.T) {
	tr := NewTracker("test", 1, true, []string{"a", "b", "c"})

	tr.MarkStuck("a") // pending, not running: no-op
	if s := tr.Status(); s.Stuck != 0 {
		t.Errorf("pending task marked stuck: %+v", s)
	}

	tr.Begin("a", 7)
	tr.MarkStuck("a")
	s := tr.Status()
	if s.Stuck != 1 || s.Running != 1 {
		t.Errorf("stuck task must count as running+stuck, got running=%d stuck=%d", s.Running, s.Stuck)
	}
	if s.Tasks[0].State != "stuck" {
		t.Errorf("task state = %q, want stuck", s.Tasks[0].State)
	}

	// The real outcome overwrites the advisory state.
	tr.End("a", time.Millisecond, "ok", nil)
	tr.Begin("b", 8)
	tr.End("b", 0, "replayed", nil)
	s = tr.Status()
	if s.Stuck != 0 || s.Done != 2 || s.Replayed != 1 {
		t.Errorf("after End: stuck=%d done=%d replayed=%d", s.Stuck, s.Done, s.Replayed)
	}
}

// TestDrainRejectsNewWork: a draining server sheds work-submitting
// POSTs (fabric assignments, service job submissions) with 503 +
// Retry-After while reads and job cancellation keep serving, so a
// coordinator or client can observe the drain and go elsewhere instead
// of handing tasks to a process about to abandon them.
func TestDrainRejectsNewWork(t *testing.T) {
	okHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "accepted")
	})
	s := &Server{Program: "t", Fabric: okHandler, Jobs: okHandler}
	h, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		h.Shutdown(ctx)
	}()
	base := "http://" + h.Addr()

	post := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp
	}

	// Before the drain both submission endpoints accept.
	for _, path := range []string{"/fabric/run", "/jobs"} {
		if resp := post(path); resp.StatusCode != http.StatusOK {
			t.Errorf("pre-drain POST %s: status %d, want 200", path, resp.StatusCode)
		}
	}

	h.BeginDrain()

	for _, path := range []string{"/fabric/run", "/jobs"} {
		resp := post(path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining POST %s: status %d, want 503", path, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("draining POST %s: missing Retry-After header", path)
		}
	}
	// Withdrawing work stays allowed: cancels help a drain.
	if resp := post("/jobs/job-000001/cancel"); resp.StatusCode != http.StatusOK {
		t.Errorf("draining POST cancel: status %d, want 200", resp.StatusCode)
	}
	// Reads keep serving so operators can watch the drain.
	for _, path := range []string{"/healthz", "/statusz", "/jobs"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("draining GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}
