package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"branchscope/internal/telemetry"
	"branchscope/internal/telemetry/promtext"
)

// TestLeakageEndpoint covers both sides of the /leakage contract: an
// empty registry serves a lint-clean comment-only exposition (an empty
// body would fail promtext.Lint), and a populated one serves exactly
// the leakage-prefixed subset.
func TestLeakageEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("core.episodes").Add(100) // must NOT leak into /leakage
	s := &Server{Program: "test", Metrics: reg}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/leakage")
	if code != 200 {
		t.Fatalf("/leakage = %d", code)
	}
	if err := promtext.Lint(strings.NewReader(body)); err != nil {
		t.Errorf("empty /leakage fails lint: %v\n%s", err, body)
	}
	if !strings.Contains(body, "no windows observed") {
		t.Errorf("empty /leakage body = %q", body)
	}

	reg.Gauge("leakage.ber").Set(0.0125)
	reg.Gauge("leakage.mi_bits").Set(0.91)
	reg.Counter("leakage.windows").Add(3)
	reg.Histogram("leakage.window.ber_permille", telemetry.LinearBuckets(50, 50, 20)).Observe(12)

	code, body = get(t, srv, "/leakage")
	if code != 200 {
		t.Fatalf("/leakage = %d", code)
	}
	if err := promtext.Lint(strings.NewReader(body)); err != nil {
		t.Errorf("/leakage fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{"leakage_ber 0.0125", "leakage_windows_total 3", "leakage_window_ber_permille_bucket"} {
		if !strings.Contains(body, want) {
			t.Errorf("/leakage missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "core_episodes") {
		t.Errorf("/leakage leaked non-leakage metrics:\n%s", body)
	}
}

// TestIntrospectEndpoint: without a provider the endpoint stays a
// valid "available": false document; with one it wraps the snapshot.
func TestIntrospectEndpoint(t *testing.T) {
	s := &Server{Program: "test"}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/introspect/pht")
	if code != 200 {
		t.Fatalf("/introspect/pht = %d", code)
	}
	var doc struct {
		Schema    string          `json:"schema"`
		Available bool            `json:"available"`
		Snapshot  json.RawMessage `json:"snapshot"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if doc.Schema != IntrospectSchema || doc.Available || doc.Snapshot != nil {
		t.Errorf("empty introspection doc = %+v", doc)
	}

	type snap struct {
		Size int `json:"size"`
	}
	s2 := &Server{Program: "test", Introspect: func() any { return snap{Size: 16384} }}
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	code, body = get(t, srv2, "/introspect/pht")
	if code != 200 {
		t.Fatalf("/introspect/pht = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if !doc.Available || !strings.Contains(string(doc.Snapshot), "16384") {
		t.Errorf("introspection doc = %+v", doc)
	}
}

// TestStatuszLeakageSection: the leakage block appears only after the
// first completed window, filled from the gauges.
func TestStatuszLeakageSection(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := &Server{Program: "test", Metrics: reg}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	_, body := get(t, srv, "/statusz")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Leakage != nil {
		t.Errorf("leakage section before any window: %+v", st.Leakage)
	}

	reg.Counter("leakage.windows").Add(2)
	reg.Gauge("leakage.ber").Set(0.03)
	reg.Gauge("leakage.mi_bits").Set(0.8)
	reg.Gauge("leakage.capacity_bits").Set(0.85)
	reg.Gauge("leakage.snr").Set(120)

	_, body = get(t, srv, "/statusz")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Leakage == nil {
		t.Fatal("leakage section missing after windows observed")
	}
	if st.Leakage.Windows != 2 || st.Leakage.BitErrorRate != 0.03 ||
		st.Leakage.MutualInformationBits != 0.8 || st.Leakage.CapacityBits != 0.85 || st.Leakage.SNR != 120 {
		t.Errorf("leakage section = %+v", st.Leakage)
	}
}

func TestWriteIntrospection(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIntrospection(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"available": false`) {
		t.Errorf("nil snapshot doc = %s", buf.String())
	}
	// Deterministic: same snapshot, same bytes.
	render := func() string {
		var b bytes.Buffer
		if err := WriteIntrospection(&b, map[string]int{"b": 2, "a": 1}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("introspection rendering not deterministic:\n%s\n%s", a, b)
	}
}

func TestLeakageFields(t *testing.T) {
	if got := LeakageFields(nil); got != nil {
		t.Errorf("LeakageFields(nil) = %v", got)
	}
	if got := LeakageFields(&telemetry.Snapshot{}); got != nil {
		t.Errorf("LeakageFields(empty) = %v", got)
	}
	delta := &telemetry.Snapshot{Gauges: []telemetry.GaugeSnapshot{
		{Name: "covert.error_rate", Value: 0.01},
		{Name: "leakage.ber", Value: 0.02},
		{Name: "leakage.mi_bits", Value: 0.9},
	}}
	got := LeakageFields(delta)
	if len(got) != 2 || got["ber"] != 0.02 || got["mi_bits"] != 0.9 {
		t.Errorf("LeakageFields = %v", got)
	}
}
