// Package trace records architectural event streams from simulated
// hardware contexts: per-branch records with address, direction and
// cycle timestamps. Traces drive offline analysis (what did the victim's
// branch stream look like?), debugging of attack schedules, and the
// anomaly detector of internal/detect.
//
// A Recorder attaches to a cpu.Context through its retire hook, composing
// with any hook already installed (the scheduler's); recording therefore
// works on free-running and on stepped threads alike.
package trace

import (
	"fmt"
	"strings"

	"branchscope/internal/cpu"
)

// Event is one retired instruction observation.
type Event struct {
	// Index is the retired-instruction ordinal within the context.
	Index uint64
	// Branch reports whether the instruction was a conditional branch.
	Branch bool
	// Mispredicted reports whether that branch missed (valid only when
	// Branch).
	Mispredicted bool
	// Cycle is the core clock after retirement.
	Cycle uint64
}

// Recorder captures events from one context into a bounded ring.
type Recorder struct {
	ctx      *cpu.Context
	ring     []Event
	next     int
	full     bool
	prev     cpu.Hook
	detached bool

	instr      uint64
	branches   uint64
	misses     uint64
	lastMisses uint64
}

// Attach installs a recorder on ctx keeping the most recent capacity
// events. It composes with any previously installed hook, recording
// before the previous hook runs — the scheduler's hook may park the
// thread, and the retired instruction must be observed before that
// happens. It panics on a non-positive capacity.
func Attach(ctx *cpu.Context, capacity int) *Recorder {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	r := &Recorder{ctx: ctx, ring: make([]Event, capacity)}
	r.lastMisses = ctx.ReadPMC(cpu.BranchMisses)
	r.prev = ctx.Hook()
	ctx.SetHook(func(isBranch bool) {
		if r.detached {
			if r.prev != nil {
				r.prev(isBranch)
			}
			return
		}
		r.record(isBranch)
		if r.prev != nil {
			r.prev(isBranch)
		}
	})
	return r
}

// Detach stops recording and restores the hook chain that was installed
// before Attach. Recorders must detach in LIFO order (the most recently
// attached first): detaching out of order would splice away recorders
// attached later, whose closures still reference this one — those keep
// working because a stale closure left on the context forwards to the
// restored chain without recording. Detach is idempotent; the recorder's
// ring and summary remain readable afterwards.
func (r *Recorder) Detach() {
	if r.detached {
		return
	}
	r.detached = true
	r.ctx.SetHook(r.prev)
}

func (r *Recorder) record(isBranch bool) {
	ev := Event{
		Index:  r.instr,
		Branch: isBranch,
		Cycle:  r.ctx.Core().Clock(),
	}
	r.instr++
	if isBranch {
		r.branches++
		if m := r.ctx.ReadPMC(cpu.BranchMisses); m != r.lastMisses {
			ev.Mispredicted = true
			r.misses += m - r.lastMisses
			r.lastMisses = m
		}
	}
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
}

// Events returns the recorded events in chronological order (at most the
// ring capacity, the most recent ones).
func (r *Recorder) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Summary aggregates a recorder's lifetime counts (not limited by ring
// capacity).
type Summary struct {
	Instructions uint64
	Branches     uint64
	Mispredicted uint64
}

// MissRate returns the misprediction rate over all recorded branches.
func (s Summary) MissRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicted) / float64(s.Branches)
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("%d instructions, %d branches, %d mispredicted (%.1f%%)",
		s.Instructions, s.Branches, s.Mispredicted, 100*s.MissRate())
}

// Summary returns lifetime counts.
func (r *Recorder) Summary() Summary {
	return Summary{Instructions: r.instr, Branches: r.branches, Mispredicted: r.misses}
}

// Directions renders the branch outcomes of the retained events as a
// compact string: '.' for a correctly predicted branch, 'M' for a
// mispredicted one. Non-branch events are skipped. Useful in test
// failures and the CLI's trace mode.
func (r *Recorder) Directions() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		if !ev.Branch {
			continue
		}
		if ev.Mispredicted {
			b.WriteByte('M')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}
