package trace

import (
	"strings"
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

func newCtx() *cpu.Context {
	return sched.NewSystem(uarch.Skylake(), 1).NewProcess("traced")
}

func TestRecorderCountsEvents(t *testing.T) {
	ctx := newCtx()
	r := Attach(ctx, 64)
	ctx.Branch(0x100, true) // fresh WN predicts not-taken: miss
	ctx.Nop(0x200)
	ctx.Work(3)
	s := r.Summary()
	if s.Instructions != 5 {
		t.Errorf("Instructions = %d, want 5", s.Instructions)
	}
	if s.Branches != 1 {
		t.Errorf("Branches = %d, want 1", s.Branches)
	}
	if s.Mispredicted != 1 {
		t.Errorf("Mispredicted = %d, want 1", s.Mispredicted)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestRecorderEventsChronological(t *testing.T) {
	ctx := newCtx()
	r := Attach(ctx, 8)
	for i := 0; i < 5; i++ {
		ctx.Nop(uint64(0x100 + i))
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Index != evs[i-1].Index+1 {
			t.Fatal("events out of order")
		}
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatal("cycles regressed")
		}
	}
}

func TestRecorderRingWraps(t *testing.T) {
	ctx := newCtx()
	r := Attach(ctx, 4)
	for i := 0; i < 10; i++ {
		ctx.Nop(uint64(0x100 + i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Index != 6 || evs[3].Index != 9 {
		t.Errorf("retained window [%d..%d], want [6..9]", evs[0].Index, evs[3].Index)
	}
	// Lifetime counts are not bounded by the ring.
	if r.Summary().Instructions != 10 {
		t.Errorf("lifetime instructions = %d", r.Summary().Instructions)
	}
}

func TestRecorderComposesWithSchedulerHook(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 2)
	var rec *Recorder
	th := sys.Spawn("victim", func(ctx *cpu.Context) {
		for i := 0; i < 6; i++ {
			ctx.Branch(0x300, true)
		}
	})
	// Attach after Spawn so the scheduler's hook is composed under ours.
	rec = Attach(th.Context(), 32)
	th.StepBranches(2)
	if got := rec.Summary().Branches; got != 2 {
		t.Errorf("after StepBranches(2): recorded %d branches", got)
	}
	th.Run()
	if got := rec.Summary().Branches; got != 6 {
		t.Errorf("after Run: recorded %d branches", got)
	}
}

func TestDetachRestoresPreviousHook(t *testing.T) {
	ctx := newCtx()
	var base int
	ctx.SetHook(func(isBranch bool) { base++ })
	r := Attach(ctx, 8)
	ctx.Nop(0x100)
	ctx.Nop(0x104)
	r.Detach()
	ctx.Nop(0x108)
	ctx.Nop(0x10c)

	// The previous hook saw every retirement; the recorder only the two
	// before Detach, and its ring stays readable afterwards.
	if base != 4 {
		t.Errorf("previous hook ran %d times, want 4", base)
	}
	if got := r.Summary().Instructions; got != 2 {
		t.Errorf("recorder captured %d instructions after detach, want 2", got)
	}
	if len(r.Events()) != 2 {
		t.Errorf("ring has %d events, want 2", len(r.Events()))
	}
	// Idempotent: a second Detach must not disturb the restored chain.
	r.Detach()
	ctx.Nop(0x110)
	if base != 5 {
		t.Errorf("previous hook ran %d times after double detach, want 5", base)
	}
}

func TestDetachLIFOComposition(t *testing.T) {
	ctx := newCtx()
	outer := Attach(ctx, 8)
	inner := Attach(ctx, 8) // wraps outer's closure
	ctx.Nop(0x100)

	// LIFO: detach inner first; outer keeps recording.
	inner.Detach()
	ctx.Nop(0x104)
	if got := inner.Summary().Instructions; got != 1 {
		t.Errorf("inner recorded %d, want 1", got)
	}
	if got := outer.Summary().Instructions; got != 2 {
		t.Errorf("outer recorded %d after inner detached, want 2", got)
	}

	outer.Detach()
	ctx.Nop(0x108)
	if got := outer.Summary().Instructions; got != 2 {
		t.Errorf("outer recorded %d after its own detach, want 2", got)
	}
	if ctx.Hook() != nil {
		t.Error("hook chain not fully restored")
	}
}

func TestDetachOutOfOrderStopsRecording(t *testing.T) {
	// Non-LIFO detach is documented as splicing away later recorders:
	// outer.Detach() reinstalls outer.prev, so inner stops seeing events.
	// When inner then detaches, it reinstalls outer's stale closure; the
	// detached guard keeps that closure from recording.
	ctx := newCtx()
	outer := Attach(ctx, 8)
	inner := Attach(ctx, 8)
	ctx.Nop(0x100)
	outer.Detach() // out of order: splices inner off the context
	ctx.Nop(0x104)
	if got := outer.Summary().Instructions; got != 1 {
		t.Errorf("outer recorded %d after detach, want 1", got)
	}
	if got := inner.Summary().Instructions; got != 1 {
		t.Errorf("inner recorded %d while spliced off, want 1", got)
	}
	inner.Detach() // reinstalls outer's stale (detached) closure
	ctx.Nop(0x108)
	if got := outer.Summary().Instructions; got != 1 {
		t.Errorf("outer's stale closure recorded after detach: %d events", got)
	}
}

func TestDirectionsRendering(t *testing.T) {
	ctx := newCtx()
	r := Attach(ctx, 32)
	// Train taken, then surprise twice: pattern ends with misses.
	for i := 0; i < 4; i++ {
		ctx.Branch(0x500, true)
	}
	ctx.Branch(0x500, false)
	ctx.Nop(0x600)
	s := r.Directions()
	if !strings.HasSuffix(s, "M") {
		t.Errorf("Directions = %q, want trailing M", s)
	}
	if strings.ContainsAny(s, "0123456789") {
		t.Errorf("unexpected characters in %q", s)
	}
	// First branch was a miss (fresh WN, taken), middle ones hits.
	if s != "M..."+"M" && s != "M...M" {
		t.Errorf("Directions = %q, want M...M", s)
	}
}

func TestAttachPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Attach(newCtx(), 0)
}

func TestMissRateEmpty(t *testing.T) {
	if (Summary{}).MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
}
