package campaign

import (
	"encoding/json"
	"fmt"
)

// The journal's CRC-framed line format doubles as the fabric wire
// format (see internal/fabric): a worker streams each finished task
// back to its coordinator as exactly the line a local campaign would
// have journaled, so a bit flip on the wire is caught by the same
// checksum that catches a bit flip on disk, and the coordinator can
// append received lines to its own journal without re-encoding.

// Frame renders one CRC-framed JSONL line for a payload under the
// given kind key ("header", "task", or a fabric wire kind). The
// checksum covers the exact payload bytes a reader will see.
func Frame(kind string, payload any) ([]byte, error) { return frame(kind, payload) }

// ParseFrame decodes and checksum-verifies one framed line of any
// kind, returning the kind key and its raw payload. Unlike the journal
// loader it accepts kinds beyond header/task — the fabric wire streams
// lease-renewal frames through the same framing.
func ParseFrame(line []byte) (kind string, payload json.RawMessage, err error) {
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(line, &fields); err != nil {
		return "", nil, fmt.Errorf("campaign: frame: %w", err)
	}
	sumRaw, ok := fields["sum"]
	if !ok {
		return "", nil, fmt.Errorf("campaign: frame has no checksum")
	}
	var sum string
	if err := json.Unmarshal(sumRaw, &sum); err != nil {
		return "", nil, fmt.Errorf("campaign: frame checksum: %w", err)
	}
	for k, v := range fields {
		if k == "sum" {
			continue
		}
		if kind != "" {
			return "", nil, fmt.Errorf("campaign: frame carries both %q and %q", kind, k)
		}
		kind, payload = k, v
	}
	if kind == "" {
		return "", nil, fmt.Errorf("campaign: frame has no payload")
	}
	if got := checksum(payload); got != sum {
		return "", nil, fmt.Errorf("campaign: frame %s: checksum %s, recorded %s", kind, got, sum)
	}
	return kind, payload, nil
}
