package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"branchscope/internal/engine"
)

// CrashExitCode is the exit status of a run killed by an armed chaos
// crash point — distinct from 1 (failed tasks) and 2 (usage) so CI can
// assert the crash actually fired.
const CrashExitCode = 3

// Campaign couples a journal with the engine runner: it journals every
// task outcome as it completes, replays completed tasks on resume, and
// optionally kills the process at an injected crash point.
type Campaign struct {
	// Journal is the open journal; Run appends to it.
	Journal *Journal
	// Replayed holds the completed task records recovered by Resume
	// (empty for a fresh campaign).
	Replayed []TaskRecord
	// CrashAfter, when > 0, crashes the process right after that many
	// task outcomes have been journaled by this process (see
	// chaos.Plan.CrashPoint). Replayed records don't count: the crash
	// point measures fresh progress, so a resumed run under the same
	// plan crashes again only after making that much new progress.
	CrashAfter int
	// CrashFn is the crash action; nil means os.Exit(CrashExitCode).
	// Tests substitute a non-exiting hook.
	CrashFn func()

	crashOnce sync.Once

	mu  sync.Mutex
	err error
}

// New creates a fresh campaign journaling to path.
func New(path string, h Header) (*Campaign, error) {
	j, err := Create(path, h)
	if err != nil {
		return nil, err
	}
	return &Campaign{Journal: j}, nil
}

// Resume reopens an interrupted campaign: it loads the journal
// tolerantly (dropping a torn final record), verifies the header
// matches the resuming invocation, compacts the surviving records back
// to disk atomically, and returns a campaign that will replay the
// completed tasks and re-run the rest.
func Resume(path string, want Header) (*Campaign, error) {
	h, recs, torn, err := Load(path)
	if err != nil {
		return nil, err
	}
	if err := headerMatches(h, want); err != nil {
		return nil, err
	}
	// Compact: rewrite header plus every surviving record via
	// temp+rename, dropping the torn tail so the reopened journal is
	// clean before new appends land. Failed-task records are dropped
	// too — their tasks are about to re-run and re-journal.
	var buf []byte
	line, err := frame("header", h)
	if err != nil {
		return nil, fmt.Errorf("campaign: re-encoding journal header: %w", err)
	}
	buf = append(buf, line...)
	completed := recs[:0]
	for _, rec := range recs {
		if !rec.Completed() {
			continue
		}
		line, err := frame("task", rec)
		if err != nil {
			return nil, fmt.Errorf("campaign: re-encoding task record %s: %w", rec.ID, err)
		}
		buf = append(buf, line...)
		completed = append(completed, rec)
	}
	if err := writeAtomic(path, buf); err != nil {
		return nil, fmt.Errorf("campaign: compacting journal: %w", err)
	}
	j, err := open(path)
	if err != nil {
		return nil, err
	}
	_ = torn // already healed by the compaction
	return &Campaign{Journal: j, Replayed: completed}, nil
}

// headerMatches verifies a loaded journal belongs to the resuming run.
func headerMatches(got, want Header) error {
	if got.RunID != "" && want.RunID != "" && got.RunID != want.RunID {
		return fmt.Errorf("campaign: journal belongs to run %s, this run is %s", got.RunID, want.RunID)
	}
	if got.Program != want.Program {
		return fmt.Errorf("campaign: journal belongs to program %q, this run is %q", got.Program, want.Program)
	}
	if got.BaseSeed != want.BaseSeed {
		return fmt.Errorf("campaign: journal was recorded with -seed %d, this run uses %d", got.BaseSeed, want.BaseSeed)
	}
	if got.Quick != want.Quick {
		return fmt.Errorf("campaign: journal was recorded with quick=%v, this run uses %v", got.Quick, want.Quick)
	}
	if len(got.Tasks) != len(want.Tasks) {
		return fmt.Errorf("campaign: journal covers %d tasks, this run selects %d", len(got.Tasks), len(want.Tasks))
	}
	for i := range got.Tasks {
		if got.Tasks[i] != want.Tasks[i] {
			return fmt.Errorf("campaign: journal task %d is %q, this run selects %q", i, got.Tasks[i], want.Tasks[i])
		}
	}
	return nil
}

// Run executes the suite durably: completed tasks from a resumed
// journal are replayed as reports (delivered to the runner's OnDone so
// trackers and ledgers see them), the rest run fresh through the
// runner, and every fresh outcome is journaled — fsynced — before it
// is observed. Reports come back in task order, exactly as
// Runner.RunSuite would return them. The runner's OnDone hook is
// temporarily wrapped and restored before Run returns.
//
// Determinism: task seeds derive from (base seed, task ID) alone, so
// the re-run subset executes with the same seeds the uninterrupted run
// used, and replayed results re-emit their checkpointed bytes verbatim
// — the merged report renders byte-identically to an uninterrupted
// run's at any parallelism.
func (c *Campaign) Run(ctx context.Context, r *engine.Runner, tasks []engine.Task, cfg engine.Config) ([]engine.Report, error) {
	done := make(map[string]TaskRecord, len(c.Replayed))
	for _, rec := range c.Replayed {
		if rec.Completed() {
			done[rec.ID] = rec
		}
	}
	var pending []engine.Task
	for _, t := range tasks {
		if _, ok := done[t.ID]; !ok {
			pending = append(pending, t)
		}
	}

	orig := r.OnDone
	r.OnDone = func(rep engine.Report) {
		n, err := c.Journal.Append(RecordOf(rep))
		if err != nil {
			c.mu.Lock()
			if c.err == nil {
				c.err = err
			}
			c.mu.Unlock()
		}
		if orig != nil {
			orig(rep)
		}
		if c.CrashAfter > 0 && n >= c.CrashAfter {
			c.crash()
		}
	}
	defer func() { r.OnDone = orig }()

	// Replay first: observers see the recovered history before fresh
	// progress, and in task order.
	replayed := make(map[string]engine.Report, len(done))
	for _, t := range tasks {
		rec, ok := done[t.ID]
		if !ok {
			continue
		}
		rep := ReplayReport(t, rec)
		// Replayed reports carry the live runner's identity like fresh
		// ones: the run identity is invocation-scoped, not attempt-scoped.
		rep.RunID = r.RunID
		replayed[t.ID] = rep
		if orig != nil {
			orig(rep)
		}
	}

	fresh := r.RunSuite(ctx, pending, cfg)

	reports := make([]engine.Report, 0, len(tasks))
	fi := 0
	for _, t := range tasks {
		if rep, ok := replayed[t.ID]; ok {
			reports = append(reports, rep)
			continue
		}
		reports = append(reports, fresh[fi])
		fi++
	}
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	return reports, err
}

// crash fires the crash point exactly once.
func (c *Campaign) crash() {
	c.crashOnce.Do(func() {
		if c.CrashFn != nil {
			c.CrashFn()
			return
		}
		os.Exit(CrashExitCode)
	})
}

// Crash fires the campaign's crash point (once, like the internal
// path). The fabric coordinator journals outcomes itself rather than
// through Run's OnDone wrapper, so it needs the same crash action when
// its append count reaches CrashAfter.
func (c *Campaign) Crash() { c.crash() }

// RecordOf converts a finished report into its journal record — the
// exact bytes Run would journal, and the fabric wire payload a worker
// streams back to its coordinator.
func RecordOf(rep engine.Report) TaskRecord {
	rec := TaskRecord{
		ID:       rep.Task.ID,
		Seed:     rep.Seed,
		Outcome:  rep.Outcome(),
		Attempts: rep.Attempts,
	}
	if rep.Err != nil {
		rec.Error = rep.Err.Error()
		return rec
	}
	rec.ResultText = rep.Result.String()
	rows := rep.Result.Rows()
	if rows != nil {
		rec.Rows = make([]json.RawMessage, 0, len(rows))
		for _, row := range rows {
			b, err := json.Marshal(row)
			if err != nil {
				// An unmarshalable row would also fail the JSON export;
				// journal the failure in place of silent truncation.
				b, _ = json.Marshal(map[string]string{"journal_error": err.Error()})
			}
			rec.Rows = append(rec.Rows, b)
		}
	}
	return rec
}

// ReplayReport reconstructs a completed task's report from its record:
// the report renders the record's checkpointed bytes verbatim, which is
// what makes both the resume path and the fabric merge byte-identical
// to an uninterrupted local run.
func ReplayReport(t engine.Task, rec TaskRecord) engine.Report {
	return engine.Report{
		Task:     t,
		Seed:     rec.Seed,
		Attempts: rec.Attempts,
		Replayed: true,
		Result:   replayResult{text: rec.ResultText, rows: rec.Rows},
	}
}

// replayResult renders a journaled result byte-for-byte: String
// returns the checkpointed text, Rows wraps the checkpointed row JSON
// in engine.RawRow so the export re-emits it verbatim.
type replayResult struct {
	text string
	rows []json.RawMessage
}

func (r replayResult) String() string { return r.text }

func (r replayResult) Rows() []engine.Row {
	if r.rows == nil {
		return nil
	}
	rows := make([]engine.Row, len(r.rows))
	for i, raw := range r.rows {
		rows[i] = engine.RawRow(raw)
	}
	return rows
}
