// Package campaign makes experiment suites durable: a crash-safe
// on-disk journal of per-task outcomes plus a resume path that replays
// completed tasks and re-runs only the rest, with the same derived
// seeds the uninterrupted run would have used. A run killed at any
// point — SIGKILL, power loss, an injected chaos crash point — and
// resumed converges to the byte-identical report of a run that was
// never interrupted.
//
// Durability model. The journal is JSONL: a header line followed by
// one line per finished task, each framed as
//
//	{"sum":"crc32:<8 hex>","header":{...}}   (first line)
//	{"sum":"crc32:<8 hex>","task":{...}}     (every further line)
//
// where the checksum covers the exact payload bytes. Records are
// flushed and fsynced as tasks complete, so the file never lies about
// a task that was reported done. The initial header is written via
// temp-file+rename (the journal exists atomically or not at all), and
// Resume compacts the surviving records the same way before appending.
// A torn final line — the crash arriving mid-append — is expected and
// dropped on load; a corrupt line anywhere earlier is real damage and
// fails the load.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Schema versions journal records; bump on incompatible change.
const Schema = "branchscope.campaign/v1"

// Header identifies the run a journal belongs to. Resume refuses a
// journal whose header disagrees with the resuming invocation: replaying
// task outcomes into a run with a different seed, scale or task list
// would silently splice unrelated results together.
type Header struct {
	Schema string `json:"schema"`
	// RunID is the run's causal identity (see internal/runstore).
	// Resume requires it to match when both sides carry one; empty on
	// either side is tolerated so pre-identity journals stay loadable.
	RunID    string `json:"run_id,omitempty"`
	Program  string `json:"program"`
	BaseSeed uint64 `json:"base_seed"`
	Quick    bool   `json:"quick"`
	// Tasks is the suite's full task-ID list in task order.
	Tasks []string `json:"tasks"`
}

// TaskRecord is one journaled task outcome. For successful tasks it
// carries the rendered result text and the raw row JSON, byte-for-byte
// as the engine's JSON export marshaled them — replaying a record
// re-emits exactly the bytes a fresh run would have produced.
type TaskRecord struct {
	ID       string `json:"id"`
	Seed     uint64 `json:"seed"`
	Outcome  string `json:"outcome"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// ResultText is Result.String() of a successful task.
	ResultText string `json:"result_text,omitempty"`
	// Rows holds each result row's marshaled JSON. nil (a result with
	// null rows) and empty (no rows) round-trip distinctly.
	Rows []json.RawMessage `json:"rows"`
}

// Completed reports whether the record settles its task: only genuine
// successes survive a resume; everything else re-runs.
func (r TaskRecord) Completed() bool {
	switch r.Outcome {
	case "ok", "retried-ok", "replayed":
		return true
	}
	return false
}

// envelope is the checksummed line framing.
type envelope struct {
	Sum    string          `json:"sum"`
	Header json.RawMessage `json:"header,omitempty"`
	Task   json.RawMessage `json:"task,omitempty"`
}

// checksum fingerprints a payload for the line frame.
func checksum(payload []byte) string {
	return fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(payload))
}

// frame renders one journal line for a payload.
func frame(kind string, payload any) ([]byte, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(envelope{Sum: checksum(body)})
	if err != nil {
		return nil, err
	}
	// Splice the payload under its kind key without re-encoding it:
	// the checksum must cover the exact bytes a reader will see.
	var buf bytes.Buffer
	buf.Write(line[:len(line)-1]) // drop the closing brace
	fmt.Fprintf(&buf, ",%q:", kind)
	buf.Write(body)
	buf.WriteString("}\n")
	return buf.Bytes(), nil
}

// Journal is an open campaign journal. Appends are mutex-serialized,
// flushed and fsynced per record.
type Journal struct {
	path string

	mu       sync.Mutex
	f        *os.File
	appended int
}

// Create writes a fresh journal for the run atomically (temp-file +
// rename) and returns it open for appending. An existing file at path
// is replaced: a non-resume run with -checkpoint starts a new campaign.
func Create(path string, h Header) (*Journal, error) {
	h.Schema = Schema
	line, err := frame("header", h)
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding journal header: %w", err)
	}
	if err := writeAtomic(path, line); err != nil {
		return nil, fmt.Errorf("campaign: creating journal: %w", err)
	}
	return open(path)
}

// open opens an existing journal file for appending.
func open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: opening journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// writeAtomic writes data to path via a sibling temp file, fsync and
// rename, so path either holds the complete content or its old one.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a journal tolerantly: it returns the header, every valid
// task record, and whether a torn final line was dropped. Checksum
// mismatches and malformed lines are fatal unless they are the very
// last content in the file (the crash-mid-append case).
func Load(path string) (h Header, recs []TaskRecord, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, false, fmt.Errorf("campaign: reading journal: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	var pending error
	sawHeader := false
	for i, raw := range lines {
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			continue
		}
		if pending != nil {
			// Content after a bad line: mid-file corruption, not a torn
			// tail.
			return Header{}, nil, false, pending
		}
		rec, perr := parseLine(line, i+1)
		if perr != nil {
			pending = perr
			continue
		}
		switch {
		case rec.Header != nil:
			if sawHeader {
				return Header{}, nil, false, fmt.Errorf("campaign: journal line %d: duplicate header", i+1)
			}
			if err := json.Unmarshal(rec.Header, &h); err != nil {
				return Header{}, nil, false, fmt.Errorf("campaign: journal line %d: bad header: %w", i+1, err)
			}
			if h.Schema != Schema {
				return Header{}, nil, false, fmt.Errorf("campaign: journal schema %q, want %q", h.Schema, Schema)
			}
			sawHeader = true
		case rec.Task != nil:
			if !sawHeader {
				return Header{}, nil, false, fmt.Errorf("campaign: journal line %d: task record before header", i+1)
			}
			var tr TaskRecord
			if err := json.Unmarshal(rec.Task, &tr); err != nil {
				return Header{}, nil, false, fmt.Errorf("campaign: journal line %d: bad task record: %w", i+1, err)
			}
			recs = append(recs, tr)
		}
	}
	if !sawHeader {
		if pending != nil {
			return Header{}, nil, false, fmt.Errorf("campaign: journal has no intact header: %w", pending)
		}
		return Header{}, nil, false, fmt.Errorf("campaign: journal %s has no header", path)
	}
	return h, recs, pending != nil, nil
}

// parseLine decodes and checksum-verifies one framed line.
func parseLine(line []byte, n int) (envelope, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return envelope{}, fmt.Errorf("campaign: journal line %d: %w", n, err)
	}
	payload := env.Header
	if payload == nil {
		payload = env.Task
	}
	if payload == nil {
		return envelope{}, fmt.Errorf("campaign: journal line %d: neither header nor task", n)
	}
	if got := checksum(payload); got != env.Sum {
		return envelope{}, fmt.Errorf("campaign: journal line %d: checksum %s, recorded %s", n, got, env.Sum)
	}
	return env, nil
}

// Append journals one task outcome, fsyncing before it returns so a
// crash immediately after cannot lose the record. It returns the total
// number of records appended by this process — the crash point's clock.
func (j *Journal) Append(rec TaskRecord) (int, error) {
	line, err := frame("task", rec)
	if err != nil {
		return 0, fmt.Errorf("campaign: encoding task record %s: %w", rec.ID, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return j.appended, fmt.Errorf("campaign: appending %s: %w", rec.ID, err)
	}
	if err := j.f.Sync(); err != nil {
		return j.appended, fmt.Errorf("campaign: syncing journal: %w", err)
	}
	j.appended++
	return j.appended, nil
}

// Sync flushes the journal file.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }
