package campaign

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"branchscope/internal/engine"
)

// escRes is a deterministic Result whose text and rows exercise JSON
// HTML escaping (<, >, &, quotes) — the byte-fidelity hazard of the
// replay path.
type escRes struct{ seed uint64 }

func (r escRes) String() string {
	return fmt.Sprintf("value <%d> & \"done\"\n", r.seed%97)
}
func (r escRes) Rows() []engine.Row {
	return []engine.Row{
		{engine.F("n", r.seed%97), engine.F("label", fmt.Sprintf("<%d> & \"x\"", r.seed%7))},
		{engine.F("n", r.seed%13), engine.F("label", "plain")},
	}
}

// nilRowsRes has String output but null rows — the nil-vs-empty
// round-trip case.
type nilRowsRes struct{}

func (nilRowsRes) String() string     { return "no rows here\n" }
func (nilRowsRes) Rows() []engine.Row { return nil }

func testTasks() []engine.Task {
	mk := func(id string) engine.Task {
		return engine.Task{ID: id, Artifact: "T", Description: "campaign test " + id,
			Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return escRes{seed: cfg.Seed}, nil
			}}
	}
	tasks := []engine.Task{mk("t0"), mk("t1"), mk("t2"), mk("t3"), mk("t4")}
	tasks = append(tasks, engine.Task{ID: "t5", Artifact: "T", Description: "nil rows",
		Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			return nilRowsRes{}, nil
		}})
	return tasks
}

func taskIDs(tasks []engine.Task) []string {
	ids := make([]string, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
	}
	return ids
}

// render produces the deterministic text + JSON export of a report
// slice, with the nondeterministic wall time zeroed as campaign mode
// does.
func render(t *testing.T, reports []engine.Report) (string, string) {
	t.Helper()
	for i := range reports {
		reports[i].Wall = 0
	}
	var txt, js bytes.Buffer
	engine.FormatText(&txt, reports)
	if err := engine.WriteJSON(&js, engine.ExportMeta{BaseSeed: 42, Quick: true}, reports); err != nil {
		t.Fatal(err)
	}
	return txt.String(), js.String()
}

// TestCrashResumeByteIdentical is the tentpole acceptance test: a run
// killed after its third journaled outcome — with a torn partial
// record appended, as a real mid-write crash would leave — and then
// resumed at a different parallelism produces byte-identical text and
// JSON exports to a run that was never interrupted.
func TestCrashResumeByteIdentical(t *testing.T) {
	tasks := testTasks()
	h := Header{Program: "test", BaseSeed: 42, Quick: true, Tasks: taskIDs(tasks)}
	cfg := engine.Config{Quick: true, Seed: 42}
	dir := t.TempDir()

	// Baseline: an uninterrupted campaign at -parallel 1.
	basePath := filepath.Join(dir, "base.journal")
	baseCamp, err := New(basePath, h)
	if err != nil {
		t.Fatal(err)
	}
	baseReports, err := baseCamp.Run(context.Background(), &engine.Runner{}, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseCamp.Journal.Close()
	baseTxt, baseJSON := render(t, baseReports)
	if !strings.Contains(baseJSON, `\u003c`) {
		t.Fatalf("test rows don't exercise HTML escaping:\n%s", baseJSON)
	}

	// Crashed run: sequential, killed (via context teardown, standing in
	// for os.Exit) right after the third journaled outcome.
	crashPath := filepath.Join(dir, "crash.journal")
	crashCamp, err := New(crashPath, h)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	crashCamp.CrashAfter = 3
	crashCamp.CrashFn = cancel
	if _, err := crashCamp.Run(ctx, &engine.Runner{}, tasks, cfg); err != nil {
		t.Fatal(err)
	}
	crashCamp.Journal.Close()
	// A real SIGKILL can additionally tear the in-flight append.
	f, err := os.OpenFile(crashPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"sum":"crc32:00000000","task":{"id":"t9","outco`)
	f.Close()

	_, recs, torn, err := Load(crashPath)
	if err != nil {
		t.Fatalf("torn journal must still load: %v", err)
	}
	if !torn {
		t.Error("torn tail not reported")
	}
	completed := 0
	for _, r := range recs {
		if r.Completed() {
			completed++
		}
	}
	if completed != 3 {
		t.Fatalf("crashed journal holds %d completed records, want 3", completed)
	}

	// Resume at -parallel 4: replay the three, re-run the rest.
	resumed, err := Resume(crashPath, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Replayed) != 3 {
		t.Fatalf("resume replayed %d tasks, want 3", len(resumed.Replayed))
	}
	var replayedSeen []string
	runner := &engine.Runner{
		Pool: engine.NewPool(4),
		OnDone: func(rep engine.Report) {
			if rep.Replayed {
				replayedSeen = append(replayedSeen, rep.Task.ID)
				if o := rep.Outcome(); o != "replayed" {
					t.Errorf("replayed report outcome = %q", o)
				}
			}
		},
	}
	resReports, err := resumed.Run(context.Background(), runner, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Journal.Close()
	if len(replayedSeen) != 3 {
		t.Errorf("OnDone saw %d replayed reports, want 3 (got %v)", len(replayedSeen), replayedSeen)
	}

	resTxt, resJSON := render(t, resReports)
	if resTxt != baseTxt {
		t.Errorf("resumed text differs from uninterrupted run:\n--- base ---\n%s\n--- resumed ---\n%s", baseTxt, resTxt)
	}
	if resJSON != baseJSON {
		t.Errorf("resumed JSON differs from uninterrupted run:\n--- base ---\n%s\n--- resumed ---\n%s", baseJSON, resJSON)
	}

	// The compacted journal is clean: a second resume sees no torn tail
	// and every task completed.
	_, recs, torn, err = Load(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("journal still torn after resume compaction")
	}
	if len(recs) != len(tasks) {
		t.Errorf("final journal holds %d records, want %d", len(recs), len(tasks))
	}
}

// TestResumeCompletedRunReplaysEverything: resuming a finished journal
// runs nothing and still renders identically.
func TestResumeCompletedRunReplaysEverything(t *testing.T) {
	tasks := testTasks()
	h := Header{Program: "test", BaseSeed: 42, Quick: true, Tasks: taskIDs(tasks)}
	cfg := engine.Config{Quick: true, Seed: 42}
	path := filepath.Join(t.TempDir(), "done.journal")

	camp, err := New(path, h)
	if err != nil {
		t.Fatal(err)
	}
	baseReports, err := camp.Run(context.Background(), &engine.Runner{}, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp.Journal.Close()
	baseTxt, baseJSON := render(t, baseReports)

	resumed, err := Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	wrapped := make([]engine.Task, len(tasks))
	copy(wrapped, tasks)
	for i := range wrapped {
		inner := wrapped[i].Run
		wrapped[i].Run = func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			ran++
			return inner(ctx, cfg)
		}
	}
	resReports, err := resumed.Run(context.Background(), &engine.Runner{}, wrapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Journal.Close()
	if ran != 0 {
		t.Errorf("%d tasks re-ran on a completed journal", ran)
	}
	resTxt, resJSON := render(t, resReports)
	if resTxt != baseTxt || resJSON != baseJSON {
		t.Error("full replay render differs from the original run")
	}
}

// TestResumeRejectsMismatchedHeader: a journal from a different seed,
// scale, program or task list must not be spliced into this run.
func TestResumeRejectsMismatchedHeader(t *testing.T) {
	tasks := testTasks()
	h := Header{Program: "test", BaseSeed: 42, Quick: true, Tasks: taskIDs(tasks)}
	path := filepath.Join(t.TempDir(), "h.journal")
	camp, err := New(path, h)
	if err != nil {
		t.Fatal(err)
	}
	camp.Journal.Close()

	cases := []struct {
		name string
		want Header
	}{
		{"seed", Header{Program: "test", BaseSeed: 43, Quick: true, Tasks: h.Tasks}},
		{"quick", Header{Program: "test", BaseSeed: 42, Quick: false, Tasks: h.Tasks}},
		{"program", Header{Program: "other", BaseSeed: 42, Quick: true, Tasks: h.Tasks}},
		{"tasks", Header{Program: "test", BaseSeed: 42, Quick: true, Tasks: h.Tasks[:3]}},
	}
	for _, tc := range cases {
		if _, err := Resume(path, tc.want); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		}
	}
	if _, err := Resume(path, h); err != nil {
		t.Errorf("matching header rejected: %v", err)
	}
}

// TestResumeRejectsForeignRunID: resuming under a different causal run
// identity is refused, and the refusal names both run IDs so the
// operator can see exactly which journal they grabbed and which run
// they are in.
func TestResumeRejectsForeignRunID(t *testing.T) {
	tasks := testTasks()
	h := Header{RunID: "bsr-aaaaaaaaaaaaaaaa", Program: "test", BaseSeed: 42, Quick: true, Tasks: taskIDs(tasks)}
	path := filepath.Join(t.TempDir(), "rid.journal")
	camp, err := New(path, h)
	if err != nil {
		t.Fatal(err)
	}
	camp.Journal.Close()

	want := h
	want.RunID = "bsr-bbbbbbbbbbbbbbbb"
	_, err = Resume(path, want)
	if err == nil {
		t.Fatal("foreign run ID accepted")
	}
	for _, id := range []string{h.RunID, want.RunID} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("refusal does not mention run ID %s: %v", id, err)
		}
	}

	// Either side lacking an identity is tolerated (pre-identity
	// journals stay resumable).
	blank := h
	blank.RunID = ""
	if _, err := Resume(path, blank); err != nil {
		t.Errorf("identity-less resume of an identified journal rejected: %v", err)
	}
}

// TestLoadRejectsTornMiddleRecord: a truncated record with valid
// content after it is mid-file damage and must fail loudly — only a
// torn *final* line (crash mid-append) may be dropped.
func TestLoadRejectsTornMiddleRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	j, err := Create(path, Header{Program: "test", Tasks: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(TaskRecord{ID: "a", Outcome: "ok", ResultText: "result a\n"}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(TaskRecord{ID: "b", Outcome: "ok", ResultText: "result b\n"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Tear record "a" in half, keeping record "b" intact after it.
	lines[1] = lines[1][:len(lines[1])/2]
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Load(path); err == nil {
		t.Fatal("torn middle record loaded without error (silent truncation)")
	}
}

// FuzzLoadTornMiddleRecord drives the mid-journal damage invariant: cut
// an arbitrary byte range out of a middle line and Load must either
// fail loudly or (when the cut removed nothing) return every record —
// never silently return a subset from a damaged non-final line.
func FuzzLoadTornMiddleRecord(f *testing.F) {
	f.Add(uint8(0), uint16(10), uint16(20))
	f.Add(uint8(1), uint16(0), uint16(1))
	f.Add(uint8(0), uint16(40), uint16(4))
	f.Add(uint8(1), uint16(60), uint16(500))
	f.Fuzz(func(t *testing.T, which uint8, start, n uint16) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		j, err := Create(path, Header{Program: "fuzz", Tasks: []string{"a", "b", "c"}})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"a", "b", "c"} {
			if _, err := j.Append(TaskRecord{ID: id, Outcome: "ok", ResultText: "result " + id + "\n"}); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(data, []byte("\n"))
		// lines: header, a, b, c, "" — damage record a or b, never the
		// final record (a torn tail is legitimately dropped).
		idx := 1 + int(which)%2
		line := lines[idx]
		lo := int(start) % (len(line) + 1)
		hi := lo + int(n)
		if hi > len(line) {
			hi = len(line)
		}
		mutated := append(append([]byte{}, line[:lo]...), line[hi:]...)
		lines[idx] = mutated
		if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
			t.Fatal(err)
		}

		_, recs, _, err := Load(path)
		switch {
		case lo == hi:
			// Nothing removed: the journal is intact and every record
			// must come back.
			if err != nil {
				t.Fatalf("unmodified journal failed to load: %v", err)
			}
			if len(recs) != 3 {
				t.Fatalf("unmodified journal returned %d records, want 3", len(recs))
			}
		case len(mutated) == 0:
			// The whole line vanished — indistinguishable from a journal
			// that never had it; Load cannot detect this, but it must not
			// crash or mis-parse the surviving lines.
			if err == nil && len(recs) != 2 {
				t.Fatalf("empty-line journal returned %d records, want 2", len(recs))
			}
		default:
			// A damaged non-final line with valid content after it must
			// fail loudly, never silently truncate.
			if err == nil {
				t.Fatalf("mid-journal damage (line %d, cut [%d:%d]) loaded without error: %d records", idx, lo, hi, len(recs))
			}
		}
	})
}

// TestLoadRejectsMidFileCorruption: a damaged line with valid content
// after it is real corruption, not a torn tail.
func TestLoadRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Create(path, Header{Program: "test", Tasks: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(TaskRecord{ID: "a", Outcome: "ok"}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(TaskRecord{ID: "b", Outcome: "ok"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Flip a byte inside the first task record's payload.
	lines[1] = bytes.Replace(lines[1], []byte(`"id":"a"`), []byte(`"id":"X"`), 1)
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Load(path); err == nil {
		t.Fatal("mid-file checksum corruption loaded without error")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("error does not identify the checksum mismatch: %v", err)
	}
}

// TestCrashAfterCountsFreshOutcomesOnly: the crash point's clock is
// appends by this process, so a resumed run under the same plan makes
// the same amount of new progress before crashing again.
func TestCrashAfterCountsFreshOutcomesOnly(t *testing.T) {
	tasks := testTasks()
	h := Header{Program: "test", BaseSeed: 42, Quick: true, Tasks: taskIDs(tasks)}
	cfg := engine.Config{Quick: true, Seed: 42}
	path := filepath.Join(t.TempDir(), "cc.journal")

	camp, err := New(path, h)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	camp.CrashAfter = 2
	crashes := 0
	camp.CrashFn = func() { crashes++; cancel() }
	if _, err := camp.Run(ctx, &engine.Runner{}, tasks, cfg); err != nil {
		t.Fatal(err)
	}
	camp.Journal.Close()
	if crashes != 1 {
		t.Fatalf("crash fired %d times, want 1", crashes)
	}

	resumed, err := Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Replayed) != 2 {
		t.Fatalf("replayed %d, want 2", len(resumed.Replayed))
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	resumed.CrashAfter = 2
	resumed.CrashFn = func() { crashes++; cancel2() }
	if _, err := resumed.Run(ctx2, &engine.Runner{}, tasks, cfg); err != nil {
		t.Fatal(err)
	}
	resumed.Journal.Close()
	if crashes != 2 {
		t.Fatalf("resumed run's crash point did not fire on fresh progress (crashes=%d)", crashes)
	}
	// Two fresh completions per killed run: one more resume replays 4.
	final, err := Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Replayed) != 4 {
		t.Errorf("after two crashes, %d tasks completed, want 4", len(final.Replayed))
	}
	final.Journal.Close()
}

// TestJournalFailureSurfacesFromRun: appends against a closed journal
// must surface as Run's error, not vanish.
func TestJournalFailureSurfacesFromRun(t *testing.T) {
	tasks := testTasks()
	h := Header{Program: "test", BaseSeed: 42, Quick: true, Tasks: taskIDs(tasks)}
	path := filepath.Join(t.TempDir(), "f.journal")
	camp, err := New(path, h)
	if err != nil {
		t.Fatal(err)
	}
	camp.Journal.Close() // sabotage: every append now fails
	if _, err := camp.Run(context.Background(), &engine.Runner{}, tasks, engine.Config{Quick: true, Seed: 42}); err == nil {
		t.Fatal("Run succeeded with a dead journal")
	}
}
