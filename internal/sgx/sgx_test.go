package sgx

import (
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

func TestEnclaveStepping(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	e := Launch(sys, "trojan", func(ctx *cpu.Context) {
		for i := 0; i < 10; i++ {
			ctx.Work(2)
			ctx.Branch(0x100, i%2 == 0)
		}
	})
	defer e.Destroy()
	if e.Finished() {
		t.Fatal("enclave ran before being stepped")
	}
	if !e.StepBranches(1) {
		t.Fatal("enclave finished after one branch")
	}
	if !e.StepInstructions(5) {
		t.Fatal("enclave finished after five instructions")
	}
}

func TestEnclaveRunToCompletion(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	done := false
	e := Launch(sys, "t", func(ctx *cpu.Context) {
		ctx.Branch(0x10, true)
		done = true
	})
	e.Run()
	if !done || !e.Finished() {
		t.Error("enclave did not complete")
	}
}

func TestInterruptChargesAEX(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	e := Launch(sys, "t", func(ctx *cpu.Context) {
		for {
			ctx.Branch(0x10, true)
		}
	})
	defer e.Destroy()
	c0 := sys.Core().Clock()
	e.StepBranches(1)
	if delta := sys.Core().Clock() - c0; delta < AEXCycles {
		t.Errorf("interrupt advanced clock by %d, want >= %d (AEX)", delta, AEXCycles)
	}
}

// TestEnclaveSharesBPU verifies the attack surface: enclave branch
// history is visible to a non-enclave process through the shared
// predictor — the §9 premise.
func TestEnclaveSharesBPU(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	e := Launch(sys, "t", func(ctx *cpu.Context) {
		for i := 0; i < 4; i++ {
			ctx.Branch(0x2000, true)
		}
	})
	defer e.Destroy()
	e.StepBranches(4)
	spy := sys.NewProcess("spy")
	before := spy.ReadPMC(cpu.BranchMisses)
	spy.Branch(0x2000, true)
	if spy.ReadPMC(cpu.BranchMisses) != before {
		t.Error("spy mispredicted: enclave BPU state not shared")
	}
}
