// Package sgx models the Intel SGX isolated-execution environment the
// paper attacks in §9: an enclave whose memory is inaccessible to the
// rest of the system — including the OS — but whose execution shares the
// physical core's branch prediction unit with untrusted code.
//
// The SGX threat model hands the attacker the operating system. For
// BranchScope that buys two things (§9.2):
//
//   - precise scheduling: the malicious OS can configure the APIC timer
//     to interrupt the enclave after a handful of instructions, or unmap
//     pages to fault at a chosen point, so the victim can be stepped one
//     branch at a time without the user-space slowdown tricks;
//   - a quiet machine: the OS prevents other processes from running,
//     suppressing noise.
//
// An Enclave wraps a scheduled thread. Memory isolation holds by
// construction — the enclave's state lives in its process function's
// closure, and nothing in this repository reaches into another process's
// memory — while the BPU remains shared, which is the entire attack
// surface. Each interrupt charges an asynchronous-exit (AEX) plus
// ERESUME cost to the core clock via a kernel context, modelling the
// world-switch overhead.
package sgx

import (
	"branchscope/internal/cpu"
	"branchscope/internal/sched"
	"branchscope/internal/telemetry"
)

// AEXCycles approximates the cost of one asynchronous enclave exit plus
// ERESUME round trip, charged to the core for every attacker-forced
// interrupt.
const AEXCycles = 7000

// Enclave is a victim process running inside an SGX enclave, stepped by
// the attacker-controlled OS.
type Enclave struct {
	thread *sched.Thread
	kernel *cpu.Context

	// Telemetry handles, captured from the system at launch (nil when
	// disabled).
	tel         *telemetry.Set
	entries     *telemetry.Counter
	exits       *telemetry.Counter
	singleSteps *telemetry.Counter
	instrSteps  *telemetry.Counter
}

// Launch creates an enclave running fn on the system. The returned
// enclave starts suspended; the (attacker-controlled) OS resumes it via
// the stepping methods.
func Launch(sys *sched.System, name string, fn func(*cpu.Context)) *Enclave {
	e := &Enclave{
		thread: sys.Spawn("enclave:"+name, fn),
		kernel: sys.Core().NewContext(0), // domain 0: the kernel
		tel:    sys.Telemetry(),
	}
	e.tel.Counter("sgx.enclaves").Inc()
	e.tel.NameThread(e.kernel.TID(), "kernel(sgx)")
	e.entries = e.tel.Counter("sgx.enclave_entries")
	e.exits = e.tel.Counter("sgx.enclave_exits")
	e.singleSteps = e.tel.Counter("sgx.single_steps")
	e.instrSteps = e.tel.Counter("sgx.instruction_steps")
	return e
}

// aex charges the world-switch overhead of one forced interrupt and, with
// telemetry attached, records the exit and an "aex+eresume" span on the
// kernel's trace timeline.
func (e *Enclave) aex() {
	var start uint64
	if e.tel != nil {
		start = e.kernel.Core().Clock()
	}
	e.kernel.Work(AEXCycles)
	if e.tel != nil {
		e.exits.Inc()
		e.tel.Span(e.kernel.TID(), "sgx", "aex+eresume", start, e.kernel.Core().Clock(), nil)
	}
}

// StepBranches resumes the enclave until k conditional branches have
// retired, then interrupts it (APIC-timer single-stepping, §9.2). It
// reports whether the enclave is still running. It implements
// core.Stepper, so an Enclave can be attacked exactly like a regular
// process — which is the point of §9.
func (e *Enclave) StepBranches(k int) bool {
	e.entries.Inc()
	e.singleSteps.Inc()
	alive := e.thread.StepBranches(k)
	e.aex()
	return alive
}

// StepInstructions resumes the enclave for n instructions, then
// interrupts it (page-fault stepping: the OS unmaps a page to force an
// exit, §9.2).
func (e *Enclave) StepInstructions(n int) bool {
	e.entries.Inc()
	e.instrSteps.Inc()
	alive := e.thread.Step(n)
	e.aex()
	return alive
}

// Run lets the enclave execute to completion without interruption.
func (e *Enclave) Run() { e.thread.Run() }

// Finished reports whether the enclave's entry function returned.
func (e *Enclave) Finished() bool { return e.thread.Finished() }

// Destroy tears the enclave down (EREMOVE).
func (e *Enclave) Destroy() { e.thread.Kill() }
