// Package core implements the BranchScope attack — the paper's primary
// contribution (§4–§8): inferring the direction of a victim's conditional
// branch by manipulating the shared directional branch predictor.
//
// The attack proceeds in three stages per leaked bit:
//
//	Stage 1 (prime):  the spy executes a randomization block of branch
//	                  instructions (§5.2, Listing 1) that forces both the
//	                  spy and victim branches into 1-level prediction mode
//	                  and leaves the target PHT entry in a chosen strong
//	                  state (§6.2).
//	Stage 2 (target): the victim executes the monitored branch once.
//	Stage 3 (probe):  the spy executes its own branch — placed at the
//	                  same virtual address, hence colliding in the PHT —
//	                  twice, observing for each execution whether it was
//	                  predicted correctly, and decodes the victim's
//	                  direction from the observation pattern (Table 1,
//	                  Figure 6).
//
// Observations come either from the branch-misprediction performance
// counter (§7) or from rdtscp timing (§8); both probe flavours are
// implemented.
//
// Everything in this package operates strictly through the architectural
// interface of cpu.Context (Branch/ReadTSC/ReadPMC) — the same interface
// a real attacker has. It never reads simulator internals; decode
// dictionaries are derived from observed behaviour exactly as the paper
// derives them.
package core
