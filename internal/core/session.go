package core

import (
	"fmt"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
)

// AttackConfig parameterizes a BranchScope attack session.
type AttackConfig struct {
	// Search configures randomization-block generation and the §6.2
	// pre-attack search. Search.TargetAddr must be the victim branch
	// address.
	Search SearchConfig
	// MaxCandidates bounds the pre-attack block search.
	MaxCandidates int
	// UseTiming selects rdtscp probing (§8) instead of the
	// branch-misprediction PMC (§7). Timing probes are noisier.
	UseTiming bool
	// TimingCalibrationReps is the number of calibration samples per
	// class for the timing detector (default 2000).
	TimingCalibrationReps int
}

// Session is a ready-to-use BranchScope attack instance: a spy context, a
// pre-searched randomization block that primes the target PHT entry into
// the strongly-not-taken state, and a probe strategy.
//
// The standard configuration primes SN and probes with two taken
// branches; DecodeBit's dictionary corresponds to it. (On every modelled
// FSM this configuration is unambiguous; in particular it sidesteps the
// Skylake ST/WT indistinguishability, as §6.1 notes the attacker can.)
type Session struct {
	spy      *cpu.Context
	cfg      AttackConfig
	block    *Block
	analysis BlockAnalysis
	detector *TimingDetector
}

// NewSession performs the one-time pre-attack work (block search, and
// timing calibration when UseTiming) and returns an attack session. spy
// is the attacker's hardware context; r drives block generation.
func NewSession(spy *cpu.Context, r *rng.Source, cfg AttackConfig) (*Session, error) {
	if cfg.Search.TargetAddr == 0 {
		return nil, fmt.Errorf("core: AttackConfig.Search.TargetAddr not set")
	}
	cfg.Search = cfg.Search.withDefaults()
	block, analysis, err := FindBlock(spy, r, cfg.Search, StateSN, cfg.MaxCandidates)
	if err != nil {
		return nil, err
	}
	s := &Session{spy: spy, cfg: cfg, block: block, analysis: analysis}
	if cfg.UseTiming {
		reps := cfg.TimingCalibrationReps
		if reps == 0 {
			reps = 2000
		}
		s.detector = CalibrateTiming(spy, cfg.Search.SpyBase+1<<20, reps)
	}
	return s, nil
}

// Block returns the selected randomization block.
func (s *Session) Block() *Block { return s.block }

// Analysis returns the pre-attack characterization of the block.
func (s *Session) Analysis() BlockAnalysis { return s.analysis }

// Detector returns the calibrated timing detector (nil unless UseTiming).
func (s *Session) Detector() *TimingDetector { return s.detector }

// Spy returns the attacker's hardware context.
func (s *Session) Spy() *cpu.Context { return s.spy }

// Prime executes attack stage 1: run the randomization block, forcing
// 1-level prediction for the target branch and leaving its PHT entry in
// the strongly-not-taken state.
func (s *Session) Prime() {
	s.block.Run(s.spy)
}

// Probe executes attack stage 3 and returns the observation pattern. It
// uses the PMC or the timestamp counter per the session configuration.
func (s *Session) Probe() Pattern {
	if s.cfg.UseTiming {
		sample := ProbeTSC(s.spy, s.cfg.Search.TargetAddr, true)
		return MakePattern(s.detector.Miss(sample.First), s.detector.Miss(sample.Second))
	}
	return ProbePMC(s.spy, s.cfg.Search.TargetAddr, true)
}

// Stepper lets the attacker run the victim for an exact number of
// conditional branches — the victim-slowdown capability of the threat
// model (§3). sched.Thread and sgx.Enclave implement it.
type Stepper interface {
	StepBranches(k int) bool
}

// SpyBit performs one full attack episode against a steppable victim:
// prime, let the victim execute exactly one branch, probe, decode. before
// and after, when non-nil, run between the stages (noise injection
// points). It returns the inferred direction of the victim's branch.
func (s *Session) SpyBit(victim Stepper, before, after func()) bool {
	s.Prime()
	if before != nil {
		before()
	}
	victim.StepBranches(1)
	if after != nil {
		after()
	}
	return DecodeBit(s.Probe())
}
