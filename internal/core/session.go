package core

import (
	"fmt"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/telemetry"
)

// AttackConfig parameterizes a BranchScope attack session.
type AttackConfig struct {
	// Search configures randomization-block generation and the §6.2
	// pre-attack search. Search.TargetAddr must be the victim branch
	// address.
	Search SearchConfig
	// MaxCandidates bounds the pre-attack block search.
	MaxCandidates int
	// UseTiming selects rdtscp probing (§8) instead of the
	// branch-misprediction PMC (§7). Timing probes are noisier.
	UseTiming bool
	// TimingCalibrationReps is the number of calibration samples per
	// class for the timing detector. Zero or negative falls back to
	// DefaultTimingCalibrationReps.
	TimingCalibrationReps int
	// Retry configures the resilient read path (ReadBit). The zero
	// value keeps ReadBit single-shot; SpyBit ignores it entirely.
	Retry RetryConfig
	// Degrade arms the health gate that falls back from PMC probing to
	// rdtscp timing probing when PMC readouts turn implausible (see
	// degrade.go). The zero value disables it. Ignored on sessions that
	// already probe with timing (UseTiming).
	Degrade DegradeConfig
	// EpisodeHook, when non-nil, receives one EpisodeObservation per
	// prime–step–probe episode, immediately after the probe. It feeds
	// the leakage estimators' raw-signal (SNR) path; keep it cheap and
	// non-blocking — it runs inside the episode loop.
	EpisodeHook func(EpisodeObservation)
}

// EpisodeObservation is the per-episode raw measurement handed to
// AttackConfig.EpisodeHook: the decoded pattern plus the underlying
// probe signal (first/second probe rdtscp latencies on timing
// sessions, PMC deltas across the two probe branches otherwise).
type EpisodeObservation struct {
	// Pattern is the decoded observation pattern of the episode.
	Pattern Pattern
	// First and Second are the raw per-probe signals: rdtscp latencies
	// when Timing, branch-mispredict PMC deltas (saturating, since a
	// faulty PMC under chaos can read backwards) when not.
	First, Second uint64
	// Timing reports which signal source produced First/Second.
	Timing bool
}

// DefaultTimingCalibrationReps is the documented default calibration
// sample count per class when TimingCalibrationReps is not positive.
const DefaultTimingCalibrationReps = 2000

// Session is a ready-to-use BranchScope attack instance: a spy context, a
// pre-searched randomization block that primes the target PHT entry into
// the strongly-not-taken state, and a probe strategy.
//
// The standard configuration primes SN and probes with two taken
// branches; DecodeBit's dictionary corresponds to it. (On every modelled
// FSM this configuration is unambiguous; in particular it sidesteps the
// Skylake ST/WT indistinguishability, as §6.1 notes the attacker can.)
type Session struct {
	spy      *cpu.Context
	cfg      AttackConfig
	block    *Block
	analysis BlockAnalysis
	detector *TimingDetector
	tel      *sessionTel

	// probeRB is the target spy branch with its predictor indexes
	// resolved once at session construction: every probe of the
	// session's lifetime executes this one branch twice.
	probeRB cpu.ResolvedBranch

	// Resilient-read state (see resilient.go): the scratch-address
	// cursor for drift checks and recalibrations, the episode count
	// since the last drift check, and recalibration statistics.
	calCursor    uint64
	sinceCheck   int
	recalibrated int

	// Health-gate state (see degrade.go): probes and implausible-probe
	// faults in the current window, and whether the session has fallen
	// back to timing probing.
	healthProbes int
	healthFaults int
	degraded     bool

	// lastObs carries the raw probe signal from Probe to emitEpisode
	// for the episode hook (see AttackConfig.EpisodeHook).
	lastObs EpisodeObservation
}

// sessionTel caches the per-session telemetry handles (nil when the
// spy's core has no telemetry attached). Episode instrumentation is the
// observable heart of the attack: one span per prime–step–probe episode
// with per-stage children, cycle-cost histograms per stage, and the
// MM/MH/HM/HH pattern distribution the paper's Table 1 decodes.
type sessionTel struct {
	set      *telemetry.Set
	tid      int
	episodes *telemetry.Counter
	patterns [4]*telemetry.Counter // indexed by patternIndex order
	prime    *telemetry.Histogram
	step     *telemetry.Histogram
	probe    *telemetry.Histogram
	episode  *telemetry.Histogram

	// Resilient-read and health-gate counters (resilient.go,
	// degrade.go), resolved once here: a registry lookup hashes the
	// metric name, which is far too expensive for the per-read path.
	retries      *telemetry.Counter
	outliers     *telemetry.Counter
	unknown      *telemetry.Counter
	driftChecks  *telemetry.Counter
	driftRecals  *telemetry.Counter
	degradations *telemetry.Counter
}

// sessionCycleBuckets spans ~64 cycles (a bare probe) to ~2M cycles
// (an episode with heavy noise and SGX world switches).
func sessionCycleBuckets() []uint64 { return telemetry.ExpBuckets(64, 2, 16) }

func newSessionTel(set *telemetry.Set, spy *cpu.Context) *sessionTel {
	t := &sessionTel{
		set:          set,
		tid:          spy.TID(),
		episodes:     set.Counter("core.episodes"),
		prime:        set.Histogram("core.cycles.prime", sessionCycleBuckets()),
		step:         set.Histogram("core.cycles.step", sessionCycleBuckets()),
		probe:        set.Histogram("core.cycles.probe", sessionCycleBuckets()),
		episode:      set.Histogram("core.cycles.episode", sessionCycleBuckets()),
		retries:      set.Counter("core.read.retries"),
		outliers:     set.Counter("core.read.outliers"),
		unknown:      set.Counter("core.read.unknown"),
		driftChecks:  set.Counter("core.timing.drift_checks"),
		driftRecals:  set.Counter("core.timing.drift_recalibrations"),
		degradations: set.Counter("core.probe.degradations"),
	}
	for i, p := range []Pattern{PatternHH, PatternHM, PatternMH, PatternMM} {
		t.patterns[i] = set.Counter("core.patterns." + string(p))
	}
	return t
}

// patternIndex maps a pattern to its counter slot.
func patternIndex(p Pattern) int {
	switch p {
	case PatternHH:
		return 0
	case PatternHM:
		return 1
	case PatternMH:
		return 2
	default:
		return 3
	}
}

// observeEpisode records one episode's metrics and trace spans. The
// timestamps are core clock readings at the stage boundaries.
func (t *sessionTel) observeEpisode(t0, t1, t2, t3 uint64, p Pattern, bit bool) {
	t.episodes.Inc()
	t.patterns[patternIndex(p)].Inc()
	t.prime.Observe(t1 - t0)
	t.step.Observe(t2 - t1)
	t.probe.Observe(t3 - t2)
	t.episode.Observe(t3 - t0)
	t.set.Span(t.tid, "attack", "episode", t0, t3, nil)
	t.set.Span(t.tid, "attack", "prime", t0, t1, nil)
	t.set.Span(t.tid, "attack", "step", t1, t2, nil)
	t.set.Span(t.tid, "attack", "probe", t2, t3, nil)
	t.set.Instant(t.tid, "attack", "decode", t3, map[string]any{
		"pattern": string(p), "bit": bit,
	})
}

// NewSession performs the one-time pre-attack work (block search, and
// timing calibration when UseTiming) and returns an attack session. spy
// is the attacker's hardware context; r drives block generation.
func NewSession(spy *cpu.Context, r *rng.Source, cfg AttackConfig) (*Session, error) {
	if cfg.Search.TargetAddr == 0 {
		return nil, fmt.Errorf("core: AttackConfig.Search.TargetAddr not set")
	}
	cfg.Search = cfg.Search.withDefaults()
	cfg.Degrade = cfg.Degrade.withDefaults()
	block, analysis, err := FindBlock(spy, r, cfg.Search, StateSN, cfg.MaxCandidates)
	if err != nil {
		return nil, err
	}
	s := &Session{spy: spy, cfg: cfg, block: block, analysis: analysis}
	s.probeRB = spy.ResolveBranch(cfg.Search.TargetAddr)
	if set := spy.Core().Telemetry(); set != nil {
		s.tel = newSessionTel(set, spy)
	}
	if cfg.UseTiming {
		// Normalize here, not just in CalibrateTiming: the session's
		// recalibration path reuses the value, and a negative
		// misconfiguration must mean "default", never a zero-sample
		// detector.
		if s.cfg.TimingCalibrationReps <= 0 {
			s.cfg.TimingCalibrationReps = DefaultTimingCalibrationReps
		}
		reps := s.cfg.TimingCalibrationReps
		s.detector = CalibrateTiming(spy, cfg.Search.SpyBase+1<<20, reps)
		// Drift checks and recalibrations burn fresh scratch addresses
		// beyond the initial calibration range.
		s.calCursor = cfg.Search.SpyBase + 2<<20
	}
	return s, nil
}

// Block returns the selected randomization block.
func (s *Session) Block() *Block { return s.block }

// Analysis returns the pre-attack characterization of the block.
func (s *Session) Analysis() BlockAnalysis { return s.analysis }

// Detector returns the calibrated timing detector (nil unless UseTiming).
func (s *Session) Detector() *TimingDetector { return s.detector }

// Spy returns the attacker's hardware context.
func (s *Session) Spy() *cpu.Context { return s.spy }

// Prime executes attack stage 1: run the randomization block, forcing
// 1-level prediction for the target branch and leaving its PHT entry in
// the strongly-not-taken state.
func (s *Session) Prime() {
	s.block.Run(s.spy)
}

// Probe executes attack stage 3 and returns the observation pattern. It
// uses the PMC or the timestamp counter per the session configuration —
// or timing regardless of configuration once the health gate has
// degraded the session (see degrade.go).
func (s *Session) Probe() Pattern {
	if s.cfg.UseTiming || s.degraded {
		sample := ProbeTSCResolved(s.spy, &s.probeRB, true)
		s.noteProbe(sample.First, sample.Second, true)
		return MakePattern(s.detector.Miss(sample.First), s.detector.Miss(sample.Second))
	}
	m0, m1, m2 := ProbePMCReadingsResolved(s.spy, &s.probeRB, true)
	s.observePMCHealth(m0, m1, m2)
	s.noteProbe(satSub(m1, m0), satSub(m2, m1), false)
	return MakePattern(m1 > m0, m2 > m1)
}

// noteProbe stashes the raw probe signal of the in-flight episode for
// the episode hook. It only spends work when a hook is installed.
func (s *Session) noteProbe(first, second uint64, timing bool) {
	if s.cfg.EpisodeHook == nil {
		return
	}
	s.lastObs = EpisodeObservation{First: first, Second: second, Timing: timing}
}

// emitEpisode delivers the finished episode to the hook, attaching the
// decoded pattern to the signal noteProbe stashed.
func (s *Session) emitEpisode(p Pattern) {
	if s.cfg.EpisodeHook == nil {
		return
	}
	obs := s.lastObs
	obs.Pattern = p
	s.cfg.EpisodeHook(obs)
}

// satSub is a saturating subtraction: chaos-faulted PMC readouts can
// move backwards, and a wrapped uint64 delta would poison the signal
// statistics.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Stepper lets the attacker run the victim for an exact number of
// conditional branches — the victim-slowdown capability of the threat
// model (§3). sched.Thread and sgx.Enclave implement it.
type Stepper interface {
	StepBranches(k int) bool
}

// SpyBit performs one full attack episode against a steppable victim:
// prime, let the victim execute exactly one branch, probe, decode. before
// and after, when non-nil, run between the stages (noise injection
// points). It returns the inferred direction of the victim's branch.
//
// With telemetry attached to the spy's core, each episode emits an
// "episode" span with prime/step/probe children and a "decode" instant
// on the spy's trace timeline, and feeds the episode counters, pattern
// distribution and per-stage cycle histograms. The step stage includes
// the surrounding noise-injection callbacks — it is the paper's "window
// in which the victim runs" (§7).
func (s *Session) SpyBit(victim Stepper, before, after func()) bool {
	return DecodeBit(s.episode(victim, before, after))
}

// episode runs one prime–step–probe episode and returns the raw
// observation pattern. SpyBit decodes it directly; ReadBit treats it as
// one vote of a resilient read.
func (s *Session) episode(victim Stepper, before, after func()) Pattern {
	if s.tel == nil {
		s.Prime()
		if before != nil {
			before()
		}
		victim.StepBranches(1)
		if after != nil {
			after()
		}
		p := s.Probe()
		s.emitEpisode(p)
		return p
	}
	clk := s.spy.Core()
	t0 := clk.Clock()
	s.Prime()
	t1 := clk.Clock()
	if before != nil {
		before()
	}
	victim.StepBranches(1)
	if after != nil {
		after()
	}
	t2 := clk.Clock()
	p := s.Probe()
	t3 := clk.Clock()
	s.tel.observeEpisode(t0, t1, t2, t3, p, DecodeBit(p))
	s.emitEpisode(p)
	return p
}
