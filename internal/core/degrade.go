package core

// Health-gated probe degradation: §7's PMC probe is the cleanest
// channel, but it depends on a perf subsystem an adversarial or merely
// busy machine can glitch — saturated readouts, counter resets on
// migration, garbage windows. The paper's own fallback is §8: the
// rdtscp timing probe needs no kernel cooperation at all. This file
// automates that retreat. The session watches every PMC probe for
// readings that cannot come from an intact counter and, when the
// observed fault rate over a sliding window trips a threshold, falls
// back to timing probes for the rest of the session — calibrating a
// timing detector on the spot if the session never had one.

// DegradeConfig arms the health gate of a PMC-probing session. The
// zero value disables degradation entirely (the default: sessions
// behave exactly as configured, and only opt-in harnesses trade probe
// identity for availability).
type DegradeConfig struct {
	// MaxFaultRate in (0, 1] is the anomalous-probe fraction per window
	// that trips the fallback; <= 0 disables the gate.
	MaxFaultRate float64
	// Window is the number of probes per health window (default
	// DefaultDegradeWindow).
	Window int
}

const (
	// DefaultDegradeWindow is the health-window length in probes.
	DefaultDegradeWindow = 64
	// DefaultDegradeMaxFaultRate is the documented trip threshold: a
	// quarter of a window's probes showing impossible counter behavior.
	// The moderate chaos intensity stays below it; PMC saturation storms
	// blow well past it.
	DefaultDegradeMaxFaultRate = 0.25

	// pmcSaneMaxDelta bounds the plausible per-probe-read misprediction
	// delta. Counters are per-context and at most one spy branch runs
	// between adjacent probe reads, so a real delta is 0 or 1; 16 leaves
	// generous slack for model evolution while still catching random
	// migration garbage.
	pmcSaneMaxDelta = 16
	// pmcSaneMaxValue bounds the plausible absolute counter value: a
	// session observes millions of branches, not 2^48. Saturated reads
	// (the chaos injector pins them at 2^62) exceed it on sight.
	pmcSaneMaxValue = 1 << 48
)

// withDefaults normalizes an armed config.
func (c DegradeConfig) withDefaults() DegradeConfig {
	if c.MaxFaultRate > 0 && c.Window <= 0 {
		c.Window = DefaultDegradeWindow
	}
	return c
}

// Degraded reports whether the session's health gate has fallen back
// from PMC probing to rdtscp timing probing.
func (s *Session) Degraded() bool { return s.degraded }

// observePMCHealth feeds one PMC probe's raw readings into the health
// window and trips the timing fallback when the window's fault rate
// exceeds the configured threshold. No-op when the gate is disarmed or
// already tripped.
func (s *Session) observePMCHealth(m0, m1, m2 uint64) {
	cfg := s.cfg.Degrade
	if cfg.MaxFaultRate <= 0 || s.degraded {
		return
	}
	s.healthProbes++
	if pmcImplausible(m0, m1) || pmcImplausible(m1, m2) {
		s.healthFaults++
	}
	if s.healthProbes < cfg.Window {
		return
	}
	faults, probes := s.healthFaults, s.healthProbes
	s.healthProbes, s.healthFaults = 0, 0
	if float64(faults) < cfg.MaxFaultRate*float64(probes) {
		return
	}
	s.degrade()
}

// pmcImplausible reports whether an adjacent pair of probe readings is
// impossible for an intact per-context misprediction counter: it went
// backwards, jumped further than any single probe branch can move it,
// or reads an absurd absolute value (saturation).
func pmcImplausible(before, after uint64) bool {
	return after < before ||
		after-before > pmcSaneMaxDelta ||
		after >= pmcSaneMaxValue ||
		before >= pmcSaneMaxValue
}

// degrade switches the session to timing probes, calibrating a detector
// on fresh scratch addresses if the session never had one. One-way for
// the session's lifetime: a perf subsystem that has already produced a
// window of garbage has forfeited the benefit of the doubt, and
// flapping between probe identities would make results unattributable.
func (s *Session) degrade() {
	if s.detector == nil {
		if s.cfg.TimingCalibrationReps <= 0 {
			s.cfg.TimingCalibrationReps = DefaultTimingCalibrationReps
		}
		s.detector = CalibrateTiming(s.spy, s.cfg.Search.SpyBase+1<<20, s.cfg.TimingCalibrationReps)
		s.calCursor = s.cfg.Search.SpyBase + 2<<20
	}
	s.degraded = true
	if s.tel != nil {
		s.tel.degradations.Inc()
	}
}
