package core

// Resilient read path: a real BranchScope attacker does not trust a
// single episode. Preemption can flush the primed PHT entry mid-flight,
// a core migration makes the probed predictor a stranger's, the perf
// subsystem can glitch a counter read, and the §8 timing detector's
// threshold drifts with the machine's clock behavior. The attacker's
// answer (§7, §8) is statistical: repeat the episode, reject
// observations whose signature says "interference", vote, and when the
// vote stays ambiguous, admit it — an Unknown bit is recoverable by
// upper layers (framing, error correction), a silently wrong bit is
// not.

// RetryConfig bounds the resilient read path of Session.ReadBit.
type RetryConfig struct {
	// MaxAttempts is the per-bit episode budget. Values below 1 mean a
	// single attempt: ReadBit degenerates to one episode plus outlier
	// classification.
	MaxAttempts int
	// DriftCheckInterval is how many episodes run between timing-drift
	// self-checks (timing sessions only). Zero selects
	// DefaultDriftCheckInterval; negative disables drift checking.
	DriftCheckInterval int
	// DriftCheckSamples is how many known-outcome branch pairs one
	// drift check measures (default DefaultDriftCheckSamples).
	DriftCheckSamples int
}

// Drift-check defaults, shared with DESIGN §3.15. The interval trades
// overhead against detection latency: a TSC-jitter window misreads
// every episode until the next check notices, so at interval 16 a
// window is caught within ~16 episodes while the check itself (8
// sample pairs, ~100 instructions) stays well under the cost of a
// single prime–step–probe episode.
const (
	DefaultDriftCheckInterval = 16
	DefaultDriftCheckSamples  = 8
)

// Reading is the outcome of one resilient bit read. Confidence is the
// winning vote share over all attempted episodes; for an unknown bit it
// scores the best losing candidate, so callers can still rank guesses.
type Reading struct {
	// Bit is the decoded direction. Meaningful only when Known (it
	// holds the leading candidate otherwise).
	Bit bool
	// Known reports whether the vote reached a decisive majority within
	// the attempt budget. An unknown bit is reported as such rather
	// than silently wrong — graceful degradation under interference.
	Known bool
	// Confidence is winner votes / attempts, in (0, 1].
	Confidence float64
	// Attempts is how many episodes the read consumed.
	Attempts int
	// Outliers is how many episodes were rejected as interference
	// signatures rather than counted as votes.
	Outliers int
}

// ReadBit reads one victim bit resiliently: episodes repeat under a
// bounded budget (Retry.MaxAttempts) until one direction holds a strict
// majority of the budget. Probe patterns that cannot result from an
// intact SN-primed episode — HH and HM say the primed entry was not in
// a strong-not-taken state when probed, i.e. the episode was torn by
// preemption, migration or readout corruption — are rejected as
// outliers instead of being decoded into wrong votes. before/after are
// the same injection points SpyBit takes, invoked around every episode.
//
// On timing sessions ReadBit also self-checks the detector every
// DriftCheckInterval episodes against planted known-outcome branches
// and recalibrates when the threshold has drifted (TSC baseline
// shifts). SpyBit never does any of this: the naive loop stays the
// paper's single-episode read.
func (s *Session) ReadBit(victim Stepper, before, after func()) Reading {
	budget := s.cfg.Retry.MaxAttempts
	if budget < 1 {
		budget = 1
	}
	// Strict majority of the full budget: an answer that could still be
	// outvoted by the remaining attempts is not decisive.
	needed := budget/2 + 1
	var taken, notTaken, outliers int
	attempts := 0
	for attempts < budget && taken < needed && notTaken < needed {
		s.maybeDriftCheck()
		switch s.episode(victim, before, after) {
		case PatternMH:
			taken++
		case PatternMM:
			notTaken++
		default: // HH, HM: torn episode, not a vote
			outliers++
		}
		attempts++
	}
	r := Reading{Attempts: attempts, Outliers: outliers}
	switch {
	case taken >= needed:
		r.Bit, r.Known = true, true
		r.Confidence = float64(taken) / float64(attempts)
	case notTaken >= needed:
		r.Bit, r.Known = false, true
		r.Confidence = float64(notTaken) / float64(attempts)
	default:
		// Budget exhausted without a decisive majority: degrade
		// gracefully. Report the leading candidate and its (low)
		// confidence, flagged Unknown.
		r.Bit = taken >= notTaken
		best := taken
		if notTaken > best {
			best = notTaken
		}
		if best > 0 {
			r.Confidence = float64(best) / float64(attempts)
		}
	}
	if s.tel != nil {
		if r.Attempts > 1 {
			s.tel.retries.Add(uint64(r.Attempts - 1))
		}
		if r.Outliers > 0 {
			s.tel.outliers.Add(uint64(r.Outliers))
		}
		if !r.Known {
			s.tel.unknown.Inc()
		}
	}
	return r
}

// Recalibrations returns how many times the session's timing detector
// was recalibrated after drift detection.
func (s *Session) Recalibrations() int { return s.recalibrated }

// maybeDriftCheck runs the periodic timing-drift self-check. PMC
// sessions and disabled intervals are no-ops.
func (s *Session) maybeDriftCheck() {
	if s.detector == nil {
		return
	}
	interval := s.cfg.Retry.DriftCheckInterval
	if interval < 0 {
		return
	}
	if interval == 0 {
		interval = DefaultDriftCheckInterval
	}
	s.sinceCheck++
	if s.sinceCheck < interval {
		return
	}
	s.sinceCheck = 0
	if s.driftDetected() {
		// The calibrated threshold no longer separates the machine's
		// hit and miss latencies (a TSC baseline shift, in chaos
		// terms): rebuild the detector on fresh scratch addresses.
		// Running before the next episode's prime, the extra branches
		// here cannot disturb a primed target entry.
		s.detector = CalibrateTiming(s.spy, s.calCursor, s.cfg.TimingCalibrationReps)
		s.calCursor += uint64(s.cfg.TimingCalibrationReps)*64 + 64
		s.recalibrated++
		if s.tel != nil {
			s.tel.driftRecals.Inc()
		}
	}
}

// driftDetected measures a handful of branches with known prediction
// outcomes (the calibration trick, in miniature) and reports whether
// the current detector misclassifies more than a quarter of them —
// far beyond its calibrated error on a stable machine.
func (s *Session) driftDetected() bool {
	n := s.cfg.Retry.DriftCheckSamples
	if n <= 0 {
		n = DefaultDriftCheckSamples
	}
	wrong := 0
	for i := 0; i < n; i++ {
		addr := s.calCursor
		s.calCursor += 64
		rb := s.spy.ResolveBranch(addr)
		for j := 0; j < 4; j++ {
			rb.Execute(true)
		}
		t0 := s.spy.ReadTSC()
		rb.Execute(true)
		hit := s.spy.ReadTSC() - t0
		t0 = s.spy.ReadTSC()
		rb.Execute(false)
		miss := s.spy.ReadTSC() - t0
		if s.detector.Miss(hit) {
			wrong++
		}
		if !s.detector.Miss(miss) {
			wrong++
		}
	}
	if s.tel != nil {
		s.tel.driftChecks.Inc()
	}
	return wrong*2 > n // > 25% of the 2n classifications
}
