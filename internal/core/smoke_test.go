package core

import (
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

const victimAddr = 0x0040_06d0 // Listing 2's victim branch neighbourhood

// TestEndToEndAttackSkylake is the package smoke test: a full covert
// transmission of a known bit string on the Skylake model, isolated
// setting, PMC probing. It must achieve a near-zero error rate.
func TestEndToEndAttackSkylake(t *testing.T) {
	for _, m := range []uarch.Model{uarch.Skylake(), uarch.Haswell(), uarch.SandyBridge()} {
		t.Run(m.Name, func(t *testing.T) {
			sys := sched.NewSystem(m, 0xb5)
			secret := rng.New(7).Bits(400)
			victim := sys.Spawn("victim", func(ctx *cpu.Context) {
				for _, bit := range secret {
					ctx.Work(3)
					ctx.Branch(victimAddr, bit)
				}
			})
			defer victim.Kill()

			spy := sys.NewProcess("spy")
			sess, err := NewSession(spy, rng.New(1), AttackConfig{
				Search: SearchConfig{TargetAddr: victimAddr, Focused: true},
			})
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			errs := 0
			for _, want := range secret {
				if got := sess.SpyBit(victim, nil, nil); got != want {
					errs++
				}
			}
			rate := float64(errs) / float64(len(secret))
			t.Logf("%s: error rate %.2f%% (%d/%d)", m.Name, 100*rate, errs, len(secret))
			if rate > 0.05 {
				t.Errorf("error rate %.2f%% too high for isolated setting", 100*rate)
			}
		})
	}
}
