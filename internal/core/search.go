package core

import (
	"fmt"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/stats"
)

// BlockAnalysis is the statistical characterization of one candidate
// randomization block (§6.2): for each probe variant, the dominant
// observation pattern and how often it dominated, plus the decoded state
// class. This is one point of Figure 4a and one pie slice of Figure 4b.
type BlockAnalysis struct {
	Block *Block
	// PatTT/FreqTT: dominant pattern and its frequency when probing
	// with two taken branches; PatNN/FreqNN likewise for two not-taken.
	PatTT  Pattern
	FreqTT float64
	PatNN  Pattern
	FreqNN float64
	// Stable reports whether both dominant-pattern frequencies reached
	// the stability threshold (the paper uses 85%).
	Stable bool
	// State is the decoded PHT state class (StateUnknown when not
	// Stable).
	State StateClass
}

// SearchConfig parameterizes block generation and evaluation.
type SearchConfig struct {
	// TargetAddr is the virtual address of the victim branch (and of
	// the spy's colliding probe branch).
	TargetAddr uint64
	// SpyBase is the base address of the spy's randomization code
	// region.
	SpyBase uint64
	// BlockBranches is the number of branches per candidate block.
	BlockBranches int
	// Focused selects GenerateFocusedBlock (short, eviction-targeted)
	// over the Listing 1 bulk generator.
	Focused bool
	// Reps is the number of (run block, probe) repetitions per probe
	// variant used to measure pattern stability (the paper uses 1000).
	Reps int
	// Stability is the dominant-pattern frequency required to consider
	// the block stable (the paper uses 0.85).
	Stability float64
	// OnRep, when non-nil, runs between the block execution and the
	// probe of every analysis repetition — the window in which ambient
	// system activity can still disturb the primed entry. The Fig 4
	// harness injects background noise here; the real experiment simply
	// ran on a live machine.
	OnRep func()
}

// withDefaults fills unset fields.
func (c SearchConfig) withDefaults() SearchConfig {
	if c.SpyBase == 0 {
		c.SpyBase = 0x6100_0000
	}
	if c.BlockBranches == 0 {
		if c.Focused {
			c.BlockBranches = 96
		} else {
			c.BlockBranches = 4000
		}
	}
	if c.Reps == 0 {
		c.Reps = 100
	}
	if c.Stability == 0 {
		c.Stability = 0.85
	}
	return c
}

func (c SearchConfig) generate(r *rng.Source) *Block {
	if c.Focused {
		return GenerateFocusedBlock(r, c.SpyBase, c.BlockBranches, c.TargetAddr)
	}
	return GenerateBlock(r, c.SpyBase, c.BlockBranches)
}

// AnalyzeBlock measures the PHT state a block leaves the target entry in,
// using the §6.2 protocol: Reps repetitions of (run block, probe with two
// taken branches), then Reps repetitions of (run block, probe with two
// not-taken branches), decoding the dominant patterns. ctx is the spy's
// context; the probes run at cfg.TargetAddr.
func AnalyzeBlock(ctx *cpu.Context, b *Block, cfg SearchConfig) BlockAnalysis {
	cfg = cfg.withDefaults()
	a := BlockAnalysis{Block: b}

	collect := func(taken bool) (Pattern, float64) {
		pats := make([]Pattern, 0, cfg.Reps)
		for i := 0; i < cfg.Reps; i++ {
			b.Run(ctx)
			if cfg.OnRep != nil {
				cfg.OnRep()
			}
			pats = append(pats, ProbePMC(ctx, cfg.TargetAddr, taken))
		}
		return stats.Mode(pats)
	}
	a.PatTT, a.FreqTT = collect(true)
	a.PatNN, a.FreqNN = collect(false)
	a.Stable = a.FreqTT >= cfg.Stability && a.FreqNN >= cfg.Stability
	if a.Stable {
		a.State = DecodeState(a.PatTT, a.PatNN)
	} else {
		a.State = StateUnknown
	}
	return a
}

// FindBlock is the pre-attack stage (§6.2): it generates candidate
// randomization blocks and analyzes each until one is found that stably
// leaves the target PHT entry in the desired state, or maxCandidates are
// exhausted. The search is a one-time effort; the returned block is then
// reused for every attack episode.
func FindBlock(ctx *cpu.Context, r *rng.Source, cfg SearchConfig, desired StateClass, maxCandidates int) (*Block, BlockAnalysis, error) {
	cfg = cfg.withDefaults()
	if maxCandidates <= 0 {
		maxCandidates = 200
	}
	tel := ctx.Core().Telemetry()
	var start uint64
	if tel != nil {
		start = ctx.Core().Clock()
	}
	candidates := tel.Counter("core.search.candidates")
	for i := 0; i < maxCandidates; i++ {
		b := cfg.generate(r)
		candidates.Inc()
		a := AnalyzeBlock(ctx, b, cfg)
		if a.Stable && a.State == desired {
			tel.Counter("core.search.found").Inc()
			tel.Span(ctx.TID(), "attack", "block-search", start, ctx.Core().Clock(),
				map[string]any{"candidates": i + 1, "state": desired.String()})
			return b, a, nil
		}
	}
	tel.Counter("core.search.exhausted").Inc()
	tel.Span(ctx.TID(), "attack", "block-search", start, ctx.Core().Clock(),
		map[string]any{"candidates": maxCandidates, "state": "none"})
	return nil, BlockAnalysis{}, fmt.Errorf(
		"core: no stable randomization block reaching state %v in %d candidates (target %#x)",
		desired, maxCandidates, cfg.TargetAddr)
}
