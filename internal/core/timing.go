package core

import (
	"fmt"

	"branchscope/internal/cpu"
	"branchscope/internal/stats"
)

// TimingDetector classifies a branch execution as predicted or
// mispredicted from its rdtscp-measured latency (§8). It is calibrated by
// the attacker on branches with known prediction outcomes.
type TimingDetector struct {
	// HitMean and MissMean are the calibrated mean latencies.
	HitMean  float64
	MissMean float64
	// Threshold is the decision boundary (midpoint of the means).
	Threshold uint64
}

// Miss classifies one latency sample: true means mispredicted.
func (d *TimingDetector) Miss(latency uint64) bool {
	return latency > d.Threshold
}

// MissMeanOf classifies the mean of several latency samples of the same
// branch event — the §8 noise-amortization strategy (Figure 8).
func (d *TimingDetector) MissMeanOf(latencies []uint64) bool {
	return stats.MeanUint64(latencies) > float64(d.Threshold)
}

// String implements fmt.Stringer.
func (d *TimingDetector) String() string {
	return fmt.Sprintf("timing detector: hit≈%.0f miss≈%.0f threshold=%d cycles",
		d.HitMean, d.MissMean, d.Threshold)
}

// CalibrateTiming builds a TimingDetector by measuring the attacker's own
// branches with known outcomes: a branch trained strongly taken is
// measured while predicted correctly (hits) and immediately after a
// direction flip (misses). scratch is a code address in the attacker's
// own region; reps samples are collected per class. Only warm (second)
// executions are used, mirroring the paper's finding that first
// executions are polluted by caching effects.
func CalibrateTiming(ctx *cpu.Context, scratch uint64, reps int) *TimingDetector {
	if reps <= 0 {
		reps = DefaultTimingCalibrationReps
	}
	tel := ctx.Core().Telemetry()
	var start uint64
	if tel != nil {
		start = ctx.Core().Clock()
	}
	hits := make([]uint64, 0, reps)
	misses := make([]uint64, 0, reps)
	for i := 0; i < reps; i++ {
		// A fresh address per iteration: a fixed calibration loop is
		// perfectly periodic, so the 2-level predictor would learn the
		// planted "mispredictions" and the miss samples would silently
		// turn into hits. A new branch stays on the 1-level predictor.
		addr := scratch + uint64(i)*64
		rb := ctx.ResolveBranch(addr)
		// Train strongly taken (also warms the icache line and BTB).
		for j := 0; j < 4; j++ {
			rb.Execute(true)
		}
		// Hit sample: predicted taken, actually taken.
		t0 := ctx.ReadTSC()
		rb.Execute(true)
		hits = append(hits, ctx.ReadTSC()-t0)
		// Miss sample: still predicted taken, actually not-taken.
		t0 = ctx.ReadTSC()
		rb.Execute(false)
		misses = append(misses, ctx.ReadTSC()-t0)
	}
	d := &TimingDetector{
		HitMean:  stats.MeanUint64(hits),
		MissMean: stats.MeanUint64(misses),
	}
	// The threshold sits between the *medians*: timing noise is heavy
	// tailed (interrupt spikes), so means overestimate the typical
	// sample and would bias the boundary toward misses.
	d.Threshold = uint64((stats.MedianUint64(hits) + stats.MedianUint64(misses)) / 2)
	if tel != nil {
		tel.Gauge("core.timing.hit_mean_cycles").Set(d.HitMean)
		tel.Gauge("core.timing.miss_mean_cycles").Set(d.MissMean)
		tel.Gauge("core.timing.threshold_cycles").Set(float64(d.Threshold))
		tel.Counter("core.timing.calibrations").Inc()
		tel.Span(ctx.TID(), "attack", "timing-calibration", start, ctx.Core().Clock(),
			map[string]any{"reps": reps})
	}
	return d
}
