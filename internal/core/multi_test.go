package core

import (
	"testing"
	"time"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

func TestMultiSessionSpiesManyBranches(t *testing.T) {
	for _, m := range []uarch.Model{uarch.Haswell(), uarch.Skylake()} {
		t.Run(m.Name, func(t *testing.T) {
			sys := sched.NewSystem(m, 11)
			// A victim executing 8 branches at distinct addresses per round,
			// with per-round random directions.
			addrs := make([]uint64, 8)
			for i := range addrs {
				addrs[i] = 0x0042_1000 + uint64(i)*0x20
			}
			vr := rng.New(5)
			var truth [][]bool
			victim := sys.Spawn("victim", func(ctx *cpu.Context) {
				for {
					// The round's directions are committed to the log
					// before any branch executes, so a spy that pauses
					// the victim mid-round still finds its ground truth.
					round := vr.Bits(len(addrs))
					truth = append(truth, round)
					for i, a := range addrs {
						ctx.Work(2)
						ctx.Branch(a, round[i])
					}
				}
			})
			defer victim.Kill()

			spy := sys.NewProcess("spy")
			start := time.Now()
			ms, err := NewMultiSession(spy, rng.New(3), MultiConfig{
				Targets: addrs,
				AllowST: m.Name != "Skylake",
			})
			if err != nil {
				t.Fatalf("NewMultiSession: %v", err)
			}
			t.Logf("%s: search took %v; primed states:", m.Name, time.Since(start))
			for _, tg := range ms.Targets() {
				t.Logf("  %#x -> %v (probe taken=%v)", tg.Addr, tg.Primed, tg.ProbeTaken)
			}
			errs, total := 0, 0
			const rounds = 40
			for r := 0; r < rounds; r++ {
				got := ms.SpyBits(victim)
				want := truth[len(truth)-1]
				for i := range got {
					total++
					if got[i] != want[i] {
						errs++
					}
				}
			}
			rate := float64(errs) / float64(total)
			t.Logf("%s: multi-spy error rate %.2f%% (%d/%d)", m.Name, 100*rate, errs, total)
			if rate > 0.05 {
				t.Errorf("error rate %.2f%% too high", 100*rate)
			}
		})
	}
}
