package core

import (
	"fmt"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/stats"
)

// Mapper implements the §6.3 PHT reverse-engineering experiment: decode
// the PHT state behind every virtual address in a range, then recover the
// PHT size from the periodicity of the state vector (Figure 5).
//
// The paper's procedure needs each address's entry probed with both probe
// variants from the same post-setup predictor state. Probing perturbs the
// predictor, so each probe must run against a fresh replay of the
// (deterministic) setup. The Mapper memoizes that replay with a core
// checkpoint: Save once after setup, Restore before each probe. This is
// purely a harness optimization — it is observationally identical to the
// attacker deterministically re-running the setup before each probe.
type Mapper struct {
	core *cpu.Core
	spy  *cpu.Context
	rnd  *rng.Source
}

// NewMapper builds a Mapper. spy must be a context of core.
func NewMapper(core *cpu.Core, spy *cpu.Context, rnd *rng.Source) *Mapper {
	return &Mapper{core: core, spy: spy, rnd: rnd}
}

// placedDirection deterministically assigns the outcome of the branch
// placed at addr during setup (the experiment needs heterogeneous entry
// states; any fixed per-address assignment works).
func placedDirection(addr uint64) bool {
	x := addr * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x&1 == 1
}

// MapStates performs the Figure 5a measurement: execute a randomization
// block, place and execute one branch at each of count consecutive
// addresses from start, then decode each address's PHT entry state with
// the two-variant probe dictionary.
func (m *Mapper) MapStates(start uint64, count int, blockBranches int) []StateClass {
	if count <= 0 {
		panic("core: MapStates needs a positive address count")
	}
	if blockBranches <= 0 {
		blockBranches = 4000
	}
	// Setup: randomize the PHT, then place branches.
	block := GenerateBlock(m.rnd, 0x6200_0000, blockBranches)
	block.Run(m.spy)
	for i := 0; i < count; i++ {
		a := start + uint64(i)
		m.spy.Branch(a, placedDirection(a))
	}
	snap := m.core.Snapshot()

	states := make([]StateClass, count)
	for i := 0; i < count; i++ {
		a := start + uint64(i)
		m.core.Restore(snap)
		patTT := ProbePMC(m.spy, a, true)
		m.core.Restore(snap)
		patNN := ProbePMC(m.spy, a, false)
		states[i] = DecodeState(patTT, patNN)
	}
	m.core.Restore(snap)
	return states
}

// HammingRatio computes the paper's H(w)/w statistic (Equations 2–3) for
// one window size: the state vector is split into length-w subvectors and
// the mean pairwise Hamming distance is estimated from `pairs` random
// subvector pairs, then normalized by w. A small ratio means subvectors
// repeat — w is (a multiple of) the PHT period.
func HammingRatio(states []StateClass, w int, pairs int, r *rng.Source) float64 {
	if w <= 0 || w > len(states)/2 {
		panic(fmt.Sprintf("core: window %d invalid for %d states", w, len(states)))
	}
	n := len(states) / w
	if pairs <= 0 {
		pairs = 100
	}
	var sum float64
	for p := 0; p < pairs; p++ {
		i := r.Intn(n)
		j := r.Intn(n)
		for j == i {
			j = r.Intn(n)
		}
		a := states[i*w : (i+1)*w]
		b := states[j*w : (j+1)*w]
		sum += float64(stats.Hamming(a, b))
	}
	return sum / float64(pairs) / float64(w)
}

// SizeScan is one point of the Figure 5b curve.
type SizeScan struct {
	Window int
	Ratio  float64
}

// DiscoverPHTSize recovers the PHT size from a state vector (Equation 4):
// it evaluates H(w)/w over candidate window sizes and returns the
// smallest window whose ratio is within tolerance of the global minimum
// (the paper's lowest-w rule for multiple local minima), along with the
// full scan for plotting.
//
// candidates may be nil, in which case all powers of two that fit twice
// into the vector are scanned — the practical search space for
// power-of-two hardware tables — plus a neighbourhood around the best to
// reproduce Figure 5b's fine scan.
func DiscoverPHTSize(states []StateClass, candidates []int, pairs int, r *rng.Source) (int, []SizeScan) {
	if candidates == nil {
		for w := 2; w <= len(states)/2; w *= 2 {
			candidates = append(candidates, w)
		}
	}
	scans := make([]SizeScan, 0, len(candidates))
	best := -1
	bestRatio := 0.0
	for _, w := range candidates {
		if w <= 0 || w > len(states)/2 {
			continue
		}
		ratio := HammingRatio(states, w, pairs, r)
		scans = append(scans, SizeScan{Window: w, Ratio: ratio})
		if best == -1 || ratio < bestRatio {
			best, bestRatio = w, ratio
		}
	}
	if best == -1 {
		panic("core: DiscoverPHTSize had no usable candidate windows")
	}
	// Lowest-w rule: among windows statistically as good as the best,
	// take the smallest (periods repeat at multiples).
	const tolerance = 0.02
	chosen := best
	for _, s := range scans {
		if s.Ratio <= bestRatio+tolerance && s.Window < chosen {
			chosen = s.Window
		}
	}
	return chosen, scans
}
