package core

import (
	"fmt"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
)

// A site is one instruction of a randomization block: a conditional
// branch with a fixed direction, or a NOP (nop sites have taken == false
// and nop == true).
type site struct {
	addr  uint64
	taken bool
	nop   bool
}

// Block is a randomization code block (§5.2, Listing 1): a fixed sequence
// of branch instructions with pseudo-randomly chosen directions and
// NOP-randomized placement. The outcome pattern and layout are chosen
// once at generation time and never change across executions — the
// paper's key trick for being able to *search* for a block that leaves
// the target PHT entry in a desired state (§6.2).
type Block struct {
	// Base is the virtual address where the block starts.
	Base uint64
	// Label distinguishes generator flavours in diagnostics.
	Label string

	sites    []site
	branches int
	end      uint64 // one past the last contiguous code byte

	// plan is the block compiled for planCtx: site index resolution is
	// hoisted out of the per-execution path, so the thousands of Run
	// calls an attack session makes pay only predictor steps. Compiled
	// lazily because blocks are generated (and mostly discarded) by the
	// pre-attack search before a context commits to one.
	plan    *cpu.ExecPlan
	planCtx *cpu.Context
}

// Len returns the number of branch instructions in the block.
func (b *Block) Len() int { return b.branches }

// Span returns the number of contiguous code bytes the block occupies at
// Base (alias branches of focused blocks live outside this span).
func (b *Block) Span() uint64 {
	if b.end < b.Base {
		return 0
	}
	return b.end - b.Base
}

// Run executes the block on a context. Every execution replays the
// identical instruction sequence — the block is static code. The block
// caches a compiled ExecPlan per context, so repeated runs skip index
// resolution entirely; plan execution is observationally identical to
// the serial instruction walk (see cpu.ExecPlan).
func (b *Block) Run(ctx *cpu.Context) {
	if b.planCtx != ctx {
		plan := ctx.NewPlan(len(b.sites))
		for _, s := range b.sites {
			if s.nop {
				plan.Nop(s.addr)
				continue
			}
			plan.Branch(s.addr, s.taken)
		}
		b.plan, b.planCtx = plan, ctx
	}
	b.plan.Run()
}

// String implements fmt.Stringer.
func (b *Block) String() string {
	return fmt.Sprintf("block %s: %d branches, %d bytes at %#x", b.Label, b.branches, b.Span(), b.Base)
}

// GenerateBlock produces a Listing 1 style block: nBranches conditional
// branches laid out contiguously from base, with a NOP inserted between
// branches with probability 1/2 (randomizing the addresses of all
// subsequent branches) and each branch's direction drawn uniformly.
// This is the block flavour whose bulk statistics Figure 4 characterizes.
func GenerateBlock(r *rng.Source, base uint64, nBranches int) *Block {
	if nBranches <= 0 {
		panic("core: block needs at least one branch")
	}
	b := &Block{Base: base, Label: "listing1"}
	addr := base
	for i := 0; i < nBranches; i++ {
		b.sites = append(b.sites, site{addr: addr, taken: r.Bool()})
		addr += 2 // je/jne rel8
		if r.Bool() {
			b.sites = append(b.sites, site{addr: addr, nop: true})
			addr++
		}
	}
	b.branches = nBranches
	b.end = addr
	return b
}

// GenerateFocusedBlock produces the shortened block flavour the paper
// anticipates in §5.2 ("if we focus only on evicting a particular branch,
// we may be able to come up with a shorter sequence of branches that map
// to the same PHT [entry]"): a mix of
//
//   - alias branches placed at target + k·2^30 — an alias stride the
//     attacker discovers empirically by probing collision distances, the
//     same style of reverse engineering as §6.3. At this stride the alias
//     shares the target's low 16 address bits and its folded PHT index,
//     so it collides with the target in every predictor structure of the
//     modelled parts (PHT entry, selector slot, seen-branch tag, BTB set)
//     without the attacker knowing the actual table sizes;
//   - scramble branches at pseudo-random addresses in the attacker's code
//     region, which churn the global history register and bulk PHT state.
//
// All directions are randomized at generation time. Roughly a third of
// the branches are alias branches. The block both evicts the victim
// branch from the seen-branch tracker (forcing 1-level mode) and walks
// the target PHT entry to a final state that the pre-attack search
// (§6.2) selects for.
func GenerateFocusedBlock(r *rng.Source, base uint64, nBranches int, target uint64) *Block {
	if nBranches <= 0 {
		panic("core: block needs at least one branch")
	}
	b := &Block{Base: base, Label: "focused"}
	addr := base
	for i := 0; i < nBranches; i++ {
		if r.Intn(3) == 0 {
			// Alias branch at the empirically discovered stride.
			k := uint64(1 + r.Intn(63))
			b.sites = append(b.sites, site{addr: target + k<<30, taken: r.Bool()})
		} else {
			b.sites = append(b.sites, site{addr: addr, taken: r.Bool()})
			addr += 2
			if r.Bool() {
				b.sites = append(b.sites, site{addr: addr, nop: true})
				addr++
			}
		}
		b.branches++
	}
	b.end = addr
	return b
}
