package core

import "fmt"

// Pattern is the observation from one two-execution probe, in the paper's
// Table 1 notation: each character is 'H' for a correctly predicted
// (hit) probe branch or 'M' for a mispredicted one, first execution
// first.
type Pattern string

// The four possible probe observation patterns.
const (
	PatternHH Pattern = "HH"
	PatternHM Pattern = "HM"
	PatternMH Pattern = "MH"
	PatternMM Pattern = "MM"
)

// MakePattern builds a Pattern from the two probe executions'
// misprediction flags. It returns one of the four interned constants so
// the probe hot path never allocates a pattern string.
func MakePattern(firstMiss, secondMiss bool) Pattern {
	switch {
	case firstMiss && secondMiss:
		return PatternMM
	case firstMiss:
		return PatternMH
	case secondMiss:
		return PatternHM
	}
	return PatternHH
}

// Valid reports whether p is one of the four legal patterns.
func (p Pattern) Valid() bool {
	switch p {
	case PatternHH, PatternHM, PatternMH, PatternMM:
		return true
	}
	return false
}

// FirstMiss reports whether the first probe execution mispredicted.
func (p Pattern) FirstMiss() bool { return len(p) == 2 && p[0] == 'M' }

// SecondMiss reports whether the second probe execution mispredicted.
func (p Pattern) SecondMiss() bool { return len(p) == 2 && p[1] == 'M' }

// StateClass is the architecturally inferred state of a PHT entry, as
// decoded from probe observations (§6.2, Figure 4b). Beyond the four FSM
// states it includes the two non-state outcomes the paper observes:
// Dirty (the randomization had no effect and the BPU predicts the probe
// correctly regardless — the 2-level predictor is likely still engaged)
// and Unknown (observations too unstable to decode).
type StateClass int

// StateClass values in Figure 4b's order.
const (
	StateSN StateClass = iota
	StateWN
	StateWT
	StateST
	StateDirty
	StateUnknown
)

// String implements fmt.Stringer using the paper's labels.
func (s StateClass) String() string {
	switch s {
	case StateSN:
		return "SN"
	case StateWN:
		return "WN"
	case StateWT:
		return "WT"
	case StateST:
		return "ST"
	case StateDirty:
		return "Dirty"
	case StateUnknown:
		return "Unknown"
	}
	return fmt.Sprintf("StateClass(%d)", int(s))
}

// AllStateClasses lists the decodable classes in display order.
func AllStateClasses() []StateClass {
	return []StateClass{StateST, StateWT, StateWN, StateSN, StateDirty, StateUnknown}
}

// DecodeState translates the dominant probe patterns for the two probe
// variants — two taken branches (patTT) and two not-taken branches
// (patNN) — into a PHT state class, per the dictionary derived from
// Table 1:
//
//	probe TT        probe NN        state
//	HH              MM              ST
//	HH              MH              WT   (textbook FSMs; on Skylake this
//	                                      row decodes as ST — the two are
//	                                      indistinguishable)
//	MH              HH              WN
//	MM              HH              SN
//	HH              HH              Dirty
//	anything else                   Unknown
func DecodeState(patTT, patNN Pattern) StateClass {
	switch {
	case patTT == PatternHH && patNN == PatternMM:
		return StateST
	case patTT == PatternHH && patNN == PatternMH:
		return StateWT
	case patTT == PatternMH && patNN == PatternHH:
		return StateWN
	case patTT == PatternMM && patNN == PatternHH:
		return StateSN
	case patTT == PatternHH && patNN == PatternHH:
		return StateDirty
	default:
		return StateUnknown
	}
}

// DecodeBit translates a probe observation into the victim's branch
// direction for the attack's standard configuration: target PHT entry
// primed to strongly not-taken (SN) and probed with two taken branches.
//
// From SN, a taken victim branch moves the entry to WN, so the probe
// observes MH; a not-taken victim branch leaves SN and the probe observes
// MM. The dictionary is extended to cover the rarely observed patterns
// exactly as Figure 6 does: MH, HH → taken; MM, HM → not-taken. (HH
// indicates outside influence pushed the entry further toward taken, so
// taken is the better guess; HM similarly leans not-taken.)
func DecodeBit(p Pattern) bool {
	return p == PatternMH || p == PatternHH
}
