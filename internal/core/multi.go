package core

import (
	"fmt"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/stats"
)

// Multi-branch spying (§6.3: "Knowing the states of PHT entries
// associated with different memory addresses potentially allows the
// attacker to spy on multiple branch instructions in [the] victim process
// in a single episode of execution.")
//
// A MultiSession monitors several victim branch addresses with one
// randomization block: the pre-attack search characterizes the block's
// effect on every target entry at once and accepts any *stable, strong or
// weak* state per target — each state has its own probe direction and
// decode dictionary (below), so requiring all targets to land in SN
// (exponentially unlikely) is unnecessary. One episode then primes all
// entries, lets the victim execute one branch per target, and probes each
// entry.

// probeDirFor returns the probe direction that makes a primed state's
// dictionary unambiguous: not-taken-side states are probed with taken
// branches and vice versa.
func probeDirFor(s StateClass) bool {
	return s == StateSN || s == StateWN
}

// DecodeBitFrom translates a probe observation into the victim's branch
// direction given the primed state and the probe direction chosen by
// probeDirFor. The dictionaries follow from the FSM exactly like Table 1:
//
//	primed SN, probe TT: victim taken -> MH, not-taken -> MM
//	primed WN, probe TT: victim taken -> HH, not-taken -> MM
//	primed WT, probe NN: victim taken -> MM, not-taken -> HH
//	primed ST, probe NN: victim taken -> MM, not-taken -> MH
//	                     (textbook FSMs only: on the Skylake FSM the
//	                     not-taken row also reads MM — Table 1 footnote —
//	                     so ST-primed targets must be rejected there)
//
// Rare off-dictionary patterns are resolved toward the side with more
// evidence, mirroring Figure 6's extended dictionary.
func DecodeBitFrom(primed StateClass, p Pattern) bool {
	switch primed {
	case StateSN:
		return p == PatternMH || p == PatternHH
	case StateWN:
		return p == PatternHH || p == PatternHM
	case StateWT:
		return p == PatternMM || p == PatternMH
	case StateST:
		return p == PatternMM || p == PatternHM
	}
	// Dirty/unknown primes carry no dictionary; guess not-taken.
	return false
}

// MultiTarget is one monitored branch address with its per-block decode
// context.
type MultiTarget struct {
	// Addr is the victim branch address.
	Addr uint64
	// Primed is the stable state the selected block leaves Addr's entry
	// in.
	Primed StateClass
	// ProbeTaken is the probe direction used for this target.
	ProbeTaken bool
}

// MultiConfig parameterizes a multi-target session.
type MultiConfig struct {
	// Targets are the victim branch addresses, in the order the victim
	// executes them within one episode.
	Targets []uint64
	// SpyBase, BlockBranches, Reps, Stability as in SearchConfig;
	// BlockBranches defaults to scale with the target count.
	SpyBase       uint64
	BlockBranches int
	Reps          int
	Stability     float64
	// MaxCandidates bounds the block search (the joint stability
	// requirement makes usable blocks rarer than single-target ones).
	MaxCandidates int
	// AllowST admits targets primed to ST. Safe on textbook-FSM parts;
	// must be false on Skylake, where the ST dictionary is ambiguous
	// (Table 1 footnote).
	AllowST bool
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.SpyBase == 0 {
		c.SpyBase = 0x6400_0000
	}
	if c.BlockBranches == 0 {
		c.BlockBranches = 64 + 16*len(c.Targets)
	}
	if c.Reps == 0 {
		c.Reps = 60
	}
	if c.Stability == 0 {
		c.Stability = 0.85
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 4000
	}
	return c
}

// MultiSession is a ready multi-target attack instance.
type MultiSession struct {
	spy     *cpu.Context
	cfg     MultiConfig
	block   *Block
	targets []MultiTarget
}

// generateMultiBlock builds a focused block whose alias branches cover
// every target.
func generateMultiBlock(r *rng.Source, cfg MultiConfig) *Block {
	b := GenerateBlock(r, cfg.SpyBase, cfg.BlockBranches)
	// Rebuild with aliases: interleave per-target alias branches into
	// the scramble stream. (Construct a fresh block: one third aliases
	// round-robin over targets, the rest Listing 1 layout.)
	return mixAliases(r, b, cfg.Targets)
}

// mixAliases interleaves alias branches for each target into a block.
// Alias directions are biased toward not-taken: every decoded state is
// usable on textbook parts, but on the Skylake FSM the extra taken-side
// state folds the upper states into an ambiguous "ST" decode (Table 1
// footnote), so skewing the per-target walk toward the not-taken side
// raises the yield of jointly usable blocks considerably.
func mixAliases(r *rng.Source, base *Block, targets []uint64) *Block {
	out := &Block{Base: base.Base, Label: "multi-focused", end: base.end}
	ti := 0
	for _, s := range base.sites {
		if !s.nop && r.Intn(3) == 0 {
			t := targets[ti%len(targets)]
			ti++
			k := uint64(1 + r.Intn(63))
			out.sites = append(out.sites, site{addr: t + k<<30, taken: r.Chance(0.38)})
			out.branches++
			continue
		}
		out.sites = append(out.sites, s)
		if !s.nop {
			out.branches++
		}
	}
	return out
}

// analyzeMulti characterizes a block against every target at once: each
// analysis repetition runs the block once and probes all targets, so the
// per-candidate cost grows only marginally with the target count.
func analyzeMulti(spy *cpu.Context, block *Block, cfg MultiConfig) ([]MultiTarget, bool) {
	n := len(cfg.Targets)
	patTT := make([][]Pattern, n)
	patNN := make([][]Pattern, n)
	for _, taken := range []bool{true, false} {
		for rep := 0; rep < cfg.Reps; rep++ {
			block.Run(spy)
			for i, addr := range cfg.Targets {
				p := ProbePMC(spy, addr, taken)
				if taken {
					patTT[i] = append(patTT[i], p)
				} else {
					patNN[i] = append(patNN[i], p)
				}
			}
		}
	}
	targets := make([]MultiTarget, 0, n)
	for i, addr := range cfg.Targets {
		tt, ft := stats.Mode(patTT[i])
		nn, fn := stats.Mode(patNN[i])
		if ft < cfg.Stability || fn < cfg.Stability {
			return nil, false
		}
		state := DecodeState(tt, nn)
		usable := state == StateSN || state == StateWN || state == StateWT ||
			(cfg.AllowST && state == StateST)
		if !usable {
			return nil, false
		}
		targets = append(targets, MultiTarget{
			Addr: addr, Primed: state, ProbeTaken: probeDirFor(state),
		})
	}
	return targets, true
}

// selfVerify replays §6.1's within-process mimicry against a candidate
// session: the spy itself plays the victim (prime, execute one branch at
// the target in a known direction, probe) and checks that both directions
// decode correctly, several times. This catches primes whose dictionary
// is blind — e.g. deep strong states on wider-than-2-bit counters, where
// one execution cannot cross the prediction boundary — without the
// attacker needing to know the FSM.
func (m *MultiSession) selfVerify(r *rng.Source, rounds, needed int) bool {
	// Two design points matter here. First, the mimicked victim
	// directions are drawn randomly per round, not grouped: a block
	// whose final state depends on the *previous* episode's direction
	// (the randomization walk not fully re-converging) looks perfect
	// under same-direction runs and half-blind under real traffic.
	// Second, a decode slip or two is ambient noise, not a blind
	// dictionary; demanding perfection would reject a large share of
	// good blocks once many targets multiply the check count.
	for _, t := range m.targets {
		correct := [2]int{}
		seen := [2]int{}
		for round := 0; round < 2*rounds; round++ {
			dir := r.Bool()
			m.Prime()
			m.spy.Branch(t.Addr, dir) // the spy mimics the victim
			pat := ProbePMC(m.spy, t.Addr, t.ProbeTaken)
			idx := 0
			if dir {
				idx = 1
			}
			seen[idx]++
			if DecodeBitFrom(t.Primed, pat) == dir {
				correct[idx]++
			}
		}
		for idx := 0; idx < 2; idx++ {
			// Scale the requirement to the rounds actually drawn for
			// this direction.
			if seen[idx] == 0 || correct[idx]*rounds < needed*seen[idx] {
				return false
			}
		}
	}
	return true
}

// NewMultiSession searches for a block that leaves every target entry in
// a stable, decodable state — and whose decode dictionaries pass the
// §6.1-style self-verification — and returns the ready session.
func NewMultiSession(spy *cpu.Context, r *rng.Source, cfg MultiConfig) (*MultiSession, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("core: MultiConfig.Targets empty")
	}
	for cand := 0; cand < cfg.MaxCandidates; cand++ {
		block := generateMultiBlock(r, cfg)
		targets, ok := analyzeMulti(spy, block, cfg)
		if !ok {
			continue
		}
		ms := &MultiSession{spy: spy, cfg: cfg, block: block, targets: targets}
		// Cheap filter, then a rigorous confirmation of the survivor.
		if ms.selfVerify(r, 6, 5) && ms.selfVerify(r, 30, 27) {
			return ms, nil
		}
	}
	return nil, fmt.Errorf("core: no block stabilizes all %d targets in %d candidates",
		len(cfg.Targets), cfg.MaxCandidates)
}

// Block returns the selected randomization block.
func (m *MultiSession) Block() *Block { return m.block }

// Targets returns the per-target decode contexts.
func (m *MultiSession) Targets() []MultiTarget { return m.targets }

// Prime executes stage 1 for all targets at once.
func (m *MultiSession) Prime() { m.block.Run(m.spy) }

// ProbeAll probes every target entry and decodes the victim's branch
// directions, in target order.
func (m *MultiSession) ProbeAll() []bool {
	out := make([]bool, len(m.targets))
	for i, t := range m.targets {
		pat := ProbePMC(m.spy, t.Addr, t.ProbeTaken)
		out[i] = DecodeBitFrom(t.Primed, pat)
	}
	return out
}

// SpyBits performs one multi-target episode: prime all entries, let the
// victim execute one branch per target (len(Targets) branches), probe and
// decode all of them. This is the single-episode multi-branch spying of
// §6.3 — one randomization-block execution leaks len(Targets) bits.
func (m *MultiSession) SpyBits(victim Stepper) []bool {
	m.Prime()
	victim.StepBranches(len(m.targets))
	return m.ProbeAll()
}
