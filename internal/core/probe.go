package core

import "branchscope/internal/cpu"

// ProbePMC performs one probe operation (§6.1 stage 3): it executes the
// spy branch at addr twice with the given direction, reading the
// branch-misprediction performance counter around each execution, and
// returns the observed pattern. This is the Listing 3 spy_function.
func ProbePMC(ctx *cpu.Context, addr uint64, taken bool) Pattern {
	m0, m1, m2 := ProbePMCReadings(ctx, addr, taken)
	return MakePattern(m1 > m0, m2 > m1)
}

// ProbePMCReadings performs the same probe but returns the three raw
// counter readings: the session's health gate inspects them for
// implausible values before the pattern is decoded (see DegradeConfig).
func ProbePMCReadings(ctx *cpu.Context, addr uint64, taken bool) (m0, m1, m2 uint64) {
	rb := ctx.ResolveBranch(addr)
	return ProbePMCReadingsResolved(ctx, &rb, taken)
}

// ProbePMCReadingsResolved is ProbePMCReadings over a pre-resolved spy
// branch: attack sessions probe the same target address millions of
// times, so they resolve its predictor indexes once at construction and
// pay only the two branch executions per probe.
func ProbePMCReadingsResolved(ctx *cpu.Context, rb *cpu.ResolvedBranch, taken bool) (m0, m1, m2 uint64) {
	m0 = ctx.ReadPMC(cpu.BranchMisses)
	rb.Execute(taken)
	m1 = ctx.ReadPMC(cpu.BranchMisses)
	rb.Execute(taken)
	m2 = ctx.ReadPMC(cpu.BranchMisses)
	return m0, m1, m2
}

// TSCSample is the raw material of a timing probe: the rdtscp-measured
// latency of each of the two probe branch executions (§8).
type TSCSample struct {
	First  uint64
	Second uint64
}

// ProbeTSC performs one probe operation measuring each branch execution
// with the timestamp counter instead of the PMC. The caller classifies
// the latencies against a calibrated threshold (see TimingDetector).
func ProbeTSC(ctx *cpu.Context, addr uint64, taken bool) TSCSample {
	rb := ctx.ResolveBranch(addr)
	return ProbeTSCResolved(ctx, &rb, taken)
}

// ProbeTSCResolved is ProbeTSC over a pre-resolved spy branch (see
// ProbePMCReadingsResolved).
func ProbeTSCResolved(ctx *cpu.Context, rb *cpu.ResolvedBranch, taken bool) TSCSample {
	t0 := ctx.ReadTSC()
	rb.Execute(taken)
	t1 := ctx.ReadTSC()
	rb.Execute(taken)
	t2 := ctx.ReadTSC()
	return TSCSample{First: t1 - t0, Second: t2 - t1}
}
