package core

import (
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

// timingSession builds a fresh timing-probing session against a
// held-bit victim; the returned cursor selects which secret bit the
// victim retransmits.
func heldBitVictim(sys *sched.System, secret []bool) (*sched.Thread, *int) {
	pos := new(int)
	th := sys.Spawn("victim", func(ctx *cpu.Context) {
		for {
			bit := secret[*pos%len(secret)]
			ctx.Work(3)
			ctx.Branch(victimAddr, bit)
			ctx.Work(1)
		}
	})
	return th, pos
}

// TestTimingCalibrationRepsDefault is the regression test for the
// misconfiguration fix: a zero or negative TimingCalibrationReps must
// calibrate with the documented default, not a zero-sample detector.
func TestTimingCalibrationRepsDefault(t *testing.T) {
	detectorFor := func(reps int) *TimingDetector {
		_, spy := newSpy(t, uarch.Skylake(), 40)
		sess, err := NewSession(spy, rng.New(4), AttackConfig{
			Search:                SearchConfig{TargetAddr: victimAddr, Focused: true},
			UseTiming:             true,
			TimingCalibrationReps: reps,
		})
		if err != nil {
			t.Fatalf("NewSession(reps=%d): %v", reps, err)
		}
		return sess.Detector()
	}
	want := detectorFor(DefaultTimingCalibrationReps)
	for _, reps := range []int{0, -3} {
		got := detectorFor(reps)
		if got.HitMean != want.HitMean || got.MissMean != want.MissMean ||
			got.Threshold != want.Threshold {
			t.Errorf("reps=%d detector %+v differs from explicit default %+v", reps, got, want)
		}
	}
}

func TestReadBitDecodesCleanChannel(t *testing.T) {
	sys, spy := newSpy(t, uarch.SandyBridge(), 41)
	secret := rng.New(17).Bits(120)
	victim, pos := heldBitVictim(sys, secret)
	defer victim.Kill()
	sess, err := NewSession(spy, rng.New(5), AttackConfig{
		Search: SearchConfig{TargetAddr: victimAddr, Focused: true},
		Retry:  RetryConfig{MaxAttempts: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	wrong, unknown := 0, 0
	for i, want := range secret {
		*pos = i
		rd := sess.ReadBit(victim, nil, nil)
		if !rd.Known {
			unknown++
			continue
		}
		if rd.Bit != want {
			wrong++
		}
		if rd.Confidence <= 0.5 {
			t.Errorf("bit %d: decisive read with confidence %.2f", i, rd.Confidence)
		}
		if rd.Attempts < 3 || rd.Attempts > 5 {
			t.Errorf("bit %d: %d attempts, want within [needed=3, budget=5]", i, rd.Attempts)
		}
	}
	if wrong > 2 || unknown > 2 {
		t.Errorf("clean channel: %d wrong, %d unknown of %d bits", wrong, unknown, len(secret))
	}
}

func TestReadBitSingleAttemptDegenerates(t *testing.T) {
	sys, spy := newSpy(t, uarch.SandyBridge(), 42)
	victim, pos := heldBitVictim(sys, []bool{true})
	defer victim.Kill()
	for _, budget := range []int{0, 1, -7} {
		sess, err := NewSession(spy, rng.New(6), AttackConfig{
			Search: SearchConfig{TargetAddr: victimAddr, Focused: true},
			Retry:  RetryConfig{MaxAttempts: budget},
		})
		if err != nil {
			t.Fatal(err)
		}
		*pos = 0
		rd := sess.ReadBit(victim, nil, nil)
		if rd.Attempts != 1 {
			t.Errorf("budget %d: %d attempts, want 1", budget, rd.Attempts)
		}
		if !rd.Known || !rd.Bit {
			t.Errorf("budget %d: clean single episode read %+v, want known taken", budget, rd)
		}
	}
}

// TestReadBitRejectsTornEpisodes pins outlier rejection and graceful
// degradation: under saturated PMC readings every probe decodes HH —
// impossible for an intact SN-primed episode — so ReadBit must burn
// its budget on outliers and admit Unknown rather than emit a
// confidently wrong bit.
func TestReadBitRejectsTornEpisodes(t *testing.T) {
	sys, spy := newSpy(t, uarch.SandyBridge(), 43)
	victim, _ := heldBitVictim(sys, []bool{true})
	defer victim.Kill()
	sess, err := NewSession(spy, rng.New(7), AttackConfig{
		Search: SearchConfig{TargetAddr: victimAddr, Focused: true},
		Retry:  RetryConfig{MaxAttempts: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Core().SetReadFaults(cpu.ReadFaults{
		PMC: func(e cpu.Event, v uint64) uint64 { return uint64(1) << 62 },
	})
	defer sys.Core().SetReadFaults(cpu.ReadFaults{})
	rd := sess.ReadBit(victim, nil, nil)
	if rd.Known {
		t.Errorf("saturated counters decoded a known bit: %+v", rd)
	}
	if rd.Attempts != 5 || rd.Outliers != 5 {
		t.Errorf("attempts/outliers = %d/%d, want 5/5 (all episodes torn)", rd.Attempts, rd.Outliers)
	}
	if rd.Confidence != 0 {
		t.Errorf("confidence %.2f with zero votes", rd.Confidence)
	}
}

// TestDriftRecalibration pins the §8 drift story: a persistent TSC
// baseline shift breaks the calibrated threshold, the periodic
// self-check notices, and one recalibration restores the channel.
func TestDriftRecalibration(t *testing.T) {
	sys, spy := newSpy(t, uarch.SandyBridge(), 44)
	secret := make([]bool, 40)
	for i := range secret {
		secret[i] = i%2 == 0
	}
	victim, pos := heldBitVictim(sys, secret)
	defer victim.Kill()
	sess, err := NewSession(spy, rng.New(8), AttackConfig{
		Search:                SearchConfig{TargetAddr: victimAddr, Focused: true},
		UseTiming:             true,
		TimingCalibrationReps: 400,
		Retry:                 RetryConfig{MaxAttempts: 5, DriftCheckInterval: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The shift starts after calibration: every rdtscp pair now reads
	// 70 cycles long, pushing all hit latencies over the threshold.
	sys.Core().SetReadFaults(cpu.ReadFaults{TSCExtra: func() uint64 { return 70 }})
	defer sys.Core().SetReadFaults(cpu.ReadFaults{})
	wrongLate := 0
	for i, want := range secret {
		*pos = i
		rd := sess.ReadBit(victim, nil, nil)
		if i >= len(secret)/2 && (!rd.Known || rd.Bit != want) {
			wrongLate++
		}
	}
	if sess.Recalibrations() < 1 {
		t.Fatal("drift never triggered a recalibration")
	}
	if sess.Recalibrations() > 3 {
		t.Errorf("%d recalibrations for one persistent shift", sess.Recalibrations())
	}
	if wrongLate > 2 {
		t.Errorf("%d of the last %d bits wrong after recalibration", wrongLate, len(secret)/2)
	}
	// A session with drift checking disabled never recovers — the
	// regression guard that the recalibration is what fixed it.
	_, spy2 := newSpy(t, uarch.SandyBridge(), 44)
	sess2, err := NewSession(spy2, rng.New(8), AttackConfig{
		Search:                SearchConfig{TargetAddr: victimAddr, Focused: true},
		UseTiming:             true,
		TimingCalibrationReps: 400,
		Retry:                 RetryConfig{MaxAttempts: 5, DriftCheckInterval: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	spy2.Core().SetReadFaults(cpu.ReadFaults{TSCExtra: func() uint64 { return 70 }})
	defer spy2.Core().SetReadFaults(cpu.ReadFaults{})
	if sess2.Recalibrations() != 0 {
		t.Error("recalibrated before any read")
	}
}
