package core

import (
	"testing"

	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

func TestMapperDiscoversPHTSizeQuick(t *testing.T) {
	m := uarch.SandyBridge() // PHT 4096 keeps the quick test fast
	sys := sched.NewSystem(m, 3)
	spy := sys.NewProcess("spy")
	mapper := NewMapper(sys.Core(), spy, rng.New(5))
	states := mapper.MapStates(0x300000, 4*4096, 3000)
	size, _ := DiscoverPHTSize(states, nil, 60, rng.New(9))
	if size != 4096 {
		t.Errorf("discovered PHT size %d, want 4096", size)
	}
}
