package core

import (
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/uarch"
)

// TestPreemptionAtEveryPhaseBoundary slams a scheduler preemption —
// another process burning a burst of branches, exactly what the chaos
// injector's preempt fault does — into each gap of the prime–step–probe
// episode, and at both gaps at once. The scheduling contract must hold
// regardless: StepBranches(1) retires exactly one victim branch per
// episode, the victim thread survives, and the resilient read absorbs
// the flushed prime state instead of collapsing.
func TestPreemptionAtEveryPhaseBoundary(t *testing.T) {
	cases := []struct {
		name      string
		pre, post bool
	}{
		{"prime-step", true, false},
		{"step-probe", false, true},
		{"both", true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys, spy := newSpy(t, uarch.SandyBridge(), 46)
			secret := rng.New(29).Bits(48)
			victim, pos := heldBitVictim(sys, secret)
			defer victim.Kill()
			sess, err := NewSession(spy, rng.New(9), AttackConfig{
				Search: SearchConfig{TargetAddr: victimAddr, Focused: true},
				Retry:  RetryConfig{MaxAttempts: 7},
			})
			if err != nil {
				t.Fatal(err)
			}
			// The preemption body: 2500 foreign branches over a 4 MiB
			// region, the chaos injector's default burst shape.
			intruder := sys.NewProcess("intruder")
			burst := noise.NewBurst(99, 0x7e00_0000_0000, 1<<22)
			preempt := func() { burst.Run(intruder, 2500) }
			var before, after func()
			if c.pre {
				before = preempt
			}
			if c.post {
				after = preempt
			}

			base := victim.Context().ReadPMC(cpu.BranchInstructions)
			attempts, wrong, unknown := 0, 0, 0
			for i, want := range secret {
				*pos = i
				rd := sess.ReadBit(victim, before, after)
				attempts += rd.Attempts
				if !rd.Known {
					unknown++
					continue
				}
				if rd.Bit != want {
					wrong++
				}
			}

			// The slowdown invariant: one victim branch per episode, no
			// matter how much foreign work ran in the gaps around it.
			stepped := victim.Context().ReadPMC(cpu.BranchInstructions) - base
			if stepped != uint64(attempts) {
				t.Errorf("victim retired %d branches over %d episodes", stepped, attempts)
			}
			if victim.Finished() {
				t.Error("victim thread died under preemption")
			}
			// Boundary preemption degrades votes, never the protocol: the
			// budget-7 majority still recovers most bits, and misreads
			// surface as Unknown rather than silent flips.
			if known := len(secret) - unknown; wrong*4 > known {
				t.Errorf("%d of %d known bits wrong under %s preemption", wrong, known, c.name)
			}
			if unknown*2 > len(secret) {
				t.Errorf("%d of %d bits unknown: channel collapsed", unknown, len(secret))
			}

			// With the intruder gone, the same session decodes cleanly —
			// the bursts leave no lasting scheduler or session damage.
			cleanWrong := 0
			for i, want := range secret {
				*pos = i
				if rd := sess.ReadBit(victim, nil, nil); !rd.Known || rd.Bit != want {
					cleanWrong++
				}
			}
			if cleanWrong > 2 {
				t.Errorf("%d of %d bits wrong after preemption stopped", cleanWrong, len(secret))
			}
		})
	}
}
