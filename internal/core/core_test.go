package core

import (
	"strings"
	"testing"
	"testing/quick"

	"branchscope/internal/cpu"
	"branchscope/internal/fsm"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

func TestPatternHelpers(t *testing.T) {
	if got := MakePattern(true, false); got != PatternMH {
		t.Errorf("MakePattern(miss,hit) = %s", got)
	}
	if got := MakePattern(false, true); got != PatternHM {
		t.Errorf("MakePattern(hit,miss) = %s", got)
	}
	if got := MakePattern(false, false); got != PatternHH {
		t.Errorf("MakePattern(hit,hit) = %s", got)
	}
	if got := MakePattern(true, true); got != PatternMM {
		t.Errorf("MakePattern(miss,miss) = %s", got)
	}
	for _, p := range []Pattern{PatternHH, PatternHM, PatternMH, PatternMM} {
		if !p.Valid() {
			t.Errorf("%s not Valid", p)
		}
	}
	if Pattern("XX").Valid() || Pattern("M").Valid() {
		t.Error("invalid pattern accepted")
	}
	if !PatternMH.FirstMiss() || PatternMH.SecondMiss() {
		t.Error("MH miss flags wrong")
	}
	if PatternHM.FirstMiss() || !PatternHM.SecondMiss() {
		t.Error("HM miss flags wrong")
	}
}

func TestDecodeStateDictionary(t *testing.T) {
	cases := []struct {
		tt, nn Pattern
		want   StateClass
	}{
		{PatternHH, PatternMM, StateST},
		{PatternHH, PatternMH, StateWT},
		{PatternMH, PatternHH, StateWN},
		{PatternMM, PatternHH, StateSN},
		{PatternHH, PatternHH, StateDirty},
		{PatternMM, PatternMM, StateUnknown},
		{PatternHM, PatternMH, StateUnknown},
	}
	for _, c := range cases {
		if got := DecodeState(c.tt, c.nn); got != c.want {
			t.Errorf("DecodeState(%s, %s) = %v, want %v", c.tt, c.nn, got, c.want)
		}
	}
}

func TestDecodeBitDictionary(t *testing.T) {
	// Figure 6: MM, HM -> 0; MH, HH -> 1.
	if DecodeBit(PatternMM) || DecodeBit(PatternHM) {
		t.Error("MM/HM decoded as taken")
	}
	if !DecodeBit(PatternMH) || !DecodeBit(PatternHH) {
		t.Error("MH/HH decoded as not-taken")
	}
}

func TestStateClassStrings(t *testing.T) {
	for _, s := range AllStateClasses() {
		if s.String() == "" {
			t.Error("empty StateClass string")
		}
	}
	if StateClass(42).String() == "" {
		t.Error("empty unknown StateClass string")
	}
	if len(AllStateClasses()) != 6 {
		t.Error("AllStateClasses size")
	}
}

func newSpy(t *testing.T, m uarch.Model, seed uint64) (*sched.System, *cpu.Context) {
	t.Helper()
	sys := sched.NewSystem(m, seed)
	return sys, sys.NewProcess("spy")
}

func TestGenerateBlockDeterministicLayout(t *testing.T) {
	b1 := GenerateBlock(rng.New(5), 0x6100_0000, 500)
	b2 := GenerateBlock(rng.New(5), 0x6100_0000, 500)
	if b1.Len() != 500 || b2.Len() != 500 {
		t.Fatalf("Len = %d/%d", b1.Len(), b2.Len())
	}
	if b1.Span() != b2.Span() {
		t.Error("same seed produced different layouts")
	}
	// NOP insertion means the span exceeds 2 bytes/branch but stays
	// below 3.
	if b1.Span() < 1000 || b1.Span() > 1500 {
		t.Errorf("span = %d for 500 branches", b1.Span())
	}
	if b1.String() == "" {
		t.Error("empty String")
	}
}

func TestGenerateBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	GenerateBlock(rng.New(1), 0, 0)
}

func TestGenerateFocusedBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	GenerateFocusedBlock(rng.New(1), 0, -1, 0x100)
}

func TestBlockRunIsReplayable(t *testing.T) {
	sys, spy := newSpy(t, uarch.Skylake(), 1)
	b := GenerateBlock(rng.New(9), 0x6100_0000, 300)
	b.Run(spy)
	n1 := spy.ReadPMC(cpu.BranchInstructions)
	b.Run(spy)
	n2 := spy.ReadPMC(cpu.BranchInstructions)
	if n1 != 300 || n2 != 600 {
		t.Errorf("branch counts %d/%d", n1, n2)
	}
	_ = sys
}

func TestFocusedBlockEvictsTargetTag(t *testing.T) {
	sys, spy := newSpy(t, uarch.Skylake(), 2)
	const target = 0x0040_06d0
	// Victim-like execution creates the tag.
	spy.Branch(target, true)
	if !sys.Core().BPU().TagLive(spy.Domain(), target) {
		t.Fatal("tag not created")
	}
	b := GenerateFocusedBlock(rng.New(3), 0x6100_0000, 96, target)
	b.Run(spy)
	if sys.Core().BPU().TagLive(spy.Domain(), target) {
		t.Error("focused block failed to evict the target's tag")
	}
}

func TestProbePMCReflectsPrediction(t *testing.T) {
	_, spy := newSpy(t, uarch.Haswell(), 3)
	const addr = 0x7000
	// Train strongly taken; probing taken twice must be HH.
	for i := 0; i < 4; i++ {
		spy.Branch(addr, true)
	}
	if got := ProbePMC(spy, addr, true); got != PatternHH {
		t.Errorf("probe TT from ST = %s, want HH", got)
	}
	// Re-train and probe not-taken twice: MM (textbook ST -> WT).
	for i := 0; i < 4; i++ {
		spy.Branch(addr, true)
	}
	if got := ProbePMC(spy, addr, false); got != PatternMM {
		t.Errorf("probe NN from ST = %s, want MM", got)
	}
}

func TestProbeTSCLatenciesOrdered(t *testing.T) {
	_, spy := newSpy(t, uarch.Skylake(), 4)
	const addr = 0x8000
	// Averages over repetitions: misses must cost more than hits.
	var hitSum, missSum uint64
	const reps = 300
	for i := 0; i < reps; i++ {
		a := addr + uint64(i)*64
		for j := 0; j < 4; j++ {
			spy.Branch(a+aliasOffset, true)
		}
		spy.Branch(a, true) // warm code
		s := ProbeTSC(spy, a, true)
		hitSum += s.First + s.Second

		a += 32 // separate line
		for j := 0; j < 4; j++ {
			spy.Branch(a+aliasOffset, false)
		}
		spy.Branch(a, true) // warm code; miss
		s = ProbeTSC(spy, a, true)
		missSum += s.First + s.Second
	}
	if missSum <= hitSum {
		t.Errorf("miss latency total %d not greater than hit total %d", missSum, hitSum)
	}
}

// aliasOffset matches the focused-block alias stride.
const aliasOffset = uint64(1) << 30

func TestAnalyzeBlockStability(t *testing.T) {
	_, spy := newSpy(t, uarch.Skylake(), 5)
	cfg := SearchConfig{TargetAddr: 0x0040_06d0, Focused: true, Reps: 60}
	r := rng.New(6)
	// Analyze a handful of focused blocks: each must produce legal
	// frequencies and a decodable or unknown state.
	for i := 0; i < 10; i++ {
		b := GenerateFocusedBlock(r, 0x6100_0000, 96, cfg.TargetAddr)
		a := AnalyzeBlock(spy, b, cfg)
		if a.FreqTT < 0 || a.FreqTT > 1 || a.FreqNN < 0 || a.FreqNN > 1 {
			t.Fatalf("frequencies out of range: %+v", a)
		}
		if !a.PatTT.Valid() || !a.PatNN.Valid() {
			t.Fatalf("invalid dominant patterns: %+v", a)
		}
		if a.Stable && a.State == StateUnknown {
			t.Fatalf("stable block decoded unknown: %+v", a)
		}
		if !a.Stable && a.State != StateUnknown {
			t.Fatalf("unstable block decoded concrete state: %+v", a)
		}
	}
}

func TestFindBlockReachesDesiredState(t *testing.T) {
	for _, m := range uarch.All() {
		_, spy := newSpy(t, m, 7)
		cfg := SearchConfig{TargetAddr: 0x0040_06d0, Focused: true, Reps: 50}
		block, analysis, err := FindBlock(spy, rng.New(8), cfg, StateSN, 300)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if analysis.State != StateSN || !analysis.Stable {
			t.Errorf("%s: found block with state %v stable=%v", m.Name, analysis.State, analysis.Stable)
		}
		if block.Len() == 0 {
			t.Errorf("%s: empty block", m.Name)
		}
	}
}

func TestFindBlockExhaustsCandidates(t *testing.T) {
	// With one candidate it is overwhelmingly likely the search fails
	// for a specific desired state; the error must name the state.
	_, spy := newSpy(t, uarch.Skylake(), 9)
	cfg := SearchConfig{TargetAddr: 0x0040_06d0, Focused: true, Reps: 20}
	_, _, err := FindBlock(spy, rng.New(1), cfg, StateWN, 1)
	if err == nil {
		t.Skip("single candidate happened to land WN; acceptable")
	}
	if !strings.Contains(err.Error(), "WN") {
		t.Errorf("error %q does not name the desired state", err)
	}
}

func TestNewSessionRequiresTarget(t *testing.T) {
	_, spy := newSpy(t, uarch.Skylake(), 10)
	if _, err := NewSession(spy, rng.New(1), AttackConfig{}); err == nil {
		t.Error("NewSession accepted a zero target address")
	}
}

func TestSessionAccessors(t *testing.T) {
	_, spy := newSpy(t, uarch.Skylake(), 11)
	sess, err := NewSession(spy, rng.New(2), AttackConfig{
		Search: SearchConfig{TargetAddr: 0x0040_06d0, Focused: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Block() == nil || sess.Spy() != spy {
		t.Error("accessor mismatch")
	}
	if sess.Analysis().State != StateSN {
		t.Errorf("session primed state %v, want SN", sess.Analysis().State)
	}
	if sess.Detector() != nil {
		t.Error("PMC session has a timing detector")
	}
}

func TestTimingSessionHasDetector(t *testing.T) {
	_, spy := newSpy(t, uarch.Skylake(), 12)
	sess, err := NewSession(spy, rng.New(3), AttackConfig{
		Search:                SearchConfig{TargetAddr: 0x0040_06d0, Focused: true},
		UseTiming:             true,
		TimingCalibrationReps: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := sess.Detector()
	if d == nil {
		t.Fatal("no detector")
	}
	if d.MissMean <= d.HitMean {
		t.Errorf("calibration inverted: hit %.1f miss %.1f", d.HitMean, d.MissMean)
	}
	if d.Threshold <= uint64(d.HitMean)/2 {
		t.Errorf("threshold %d implausible", d.Threshold)
	}
	if d.String() == "" {
		t.Error("empty detector String")
	}
}

func TestTimingDetectorClassify(t *testing.T) {
	d := &TimingDetector{HitMean: 100, MissMean: 160, Threshold: 130}
	if d.Miss(120) || !d.Miss(140) {
		t.Error("Miss threshold broken")
	}
	if d.MissMeanOf([]uint64{100, 110, 120}) {
		t.Error("mean of hits classified miss")
	}
	if !d.MissMeanOf([]uint64{150, 160, 170}) {
		t.Error("mean of misses classified hit")
	}
}

func TestMapperPanicsOnBadCount(t *testing.T) {
	sys, spy := newSpy(t, uarch.SandyBridge(), 13)
	m := NewMapper(sys.Core(), spy, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	m.MapStates(0x300000, 0, 100)
}

func TestHammingRatioPanicsOnBadWindow(t *testing.T) {
	states := make([]StateClass, 64)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	HammingRatio(states, 64, 10, rng.New(1)) // window > len/2
}

func TestHammingRatioPeriodicVector(t *testing.T) {
	// A perfectly periodic vector has ratio 0 at its period and a high
	// ratio at non-periods.
	const period = 16
	base := rng.New(77)
	tile := make([]StateClass, period)
	for i := range tile {
		tile[i] = StateClass(base.Intn(4))
	}
	states := make([]StateClass, 1024)
	for i := range states {
		states[i] = tile[i%period]
	}
	r := rng.New(2)
	if ratio := HammingRatio(states, period, 50, r); ratio != 0 {
		t.Errorf("ratio at period = %v", ratio)
	}
	if ratio := HammingRatio(states, period-1, 50, r); ratio < 0.2 {
		t.Errorf("ratio off period = %v, want high", ratio)
	}
	size, scans := DiscoverPHTSize(states, nil, 50, r)
	if size != period {
		t.Errorf("DiscoverPHTSize = %d, want %d", size, period)
	}
	if len(scans) == 0 {
		t.Error("no scan points")
	}
}

func TestDiscoverPHTSizeLowestWRule(t *testing.T) {
	// Multiples of the period also score 0; the smallest must win.
	const period = 8
	states := make([]StateClass, 512)
	for i := range states {
		states[i] = StateClass(i % period % 3)
	}
	size, _ := DiscoverPHTSize(states, []int{32, 16, 8, 13}, 60, rng.New(3))
	if size != period {
		t.Errorf("lowest-w rule violated: got %d", size)
	}
}

// Property: DecodeState is total over the 16 pattern combinations and
// only the five documented combinations yield a non-Unknown state.
func TestQuickDecodeStateTotal(t *testing.T) {
	pats := []Pattern{PatternHH, PatternHM, PatternMH, PatternMM}
	known := 0
	for _, tt := range pats {
		for _, nn := range pats {
			if DecodeState(tt, nn) != StateUnknown {
				known++
			}
		}
	}
	if known != 5 {
		t.Errorf("%d decodable combinations, want 5", known)
	}
}

// Property: block generation never produces out-of-region contiguous
// sites and Len matches the requested branch count.
func TestQuickBlockGeneration(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		count := int(n%512) + 1
		b := GenerateBlock(rng.New(seed), 0x6100_0000, count)
		if b.Len() != count {
			return false
		}
		return b.Span() >= uint64(2*count) && b.Span() <= uint64(3*count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecodeBitFromDictionaries(t *testing.T) {
	cases := []struct {
		primed StateClass
		pat    Pattern
		want   bool
	}{
		// Primed SN, probe TT.
		{StateSN, PatternMH, true}, {StateSN, PatternHH, true},
		{StateSN, PatternMM, false}, {StateSN, PatternHM, false},
		// Primed WN, probe TT.
		{StateWN, PatternHH, true}, {StateWN, PatternHM, true},
		{StateWN, PatternMM, false}, {StateWN, PatternMH, false},
		// Primed WT, probe NN.
		{StateWT, PatternMM, true}, {StateWT, PatternMH, true},
		{StateWT, PatternHH, false}, {StateWT, PatternHM, false},
		// Primed ST, probe NN (textbook parts).
		{StateST, PatternMM, true}, {StateST, PatternHM, true},
		{StateST, PatternMH, false}, {StateST, PatternHH, false},
		// Undecodable primes default to not-taken.
		{StateDirty, PatternMM, false}, {StateUnknown, PatternHH, false},
	}
	for _, c := range cases {
		if got := DecodeBitFrom(c.primed, c.pat); got != c.want {
			t.Errorf("DecodeBitFrom(%v, %s) = %v, want %v", c.primed, c.pat, got, c.want)
		}
	}
}

// The per-state dictionaries must agree with the FSM ground truth:
// simulate prime-state -> victim direction -> probe on the bare textbook
// FSM and confirm the decoded direction matches.
func TestDecodeBitFromMatchesFSM(t *testing.T) {
	spec := fsm.Textbook2Bit()
	stateFor := map[StateClass]uint8{
		StateSN: 0, StateWN: 1, StateWT: 2, StateST: 3,
	}
	for primed, st := range stateFor {
		probeTaken := primed == StateSN || primed == StateWN
		for _, victim := range []bool{false, true} {
			s := spec.Next(st, victim)
			m1 := spec.Predict(s) != probeTaken
			s = spec.Next(s, probeTaken)
			m2 := spec.Predict(s) != probeTaken
			pat := MakePattern(m1, m2)
			if got := DecodeBitFrom(primed, pat); got != victim {
				t.Errorf("primed %v, victim %v: pattern %s decoded %v", primed, victim, pat, got)
			}
		}
	}
}

func TestNewMultiSessionRequiresTargets(t *testing.T) {
	_, spy := newSpy(t, uarch.Haswell(), 14)
	if _, err := NewMultiSession(spy, rng.New(1), MultiConfig{}); err == nil {
		t.Error("empty target list accepted")
	}
}

func TestNewMultiSessionExhaustsCandidates(t *testing.T) {
	_, spy := newSpy(t, uarch.Haswell(), 15)
	_, err := NewMultiSession(spy, rng.New(1), MultiConfig{
		Targets:       []uint64{0x1000, 0x2000, 0x3000, 0x4000},
		MaxCandidates: 1,
		Reps:          10,
	})
	if err == nil {
		t.Skip("single candidate happened to stabilize all targets")
	}
	if !strings.Contains(err.Error(), "4 targets") {
		t.Errorf("error %q does not mention the target count", err)
	}
}
