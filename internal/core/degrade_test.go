package core

import (
	"testing"

	"branchscope/internal/rng"
	"branchscope/internal/uarch"
)

// TestPMCImplausible pins the per-reading sanity predicate: backwards
// counters, impossible jumps, and saturated absolute values are
// anomalies; ordinary 0/1 deltas are not.
func TestPMCImplausible(t *testing.T) {
	cases := []struct {
		before, after uint64
		want          bool
	}{
		{100, 100, false},
		{100, 101, false},
		{100, 100 + pmcSaneMaxDelta, false},
		{100, 101 + pmcSaneMaxDelta, true}, // impossible jump
		{101, 100, true},                   // went backwards
		{1 << 62, 1 << 62, true},           // saturated: delta 0 but absurd value
		{100, 1 << 62, true},
		{pmcSaneMaxValue, pmcSaneMaxValue, true},
		{pmcSaneMaxValue - 1, pmcSaneMaxValue - 1, false},
	}
	for _, c := range cases {
		if got := pmcImplausible(c.before, c.after); got != c.want {
			t.Errorf("pmcImplausible(%d, %d) = %v, want %v", c.before, c.after, got, c.want)
		}
	}
}

// degradeSession builds a PMC session with the health gate armed
// against a live victim, so the fallback path has a real channel to
// calibrate and decode on.
func degradeSession(t *testing.T) (*Session, func(bit bool) bool) {
	t.Helper()
	sys, spy := newSpy(t, uarch.SandyBridge(), 91)
	secret := []bool{true, false}
	victim, pos := heldBitVictim(sys, secret)
	t.Cleanup(victim.Kill)
	sess, err := NewSession(spy, rng.New(9), AttackConfig{
		Search:  SearchConfig{TargetAddr: victimAddr, Focused: true},
		Degrade: DegradeConfig{MaxFaultRate: DefaultDegradeMaxFaultRate},
	})
	if err != nil {
		t.Fatal(err)
	}
	read := func(bit bool) bool {
		if bit {
			*pos = 0
		} else {
			*pos = 1
		}
		return sess.SpyBit(victim, nil, nil)
	}
	return sess, read
}

// TestHealthGateTripsOnSaturationStorm: a window whose fault rate
// blows past the threshold flips the session to timing probes —
// one-way — and the session still decodes the channel afterwards.
func TestHealthGateTripsOnSaturationStorm(t *testing.T) {
	sess, read := degradeSession(t)
	if sess.Degraded() {
		t.Fatal("fresh session already degraded")
	}
	// Feed one full health window of saturated readings, as a PMC
	// corruption storm produces.
	for i := 0; i < DefaultDegradeWindow; i++ {
		sess.observePMCHealth(1<<62, 1<<62, 1<<62)
	}
	if !sess.Degraded() {
		t.Fatal("gate did not trip on a fully-saturated window")
	}
	if sess.Detector() == nil {
		t.Fatal("degraded session has no timing detector to fall back on")
	}
	// The counter is poisoned, but the timing fallback still reads the
	// victim: the channel survives the probe identity switch.
	wrong := 0
	for i := 0; i < 40; i++ {
		want := i%2 == 0
		if read(want) != want {
			wrong++
		}
	}
	if wrong > 4 {
		t.Errorf("degraded session misread %d/40 bits", wrong)
	}
	// One-way: further observations are no-ops, never un-degrade.
	sess.observePMCHealth(0, 0, 0)
	if !sess.Degraded() {
		t.Error("session un-degraded")
	}
}

// TestHealthGateHoldsBelowThreshold: a fault rate under the threshold
// never trips the gate, and a disarmed session ignores even a storm.
func TestHealthGateHoldsBelowThreshold(t *testing.T) {
	sess, _ := degradeSession(t)
	// ~12.5% faults per window, threshold 25%: healthy enough.
	for w := 0; w < 3; w++ {
		for i := 0; i < DefaultDegradeWindow; i++ {
			if i%8 == 0 {
				sess.observePMCHealth(1<<62, 1<<62, 1<<62)
			} else {
				sess.observePMCHealth(100, 100, 101)
			}
		}
	}
	if sess.Degraded() {
		t.Error("gate tripped below the configured fault rate")
	}

	// Disarmed (zero config): even a storm is ignored.
	sys, spy := newSpy(t, uarch.SandyBridge(), 92)
	secret := []bool{true}
	victim, _ := heldBitVictim(sys, secret)
	defer victim.Kill()
	off, err := NewSession(spy, rng.New(9), AttackConfig{
		Search: SearchConfig{TargetAddr: victimAddr, Focused: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*DefaultDegradeWindow; i++ {
		off.observePMCHealth(1<<62, 1<<62, 1<<62)
	}
	if off.Degraded() {
		t.Error("disarmed session degraded")
	}
}
