// Package leakage measures the quality of the BranchScope channel
// itself — not the harness around it. The mitigation literature
// evaluates defenses by residual channel capacity, not raw accuracy,
// so every attack-vs-defense comparison in this repo reports through
// the estimators here:
//
//   - bit-error rate (BER), with Unknown bits scored as coin flips the
//     way the covert harness scores them;
//   - a full 3-outcome confusion matrix over the channel X ∈ {0, 1}
//     (sent bit) → Y ∈ {0, 1, Unknown} (decoded outcome), fed from
//     core.ReadBit / SpyBit results;
//   - empirical mutual information I(X;Y) in bits/branch from that
//     matrix, and channel capacity in bits/branch via Blahut–Arimoto
//     over the estimated transition matrix;
//   - SNR between the taken and not-taken probe-signal populations
//     (rdtscp latency or PMC delta of the first probe branch), the §8
//     separability statistic as a single number.
//
// Estimators are streaming (stats.Welford underneath; the confusion
// matrix is four integers and a pair of moment accumulators) so a
// window is O(1) memory regardless of length. All arithmetic is
// deterministic: identical observation sequences yield byte-identical
// Reports, which is what lets leakage columns ride the experiment
// suite's byte-identical-at-any-parallelism contract.
//
// The package also owns two process-wide "live" slots — the latest
// leakage Report and the latest predictor introspection snapshot —
// published by experiment harnesses and read by the obs endpoints and
// the -leakage-out/-introspect-out exports (same atomic-pointer idiom
// as experiments.SetDefaultTelemetry). Under a parallel suite the
// slots are last-writer-wins: they are live diagnostics, not part of
// the deterministic report surface.
package leakage

import (
	"encoding/json"
	"io"
	"math"
	"sync/atomic"

	"branchscope/internal/stats"
)

// Schema versions the leakage Report JSON.
const Schema = "branchscope.leakage/v1"

// Outcome indices of the confusion matrix's Y axis.
const (
	outcome0 = iota // decoded 0 (not-taken)
	outcome1        // decoded 1 (taken)
	outcomeU        // Unknown: the resilient read gave up
)

// Estimator accumulates channel-quality statistics online. The zero
// value is an empty estimator ready for use. It is not safe for
// concurrent use; one estimator belongs to one attack window (or is
// the merge target of finished windows).
type Estimator struct {
	conf    [2][3]uint64 // [sent bit][decoded 0 | decoded 1 | unknown]
	signal  [2]stats.Welford
	windows uint64 // completed windows merged into this estimator
}

// Observe records one decoded bit: the sent bit, the decoded value,
// and whether the read committed to it (known=false files the bit
// under Unknown regardless of got).
func (e *Estimator) Observe(sent, got, known bool) {
	y := outcomeU
	if known {
		y = outcome0
		if got {
			y = outcome1
		}
	}
	e.conf[b2i(sent)][y]++
}

// Signal records one probe-signal sample (first-probe rdtscp latency
// or PMC delta) under the sent bit's class, feeding the SNR estimate.
func (e *Estimator) Signal(sent bool, v float64) {
	e.signal[b2i(sent)].Add(v)
}

// Merge folds a finished window into e. The window counts as one
// completed window even if it never merged anything itself.
func (e *Estimator) Merge(w *Estimator) {
	for x := range e.conf {
		for y := range e.conf[x] {
			e.conf[x][y] += w.conf[x][y]
		}
	}
	e.signal[0].Merge(w.signal[0])
	e.signal[1].Merge(w.signal[1])
	n := w.windows
	if n == 0 {
		n = 1
	}
	e.windows += n
}

// Confusion is the 3-outcome confusion matrix of a Report.
type Confusion struct {
	// Sent0 and Sent1 count outcomes [decoded 0, decoded 1, unknown]
	// for transmitted 0 and 1 bits respectively.
	Sent0 [3]uint64 `json:"sent0"`
	Sent1 [3]uint64 `json:"sent1"`
}

// SignalSummary summarizes one probe-signal population of a Report.
type SignalSummary struct {
	N      uint64  `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
}

// Report is a point-in-time rendering of an estimator: the channel-
// quality numbers every surface (experiment rows, gauges, /leakage,
// the ledger) reports. All fields are finite — degenerate windows
// yield zeros, never NaN/Inf (encoding/json rejects the specials).
type Report struct {
	Schema string `json:"schema"`
	// RunID is the run's causal identity (see internal/runstore),
	// stamped from the process-wide value set by SetRunID so archived
	// leakage reports are joinable against their run manifest.
	RunID string `json:"run_id,omitempty"`
	// Bits is the total observed bit count (all confusion cells).
	Bits uint64 `json:"bits"`
	// Unknown counts bits the read path gave up on.
	Unknown uint64 `json:"unknown"`
	// WrongKnown counts bits decoded confidently and wrongly.
	WrongKnown uint64 `json:"wrong_known"`
	Confusion  Confusion `json:"confusion"`
	// BitErrorRate is (wrong-known + unknown/2) / bits — the covert
	// harness's scoring, with an Unknown an admitted coin flip.
	BitErrorRate float64 `json:"bit_error_rate"`
	// MutualInformationBits is the empirical I(X;Y) of the observed
	// channel, in bits per transmitted branch.
	MutualInformationBits float64 `json:"mutual_information_bits"`
	// CapacityBits is the Blahut–Arimoto capacity of the estimated
	// transition matrix, bits/branch — what an optimal input
	// distribution could push through the measured channel. When a
	// sent class was never observed the matrix has no estimate for
	// that row and the field falls back to the empirical MI.
	CapacityBits float64 `json:"capacity_bits"`
	// SNR is (μ1-μ0)² / (σ0²+σ1²) over the probe-signal populations;
	// 0 when either class is missing or both variances vanish.
	SNR float64 `json:"snr"`
	// Signal summarizes the not-taken [0] and taken [1] populations.
	Signal [2]SignalSummary `json:"signal"`
	// Windows is how many attack windows were merged in (1 for a
	// report taken from a single un-merged window).
	Windows uint64 `json:"windows"`
}

// Report renders the estimator's current state.
func (e *Estimator) Report() Report {
	r := Report{
		Schema:    Schema,
		RunID:     RunID(),
		Confusion: Confusion{Sent0: e.conf[0], Sent1: e.conf[1]},
		Windows:   e.windows,
	}
	for x := range e.conf {
		for y, n := range e.conf[x] {
			r.Bits += n
			if y == outcomeU {
				r.Unknown += n
			} else if y != x {
				r.WrongKnown += n
			}
		}
	}
	if r.Windows == 0 && r.Bits > 0 {
		r.Windows = 1
	}
	if r.Bits > 0 {
		r.BitErrorRate = (float64(r.WrongKnown) + 0.5*float64(r.Unknown)) / float64(r.Bits)
		r.MutualInformationBits = e.mutualInformation()
		r.CapacityBits = e.capacity(r.MutualInformationBits)
	}
	for i := range e.signal {
		r.Signal[i] = SignalSummary{
			N:      e.signal[i].N(),
			Mean:   e.signal[i].Mean(),
			StdDev: e.signal[i].StdDev(),
		}
	}
	r.SNR = e.snr()
	return r
}

// mutualInformation computes the empirical I(X;Y) = H(Y) - H(Y|X) of
// the observed (input, outcome) pairs, in bits.
func (e *Estimator) mutualInformation() float64 {
	var rowN [2]float64
	var colN [3]float64
	total := 0.0
	for x := range e.conf {
		for y, n := range e.conf[x] {
			rowN[x] += float64(n)
			colN[y] += float64(n)
			total += float64(n)
		}
	}
	if total == 0 {
		return 0
	}
	hy := stats.EntropyBits(colN[0]/total, colN[1]/total, colN[2]/total)
	hyx := 0.0
	for x := range e.conf {
		if rowN[x] == 0 {
			continue
		}
		px := rowN[x] / total
		hyx += px * stats.EntropyBits(
			float64(e.conf[x][0])/rowN[x],
			float64(e.conf[x][1])/rowN[x],
			float64(e.conf[x][2])/rowN[x])
	}
	mi := hy - hyx
	if mi < 0 { // floating-point slop on a near-independent channel
		mi = 0
	}
	return mi
}

// blahutArimotoIters is the fixed iteration count of the capacity
// solver. On a 2×3 channel the alternating optimization converges
// geometrically; 64 iterations put the residual far below the
// precision anything downstream renders, and a fixed count keeps the
// computation deterministic with no data-dependent loop exits.
const blahutArimotoIters = 64

// capacity runs Blahut–Arimoto on the estimated transition matrix
// W(y|x) = conf[x][y] / Σ_y conf[x][y]. With an unobserved input row
// there is no estimate for that input's behaviour, so the empirical
// MI (the caller passes it) is the honest answer — for the all-zeros
// and all-ones patterns that is 0 bits, as it should be: a channel
// exercised with H(X) = 0 demonstrated no capacity.
func (e *Estimator) capacity(fallbackMI float64) float64 {
	var w [2][3]float64
	for x := range e.conf {
		rowN := 0.0
		for _, n := range e.conf[x] {
			rowN += float64(n)
		}
		if rowN == 0 {
			return fallbackMI
		}
		for y, n := range e.conf[x] {
			w[x][y] = float64(n) / rowN
		}
	}
	q := [2]float64{0.5, 0.5}
	c := [2]float64{}
	for iter := 0; iter < blahutArimotoIters; iter++ {
		// Output distribution under the current input distribution.
		var out [3]float64
		for y := range out {
			out[y] = q[0]*w[0][y] + q[1]*w[1][y]
		}
		// c[x] = exp( Σ_y W(y|x) ln( W(y|x) / out(y) ) ). Whenever
		// W(y|x) > 0 and q[x] > 0, out(y) ≥ q[x]·W(y|x) > 0, so the
		// ratio is well defined; zero terms contribute nothing.
		sum := 0.0
		for x := range w {
			d := 0.0
			for y := range w[x] {
				if w[x][y] > 0 && out[y] > 0 {
					d += w[x][y] * math.Log(w[x][y]/out[y])
				}
			}
			c[x] = math.Exp(d)
			sum += q[x] * c[x]
		}
		if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
			return fallbackMI
		}
		q[0] = q[0] * c[0] / sum
		q[1] = q[1] * c[1] / sum
	}
	cap := math.Log2(q[0]*c[0] + q[1]*c[1])
	if cap < 0 || math.IsNaN(cap) || math.IsInf(cap, 0) {
		cap = 0
	}
	return cap
}

// snr computes the separability statistic of the two probe-signal
// populations. A vanished pooled variance (perfectly quiet simulated
// timing) reads as 0, not +Inf: an unestimable ratio must not poison
// JSON exports.
func (e *Estimator) snr() float64 {
	if e.signal[0].N() == 0 || e.signal[1].N() == 0 {
		return 0
	}
	d := e.signal[1].Mean() - e.signal[0].Mean()
	pooled := e.signal[0].Variance() + e.signal[1].Variance()
	if pooled <= 0 {
		return 0
	}
	return d * d / pooled
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Live slots. The experiment harnesses publish here; the obs server's
// /leakage and /introspect/pht endpoints and the CLIs' -leakage-out /
// -introspect-out exports read here. Atomic pointers make publishing
// race-free against concurrent scrapes.
var (
	liveReport        atomic.Pointer[Report]
	liveIntrospection atomic.Pointer[any]
)

// PublishReport installs r as the process-wide latest leakage report.
func PublishReport(r Report) {
	liveReport.Store(&r)
}

var liveRunID atomic.Pointer[string]

// SetRunID installs the process-wide run identity stamped into every
// report Estimator.Report builds from then on.
func SetRunID(id string) {
	liveRunID.Store(&id)
}

// RunID returns the process-wide run identity ("" until SetRunID).
func RunID() string {
	p := liveRunID.Load()
	if p == nil {
		return ""
	}
	return *p
}

// LatestReport returns a copy of the latest published report, or nil
// when none has been published.
func LatestReport() *Report {
	p := liveReport.Load()
	if p == nil {
		return nil
	}
	r := *p
	return &r
}

// PublishIntrospection installs a predictor introspection snapshot
// (typically a bpu.Introspection) as the process-wide latest. The
// value must already be a self-contained copy; nil is ignored.
func PublishIntrospection(snap any) {
	if snap == nil {
		return
	}
	liveIntrospection.Store(&snap)
}

// LatestIntrospection returns the latest published introspection
// snapshot, or nil when none has been published.
func LatestIntrospection() any {
	p := liveIntrospection.Load()
	if p == nil {
		return nil
	}
	return *p
}

// WriteLatestReport writes the latest published report as indented
// JSON — the -leakage-out export. When no report has been published it
// writes a schema-stamped placeholder with "available": false, so the
// file is always valid JSON with a recognizable schema.
func WriteLatestReport(w io.Writer) error {
	var doc any
	if r := LatestReport(); r != nil {
		doc = r
	} else {
		doc = struct {
			Schema    string `json:"schema"`
			Available bool   `json:"available"`
		}{Schema: Schema, Available: false}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
