package leakage

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// feed records n bits of each (sent, got, known) combination given as
// counts[sent][outcome] with outcome 0=decoded 0, 1=decoded 1, 2=unknown.
func feed(e *Estimator, counts [2][3]uint64) {
	for x := 0; x < 2; x++ {
		for y := 0; y < 3; y++ {
			for i := uint64(0); i < counts[x][y]; i++ {
				e.Observe(x == 1, y == 1, y != 2)
			}
		}
	}
}

func TestPerfectChannel(t *testing.T) {
	var e Estimator
	feed(&e, [2][3]uint64{{50, 0, 0}, {0, 50, 0}})
	r := e.Report()
	if r.Bits != 100 || r.Unknown != 0 || r.WrongKnown != 0 {
		t.Fatalf("counts: %+v", r)
	}
	if r.BitErrorRate != 0 {
		t.Errorf("BER = %v, want 0", r.BitErrorRate)
	}
	if !almost(r.MutualInformationBits, 1, 1e-9) {
		t.Errorf("MI = %v, want 1", r.MutualInformationBits)
	}
	if !almost(r.CapacityBits, 1, 1e-9) {
		t.Errorf("capacity = %v, want 1", r.CapacityBits)
	}
	if r.Windows != 1 {
		t.Errorf("windows = %d, want 1", r.Windows)
	}
}

// TestBSCAgainstClosedForm checks MI and capacity against the
// binary-symmetric-channel closed form 1 - H2(p).
func TestBSCAgainstClosedForm(t *testing.T) {
	// p = 0.1: 90 correct, 10 flipped per input class.
	var e Estimator
	feed(&e, [2][3]uint64{{90, 10, 0}, {10, 90, 0}})
	r := e.Report()
	want := 1 - (-0.9*math.Log2(0.9) - 0.1*math.Log2(0.1))
	if !almost(r.MutualInformationBits, want, 1e-9) {
		t.Errorf("MI = %v, want %v", r.MutualInformationBits, want)
	}
	// Symmetric channel + uniform empirical input: capacity == MI.
	if !almost(r.CapacityBits, want, 1e-6) {
		t.Errorf("capacity = %v, want %v", r.CapacityBits, want)
	}
	if !almost(r.BitErrorRate, 0.1, 1e-12) {
		t.Errorf("BER = %v, want 0.1", r.BitErrorRate)
	}
}

// TestCapacityExceedsMIOnSkewedInput: with a non-uniform empirical
// input distribution on a clean channel, Blahut–Arimoto finds the
// optimal input and reports more than the empirical MI.
func TestCapacityExceedsMIOnSkewedInput(t *testing.T) {
	var e Estimator
	feed(&e, [2][3]uint64{{90, 0, 0}, {0, 10, 0}}) // 90/10 split, error-free
	r := e.Report()
	if !(r.CapacityBits > r.MutualInformationBits) {
		t.Errorf("capacity %v should exceed MI %v on skewed input", r.CapacityBits, r.MutualInformationBits)
	}
	if !almost(r.CapacityBits, 1, 1e-6) {
		t.Errorf("capacity = %v, want 1 (noiseless binary channel)", r.CapacityBits)
	}
}

// TestAllUnknownWindow is the degenerate case the golden promtext test
// also exercises: every read gives up, MI and capacity are exactly 0,
// BER is exactly 0.5, and the report marshals cleanly (no NaN/Inf).
func TestAllUnknownWindow(t *testing.T) {
	var e Estimator
	feed(&e, [2][3]uint64{{0, 0, 30}, {0, 0, 30}})
	r := e.Report()
	if r.BitErrorRate != 0.5 {
		t.Errorf("BER = %v, want 0.5", r.BitErrorRate)
	}
	if r.MutualInformationBits != 0 || r.CapacityBits != 0 {
		t.Errorf("MI/capacity = %v/%v, want exact zeros", r.MutualInformationBits, r.CapacityBits)
	}
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// TestOneSidedPattern: a constant (all-ones) pattern leaves the sent-0
// row unobserved; capacity must fall back to the empirical MI (0).
func TestOneSidedPattern(t *testing.T) {
	var e Estimator
	feed(&e, [2][3]uint64{{0, 0, 0}, {2, 28, 0}})
	r := e.Report()
	if r.MutualInformationBits != 0 {
		t.Errorf("MI = %v, want 0 (H(X)=0)", r.MutualInformationBits)
	}
	if r.CapacityBits != r.MutualInformationBits {
		t.Errorf("capacity = %v, want MI fallback %v", r.CapacityBits, r.MutualInformationBits)
	}
}

func TestSNR(t *testing.T) {
	var e Estimator
	// Two well-separated populations with a little spread.
	for _, v := range []float64{60, 62, 64, 62} {
		e.Signal(false, v)
	}
	for _, v := range []float64{200, 204, 196, 200} {
		e.Signal(true, v)
	}
	r := e.Report()
	if r.SNR <= 100 {
		t.Errorf("SNR = %v, want large for separated populations", r.SNR)
	}
	if r.Signal[0].N != 4 || r.Signal[1].N != 4 {
		t.Errorf("signal Ns = %+v", r.Signal)
	}

	// Zero pooled variance must clamp to 0, not +Inf.
	var z Estimator
	z.Signal(false, 100)
	z.Signal(true, 100)
	if rz := z.Report(); rz.SNR != 0 {
		t.Errorf("degenerate SNR = %v, want 0", rz.SNR)
	}
	// One-sided signal: unestimable, 0.
	var one Estimator
	one.Signal(true, 7)
	if ro := one.Report(); ro.SNR != 0 {
		t.Errorf("one-sided SNR = %v, want 0", ro.SNR)
	}
}

// TestMergeEqualsWhole: merging per-window estimators must equal one
// estimator fed the concatenated stream — the per-cell rollup contract.
func TestMergeEqualsWhole(t *testing.T) {
	var whole, w1, w2, cell Estimator
	feed(&whole, [2][3]uint64{{40, 5, 5}, {3, 45, 2}})
	feed(&w1, [2][3]uint64{{20, 3, 2}, {1, 22, 2}})
	feed(&w2, [2][3]uint64{{20, 2, 3}, {2, 23, 0}})
	for i := 0; i < 10; i++ {
		v := float64(60 + i)
		whole.Signal(false, v)
		w1.Signal(false, v)
		v = float64(200 + i)
		whole.Signal(true, v)
		w2.Signal(true, v)
	}
	cell.Merge(&w1)
	cell.Merge(&w2)
	got, want := cell.Report(), whole.Report()
	if got.Confusion != want.Confusion {
		t.Fatalf("confusion %+v, want %+v", got.Confusion, want.Confusion)
	}
	if !almost(got.MutualInformationBits, want.MutualInformationBits, 1e-12) ||
		!almost(got.SNR, want.SNR, 1e-9) {
		t.Errorf("merged MI/SNR = %v/%v, want %v/%v",
			got.MutualInformationBits, got.SNR, want.MutualInformationBits, want.SNR)
	}
	if got.Windows != 2 {
		t.Errorf("windows = %d, want 2", got.Windows)
	}
}

// TestReportDeterminism: identical observation sequences produce
// byte-identical JSON — the property the parallel-diff CI gate needs.
func TestReportDeterminism(t *testing.T) {
	build := func() []byte {
		var e Estimator
		feed(&e, [2][3]uint64{{37, 4, 9}, {2, 41, 7}})
		for i := 0; i < 50; i++ {
			e.Signal(i%2 == 0, float64(64+i%7*31))
		}
		r := e.Report()
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Errorf("reports differ:\n%s\n%s", a, b)
	}
}

func TestPublishSlots(t *testing.T) {
	// Note: slots are process-wide; this test owns them within the
	// package's test binary.
	if LatestReport() != nil && LatestReport().Schema != Schema {
		t.Fatalf("unexpected pre-published report")
	}
	var e Estimator
	feed(&e, [2][3]uint64{{10, 0, 0}, {0, 10, 0}})
	r := e.Report()
	PublishReport(r)
	got := LatestReport()
	if got == nil || got.Bits != 20 {
		t.Fatalf("LatestReport = %+v", got)
	}
	// The returned copy must not alias the slot.
	got.Bits = 999
	if LatestReport().Bits != 20 {
		t.Error("LatestReport returned an aliased pointer")
	}

	PublishIntrospection(nil) // must be a no-op
	type snap struct{ Size int }
	PublishIntrospection(snap{Size: 1024})
	if s, ok := LatestIntrospection().(snap); !ok || s.Size != 1024 {
		t.Errorf("LatestIntrospection = %#v", LatestIntrospection())
	}

	var buf bytes.Buffer
	if err := WriteLatestReport(&buf); err != nil {
		t.Fatalf("WriteLatestReport: %v", err)
	}
	if !strings.Contains(buf.String(), Schema) {
		t.Errorf("report export missing schema: %s", buf.String())
	}
}
