package chaos

import (
	"math"
	"strings"
	"testing"
)

// FuzzPlanRoundTrip fuzzes the canonical-JSON round trip: any input
// Parse accepts must re-render (String) to a form Parse accepts again
// and that is a fixed point — parse(render(p)) renders identically.
// Inputs Parse rejects must never round-trip to an accepted plan.
func FuzzPlanRoundTrip(f *testing.F) {
	seeds := []string{
		"", "off", "light", "moderate", "heavy",
		"0", "0.5", "1", "2.75", "1e-3",
		"NaN", "Inf", "-Inf", "-0.5", "nan", "+Inf", "1e400",
		`{"seed":7,"preempt":{"prob":0.25,"span":3}}`,
		`{"seed":1,"pmc":{"prob":1}}`,
		`{"crash":{"magnitude":3}}`,
		`{"tsc":{"prob":0.1,"magnitude":40},"victim":{"prob":0.01,"span":200}}`,
		`{"pmc":{"prob":NaN}}`,
		`{"preempt":{"prob":-1}}`,
		`{"migrate":{"span":-2}}`,
		`{"crash":{"magnitude":-1}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		p, err := Parse(in, 99)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted a plan its own Validate rejects: %v", in, verr)
		}
		s1 := p.String()
		p2, err := Parse(s1, 99)
		if err != nil {
			t.Fatalf("Parse(%q) -> String() = %q no longer parses: %v", in, s1, err)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("canonical form not a fixed point for %q:\n first: %s\nsecond: %s", in, s1, s2)
		}
	})
}

// TestParseRejectsNonFiniteAndNegative pins the validation surface:
// NaN/Inf/negative bare intensities and out-of-range JSON spec fields
// are usage errors, never silently-poisoned schedules.
func TestParseRejectsNonFiniteAndNegative(t *testing.T) {
	bad := []string{
		"NaN", "nan", "Inf", "+Inf", "-Inf", "-1", "-0.001",
		`{"preempt":{"prob":-0.5}}`,
		`{"pmc":{"prob":1.5}}`,
		`{"tsc":{"span":-1}}`,
		`{"victim":{"magnitude":-3}}`,
		`{"crash":{"magnitude":-1}}`,
	}
	for _, s := range bad {
		if p, err := Parse(s, 1); err == nil {
			t.Errorf("Parse(%q) accepted: %+v", s, p)
		}
	}
	// JSON can smuggle non-finite probabilities only via syntax Go's
	// decoder rejects; Validate still guards the struct surface for
	// plans built in code.
	p := Plan{PMCCorrupt: Spec{Prob: math.NaN()}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "pmc") {
		t.Errorf("Validate missed a NaN probability: %v", err)
	}
	p = Plan{Crash: Spec{Magnitude: -2}}
	if err := p.Validate(); err == nil {
		t.Error("Validate missed a negative crash magnitude")
	}
}
