// Package chaos is the deterministic fault-injection substrate of the
// robustness evaluation. The paper's §7 measures BranchScope under SMT
// noise, co-resident processes and victim slowdown, and §8's timing
// probe is explicitly noisier; a real attacker survives those
// conditions by retrying and recalibrating. This package reproduces the
// adversarial conditions themselves — scheduler preemption that flushes
// an in-flight prime+probe, attacker core migration (the PHT is no
// longer shared, so the episode yields garbage), PMC readout
// corruption/saturation, TSC jitter against the timing detector, and
// victim-slowdown jitter — as seeded, reproducible faults injected at
// episode boundaries.
//
// Everything is driven by a Plan: a small, serializable description of
// per-episode fault probabilities. The same seed and plan produce the
// same fault schedule, so experiment output stays byte-identical at any
// parallelism, and a failure found under chaos can be replayed exactly.
// The attack code above never reads simulator internals; faults reach
// it only through the architectural surfaces it already uses (counter
// reads, branch timing, victim stepping) — exactly how interference
// presents on real silicon.
package chaos

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec describes one fault kind in a Plan.
type Spec struct {
	// Prob is the per-episode probability that the fault triggers.
	Prob float64 `json:"prob,omitempty"`
	// Span is the fault's duration in episodes once triggered, for the
	// windowed faults (migration, PMC corruption, TSC jitter). Zero
	// selects the fault's documented default.
	Span int `json:"span,omitempty"`
	// Magnitude is the fault-specific strength: preemption burst length
	// in instructions, PMC additive corruption bound, TSC baseline
	// shift in cycles, or extra victim iterations. Zero selects the
	// fault's documented default.
	Magnitude int `json:"magnitude,omitempty"`
}

// Plan is a complete, serializable fault-injection schedule. The zero
// value injects nothing. Plans are pure data: the schedule realized
// from a plan depends only on (Plan, episode index), never on host
// state, which is what keeps chaos runs reproducible.
type Plan struct {
	// Seed drives every random choice the injector makes. It is
	// independent of the experiment seed so the same fault schedule can
	// be replayed against different attack randomizations.
	Seed uint64 `json:"seed"`
	// Preempt models the OS descheduling the spy mid-episode: a burst
	// of foreign branch-dense code runs between prime and probe,
	// trashing predictor state the episode depends on.
	Preempt Spec `json:"preempt"`
	// Migrate models the spy being moved to another physical core for a
	// window of episodes: the primed PHT is no longer the probed PHT,
	// so counter readings during the window are unrelated garbage.
	Migrate Spec `json:"migrate"`
	// PMCCorrupt models perf-subsystem readout glitches: a window where
	// PMC reads are saturated or perturbed.
	PMCCorrupt Spec `json:"pmc"`
	// TSCJitter models a persistent rdtscp baseline shift (frequency
	// scaling, SMI storms): for a window, every TSC read costs extra
	// cycles, which breaks a calibrated timing threshold until the
	// detector recalibrates.
	TSCJitter Spec `json:"tsc"`
	// VictimJitter models victim slowdown/speedup: the victim
	// occasionally advances extra iterations within one attack window.
	VictimJitter Spec `json:"victim"`
	// Crash is the campaign-layer crash point: Magnitude N kills the
	// process (exit code campaign.CrashExitCode) right after the Nth
	// task outcome is journaled, so CI can interrupt a checkpointed run
	// at a deterministic point and assert resume equivalence. Unlike
	// the episode faults above it never touches a measurement; it is a
	// no-op without a -checkpoint journal. In fabric -worker mode the
	// crash point is worker-targeted instead: the worker process exits
	// right after streaming its Nth task outcome, exercising the
	// coordinator's lease-reassignment path (see internal/fabric and
	// DESIGN §3.20). Prob and Span are unused.
	Crash Spec `json:"crash"`
}

// Enabled reports whether the plan does anything at all — injects
// episode faults or arms a campaign crash point.
func (p Plan) Enabled() bool {
	return p.HasEpisodeFaults() || p.Crash.Magnitude > 0
}

// HasEpisodeFaults reports whether the plan injects measurement-level
// faults (anything but a crash point). Harnesses gate Injector
// installation on this, not Enabled: a crash-only plan must leave the
// simulated machines untouched so a crashed-and-resumed run is
// byte-comparable to an uninterrupted run without the plan.
func (p Plan) HasEpisodeFaults() bool {
	return p.Preempt.Prob > 0 || p.Migrate.Prob > 0 || p.PMCCorrupt.Prob > 0 ||
		p.TSCJitter.Prob > 0 || p.VictimJitter.Prob > 0
}

// CrashPoint returns the armed crash point: kill the process after N
// journaled task outcomes. 0 means no crash point.
func (p Plan) CrashPoint() int {
	if p.Crash.Magnitude > 0 {
		return p.Crash.Magnitude
	}
	return 0
}

// Validate rejects plans that cannot describe a realizable fault
// schedule: NaN, infinite or out-of-[0,1] probabilities and negative
// spans or magnitudes. Parse validates every plan it returns; callers
// constructing plans in code can check theirs the same way.
func (p Plan) Validate() error {
	check := func(name string, s Spec) error {
		if math.IsNaN(s.Prob) || math.IsInf(s.Prob, 0) || s.Prob < 0 || s.Prob > 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0, 1]", name, s.Prob)
		}
		if s.Span < 0 {
			return fmt.Errorf("chaos: %s span %d is negative", name, s.Span)
		}
		if s.Magnitude < 0 {
			return fmt.Errorf("chaos: %s magnitude %d is negative", name, s.Magnitude)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		spec Spec
	}{
		{"preempt", p.Preempt}, {"migrate", p.Migrate}, {"pmc", p.PMCCorrupt},
		{"tsc", p.TSCJitter}, {"victim", p.VictimJitter}, {"crash", p.Crash},
	} {
		if err := check(f.name, f.spec); err != nil {
			return err
		}
	}
	return nil
}

// WithSeed returns a copy of the plan with its seed replaced.
func (p Plan) WithSeed(seed uint64) Plan {
	p.Seed = seed
	return p
}

// String renders the plan as its canonical JSON, the same form Parse
// accepts — a plan printed into a log or ledger can be replayed.
func (p Plan) String() string {
	b, err := json.Marshal(p)
	if err != nil { // no marshalable-field can fail; keep the Stringer total
		return fmt.Sprintf("chaos.Plan{seed:%d}", p.Seed)
	}
	return string(b)
}

// Intensity presets: the named points of the robustness sweep.
const (
	// LightIntensity is occasional interference a naive loop mostly
	// shrugs off.
	LightIntensity = 0.5
	// ModerateIntensity is the headline operating point: the naive loop
	// is measurably degraded while the resilient loop recovers.
	ModerateIntensity = 1.0
	// HeavyIntensity is hostile scheduling: even the resilient loop
	// must give up on some bits (reported Unknown, never silently
	// wrong).
	HeavyIntensity = 2.0
)

// AtIntensity builds the standard plan of the robustness sweep scaled
// by a single intensity knob. Intensity scales trigger probabilities,
// not magnitudes: more interference events of realistic size, which is
// how load behaves on real machines. Intensity 0 returns a disabled
// plan; 1 is the "moderate" operating point of EXPERIMENTS.md.
func AtIntensity(seed uint64, intensity float64) Plan {
	if intensity <= 0 {
		return Plan{Seed: seed}
	}
	clamp := func(p float64) float64 {
		if p > 1 {
			return 1
		}
		return p
	}
	return Plan{
		Seed:         seed,
		Preempt:      Spec{Prob: clamp(0.12 * intensity)},
		Migrate:      Spec{Prob: clamp(0.015 * intensity)},
		PMCCorrupt:   Spec{Prob: clamp(0.05 * intensity)},
		TSCJitter:    Spec{Prob: clamp(0.01 * intensity)},
		VictimJitter: Spec{Prob: clamp(0.10 * intensity)},
	}
}

// Parse interprets a -chaos flag value. Accepted forms:
//
//	""| "off"             no chaos (zero plan)
//	"light" | "moderate" | "heavy"
//	"0.75"                bare intensity multiplier
//	"{...}"               a full JSON Plan, as printed by Plan.String
//
// seed seeds the resulting plan except when a JSON plan carries its own
// nonzero seed (replay keeps the recorded schedule).
func Parse(s string, seed uint64) (Plan, error) {
	switch strings.TrimSpace(s) {
	case "", "off":
		return Plan{Seed: seed}, nil
	case "light":
		return AtIntensity(seed, LightIntensity), nil
	case "moderate":
		return AtIntensity(seed, ModerateIntensity), nil
	case "heavy":
		return AtIntensity(seed, HeavyIntensity), nil
	}
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "{") {
		var p Plan
		if err := json.Unmarshal([]byte(t), &p); err != nil {
			return Plan{}, fmt.Errorf("chaos: bad plan JSON: %w", err)
		}
		if p.Seed == 0 {
			p.Seed = seed
		}
		if err := p.Validate(); err != nil {
			return Plan{}, err
		}
		return p, nil
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return Plan{}, fmt.Errorf("chaos: want off, light, moderate, heavy, an intensity >= 0 or a plan JSON; got %q", s)
	}
	// ParseFloat accepts "NaN" and "Inf", and a negative intensity has
	// no meaning; reject all three explicitly rather than letting them
	// poison every derived probability.
	if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return Plan{}, fmt.Errorf("chaos: intensity must be a finite number >= 0; got %q", s)
	}
	return AtIntensity(seed, f), nil
}
