package chaos

import (
	"branchscope/internal/cpu"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/telemetry"
)

// Region is the virtual address base of chaos burst code. Distinct from
// noise.DefaultRegion and from all attack/victim code: like background
// noise, preemption bursts interfere only through predictor and icache
// aliasing, never by touching attack addresses directly.
const Region uint64 = 0x7e00_0000_0000

// burstSpan is the address span of preemption-burst code. Wide enough
// to splatter entries across the whole PHT of every modeled part.
const burstSpan uint64 = 1 << 22

// pmcSaturated is the value a saturated counter read reports: a
// recognizably absurd reading, as a wedged perf slot produces.
const pmcSaturated = uint64(1) << 62

// Default fault parameters, applied when a Spec leaves Span/Magnitude
// zero. Documented in DESIGN §3.15.
const (
	defaultPreemptBurst = 2500 // instructions run while the spy is descheduled
	defaultMigrateSpan  = 8    // episodes spent on the wrong core
	defaultPMCSpan      = 4    // episodes of perf readout glitches
	defaultPMCMagnitude = 3    // additive PMC corruption bound
	defaultTSCSpan      = 150  // episodes of shifted rdtscp baseline
	defaultTSCShift     = 70   // cycles added per TSC read at full shift
	defaultVictimExtra  = 2    // extra victim iterations bound
)

// Stepper matches core.Stepper structurally; chaos sits below the
// attack layer and must not import it.
type Stepper interface {
	StepBranches(k int) bool
}

// Injector realizes a Plan against one simulated machine. It owns a
// hardware context of its own (a foreign process, from the predictor's
// point of view) for preemption bursts, and installs cpu.ReadFaults for
// the readout faults. The harness marks episode boundaries with
// BeforeStep/AfterStep; harnesses without episode structure (the
// phtmap mapper) use SelfClock to synthesize boundaries from counter
// reads instead.
//
// All randomness comes from streams derived from Plan.Seed, advanced in
// program order on the single goroutine that runs the machine — the
// fault schedule is a pure function of (plan, episode sequence).
type Injector struct {
	plan  Plan
	core  *cpu.Core
	ctx   *cpu.Context
	burst *noise.Burst
	r     *rng.Source // schedule stream: what fires when
	reads *rng.Source // readout stream: per-read corruption values

	selfClock int // counter reads per synthetic episode (0: episode-driven)
	readTick  int

	episode     uint64
	preemptNow  bool // a preemption fires this episode...
	preemptPost bool // ...after the victim step rather than before it
	migrateLeft int
	pmcLeft     int
	pmcSat      bool
	tscLeft     int
	tscShift    uint64

	ctr injCounters
}

type injCounters struct {
	episodes    *telemetry.Counter
	preemptions *telemetry.Counter
	migrations  *telemetry.Counter
	pmcWindows  *telemetry.Counter
	tscWindows  *telemetry.Counter
	victimSlows *telemetry.Counter
	badReads    *telemetry.Counter
}

// NewInjector attaches a fault injector to a machine. It allocates a
// chaos process context and installs the core read-fault hooks; call
// Detach when the plan's reign ends. With a disabled plan it still
// returns a working injector that injects nothing, so harness wiring
// needs no special case.
func NewInjector(sys *sched.System, plan Plan) *Injector {
	r := rng.New(plan.Seed)
	i := &Injector{
		plan:  plan,
		core:  sys.Core(),
		ctx:   sys.NewProcess("chaos"),
		burst: noise.NewBurst(r.Uint64(), Region, burstSpan),
		r:     r.Split(),
		reads: r.Split(),
	}
	tel := sys.Telemetry()
	i.ctr = injCounters{
		episodes:    tel.Counter("chaos.episodes"),
		preemptions: tel.Counter("chaos.preemptions"),
		migrations:  tel.Counter("chaos.migrations"),
		pmcWindows:  tel.Counter("chaos.pmc_windows"),
		tscWindows:  tel.Counter("chaos.tsc_windows"),
		victimSlows: tel.Counter("chaos.victim_jitters"),
		badReads:    tel.Counter("chaos.corrupted_reads"),
	}
	i.core.SetReadFaults(cpu.ReadFaults{PMC: i.pmcFault, TSCExtra: i.tscExtra})
	return i
}

// Detach removes the injector's read-fault hooks from the core. The
// chaos context stays allocated (contexts are never reclaimed), but no
// further faults fire.
func (i *Injector) Detach() { i.core.SetReadFaults(cpu.ReadFaults{}) }

// Plan returns the plan the injector realizes.
func (i *Injector) Plan() Plan { return i.plan }

// Episodes returns how many episode boundaries the injector has seen.
func (i *Injector) Episodes() uint64 { return i.episode }

// SelfClock makes the injector synthesize an episode boundary every
// readsPerEpisode counter reads, for harnesses that never call
// BeforeStep (the phtmap mapper probes in a flat loop). Pass 0 to
// return to episode-driven operation.
func (i *Injector) SelfClock(readsPerEpisode int) {
	i.selfClock = readsPerEpisode
	i.readTick = 0
}

// BeforeStep marks an episode boundary: the spy has primed and is about
// to release the victim. Faults scheduled for this episode arm here,
// and a preemption drawn for the prime→step gap fires immediately —
// foreign code runs on the spy's core while the spy believes its primed
// state is intact.
func (i *Injector) BeforeStep() {
	i.advance()
	if i.preemptNow && !i.preemptPost {
		i.preemptNow = false
		i.runPreempt()
	}
}

// AfterStep marks the step→probe gap of the current episode; a
// preemption drawn for that side fires here, between the victim's
// secret-dependent branch and the spy's probe.
func (i *Injector) AfterStep() {
	if i.preemptNow && i.preemptPost {
		i.preemptNow = false
		i.runPreempt()
	}
}

// advance opens a new episode: windowed faults age, and this episode's
// fault draws are made. Draw order is fixed, so the schedule depends
// only on the plan and the episode index.
func (i *Injector) advance() {
	i.episode++
	i.ctr.episodes.Inc()
	if i.migrateLeft > 0 {
		i.migrateLeft--
	}
	if i.pmcLeft > 0 {
		i.pmcLeft--
	}
	if i.tscLeft > 0 {
		i.tscLeft--
		if i.tscLeft == 0 {
			i.tscShift = 0
		}
	}
	p := &i.plan
	if i.r.Chance(p.Preempt.Prob) {
		i.preemptNow = true
		i.preemptPost = i.r.Bool()
		i.ctr.preemptions.Inc()
	}
	if i.migrateLeft == 0 && i.r.Chance(p.Migrate.Prob) {
		i.migrateLeft = orDefault(p.Migrate.Span, defaultMigrateSpan)
		i.ctr.migrations.Inc()
	}
	if i.pmcLeft == 0 && i.r.Chance(p.PMCCorrupt.Prob) {
		i.pmcLeft = orDefault(p.PMCCorrupt.Span, defaultPMCSpan)
		i.pmcSat = i.r.Bool()
		i.ctr.pmcWindows.Inc()
	}
	if i.tscLeft == 0 && i.r.Chance(p.TSCJitter.Prob) {
		i.tscLeft = orDefault(p.TSCJitter.Span, defaultTSCSpan)
		mag := uint64(orDefault(p.TSCJitter.Magnitude, defaultTSCShift))
		i.tscShift = mag/2 + i.r.Uint64n(mag/2+1)
		i.ctr.tscWindows.Inc()
	}
}

// runPreempt executes the descheduled window: branch-dense foreign code
// on the chaos context. Interference reaches the spy purely through PHT
// and icache aliasing, like a real context switch.
func (i *Injector) runPreempt() {
	i.burst.Run(i.ctx, orDefault(i.plan.Preempt.Magnitude, defaultPreemptBurst))
}

// pmcFault is the core's PMC read hook.
func (i *Injector) pmcFault(e cpu.Event, v uint64) uint64 {
	i.tick()
	switch {
	case i.migrateLeft > 0:
		// On a foreign core the probed counters describe somebody
		// else's predictor entry: unrelated values.
		i.ctr.badReads.Inc()
		return i.reads.Uint64n(1 << 16)
	case i.pmcLeft > 0:
		i.ctr.badReads.Inc()
		if i.pmcSat {
			return pmcSaturated
		}
		return v + i.reads.Uint64n(uint64(orDefault(i.plan.PMCCorrupt.Magnitude, defaultPMCMagnitude))+1)
	}
	return v
}

// tscExtra is the core's TSC read hook: the active baseline shift plus
// migration turbulence.
func (i *Injector) tscExtra() uint64 {
	i.tick()
	extra := i.tscShift
	if i.migrateLeft > 0 {
		extra += i.reads.Uint64n(160)
	}
	return extra
}

// tick drives the self-clocked mode: every selfClock counter reads
// counts as one episode. A preemption drawn here fires immediately —
// there is no step boundary to defer it to.
func (i *Injector) tick() {
	if i.selfClock <= 0 {
		return
	}
	i.readTick++
	if i.readTick < i.selfClock {
		return
	}
	i.readTick = 0
	i.advance()
	if i.preemptNow {
		i.preemptNow = false
		i.runPreempt()
	}
}

// WrapStepper wraps a victim handle with the plan's victim-slowdown
// jitter: occasionally the victim advances extra iterations within one
// attack window, as a loaded or frequency-scaled victim does. With no
// victim jitter in the plan the victim is returned unwrapped.
func (i *Injector) WrapStepper(v Stepper) Stepper {
	if i.plan.VictimJitter.Prob <= 0 {
		return v
	}
	return &jitterStepper{inner: v, i: i}
}

type jitterStepper struct {
	inner Stepper
	i     *Injector
}

func (j *jitterStepper) StepBranches(k int) bool {
	i := j.i
	if i.r.Chance(i.plan.VictimJitter.Prob) {
		k += 1 + int(i.r.Uint64n(uint64(orDefault(i.plan.VictimJitter.Magnitude, defaultVictimExtra))))
		i.ctr.victimSlows.Inc()
	}
	return j.inner.StepBranches(k)
}

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}
