package chaos

import (
	"strings"
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/sched"
	"branchscope/internal/telemetry"
	"branchscope/internal/uarch"
)

func TestParseNamedForms(t *testing.T) {
	cases := []struct {
		in        string
		intensity float64
	}{
		{"light", LightIntensity},
		{"moderate", ModerateIntensity},
		{"heavy", HeavyIntensity},
		{"0.75", 0.75},
		{" moderate ", ModerateIntensity},
	}
	for _, c := range cases {
		got, err := Parse(c.in, 42)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if want := AtIntensity(42, c.intensity); got != want {
			t.Errorf("Parse(%q) = %+v, want AtIntensity(42, %g)", c.in, got, c.intensity)
		}
	}
	for _, in := range []string{"", "off", "0"} {
		p, err := Parse(in, 42)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if p.Enabled() {
			t.Errorf("Parse(%q) enabled: %+v", in, p)
		}
		if p.Seed != 42 {
			t.Errorf("Parse(%q).Seed = %d, want 42", in, p.Seed)
		}
	}
	for _, in := range []string{"extreme", "-1", "{broken"} {
		if _, err := Parse(in, 42); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

// TestParseStringRoundTrip pins the replay contract: the canonical JSON
// a plan prints (into a log or ledger) parses back to the identical
// plan, keeping its own recorded seed over the flag seed.
func TestParseStringRoundTrip(t *testing.T) {
	p := AtIntensity(7, HeavyIntensity)
	p.PMCCorrupt.Span = 9
	p.TSCJitter.Magnitude = 33
	got, err := Parse(p.String(), 999)
	if err != nil {
		t.Fatalf("Parse(%q): %v", p.String(), err)
	}
	if got != p {
		t.Errorf("round trip changed the plan:\n got %+v\nwant %+v", got, p)
	}
	// A JSON plan without a seed takes the flag seed.
	got, err = Parse(`{"preempt":{"prob":0.5}}`, 999)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 999 || got.Preempt.Prob != 0.5 {
		t.Errorf("seedless JSON plan = %+v", got)
	}
}

func TestAtIntensityScalesAndClamps(t *testing.T) {
	if p := AtIntensity(1, 0); p.Enabled() {
		t.Errorf("intensity 0 enabled: %+v", p)
	}
	light, moderate := AtIntensity(1, LightIntensity), AtIntensity(1, ModerateIntensity)
	if light.Preempt.Prob >= moderate.Preempt.Prob {
		t.Errorf("light preempt %g not below moderate %g", light.Preempt.Prob, moderate.Preempt.Prob)
	}
	huge := AtIntensity(1, 1e6)
	for name, prob := range map[string]float64{
		"preempt": huge.Preempt.Prob, "migrate": huge.Migrate.Prob,
		"pmc": huge.PMCCorrupt.Prob, "tsc": huge.TSCJitter.Prob,
		"victim": huge.VictimJitter.Prob,
	} {
		if prob > 1 {
			t.Errorf("%s prob %g not clamped", name, prob)
		}
	}
}

// chaosTestRig boots a machine with a registry attached and an injector
// realizing the plan, plus a spy context to read counters from.
func chaosTestRig(t *testing.T, plan Plan) (*telemetry.Registry, *Injector, *cpu.Context) {
	t.Helper()
	reg := telemetry.NewRegistry()
	sys := sched.NewSystem(uarch.SandyBridge(), 0xc4a05)
	sys.SetTelemetry(telemetry.New(reg, nil))
	spy := sys.NewProcess("spy")
	inj := NewInjector(sys, plan)
	return reg, inj, spy
}

// driveEpisodes runs n synthetic episodes against the injector and
// returns a digest of everything the spy architecturally observes: the
// fault schedule is a pure function of (plan, episode sequence), so
// the digest must be identical across runs with the same plan.
func driveEpisodes(inj *Injector, spy *cpu.Context, n int) []uint64 {
	var obs []uint64
	for i := 0; i < n; i++ {
		inj.BeforeStep()
		spy.Branch(0x400000+uint64(i%64)*16, i%3 == 0)
		inj.AfterStep()
		t0 := spy.ReadTSC()
		obs = append(obs, spy.ReadTSC()-t0, spy.ReadPMC(cpu.BranchMisses))
	}
	return obs
}

func TestInjectorScheduleDeterministic(t *testing.T) {
	plan := AtIntensity(77, HeavyIntensity)
	_, inj1, spy1 := chaosTestRig(t, plan)
	_, inj2, spy2 := chaosTestRig(t, plan)
	a, b := driveEpisodes(inj1, spy1, 400), driveEpisodes(inj2, spy2, 400)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same plan diverged at observation %d: %d vs %d", i, a[i], b[i])
		}
	}
	if inj1.Episodes() != 400 {
		t.Errorf("Episodes() = %d, want 400", inj1.Episodes())
	}
	// A reseeded plan yields a different schedule (the seeds here are
	// fixed, so this is a deterministic assertion, not a probabilistic
	// one).
	_, inj3, spy3 := chaosTestRig(t, plan.WithSeed(78))
	c := driveEpisodes(inj3, spy3, 400)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("reseeded plan produced the identical observation stream")
	}
}

func TestInjectorDisabledPlanInjectsNothing(t *testing.T) {
	reg, inj, spy := chaosTestRig(t, Plan{Seed: 5})
	driveEpisodes(inj, spy, 200)
	for _, name := range []string{
		"chaos.preemptions", "chaos.migrations", "chaos.pmc_windows",
		"chaos.tsc_windows", "chaos.victim_jitters", "chaos.corrupted_reads",
	} {
		if v := reg.Counter(name).Value(); v != 0 {
			t.Errorf("%s = %d under a disabled plan", name, v)
		}
	}
	if v := reg.Counter("chaos.episodes").Value(); v != 200 {
		t.Errorf("chaos.episodes = %d, want 200", v)
	}
}

func TestInjectorFaultsReachArchitecturalSurfaces(t *testing.T) {
	// Probability-1 faults with tiny spans: every episode opens some
	// window, so corrupted reads and preemption bursts must show up in
	// the counters — and only via the architectural read path.
	plan := Plan{
		Seed:       3,
		Preempt:    Spec{Prob: 1, Magnitude: 50},
		PMCCorrupt: Spec{Prob: 1, Span: 1, Magnitude: 2},
		TSCJitter:  Spec{Prob: 1, Span: 1, Magnitude: 40},
	}
	reg, inj, spy := chaosTestRig(t, plan)
	driveEpisodes(inj, spy, 50)
	for _, name := range []string{
		"chaos.preemptions", "chaos.pmc_windows", "chaos.tsc_windows",
		"chaos.corrupted_reads",
	} {
		if v := reg.Counter(name).Value(); v == 0 {
			t.Errorf("%s = 0 under probability-1 faults", name)
		}
	}
	// Detach removes the read hooks: PMC reads are truthful again.
	inj.Detach()
	before := spy.ReadPMC(cpu.BranchMisses)
	if again := spy.ReadPMC(cpu.BranchMisses); again != before {
		t.Errorf("PMC read unstable after Detach: %d then %d", before, again)
	}
}

// fixedStepper records the step sizes the harness asked for.
type fixedStepper struct{ steps []int }

func (f *fixedStepper) StepBranches(k int) bool {
	f.steps = append(f.steps, k)
	return true
}

func TestWrapStepperVictimJitter(t *testing.T) {
	_, inj, _ := chaosTestRig(t, Plan{Seed: 9, VictimJitter: Spec{Prob: 1, Magnitude: 3}})
	inner := &fixedStepper{}
	wrapped := inj.WrapStepper(inner)
	for i := 0; i < 20; i++ {
		wrapped.StepBranches(1)
	}
	for i, k := range inner.steps {
		if k < 2 || k > 4 {
			t.Errorf("step %d advanced %d branches, want 1+[1,3] extra", i, k)
		}
	}
	// No victim jitter in the plan: the victim is returned unwrapped.
	_, inj2, _ := chaosTestRig(t, Plan{Seed: 9, Preempt: Spec{Prob: 1}})
	inner2 := &fixedStepper{}
	if inj2.WrapStepper(inner2) != Stepper(inner2) {
		t.Error("WrapStepper wrapped a victim with no jitter in the plan")
	}
}

func TestSelfClockSynthesizesEpisodes(t *testing.T) {
	reg, inj, spy := chaosTestRig(t, Plan{Seed: 11, Preempt: Spec{Prob: 1, Magnitude: 30}})
	inj.SelfClock(4)
	for i := 0; i < 40; i++ {
		spy.ReadPMC(cpu.BranchMisses)
	}
	if v := reg.Counter("chaos.episodes").Value(); v != 10 {
		t.Errorf("chaos.episodes = %d after 40 reads at SelfClock(4), want 10", v)
	}
	if v := reg.Counter("chaos.preemptions").Value(); v != 10 {
		t.Errorf("chaos.preemptions = %d, want 10 (prob 1, fired immediately)", v)
	}
	// Returning to episode-driven mode stops the synthetic clock.
	inj.SelfClock(0)
	before := reg.Counter("chaos.episodes").Value()
	for i := 0; i < 40; i++ {
		spy.ReadPMC(cpu.BranchMisses)
	}
	if v := reg.Counter("chaos.episodes").Value(); v != before {
		t.Errorf("episodes advanced (%d -> %d) with SelfClock(0)", before, v)
	}
}

func TestPlanStringIsCanonicalJSON(t *testing.T) {
	s := AtIntensity(3, ModerateIntensity).String()
	if !strings.HasPrefix(s, "{") || !strings.Contains(s, `"seed":3`) {
		t.Errorf("Plan.String() not canonical JSON: %s", s)
	}
}
