package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/fsm"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// Counter-width ablation — §10.2 floats "chang[ing] the prediction FSM"
// as a defense direction. A natural candidate is widening the saturating
// counters: from a deep strong state, a single victim execution cannot
// cross the prediction boundary, so the standard strong-state dictionaries
// go blind. The ablation shows why this fails as a defense: the attacker's
// block search simply selects blocks that prime *boundary* states (the
// widened counter's weak states), where one victim execution still flips
// the next prediction. The attack generalizes through the per-state
// dictionaries of the multi-target machinery; what the defender buys is a
// smaller usable prime-state set (longer pre-attack search), not safety.

// FSMWidthConfig parameterizes the ablation.
type FSMWidthConfig struct {
	// Widths are the per-side state counts evaluated (2 = textbook
	// 2-bit counter).
	Widths []int
	Bits   int
	Seed   uint64
}

func (c FSMWidthConfig) withDefaults() FSMWidthConfig {
	if c.Widths == nil {
		c.Widths = []int{1, 2, 3, 4}
	}
	if c.Bits == 0 {
		c.Bits = 3000
	}
	return c
}

// QuickFSMWidthConfig returns a test-scale configuration.
func QuickFSMWidthConfig() FSMWidthConfig {
	return FSMWidthConfig{Bits: 700}
}

// FSMWidthRow is one counter width's outcome.
type FSMWidthRow struct {
	// Width is the per-side state count (a width-w counter has 2w
	// states).
	Width int
	// ErrorRate is the covert error; 0.5 when no usable block exists.
	ErrorRate float64
	// PrimedState is the state class the search settled on.
	PrimedState core.StateClass
	// SearchCandidates counts blocks tried before one was usable (-1
	// when the search failed).
	SearchCandidates int
}

// FSMWidthResult holds the ablation.
type FSMWidthResult struct {
	Config FSMWidthConfig
	Points []FSMWidthRow
}

// RunFSMWidth regenerates the counter-width ablation on Skylake-size
// tables with symmetric Saturating(w, w) counters. The per-width units
// run on the context's worker pool; each width's seed stream depends
// only on (seed, width), so results are scheduling-independent.
func RunFSMWidth(ctx context.Context, cfg FSMWidthConfig) (FSMWidthResult, error) {
	cfg = cfg.withDefaults()
	res := FSMWidthResult{Config: cfg}
	rows, err := engine.Map(ctx, len(cfg.Widths), func(i int) (FSMWidthRow, error) {
		return runFSMWidthOne(ctx, cfg, cfg.Widths[i])
	})
	if err != nil {
		return FSMWidthResult{}, err
	}
	res.Points = rows
	return res, nil
}

func runFSMWidthOne(ctx context.Context, cfg FSMWidthConfig, w int) (FSMWidthRow, error) {
	row := FSMWidthRow{Width: w, SearchCandidates: -1, ErrorRate: 0.5}
	m := uarch.Skylake()
	m.Name = fmt.Sprintf("Skylake-%dbitFSM", w)
	m.BPU.FSM = fsm.Saturating(fmt.Sprintf("sym-%d", w), w, w, w-1)

	r := rng.New(cfg.Seed + uint64(w)*7919 + 28)
	sys := sched.NewSystem(m, r.Uint64())
	secret := r.Bits(cfg.Bits)
	victim := sys.Spawn("sender", victims.LoopingSecretArraySender(secret, 0))
	defer victim.Kill()
	noiseThread := sys.Spawn("noise", noise.Process(r.Uint64(), noise.DefaultRegion, 1<<22))
	defer noiseThread.Kill()
	spy := sys.NewProcess("spy")

	// The generalized (per-state dictionary) session: deep strong
	// states are unusable on wide counters, so the SN-only standard
	// session would fail where this one adapts. Count the candidates
	// consumed by retrying with growing budgets.
	var ms *core.MultiSession
	var err error
	budgets := []int{50, 450, 3500}
	tried := 0
	for _, b := range budgets {
		ms, err = core.NewMultiSession(spy, r.Split(), core.MultiConfig{
			Targets:       []uint64{victims.SecretBranchAddr},
			MaxCandidates: b,
			AllowST:       w <= 2, // deep taken states are ambiguous beyond 2-bit
		})
		tried += b
		if err == nil {
			break
		}
	}
	if err != nil {
		return row, nil
	}
	row.SearchCandidates = tried
	row.PrimedState = ms.Targets()[0].Primed

	budget := m.NoiseIsolatedBranches
	got := make([]bool, len(secret))
	for i := range secret {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return FSMWidthRow{}, fmt.Errorf("experiments: fsmwidth %d: %w", w, err)
			}
		}
		ms.Prime()
		noiseThread.Step(budget / 2)
		victim.StepBranches(1)
		noiseThread.Step(budget - budget/2)
		got[i] = ms.ProbeAll()[0]
	}
	row.ErrorRate = stats.ErrorRate(got, secret)
	return row, nil
}

// String implements fmt.Stringer.
func (r FSMWidthResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Counter-width ablation (§10.2 FSM changes): covert error by counter depth")
	fmt.Fprintln(&b, "(Skylake tables, isolated noise, generalized per-state dictionaries)")
	for _, row := range r.Points {
		if row.SearchCandidates < 0 {
			fmt.Fprintf(&b, "  %d state(s)/side: no usable block found — channel closed at this width\n", row.Width)
			continue
		}
		fmt.Fprintf(&b, "  %d state(s)/side: error %7s  (primed %v, <=%d candidates searched)\n",
			row.Width, stats.Percent(row.ErrorRate), row.PrimedState, row.SearchCandidates)
	}
	return b.String()
}

// Rows implements engine.Result: one row per counter width.
func (r FSMWidthResult) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Points))
	for _, row := range r.Points {
		rows = append(rows, engine.Row{
			engine.F("width", row.Width),
			engine.F("error_rate", row.ErrorRate),
			engine.F("primed_state", row.PrimedState.String()),
			engine.F("search_candidates", row.SearchCandidates),
		})
	}
	return rows
}
