package experiments

import (
	"fmt"
	"strings"

	"branchscope/internal/core"
	"branchscope/internal/fsm"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// Counter-width ablation — §10.2 floats "chang[ing] the prediction FSM"
// as a defense direction. A natural candidate is widening the saturating
// counters: from a deep strong state, a single victim execution cannot
// cross the prediction boundary, so the standard strong-state dictionaries
// go blind. The ablation shows why this fails as a defense: the attacker's
// block search simply selects blocks that prime *boundary* states (the
// widened counter's weak states), where one victim execution still flips
// the next prediction. The attack generalizes through the per-state
// dictionaries of the multi-target machinery; what the defender buys is a
// smaller usable prime-state set (longer pre-attack search), not safety.

// FSMWidthConfig parameterizes the ablation.
type FSMWidthConfig struct {
	// Widths are the per-side state counts evaluated (2 = textbook
	// 2-bit counter).
	Widths []int
	Bits   int
	Seed   uint64
}

func (c FSMWidthConfig) withDefaults() FSMWidthConfig {
	if c.Widths == nil {
		c.Widths = []int{1, 2, 3, 4}
	}
	if c.Bits == 0 {
		c.Bits = 3000
	}
	return c
}

// QuickFSMWidthConfig returns a test-scale configuration.
func QuickFSMWidthConfig() FSMWidthConfig {
	return FSMWidthConfig{Bits: 700}
}

// FSMWidthRow is one counter width's outcome.
type FSMWidthRow struct {
	// Width is the per-side state count (a width-w counter has 2w
	// states).
	Width int
	// ErrorRate is the covert error; 0.5 when no usable block exists.
	ErrorRate float64
	// PrimedState is the state class the search settled on.
	PrimedState core.StateClass
	// SearchCandidates counts blocks tried before one was usable (-1
	// when the search failed).
	SearchCandidates int
}

// FSMWidthResult holds the ablation.
type FSMWidthResult struct {
	Config FSMWidthConfig
	Rows   []FSMWidthRow
}

// RunFSMWidth regenerates the counter-width ablation on Skylake-size
// tables with symmetric Saturating(w, w) counters.
func RunFSMWidth(cfg FSMWidthConfig) FSMWidthResult {
	cfg = cfg.withDefaults()
	res := FSMWidthResult{Config: cfg}
	for _, w := range cfg.Widths {
		res.Rows = append(res.Rows, runFSMWidthOne(cfg, w))
	}
	return res
}

func runFSMWidthOne(cfg FSMWidthConfig, w int) FSMWidthRow {
	row := FSMWidthRow{Width: w, SearchCandidates: -1, ErrorRate: 0.5}
	m := uarch.Skylake()
	m.Name = fmt.Sprintf("Skylake-%dbitFSM", w)
	m.BPU.FSM = fsm.Saturating(fmt.Sprintf("sym-%d", w), w, w, w-1)

	r := rng.New(cfg.Seed + uint64(w)*7919 + 28)
	sys := sched.NewSystem(m, r.Uint64())
	secret := r.Bits(cfg.Bits)
	victim := sys.Spawn("sender", victims.LoopingSecretArraySender(secret, 0))
	defer victim.Kill()
	noiseThread := sys.Spawn("noise", noise.Process(r.Uint64(), noise.DefaultRegion, 1<<22))
	defer noiseThread.Kill()
	spy := sys.NewProcess("spy")

	// The generalized (per-state dictionary) session: deep strong
	// states are unusable on wide counters, so the SN-only standard
	// session would fail where this one adapts. Count the candidates
	// consumed by retrying with growing budgets.
	var ms *core.MultiSession
	var err error
	budgets := []int{50, 450, 3500}
	tried := 0
	for _, b := range budgets {
		ms, err = core.NewMultiSession(spy, r.Split(), core.MultiConfig{
			Targets:       []uint64{victims.SecretBranchAddr},
			MaxCandidates: b,
			AllowST:       w <= 2, // deep taken states are ambiguous beyond 2-bit
		})
		tried += b
		if err == nil {
			break
		}
	}
	if err != nil {
		return row
	}
	row.SearchCandidates = tried
	row.PrimedState = ms.Targets()[0].Primed

	budget := m.NoiseIsolatedBranches
	got := make([]bool, len(secret))
	for i := range secret {
		ms.Prime()
		noiseThread.Step(budget / 2)
		victim.StepBranches(1)
		noiseThread.Step(budget - budget/2)
		got[i] = ms.ProbeAll()[0]
	}
	row.ErrorRate = stats.ErrorRate(got, secret)
	return row
}

// String implements fmt.Stringer.
func (r FSMWidthResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Counter-width ablation (§10.2 FSM changes): covert error by counter depth")
	fmt.Fprintln(&b, "(Skylake tables, isolated noise, generalized per-state dictionaries)")
	for _, row := range r.Rows {
		if row.SearchCandidates < 0 {
			fmt.Fprintf(&b, "  %d state(s)/side: no usable block found — channel closed at this width\n", row.Width)
			continue
		}
		fmt.Fprintf(&b, "  %d state(s)/side: error %7s  (primed %v, <=%d candidates searched)\n",
			row.Width, stats.Percent(row.ErrorRate), row.PrimedState, row.SearchCandidates)
	}
	return b.String()
}
