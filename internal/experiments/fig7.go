package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/cpu"
	"branchscope/internal/engine"
	"branchscope/internal/rng"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
)

// aliasStride is the empirically discovered collision distance (see
// core.GenerateFocusedBlock): addr and addr+aliasStride share a PHT entry
// but live on different icache lines, so the timing experiments can set
// up predictor state without warming the measured instruction.
const aliasStride = uint64(1) << 30

// primeVia drives the PHT entry of target into the strong state for dir
// using an aliased branch, leaving target's own icache line untouched.
func primeVia(hw *cpu.Context, target uint64, dir bool, times int) {
	hw.BranchRepeat(target+aliasStride, dir, times)
}

// Fig7Config parameterizes the §8 branch latency characterization:
// rdtscp-measured latency of a single branch instruction under the four
// (direction × prediction) combinations, warm-code only (the paper
// executes each instance twice and records the second execution).
type Fig7Config struct {
	// Samples per case (the paper collects 100 000).
	Samples int
	Model   uarch.Model
	Seed    uint64
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Samples == 0 {
		c.Samples = 100000
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickFig7Config returns a test-scale configuration.
func QuickFig7Config() Fig7Config { return Fig7Config{Samples: 4000} }

// Fig7Case is one latency population.
type Fig7Case struct {
	Taken   bool
	Miss    bool
	Summary stats.Summary
}

// Label renders the case the way the figure legends do.
func (c Fig7Case) Label() string {
	dir := "not-taken"
	if c.Taken {
		dir = "taken"
	}
	kind := "hit"
	if c.Miss {
		kind = "miss"
	}
	return dir + " " + kind
}

// Fig7Result holds the four populations.
type Fig7Result struct {
	Config Fig7Config
	Cases  []Fig7Case
}

// RunFig7 regenerates Figure 7.
func RunFig7(ctx context.Context, cfg Fig7Config) (Fig7Result, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 7)
	core := cfg.Model.NewCore(r.Uint64())
	hw := core.NewContext(1)

	res := Fig7Result{Config: cfg}
	const base = 0x5100_0000
	addr := uint64(base)
	for _, taken := range []bool{false, true} {
		for _, miss := range []bool{false, true} {
			// Streaming moments instead of buffering cfg.Samples
			// latencies: at the paper's 100k samples/case the hot loop
			// carries a fixed-size accumulator instead of an 800 KB slice.
			var lat stats.Welford
			for i := 0; i < cfg.Samples; i++ {
				if i%4096 == 0 {
					if err := ctx.Err(); err != nil {
						return Fig7Result{}, fmt.Errorf("experiments: fig7: %w", err)
					}
				}
				addr += 64 // fresh icache line and PHT entry per sample
				prime := taken
				if miss {
					prime = !taken
				}
				primeVia(hw, addr, prime, 4)
				rb := hw.ResolveBranch(addr)
				// First execution warms the instruction (not recorded).
				rb.Execute(taken)
				t0 := hw.ReadTSC()
				rb.Execute(taken)
				lat.Add(float64(hw.ReadTSC() - t0))
			}
			res.Cases = append(res.Cases, Fig7Case{
				Taken: taken, Miss: miss, Summary: lat.Summary(),
			})
		}
	}
	return res, nil
}

// Case returns the population for a direction/prediction pair.
func (r Fig7Result) Case(taken, miss bool) Fig7Case {
	for _, c := range r.Cases {
		if c.Taken == taken && c.Miss == miss {
			return c
		}
	}
	return Fig7Case{}
}

// String renders the mean latencies of the four cases.
func (r Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: latency (cycles) of a branch instruction, %d samples/case (%s)\n",
		r.Config.Samples, r.Config.Model.Name)
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-16s avg %6.1f  (min %4.0f, max %4.0f, stddev %4.1f)\n",
			c.Label(), c.Summary.Mean, c.Summary.Min, c.Summary.Max, c.Summary.StdDev)
	}
	nt := r.Case(false, true).Summary.Mean - r.Case(false, false).Summary.Mean
	tk := r.Case(true, true).Summary.Mean - r.Case(true, false).Summary.Mean
	fmt.Fprintf(&b, "misprediction slowdown: %.1f cycles (not-taken), %.1f cycles (taken)\n", nt, tk)
	return b.String()
}

// Rows implements engine.Result: one row per latency population.
func (r Fig7Result) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Cases))
	for _, c := range r.Cases {
		rows = append(rows, engine.Row{
			engine.F("case", c.Label()),
			engine.F("taken", c.Taken),
			engine.F("miss", c.Miss),
			engine.F("mean", c.Summary.Mean),
			engine.F("min", c.Summary.Min),
			engine.F("max", c.Summary.Max),
			engine.F("stddev", c.Summary.StdDev),
		})
	}
	return rows
}
