package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/rng"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
)

// Fig9Config parameterizes the §8 state-distinguishability study: the
// latency of the two probing branch executions (first and second
// measurement) as a function of the primed PHT state, for both probe
// flavours. The figure shows that all four states can be told apart by
// timing alone.
type Fig9Config struct {
	// Samples per (state, probe) cell.
	Samples int
	// Model defaults to Haswell: its textbook counter exhibits the
	// four-state pattern set the figure annotates (WT probed NN shows
	// MH; on the Skylake FSM that cell reads MM per Table 1 footnote 1).
	Model uarch.Model
	Seed  uint64
}

func (c Fig9Config) withDefaults() Fig9Config {
	if c.Samples == 0 {
		c.Samples = 20000
	}
	if c.Model.Name == "" {
		c.Model = uarch.Haswell()
	}
	return c
}

// QuickFig9Config returns a test-scale configuration.
func QuickFig9Config() Fig9Config { return Fig9Config{Samples: 2500} }

// Fig9Cell is one bar pair of the figure.
type Fig9Cell struct {
	State      core.StateClass
	ProbeTaken bool
	// Expected is the pattern Table 1 predicts for this state/probe.
	Expected core.Pattern
	First    stats.Summary
	Second   stats.Summary
}

// Fig9Result holds all eight cells.
type Fig9Result struct {
	Config Fig9Config
	Cells  []Fig9Cell
}

// fig9Prime returns the outcome sequence that drives a fresh PHT entry
// into the given state on a textbook counter (fresh = WN).
func fig9Prime(s core.StateClass) []bool {
	switch s {
	case core.StateST:
		return []bool{true, true, true}
	case core.StateWT:
		return []bool{true}
	case core.StateWN:
		return nil
	case core.StateSN:
		return []bool{false, false, false}
	}
	panic("experiments: fig9Prime needs a concrete FSM state")
}

// fig9Expected is the Table 1 dictionary for a textbook counter.
func fig9Expected(s core.StateClass, probeTaken bool) core.Pattern {
	if probeTaken {
		switch s {
		case core.StateST, core.StateWT:
			return core.PatternHH
		case core.StateWN:
			return core.PatternMH
		default:
			return core.PatternMM
		}
	}
	switch s {
	case core.StateST:
		return core.PatternMM
	case core.StateWT:
		return core.PatternMH
	default:
		return core.PatternHH
	}
}

// RunFig9 regenerates Figure 9.
func RunFig9(ctx context.Context, cfg Fig9Config) (Fig9Result, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 9)
	cpuCore := cfg.Model.NewCore(r.Uint64())
	hw := cpuCore.NewContext(1)
	res := Fig9Result{Config: cfg}
	addr := uint64(0x5300_0000)
	states := []core.StateClass{core.StateST, core.StateWT, core.StateWN, core.StateSN}
	for _, probeTaken := range []bool{false, true} {
		for _, st := range states {
			// Streaming moments (see fig7.go): two fixed-size
			// accumulators replace two cfg.Samples-long buffers. The
			// prime sequence is fixed per cell, so it is built once.
			primeSeq := fig9Prime(st)
			var first, second stats.Welford
			for i := 0; i < cfg.Samples; i++ {
				if i%4096 == 0 {
					if err := ctx.Err(); err != nil {
						return Fig9Result{}, fmt.Errorf("experiments: fig9: %w", err)
					}
				}
				addr += 64
				prime := hw.ResolveBranch(addr + aliasStride)
				for _, dir := range primeSeq {
					prime.Execute(dir)
				}
				sample := core.ProbeTSC(hw, addr, probeTaken)
				first.Add(float64(sample.First))
				second.Add(float64(sample.Second))
			}
			res.Cells = append(res.Cells, Fig9Cell{
				State:      st,
				ProbeTaken: probeTaken,
				Expected:   fig9Expected(st, probeTaken),
				First:      first.Summary(),
				Second:     second.Summary(),
			})
		}
	}
	return res, nil
}

// Rows implements engine.Result: one row per (state, probe) cell.
func (r Fig9Result) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, engine.Row{
			engine.F("state", c.State.String()),
			engine.F("probe_taken", c.ProbeTaken),
			engine.F("expected_pattern", string(c.Expected)),
			engine.F("first_mean", c.First.Mean),
			engine.F("first_stddev", c.First.StdDev),
			engine.F("second_mean", c.Second.Mean),
			engine.F("second_stddev", c.Second.StdDev),
		})
	}
	return rows
}

// String renders both probe-flavour panels.
func (r Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: probe latency by primed PHT state, %d samples/cell (%s)\n",
		r.Config.Samples, r.Config.Model.Name)
	for _, probeTaken := range []bool{false, true} {
		label := "two not-taken branches"
		if probeTaken {
			label = "two taken branches"
		}
		fmt.Fprintf(&b, "probe with %s:\n", label)
		for _, c := range r.Cells {
			if c.ProbeTaken != probeTaken {
				continue
			}
			fmt.Fprintf(&b, "  %s(%s): 1st %6.1f ± %5.1f   2nd %6.1f ± %5.1f\n",
				c.State, c.Expected,
				c.First.Mean, c.First.StdDev,
				c.Second.Mean, c.Second.StdDev)
		}
	}
	return b.String()
}
