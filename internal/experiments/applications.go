package experiments

import (
	"context"
	"fmt"
	"math/big"
	"strings"

	"branchscope/internal/attacks"
	"branchscope/internal/engine"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// This file wraps the §9.2 attack applications and the §11 baseline
// comparison as experiments.

// MontgomeryConfig parameterizes the exponent-recovery experiment.
type MontgomeryConfig struct {
	// ExponentBits is the secret exponent size (a 512-bit exponent by
	// default; the ladder leaks one bit per iteration).
	ExponentBits int
	// Majority is the number of traces voted per bit.
	Majority int
	Model    uarch.Model
	Seed     uint64
}

func (c MontgomeryConfig) withDefaults() MontgomeryConfig {
	if c.ExponentBits == 0 {
		c.ExponentBits = 512
	}
	if c.Majority == 0 {
		c.Majority = 1
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickMontgomeryConfig returns a test-scale configuration.
func QuickMontgomeryConfig() MontgomeryConfig { return MontgomeryConfig{ExponentBits: 128} }

// MontgomeryExpResult reports the experiment.
type MontgomeryExpResult struct {
	Config MontgomeryConfig
	Result attacks.MontgomeryResult
	Exact  bool // every bit recovered, exponent reconstructed exactly
}

// RunMontgomery regenerates the Montgomery-ladder attack experiment.
func RunMontgomery(ctx context.Context, cfg MontgomeryConfig) (MontgomeryExpResult, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return MontgomeryExpResult{}, fmt.Errorf("experiments: montgomery: %w", err)
	}
	r := rng.New(cfg.Seed + 12)
	exp := new(big.Int).SetBit(big.NewInt(0), cfg.ExponentBits-1, 1)
	for i := 0; i < cfg.ExponentBits-1; i++ {
		if r.Bool() {
			exp.SetBit(exp, i, 1)
		}
	}
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	res, err := attacks.RecoverMontgomeryExponent(sys, exp, cfg.Majority, r.Uint64())
	if err != nil {
		return MontgomeryExpResult{}, fmt.Errorf("experiments: montgomery attack setup: %w", err)
	}
	return MontgomeryExpResult{
		Config: cfg,
		Result: res,
		Exact:  res.Recovered.Cmp(exp) == 0,
	}, nil
}

// String implements fmt.Stringer.
func (r MontgomeryExpResult) String() string {
	exact := "exponent reconstructed exactly"
	if !r.Exact {
		exact = "exponent reconstruction incomplete"
	}
	return fmt.Sprintf("Montgomery ladder attack (%d-bit exponent, %s):\n  %s; %s\n",
		r.Config.ExponentBits, r.Config.Model.Name, r.Result, exact)
}

// Rows implements engine.Result.
func (r MontgomeryExpResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("model", r.Config.Model.Name),
		engine.F("exponent_bits", r.Config.ExponentBits),
		engine.F("majority", r.Config.Majority),
		engine.F("bit_errors", r.Result.BitErrors),
		engine.F("exact", r.Exact),
	}}
}

// JPEGConfig parameterizes the IDCT structure-recovery experiment.
type JPEGConfig struct {
	// Blocks is the number of 8×8 coefficient blocks decoded.
	Blocks int
	Model  uarch.Model
	Seed   uint64
}

func (c JPEGConfig) withDefaults() JPEGConfig {
	if c.Blocks == 0 {
		c.Blocks = 24
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickJPEGConfig returns a test-scale configuration.
func QuickJPEGConfig() JPEGConfig { return JPEGConfig{Blocks: 6} }

// JPEGExpResult reports the experiment: the per-branch-session recovery
// and the §6.3 single-episode multi-branch variant.
type JPEGExpResult struct {
	Config JPEGConfig
	Result attacks.JPEGResult
	// Multi is the same recovery using one MultiSession over all 16
	// check branches — sixteen directions per randomization-block run.
	Multi attacks.JPEGResult
}

// RunJPEG regenerates the libjpeg attack experiment on synthetic blocks
// with sparse AC energy (typical of compressed natural images), with both
// the per-branch and the single-episode multi-branch spy.
func RunJPEG(ctx context.Context, cfg JPEGConfig) (JPEGExpResult, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 13)
	blocks := make([]victims.Block, cfg.Blocks)
	for i := range blocks {
		blocks[i][0][0] = int32(r.Intn(200) - 100)
		for k, n := 0, r.Intn(5); k < n; k++ {
			blocks[i][r.Intn(8)][r.Intn(8)] = int32(r.Intn(40) - 20)
		}
	}
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	res, err := attacks.RecoverJPEGStructure(sys, blocks, r.Uint64())
	if err != nil {
		return JPEGExpResult{}, fmt.Errorf("experiments: jpeg attack setup: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return JPEGExpResult{}, fmt.Errorf("experiments: jpeg: %w", err)
	}
	sys2 := sched.NewSystem(cfg.Model, r.Uint64())
	allowST := cfg.Model.BPU.FSM.States == 4 // ST decode is ambiguous on the Skylake FSM
	multi, err := attacks.RecoverJPEGStructureMulti(sys2, blocks, allowST, r.Uint64())
	if err != nil {
		return JPEGExpResult{}, fmt.Errorf("experiments: jpeg multi attack setup: %w", err)
	}
	return JPEGExpResult{Config: cfg, Result: res, Multi: multi}, nil
}

// String implements fmt.Stringer.
func (r JPEGExpResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "libjpeg IDCT attack (%d blocks, %s):\n", r.Config.Blocks, r.Config.Model.Name)
	fmt.Fprintf(&b, "  per-branch sessions:      %s\n", r.Result)
	fmt.Fprintf(&b, "  single-episode multi-spy: %s\n", r.Multi)
	n := 3
	if len(r.Result.Recovered) < n {
		n = len(r.Result.Recovered)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  block %d recovered structure: %s\n", i, r.Result.Recovered[i])
	}
	return b.String()
}

// Rows implements engine.Result.
func (r JPEGExpResult) Rows() []engine.Row {
	return []engine.Row{
		{
			engine.F("spy", "per-branch"),
			engine.F("model", r.Config.Model.Name),
			engine.F("blocks", r.Config.Blocks),
			engine.F("branch_errors", r.Result.BranchErrors),
			engine.F("branches", r.Result.Branches),
			engine.F("error_rate", r.Result.ErrorRate()),
		},
		{
			engine.F("spy", "multi"),
			engine.F("model", r.Config.Model.Name),
			engine.F("blocks", r.Config.Blocks),
			engine.F("branch_errors", r.Multi.BranchErrors),
			engine.F("branches", r.Multi.Branches),
			engine.F("error_rate", r.Multi.ErrorRate()),
		},
	}
}

// ASLRConfig parameterizes the derandomization experiment.
type ASLRConfig struct {
	// Slides is the size of the candidate slide space.
	Slides int
	// Reps is the per-candidate majority vote count.
	Reps  int
	Model uarch.Model
	Seed  uint64
}

func (c ASLRConfig) withDefaults() ASLRConfig {
	if c.Slides == 0 {
		c.Slides = 128
	}
	if c.Reps == 0 {
		c.Reps = 7
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickASLRConfig returns a test-scale configuration.
func QuickASLRConfig() ASLRConfig { return ASLRConfig{Slides: 32, Reps: 5} }

// ASLRExpResult reports the experiment.
type ASLRExpResult struct {
	Config ASLRConfig
	// SingleBranch is the collision class found scanning one branch
	// offset; Multi is the final result after the carry-coupled
	// multi-offset intersection.
	SingleBranch attacks.ASLRResult
	Multi        attacks.ASLRResult
	TrueSlide    uint64
	Pinpointed   bool
}

// RunASLR regenerates the derandomization experiment: a page-aligned
// slide is drawn from the candidate space and recovered by collision
// scanning, first with one branch (narrowing to the PHT-index class),
// then with four branch offsets whose carries disambiguate the class.
func RunASLR(ctx context.Context, cfg ASLRConfig) (ASLRExpResult, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return ASLRExpResult{}, fmt.Errorf("experiments: aslr: %w", err)
	}
	r := rng.New(cfg.Seed + 14)
	const base = 0x0055_4000_0000
	offsets := []uint64{0x6d0, 0xc9a0, 0x8b30, 0x47c0}
	secret := uint64(r.Intn(cfg.Slides))
	slide := base + secret<<12

	sys := sched.NewSystem(cfg.Model, r.Uint64())
	th := sys.Spawn("victim", victims.MultiBranchASLRProcess(slide, offsets))
	defer th.Kill()

	var slides, singleCands []uint64
	for i := 0; i < cfg.Slides; i++ {
		s := base + uint64(i)<<12
		slides = append(slides, s)
		singleCands = append(singleCands, s+offsets[0])
	}
	single := attacks.DerandomizeASLR(sys, th, singleCands, len(offsets), cfg.Reps, r.Uint64())
	if err := ctx.Err(); err != nil {
		return ASLRExpResult{}, fmt.Errorf("experiments: aslr: %w", err)
	}
	multi := attacks.DerandomizeASLRMulti(sys, th, slides, offsets, cfg.Reps, r.Uint64())
	return ASLRExpResult{
		Config:       cfg,
		SingleBranch: single,
		Multi:        multi,
		TrueSlide:    slide,
		Pinpointed:   multi.Found == slide,
	}, nil
}

// String implements fmt.Stringer.
func (r ASLRExpResult) String() string {
	status := "slide pinpointed exactly"
	if !r.Pinpointed {
		status = fmt.Sprintf("slide NOT pinpointed (found %#x, true %#x)", r.Multi.Found, r.TrueSlide)
	}
	return fmt.Sprintf("ASLR derandomization (%d candidate slides, %s):\n"+
		"  single-branch scan: %d-candidate collision class\n"+
		"  multi-offset scan:  %d survivor(s); %s\n",
		r.Config.Slides, r.Config.Model.Name,
		len(r.SingleBranch.Collisions), len(r.Multi.Collisions), status)
}

// Rows implements engine.Result.
func (r ASLRExpResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("model", r.Config.Model.Name),
		engine.F("candidate_slides", r.Config.Slides),
		engine.F("single_branch_collisions", len(r.SingleBranch.Collisions)),
		engine.F("multi_offset_survivors", len(r.Multi.Collisions)),
		engine.F("pinpointed", r.Pinpointed),
	}}
}

// BTBBaselineConfig parameterizes the prior-work comparison.
type BTBBaselineConfig struct {
	Bits  int
	Model uarch.Model
	Seed  uint64
}

func (c BTBBaselineConfig) withDefaults() BTBBaselineConfig {
	if c.Bits == 0 {
		c.Bits = 4000
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickBTBBaselineConfig returns a test-scale configuration.
func QuickBTBBaselineConfig() BTBBaselineConfig { return BTBBaselineConfig{Bits: 600} }

// BTBBaselineResult compares the channels.
type BTBBaselineResult struct {
	Config BTBBaselineConfig
	// Error rates for: the BTB eviction attack, the BTB attack under a
	// flush-on-context-switch defense, BranchScope, and BranchScope
	// under the same BTB defense.
	BTBError            float64
	BTBUnderFlush       float64
	BranchScope         float64
	BranchScopeUnderBTB float64
}

// RunBTBBaseline regenerates the §11 comparison: BranchScope versus the
// BTB eviction channel, with and without a BTB-flush defense.
func RunBTBBaseline(ctx context.Context, cfg BTBBaselineConfig) (BTBBaselineResult, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 15)
	res := BTBBaselineResult{Config: cfg}

	runBTB := func(flush bool) (float64, error) {
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		secret := r.Bits(cfg.Bits)
		victim := sys.Spawn("victim", victims.LoopingSecretArraySender(secret, 0))
		defer victim.Kill()
		spy := attacks.NewBTBSpy(sys.NewProcess("spy"), victims.SecretBranchAddr,
			cfg.Model.BPU.BTBEntries, 1200)
		spy.FlushDefense = flush
		got := make([]bool, len(secret))
		for i := range secret {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, fmt.Errorf("experiments: btb baseline: %w", err)
				}
			}
			got[i] = spy.SpyBit(victim)
		}
		return stats.ErrorRate(got, secret), nil
	}
	var err error
	if res.BTBError, err = runBTB(false); err != nil {
		return BTBBaselineResult{}, err
	}
	if res.BTBUnderFlush, err = runBTB(true); err != nil {
		return BTBBaselineResult{}, err
	}

	runBS := func(flush bool) (float64, error) {
		c, err := RunCovert(ctx, CovertConfig{
			Model: cfg.Model, Setting: Isolated, Pattern: RandomBits,
			Bits: cfg.Bits, Runs: 1, Seed: r.Uint64(),
			Prepare: func(sys *sched.System) {
				if flush {
					// Model the flush defense as a periodic kernel task:
					// flush whenever the noise process is scheduled. For
					// BranchScope the BTB contents are irrelevant either
					// way; flushing throughout demonstrates exactly that.
					sys.Core().BPU().FlushBTB()
				}
			},
		})
		if err != nil {
			return 0, fmt.Errorf("btb baseline: %w", err)
		}
		return c.ErrorRate, nil
	}
	if res.BranchScope, err = runBS(false); err != nil {
		return BTBBaselineResult{}, err
	}
	if res.BranchScopeUnderBTB, err = runBS(true); err != nil {
		return BTBBaselineResult{}, err
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r BTBBaselineResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Baseline comparison (%d bits, %s):\n", r.Config.Bits, r.Config.Model.Name)
	fmt.Fprintf(&b, "  %-38s %8s\n", "BTB eviction attack (prior work)", stats.Percent(r.BTBError))
	fmt.Fprintf(&b, "  %-38s %8s\n", "BTB attack + BTB-flush defense", stats.Percent(r.BTBUnderFlush))
	fmt.Fprintf(&b, "  %-38s %8s\n", "BranchScope", stats.Percent(r.BranchScope))
	fmt.Fprintf(&b, "  %-38s %8s\n", "BranchScope + BTB-flush defense", stats.Percent(r.BranchScopeUnderBTB))
	return b.String()
}

// Rows implements engine.Result: one row per channel × defense cell.
func (r BTBBaselineResult) Rows() []engine.Row {
	cell := func(channel string, flush bool, rate float64) engine.Row {
		return engine.Row{
			engine.F("channel", channel),
			engine.F("btb_flush_defense", flush),
			engine.F("error_rate", rate),
		}
	}
	return []engine.Row{
		cell("btb-eviction", false, r.BTBError),
		cell("btb-eviction", true, r.BTBUnderFlush),
		cell("branchscope", false, r.BranchScope),
		cell("branchscope", true, r.BranchScopeUnderBTB),
	}
}
