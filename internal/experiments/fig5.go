package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/leakage"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

// Fig5Config parameterizes the §6.3 PHT reverse engineering: decode the
// PHT state behind a contiguous virtual-address range, then recover the
// PHT size from the periodicity of the state vector via the normalized
// Hamming statistic H(w)/w (Equations 1–4).
type Fig5Config struct {
	// Model is the CPU whose PHT is mapped (the paper's measurement was
	// on its experimental machine with a 16384-entry PHT).
	Model uarch.Model
	// Start is the first probed address (the paper probes from
	// 0x300000). It should be 64 KiB aligned so the probing window is
	// homogeneous.
	Start uint64
	// Addresses is the number of contiguous addresses probed (the paper
	// uses 2^16). It must be at least twice the PHT size for the window
	// statistic to resolve.
	Addresses int
	// BlockBranches sizes the setup randomization block.
	BlockBranches int
	// Pairs is the number of random subvector pairs per window size
	// (the paper uses 100 permutations).
	Pairs int
	// FineWindow scans Window±FineWindow around the best power of two
	// in steps of FineStep, reproducing Figure 5b's zoomed curve.
	FineWindow int
	FineStep   int
	// Prepare, when non-nil, runs against the fresh system before the
	// mapping starts (cmd/phtmap installs its self-clocked chaos
	// injector here; mitigation studies could configure the BPU).
	Prepare func(*sched.System)
	Seed    uint64
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	if c.Start == 0 {
		c.Start = 0x300000
	}
	if c.Addresses == 0 {
		c.Addresses = 4 * c.Model.BPU.PHTSize
	}
	if c.BlockBranches == 0 {
		c.BlockBranches = 4000
	}
	if c.Pairs == 0 {
		c.Pairs = 100
	}
	if c.FineWindow == 0 {
		c.FineWindow = 80
	}
	if c.FineStep == 0 {
		c.FineStep = 10
	}
	return c
}

// QuickFig5Config returns a test-scale configuration (Sandy Bridge's
// 4096-entry PHT keeps the map small).
func QuickFig5Config() Fig5Config {
	return Fig5Config{Model: uarch.SandyBridge(), BlockBranches: 3000, Pairs: 60}
}

// Fig5Result reports the mapping and discovery outcome.
type Fig5Result struct {
	Config Fig5Config
	// SampleStates is the decoded state of the first 32 addresses
	// (Figure 5a's flavour of per-address states).
	SampleStates []core.StateClass
	// Scan is the H(w)/w curve over the scanned windows (Figure 5b).
	Scan []core.SizeScan
	// DiscoveredSize is the recovered PHT size.
	DiscoveredSize int
	// TrueSize is the configured PHT size (ground truth).
	TrueSize int
	// AlignedRows holds the first few states of each discovered-period
	// row (Figure 5c: "items in each row map to the same PHT entries;
	// the repeated pattern can be clearly observed").
	AlignedRows [][]core.StateClass
	// AlignmentMatch is the fraction of positions at which all aligned
	// rows agree — near 1 when the discovered period is right.
	AlignmentMatch float64
}

// RunFig5 regenerates Figure 5.
func RunFig5(ctx context.Context, cfg Fig5Config) (Fig5Result, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 5)
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	if cfg.Prepare != nil {
		cfg.Prepare(sys)
	}
	spy := sys.NewProcess("spy")
	mapper := core.NewMapper(sys.Core(), spy, r.Split())
	states := mapper.MapStates(cfg.Start, cfg.Addresses, cfg.BlockBranches)
	// The post-mapping PHT holds the decoded probing window's state —
	// exactly what Figure 5a visualizes — so publish it for the
	// /introspect/pht endpoint and cmd/phtmap's -introspect-out export.
	leakage.PublishIntrospection(sys.Core().BPU().Introspect())
	if err := ctx.Err(); err != nil {
		return Fig5Result{}, fmt.Errorf("experiments: fig5: %w", err)
	}

	// Coarse scan over powers of two, then a fine scan around the best
	// (Figure 5b zooms into 16300–16450).
	size, scan := core.DiscoverPHTSize(states, nil, cfg.Pairs, r.Split())
	var fine []int
	for w := size - cfg.FineWindow; w <= size+cfg.FineWindow; w += cfg.FineStep {
		if w >= 2 && w <= len(states)/2 && w != size {
			fine = append(fine, w)
		}
	}
	_, fineScan := core.DiscoverPHTSize(states, fine, cfg.Pairs, r.Split())
	scan = append(scan, fineScan...)

	res := Fig5Result{
		Config:         cfg,
		Scan:           scan,
		DiscoveredSize: size,
		TrueSize:       cfg.Model.BPU.PHTSize,
	}
	n := 32
	if len(states) < n {
		n = len(states)
	}
	res.SampleStates = states[:n]

	// Figure 5c: align the state vector at the discovered period and
	// compare rows position-by-position.
	rows := len(states) / size
	if rows > 4 {
		rows = 4
	}
	rowLen := 48
	if rowLen > size {
		rowLen = size
	}
	for row := 0; row < rows; row++ {
		res.AlignedRows = append(res.AlignedRows, states[row*size:row*size+rowLen])
	}
	if rows > 1 {
		agree := 0
		for pos := 0; pos < size; pos++ {
			same := true
			for row := 1; row < rows; row++ {
				if states[row*size+pos] != states[pos] {
					same = false
					break
				}
			}
			if same {
				agree++
			}
		}
		res.AlignmentMatch = float64(agree) / float64(size)
	}
	return res, nil
}

// Rows implements engine.Result: one "scan" row per probed window plus
// one "summary" row with the discovery outcome.
func (r Fig5Result) Rows() []engine.Row {
	var rows []engine.Row
	for _, s := range r.Scan {
		rows = append(rows, engine.Row{
			engine.F("kind", "scan"),
			engine.F("window", s.Window),
			engine.F("hamming_ratio", s.Ratio),
		})
	}
	rows = append(rows, engine.Row{
		engine.F("kind", "summary"),
		engine.F("model", r.Config.Model.Name),
		engine.F("discovered_size", r.DiscoveredSize),
		engine.F("true_size", r.TrueSize),
		engine.F("alignment_match", r.AlignmentMatch),
	})
	return rows
}

// String renders the discovery summary and curve extract.
func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: PHT probing and size discovery (%s)\n", r.Config.Model.Name)
	fmt.Fprintf(&b, "first %d decoded per-address states (%#x..):\n ", len(r.SampleStates), r.Config.Start)
	for _, s := range r.SampleStates {
		fmt.Fprintf(&b, " %s", s)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-10s %s\n", "window", "H(w)/w")
	for _, s := range r.Scan {
		fmt.Fprintf(&b, "%-10d %.4f\n", s.Window, s.Ratio)
	}
	fmt.Fprintf(&b, "discovered PHT size: %d (true: %d, paper: 16384 on Skylake)\n",
		r.DiscoveredSize, r.TrueSize)
	if len(r.AlignedRows) > 1 {
		fmt.Fprintf(&b, "aligned rows (period %d; Figure 5c):\n", r.DiscoveredSize)
		for i, row := range r.AlignedRows {
			fmt.Fprintf(&b, "  +%2d*N:", i)
			for _, s := range row {
				fmt.Fprintf(&b, " %s", s)
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "rows agree at %.1f%% of entry positions\n", 100*r.AlignmentMatch)
	}
	return b.String()
}
