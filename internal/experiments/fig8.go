package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/cpu"
	"branchscope/internal/engine"
	"branchscope/internal/rng"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
)

// Fig8Config parameterizes the §8 timing-detection reliability study:
// how often does a correctly predicted branch measure *slower* than a
// mispredicted one (H > M), for the first execution (cold code) and the
// second (warm), as a function of how many measurements are averaged.
type Fig8Config struct {
	// MaxMeasurements is the largest averaging window (the paper scans
	// 1..19).
	MaxMeasurements int
	// Trials is the number of H/M comparisons per point.
	Trials int
	Model  uarch.Model
	Seed   uint64
}

func (c Fig8Config) withDefaults() Fig8Config {
	if c.MaxMeasurements == 0 {
		c.MaxMeasurements = 19
	}
	if c.Trials == 0 {
		c.Trials = 2000
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickFig8Config returns a test-scale configuration.
func QuickFig8Config() Fig8Config {
	return Fig8Config{MaxMeasurements: 11, Trials: 400}
}

// Fig8Point is one x-position of the figure.
type Fig8Point struct {
	Measurements int
	// ErrorFirst is the error rate using first-execution latencies
	// (cold instruction fetch), ErrorSecond using second executions.
	ErrorFirst  float64
	ErrorSecond float64
}

// Fig8Result holds the two curves.
type Fig8Result struct {
	Config Fig8Config
	Points []Fig8Point
}

// episode measures one hit pair and one miss pair at fresh addresses,
// returning (H1, H2, M1, M2).
func fig8Episode(hw *cpu.Context, addr *uint64) (h1, h2, m1, m2 uint64) {
	// Hit pair: primed to the actual direction, both executions
	// predicted; the first runs from a cold instruction line.
	*addr += 64
	primeVia(hw, *addr, true, 4)
	t0 := hw.ReadTSC()
	hw.Branch(*addr, true)
	t1 := hw.ReadTSC()
	hw.Branch(*addr, true)
	t2 := hw.ReadTSC()
	h1, h2 = t1-t0, t2-t1

	// Miss pair: primed opposite; both executions mispredict (SN needs
	// two taken outcomes before the prediction flips).
	*addr += 64
	primeVia(hw, *addr, false, 4)
	t0 = hw.ReadTSC()
	hw.Branch(*addr, true)
	t1 = hw.ReadTSC()
	hw.Branch(*addr, true)
	t2 = hw.ReadTSC()
	m1, m2 = t1-t0, t2-t1
	return h1, h2, m1, m2
}

// RunFig8 regenerates Figure 8.
func RunFig8(ctx context.Context, cfg Fig8Config) (Fig8Result, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 8)
	core := cfg.Model.NewCore(r.Uint64())
	hw := core.NewContext(1)
	res := Fig8Result{Config: cfg}
	addr := uint64(0x5200_0000)
	for m := 1; m <= cfg.MaxMeasurements; m += 2 { // the paper plots odd counts 1,3,...,19
		errFirst, errSecond := 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			if trial%512 == 0 {
				if err := ctx.Err(); err != nil {
					return Fig8Result{}, fmt.Errorf("experiments: fig8: %w", err)
				}
			}
			var h1s, h2s, m1s, m2s []uint64
			for k := 0; k < m; k++ {
				h1, h2, m1, m2 := fig8Episode(hw, &addr)
				h1s, h2s = append(h1s, h1), append(h2s, h2)
				m1s, m2s = append(m1s, m1), append(m2s, m2)
			}
			if stats.MeanUint64(h1s) >= stats.MeanUint64(m1s) {
				errFirst++
			}
			if stats.MeanUint64(h2s) >= stats.MeanUint64(m2s) {
				errSecond++
			}
		}
		res.Points = append(res.Points, Fig8Point{
			Measurements: m,
			ErrorFirst:   float64(errFirst) / float64(cfg.Trials),
			ErrorSecond:  float64(errSecond) / float64(cfg.Trials),
		})
	}
	return res, nil
}

// Rows implements engine.Result: one row per averaging-window size.
func (r Fig8Result) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, engine.Row{
			engine.F("measurements", p.Measurements),
			engine.F("error_first", p.ErrorFirst),
			engine.F("error_second", p.ErrorSecond),
		})
	}
	return rows
}

// String renders the two error curves.
func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: branch event detection error vs number of RDTSCP measurements (%s)\n",
		r.Config.Model.Name)
	fmt.Fprintf(&b, "%-14s %14s %14s\n", "measurements", "1st execution", "2nd execution")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-14d %13.1f%% %13.1f%%\n",
			p.Measurements, 100*p.ErrorFirst, 100*p.ErrorSecond)
	}
	return b.String()
}
