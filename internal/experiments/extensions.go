package experiments

import (
	"fmt"
	"math/big"
	"strings"

	"branchscope/internal/attacks"
	"branchscope/internal/bpu"
	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/detect"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// This file holds the extension experiments that go beyond the paper's
// measured artifacts but implement ideas the paper raises: the §10.1
// if-conversion software mitigation, the §1 branch-poisoning primitive,
// and the §10.2 attack-footprint detector.

// IfConversionConfig parameterizes the software-mitigation study: the
// Montgomery exponent-recovery attack is run against the normal ladder
// and against the if-converted (cswap/cmov) ladder.
type IfConversionConfig struct {
	ExponentBits int
	Model        uarch.Model
	Seed         uint64
}

func (c IfConversionConfig) withDefaults() IfConversionConfig {
	if c.ExponentBits == 0 {
		c.ExponentBits = 256
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickIfConversionConfig returns a test-scale configuration.
func QuickIfConversionConfig() IfConversionConfig {
	return IfConversionConfig{ExponentBits: 96}
}

// IfConversionResult compares recovery error against both ladders.
type IfConversionResult struct {
	Config IfConversionConfig
	// BranchyError is the bit recovery error against the normal ladder;
	// BranchlessError against the if-converted one (0.5 = no signal).
	BranchyError    float64
	BranchlessError float64
}

// RunIfConversion regenerates the software-mitigation study.
func RunIfConversion(cfg IfConversionConfig) IfConversionResult {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 16)
	exp := new(big.Int).SetBit(big.NewInt(0), cfg.ExponentBits-1, 1)
	for i := 0; i < cfg.ExponentBits-1; i++ {
		if r.Bool() {
			exp.SetBit(exp, i, 1)
		}
	}
	truth := victims.ExponentBits(exp)
	base := big.NewInt(0x10001)
	modulus := new(big.Int).Lsh(big.NewInt(1), 127)
	modulus.Sub(modulus, big.NewInt(1))

	res := IfConversionResult{Config: cfg}

	// Against the normal ladder: the standard attack.
	{
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		mres, err := attacks.RecoverMontgomeryExponent(sys, exp, 1, r.Uint64())
		if err != nil {
			panic(fmt.Sprintf("experiments: if-conversion baseline setup failed: %v", err))
		}
		res.BranchyError = mres.ErrorRate()
	}

	// Against the if-converted ladder: the victim executes no
	// conditional branches, so the attacker cannot even step it by
	// branches; it falls back to stepping by the instruction budget of
	// one ladder iteration and probing as usual. Every probe sees only
	// its own primed state.
	{
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		victim := sys.Spawn("ladder-ifconv",
			victims.BranchlessMontgomeryProcess(base, exp, modulus, nil))
		defer victim.Kill()
		spy := sys.NewProcess("spy")
		sess, err := core.NewSession(spy, r.Split(), core.AttackConfig{
			Search: core.SearchConfig{TargetAddr: victims.LadderBranchAddr, Focused: true},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: if-conversion attack setup failed: %v", err))
		}
		const iterationInstructions = 810 // ~2*mulModCost + cswap overhead
		got := make([]bool, len(truth))
		for i := range truth {
			sess.Prime()
			victim.Step(iterationInstructions)
			got[i] = core.DecodeBit(sess.Probe())
		}
		res.BranchlessError = stats.ErrorRate(got, truth)
	}
	return res
}

// String implements fmt.Stringer.
func (r IfConversionResult) String() string {
	return fmt.Sprintf(
		"Software mitigation (§10.1 if-conversion), %d-bit exponent, %s:\n"+
			"  normal Montgomery ladder     %8s bit recovery error\n"+
			"  if-converted (cswap) ladder  %8s bit recovery error (0.5 = no leak)\n",
		r.Config.ExponentBits, r.Config.Model.Name,
		stats.Percent(r.BranchyError), stats.Percent(r.BranchlessError))
}

// PoisoningConfig parameterizes the branch-poisoning study (§1): the
// attacker forces a victim's well-predicted branch to mispredict on
// demand — the directional-predictor half of a Spectre-style setup.
type PoisoningConfig struct {
	Rounds int
	Model  uarch.Model
	Seed   uint64
}

func (c PoisoningConfig) withDefaults() PoisoningConfig {
	if c.Rounds == 0 {
		c.Rounds = 400
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickPoisoningConfig returns a test-scale configuration.
func QuickPoisoningConfig() PoisoningConfig { return PoisoningConfig{Rounds: 120} }

// PoisoningResult reports victim misprediction rates.
type PoisoningResult struct {
	Config PoisoningConfig
	// BaselineMissRate is the victim's branch misprediction rate left
	// alone; PoisonedMissRate with the attacker priming against it, and
	// AlignedMissRate with the attacker priming along it.
	BaselineMissRate float64
	PoisonedMissRate float64
	AlignedMissRate  float64
}

// RunPoisoning regenerates the poisoning study.
func RunPoisoning(cfg PoisoningConfig) PoisoningResult {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 17)
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	const addr = 0x0047_1100
	victim := sys.Spawn("victim", func(ctx *cpu.Context) {
		for {
			ctx.Work(4)
			ctx.Branch(addr, true)
		}
	})
	defer victim.Kill()
	spy := sys.NewProcess("spy")
	p, err := attacks.NewPoisoner(spy, r.Split(), addr)
	if err != nil {
		panic(fmt.Sprintf("experiments: poisoner setup failed: %v", err))
	}

	rate := func(poison func()) float64 {
		before := victim.Context().ReadPMC(cpu.BranchMisses)
		for i := 0; i < cfg.Rounds; i++ {
			if poison != nil {
				poison()
			}
			victim.StepBranches(1)
		}
		return float64(victim.Context().ReadPMC(cpu.BranchMisses)-before) / float64(cfg.Rounds)
	}

	res := PoisoningResult{Config: cfg}
	victim.StepBranches(10) // warm the victim's branch
	res.BaselineMissRate = rate(nil)
	res.PoisonedMissRate = rate(func() { p.Poison(false) })
	res.AlignedMissRate = rate(func() { p.Poison(true) })
	return res
}

// String implements fmt.Stringer.
func (r PoisoningResult) String() string {
	return fmt.Sprintf(
		"Branch poisoning (§1 / Spectre connection), %d rounds, %s:\n"+
			"  victim branch miss rate, undisturbed      %8s\n"+
			"  poisoned against the victim's direction   %8s\n"+
			"  poisoned along the victim's direction     %8s\n",
		r.Config.Rounds, r.Config.Model.Name,
		stats.Percent(r.BaselineMissRate),
		stats.Percent(r.PoisonedMissRate),
		stats.Percent(r.AlignedMissRate))
}

// DetectionConfig parameterizes the §10.2 footprint-detector study.
type DetectionConfig struct {
	// Bits transmitted by the monitored attacker.
	Bits  int
	Model uarch.Model
	Seed  uint64
}

func (c DetectionConfig) withDefaults() DetectionConfig {
	if c.Bits == 0 {
		c.Bits = 400
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickDetectionConfig returns a test-scale configuration.
func QuickDetectionConfig() DetectionConfig { return DetectionConfig{Bits: 120} }

// DetectionRow is one monitored workload.
type DetectionRow struct {
	Workload   string
	Detected   bool
	Alerts     int
	Windows    uint64
	Suspicious uint64
}

// DetectionResult reports the detector against the attacker and a set of
// benign workloads.
type DetectionResult struct {
	Config DetectionConfig
	Rows   []DetectionRow
}

// RunDetection regenerates the detector study: the allocation-churn
// monitor watches (a) a full BranchScope spy, (b) a modular
// exponentiation service, (c) a JPEG decoder, and (d) a dense
// random-branch process (the documented false-positive case).
func RunDetection(cfg DetectionConfig) DetectionResult {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 18)
	res := DetectionResult{Config: cfg}
	add := func(name string, m *detect.Monitor) {
		w, s := m.Stats()
		res.Rows = append(res.Rows, DetectionRow{
			Workload: name, Detected: m.Detected(), Alerts: m.Alerts(),
			Windows: w, Suspicious: s,
		})
	}

	{ // The attacker.
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		secret := r.Bits(cfg.Bits)
		victim := sys.Spawn("victim", victims.LoopingSecretArraySender(secret, 0))
		spy := sys.NewProcess("spy")
		mon := detect.Attach(spy, detect.Config{})
		sess, err := core.NewSession(spy, r.Split(), core.AttackConfig{
			Search: core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: detection setup failed: %v", err))
		}
		for range secret {
			sess.SpyBit(victim, nil, nil)
		}
		victim.Kill()
		add("BranchScope spy", mon)
	}
	{ // Benign: modular exponentiation service.
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		ctx := sys.NewProcess("modexp")
		mon := detect.Attach(ctx, detect.Config{})
		for i := 0; i < 12; i++ {
			exp := new(big.Int).SetUint64(r.Uint64() | 1<<63)
			victims.MontgomeryLadder(ctx, big.NewInt(3), exp, big.NewInt(1000003))
		}
		add("modexp service (benign)", mon)
	}
	{ // Benign: JPEG decoder.
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		ctx := sys.NewProcess("decoder")
		mon := detect.Attach(ctx, detect.Config{})
		var b victims.Block
		b[0][0] = 44
		b[2][6] = -3
		for i := 0; i < 150; i++ {
			victims.IDCT(ctx, &b)
		}
		add("jpeg decoder (benign)", mon)
	}
	{ // The documented limitation: dense random branches.
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		ctx := sys.NewProcess("fuzzer")
		mon := detect.Attach(ctx, detect.Config{})
		for i := 0; i < 4000; i++ {
			ctx.Branch(0x9000+r.Uint64n(1<<16), r.Bool())
		}
		add("dense random branches (false positive)", mon)
	}
	return res
}

// String implements fmt.Stringer.
func (r DetectionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Attack-footprint detection (§10.2), allocation-churn monitor (%s):\n",
		r.Config.Model.Name)
	for _, row := range r.Rows {
		verdict := "clean"
		if row.Detected {
			verdict = fmt.Sprintf("DETECTED (%d alerts)", row.Alerts)
		}
		fmt.Fprintf(&b, "  %-40s %-22s %d/%d suspicious windows\n",
			row.Workload, verdict, row.Suspicious, row.Windows)
	}
	return b.String()
}

// SlidingWindowConfig parameterizes the §9.2 "limited information"
// experiment: skeleton recovery against a sliding-window exponentiation.
type SlidingWindowConfig struct {
	ExponentBits int
	Traces       int
	Model        uarch.Model
	Seed         uint64
}

func (c SlidingWindowConfig) withDefaults() SlidingWindowConfig {
	if c.ExponentBits == 0 {
		c.ExponentBits = 512
	}
	if c.Traces == 0 {
		c.Traces = 3
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickSlidingWindowConfig returns a test-scale configuration.
func QuickSlidingWindowConfig() SlidingWindowConfig {
	return SlidingWindowConfig{ExponentBits: 128}
}

// SlidingWindowExpResult reports the experiment.
type SlidingWindowExpResult struct {
	Config SlidingWindowConfig
	Result attacks.SlidingWindowResult
}

// RunSlidingWindow regenerates the sliding-window skeleton recovery: the
// key-bit dependence is indirect (window scan), yet BranchScope's branch
// directions combined with classic step timing pin a large fraction of
// the key — the partial leakage §9.2 describes for modern libraries.
func RunSlidingWindow(cfg SlidingWindowConfig) SlidingWindowExpResult {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 20)
	exp := new(big.Int).SetBit(big.NewInt(0), cfg.ExponentBits-1, 1)
	for i := 0; i < cfg.ExponentBits-1; i++ {
		if r.Bool() {
			exp.SetBit(exp, i, 1)
		}
	}
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	const unitCycles = 400 // one modular multiplication; calibrated offline
	res, err := attacks.RecoverSlidingWindowSkeleton(sys, exp, unitCycles, cfg.Traces, r.Uint64())
	if err != nil {
		panic(fmt.Sprintf("experiments: sliding-window setup failed: %v", err))
	}
	return SlidingWindowExpResult{Config: cfg, Result: res}
}

// String implements fmt.Stringer.
func (r SlidingWindowExpResult) String() string {
	return fmt.Sprintf(
		"Sliding-window exponentiation (§9.2 partial leakage), %d-bit key, %s:\n  %s\n",
		r.Config.ExponentBits, r.Config.Model.Name, r.Result)
}

// PredictorAblationConfig parameterizes the predictor-organization
// ablation: §5 argues the attack hinges on forcing the 1-level
// (PC-indexed) predictor; measuring the channel against pure-bimodal,
// hybrid, and pure-gshare units isolates that dependence.
type PredictorAblationConfig struct {
	Bits int
	Runs int
	Seed uint64
}

func (c PredictorAblationConfig) withDefaults() PredictorAblationConfig {
	if c.Bits == 0 {
		c.Bits = 4000
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	return c
}

// QuickPredictorAblationConfig returns a test-scale configuration.
func QuickPredictorAblationConfig() PredictorAblationConfig {
	return PredictorAblationConfig{Bits: 800, Runs: 1}
}

// PredictorAblationRow is one BPU organization's result.
type PredictorAblationRow struct {
	Mode        bpu.Mode
	ErrorRate   float64
	SetupFailed int
}

// PredictorAblationResult holds the ablation.
type PredictorAblationResult struct {
	Config PredictorAblationConfig
	Rows   []PredictorAblationRow
}

// RunPredictorAblation regenerates the ablation on the Skylake tables.
func RunPredictorAblation(cfg PredictorAblationConfig) PredictorAblationResult {
	cfg = cfg.withDefaults()
	res := PredictorAblationResult{Config: cfg}
	for i, mode := range []bpu.Mode{bpu.BimodalOnly, bpu.Hybrid, bpu.GshareOnly} {
		m := uarch.Skylake()
		m.BPU.Mode = mode
		c := RunCovert(CovertConfig{
			Model: m, Setting: Isolated, Pattern: RandomBits,
			Bits: cfg.Bits, Runs: cfg.Runs, Seed: cfg.Seed + uint64(i)*977,
		})
		res.Rows = append(res.Rows, PredictorAblationRow{
			Mode: mode, ErrorRate: c.ErrorRate, SetupFailed: c.SetupFailed,
		})
	}
	return res
}

// String implements fmt.Stringer.
func (r PredictorAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Predictor-organization ablation (§5): covert error by BPU mode")
	fmt.Fprintln(&b, "(Skylake tables, isolated, random bits; 50% = channel closed)")
	for _, row := range r.Rows {
		note := ""
		if row.SetupFailed > 0 {
			note = fmt.Sprintf("  (pre-attack search failed in %d run(s))", row.SetupFailed)
		}
		fmt.Fprintf(&b, "  %-10s %8s%s\n", row.Mode, stats.Percent(row.ErrorRate), note)
	}
	return b.String()
}

// TimingChannelConfig parameterizes the §8 end-to-end comparison: the
// covert channel run twice on the same configuration, once probing with
// the misprediction PMC and once with rdtscp timing only.
type TimingChannelConfig struct {
	Bits int
	Runs int
	Seed uint64
}

func (c TimingChannelConfig) withDefaults() TimingChannelConfig {
	if c.Bits == 0 {
		c.Bits = 4000
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	return c
}

// QuickTimingChannelConfig returns a test-scale configuration.
func QuickTimingChannelConfig() TimingChannelConfig {
	return TimingChannelConfig{Bits: 800, Runs: 1}
}

// TimingChannelResult compares the probe mechanisms.
type TimingChannelResult struct {
	Config TimingChannelConfig
	// PMCError and TSCError are the covert error rates with performance
	// counter and timestamp probing respectively.
	PMCError float64
	TSCError float64
}

// RunTimingChannel regenerates the comparison (Skylake, isolated, random
// bits).
func RunTimingChannel(cfg TimingChannelConfig) TimingChannelResult {
	cfg = cfg.withDefaults()
	base := CovertConfig{
		Model: uarch.Skylake(), Setting: Isolated, Pattern: RandomBits,
		Bits: cfg.Bits, Runs: cfg.Runs, Seed: cfg.Seed + 27,
	}
	pmc := RunCovert(base)
	base.UseTiming = true
	tsc := RunCovert(base)
	return TimingChannelResult{Config: cfg, PMCError: pmc.ErrorRate, TSCError: tsc.ErrorRate}
}

// String implements fmt.Stringer.
func (r TimingChannelResult) String() string {
	return fmt.Sprintf(
		"Probe mechanism comparison (§8), Skylake isolated, %d bits:\n"+
			"  misprediction PMC probing   %8s\n"+
			"  rdtscp timing probing       %8s  (single-shot; Fig 8's m=1 predicts ~10%%)\n",
		r.Config.Bits, stats.Percent(r.PMCError), stats.Percent(r.TSCError))
}
