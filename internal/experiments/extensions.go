package experiments

import (
	"context"
	"fmt"
	"math/big"
	"strings"

	"branchscope/internal/attacks"
	"branchscope/internal/bpu"
	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/detect"
	"branchscope/internal/engine"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// This file holds the extension experiments that go beyond the paper's
// measured artifacts but implement ideas the paper raises: the §10.1
// if-conversion software mitigation, the §1 branch-poisoning primitive,
// and the §10.2 attack-footprint detector.

// IfConversionConfig parameterizes the software-mitigation study: the
// Montgomery exponent-recovery attack is run against the normal ladder
// and against the if-converted (cswap/cmov) ladder.
type IfConversionConfig struct {
	ExponentBits int
	Model        uarch.Model
	Seed         uint64
}

func (c IfConversionConfig) withDefaults() IfConversionConfig {
	if c.ExponentBits == 0 {
		c.ExponentBits = 256
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickIfConversionConfig returns a test-scale configuration.
func QuickIfConversionConfig() IfConversionConfig {
	return IfConversionConfig{ExponentBits: 96}
}

// IfConversionResult compares recovery error against both ladders.
type IfConversionResult struct {
	Config IfConversionConfig
	// BranchyError is the bit recovery error against the normal ladder;
	// BranchlessError against the if-converted one (0.5 = no signal).
	BranchyError    float64
	BranchlessError float64
}

// RunIfConversion regenerates the software-mitigation study.
func RunIfConversion(ctx context.Context, cfg IfConversionConfig) (IfConversionResult, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 16)
	exp := new(big.Int).SetBit(big.NewInt(0), cfg.ExponentBits-1, 1)
	for i := 0; i < cfg.ExponentBits-1; i++ {
		if r.Bool() {
			exp.SetBit(exp, i, 1)
		}
	}
	truth := victims.ExponentBits(exp)
	base := big.NewInt(0x10001)
	modulus := new(big.Int).Lsh(big.NewInt(1), 127)
	modulus.Sub(modulus, big.NewInt(1))

	res := IfConversionResult{Config: cfg}

	// Against the normal ladder: the standard attack.
	{
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		mres, err := attacks.RecoverMontgomeryExponent(sys, exp, 1, r.Uint64())
		if err != nil {
			return IfConversionResult{}, fmt.Errorf("experiments: if-conversion baseline setup: %w", err)
		}
		res.BranchyError = mres.ErrorRate()
	}

	// Against the if-converted ladder: the victim executes no
	// conditional branches, so the attacker cannot even step it by
	// branches; it falls back to stepping by the instruction budget of
	// one ladder iteration and probing as usual. Every probe sees only
	// its own primed state.
	{
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		victim := sys.Spawn("ladder-ifconv",
			victims.BranchlessMontgomeryProcess(base, exp, modulus, nil))
		defer victim.Kill()
		spy := sys.NewProcess("spy")
		sess, err := core.NewSession(spy, r.Split(), core.AttackConfig{
			Search: core.SearchConfig{TargetAddr: victims.LadderBranchAddr, Focused: true},
		})
		if err != nil {
			return IfConversionResult{}, fmt.Errorf("experiments: if-conversion attack setup: %w", err)
		}
		const iterationInstructions = 810 // ~2*mulModCost + cswap overhead
		got := make([]bool, len(truth))
		for i := range truth {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					return IfConversionResult{}, fmt.Errorf("experiments: if-conversion: %w", err)
				}
			}
			sess.Prime()
			victim.Step(iterationInstructions)
			got[i] = core.DecodeBit(sess.Probe())
		}
		res.BranchlessError = stats.ErrorRate(got, truth)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r IfConversionResult) String() string {
	return fmt.Sprintf(
		"Software mitigation (§10.1 if-conversion), %d-bit exponent, %s:\n"+
			"  normal Montgomery ladder     %8s bit recovery error\n"+
			"  if-converted (cswap) ladder  %8s bit recovery error (0.5 = no leak)\n",
		r.Config.ExponentBits, r.Config.Model.Name,
		stats.Percent(r.BranchyError), stats.Percent(r.BranchlessError))
}

// Rows implements engine.Result.
func (r IfConversionResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("model", r.Config.Model.Name),
		engine.F("exponent_bits", r.Config.ExponentBits),
		engine.F("branchy_error", r.BranchyError),
		engine.F("branchless_error", r.BranchlessError),
	}}
}

// PoisoningConfig parameterizes the branch-poisoning study (§1): the
// attacker forces a victim's well-predicted branch to mispredict on
// demand — the directional-predictor half of a Spectre-style setup.
type PoisoningConfig struct {
	Rounds int
	Model  uarch.Model
	Seed   uint64
}

func (c PoisoningConfig) withDefaults() PoisoningConfig {
	if c.Rounds == 0 {
		c.Rounds = 400
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickPoisoningConfig returns a test-scale configuration.
func QuickPoisoningConfig() PoisoningConfig { return PoisoningConfig{Rounds: 120} }

// PoisoningResult reports victim misprediction rates.
type PoisoningResult struct {
	Config PoisoningConfig
	// BaselineMissRate is the victim's branch misprediction rate left
	// alone; PoisonedMissRate with the attacker priming against it, and
	// AlignedMissRate with the attacker priming along it.
	BaselineMissRate float64
	PoisonedMissRate float64
	AlignedMissRate  float64
}

// RunPoisoning regenerates the poisoning study.
func RunPoisoning(ctx context.Context, cfg PoisoningConfig) (PoisoningResult, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 17)
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	const addr = 0x0047_1100
	victim := sys.Spawn("victim", func(hw *cpu.Context) {
		for {
			hw.Work(4)
			hw.Branch(addr, true)
		}
	})
	defer victim.Kill()
	spy := sys.NewProcess("spy")
	p, err := attacks.NewPoisoner(spy, r.Split(), addr)
	if err != nil {
		return PoisoningResult{}, fmt.Errorf("experiments: poisoner setup: %w", err)
	}

	rate := func(poison func()) (float64, error) {
		before := victim.Context().ReadPMC(cpu.BranchMisses)
		for i := 0; i < cfg.Rounds; i++ {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, fmt.Errorf("experiments: poisoning: %w", err)
				}
			}
			if poison != nil {
				poison()
			}
			victim.StepBranches(1)
		}
		return float64(victim.Context().ReadPMC(cpu.BranchMisses)-before) / float64(cfg.Rounds), nil
	}

	res := PoisoningResult{Config: cfg}
	victim.StepBranches(10) // warm the victim's branch
	if res.BaselineMissRate, err = rate(nil); err != nil {
		return PoisoningResult{}, err
	}
	if res.PoisonedMissRate, err = rate(func() { p.Poison(false) }); err != nil {
		return PoisoningResult{}, err
	}
	if res.AlignedMissRate, err = rate(func() { p.Poison(true) }); err != nil {
		return PoisoningResult{}, err
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r PoisoningResult) String() string {
	return fmt.Sprintf(
		"Branch poisoning (§1 / Spectre connection), %d rounds, %s:\n"+
			"  victim branch miss rate, undisturbed      %8s\n"+
			"  poisoned against the victim's direction   %8s\n"+
			"  poisoned along the victim's direction     %8s\n",
		r.Config.Rounds, r.Config.Model.Name,
		stats.Percent(r.BaselineMissRate),
		stats.Percent(r.PoisonedMissRate),
		stats.Percent(r.AlignedMissRate))
}

// Rows implements engine.Result.
func (r PoisoningResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("model", r.Config.Model.Name),
		engine.F("rounds", r.Config.Rounds),
		engine.F("baseline_miss_rate", r.BaselineMissRate),
		engine.F("poisoned_miss_rate", r.PoisonedMissRate),
		engine.F("aligned_miss_rate", r.AlignedMissRate),
	}}
}

// DetectionConfig parameterizes the §10.2 footprint-detector study.
type DetectionConfig struct {
	// Bits transmitted by the monitored attacker.
	Bits  int
	Model uarch.Model
	Seed  uint64
}

func (c DetectionConfig) withDefaults() DetectionConfig {
	if c.Bits == 0 {
		c.Bits = 400
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickDetectionConfig returns a test-scale configuration.
func QuickDetectionConfig() DetectionConfig { return DetectionConfig{Bits: 120} }

// DetectionRow is one monitored workload.
type DetectionRow struct {
	Workload   string
	Detected   bool
	Alerts     int
	Windows    uint64
	Suspicious uint64
}

// DetectionResult reports the detector against the attacker and a set of
// benign workloads.
type DetectionResult struct {
	Config    DetectionConfig
	Workloads []DetectionRow
}

// RunDetection regenerates the detector study: the allocation-churn
// monitor watches (a) a full BranchScope spy, (b) a modular
// exponentiation service, (c) a JPEG decoder, and (d) a dense
// random-branch process (the documented false-positive case).
func RunDetection(ctx context.Context, cfg DetectionConfig) (DetectionResult, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 18)
	res := DetectionResult{Config: cfg}
	add := func(name string, m *detect.Monitor) {
		w, s := m.Stats()
		res.Workloads = append(res.Workloads, DetectionRow{
			Workload: name, Detected: m.Detected(), Alerts: m.Alerts(),
			Windows: w, Suspicious: s,
		})
	}

	{ // The attacker.
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		secret := r.Bits(cfg.Bits)
		victim := sys.Spawn("victim", victims.LoopingSecretArraySender(secret, 0))
		spy := sys.NewProcess("spy")
		mon := detect.Attach(spy, detect.Config{})
		sess, err := core.NewSession(spy, r.Split(), core.AttackConfig{
			Search: core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
		})
		if err != nil {
			return DetectionResult{}, fmt.Errorf("experiments: detection setup: %w", err)
		}
		for i := range secret {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					return DetectionResult{}, fmt.Errorf("experiments: detection: %w", err)
				}
			}
			_ = secret[i]
			sess.SpyBit(victim, nil, nil)
		}
		victim.Kill()
		add("BranchScope spy", mon)
	}
	{ // Benign: modular exponentiation service.
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		hw := sys.NewProcess("modexp")
		mon := detect.Attach(hw, detect.Config{})
		for i := 0; i < 12; i++ {
			exp := new(big.Int).SetUint64(r.Uint64() | 1<<63)
			victims.MontgomeryLadder(hw, big.NewInt(3), exp, big.NewInt(1000003))
		}
		add("modexp service (benign)", mon)
	}
	{ // Benign: JPEG decoder.
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		hw := sys.NewProcess("decoder")
		mon := detect.Attach(hw, detect.Config{})
		var b victims.Block
		b[0][0] = 44
		b[2][6] = -3
		for i := 0; i < 150; i++ {
			victims.IDCT(hw, &b)
		}
		add("jpeg decoder (benign)", mon)
	}
	{ // The documented limitation: dense random branches.
		sys := sched.NewSystem(cfg.Model, r.Uint64())
		hw := sys.NewProcess("fuzzer")
		mon := detect.Attach(hw, detect.Config{})
		for i := 0; i < 4000; i++ {
			hw.Branch(0x9000+r.Uint64n(1<<16), r.Bool())
		}
		add("dense random branches (false positive)", mon)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r DetectionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Attack-footprint detection (§10.2), allocation-churn monitor (%s):\n",
		r.Config.Model.Name)
	for _, row := range r.Workloads {
		verdict := "clean"
		if row.Detected {
			verdict = fmt.Sprintf("DETECTED (%d alerts)", row.Alerts)
		}
		fmt.Fprintf(&b, "  %-40s %-22s %d/%d suspicious windows\n",
			row.Workload, verdict, row.Suspicious, row.Windows)
	}
	return b.String()
}

// Rows implements engine.Result: one row per monitored workload.
func (r DetectionResult) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Workloads))
	for _, row := range r.Workloads {
		rows = append(rows, engine.Row{
			engine.F("workload", row.Workload),
			engine.F("detected", row.Detected),
			engine.F("alerts", row.Alerts),
			engine.F("windows", row.Windows),
			engine.F("suspicious", row.Suspicious),
		})
	}
	return rows
}

// SlidingWindowConfig parameterizes the §9.2 "limited information"
// experiment: skeleton recovery against a sliding-window exponentiation.
type SlidingWindowConfig struct {
	ExponentBits int
	Traces       int
	Model        uarch.Model
	Seed         uint64
}

func (c SlidingWindowConfig) withDefaults() SlidingWindowConfig {
	if c.ExponentBits == 0 {
		c.ExponentBits = 512
	}
	if c.Traces == 0 {
		c.Traces = 3
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickSlidingWindowConfig returns a test-scale configuration.
func QuickSlidingWindowConfig() SlidingWindowConfig {
	return SlidingWindowConfig{ExponentBits: 128}
}

// SlidingWindowExpResult reports the experiment.
type SlidingWindowExpResult struct {
	Config SlidingWindowConfig
	Result attacks.SlidingWindowResult
}

// RunSlidingWindow regenerates the sliding-window skeleton recovery: the
// key-bit dependence is indirect (window scan), yet BranchScope's branch
// directions combined with classic step timing pin a large fraction of
// the key — the partial leakage §9.2 describes for modern libraries.
func RunSlidingWindow(ctx context.Context, cfg SlidingWindowConfig) (SlidingWindowExpResult, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return SlidingWindowExpResult{}, fmt.Errorf("experiments: sliding-window: %w", err)
	}
	r := rng.New(cfg.Seed + 20)
	exp := new(big.Int).SetBit(big.NewInt(0), cfg.ExponentBits-1, 1)
	for i := 0; i < cfg.ExponentBits-1; i++ {
		if r.Bool() {
			exp.SetBit(exp, i, 1)
		}
	}
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	const unitCycles = 400 // one modular multiplication; calibrated offline
	res, err := attacks.RecoverSlidingWindowSkeleton(sys, exp, unitCycles, cfg.Traces, r.Uint64())
	if err != nil {
		return SlidingWindowExpResult{}, fmt.Errorf("experiments: sliding-window setup: %w", err)
	}
	return SlidingWindowExpResult{Config: cfg, Result: res}, nil
}

// String implements fmt.Stringer.
func (r SlidingWindowExpResult) String() string {
	return fmt.Sprintf(
		"Sliding-window exponentiation (§9.2 partial leakage), %d-bit key, %s:\n  %s\n",
		r.Config.ExponentBits, r.Config.Model.Name, r.Result)
}

// Rows implements engine.Result.
func (r SlidingWindowExpResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("model", r.Config.Model.Name),
		engine.F("exponent_bits", r.Config.ExponentBits),
		engine.F("traces", r.Config.Traces),
		engine.F("known_bits", r.Result.KnownBits),
		engine.F("wrong_bits", r.Result.WrongBits),
		engine.F("known_fraction", r.Result.KnownFraction()),
	}}
}

// PredictorAblationConfig parameterizes the predictor-organization
// ablation: §5 argues the attack hinges on forcing the 1-level
// (PC-indexed) predictor; measuring the channel against pure-bimodal,
// hybrid, and pure-gshare units isolates that dependence.
type PredictorAblationConfig struct {
	Bits int
	Runs int
	Seed uint64
}

func (c PredictorAblationConfig) withDefaults() PredictorAblationConfig {
	if c.Bits == 0 {
		c.Bits = 4000
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	return c
}

// QuickPredictorAblationConfig returns a test-scale configuration.
func QuickPredictorAblationConfig() PredictorAblationConfig {
	return PredictorAblationConfig{Bits: 800, Runs: 1}
}

// PredictorAblationRow is one BPU organization's result.
type PredictorAblationRow struct {
	Mode        bpu.Mode
	ErrorRate   float64
	SetupFailed int
}

// PredictorAblationResult holds the ablation.
type PredictorAblationResult struct {
	Config PredictorAblationConfig
	Modes  []PredictorAblationRow
}

// RunPredictorAblation regenerates the ablation on the Skylake tables.
// The three BPU organizations run as independent units on the context's
// worker pool with per-mode derived seeds.
func RunPredictorAblation(ctx context.Context, cfg PredictorAblationConfig) (PredictorAblationResult, error) {
	cfg = cfg.withDefaults()
	res := PredictorAblationResult{Config: cfg}
	modes := []bpu.Mode{bpu.BimodalOnly, bpu.Hybrid, bpu.GshareOnly}
	rows, err := engine.Map(ctx, len(modes), func(i int) (PredictorAblationRow, error) {
		m := uarch.Skylake()
		m.BPU.Mode = modes[i]
		c, err := RunCovert(ctx, CovertConfig{
			Model: m, Setting: Isolated, Pattern: RandomBits,
			Bits: cfg.Bits, Runs: cfg.Runs,
			Seed: engine.DeriveSeed(cfg.Seed, "predictors", modes[i].String()),
		})
		if err != nil {
			return PredictorAblationRow{}, fmt.Errorf("predictor ablation %s: %w", modes[i], err)
		}
		return PredictorAblationRow{
			Mode: modes[i], ErrorRate: c.ErrorRate, SetupFailed: c.SetupFailed,
		}, nil
	})
	if err != nil {
		return PredictorAblationResult{}, err
	}
	res.Modes = rows
	return res, nil
}

// String implements fmt.Stringer.
func (r PredictorAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Predictor-organization ablation (§5): covert error by BPU mode")
	fmt.Fprintln(&b, "(Skylake tables, isolated, random bits; 50% = channel closed)")
	for _, row := range r.Modes {
		note := ""
		if row.SetupFailed > 0 {
			note = fmt.Sprintf("  (pre-attack search failed in %d run(s))", row.SetupFailed)
		}
		fmt.Fprintf(&b, "  %-10s %8s%s\n", row.Mode, stats.Percent(row.ErrorRate), note)
	}
	return b.String()
}

// Rows implements engine.Result: one row per BPU organization.
func (r PredictorAblationResult) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Modes))
	for _, row := range r.Modes {
		rows = append(rows, engine.Row{
			engine.F("mode", row.Mode.String()),
			engine.F("error_rate", row.ErrorRate),
			engine.F("setup_failed", row.SetupFailed),
		})
	}
	return rows
}

// TimingChannelConfig parameterizes the §8 end-to-end comparison: the
// covert channel run twice on the same configuration, once probing with
// the misprediction PMC and once with rdtscp timing only.
type TimingChannelConfig struct {
	Bits int
	Runs int
	Seed uint64
}

func (c TimingChannelConfig) withDefaults() TimingChannelConfig {
	if c.Bits == 0 {
		c.Bits = 4000
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	return c
}

// QuickTimingChannelConfig returns a test-scale configuration.
func QuickTimingChannelConfig() TimingChannelConfig {
	return TimingChannelConfig{Bits: 800, Runs: 1}
}

// TimingChannelResult compares the probe mechanisms.
type TimingChannelResult struct {
	Config TimingChannelConfig
	// PMCError and TSCError are the covert error rates with performance
	// counter and timestamp probing respectively.
	PMCError float64
	TSCError float64
}

// RunTimingChannel regenerates the comparison (Skylake, isolated, random
// bits).
func RunTimingChannel(ctx context.Context, cfg TimingChannelConfig) (TimingChannelResult, error) {
	cfg = cfg.withDefaults()
	base := CovertConfig{
		Model: uarch.Skylake(), Setting: Isolated, Pattern: RandomBits,
		Bits: cfg.Bits, Runs: cfg.Runs, Seed: cfg.Seed + 27,
	}
	pmc, err := RunCovert(ctx, base)
	if err != nil {
		return TimingChannelResult{}, fmt.Errorf("timing channel (pmc): %w", err)
	}
	base.UseTiming = true
	tsc, err := RunCovert(ctx, base)
	if err != nil {
		return TimingChannelResult{}, fmt.Errorf("timing channel (tsc): %w", err)
	}
	return TimingChannelResult{Config: cfg, PMCError: pmc.ErrorRate, TSCError: tsc.ErrorRate}, nil
}

// String implements fmt.Stringer.
func (r TimingChannelResult) String() string {
	return fmt.Sprintf(
		"Probe mechanism comparison (§8), Skylake isolated, %d bits:\n"+
			"  misprediction PMC probing   %8s\n"+
			"  rdtscp timing probing       %8s  (single-shot; Fig 8's m=1 predicts ~10%%)\n",
		r.Config.Bits, stats.Percent(r.PMCError), stats.Percent(r.TSCError))
}

// Rows implements engine.Result.
func (r TimingChannelResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("bits", r.Config.Bits),
		engine.F("runs", r.Config.Runs),
		engine.F("pmc_error", r.PMCError),
		engine.F("tsc_error", r.TSCError),
	}}
}
