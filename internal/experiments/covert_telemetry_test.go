package experiments

import (
	"bytes"
	"context"
	"testing"

	"branchscope/internal/telemetry"
	"branchscope/internal/uarch"
)

func covertTelemetryRun(t *testing.T, seed uint64) (*telemetry.Set, CovertResult) {
	t.Helper()
	set := telemetry.New(telemetry.NewRegistry(), telemetry.NewTracer())
	cfg := CovertConfig{
		Model:     uarch.Skylake(),
		Setting:   Isolated,
		Pattern:   RandomBits,
		Bits:      40,
		Runs:      1,
		Seed:      seed,
		Telemetry: set,
	}
	res, err := RunCovert(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetupFailed != 0 {
		t.Fatalf("block search failed (%d runs)", res.SetupFailed)
	}
	return set, res
}

// TestCovertTelemetryContent checks the full instrumentation stack in
// one covert run: episode accounting, the pattern distribution, the
// per-stage cycle histograms, scheduler counters and episode spans.
func TestCovertTelemetryContent(t *testing.T) {
	set, _ := covertTelemetryRun(t, 7)
	reg := set.Metrics

	if got := reg.Counter("core.episodes").Value(); got != 40 {
		t.Errorf("core.episodes = %d, want 40", got)
	}
	var patterns uint64
	for _, p := range []string{"HH", "HM", "MH", "MM"} {
		patterns += reg.Counter("core.patterns." + p).Value()
	}
	if patterns != 40 {
		t.Errorf("pattern counters sum to %d, want 40", patterns)
	}
	for _, name := range []string{"core.cycles.prime", "core.cycles.step", "core.cycles.probe", "core.cycles.episode"} {
		if got := reg.Histogram(name, nil).Count(); got != 40 {
			t.Errorf("%s count = %d, want 40", name, got)
		}
	}
	if reg.Counter("covert.bits").Value() != 40 || reg.Counter("covert.runs").Value() != 1 {
		t.Error("covert.bits/covert.runs not recorded")
	}
	if reg.Counter("covert.simulated_cycles").Value() == 0 {
		t.Error("covert.simulated_cycles not recorded")
	}
	if reg.Counter("cpu.instructions").Value() == 0 || reg.Counter("cpu.branches").Value() == 0 {
		t.Error("cpu retire counters not recorded")
	}
	if reg.Counter("sched.steps").Value() == 0 {
		t.Error("sched.steps not recorded")
	}
	if reg.Counter("core.search.candidates").Value() == 0 {
		t.Error("block-search candidates not recorded")
	}

	episodes, quanta := 0, 0
	for _, ev := range set.Trace.Events() {
		switch {
		case ev.Phase == telemetry.PhaseComplete && ev.Name == "episode":
			episodes++
			if ev.Dur == 0 {
				t.Fatal("episode span with zero duration")
			}
		case ev.Phase == telemetry.PhaseComplete && ev.Name == "quantum":
			quanta++
		}
	}
	if episodes != 40 {
		t.Errorf("trace has %d episode spans, want 40", episodes)
	}
	if quanta == 0 {
		t.Error("trace has no scheduler quantum spans")
	}
}

// TestCovertTelemetryDeterministic pins the acceptance criterion: two
// runs with the same seed export byte-identical metrics and trace JSON.
func TestCovertTelemetryDeterministic(t *testing.T) {
	export := func() ([]byte, []byte) {
		set, _ := covertTelemetryRun(t, 3)
		var m, tr bytes.Buffer
		if err := set.Metrics.Snapshot().WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := set.Trace.WriteJSON(&tr); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), tr.Bytes()
	}
	m1, t1 := export()
	m2, t2 := export()
	if !bytes.Equal(m1, m2) {
		t.Error("metrics JSON differs across identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs across identical runs")
	}
}

// TestCovertSGXTelemetry checks the enclave counters and AEX spans.
func TestCovertSGXTelemetry(t *testing.T) {
	set := telemetry.New(telemetry.NewRegistry(), telemetry.NewTracer())
	res, err := RunCovert(context.Background(), CovertConfig{
		Model:     uarch.Skylake(),
		Setting:   Isolated,
		Pattern:   AllOnes,
		Bits:      20,
		Runs:      1,
		SGX:       true,
		Seed:      5,
		Telemetry: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SetupFailed != 0 {
		t.Fatal("setup failed")
	}
	reg := set.Metrics
	if reg.Counter("sgx.enclaves").Value() != 1 {
		t.Error("sgx.enclaves != 1")
	}
	if got := reg.Counter("sgx.single_steps").Value(); got != 20 {
		t.Errorf("sgx.single_steps = %d, want 20", got)
	}
	if reg.Counter("sgx.enclave_exits").Value() == 0 {
		t.Error("no enclave exits recorded")
	}
	aex := 0
	for _, ev := range set.Trace.Events() {
		if ev.Name == "aex+eresume" {
			aex++
		}
	}
	if aex == 0 {
		t.Error("no AEX spans in trace")
	}
}

// TestDefaultTelemetryFallback checks the process-wide set is used when
// a config carries none, and that removal restores the disabled path.
func TestDefaultTelemetryFallback(t *testing.T) {
	set := telemetry.New(telemetry.NewRegistry(), nil)
	SetDefaultTelemetry(set)
	defer SetDefaultTelemetry(nil)
	if _, err := RunCovert(context.Background(), CovertConfig{
		Model: uarch.Skylake(), Setting: Isolated, Pattern: AllZeros,
		Bits: 10, Runs: 1, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if set.Metrics.Counter("core.episodes").Value() != 10 {
		t.Error("default telemetry set not picked up")
	}
	SetDefaultTelemetry(nil)
	if DefaultTelemetry() != nil {
		t.Error("default telemetry not removed")
	}
}
