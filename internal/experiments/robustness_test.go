package experiments

import (
	"context"
	"strings"
	"testing"

	"branchscope/internal/chaos"
)

// TestRobustnessAcceptance runs the quick sweep and pins the PR's
// acceptance shape: the resilient loop recovers ≥90% of the bits it
// commits to at moderate intensity, where the naive loop measurably
// degrades, and exhausted budgets surface as Unknown instead of
// silently wrong bits.
func TestRobustnessAcceptance(t *testing.T) {
	cfg := QuickRobustnessConfig()
	res, err := RunRobustness(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(probe string, intensity float64, budget int) RobustnessCell {
		t.Helper()
		for _, c := range res.Cells {
			if c.Scenario == "" && c.Probe == probe && c.Intensity == intensity && c.Budget == budget {
				return c
			}
		}
		t.Fatalf("sweep missing cell %s/%g/%d", probe, intensity, budget)
		return RobustnessCell{}
	}
	scenario := func(name string) RobustnessCell {
		t.Helper()
		for _, c := range res.Cells {
			if c.Scenario == name {
				return c
			}
		}
		t.Fatalf("sweep missing scenario cell %q", name)
		return RobustnessCell{}
	}

	// Fault-free resilient baseline: nothing to retry away, no bit ever
	// abandoned.
	clean := cell("pmc", 0, 5)
	if clean.UnknownRate != 0 || clean.ErrorRate > 0.02 {
		t.Errorf("fault-free resilient cell degraded: %+v", clean)
	}

	naive := cell("pmc", chaos.ModerateIntensity, 0)
	resilient := cell("pmc", chaos.ModerateIntensity, 5)
	if resilient.KnownAccuracy < 0.9 {
		t.Errorf("resilient known-bit accuracy %.4f at moderate intensity, want >= 0.9",
			resilient.KnownAccuracy)
	}
	naiveAcc := 1 - naive.ErrorRate
	if naiveAcc > resilient.KnownAccuracy-0.02 {
		t.Errorf("naive accuracy %.4f not measurably below resilient known accuracy %.4f",
			naiveAcc, resilient.KnownAccuracy)
	}
	// Graceful degradation: under chaos the budget does run out on some
	// bits, and those surface as Unknown — never as confident errors
	// beyond the (small) wrong-known rate.
	if resilient.UnknownRate == 0 {
		t.Error("no Unknown bits under moderate chaos: exhaustion is being hidden")
	}
	if resilient.WrongKnownRate > naive.ErrorRate {
		t.Errorf("resilient silent-error rate %.4f exceeds the naive error rate %.4f",
			resilient.WrongKnownRate, naive.ErrorRate)
	}
	// The naive loop has no Unknown state by construction.
	for _, c := range res.Cells {
		if c.Budget == 0 && c.UnknownRate != 0 {
			t.Errorf("naive cell %s/%g reported unknown bits", c.Probe, c.Intensity)
		}
	}

	// Timing cells under TSC jitter exercise drift recalibration.
	if tsc := cell("tsc", chaos.ModerateIntensity, 5); tsc.Recalibrations < 1 {
		t.Errorf("no drift recalibration in the moderate-intensity timing cell: %+v", tsc)
	}
	if tsc := cell("tsc", 0, 5); tsc.Recalibrations != 0 {
		t.Errorf("fault-free timing cell recalibrated %d times", tsc.Recalibrations)
	}

	// The PMC saturation storm: with the health gate off the naive loop
	// rides corrupted counters to the end; with the gate armed the
	// session must trip, fall back to timing probes, and recover.
	stormOff := scenario("storm")
	stormOn := scenario("storm+degrade")
	if stormOff.Degraded != 0 {
		t.Errorf("gate-off storm cell reported %d degraded runs", stormOff.Degraded)
	}
	if stormOn.Degraded < 1 {
		t.Errorf("armed storm cell never tripped the health gate: %+v", stormOn)
	}
	if stormOn.ErrorRate >= stormOff.ErrorRate-0.05 {
		t.Errorf("degradation did not recover the storm cell: gate on %.4f vs off %.4f",
			stormOn.ErrorRate, stormOff.ErrorRate)
	}

	// The rendered table carries the summary lines the docs quote.
	s := res.String()
	if !strings.Contains(s, "resilient (budget 5) known-bit accuracy") {
		t.Errorf("summary line missing from:\n%s", s)
	}
	if !strings.Contains(s, "PMC saturation storm") || !strings.Contains(s, "tripped->tsc") {
		t.Errorf("storm mini-table missing from:\n%s", s)
	}
}
