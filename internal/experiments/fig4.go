package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// Fig4Config parameterizes the §6.2 randomization-block characterization:
// many freshly generated Listing 1 blocks are each evaluated with
// repeated (run block, probe) episodes for both probe variants; the
// dominant-pattern frequencies give the Figure 4a stability scatter and
// the decoded states give the Figure 4b distribution.
type Fig4Config struct {
	// Blocks is the number of candidate blocks characterized (the paper
	// uses 10 000).
	Blocks int
	// Reps is the number of episodes per probe variant per block (the
	// paper uses 1000).
	Reps int
	// BlockBranches is the size of each Listing 1 block. The default is
	// scaled to the simulated structures the way the paper's 100 000 is
	// scaled to real ones — large enough to usually randomize the
	// relevant state, small enough that some blocks fail interestingly.
	BlockBranches int
	// NoisePerRep is the background activity between episodes,
	// modelling the live machine the paper measured on.
	NoisePerRep int
	Model       uarch.Model
	Seed        uint64
}

func (c Fig4Config) withDefaults() Fig4Config {
	if c.Blocks == 0 {
		c.Blocks = 200
	}
	if c.Reps == 0 {
		c.Reps = 100
	}
	if c.BlockBranches == 0 {
		c.BlockBranches = 6000
	}
	if c.NoisePerRep == 0 {
		c.NoisePerRep = 90
	}
	if c.Model.Name == "" {
		c.Model = Fig4Model()
	}
	return c
}

// Fig4Model returns the scaled substrate used for the block
// characterization: predictor tables shrunk so that the default block
// exercises each PHT entry about as many times as the paper's
// 100 000-branch block exercises each of 16384 real entries (~6 direct
// updates each). Characterizing blocks against the full-size tables is
// possible but needs proportionally larger blocks (and run time); the
// distribution shape is governed by the updates-per-entry ratio.
func Fig4Model() uarch.Model {
	m := uarch.SandyBridge()
	m.Name = "SandyBridge-sim1k"
	m.BPU.PHTSize = 1024
	m.BPU.SelectorSize = 256
	m.BPU.TagEntries = 512
	m.BPU.BTBEntries = 512
	m.BPU.GHRBits = 10
	return m
}

// QuickFig4Config returns a test-scale configuration.
func QuickFig4Config() Fig4Config {
	return Fig4Config{Blocks: 50, Reps: 60, BlockBranches: 6000}
}

// Fig4Point is one block's stability measurement (one dot of Figure 4a).
type Fig4Point struct {
	FreqTT float64
	FreqNN float64
	State  core.StateClass
}

// Fig4Result aggregates the characterization.
type Fig4Result struct {
	Config Fig4Config
	Points []Fig4Point
	// Distribution is the fraction of blocks decoded to each state
	// class (Figure 4b).
	Distribution map[core.StateClass]float64
	// StableShare is the fraction of blocks with both dominant-pattern
	// frequencies >= 85% (the paper reports 83%).
	StableShare float64
}

// RunFig4 regenerates Figure 4.
func RunFig4(ctx context.Context, cfg Fig4Config) (Fig4Result, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 4)
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	spy := sys.NewProcess("spy")
	noiseThread := sys.Spawn("noise", noise.Process(r.Uint64(), noise.DefaultRegion, 1<<22))
	defer noiseThread.Kill()

	search := core.SearchConfig{
		TargetAddr:    victims.SecretBranchAddr,
		BlockBranches: cfg.BlockBranches,
		Reps:          cfg.Reps,
		OnRep:         func() { noiseThread.Step(cfg.NoisePerRep) },
	}
	res := Fig4Result{Config: cfg, Distribution: make(map[core.StateClass]float64)}
	stable := 0
	for i := 0; i < cfg.Blocks; i++ {
		if err := ctx.Err(); err != nil {
			return Fig4Result{}, fmt.Errorf("experiments: fig4: %w", err)
		}
		b := core.GenerateBlock(r, 0x6100_0000, cfg.BlockBranches)
		a := core.AnalyzeBlock(spy, b, search)
		res.Points = append(res.Points, Fig4Point{FreqTT: a.FreqTT, FreqNN: a.FreqNN, State: a.State})
		res.Distribution[a.State]++
		if a.Stable {
			stable++
		}
	}
	for k := range res.Distribution {
		res.Distribution[k] /= float64(cfg.Blocks)
	}
	res.StableShare = float64(stable) / float64(cfg.Blocks)
	return res, nil
}

// Rows implements engine.Result: one "state" row per decoded state
// class plus one "summary" row with the stability statistics.
func (r Fig4Result) Rows() []engine.Row {
	var rows []engine.Row
	for _, s := range core.AllStateClasses() {
		rows = append(rows, engine.Row{
			engine.F("kind", "state"),
			engine.F("state", s.String()),
			engine.F("share", r.Distribution[s]),
		})
	}
	var tt, nn []float64
	for _, p := range r.Points {
		tt = append(tt, p.FreqTT)
		nn = append(nn, p.FreqNN)
	}
	rows = append(rows, engine.Row{
		engine.F("kind", "summary"),
		engine.F("blocks", r.Config.Blocks),
		engine.F("stable_share", r.StableShare),
		engine.F("median_freq_tt", stats.Median(tt)),
		engine.F("median_freq_nn", stats.Median(nn)),
	})
	return rows
}

// String renders the state distribution (Figure 4b) and the stability
// share (the 4a cut-off statistic).
func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: distribution of PHT states after randomization (%d blocks, %d reps)\n",
		r.Config.Blocks, r.Config.Reps)
	for _, s := range core.AllStateClasses() {
		fmt.Fprintf(&b, "  %-8s %6.1f%%\n", s, 100*r.Distribution[s])
	}
	fmt.Fprintf(&b, "stable blocks (both probe variants >= 85%% dominant): %.1f%% (paper: 83%%)\n",
		100*r.StableShare)
	// Figure 4a in one line: where the dominance scatter sits.
	var tt, nn []float64
	for _, p := range r.Points {
		tt = append(tt, p.FreqTT)
		nn = append(nn, p.FreqNN)
	}
	fmt.Fprintf(&b, "dominant-pattern share: TT median %.0f%%, NN median %.0f%% (Figure 4a scatter)\n",
		100*stats.Median(tt), 100*stats.Median(nn))
	return b.String()
}
