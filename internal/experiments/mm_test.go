package experiments

import (
	"testing"

	"branchscope/internal/uarch"
)

func mustModel(t *testing.T, name string) uarch.Model {
	m, err := uarch.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
