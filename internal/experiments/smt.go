package experiments

import (
	"context"
	"fmt"

	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// SMT cross-hyperthread channel (§1: "BranchScope can be performed across
// hyperthreaded cores, advancing previously demonstrated BTB-based
// attacks which leaked information only between processes scheduled on
// the same virtual core. This capability relaxes the attacker's process
// scheduling constraints.") — the receiver has no branch-granular control
// over the sibling hardware context; it only lets it run for (jittery)
// instruction-counted time slices and samples the PHT around them. The
// sender self-clocks at a fixed iteration length, each bit repeated
// several times, and the receiver majority-votes its samples per bit
// slot.

// SMTConfig parameterizes the cross-hyperthread channel measurement.
type SMTConfig struct {
	// Bits transmitted per run.
	Bits int
	// Repeats is the sender's per-bit repetition count.
	Repeats int
	// Samples is how many prime–run–probe samples the receiver takes
	// per bit slot (must be <= Repeats).
	Samples int
	// SliceJitter is the maximum number of instructions by which each
	// time slice over- or under-shoots (OS timer imprecision).
	SliceJitter int
	Model       uarch.Model
	Seed        uint64
}

func (c SMTConfig) withDefaults() SMTConfig {
	if c.Bits == 0 {
		c.Bits = 4000
	}
	if c.Repeats == 0 {
		c.Repeats = 5
	}
	if c.Samples == 0 {
		c.Samples = c.Repeats
	}
	if c.SliceJitter == 0 {
		c.SliceJitter = 2
	}
	if c.Model.Name == "" {
		c.Model = uarch.Skylake()
	}
	return c
}

// QuickSMTConfig returns a test-scale configuration.
func QuickSMTConfig() SMTConfig { return SMTConfig{Bits: 600} }

// SMTResult reports the cross-hyperthread channel quality.
type SMTResult struct {
	Config    SMTConfig
	ErrorRate float64
}

// String implements fmt.Stringer.
func (r SMTResult) String() string {
	return fmt.Sprintf(
		"Cross-hyperthread covert channel (§1), %s, %d bits, %dx repetition, slice jitter ±%d instr:\n"+
			"  error rate %s (no branch-granular victim control used)\n",
		r.Config.Model.Name, r.Config.Bits, r.Config.Repeats, r.Config.SliceJitter,
		stats.Percent(r.ErrorRate))
}

// Rows implements engine.Result.
func (r SMTResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("model", r.Config.Model.Name),
		engine.F("bits", r.Config.Bits),
		engine.F("repeats", r.Config.Repeats),
		engine.F("slice_jitter", r.Config.SliceJitter),
		engine.F("error_rate", r.ErrorRate),
	}}
}

// RunSMT measures the cross-hyperthread covert channel.
func RunSMT(ctx context.Context, cfg SMTConfig) (SMTResult, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 19)
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	secret := r.Bits(cfg.Bits)
	sender := sys.Spawn("sender", victims.PacedSender(secret, 0, cfg.Repeats))
	defer sender.Kill()

	spy := sys.NewProcess("spy")
	sess, err := core.NewSession(spy, r.Split(), core.AttackConfig{
		Search: core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
	})
	if err != nil {
		return SMTResult{}, fmt.Errorf("experiments: smt setup: %w", err)
	}

	// The receiver samples per bit slot: Samples prime–slice–probe
	// rounds of nominally one sender iteration each, then idles the
	// sender through the slot's remaining iterations. Slices are
	// jittered; the receiver keeps absolute position bookkeeping
	// (instructions granted versus the ideal schedule) so jitter never
	// accumulates into phase drift — standard covert-channel framing.
	slot := cfg.Repeats * victims.PacedIteration
	got := make([]bool, len(secret))
	total := 0 // sender instructions granted so far
	for i := range secret {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return SMTResult{}, fmt.Errorf("experiments: smt: %w", err)
			}
		}
		votes := 0
		for s := 0; s < cfg.Samples; s++ {
			ideal := i*slot + (s+1)*victims.PacedIteration
			jitter := r.Intn(2*cfg.SliceJitter+1) - cfg.SliceJitter
			budget := ideal - total + jitter
			if budget < 1 {
				budget = 1
			}
			sess.Prime()
			sender.Step(budget)
			total += budget
			if core.DecodeBit(sess.Probe()) {
				votes++
			}
		}
		if rest := (i+1)*slot - total; rest > 0 {
			sender.Step(rest)
			total += rest
		}
		got[i] = votes*2 > cfg.Samples
	}
	return SMTResult{Config: cfg, ErrorRate: stats.ErrorRate(got, secret)}, nil
}
