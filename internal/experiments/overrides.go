package experiments

import (
	"context"

	"branchscope/internal/chaos"
	"branchscope/internal/core"
	"branchscope/internal/telemetry"
)

// Overrides is a per-run replacement for the process-wide defaults
// (SetDefaultChaos/SetDefaultRetry/SetDefaultTelemetry). The campaign
// service installs one on each job's context so a job runs under
// exactly its own spec's chaos plan and retry policy — never under
// another tenant's, and never under the host CLI's flags. A nil field
// means "none", not "fall back to the default": presence of the
// struct replaces the defaults entirely, which is what makes the
// isolation hard.
type Overrides struct {
	Telemetry *telemetry.Set
	Chaos     *chaos.Plan
	Retry     *core.RetryConfig
}

// overridesKey carries Overrides through contexts.
type overridesKey struct{}

// WithOverrides returns a context carrying ov. A nil ov is valid and
// clears nothing — OverridesFrom simply won't find it.
func WithOverrides(ctx context.Context, ov *Overrides) context.Context {
	if ov == nil {
		return ctx
	}
	return context.WithValue(ctx, overridesKey{}, ov)
}

// OverridesFrom extracts the overrides installed by WithOverrides, nil
// when the context carries none (the process-wide defaults apply).
func OverridesFrom(ctx context.Context) *Overrides {
	ov, _ := ctx.Value(overridesKey{}).(*Overrides)
	return ov
}
