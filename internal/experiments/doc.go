// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate. Each experiment has a Config
// with paper-scale defaults and a Quick variant for tests, and a
// Run(ctx, cfg) (Result, error) entry point: runs honor context
// cancellation at coarse checkpoints inside their hot loops, and every
// result satisfies engine.Result — a String renderer printing the same
// rows/series the paper reports plus Rows() for structured export.
//
// The registry (All, ByID, Tasks) adapts each runner to an engine.Task
// so cmd/experiments can schedule them on a bounded worker pool.
// Experiments that fan out internally (per CPU model, noise setting, or
// ablation point) derive each unit's seed from the task seed and the
// unit's labels via engine.DeriveSeed and fan out with engine.Map, so
// results are byte-identical at any parallelism level.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig2    — selection-logic learning curve (§5.1)
//	Table1  — prime/target/probe FSM transitions (§6.1)
//	Fig4    — distribution of PHT states after randomization (§6.2)
//	Fig5    — PHT mapping and size discovery (§6.3)
//	Fig6    — covert-channel decoding demonstration (§7)
//	Table2  — covert-channel error rates on three CPUs (§7)
//	Fig7    — branch latency, hit vs miss (§8)
//	Fig8    — timing detection error vs measurement count (§8)
//	Fig9    — probe latency by PHT state (§8)
//	Table3  — covert channel with an SGX-enclave sender (§9.2)
//	Mitigations — §10 defense ablation (extension)
//	Montgomery / JPEG / ASLR — §9.2 attack applications
//	BTBBaseline — prior-work BTB attack comparison (§11)
//
// Expectation calibration: shapes, orderings and crossovers are required
// to match the paper (who wins, error ordering, learning horizon, table
// size, latency separability); absolute numbers belong to the authors'
// silicon and are not reproduced.
package experiments
