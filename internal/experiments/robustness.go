package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"branchscope/internal/chaos"
	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/uarch"
)

// RobustnessConfig parameterizes the fault-intensity × retry-budget
// sweep: the recovered-accuracy curve of the resilient attack loop
// against the naive single-episode loop under deterministic chaos.
type RobustnessConfig struct {
	// Model is the simulated CPU (default SandyBridge: its 4K-entry PHT
	// makes preemption bursts bite at realistic burst sizes).
	Model uarch.Model
	// Bits transmitted per PMC cell (one run each).
	Bits int
	// Intensities are the chaos multipliers swept (see chaos.AtIntensity;
	// 0 is the fault-free baseline).
	Intensities []float64
	// Budgets are the per-bit retry budgets swept; 0 means the naive
	// SpyBit loop (no voting, no outlier rejection, no Unknown).
	Budgets []int
	// TimingBits transmitted per rdtscp cell; timing cells exercise the
	// drift-recalibration path under TSC jitter. 0 disables them.
	TimingBits int
	// Seed drives all randomness.
	Seed uint64
}

// QuickRobustnessConfig returns a test-scale configuration.
func QuickRobustnessConfig() RobustnessConfig {
	return RobustnessConfig{
		Bits:        220,
		Intensities: []float64{0, chaos.ModerateIntensity, chaos.HeavyIntensity},
		Budgets:     []int{0, 5},
		TimingBits:  140,
		Seed:        1,
	}
}

func (c RobustnessConfig) withDefaults() RobustnessConfig {
	if c.Model.Name == "" {
		c.Model = uarch.SandyBridge()
	}
	if c.Bits <= 0 {
		c.Bits = 1200
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0, chaos.LightIntensity, chaos.ModerateIntensity, chaos.HeavyIntensity}
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []int{0, 3, 7}
	}
	return c
}

// stormPMCProb is the per-episode PMC-corruption probability of the
// storm scenario: half of all probe windows read garbage, far past the
// health gate's trip threshold.
const stormPMCProb = 0.5

// RobustnessCell is one point of the sweep.
type RobustnessCell struct {
	// Scenario is "" for the intensity×budget sweep and "storm" for the
	// PMC-saturation-storm pair that exercises the health-gated
	// degradation path.
	Scenario string
	// Probe is "pmc" or "tsc" — the probe the cell was configured with;
	// a degraded storm cell starts on PMC and falls back to timing.
	Probe string
	// Intensity is the chaos multiplier of the cell's plan.
	Intensity float64
	// Budget is the per-bit attempt budget (0: naive loop).
	Budget int
	// ErrorRate is the channel error rate (unknown bits count 0.5).
	ErrorRate float64
	// UnknownRate is the fraction of bits reported Unknown.
	UnknownRate float64
	// WrongKnownRate is the fraction of all bits that were decoded
	// confidently and wrongly — the silent-error rate.
	WrongKnownRate float64
	// KnownAccuracy is correct known bits / known bits: what the
	// resilient loop recovers on the bits it commits to.
	KnownAccuracy float64
	// Recalibrations counts drift-triggered detector rebuilds (timing
	// cells only).
	Recalibrations int
	// Degraded counts runs whose health gate fell back from PMC to
	// timing probes (storm cells with the gate armed).
	Degraded int
	// MutualInformationBits and CapacityBits are the cell's channel-
	// quality estimates in bits/branch (see internal/leakage): what the
	// degraded channel still carries, which is how the mitigation
	// literature scores residual leakage.
	MutualInformationBits float64
	CapacityBits          float64
}

// RobustnessResult is the full sweep.
type RobustnessResult struct {
	Config RobustnessConfig
	Cells  []RobustnessCell
}

// budgetLabel renders a budget column value.
func budgetLabel(b int) string {
	if b <= 0 {
		return "naive"
	}
	return strconv.Itoa(b)
}

// String implements fmt.Stringer: the accuracy-vs-intensity table plus
// a recovered-accuracy summary at each intensity.
func (r RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness sweep: %s, isolated, random pattern, %d bits/pmc cell",
		r.Config.Model.Name, r.Config.Bits)
	if r.Config.TimingBits > 0 {
		fmt.Fprintf(&b, ", %d bits/tsc cell", r.Config.TimingBits)
	}
	fmt.Fprintf(&b, "\n%-5s %-9s %-7s %8s %9s %12s %10s %6s %8s %8s\n",
		"probe", "intensity", "budget", "error", "unknown", "wrong-known", "acc-known", "recal", "mi", "capacity")
	for _, c := range r.Cells {
		if c.Scenario != "" {
			continue
		}
		fmt.Fprintf(&b, "%-5s %-9.2f %-7s %7.2f%% %8.2f%% %11.2f%% %9.2f%% %6d %8.3f %8.3f\n",
			c.Probe, c.Intensity, budgetLabel(c.Budget),
			100*c.ErrorRate, 100*c.UnknownRate, 100*c.WrongKnownRate,
			100*c.KnownAccuracy, c.Recalibrations,
			c.MutualInformationBits, c.CapacityBits)
	}
	// Recovered-accuracy summary: naive vs the deepest budget, per
	// intensity, on the PMC probe.
	best := 0
	for _, bd := range r.Config.Budgets {
		if bd > best {
			best = bd
		}
	}
	for _, in := range r.Config.Intensities {
		var naive, resilient *RobustnessCell
		for i := range r.Cells {
			c := &r.Cells[i]
			if c.Probe != "pmc" || c.Intensity != in {
				continue
			}
			if c.Budget == 0 {
				naive = c
			}
			if c.Budget == best {
				resilient = c
			}
		}
		if naive == nil || resilient == nil || best == 0 {
			continue
		}
		fmt.Fprintf(&b, "intensity %.2f: naive accuracy %.2f%%, resilient (budget %d) known-bit accuracy %.2f%% with %.2f%% unknown\n",
			in, 100*(1-naive.ErrorRate), best, 100*resilient.KnownAccuracy, 100*resilient.UnknownRate)
	}
	// Storm mini-table: the same PMC probe under a saturation storm,
	// with the health gate off vs armed.
	storm := false
	for _, c := range r.Cells {
		if !strings.HasPrefix(c.Scenario, "storm") {
			continue
		}
		if !storm {
			fmt.Fprintf(&b, "PMC saturation storm (corrupt p=%.2f, naive loop):\n", stormPMCProb)
			storm = true
		}
		gate := "off"
		if c.Scenario == "storm+degrade" {
			gate = "armed"
			if c.Degraded > 0 {
				gate = "tripped->tsc"
			}
		}
		fmt.Fprintf(&b, "  health gate %-12s error %6.2f%%, degraded runs %d\n",
			gate, 100*c.ErrorRate, c.Degraded)
	}
	return b.String()
}

// Rows implements engine.Result.
func (r RobustnessResult) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, engine.Row{
			engine.F("scenario", c.Scenario),
			engine.F("probe", c.Probe),
			engine.F("intensity", c.Intensity),
			engine.F("budget", c.Budget),
			engine.F("error_rate", c.ErrorRate),
			engine.F("unknown_rate", c.UnknownRate),
			engine.F("wrong_known_rate", c.WrongKnownRate),
			engine.F("known_accuracy", c.KnownAccuracy),
			engine.F("recalibrations", c.Recalibrations),
			engine.F("degraded_runs", c.Degraded),
			engine.F("mutual_information_bits", c.MutualInformationBits),
			engine.F("capacity_bits", c.CapacityBits),
		})
	}
	return rows
}

// robustnessSpec identifies one cell of the sweep.
type robustnessSpec struct {
	scenario  string // "" for the sweep grid, "storm"/"storm+degrade"
	probe     string
	intensity float64
	budget    int
	bits      int
	degrade   bool
}

// RunRobustness sweeps fault intensity × retry budget and reports the
// recovered-accuracy curve. The PMC grid is the full cross product; the
// rdtscp rows run the naive loop and the deepest budget at every
// intensity, exercising drift detection and recalibration under TSC
// jitter. Cells fan out on the context's worker pool with
// scheduling-independent derived seeds, so output is byte-identical at
// any parallelism.
func RunRobustness(ctx context.Context, cfg RobustnessConfig) (RobustnessResult, error) {
	cfg = cfg.withDefaults()
	var specs []robustnessSpec
	for _, in := range cfg.Intensities {
		for _, bd := range cfg.Budgets {
			specs = append(specs, robustnessSpec{probe: "pmc", intensity: in, budget: bd, bits: cfg.Bits})
		}
	}
	if cfg.TimingBits > 0 {
		best := 0
		for _, bd := range cfg.Budgets {
			if bd > best {
				best = bd
			}
		}
		for _, in := range cfg.Intensities {
			for _, bd := range []int{0, best} {
				if bd == 0 && best == 0 {
					continue
				}
				specs = append(specs, robustnessSpec{probe: "tsc", intensity: in, budget: bd, bits: cfg.TimingBits})
			}
		}
	}
	// The storm pair: the naive PMC loop under a counter-saturation
	// storm, without and with the health gate. The armed cell must trip
	// the gate and recover on the timing fallback; the unarmed one rides
	// the corrupted counters to the end.
	specs = append(specs,
		robustnessSpec{scenario: "storm", probe: "pmc", budget: 0, bits: cfg.Bits},
		robustnessSpec{scenario: "storm+degrade", probe: "pmc", budget: 0, bits: cfg.Bits, degrade: true},
	)
	cells, err := engine.Map(ctx, len(specs), func(i int) (RobustnessCell, error) {
		return runRobustnessCell(ctx, cfg, specs[i])
	})
	if err != nil {
		return RobustnessResult{}, err
	}
	return RobustnessResult{Config: cfg, Cells: cells}, nil
}

// runRobustnessCell measures one sweep point through the covert-channel
// harness.
func runRobustnessCell(ctx context.Context, cfg RobustnessConfig, sp robustnessSpec) (RobustnessCell, error) {
	// The seed depends only on the cell's identity, never on sweep
	// order — the engine determinism contract. Sweep-grid cells keep
	// their historical derivation; scenario cells fold the scenario in.
	seedParts := []string{"robustness", sp.probe,
		strconv.FormatFloat(sp.intensity, 'g', -1, 64), strconv.Itoa(sp.budget)}
	if sp.scenario != "" {
		seedParts = append(seedParts, sp.scenario)
	}
	seed := engine.DeriveSeed(cfg.Seed, seedParts...)
	ccfg := CovertConfig{
		Model:     cfg.Model,
		Setting:   Isolated,
		Pattern:   RandomBits,
		Bits:      sp.bits,
		Runs:      1,
		UseTiming: sp.probe == "tsc",
		Seed:      seed,
	}
	// Every cell pins Chaos and Retry explicitly: the sweep must not
	// inherit the process-wide defaults a -chaos/-retry flag installs,
	// or its axes would be silently distorted.
	plan := chaos.AtIntensity(engine.DeriveSeed(seed, "chaos"), sp.intensity)
	if sp.scenario != "" {
		// Storm cells replace the intensity ladder with a pure PMC
		// saturation storm: nothing else is perturbed, so any error is
		// attributable to the counters alone.
		plan = chaos.Plan{
			Seed:       engine.DeriveSeed(seed, "chaos"),
			PMCCorrupt: chaos.Spec{Prob: stormPMCProb},
		}
	}
	ccfg.Chaos = &plan
	if sp.degrade {
		ccfg.Degrade = core.DegradeConfig{MaxFaultRate: core.DefaultDegradeMaxFaultRate}
	}
	if sp.budget > 0 {
		ccfg.Retry = core.RetryConfig{MaxAttempts: sp.budget}
	} else {
		// A negative budget reads as "naive" everywhere while keeping
		// the config nonzero, which is what opts out of DefaultRetry.
		ccfg.Retry = core.RetryConfig{MaxAttempts: -1}
	}
	res, err := RunCovert(ctx, ccfg)
	if err != nil {
		return RobustnessCell{}, fmt.Errorf("experiments: robustness %s i=%g b=%d: %w",
			sp.probe, sp.intensity, sp.budget, err)
	}
	cell := RobustnessCell{
		Scenario:              sp.scenario,
		Probe:                 sp.probe,
		Intensity:             sp.intensity,
		Budget:                sp.budget,
		ErrorRate:             res.ErrorRate,
		Recalibrations:        res.Recalibrations,
		Degraded:              res.DegradedRuns,
		MutualInformationBits: res.Leakage.MutualInformationBits,
		CapacityBits:          res.Leakage.CapacityBits,
	}
	bits := float64(sp.bits)
	unknown := float64(res.Unknown)
	cell.UnknownRate = unknown / bits
	// ErrorRate = (wrongKnown + 0.5*unknown) / bits, so the silent
	// wrong-bit count falls out exactly.
	wrongKnown := res.ErrorRate*bits - 0.5*unknown
	if wrongKnown < 0 {
		wrongKnown = 0
	}
	cell.WrongKnownRate = wrongKnown / bits
	if known := bits - unknown; known > 0 {
		cell.KnownAccuracy = 1 - wrongKnown/known
	}
	return cell, nil
}
