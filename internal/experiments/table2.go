package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/engine"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
)

// Table2Config parameterizes the §7 covert-channel benchmark grid: three
// CPUs × {isolated, with noise} × {all 0, all 1, random}.
type Table2Config struct {
	// Bits per run. The paper transmits 1e6 bits; the default here is
	// smaller to keep the harness fast — raise it to tighten the
	// estimates.
	Bits int
	// Runs averaged per cell (the paper uses 10).
	Runs int
	// Models defaults to the paper's three CPUs.
	Models []uarch.Model
	// Seed drives all randomness.
	Seed uint64
}

func (c Table2Config) withDefaults() Table2Config {
	if c.Bits == 0 {
		c.Bits = 20000
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	if c.Models == nil {
		c.Models = uarch.All()
	}
	return c
}

// QuickTable2Config returns a test-scale configuration.
func QuickTable2Config() Table2Config {
	return Table2Config{Bits: 1500, Runs: 2}
}

// Table2Result holds the full grid, indexed [model][setting][pattern].
type Table2Result struct {
	Config Table2Config
	Cells  []Table2Row
}

// Table2Row is one line of the paper's Table 2 (a model × setting).
type Table2Row struct {
	Model   string
	Setting Setting
	// Rates indexed by BitPattern: All 0, All 1, Random.
	Rates [3]float64
}

// RunTable2 regenerates Table 2. The grid's model × setting cells run
// as independent units on the context's worker pool (engine.WithPool);
// each cell's seed is derived from (seed, "table2", model, setting,
// pattern), so the table is identical at any parallelism level.
func RunTable2(ctx context.Context, cfg Table2Config) (Table2Result, error) {
	cfg = cfg.withDefaults()
	res := Table2Result{Config: cfg}
	type unit struct {
		model   uarch.Model
		setting Setting
	}
	var units []unit
	for _, m := range cfg.Models {
		for _, setting := range []Setting{Isolated, Noisy} {
			units = append(units, unit{m, setting})
		}
	}
	cells, err := engine.Map(ctx, len(units), func(i int) (Table2Row, error) {
		u := units[i]
		row := Table2Row{Model: u.model.Name, Setting: u.setting}
		for _, pat := range []BitPattern{AllZeros, AllOnes, RandomBits} {
			c, err := RunCovert(ctx, CovertConfig{
				Model: u.model, Setting: u.setting, Pattern: pat,
				Bits: cfg.Bits, Runs: cfg.Runs,
				Seed: engine.DeriveSeed(cfg.Seed, "table2", u.model.Name, u.setting.String(), pat.String()),
			})
			if err != nil {
				return Table2Row{}, fmt.Errorf("table2 %s %s %s: %w", u.model.Name, u.setting, pat, err)
			}
			row.Rates[pat] = c.ErrorRate
		}
		return row, nil
	})
	if err != nil {
		return Table2Result{}, err
	}
	res.Cells = cells
	return res, nil
}

// String renders the grid in the paper's layout.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: average error rate for transmitting bits using BranchScope\n")
	fmt.Fprintf(&b, "(%d bits/run, %d runs per cell)\n", r.Config.Bits, r.Config.Runs)
	fmt.Fprintf(&b, "%-26s %8s %8s %8s\n", "", "All 0", "All 1", "Random")
	for _, row := range r.Cells {
		fmt.Fprintf(&b, "%-26s %8s %8s %8s\n",
			fmt.Sprintf("%s %s", row.Model, row.Setting),
			stats.Percent(row.Rates[AllZeros]),
			stats.Percent(row.Rates[AllOnes]),
			stats.Percent(row.Rates[RandomBits]))
	}
	return b.String()
}

// rowJSON flattens one Table2Row-shaped line into an export row.
func (row Table2Row) rowJSON() engine.Row {
	return engine.Row{
		engine.F("model", row.Model),
		engine.F("setting", row.Setting.String()),
		engine.F("all_zeros", row.Rates[AllZeros]),
		engine.F("all_ones", row.Rates[AllOnes]),
		engine.F("random", row.Rates[RandomBits]),
	}
}

// Rows implements engine.Result.
func (r Table2Result) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Cells))
	for _, row := range r.Cells {
		rows = append(rows, row.rowJSON())
	}
	return rows
}
