package experiments

import (
	"fmt"
	"strings"

	"branchscope/internal/stats"
	"branchscope/internal/uarch"
)

// Table2Config parameterizes the §7 covert-channel benchmark grid: three
// CPUs × {isolated, with noise} × {all 0, all 1, random}.
type Table2Config struct {
	// Bits per run. The paper transmits 1e6 bits; the default here is
	// smaller to keep the harness fast — raise it to tighten the
	// estimates.
	Bits int
	// Runs averaged per cell (the paper uses 10).
	Runs int
	// Models defaults to the paper's three CPUs.
	Models []uarch.Model
	// Seed drives all randomness.
	Seed uint64
}

func (c Table2Config) withDefaults() Table2Config {
	if c.Bits == 0 {
		c.Bits = 20000
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	if c.Models == nil {
		c.Models = uarch.All()
	}
	return c
}

// QuickTable2Config returns a test-scale configuration.
func QuickTable2Config() Table2Config {
	return Table2Config{Bits: 1500, Runs: 2}
}

// Table2Result holds the full grid, indexed [model][setting][pattern].
type Table2Result struct {
	Config Table2Config
	Cells  []Table2Row
}

// Table2Row is one line of the paper's Table 2 (a model × setting).
type Table2Row struct {
	Model   string
	Setting Setting
	// Rates indexed by BitPattern: All 0, All 1, Random.
	Rates [3]float64
}

// RunTable2 regenerates Table 2.
func RunTable2(cfg Table2Config) Table2Result {
	cfg = cfg.withDefaults()
	res := Table2Result{Config: cfg}
	seed := cfg.Seed
	for _, m := range cfg.Models {
		for _, setting := range []Setting{Isolated, Noisy} {
			row := Table2Row{Model: m.Name, Setting: setting}
			for _, pat := range []BitPattern{AllZeros, AllOnes, RandomBits} {
				seed++
				c := RunCovert(CovertConfig{
					Model: m, Setting: setting, Pattern: pat,
					Bits: cfg.Bits, Runs: cfg.Runs, Seed: seed,
				})
				row.Rates[pat] = c.ErrorRate
			}
			res.Cells = append(res.Cells, row)
		}
	}
	return res
}

// String renders the grid in the paper's layout.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: average error rate for transmitting bits using BranchScope\n")
	fmt.Fprintf(&b, "(%d bits/run, %d runs per cell)\n", r.Config.Bits, r.Config.Runs)
	fmt.Fprintf(&b, "%-26s %8s %8s %8s\n", "", "All 0", "All 1", "Random")
	for _, row := range r.Cells {
		fmt.Fprintf(&b, "%-26s %8s %8s %8s\n",
			fmt.Sprintf("%s %s", row.Model, row.Setting),
			stats.Percent(row.Rates[AllZeros]),
			stats.Percent(row.Rates[AllOnes]),
			stats.Percent(row.Rates[RandomBits]))
	}
	return b.String()
}
