package experiments

import (
	"context"
	"strings"
	"testing"

	"branchscope/internal/bpu"
	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/uarch"
)

func TestFig2Shape(t *testing.T) {
	cfg := QuickFig2Config()
	cfg.Seed = 2
	r, err := RunFig2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(r.Series))
	}
	for _, s := range r.Series {
		// First iteration: near-random (the paper sees ~5/10 misses).
		if s.MeanMisses[0] < 3.5 {
			t.Errorf("%s: first iteration misses %.2f, expected near 5", s.Model, s.MeanMisses[0])
		}
		// Learned by iterations 5-7 per the paper; allow 4-8 in the model.
		h := s.LearningHorizon()
		if h < 4 || h > 8 {
			t.Errorf("%s: learning horizon %d, want 4..8 (paper: 5-7)", s.Model, h)
		}
		// Late iterations: essentially perfect.
		for i := 12; i < len(s.MeanMisses); i++ {
			if s.MeanMisses[i] > 0.3 {
				t.Errorf("%s: iteration %d still misses %.2f", s.Model, i+1, s.MeanMisses[i])
			}
		}
	}
	if !strings.Contains(r.String(), "Figure 2") {
		t.Error("String missing header")
	}
}

func TestTable1AllModelsMatchPaper(t *testing.T) {
	for _, m := range uarch.All() {
		res, err := RunTable1(context.Background(), m, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !res.MatchesPaper() {
			t.Errorf("%s does not match the paper:\n%s", m.Name, res)
		}
	}
}

func TestTable1SkylakeFootnote(t *testing.T) {
	// The TTT/N/NN row is the Skylake peculiarity: MM there, MH on the
	// textbook parts.
	sl, err := RunTable1(context.Background(), uarch.Skylake(), 1)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := RunTable1(context.Background(), uarch.Haswell(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Entries[3].Observation != core.PatternMM {
		t.Errorf("Skylake TTT/N/NN = %s, want MM", sl.Entries[3].Observation)
	}
	if hw.Entries[3].Observation != core.PatternMH {
		t.Errorf("Haswell TTT/N/NN = %s, want MH", hw.Entries[3].Observation)
	}
}

func TestFig4Distribution(t *testing.T) {
	cfg := QuickFig4Config()
	cfg.Seed = 3
	r, err := RunFig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StableShare < 0.55 || r.StableShare > 0.99 {
		t.Errorf("stable share %.2f outside plausible band (paper: 0.83)", r.StableShare)
	}
	strong := r.Distribution[core.StateST] + r.Distribution[core.StateSN]
	weak := r.Distribution[core.StateWT] + r.Distribution[core.StateWN]
	if strong <= weak {
		t.Errorf("strong states (%.2f) not dominant over weak (%.2f)", strong, weak)
	}
	if r.Distribution[core.StateUnknown] == 0 {
		t.Error("no unknown blocks at all; system noise not reflected")
	}
	if len(r.Points) != cfg.Blocks {
		t.Errorf("points = %d, want %d", len(r.Points), cfg.Blocks)
	}
}

func TestFig5DiscoversTrueSize(t *testing.T) {
	cfg := QuickFig5Config()
	cfg.Seed = 5
	r, err := RunFig5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DiscoveredSize != r.TrueSize {
		t.Errorf("discovered %d, true %d", r.DiscoveredSize, r.TrueSize)
	}
	// The ratio at the true size must be far below the off-period
	// ratios (Figure 5b's sharp minimum).
	var atSize, offSize float64
	offN := 0
	for _, s := range r.Scan {
		if s.Window == r.TrueSize {
			atSize = s.Ratio
		} else if s.Window%r.TrueSize != 0 {
			offSize += s.Ratio
			offN++
		}
	}
	if offN == 0 || atSize > 0.2*(offSize/float64(offN)) {
		t.Errorf("minimum not sharp: ratio %.3f at true size vs %.3f mean elsewhere",
			atSize, offSize/float64(offN))
	}
}

func TestFig6Demonstration(t *testing.T) {
	r, err := RunFig6(context.Background(), Fig6Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decoded) != len(r.Original) || len(r.Patterns) != len(r.Original) {
		t.Fatal("transcript length mismatch")
	}
	if r.Errors > len(r.Original)/2 {
		t.Errorf("demo errors %d/%d: channel not working", r.Errors, len(r.Original))
	}
	out := r.String()
	for _, want := range []string{"Original", "Decoded", "Spy dictionary"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q", want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := QuickTable2Config()
	cfg.Seed = 22
	r, err := RunTable2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells = %d, want 6 rows", len(r.Cells))
	}
	byKey := map[string]Table2Row{}
	for _, row := range r.Cells {
		byKey[row.Model+"/"+row.Setting.String()] = row
		for _, rate := range row.Rates {
			if rate > 0.12 {
				t.Errorf("%s %s: error %.2f%% implausibly high", row.Model, row.Setting, 100*rate)
			}
		}
	}
	// Ordering: Sandy Bridge worse than Skylake and Haswell (smaller
	// predictor tables, §7), noisy worse than isolated per model.
	mean := func(r Table2Row) float64 { return (r.Rates[0] + r.Rates[1] + r.Rates[2]) / 3 }
	if mean(byKey["SandyBridge/with noise"]) <= mean(byKey["Skylake/with noise"]) {
		t.Error("SandyBridge not worse than Skylake in the noisy setting")
	}
	if mean(byKey["SandyBridge/with noise"]) <= mean(byKey["Haswell/with noise"]) {
		t.Error("SandyBridge not worse than Haswell in the noisy setting")
	}
	for _, m := range []string{"Skylake", "Haswell", "SandyBridge"} {
		if mean(byKey[m+"/with noise"]) < mean(byKey[m+"/isolated"]) {
			t.Errorf("%s: noisy better than isolated", m)
		}
	}
}

func TestFig7Separation(t *testing.T) {
	cfg := QuickFig7Config()
	cfg.Seed = 77
	r, err := RunFig7(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, taken := range []bool{false, true} {
		hit := r.Case(taken, false).Summary.Mean
		miss := r.Case(taken, true).Summary.Mean
		delta := miss - hit
		if delta < 40 || delta > 70 {
			t.Errorf("taken=%v: miss-hit separation %.1f cycles, want ~54", taken, delta)
		}
	}
}

func TestFig8ErrorShrinksWithAveraging(t *testing.T) {
	cfg := QuickFig8Config()
	cfg.Seed = 88
	r, err := RunFig8(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := r.Points[0]
	last := r.Points[len(r.Points)-1]
	// The paper: 1st measurement 20-30% error, 2nd ~10%, both falling
	// with averaging; 2nd approaches 0 around 10 measurements.
	if first.ErrorFirst < 0.12 || first.ErrorFirst > 0.45 {
		t.Errorf("single 1st-execution error %.2f outside the paper band", first.ErrorFirst)
	}
	if first.ErrorSecond < 0.02 || first.ErrorSecond > 0.2 {
		t.Errorf("single 2nd-execution error %.2f outside the paper band", first.ErrorSecond)
	}
	if first.ErrorSecond >= first.ErrorFirst {
		t.Error("2nd execution not more reliable than 1st")
	}
	if last.ErrorSecond > 0.03 {
		t.Errorf("2nd-execution error %.2f did not approach 0 with averaging", last.ErrorSecond)
	}
	if last.ErrorFirst >= first.ErrorFirst {
		t.Error("1st-execution error did not shrink with averaging")
	}
}

func TestFig9StatesDistinguishable(t *testing.T) {
	cfg := QuickFig9Config()
	cfg.Seed = 99
	r, err := RunFig9(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(r.Cells))
	}
	// Second-measurement means must separate by expected pattern: MM
	// cells slowest, HH fastest, MH in between (its second execution is
	// a hit but the first miss perturbs only measurement 1).
	for _, c := range r.Cells {
		switch c.Expected {
		case core.PatternMM:
			if c.Second.Mean < 160 {
				t.Errorf("%v probe=%v: MM second mean %.1f too low", c.State, c.ProbeTaken, c.Second.Mean)
			}
		case core.PatternHH:
			if c.Second.Mean > 155 {
				t.Errorf("%v probe=%v: HH second mean %.1f too high", c.State, c.ProbeTaken, c.Second.Mean)
			}
		}
	}
}

func TestTable3SGXBeatsUserSpace(t *testing.T) {
	t3, err := RunTable3(context.Background(), Table3Config{Bits: 1500, Runs: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Cells) != 2 {
		t.Fatalf("rows = %d", len(t3.Cells))
	}
	var iso, noisy Table2Row
	for _, row := range t3.Cells {
		if row.Setting == Isolated {
			iso = row
		} else {
			noisy = row
		}
	}
	// SGX isolated: the OS suppresses all noise; error must be tiny.
	for _, rate := range iso.Rates {
		if rate > 0.01 {
			t.Errorf("SGX isolated error %.3f%% too high", 100*rate)
		}
	}
	// And not worse than the noisy SGX setting on average.
	mi := (iso.Rates[0] + iso.Rates[1] + iso.Rates[2]) / 3
	mn := (noisy.Rates[0] + noisy.Rates[1] + noisy.Rates[2]) / 3
	if mi > mn {
		t.Errorf("SGX isolated (%.3f) worse than SGX noisy (%.3f)", mi, mn)
	}
}

func TestMitigationsAblation(t *testing.T) {
	cfg := QuickMitigationsConfig()
	cfg.Seed = 10
	r, err := RunMitigations(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[bpu.Mitigation]float64{}
	for _, row := range r.Cells {
		rates[row.Mitigation] = row.ErrorRate
	}
	if rates[bpu.MitigationNone] > 0.05 {
		t.Errorf("unmitigated error %.2f%% too high", 100*rates[bpu.MitigationNone])
	}
	for _, m := range []bpu.Mitigation{bpu.MitigationRandomizedIndex,
		bpu.MitigationPartitioned, bpu.MitigationNoPredictSensitive} {
		if rates[m] < 0.35 {
			t.Errorf("%v: error %.2f%%, defense did not close the channel", m, 100*rates[m])
		}
	}
	// Stochastic updates degrade but do not fully close the channel.
	if rates[bpu.MitigationStochasticFSM] < 0.05 || rates[bpu.MitigationStochasticFSM] > 0.45 {
		t.Errorf("stochastic FSM error %.2f%% not intermediate", 100*rates[bpu.MitigationStochasticFSM])
	}
}

func TestMontgomeryExperiment(t *testing.T) {
	cfg := QuickMontgomeryConfig()
	cfg.Seed = 11
	r, err := RunMontgomery(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.ErrorRate() > 0.02 {
		t.Errorf("bit error rate %.2f%%", 100*r.Result.ErrorRate())
	}
	if r.Result.BitErrors == 0 && !r.Exact {
		t.Error("no bit errors but not exact")
	}
}

func TestJPEGExperiment(t *testing.T) {
	cfg := QuickJPEGConfig()
	cfg.Seed = 12
	r, err := RunJPEG(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.ErrorRate() > 0.05 {
		t.Errorf("branch error rate %.2f%%", 100*r.Result.ErrorRate())
	}
}

func TestASLRExperiment(t *testing.T) {
	cfg := QuickASLRConfig()
	cfg.Seed = 13
	r, err := RunASLR(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pinpointed {
		t.Errorf("slide not pinpointed: %s", r.String())
	}
	if len(r.SingleBranch.Collisions) == 0 {
		t.Error("single-branch scan found no collision class")
	}
}

func TestBTBBaselineComparison(t *testing.T) {
	cfg := QuickBTBBaselineConfig()
	cfg.Seed = 14
	r, err := RunBTBBaseline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.BTBError <= r.BranchScope {
		t.Errorf("BTB channel (%.2f%%) not worse than BranchScope (%.2f%%)",
			100*r.BTBError, 100*r.BranchScope)
	}
	if r.BTBUnderFlush < 0.35 {
		t.Errorf("BTB flush defense left BTB error at %.2f%%", 100*r.BTBUnderFlush)
	}
	if r.BranchScopeUnderBTB > 0.05 {
		t.Errorf("BTB defense affected BranchScope: %.2f%%", 100*r.BranchScopeUnderBTB)
	}
}

func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Artifact == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("fig2"); err != nil {
		t.Errorf("ByID(fig2): %v", err)
	}
	if _, err := ByID("nonesuch"); err == nil {
		t.Error("ByID accepted unknown experiment")
	}
	// A quick registry-driven run exercises the plumbing end to end.
	e, _ := ByID("fig6")
	res, rerr := e.Run(context.Background(), engine.Config{Quick: true, Seed: 3})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if out := res.String(); !strings.Contains(out, "Figure 6") {
		t.Error("registry run produced unexpected output")
	}
}

func TestSettingAndPatternStrings(t *testing.T) {
	if Isolated.String() == "" || Noisy.String() == "" {
		t.Error("empty Setting string")
	}
	for _, p := range []BitPattern{AllZeros, AllOnes, RandomBits} {
		if p.String() == "" {
			t.Error("empty BitPattern string")
		}
	}
}

func TestBitPatternBits(t *testing.T) {
	r := RunFig2 // silence unused in some builds
	_ = r
	ones := AllOnes.Bits(5, nil)
	for _, b := range ones {
		if !b {
			t.Error("AllOnes produced a zero")
		}
	}
	zeros := AllZeros.Bits(5, nil)
	for _, b := range zeros {
		if b {
			t.Error("AllZeros produced a one")
		}
	}
}

func TestIfConversionClosesChannel(t *testing.T) {
	cfg := QuickIfConversionConfig()
	cfg.Seed = 20
	r, err := RunIfConversion(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.BranchyError > 0.02 {
		t.Errorf("baseline ladder recovery error %.2f%%", 100*r.BranchyError)
	}
	if r.BranchlessError < 0.3 {
		t.Errorf("if-converted ladder still leaks: %.2f%% error", 100*r.BranchlessError)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestPoisoningForcesMispredictions(t *testing.T) {
	cfg := QuickPoisoningConfig()
	cfg.Seed = 21
	r, err := RunPoisoning(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineMissRate > 0.05 {
		t.Errorf("baseline miss rate %.2f%%", 100*r.BaselineMissRate)
	}
	if r.PoisonedMissRate < 0.9 {
		t.Errorf("poisoning achieved only %.2f%% miss rate", 100*r.PoisonedMissRate)
	}
	if r.AlignedMissRate > 0.05 {
		t.Errorf("aligned poisoning caused %.2f%% misses", 100*r.AlignedMissRate)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestDetectionSeparatesAttackerFromBenign(t *testing.T) {
	cfg := QuickDetectionConfig()
	cfg.Seed = 22
	r, err := RunDetection(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DetectionRow{}
	for _, row := range r.Workloads {
		byName[row.Workload] = row
	}
	if !byName["BranchScope spy"].Detected {
		t.Error("attacker not detected")
	}
	if byName["modexp service (benign)"].Detected {
		t.Error("benign modexp flagged")
	}
	if byName["jpeg decoder (benign)"].Detected {
		t.Error("benign decoder flagged")
	}
	if !byName["dense random branches (false positive)"].Detected {
		t.Error("documented false-positive case unexpectedly clean")
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestSlidingWindowRecovery(t *testing.T) {
	cfg := QuickSlidingWindowConfig()
	cfg.Seed = 23
	r, err := RunSlidingWindow(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.KnownFraction() < 0.4 {
		t.Errorf("only %.1f%% of key bits pinned", 100*r.Result.KnownFraction())
	}
	if r.Result.KnownBits > 0 && float64(r.Result.WrongBits)/float64(r.Result.KnownBits) > 0.05 {
		t.Errorf("%d/%d pinned bits wrong", r.Result.WrongBits, r.Result.KnownBits)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestSMTChannel(t *testing.T) {
	cfg := QuickSMTConfig()
	cfg.Seed = 24
	r, err := RunSMT(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ErrorRate > 0.05 {
		t.Errorf("cross-hyperthread error rate %.2f%%", 100*r.ErrorRate)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestSMTChannelDegradesWithJitter(t *testing.T) {
	// With wild scheduling jitter the coarse channel must degrade but
	// not die (majority voting absorbs most slips).
	low, err := RunSMT(context.Background(), SMTConfig{Bits: 500, SliceJitter: 1, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunSMT(context.Background(), SMTConfig{Bits: 500, SliceJitter: 6, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if high.ErrorRate < low.ErrorRate {
		t.Logf("note: jitter 6 (%.2f%%) not worse than jitter 1 (%.2f%%) at this seed",
			100*high.ErrorRate, 100*low.ErrorRate)
	}
	if high.ErrorRate > 0.30 {
		t.Errorf("channel collapsed at jitter 6: %.2f%%", 100*high.ErrorRate)
	}
}

func TestScorecardAllClaimsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("scorecard runs the full quick suite")
	}
	sc, err := Validate(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.AllPassed() {
		t.Errorf("reproduction scorecard failed:\n%s", sc)
	}
	if sc.String() == "" || sc.Passed() == 0 {
		t.Error("degenerate scorecard")
	}
}

func TestPredictorAblation(t *testing.T) {
	cfg := QuickPredictorAblationConfig()
	cfg.Seed = 26
	r, err := RunPredictorAblation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[bpu.Mode]float64{}
	for _, row := range r.Modes {
		rates[row.Mode] = row.ErrorRate
	}
	if rates[bpu.BimodalOnly] > 0.02 {
		t.Errorf("pure bimodal error %.2f%%: should be the easiest target", 100*rates[bpu.BimodalOnly])
	}
	if rates[bpu.Hybrid] > 0.05 {
		t.Errorf("hybrid error %.2f%%: forcing 1-level mode failed", 100*rates[bpu.Hybrid])
	}
	if rates[bpu.GshareOnly] < 0.35 {
		t.Errorf("pure gshare error %.2f%%: PC-indexed collisions should not exist", 100*rates[bpu.GshareOnly])
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestTimingChannelComparison(t *testing.T) {
	cfg := QuickTimingChannelConfig()
	cfg.Seed = 27
	r, err := RunTimingChannel(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.PMCError > 0.03 {
		t.Errorf("PMC channel error %.2f%%", 100*r.PMCError)
	}
	// Timing-only probing is noisier than the PMC but far better than
	// guessing — consistent with Fig 8's single-shot ~10%.
	if r.TSCError <= r.PMCError {
		t.Errorf("timing (%.2f%%) not noisier than PMC (%.2f%%)", 100*r.TSCError, 100*r.PMCError)
	}
	if r.TSCError > 0.25 {
		t.Errorf("timing channel error %.2f%%: broken", 100*r.TSCError)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestFSMWidthAblation(t *testing.T) {
	cfg := QuickFSMWidthConfig()
	cfg.Seed = 28
	r, err := RunFSMWidth(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("rows = %d", len(r.Points))
	}
	for _, row := range r.Points {
		if row.SearchCandidates < 0 {
			t.Errorf("width %d: search failed entirely", row.Width)
			continue
		}
		// The headline: no counter width closes the channel once the
		// attacker self-verifies its prime (§6.1 mimicry).
		if row.ErrorRate > 0.05 {
			t.Errorf("width %d: error %.2f%%", row.Width, 100*row.ErrorRate)
		}
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}
