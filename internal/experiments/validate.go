package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/bpu"
	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/uarch"
)

// Reproduction scorecard: programmatic checks that the regenerated
// artifacts land inside the paper's qualitative bands — the shapes,
// orderings and crossovers the reproduction is accountable for (see
// EXPERIMENTS.md). The scorecard runs the quick configurations so it
// finishes in seconds; `cmd/experiments -check` drives it, and it doubles
// as a regression net for model recalibrations.

// Check is one validated claim.
type Check struct {
	// Artifact is the paper table/figure the claim belongs to.
	Artifact string
	// Claim is the paper's statement being checked.
	Claim string
	// Pass reports whether the measurement satisfied it.
	Pass bool
	// Detail carries the measured values.
	Detail string
}

// Scorecard is the full validation result.
type Scorecard struct {
	Checks []Check
}

// Passed counts satisfied checks.
func (s Scorecard) Passed() int {
	n := 0
	for _, c := range s.Checks {
		if c.Pass {
			n++
		}
	}
	return n
}

// AllPassed reports whether every claim held.
func (s Scorecard) AllPassed() bool { return s.Passed() == len(s.Checks) }

// String renders the scorecard.
func (s Scorecard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reproduction scorecard: %d/%d paper claims hold\n", s.Passed(), len(s.Checks))
	for _, c := range s.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-9s %s\n", mark, c.Artifact, c.Claim)
		if c.Detail != "" {
			fmt.Fprintf(&b, "          %s\n", c.Detail)
		}
	}
	return b.String()
}

// Rows implements engine.Result: one row per checked claim.
func (s Scorecard) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(s.Checks))
	for _, c := range s.Checks {
		rows = append(rows, engine.Row{
			engine.F("artifact", c.Artifact),
			engine.F("claim", c.Claim),
			engine.F("pass", c.Pass),
			engine.F("detail", c.Detail),
		})
	}
	return rows
}

// check builds one scorecard entry.
func check(artifact, claim string, pass bool, detail string, args ...any) Check {
	return Check{Artifact: artifact, Claim: claim, Pass: pass, Detail: fmt.Sprintf(detail, args...)}
}

// Validate runs the quick experiment suite and scores the paper's
// claims. Independent check blocks run on the context's worker pool;
// scorecard order is fixed regardless of scheduling.
func Validate(ctx context.Context, seed uint64) (Scorecard, error) {
	blocks := []func(context.Context, uint64) ([]Check, error){
		validateFig2,
		validateTable1,
		validateFig4,
		validateFig5,
		validateTable2,
		validateTiming,
		validateTable3,
		validateMitigations,
		validateApplications,
	}
	groups, err := engine.Map(ctx, len(blocks), func(i int) ([]Check, error) {
		return blocks[i](ctx, seed)
	})
	if err != nil {
		return Scorecard{}, err
	}
	var sc Scorecard
	for _, g := range groups {
		sc.Checks = append(sc.Checks, g...)
	}
	return sc, nil
}

func validateFig2(ctx context.Context, seed uint64) ([]Check, error) {
	cfg := QuickFig2Config()
	cfg.Seed = seed
	r, err := RunFig2(ctx, cfg)
	if err != nil {
		return nil, err
	}
	firstOK, horizonOK := true, true
	var horizons []int
	for _, s := range r.Series {
		if s.MeanMisses[0] < 3.5 {
			firstOK = false
		}
		h := s.LearningHorizon()
		horizons = append(horizons, h)
		if h < 4 || h > 8 {
			horizonOK = false
		}
	}
	return []Check{
		check("Fig 2", "first iteration of an irregular pattern mispredicts ~50%",
			firstOK, "first-iteration misses: %.2f / %.2f",
			r.Series[0].MeanMisses[0], r.Series[1].MeanMisses[0]),
		check("Fig 2", "the 2-level predictor takes over after ~5-7 pattern repeats",
			horizonOK, "learning horizons: %v", horizons),
	}, nil
}

func validateTable1(ctx context.Context, seed uint64) ([]Check, error) {
	pass := true
	for _, m := range uarch.All() {
		r, err := RunTable1(ctx, m, seed)
		if err != nil {
			return nil, err
		}
		if !r.MatchesPaper() {
			pass = false
		}
	}
	return []Check{check("Table 1",
		"all eight prime/target/probe rows match on every CPU (incl. Skylake footnote)",
		pass, "models: Skylake, Haswell, SandyBridge")}, nil
}

func validateFig4(ctx context.Context, seed uint64) ([]Check, error) {
	// The strong-vs-weak comparison needs a larger sample than the
	// quick config to be meaningful.
	cfg := QuickFig4Config()
	cfg.Blocks = 120
	cfg.Seed = seed
	r, err := RunFig4(ctx, cfg)
	if err != nil {
		return nil, err
	}
	strong := r.Distribution[core.StateST] + r.Distribution[core.StateSN]
	weak := r.Distribution[core.StateWT] + r.Distribution[core.StateWN]
	return []Check{
		check("Fig 4", "most (~83%) randomization blocks yield stable decodable PHT states",
			r.StableShare >= 0.55 && r.StableShare <= 0.99,
			"stable share: %.1f%%", 100*r.StableShare),
		check("Fig 4", "strong states dominate weak states in the decoded distribution",
			strong > weak, "strong %.1f%% vs weak %.1f%%", 100*strong, 100*weak),
	}, nil
}

func validateFig5(ctx context.Context, seed uint64) ([]Check, error) {
	cfg := QuickFig5Config()
	cfg.Seed = seed
	r, err := RunFig5(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return []Check{check("Fig 5", "the H(w)/w minimum recovers the true PHT size",
		r.DiscoveredSize == r.TrueSize,
		"discovered %d, true %d", r.DiscoveredSize, r.TrueSize)}, nil
}

func validateTable2(ctx context.Context, seed uint64) ([]Check, error) {
	cfg := QuickTable2Config()
	cfg.Seed = seed
	r, err := RunTable2(ctx, cfg)
	if err != nil {
		return nil, err
	}
	byKey := map[string]Table2Row{}
	for _, row := range r.Cells {
		byKey[row.Model+"/"+row.Setting.String()] = row
	}
	mean := func(r Table2Row) float64 { return (r.Rates[0] + r.Rates[1] + r.Rates[2]) / 3 }
	slOK := mean(byKey["Skylake/isolated"]) < 0.01 && mean(byKey["Skylake/with noise"]) < 0.02
	hwOK := mean(byKey["Haswell/isolated"]) < 0.01 && mean(byKey["Haswell/with noise"]) < 0.02
	sbWorse := mean(byKey["SandyBridge/with noise"]) > mean(byKey["Skylake/with noise"]) &&
		mean(byKey["SandyBridge/with noise"]) > mean(byKey["Haswell/with noise"])
	noiseOK := true
	for _, m := range []string{"Skylake", "Haswell", "SandyBridge"} {
		if mean(byKey[m+"/with noise"]) < mean(byKey[m+"/isolated"]) {
			noiseOK = false
		}
	}
	return []Check{
		check("Table 2", "error rate below 1-2% on Skylake and Haswell in both settings",
			slOK && hwOK, "SL %.2f/%.2f%%, HSW %.2f/%.2f%%",
			100*mean(byKey["Skylake/isolated"]), 100*mean(byKey["Skylake/with noise"]),
			100*mean(byKey["Haswell/isolated"]), 100*mean(byKey["Haswell/with noise"])),
		check("Table 2", "Sandy Bridge (smaller tables) shows the highest error rates",
			sbWorse, "SB noisy %.2f%%", 100*mean(byKey["SandyBridge/with noise"])),
		check("Table 2", "noise increases the error rate on every CPU", noiseOK, ""),
	}, nil
}

func validateTiming(ctx context.Context, seed uint64) ([]Check, error) {
	cfg7 := QuickFig7Config()
	cfg7.Seed = seed
	r7, err := RunFig7(ctx, cfg7)
	if err != nil {
		return nil, err
	}
	d := r7.Case(false, true).Summary.Mean - r7.Case(false, false).Summary.Mean

	cfg8 := QuickFig8Config()
	cfg8.Seed = seed
	r8, err := RunFig8(ctx, cfg8)
	if err != nil {
		return nil, err
	}
	first, last := r8.Points[0], r8.Points[len(r8.Points)-1]

	cfg9 := QuickFig9Config()
	cfg9.Seed = seed
	r9, err := RunFig9(ctx, cfg9)
	if err != nil {
		return nil, err
	}
	sep := true
	for _, c := range r9.Cells {
		if c.Expected == core.PatternMM && c.Second.Mean < 160 {
			sep = false
		}
		if c.Expected == core.PatternHH && c.Second.Mean > 155 {
			sep = false
		}
	}
	return []Check{
		check("Fig 7", "a misprediction has a clearly visible latency penalty",
			d > 30, "separation %.1f cycles", d),
		check("Fig 8", "first executions are unreliable (20-30%), second ~10%, averaging drives error toward 0",
			first.ErrorFirst > first.ErrorSecond && last.ErrorSecond < 0.03,
			"m=1: %.1f%%/%.1f%%; m=%d: %.1f%%/%.1f%%",
			100*first.ErrorFirst, 100*first.ErrorSecond,
			last.Measurements, 100*last.ErrorFirst, 100*last.ErrorSecond),
		check("Fig 9", "PHT states are distinguishable by probe timing alone", sep, ""),
	}, nil
}

func validateTable3(ctx context.Context, seed uint64) ([]Check, error) {
	r, err := RunTable3(ctx, Table3Config{Bits: 1500, Runs: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	var iso Table2Row
	for _, row := range r.Cells {
		if row.Setting == Isolated {
			iso = row
		}
	}
	m := (iso.Rates[0] + iso.Rates[1] + iso.Rates[2]) / 3
	return []Check{check("Table 3", "the SGX attack (OS-assisted) is at least as reliable as user space",
		m < 0.005, "SGX isolated mean error %.3f%%", 100*m)}, nil
}

func validateMitigations(ctx context.Context, seed uint64) ([]Check, error) {
	cfg := QuickMitigationsConfig()
	cfg.Seed = seed
	r, err := RunMitigations(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rates := map[bpu.Mitigation]float64{}
	for _, row := range r.Cells {
		rates[row.Mitigation] = row.ErrorRate
	}
	return []Check{check("§10.2", "randomized indexing, partitioning and no-predict close the channel",
		rates[bpu.MitigationRandomizedIndex] > 0.35 &&
			rates[bpu.MitigationPartitioned] > 0.35 &&
			rates[bpu.MitigationNoPredictSensitive] > 0.35,
		"errors: %.0f%%/%.0f%%/%.0f%%",
		100*rates[bpu.MitigationRandomizedIndex],
		100*rates[bpu.MitigationPartitioned],
		100*rates[bpu.MitigationNoPredictSensitive])}, nil
}

func validateApplications(ctx context.Context, seed uint64) ([]Check, error) {
	mcfg := QuickMontgomeryConfig()
	mcfg.Seed = seed
	mr, err := RunMontgomery(ctx, mcfg)
	if err != nil {
		return nil, err
	}

	acfg := QuickASLRConfig()
	acfg.Seed = seed
	ar, err := RunASLR(ctx, acfg)
	if err != nil {
		return nil, err
	}

	bcfg := QuickBTBBaselineConfig()
	bcfg.Seed = seed
	br, err := RunBTBBaseline(ctx, bcfg)
	if err != nil {
		return nil, err
	}
	return []Check{
		check("§9.2", "Montgomery-ladder key bits recovered with near-zero error",
			mr.Result.ErrorRate() < 0.02, "%s", mr.Result),
		check("§9.2", "ASLR slide recovered by collision scanning",
			ar.Pinpointed, "survivors: %d", len(ar.Multi.Collisions)),
		check("§11", "BranchScope beats the BTB channel and ignores BTB defenses",
			br.BranchScope < br.BTBError && br.BTBUnderFlush > 0.35 && br.BranchScopeUnderBTB < 0.05,
			"BS %.2f%% vs BTB %.2f%% (flushed: %.2f%%/%.2f%%)",
			100*br.BranchScope, 100*br.BTBError,
			100*br.BranchScopeUnderBTB, 100*br.BTBUnderFlush),
	}, nil
}
