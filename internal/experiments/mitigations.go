package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/bpu"
	"branchscope/internal/engine"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// MitigationsConfig parameterizes the §10.2 defense ablation: the covert
// channel is re-measured on a Skylake machine hardened with each of the
// proposed hardware mitigations, using a random bit pattern in the
// isolated setting. The attack's own pre-attack search is allowed to do
// its best against each defense.
type MitigationsConfig struct {
	Bits int
	Runs int
	// StochasticP is the update probability of the stochastic-FSM
	// defense variant.
	StochasticP float64
	Seed        uint64
}

func (c MitigationsConfig) withDefaults() MitigationsConfig {
	if c.Bits == 0 {
		c.Bits = 4000
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.StochasticP == 0 {
		c.StochasticP = 0.7
	}
	return c
}

// QuickMitigationsConfig returns a test-scale configuration.
func QuickMitigationsConfig() MitigationsConfig {
	return MitigationsConfig{Bits: 800, Runs: 1}
}

// MitigationRow is one ablation row.
type MitigationRow struct {
	Mitigation bpu.Mitigation
	ErrorRate  float64
	// SetupFailedRuns counts runs where the pre-attack search found no
	// usable block (the defense broke the channel before a single bit
	// moved).
	SetupFailedRuns int
}

// MitigationsResult holds the ablation.
type MitigationsResult struct {
	Config MitigationsConfig
	Cells  []MitigationRow
}

// RunMitigations regenerates the defense ablation. The five defenses
// run as independent units on the context's worker pool with per-defense
// derived seeds.
func RunMitigations(ctx context.Context, cfg MitigationsConfig) (MitigationsResult, error) {
	cfg = cfg.withDefaults()
	res := MitigationsResult{Config: cfg}
	cases := []bpu.Mitigation{
		bpu.MitigationNone,
		bpu.MitigationRandomizedIndex,
		bpu.MitigationPartitioned,
		bpu.MitigationNoPredictSensitive,
		bpu.MitigationStochasticFSM,
	}
	rows, err := engine.Map(ctx, len(cases), func(i int) (MitigationRow, error) {
		mit := cases[i]
		m := uarch.Skylake()
		m.BPU.Mitigation = mit
		switch mit {
		case bpu.MitigationRandomizedIndex:
			m.BPU.IndexKey = 0x5a5a_1234_9e37_79b9
		case bpu.MitigationPartitioned:
			m.BPU.Domains = 4
		case bpu.MitigationStochasticFSM:
			m.BPU.StochasticP = cfg.StochasticP
		}
		var prepare func(*sched.System)
		if mit == bpu.MitigationNoPredictSensitive {
			prepare = func(sys *sched.System) {
				// The developer marked the secret-dependent branch's
				// neighbourhood sensitive (§10.2).
				sys.Core().BPU().MarkSensitive(victims.SecretBranchAddr-0x40, victims.SecretBranchAddr+0x40)
			}
		}
		c, err := RunCovert(ctx, CovertConfig{
			Model: m, Setting: Isolated, Pattern: RandomBits,
			Bits: cfg.Bits, Runs: cfg.Runs, Prepare: prepare,
			Seed: engine.DeriveSeed(cfg.Seed, "mitigations", mit.String()),
		})
		if err != nil {
			return MitigationRow{}, fmt.Errorf("mitigation %s: %w", mit, err)
		}
		return MitigationRow{
			Mitigation:      mit,
			ErrorRate:       c.ErrorRate,
			SetupFailedRuns: c.SetupFailed,
		}, nil
	})
	if err != nil {
		return MitigationsResult{}, err
	}
	res.Cells = rows
	return res, nil
}

// String renders the ablation table.
func (r MitigationsResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Mitigation ablation (§10.2): covert-channel error under each defense")
	fmt.Fprintf(&b, "(Skylake, isolated, random bits; 50%% = channel fully closed)\n")
	for _, row := range r.Cells {
		note := ""
		if row.SetupFailedRuns > 0 {
			note = fmt.Sprintf("  (pre-attack search failed in %d run(s))", row.SetupFailedRuns)
		}
		fmt.Fprintf(&b, "  %-22s %8s%s\n", row.Mitigation, stats.Percent(row.ErrorRate), note)
	}
	return b.String()
}

// Rows implements engine.Result: one row per defense.
func (r MitigationsResult) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Cells))
	for _, row := range r.Cells {
		rows = append(rows, engine.Row{
			engine.F("mitigation", row.Mitigation.String()),
			engine.F("error_rate", row.ErrorRate),
			engine.F("setup_failed_runs", row.SetupFailedRuns),
		})
	}
	return rows
}
