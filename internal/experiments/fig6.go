package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// Fig6Config parameterizes the covert-channel decoding demonstration:
// a short bit string is transmitted, the raw per-bit probe patterns are
// recorded, and the decode dictionary is applied — reproducing the
// Figure 6 walk-through (including, with enough noise, the occasional
// erroneously received bit the figure shows).
type Fig6Config struct {
	// Bits is the demonstration payload (Figure 6 shows 10 bits).
	Bits []bool
	// NoisePerBit is the background activity per episode; the default
	// is cranked up so a decoding error is likely to appear in the
	// demo, as in the figure.
	NoisePerBit int
	Model       uarch.Model
	Seed        uint64
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Bits == nil {
		c.Bits = []bool{false, true, true, false, true, true, false, true, true, false}
	}
	if c.NoisePerBit == 0 {
		c.NoisePerBit = 450
	}
	if c.Model.Name == "" {
		c.Model = uarch.SandyBridge()
	}
	return c
}

// Fig6Result is the demonstration transcript.
type Fig6Result struct {
	Config   Fig6Config
	Original []bool
	Patterns []core.Pattern
	Decoded  []bool
	Errors   int
}

// RunFig6 regenerates the Figure 6 demonstration.
func RunFig6(ctx context.Context, cfg Fig6Config) (Fig6Result, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 6)
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	victim := sys.Spawn("sender", victims.LoopingSecretArraySender(cfg.Bits, 0))
	defer victim.Kill()
	noiseThread := sys.Spawn("noise", noise.Process(r.Uint64(), noise.DefaultRegion, 1<<22))
	defer noiseThread.Kill()
	spy := sys.NewProcess("spy")
	sess, err := core.NewSession(spy, r.Split(), core.AttackConfig{
		Search: core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
	})
	if err != nil {
		return Fig6Result{}, fmt.Errorf("experiments: fig6 session setup: %w", err)
	}

	res := Fig6Result{Config: cfg, Original: cfg.Bits}
	after := func() { noiseThread.Step(cfg.NoisePerBit) }
	for range cfg.Bits {
		if err := ctx.Err(); err != nil {
			return Fig6Result{}, fmt.Errorf("experiments: fig6: %w", err)
		}
		sess.Prime()
		victim.StepBranches(1)
		after()
		pat := sess.Probe()
		res.Patterns = append(res.Patterns, pat)
		res.Decoded = append(res.Decoded, core.DecodeBit(pat))
	}
	for i := range res.Original {
		if res.Decoded[i] != res.Original[i] {
			res.Errors++
		}
	}
	return res, nil
}

// Rows implements engine.Result: one "bit" row per transmitted bit plus
// one "summary" row with the error count.
func (r Fig6Result) Rows() []engine.Row {
	var rows []engine.Row
	for i := range r.Original {
		rows = append(rows, engine.Row{
			engine.F("kind", "bit"),
			engine.F("index", i),
			engine.F("original", r.Original[i]),
			engine.F("pattern", string(r.Patterns[i])),
			engine.F("decoded", r.Decoded[i]),
		})
	}
	rows = append(rows, engine.Row{
		engine.F("kind", "summary"),
		engine.F("bits", len(r.Original)),
		engine.F("errors", r.Errors),
	})
	return rows
}

// String renders the figure's rows: original bits, spy measurements,
// decoded bits, and the dictionary.
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 6: demonstration of BranchScope covert decoding")
	row := func(label string, f func(i int) string) {
		fmt.Fprintf(&b, "%-22s", label)
		for i := range r.Original {
			fmt.Fprintf(&b, " %2s", f(i))
		}
		fmt.Fprintln(&b)
	}
	bit := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	row("Original", func(i int) string { return bit(r.Original[i]) })
	row("Spy measurement 1", func(i int) string { return string(r.Patterns[i][0]) })
	row("Spy measurement 2", func(i int) string { return string(r.Patterns[i][1]) })
	row("Decoded", func(i int) string { return bit(r.Decoded[i]) })
	row("", func(i int) string {
		if r.Decoded[i] != r.Original[i] {
			return "^"
		}
		return " "
	})
	fmt.Fprintf(&b, "Spy dictionary: MM, HM -> 0; MH, HH -> 1. Errors: %d/%d\n",
		r.Errors, len(r.Original))
	return b.String()
}
