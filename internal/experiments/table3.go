package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/engine"
	"branchscope/internal/stats"
	"branchscope/internal/uarch"
)

// Table3Config parameterizes the §9.2 SGX covert-channel benchmark: the
// sender (trojan) runs inside an SGX enclave on the Skylake machine and
// the spy is a regular process assisted by the malicious OS.
type Table3Config struct {
	Bits int
	Runs int
	Seed uint64
}

func (c Table3Config) withDefaults() Table3Config {
	if c.Bits == 0 {
		c.Bits = 20000
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	return c
}

// QuickTable3Config returns a test-scale configuration.
func QuickTable3Config() Table3Config {
	return Table3Config{Bits: 1500, Runs: 2}
}

// Table3Result holds the two SGX rows.
type Table3Result struct {
	Config Table3Config
	Cells  []Table2Row // reuses the row shape: setting × three patterns
}

// RunTable3 regenerates Table 3. The two setting rows run as
// independent units on the context's worker pool, with per-cell seeds
// derived from (seed, "table3", setting, pattern).
func RunTable3(ctx context.Context, cfg Table3Config) (Table3Result, error) {
	cfg = cfg.withDefaults()
	m := uarch.Skylake()
	res := Table3Result{Config: cfg}
	settings := []Setting{Noisy, Isolated} // the paper lists noise first
	rows, err := engine.Map(ctx, len(settings), func(i int) (Table2Row, error) {
		setting := settings[i]
		row := Table2Row{Model: "SGX", Setting: setting}
		for _, pat := range []BitPattern{AllZeros, AllOnes, RandomBits} {
			c, err := RunCovert(ctx, CovertConfig{
				Model: m, Setting: setting, Pattern: pat, SGX: true,
				Bits: cfg.Bits, Runs: cfg.Runs,
				Seed: engine.DeriveSeed(cfg.Seed, "table3", setting.String(), pat.String()),
			})
			if err != nil {
				return Table2Row{}, fmt.Errorf("table3 %s %s: %w", setting, pat, err)
			}
			row.Rates[pat] = c.ErrorRate
		}
		return row, nil
	})
	if err != nil {
		return Table3Result{}, err
	}
	res.Cells = rows
	return res, nil
}

// String renders the SGX grid in the paper's layout.
func (r Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: SGX covert channel error rate (trojan in enclave, OS-assisted spy)\n")
	fmt.Fprintf(&b, "(%d bits/run, %d runs per cell, Skylake)\n", r.Config.Bits, r.Config.Runs)
	fmt.Fprintf(&b, "%-26s %8s %8s %8s\n", "", "All 0", "All 1", "Random")
	for _, row := range r.Cells {
		fmt.Fprintf(&b, "%-26s %8s %8s %8s\n",
			fmt.Sprintf("%s %s", row.Model, row.Setting),
			stats.Percent(row.Rates[AllZeros]),
			stats.Percent(row.Rates[AllOnes]),
			stats.Percent(row.Rates[RandomBits]))
	}
	return b.String()
}

// Rows implements engine.Result.
func (r Table3Result) Rows() []engine.Row {
	rows := make([]engine.Row, 0, len(r.Cells))
	for _, row := range r.Cells {
		rows = append(rows, row.rowJSON())
	}
	return rows
}
