package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/uarch"
)

// Table1Row is one row of the paper's Table 1: a prime/target/probe
// combination and the observed probe pattern.
type Table1Row struct {
	Prime       string // "TTT" or "NNN"
	Target      string // "T" or "N"
	Probe       string // "TT" or "NN"
	Observation core.Pattern
}

// Table1Result holds the eight rows for one model.
type Table1Result struct {
	Model   string
	Entries []Table1Row
}

// RunTable1 reproduces the §6.1 prime/target/probe experiment on one
// model: a single branch with no previous history is primed three times,
// executed once in the target stage, and probed twice, with the
// prediction outcome of each probe execution read from the PMC. A fresh
// machine is used per row so the branch truly has no history.
func RunTable1(ctx context.Context, m uarch.Model, seed uint64) (Table1Result, error) {
	res := Table1Result{Model: m.Name}
	dirs := map[byte]bool{'T': true, 'N': false}
	for _, prime := range []string{"TTT", "NNN"} {
		for _, target := range []string{"T", "N"} {
			for _, probe := range []string{"TT", "NN"} {
				if err := ctx.Err(); err != nil {
					return Table1Result{}, fmt.Errorf("experiments: table1: %w", err)
				}
				c := m.NewCore(seed)
				hw := c.NewContext(1)
				const addr = 0x7700_4410
				for i := range prime {
					hw.Branch(addr, dirs[prime[i]])
				}
				hw.Branch(addr, dirs[target[0]])
				pat := core.ProbePMC(hw, addr, dirs[probe[0]])
				res.Entries = append(res.Entries, Table1Row{
					Prime: prime, Target: target, Probe: probe, Observation: pat,
				})
			}
		}
	}
	return res, nil
}

// Table1AllResult is Table 1 reproduced on every simulated CPU.
type Table1AllResult struct {
	Results []Table1Result
}

// RunTable1All reproduces Table 1 on all three CPUs. The per-model
// sub-runs execute on the context's worker pool (see engine.WithPool);
// each model's seed is derived from (seed, "table1", model name) so the
// output is identical at any parallelism level.
func RunTable1All(ctx context.Context, seed uint64) (Table1AllResult, error) {
	models := uarch.All()
	results, err := engine.Map(ctx, len(models), func(i int) (Table1Result, error) {
		return RunTable1(ctx, models[i], engine.DeriveSeed(seed, "table1", models[i].Name))
	})
	if err != nil {
		return Table1AllResult{}, err
	}
	return Table1AllResult{Results: results}, nil
}

// String implements fmt.Stringer.
func (r Table1AllResult) String() string {
	var b strings.Builder
	for _, m := range r.Results {
		b.WriteString(m.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Rows implements engine.Result.
func (r Table1AllResult) Rows() []engine.Row {
	var rows []engine.Row
	for _, m := range r.Results {
		rows = append(rows, m.Rows()...)
	}
	return rows
}

// PaperTable1 returns the paper's reported observations for a model:
// the eight rows in RunTable1's enumeration order (prime TTT then NNN,
// target T then N, probe TT then NN). skylake selects the footnote-1
// variant (row TTT/N/NN observes MM instead of MH).
func PaperTable1(skylake bool) []core.Pattern {
	rows := []core.Pattern{
		"HH", // TTT T TT
		"MM", // TTT T NN
		"HH", // TTT N TT
		"MH", // TTT N NN (footnote: MM on Skylake)
		"MH", // NNN T TT
		"HH", // NNN T NN
		"MM", // NNN N TT
		"HH", // NNN N NN
	}
	if skylake {
		rows[3] = "MM"
	}
	return rows
}

// MatchesPaper reports whether every observed row equals the paper's.
func (r Table1Result) MatchesPaper() bool {
	want := PaperTable1(r.Model == "Skylake")
	if len(r.Entries) != len(want) {
		return false
	}
	for i, row := range r.Entries {
		if row.Observation != want[i] {
			return false
		}
	}
	return true
}

// String renders the table in the paper's layout.
func (r Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: FSM transitions for a single PHT entry (%s)\n", r.Model)
	fmt.Fprintf(&b, "%-6s %-7s %-6s %s\n", "Prime", "Target", "Probe", "Observation")
	want := PaperTable1(r.Model == "Skylake")
	for i, row := range r.Entries {
		marker := ""
		if row.Observation != want[i] {
			marker = "  <- differs from paper"
		}
		fmt.Fprintf(&b, "%-6s %-7s %-6s %s%s\n", row.Prime, row.Target, row.Probe, row.Observation, marker)
	}
	return b.String()
}

// Rows implements engine.Result.
func (r Table1Result) Rows() []engine.Row {
	want := PaperTable1(r.Model == "Skylake")
	rows := make([]engine.Row, 0, len(r.Entries))
	for i, row := range r.Entries {
		rows = append(rows, engine.Row{
			engine.F("model", r.Model),
			engine.F("prime", row.Prime),
			engine.F("target", row.Target),
			engine.F("probe", row.Probe),
			engine.F("observation", string(row.Observation)),
			engine.F("matches_paper", row.Observation == want[i]),
		})
	}
	return rows
}
