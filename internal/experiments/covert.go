package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/cpu"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/sgx"
	"branchscope/internal/stats"
	"branchscope/internal/telemetry"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// defaultTelemetry is the process-wide telemetry set picked up by
// experiment runs whose config carries none. cmd/experiments installs
// one at startup so every covert-channel cell it regenerates reports
// through a single registry.
var defaultTelemetry atomic.Pointer[telemetry.Set]

// SetDefaultTelemetry installs (or, with nil, removes) the process-wide
// telemetry set used when a config's Telemetry field is nil.
func SetDefaultTelemetry(t *telemetry.Set) {
	defaultTelemetry.Store(t)
}

// DefaultTelemetry returns the process-wide telemetry set (nil when
// none is installed).
func DefaultTelemetry() *telemetry.Set {
	return defaultTelemetry.Load()
}

// Setting is the paper's system-noise configuration (§7).
type Setting int

const (
	// Isolated pins the benchmark to an isolated physical core with
	// only residual kernel activity.
	Isolated Setting = iota
	// Noisy places no scheduling restrictions: other system activity
	// shares the core's second hardware context.
	Noisy
)

// String implements fmt.Stringer.
func (s Setting) String() string {
	if s == Isolated {
		return "isolated"
	}
	return "with noise"
}

// BitPattern selects the transmitted secret of the covert benchmark.
type BitPattern int

const (
	// AllZeros transmits only 0 (not-taken) bits.
	AllZeros BitPattern = iota
	// AllOnes transmits only 1 (taken) bits.
	AllOnes
	// RandomBits transmits uniformly random bits.
	RandomBits
)

// String implements fmt.Stringer using the paper's column labels.
func (p BitPattern) String() string {
	switch p {
	case AllZeros:
		return "All 0"
	case AllOnes:
		return "All 1"
	default:
		return "Random"
	}
}

// Bits materializes n bits of the pattern.
func (p BitPattern) Bits(n int, r *rng.Source) []bool {
	bits := make([]bool, n)
	switch p {
	case AllOnes:
		for i := range bits {
			bits[i] = true
		}
	case RandomBits:
		for i := range bits {
			bits[i] = r.Bool()
		}
	}
	return bits
}

// CovertConfig parameterizes one covert-channel measurement cell.
type CovertConfig struct {
	// Model is the simulated CPU.
	Model uarch.Model
	// Setting selects isolated vs noisy.
	Setting Setting
	// Pattern selects the transmitted bits.
	Pattern BitPattern
	// Bits per run (the paper transmits 1e6; tests scale down).
	Bits int
	// Runs to average over (the paper uses 10).
	Runs int
	// SGX places the sender inside an enclave with the OS assisting the
	// spy (Table 3): background noise is suppressed by the malicious OS
	// — entirely in the isolated case, partially in the noisy one.
	SGX bool
	// UseTiming switches the spy from PMC probing to rdtscp probing.
	UseTiming bool
	// Prepare, when non-nil, runs against each fresh system before the
	// attack starts (mitigation studies configure the BPU here).
	Prepare func(*sched.System)
	// SpyHook, when non-nil, receives the spy's hardware context right
	// after creation (tracing and detection harnesses attach here).
	SpyHook func(*cpu.Context)
	// Telemetry, when non-nil, instruments every simulated machine the
	// measurement boots (falling back to the process-wide default set;
	// see SetDefaultTelemetry). Metrics and traces record simulated
	// cycles only, so exports are deterministic per seed.
	Telemetry *telemetry.Set
	// Seed drives all randomness.
	Seed uint64
}

// CovertResult is one cell of Table 2 / Table 3.
type CovertResult struct {
	Config    CovertConfig
	ErrorRate float64   // mean over runs
	PerRun    []float64 // individual run error rates
	// SetupFailed counts runs in which the pre-attack block search
	// found no usable randomization block (the channel could not even
	// be established — mitigations cause this). Such runs contribute an
	// error rate of 0.5 (guessing).
	SetupFailed int
}

// String implements fmt.Stringer.
func (r CovertResult) String() string {
	return fmt.Sprintf("%s %s %s: %s", r.Config.Model.Name, r.Config.Setting,
		r.Config.Pattern, stats.Percent(r.ErrorRate))
}

// Rows implements engine.Result.
func (r CovertResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("model", r.Config.Model.Name),
		engine.F("setting", r.Config.Setting.String()),
		engine.F("pattern", r.Config.Pattern.String()),
		engine.F("bits", r.Config.Bits),
		engine.F("runs", r.Config.Runs),
		engine.F("error_rate", r.ErrorRate),
		engine.F("per_run", r.PerRun),
		engine.F("setup_failed", r.SetupFailed),
	}}
}

// noiseBudget returns the per-episode background instruction count for
// the configuration.
func noiseBudget(cfg CovertConfig) int {
	m := cfg.Model
	switch {
	case cfg.SGX && cfg.Setting == Isolated:
		// The malicious OS stops everything else.
		return 0
	case cfg.SGX:
		// The OS cannot fully suppress its own housekeeping.
		return m.NoiseIsolatedBranches / 2
	case cfg.Setting == Isolated:
		return m.NoiseIsolatedBranches
	default:
		return m.NoiseNoisyBranches
	}
}

// RunCovert measures the covert-channel error rate for one configuration
// (one cell of Table 2/3). Each run boots a fresh system, spawns the
// sender (a Listing 2 secret-array victim, optionally inside an SGX
// enclave), performs the pre-attack block search, and transmits
// cfg.Bits bits with prime–step–probe episodes, interleaving background
// noise per the setting. Cancelling ctx aborts between runs and every
// few hundred transmitted bits.
func RunCovert(ctx context.Context, cfg CovertConfig) (CovertResult, error) {
	if cfg.Bits <= 0 {
		cfg.Bits = 1000
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = DefaultTelemetry()
	}
	root := rng.New(cfg.Seed ^ 0xc0de)
	res := CovertResult{Config: cfg}
	for run := 0; run < cfg.Runs; run++ {
		rate, err := runCovertOnce(ctx, cfg, root.Split(), &res)
		if err != nil {
			return CovertResult{}, fmt.Errorf("experiments: covert run %d: %w", run, err)
		}
		res.PerRun = append(res.PerRun, rate)
	}
	res.ErrorRate = stats.Mean(res.PerRun)
	cfg.Telemetry.Gauge("covert.error_rate").Set(res.ErrorRate)
	return res, nil
}

func runCovertOnce(ctx context.Context, cfg CovertConfig, r *rng.Source, res *CovertResult) (float64, error) {
	tel := cfg.Telemetry
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	if tel != nil {
		sys.SetTelemetry(tel)
	}
	tel.Counter("covert.runs").Inc()
	// Simulated cycles accumulate across runs; wall time is deliberately
	// absent so metric exports stay reproducible per seed.
	defer func() {
		tel.Counter("covert.simulated_cycles").Add(sys.Core().Clock())
	}()
	if cfg.Prepare != nil {
		cfg.Prepare(sys)
	}
	secret := cfg.Pattern.Bits(cfg.Bits, r)
	tel.Counter("covert.bits").Add(uint64(len(secret)))

	// The sender.
	var victim core.Stepper
	senderFn := victims.LoopingSecretArraySender(secret, 0)
	if cfg.SGX {
		e := sgx.Launch(sys, "sender", senderFn)
		defer e.Destroy()
		victim = e
	} else {
		th := sys.Spawn("sender", senderFn)
		defer th.Kill()
		victim = th
	}

	// Background noise on the sibling hardware context.
	budget := noiseBudget(cfg)
	var noiseThread *sched.Thread
	if budget > 0 {
		noiseThread = sys.Spawn("noise", noise.Process(r.Uint64(), noise.DefaultRegion, 1<<22))
		defer noiseThread.Kill()
	}
	noiseInjections := tel.Counter("covert.noise_injections")
	stepNoise := func(n int) func() {
		if noiseThread == nil || n <= 0 {
			return nil
		}
		return func() {
			noiseInjections.Inc()
			noiseThread.Step(n)
		}
	}

	spy := sys.NewProcess("spy")
	if cfg.SpyHook != nil {
		cfg.SpyHook(spy)
	}
	sess, err := core.NewSession(spy, r.Split(), core.AttackConfig{
		Search:    core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
		UseTiming: cfg.UseTiming,
	})
	if err != nil {
		// The channel could not be established: the attacker is
		// reduced to guessing.
		res.SetupFailed++
		tel.Counter("covert.setup_failures").Inc()
		return 0.5, nil
	}

	got := make([]bool, len(secret))
	before, after := stepNoise(budget/2), stepNoise(budget-budget/2)
	for i := range secret {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		got[i] = sess.SpyBit(victim, before, after)
	}
	return stats.ErrorRate(got, secret), nil
}
