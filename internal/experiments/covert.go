package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"branchscope/internal/chaos"
	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/engine"
	"branchscope/internal/leakage"
	"branchscope/internal/noise"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/sgx"
	"branchscope/internal/stats"
	"branchscope/internal/telemetry"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// defaultTelemetry is the process-wide telemetry set picked up by
// experiment runs whose config carries none. cmd/experiments installs
// one at startup so every covert-channel cell it regenerates reports
// through a single registry.
var defaultTelemetry atomic.Pointer[telemetry.Set]

// SetDefaultTelemetry installs (or, with nil, removes) the process-wide
// telemetry set used when a config's Telemetry field is nil.
func SetDefaultTelemetry(t *telemetry.Set) {
	defaultTelemetry.Store(t)
}

// DefaultTelemetry returns the process-wide telemetry set (nil when
// none is installed).
func DefaultTelemetry() *telemetry.Set {
	return defaultTelemetry.Load()
}

// defaultChaos / defaultRetry are the process-wide fault plan and
// resilient-read policy picked up by covert measurements whose config
// carries none — how the CLIs' -chaos/-chaos-seed/-retry flags reach
// every cell a suite run regenerates. Same idiom as defaultTelemetry.
var (
	defaultChaos atomic.Pointer[chaos.Plan]
	defaultRetry atomic.Pointer[core.RetryConfig]
)

// SetDefaultChaos installs (or, with nil, removes) the process-wide
// chaos plan applied when a config's Chaos field is nil.
func SetDefaultChaos(p *chaos.Plan) { defaultChaos.Store(p) }

// DefaultChaos returns the process-wide chaos plan (nil when none).
func DefaultChaos() *chaos.Plan { return defaultChaos.Load() }

// SetDefaultRetry installs (or, with nil, removes) the process-wide
// resilient-read policy applied when a config's Retry is zero.
func SetDefaultRetry(rc *core.RetryConfig) { defaultRetry.Store(rc) }

// DefaultRetry returns the process-wide retry policy (nil when none).
func DefaultRetry() *core.RetryConfig { return defaultRetry.Load() }

// Setting is the paper's system-noise configuration (§7).
type Setting int

const (
	// Isolated pins the benchmark to an isolated physical core with
	// only residual kernel activity.
	Isolated Setting = iota
	// Noisy places no scheduling restrictions: other system activity
	// shares the core's second hardware context.
	Noisy
)

// String implements fmt.Stringer.
func (s Setting) String() string {
	if s == Isolated {
		return "isolated"
	}
	return "with noise"
}

// BitPattern selects the transmitted secret of the covert benchmark.
type BitPattern int

const (
	// AllZeros transmits only 0 (not-taken) bits.
	AllZeros BitPattern = iota
	// AllOnes transmits only 1 (taken) bits.
	AllOnes
	// RandomBits transmits uniformly random bits.
	RandomBits
)

// String implements fmt.Stringer using the paper's column labels.
func (p BitPattern) String() string {
	switch p {
	case AllZeros:
		return "All 0"
	case AllOnes:
		return "All 1"
	default:
		return "Random"
	}
}

// Bits materializes n bits of the pattern.
func (p BitPattern) Bits(n int, r *rng.Source) []bool {
	bits := make([]bool, n)
	switch p {
	case AllOnes:
		for i := range bits {
			bits[i] = true
		}
	case RandomBits:
		for i := range bits {
			bits[i] = r.Bool()
		}
	}
	return bits
}

// CovertConfig parameterizes one covert-channel measurement cell.
type CovertConfig struct {
	// Model is the simulated CPU.
	Model uarch.Model
	// Setting selects isolated vs noisy.
	Setting Setting
	// Pattern selects the transmitted bits.
	Pattern BitPattern
	// Bits per run (the paper transmits 1e6; tests scale down).
	Bits int
	// Runs to average over (the paper uses 10).
	Runs int
	// SGX places the sender inside an enclave with the OS assisting the
	// spy (Table 3): background noise is suppressed by the malicious OS
	// — entirely in the isolated case, partially in the noisy one.
	SGX bool
	// UseTiming switches the spy from PMC probing to rdtscp probing.
	UseTiming bool
	// Prepare, when non-nil, runs against each fresh system before the
	// attack starts (mitigation studies configure the BPU here).
	Prepare func(*sched.System)
	// SpyHook, when non-nil, receives the spy's hardware context right
	// after creation (tracing and detection harnesses attach here).
	SpyHook func(*cpu.Context)
	// Telemetry, when non-nil, instruments every simulated machine the
	// measurement boots (falling back to the process-wide default set;
	// see SetDefaultTelemetry). Metrics and traces record simulated
	// cycles only, so exports are deterministic per seed.
	Telemetry *telemetry.Set
	// Chaos, when non-nil and enabled, attaches a fault injector
	// realizing the plan to every system the measurement boots
	// (falling back to the process-wide default; see SetDefaultChaos).
	// Faults start after session setup: the pre-attack search and
	// calibration model the quiet moment a real attacker waits for.
	Chaos *chaos.Plan
	// Retry, when nonzero (falling back to the process-wide default),
	// switches the spy to the resilient read path: per-bit majority
	// voting under Retry.MaxAttempts with outlier rejection, Unknown
	// reporting (counted as a coin flip, like a failed setup), and —
	// for timing sessions — drift-triggered recalibration. The zero
	// value keeps the paper's naive single-episode loop.
	Retry core.RetryConfig
	// Degrade arms each run's health gate: a PMC-probing session whose
	// counter readouts turn implausible past the threshold falls back
	// to rdtscp timing probing mid-run (see core.DegradeConfig and
	// DESIGN §3.16). Zero disables it — the default, so every existing
	// cell keeps its configured probe identity.
	Degrade core.DegradeConfig
	// Seed drives all randomness.
	Seed uint64
}

// CovertResult is one cell of Table 2 / Table 3.
type CovertResult struct {
	Config    CovertConfig
	ErrorRate float64   // mean over runs
	PerRun    []float64 // individual run error rates
	// SetupFailed counts runs in which the pre-attack block search
	// found no usable randomization block (the channel could not even
	// be established — mitigations cause this). Such runs contribute an
	// error rate of 0.5 (guessing).
	SetupFailed int
	// Unknown counts bits the resilient read path gave up on within its
	// attempt budget (always 0 on the naive path). Each contributes 0.5
	// to the error rate — an admitted guess, never a silent wrong bit.
	Unknown int
	// Recalibrations counts timing-detector rebuilds triggered by the
	// resilient path's drift checks, summed over runs.
	Recalibrations int
	// DegradedRuns counts runs whose session's health gate fell back
	// from PMC to timing probing mid-run (always 0 unless
	// Config.Degrade arms the gate) — the report-side audit trail of a
	// degraded measurement.
	DegradedRuns int
	// Leakage is the cell's channel-quality report: BER, mutual
	// information and capacity in bits/branch, SNR, and the 3-outcome
	// confusion matrix, merged over all runs (one leakage window per
	// run). Deterministic per seed like every other field.
	Leakage leakage.Report
}

// String implements fmt.Stringer.
func (r CovertResult) String() string {
	return fmt.Sprintf("%s %s %s: %s", r.Config.Model.Name, r.Config.Setting,
		r.Config.Pattern, stats.Percent(r.ErrorRate))
}

// Rows implements engine.Result.
func (r CovertResult) Rows() []engine.Row {
	return []engine.Row{{
		engine.F("model", r.Config.Model.Name),
		engine.F("setting", r.Config.Setting.String()),
		engine.F("pattern", r.Config.Pattern.String()),
		engine.F("bits", r.Config.Bits),
		engine.F("runs", r.Config.Runs),
		engine.F("error_rate", r.ErrorRate),
		engine.F("per_run", r.PerRun),
		engine.F("setup_failed", r.SetupFailed),
		engine.F("unknown_bits", r.Unknown),
		engine.F("degraded_runs", r.DegradedRuns),
		engine.F("bit_error_rate", r.Leakage.BitErrorRate),
		engine.F("mutual_information_bits", r.Leakage.MutualInformationBits),
		engine.F("capacity_bits", r.Leakage.CapacityBits),
		engine.F("snr", r.Leakage.SNR),
	}}
}

// noiseBudget returns the per-episode background instruction count for
// the configuration.
func noiseBudget(cfg CovertConfig) int {
	m := cfg.Model
	switch {
	case cfg.SGX && cfg.Setting == Isolated:
		// The malicious OS stops everything else.
		return 0
	case cfg.SGX:
		// The OS cannot fully suppress its own housekeeping.
		return m.NoiseIsolatedBranches / 2
	case cfg.Setting == Isolated:
		return m.NoiseIsolatedBranches
	default:
		return m.NoiseNoisyBranches
	}
}

// RunCovert measures the covert-channel error rate for one configuration
// (one cell of Table 2/3). Each run boots a fresh system, spawns the
// sender (a Listing 2 secret-array victim, optionally inside an SGX
// enclave), performs the pre-attack block search, and transmits
// cfg.Bits bits with prime–step–probe episodes, interleaving background
// noise per the setting. Cancelling ctx aborts between runs and every
// few hundred transmitted bits.
func RunCovert(ctx context.Context, cfg CovertConfig) (CovertResult, error) {
	if cfg.Bits <= 0 {
		cfg.Bits = 1000
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	if ov := OverridesFrom(ctx); ov != nil {
		// Context overrides replace the process-wide defaults entirely:
		// a service job must run under exactly its own spec's chaos and
		// retry knobs, never inherit another tenant's (or the host
		// CLI's). Nil override fields mean "none", not "fall back".
		if cfg.Telemetry == nil {
			cfg.Telemetry = ov.Telemetry
		}
		if cfg.Chaos == nil {
			cfg.Chaos = ov.Chaos
		}
		if cfg.Retry == (core.RetryConfig{}) && ov.Retry != nil {
			cfg.Retry = *ov.Retry
		}
	} else {
		if cfg.Telemetry == nil {
			cfg.Telemetry = DefaultTelemetry()
		}
		if cfg.Chaos == nil {
			cfg.Chaos = DefaultChaos()
		}
		if cfg.Retry == (core.RetryConfig{}) {
			if rc := DefaultRetry(); rc != nil {
				cfg.Retry = *rc
			}
		}
	}
	root := rng.New(cfg.Seed ^ 0xc0de)
	res := CovertResult{Config: cfg}
	est := &leakage.Estimator{}
	for run := 0; run < cfg.Runs; run++ {
		rate, err := runCovertOnce(ctx, cfg, root.Split(), &res, est)
		if err != nil {
			return CovertResult{}, fmt.Errorf("experiments: covert run %d: %w", run, err)
		}
		res.PerRun = append(res.PerRun, rate)
	}
	res.ErrorRate = stats.Mean(res.PerRun)
	res.Leakage = est.Report()
	cfg.Telemetry.Gauge("covert.error_rate").Set(res.ErrorRate)
	cfg.Telemetry.Gauge("leakage.ber").Set(res.Leakage.BitErrorRate)
	cfg.Telemetry.Gauge("leakage.mi_bits").Set(res.Leakage.MutualInformationBits)
	cfg.Telemetry.Gauge("leakage.capacity_bits").Set(res.Leakage.CapacityBits)
	cfg.Telemetry.Gauge("leakage.snr").Set(res.Leakage.SNR)
	leakage.PublishReport(res.Leakage)
	return res, nil
}

// leakageWindowBuckets covers [0, 1000] permille/millibit values in 20
// linear steps — window BER and MI both live on bounded [0,1] scales.
func leakageWindowBuckets() []uint64 { return telemetry.LinearBuckets(50, 50, 20) }

// finishWindow closes one run's leakage window: it feeds the window
// histograms, bumps the window counter, and merges the window into the
// cell estimator.
func finishWindow(tel *telemetry.Set, est, win *leakage.Estimator) {
	wr := win.Report()
	if wr.Bits == 0 {
		return
	}
	tel.Counter("leakage.windows").Inc()
	tel.Histogram("leakage.window.ber_permille", leakageWindowBuckets()).Observe(uint64(wr.BitErrorRate * 1000))
	tel.Histogram("leakage.window.mi_millibits", leakageWindowBuckets()).Observe(uint64(wr.MutualInformationBits * 1000))
	est.Merge(win)
}

func runCovertOnce(ctx context.Context, cfg CovertConfig, r *rng.Source, res *CovertResult, est *leakage.Estimator) (float64, error) {
	tel := cfg.Telemetry
	sys := sched.NewSystem(cfg.Model, r.Uint64())
	if tel != nil {
		sys.SetTelemetry(tel)
	}
	tel.Counter("covert.runs").Inc()
	// Simulated cycles accumulate across runs; wall time is deliberately
	// absent so metric exports stay reproducible per seed.
	defer func() {
		tel.Counter("covert.simulated_cycles").Add(sys.Core().Clock())
	}()
	if cfg.Prepare != nil {
		cfg.Prepare(sys)
	}
	secret := cfg.Pattern.Bits(cfg.Bits, r)
	tel.Counter("covert.bits").Add(uint64(len(secret)))

	// The sender. The resilient read spends a variable number of
	// episodes per bit, so it needs the retransmission-capable sender
	// (the receiver advances the cursor only once a bit is decided).
	// Retry.MaxAttempts == 0 keeps the paper's free-running Listing 2
	// sender with the naive loop; a negative budget selects the naive
	// loop over the held-bit sender — the robustness sweep's baseline,
	// which isolates the read loop itself from protocol
	// desynchronization (victim jitter would permanently desync a
	// free-running sender and flatten every naive cell to a coin flip).
	resilient := cfg.Retry.MaxAttempts > 0
	var cursor int
	senderFn := victims.LoopingSecretArraySender(secret, 0)
	if cfg.Retry.MaxAttempts != 0 {
		senderFn = victims.HeldBitSender(secret, 0, &cursor)
	}
	var victim core.Stepper
	if cfg.SGX {
		e := sgx.Launch(sys, "sender", senderFn)
		defer e.Destroy()
		victim = e
	} else {
		th := sys.Spawn("sender", senderFn)
		defer th.Kill()
		victim = th
	}

	// Background noise on the sibling hardware context.
	budget := noiseBudget(cfg)
	var noiseThread *sched.Thread
	if budget > 0 {
		noiseThread = sys.Spawn("noise", noise.Process(r.Uint64(), noise.DefaultRegion, 1<<22))
		defer noiseThread.Kill()
	}
	noiseInjections := tel.Counter("covert.noise_injections")
	stepNoise := func(n int) func() {
		if noiseThread == nil || n <= 0 {
			return nil
		}
		return func() {
			noiseInjections.Inc()
			noiseThread.Step(n)
		}
	}

	spy := sys.NewProcess("spy")
	if cfg.SpyHook != nil {
		cfg.SpyHook(spy)
	}
	// One leakage window per run: the episode hook feeds the raw probe
	// signal (SNR path) under the bit being transmitted, the decode
	// loops below feed the confusion matrix.
	win := &leakage.Estimator{}
	sess, err := core.NewSession(spy, r.Split(), core.AttackConfig{
		Search:    core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
		UseTiming: cfg.UseTiming,
		Retry:     cfg.Retry,
		Degrade:   cfg.Degrade,
		EpisodeHook: func(o core.EpisodeObservation) {
			// The second probe measurement carries the discriminating
			// signal (the decode dictionary splits on it: MM/HM → 0,
			// MH/HH → 1), so it is what the SNR is computed over.
			win.Signal(secret[cursor], float64(o.Second))
		},
	})
	if err != nil {
		// The channel could not be established: the attacker is
		// reduced to guessing.
		res.SetupFailed++
		tel.Counter("covert.setup_failures").Inc()
		return 0.5, nil
	}
	// Snapshot the predictor on the way out, whatever path returns: the
	// end-of-run PHT state and mispredict heatmap feed /introspect/pht
	// and the -introspect-out export.
	defer func() { leakage.PublishIntrospection(sys.Core().BPU().Introspect()) }()

	// Fault injection starts here — after the pre-attack search and
	// timing calibration — and wraps the victim with the plan's
	// slowdown jitter. Chaos episode boundaries ride the same
	// before/after hooks the noise budget uses, adjacent to the step.
	before, after := stepNoise(budget/2), stepNoise(budget-budget/2)
	if plan := cfg.Chaos; plan != nil && plan.HasEpisodeFaults() {
		inj := chaos.NewInjector(sys, plan.WithSeed(plan.Seed^r.Uint64()))
		defer inj.Detach()
		victim = inj.WrapStepper(victim)
		before = joinHooks(before, inj.BeforeStep)
		after = joinHooks(inj.AfterStep, after)
	}

	if !resilient {
		got := make([]bool, len(secret))
		for i := range secret {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			cursor = i // no-op for the free-running sender
			got[i] = sess.SpyBit(victim, before, after)
			win.Observe(secret[i], got[i], true)
		}
		if sess.Degraded() {
			res.DegradedRuns++
			tel.Counter("covert.degraded_runs").Inc()
		}
		finishWindow(tel, est, win)
		return stats.ErrorRate(got, secret), nil
	}

	// Resilient loop: majority-vote each bit under the attempt budget,
	// advance the sender's cursor only once decided, and score an
	// Unknown as a coin flip — graceful degradation, not silent error.
	unknownBits := tel.Counter("covert.unknown_bits")
	errSum := 0.0
	for i := range secret {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		cursor = i
		rd := sess.ReadBit(victim, before, after)
		win.Observe(secret[i], rd.Bit, rd.Known)
		switch {
		case !rd.Known:
			res.Unknown++
			unknownBits.Inc()
			errSum += 0.5
		case rd.Bit != secret[i]:
			errSum++
		}
	}
	res.Recalibrations += sess.Recalibrations()
	if sess.Degraded() {
		res.DegradedRuns++
		tel.Counter("covert.degraded_runs").Inc()
	}
	finishWindow(tel, est, win)
	return errSum / float64(len(secret)), nil
}

// joinHooks composes two optional episode hooks in order.
func joinHooks(a, b func()) func() {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func() { a(); b() }
}
