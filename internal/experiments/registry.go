package experiments

import (
	"fmt"

	"branchscope/internal/uarch"
)

// Experiment is a runnable paper artifact for the cmd/experiments
// harness.
type Experiment struct {
	// ID is the short name used on the command line ("fig2", "table2").
	ID string
	// Artifact names the paper table/figure or extension.
	Artifact string
	// Description summarizes what is measured.
	Description string
	// Run executes the experiment and returns its printable result.
	// quick selects the test-scale configuration.
	Run func(quick bool, seed uint64) fmt.Stringer
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{
			ID: "fig2", Artifact: "Figure 2",
			Description: "selection-logic learning curve for an irregular branch pattern",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := Fig2Config{Seed: seed}
				if quick {
					cfg = QuickFig2Config()
					cfg.Seed = seed
				}
				return RunFig2(cfg)
			},
		},
		{
			ID: "table1", Artifact: "Table 1",
			Description: "prime/target/probe FSM transitions on all three CPUs",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				var all multiResult
				for _, m := range uarch.All() {
					all = append(all, RunTable1(m, seed))
				}
				return all
			},
		},
		{
			ID: "fig4", Artifact: "Figure 4",
			Description: "distribution of PHT states after randomization blocks",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := Fig4Config{Seed: seed}
				if quick {
					cfg = QuickFig4Config()
					cfg.Seed = seed
				}
				return RunFig4(cfg)
			},
		},
		{
			ID: "fig5", Artifact: "Figure 5",
			Description: "PHT mapping and size discovery via Hamming windows",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := Fig5Config{Seed: seed}
				if quick {
					cfg = QuickFig5Config()
					cfg.Seed = seed
				}
				return RunFig5(cfg)
			},
		},
		{
			ID: "fig6", Artifact: "Figure 6",
			Description: "covert-channel decoding demonstration",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				return RunFig6(Fig6Config{Seed: seed})
			},
		},
		{
			ID: "table2", Artifact: "Table 2",
			Description: "covert-channel error rates: 3 CPUs x settings x patterns",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := Table2Config{Seed: seed}
				if quick {
					cfg = QuickTable2Config()
					cfg.Seed = seed
				}
				return RunTable2(cfg)
			},
		},
		{
			ID: "fig7", Artifact: "Figure 7",
			Description: "branch latency distributions, hit vs miss",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := Fig7Config{Seed: seed}
				if quick {
					cfg = QuickFig7Config()
					cfg.Seed = seed
				}
				return RunFig7(cfg)
			},
		},
		{
			ID: "fig8", Artifact: "Figure 8",
			Description: "timing-detection error vs number of measurements",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := Fig8Config{Seed: seed}
				if quick {
					cfg = QuickFig8Config()
					cfg.Seed = seed
				}
				return RunFig8(cfg)
			},
		},
		{
			ID: "fig9", Artifact: "Figure 9",
			Description: "probe latency by primed PHT state",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := Fig9Config{Seed: seed}
				if quick {
					cfg = QuickFig9Config()
					cfg.Seed = seed
				}
				return RunFig9(cfg)
			},
		},
		{
			ID: "table3", Artifact: "Table 3",
			Description: "covert channel with an SGX-enclave sender",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := Table3Config{Seed: seed}
				if quick {
					cfg = QuickTable3Config()
					cfg.Seed = seed
				}
				return RunTable3(cfg)
			},
		},
		{
			ID: "mitigations", Artifact: "§10.2 (extension)",
			Description: "covert-channel error under each proposed hardware defense",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := MitigationsConfig{Seed: seed}
				if quick {
					cfg = QuickMitigationsConfig()
					cfg.Seed = seed
				}
				return RunMitigations(cfg)
			},
		},
		{
			ID: "montgomery", Artifact: "§9.2",
			Description: "Montgomery-ladder exponent recovery",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := MontgomeryConfig{Seed: seed}
				if quick {
					cfg = QuickMontgomeryConfig()
					cfg.Seed = seed
				}
				return RunMontgomery(cfg)
			},
		},
		{
			ID: "jpeg", Artifact: "§9.2",
			Description: "libjpeg IDCT block-structure recovery",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := JPEGConfig{Seed: seed}
				if quick {
					cfg = QuickJPEGConfig()
					cfg.Seed = seed
				}
				return RunJPEG(cfg)
			},
		},
		{
			ID: "aslr", Artifact: "§9.2",
			Description: "ASLR slide recovery via PHT collision scanning",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := ASLRConfig{Seed: seed}
				if quick {
					cfg = QuickASLRConfig()
					cfg.Seed = seed
				}
				return RunASLR(cfg)
			},
		},
		{
			ID: "ifconversion", Artifact: "§10.1 (extension)",
			Description: "attack vs the if-converted (branchless) Montgomery ladder",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := IfConversionConfig{Seed: seed}
				if quick {
					cfg = QuickIfConversionConfig()
					cfg.Seed = seed
				}
				return RunIfConversion(cfg)
			},
		},
		{
			ID: "poisoning", Artifact: "§1 (extension)",
			Description: "branch poisoning: forcing victim mispredictions on demand",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := PoisoningConfig{Seed: seed}
				if quick {
					cfg = QuickPoisoningConfig()
					cfg.Seed = seed
				}
				return RunPoisoning(cfg)
			},
		},
		{
			ID: "detection", Artifact: "§10.2 (extension)",
			Description: "attack-footprint detector vs attacker and benign workloads",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := DetectionConfig{Seed: seed}
				if quick {
					cfg = QuickDetectionConfig()
					cfg.Seed = seed
				}
				return RunDetection(cfg)
			},
		},
		{
			ID: "slidingwindow", Artifact: "§9.2 (extension)",
			Description: "partial key recovery from a sliding-window exponentiation",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := SlidingWindowConfig{Seed: seed}
				if quick {
					cfg = QuickSlidingWindowConfig()
					cfg.Seed = seed
				}
				return RunSlidingWindow(cfg)
			},
		},
		{
			ID: "smt", Artifact: "§1 (extension)",
			Description: "cross-hyperthread covert channel without branch-granular control",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := SMTConfig{Seed: seed}
				if quick {
					cfg = QuickSMTConfig()
					cfg.Seed = seed
				}
				return RunSMT(cfg)
			},
		},
		{
			ID: "predictors", Artifact: "§5 (extension)",
			Description: "covert error by predictor organization (bimodal/hybrid/gshare)",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := PredictorAblationConfig{Seed: seed}
				if quick {
					cfg = QuickPredictorAblationConfig()
					cfg.Seed = seed
				}
				return RunPredictorAblation(cfg)
			},
		},
		{
			ID: "timingchannel", Artifact: "§8 (extension)",
			Description: "covert channel with PMC vs rdtscp-only probing",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := TimingChannelConfig{Seed: seed}
				if quick {
					cfg = QuickTimingChannelConfig()
					cfg.Seed = seed
				}
				return RunTimingChannel(cfg)
			},
		},
		{
			ID: "fsmwidth", Artifact: "§10.2 (extension)",
			Description: "counter-width ablation: do wider saturating counters stop the attack?",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := FSMWidthConfig{Seed: seed}
				if quick {
					cfg = QuickFSMWidthConfig()
					cfg.Seed = seed
				}
				return RunFSMWidth(cfg)
			},
		},
		{
			ID: "btb", Artifact: "§11 (baseline)",
			Description: "BranchScope vs the prior-work BTB eviction channel",
			Run: func(quick bool, seed uint64) fmt.Stringer {
				cfg := BTBBaselineConfig{Seed: seed}
				if quick {
					cfg = QuickBTBBaselineConfig()
					cfg.Seed = seed
				}
				return RunBTBBaseline(cfg)
			},
		},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// multiResult concatenates several results.
type multiResult []fmt.Stringer

// String implements fmt.Stringer.
func (m multiResult) String() string {
	out := ""
	for _, r := range m {
		out += r.String() + "\n"
	}
	return out
}
