package experiments

import (
	"context"
	"fmt"

	"branchscope/internal/engine"
)

// Experiment is a runnable paper artifact for the cmd/experiments
// harness.
type Experiment struct {
	// ID is the short name used on the command line ("fig2", "table2").
	ID string
	// Artifact names the paper table/figure or extension.
	Artifact string
	// Description summarizes what is measured.
	Description string
	// Run executes the experiment under the engine contract: the result
	// is a function of cfg alone, ctx carries cancellation and the
	// worker pool for internal fan-out.
	Run func(ctx context.Context, cfg engine.Config) (engine.Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{
			ID: "fig2", Artifact: "Figure 2",
			Description: "selection-logic learning curve for an irregular branch pattern",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := Fig2Config{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickFig2Config()
					cfg.Seed = ec.Seed
				}
				return RunFig2(ctx, cfg)
			},
		},
		{
			ID: "table1", Artifact: "Table 1",
			Description: "prime/target/probe FSM transitions on all three CPUs",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				return RunTable1All(ctx, ec.Seed)
			},
		},
		{
			ID: "fig4", Artifact: "Figure 4",
			Description: "distribution of PHT states after randomization blocks",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := Fig4Config{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickFig4Config()
					cfg.Seed = ec.Seed
				}
				return RunFig4(ctx, cfg)
			},
		},
		{
			ID: "fig5", Artifact: "Figure 5",
			Description: "PHT mapping and size discovery via Hamming windows",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := Fig5Config{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickFig5Config()
					cfg.Seed = ec.Seed
				}
				return RunFig5(ctx, cfg)
			},
		},
		{
			ID: "fig6", Artifact: "Figure 6",
			Description: "covert-channel decoding demonstration",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				return RunFig6(ctx, Fig6Config{Seed: ec.Seed})
			},
		},
		{
			ID: "table2", Artifact: "Table 2",
			Description: "covert-channel error rates: 3 CPUs x settings x patterns",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := Table2Config{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickTable2Config()
					cfg.Seed = ec.Seed
				}
				return RunTable2(ctx, cfg)
			},
		},
		{
			ID: "fig7", Artifact: "Figure 7",
			Description: "branch latency distributions, hit vs miss",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := Fig7Config{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickFig7Config()
					cfg.Seed = ec.Seed
				}
				return RunFig7(ctx, cfg)
			},
		},
		{
			ID: "fig8", Artifact: "Figure 8",
			Description: "timing-detection error vs number of measurements",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := Fig8Config{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickFig8Config()
					cfg.Seed = ec.Seed
				}
				return RunFig8(ctx, cfg)
			},
		},
		{
			ID: "fig9", Artifact: "Figure 9",
			Description: "probe latency by primed PHT state",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := Fig9Config{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickFig9Config()
					cfg.Seed = ec.Seed
				}
				return RunFig9(ctx, cfg)
			},
		},
		{
			ID: "table3", Artifact: "Table 3",
			Description: "covert channel with an SGX-enclave sender",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := Table3Config{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickTable3Config()
					cfg.Seed = ec.Seed
				}
				return RunTable3(ctx, cfg)
			},
		},
		{
			ID: "mitigations", Artifact: "§10.2 (extension)",
			Description: "covert-channel error under each proposed hardware defense",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := MitigationsConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickMitigationsConfig()
					cfg.Seed = ec.Seed
				}
				return RunMitigations(ctx, cfg)
			},
		},
		{
			ID: "montgomery", Artifact: "§9.2",
			Description: "Montgomery-ladder exponent recovery",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := MontgomeryConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickMontgomeryConfig()
					cfg.Seed = ec.Seed
				}
				return RunMontgomery(ctx, cfg)
			},
		},
		{
			ID: "jpeg", Artifact: "§9.2",
			Description: "libjpeg IDCT block-structure recovery",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := JPEGConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickJPEGConfig()
					cfg.Seed = ec.Seed
				}
				return RunJPEG(ctx, cfg)
			},
		},
		{
			ID: "aslr", Artifact: "§9.2",
			Description: "ASLR slide recovery via PHT collision scanning",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := ASLRConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickASLRConfig()
					cfg.Seed = ec.Seed
				}
				return RunASLR(ctx, cfg)
			},
		},
		{
			ID: "ifconversion", Artifact: "§10.1 (extension)",
			Description: "attack vs the if-converted (branchless) Montgomery ladder",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := IfConversionConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickIfConversionConfig()
					cfg.Seed = ec.Seed
				}
				return RunIfConversion(ctx, cfg)
			},
		},
		{
			ID: "poisoning", Artifact: "§1 (extension)",
			Description: "branch poisoning: forcing victim mispredictions on demand",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := PoisoningConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickPoisoningConfig()
					cfg.Seed = ec.Seed
				}
				return RunPoisoning(ctx, cfg)
			},
		},
		{
			ID: "detection", Artifact: "§10.2 (extension)",
			Description: "attack-footprint detector vs attacker and benign workloads",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := DetectionConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickDetectionConfig()
					cfg.Seed = ec.Seed
				}
				return RunDetection(ctx, cfg)
			},
		},
		{
			ID: "slidingwindow", Artifact: "§9.2 (extension)",
			Description: "partial key recovery from a sliding-window exponentiation",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := SlidingWindowConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickSlidingWindowConfig()
					cfg.Seed = ec.Seed
				}
				return RunSlidingWindow(ctx, cfg)
			},
		},
		{
			ID: "smt", Artifact: "§1 (extension)",
			Description: "cross-hyperthread covert channel without branch-granular control",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := SMTConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickSMTConfig()
					cfg.Seed = ec.Seed
				}
				return RunSMT(ctx, cfg)
			},
		},
		{
			ID: "predictors", Artifact: "§5 (extension)",
			Description: "covert error by predictor organization (bimodal/hybrid/gshare)",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := PredictorAblationConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickPredictorAblationConfig()
					cfg.Seed = ec.Seed
				}
				return RunPredictorAblation(ctx, cfg)
			},
		},
		{
			ID: "timingchannel", Artifact: "§8 (extension)",
			Description: "covert channel with PMC vs rdtscp-only probing",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := TimingChannelConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickTimingChannelConfig()
					cfg.Seed = ec.Seed
				}
				return RunTimingChannel(ctx, cfg)
			},
		},
		{
			ID: "fsmwidth", Artifact: "§10.2 (extension)",
			Description: "counter-width ablation: do wider saturating counters stop the attack?",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := FSMWidthConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickFSMWidthConfig()
					cfg.Seed = ec.Seed
				}
				return RunFSMWidth(ctx, cfg)
			},
		},
		{
			ID: "robustness", Artifact: "§7 (extension)",
			Description: "resilient vs naive attack loop under deterministic fault injection",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := RobustnessConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickRobustnessConfig()
					cfg.Seed = ec.Seed
				}
				return RunRobustness(ctx, cfg)
			},
		},
		{
			ID: "btb", Artifact: "§11 (baseline)",
			Description: "BranchScope vs the prior-work BTB eviction channel",
			Run: func(ctx context.Context, ec engine.Config) (engine.Result, error) {
				cfg := BTBBaselineConfig{Seed: ec.Seed}
				if ec.Quick {
					cfg = QuickBTBBaselineConfig()
					cfg.Seed = ec.Seed
				}
				return RunBTBBaseline(ctx, cfg)
			},
		},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// families groups experiment IDs by the subsystem they exercise: the
// circuit-breaker scope. A systematic fault (a broken predictor model,
// a broken covert harness) fails a whole family; the breaker skips the
// family's remaining tasks instead of burning the rest of the suite on
// it. IDs not listed here breaker-scope to themselves.
var families = map[string]string{
	"fig2": "bpu", "table1": "bpu",
	"fig4": "pht", "fig5": "pht",
	"fig6": "covert", "table2": "covert", "table3": "covert",
	"smt": "covert", "predictors": "covert", "timingchannel": "covert",
	"fsmwidth": "covert", "robustness": "covert",
	"mitigations": "defense", "poisoning": "defense", "detection": "defense",
	"fig7": "timing", "fig8": "timing", "fig9": "timing",
	"montgomery": "applications", "jpeg": "applications", "aslr": "applications",
	"ifconversion": "applications", "slidingwindow": "applications",
	"btb": "baseline",
}

// Tasks adapts a slice of experiments to engine tasks for the runner.
func Tasks(exps []Experiment) []engine.Task {
	tasks := make([]engine.Task, len(exps))
	for i, e := range exps {
		tasks[i] = engine.Task{
			ID:          e.ID,
			Artifact:    e.Artifact,
			Description: e.Description,
			Family:      families[e.ID],
			Run:         e.Run,
		}
	}
	return tasks
}
