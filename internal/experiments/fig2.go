package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchscope/internal/cpu"
	"branchscope/internal/engine"
	"branchscope/internal/rng"
	"branchscope/internal/uarch"
)

// Fig2Config parameterizes the §5.1 selection-logic experiment: a single
// branch executes an irregular (random) 10-bit outcome pattern, the
// pattern repeats 20 times, and the number of mispredictions per
// iteration is recorded via the PMC. A 1-level predictor cannot beat 50%
// on such a pattern; the 2-level predictor learns it, so the curve
// falling to ~0 traces the hybrid's migration from 1-level to 2-level
// prediction.
type Fig2Config struct {
	// PatternBits is the length of the random outcome pattern (10).
	PatternBits int
	// Iterations is how many times the pattern repeats (20).
	Iterations int
	// Trials is the number of independent runs averaged (fresh pattern
	// and fresh predictor state each).
	Trials int
	// Models defaults to the two CPUs of Figure 2 (i5-6200U Skylake and
	// i7-2600 Sandy Bridge).
	Models []uarch.Model
	Seed   uint64
}

func (c Fig2Config) withDefaults() Fig2Config {
	if c.PatternBits == 0 {
		c.PatternBits = 10
	}
	if c.Iterations == 0 {
		c.Iterations = 20
	}
	if c.Trials == 0 {
		c.Trials = 400
	}
	if c.Models == nil {
		c.Models = []uarch.Model{uarch.Skylake(), uarch.SandyBridge()}
	}
	return c
}

// QuickFig2Config returns a test-scale configuration.
func QuickFig2Config() Fig2Config { return Fig2Config{Trials: 60} }

// Fig2Series is one curve of Figure 2.
type Fig2Series struct {
	Model string
	Part  string
	// MeanMisses[i] is the average number of mispredictions during
	// iteration i+1 of the pattern.
	MeanMisses []float64
}

// Fig2Result holds both curves.
type Fig2Result struct {
	Config Fig2Config
	Series []Fig2Series
}

// RunFig2 regenerates Figure 2.
func RunFig2(ctx context.Context, cfg Fig2Config) (Fig2Result, error) {
	cfg = cfg.withDefaults()
	res := Fig2Result{Config: cfg}
	for mi, m := range cfg.Models {
		r := rng.New(cfg.Seed + uint64(mi)*977 + 1)
		sums := make([]float64, cfg.Iterations)
		for trial := 0; trial < cfg.Trials; trial++ {
			if err := ctx.Err(); err != nil {
				return Fig2Result{}, fmt.Errorf("experiments: fig2: %w", err)
			}
			core := m.NewCore(r.Uint64())
			hw := core.NewContext(1)
			pattern := r.Bits(cfg.PatternBits)
			const addr = 0x5000_1230
			for iter := 0; iter < cfg.Iterations; iter++ {
				before := hw.ReadPMC(cpu.BranchMisses)
				for _, taken := range pattern {
					hw.Branch(addr, taken)
				}
				sums[iter] += float64(hw.ReadPMC(cpu.BranchMisses) - before)
			}
		}
		s := Fig2Series{Model: m.Name, Part: m.Part, MeanMisses: sums}
		for i := range s.MeanMisses {
			s.MeanMisses[i] /= float64(cfg.Trials)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// LearningHorizon returns the first iteration (1-based) at which the
// series stays below one misprediction per pattern — the paper's "5–7
// repeats" observation.
func (s Fig2Series) LearningHorizon() int {
	for i, m := range s.MeanMisses {
		if m < 1 {
			return i + 1
		}
	}
	return len(s.MeanMisses) + 1
}

// String renders the two curves as an aligned table plus a sparkline-ish
// bar per iteration.
func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: average mispredictions per iteration of a %d-bit random pattern\n",
		r.Config.PatternBits)
	fmt.Fprintf(&b, "%-5s", "iter")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %12s", s.Part)
	}
	fmt.Fprintln(&b)
	for i := 0; i < r.Config.Iterations; i++ {
		fmt.Fprintf(&b, "%-5d", i+1)
		for _, s := range r.Series {
			fmt.Fprintf(&b, " %12.2f", s.MeanMisses[i])
		}
		fmt.Fprintln(&b)
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%s learns the pattern by iteration %d\n", s.Model, s.LearningHorizon())
	}
	return b.String()
}

// Rows implements engine.Result: one "point" row per (model, iteration)
// and one "summary" row per model with its learning horizon.
func (r Fig2Result) Rows() []engine.Row {
	var rows []engine.Row
	for _, s := range r.Series {
		for i, m := range s.MeanMisses {
			rows = append(rows, engine.Row{
				engine.F("kind", "point"),
				engine.F("model", s.Model),
				engine.F("iteration", i+1),
				engine.F("mean_misses", m),
			})
		}
		rows = append(rows, engine.Row{
			engine.F("kind", "summary"),
			engine.F("model", s.Model),
			engine.F("learning_horizon", s.LearningHorizon()),
		})
	}
	return rows
}
