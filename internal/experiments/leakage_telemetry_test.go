package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"branchscope/internal/leakage"
	"branchscope/internal/telemetry"
	"branchscope/internal/telemetry/promtext"
	"branchscope/internal/uarch"
)

// TestCovertLeakageReport checks the channel-quality numbers a clean
// covert cell reports: every transmitted bit lands in the confusion
// matrix, the naive path's BER equals the cell error rate (no Unknown
// bits to split), the signal populations carry one sample per episode,
// and the whole report round-trips deterministically.
func TestCovertLeakageReport(t *testing.T) {
	set, res := covertTelemetryRun(t, 7)
	lk := res.Leakage
	if lk.Schema != leakage.Schema {
		t.Errorf("schema = %q", lk.Schema)
	}
	if lk.Bits != 40 || lk.Unknown != 0 {
		t.Errorf("bits/unknown = %d/%d, want 40/0", lk.Bits, lk.Unknown)
	}
	if lk.BitErrorRate != res.ErrorRate {
		t.Errorf("BER %v != error rate %v on the naive path", lk.BitErrorRate, res.ErrorRate)
	}
	if lk.Windows != 1 {
		t.Errorf("windows = %d, want 1 (one run)", lk.Windows)
	}
	if n := lk.Signal[0].N + lk.Signal[1].N; n != 40 {
		t.Errorf("signal samples = %d, want one per episode (40)", n)
	}
	// A near-clean random-pattern channel must show close to 1
	// bit/branch of mutual information and capacity.
	if lk.MutualInformationBits < 0.5 || lk.CapacityBits < lk.MutualInformationBits-1e-9 {
		t.Errorf("MI/capacity = %v/%v", lk.MutualInformationBits, lk.CapacityBits)
	}

	// The gauges mirror the report.
	reg := set.Metrics
	if got := reg.Gauge("leakage.ber").Value(); got != lk.BitErrorRate {
		t.Errorf("leakage.ber gauge = %v, want %v", got, lk.BitErrorRate)
	}
	if got := reg.Counter("leakage.windows").Value(); got != 1 {
		t.Errorf("leakage.windows = %d, want 1", got)
	}
	for _, name := range []string{"leakage.window.ber_permille", "leakage.window.mi_millibits"} {
		if got := reg.Histogram(name, nil).Count(); got != 1 {
			t.Errorf("%s count = %d, want 1", name, got)
		}
	}
}

// TestLeakageScrapeGolden is the promtext golden for the leakage
// metric family, built from two hand-fed windows: a clean one and an
// all-Unknown (degenerate, MI exactly 0) one. The exposition must be
// byte-stable — it is the /leakage wire format.
func TestLeakageScrapeGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	set := telemetry.New(reg, nil)
	est := &leakage.Estimator{}

	clean := &leakage.Estimator{}
	for i := 0; i < 10; i++ {
		clean.Observe(i%2 == 0, i%2 == 0, true)
	}
	finishWindow(set, est, clean)

	unknown := &leakage.Estimator{}
	for i := 0; i < 10; i++ {
		unknown.Observe(i%2 == 0, false, false) // every read gave up
	}
	if r := unknown.Report(); r.MutualInformationBits != 0 || r.BitErrorRate != 0.5 {
		t.Fatalf("degenerate window report = %+v", r)
	}
	finishWindow(set, est, unknown)

	var buf bytes.Buffer
	if err := promtext.Write(&buf, reg.Snapshot().Filter("leakage.")); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if err := promtext.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("scrape fails lint: %v\n%s", err, body)
	}
	// Golden lines: the window counter, and the cumulative histogram
	// buckets the two windows land in. The clean window has BER 0 and
	// MI exactly 1000 millibits (inclusive last bound); the degenerate
	// window has BER 500 permille and MI 0.
	for _, want := range []string{
		"leakage_windows_total 2",
		`leakage_window_ber_permille_bucket{le="50"} 1`,   // clean: BER 0
		`leakage_window_ber_permille_bucket{le="500"} 2`,  // + degenerate at 500
		`leakage_window_mi_millibits_bucket{le="50"} 1`,   // degenerate: MI 0
		`leakage_window_mi_millibits_bucket{le="1000"} 2`, // + clean at 1000
		`leakage_window_mi_millibits_bucket{le="+Inf"} 2`,
		"leakage_window_mi_millibits_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
	// The merged estimator mirrors both windows.
	if r := est.Report(); r.Windows != 2 || r.Bits != 20 || r.Unknown != 10 {
		t.Errorf("merged report = %+v", r)
	}

	// Byte-stability: rebuilding the same registry renders identically.
	var again bytes.Buffer
	reg2 := telemetry.NewRegistry()
	set2 := telemetry.New(reg2, nil)
	est2 := &leakage.Estimator{}
	clean2 := &leakage.Estimator{}
	for i := 0; i < 10; i++ {
		clean2.Observe(i%2 == 0, i%2 == 0, true)
	}
	finishWindow(set2, est2, clean2)
	unknown2 := &leakage.Estimator{}
	for i := 0; i < 10; i++ {
		unknown2.Observe(i%2 == 0, false, false)
	}
	finishWindow(set2, est2, unknown2)
	if err := promtext.Write(&again, reg2.Snapshot().Filter("leakage.")); err != nil {
		t.Fatal(err)
	}
	if body != again.String() {
		t.Errorf("scrape not byte-stable:\n--- first\n%s--- second\n%s", body, again.String())
	}
}

// TestLeakageSnapshotWhileProbing exercises the concurrent surface
// under the race detector: while a covert run probes and publishes,
// scrape-style readers snapshot the registry, render promtext, and
// read/marshal the live introspection slot.
func TestLeakageSnapshotWhileProbing(t *testing.T) {
	set := telemetry.New(telemetry.NewRegistry(), nil)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var buf bytes.Buffer
			if err := promtext.Write(&buf, set.Metrics.Snapshot().Filter("leakage.")); err != nil {
				t.Errorf("concurrent scrape: %v", err)
				return
			}
			if snap := leakage.LatestIntrospection(); snap != nil {
				if _, err := json.Marshal(snap); err != nil {
					t.Errorf("concurrent introspection marshal: %v", err)
					return
				}
			}
			leakage.LatestReport()
		}
	}()

	_, err := RunCovert(context.Background(), CovertConfig{
		Model:     uarch.Skylake(),
		Setting:   Isolated,
		Pattern:   RandomBits,
		Bits:      30,
		Runs:      2,
		Seed:      11,
		Telemetry: set,
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
}
