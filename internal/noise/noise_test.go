package noise

import (
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

// observe digests everything a noise stream leaves architecturally
// visible on a machine: retired instruction mix, predictor outcomes and
// elapsed cycles.
func observe(ctx *cpu.Context) [4]uint64 {
	return [4]uint64{
		ctx.ReadPMC(cpu.Instructions),
		ctx.ReadPMC(cpu.BranchInstructions),
		ctx.ReadPMC(cpu.BranchMisses),
		ctx.ReadTSC(),
	}
}

// TestProcessZeroSpanFallback pins the documented default: span 0 is
// the 1 MiB region, not a degenerate single-address stream.
func TestProcessZeroSpanFallback(t *testing.T) {
	run := func(span uint64) [4]uint64 {
		sys := sched.NewSystem(uarch.SandyBridge(), 11)
		th := sys.Spawn("noise", Process(5, DefaultRegion, span))
		defer th.Kill()
		if !th.StepBranches(400) {
			t.Fatal("noise process terminated")
		}
		return observe(sys.NewProcess("spy"))
	}
	if got, want := run(0), run(1<<20); got != want {
		t.Errorf("span 0 stream %v differs from the 1 MiB default %v", got, want)
	}
}

func TestNewBurstZeroSpanFallback(t *testing.T) {
	run := func(span uint64) [4]uint64 {
		sys := sched.NewSystem(uarch.SandyBridge(), 12)
		ctx := sys.NewProcess("noisy")
		NewBurst(9, DefaultRegion, span).Run(ctx, 500)
		return observe(ctx)
	}
	if got, want := run(0), run(1<<20); got != want {
		t.Errorf("span 0 burst %v differs from the 1 MiB default %v", got, want)
	}
}

// TestBurstStreamContinuity pins the Burst contract: repeated bursts
// continue one stream, so two Run(n) calls leave an identically-seeded
// machine in exactly the state one Run(2n) does.
func TestBurstStreamContinuity(t *testing.T) {
	split := func(chunks ...int) [4]uint64 {
		sys := sched.NewSystem(uarch.SandyBridge(), 13)
		ctx := sys.NewProcess("noisy")
		b := NewBurst(21, DefaultRegion, 1<<18)
		for _, n := range chunks {
			b.Run(ctx, n)
		}
		return observe(ctx)
	}
	whole := split(600)
	if got := split(300, 300); got != whole {
		t.Errorf("Run(300)+Run(300) state %v differs from Run(600) %v", got, whole)
	}
	if got := split(1, 599); got != whole {
		t.Errorf("Run(1)+Run(599) state %v differs from Run(600) %v", got, whole)
	}
	// A second Burst with the same seed on a fresh machine replays the
	// identical stream — but a fresh Burst mid-run must not restart it.
	sys := sched.NewSystem(uarch.SandyBridge(), 13)
	ctx := sys.NewProcess("noisy")
	NewBurst(21, DefaultRegion, 1<<18).Run(ctx, 300)
	NewBurst(21, DefaultRegion, 1<<18).Run(ctx, 300)
	if got := observe(ctx); got == whole {
		t.Error("two fresh Bursts matched one continuous stream: Run is not stateful")
	}
}
