// Package noise generates the background system activity of the paper's
// experimental settings (§7): other processes and kernel work sharing the
// physical core with the attacker and the victim, whose branches
// occasionally alias with the attacker's target PHT entry and perturb the
// channel.
//
// A noise process is an endless stream of branches with random addresses
// and random directions. Its intensity (how many of its instructions run
// per attack episode) is the knob that distinguishes the "isolated core"
// setting from the unrestricted one; the per-model values live in
// internal/uarch.
package noise

import (
	"branchscope/internal/cpu"
	"branchscope/internal/rng"
)

// DefaultRegion is the virtual address base used for noise code when the
// caller has no preference. It deliberately overlaps nothing the example
// attacks use, so all interference goes through table aliasing, as on
// real hardware.
const DefaultRegion uint64 = 0x7f00_0000_0000

// Process returns a never-terminating process function that executes
// random branches at addresses in [base, base+span). Roughly one in eight
// instructions is a non-branch, mimicking branch-dense system code.
// Run it via sched.Spawn and step it between attack phases.
func Process(seed uint64, base uint64, span uint64) func(*cpu.Context) {
	if span == 0 {
		span = 1 << 20
	}
	return func(ctx *cpu.Context) {
		r := rng.New(seed)
		for {
			addr := base + r.Uint64n(span)
			if r.Intn(8) == 0 {
				ctx.Nop(addr)
				continue
			}
			ctx.Branch(addr, r.Bool())
		}
	}
}

// Burst executes n instructions of noise directly on ctx (for harnesses
// that do not want a separate thread). It uses its own generator so
// repeated bursts continue the same stream.
type Burst struct {
	r    *rng.Source
	base uint64
	span uint64
}

// NewBurst creates a direct-execution noise source.
func NewBurst(seed uint64, base uint64, span uint64) *Burst {
	if span == 0 {
		span = 1 << 20
	}
	return &Burst{r: rng.New(seed), base: base, span: span}
}

// Run executes n noise instructions on ctx.
func (b *Burst) Run(ctx *cpu.Context, n int) {
	for i := 0; i < n; i++ {
		addr := b.base + b.r.Uint64n(b.span)
		if b.r.Intn(8) == 0 {
			ctx.Nop(addr)
			continue
		}
		ctx.Branch(addr, b.r.Bool())
	}
}
