// Package stats provides the small statistical toolkit used by the
// experiment harness: moments, histograms, Hamming distances (for the PHT
// size discovery of §6.3), error rates and frequency tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when fewer
// than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanUint64 returns the mean of unsigned samples as a float64.
func MeanUint64(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// StdDevUint64 returns the population standard deviation of unsigned
// samples.
func StdDevUint64(xs []uint64) float64 {
	if len(xs) < 2 {
		return 0
	}
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return StdDev(fs)
}

// Median returns the median of xs (the mean of the two central elements
// for even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MedianUint64 returns the median of unsigned samples. Detectors prefer
// it over the mean because heavy-tailed timing noise (interrupt spikes)
// inflates means without moving typical samples.
func MedianUint64(xs []uint64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Median(fs)
}

// ErrorRate returns the fraction of positions where got differs from want.
// It panics if the slices have different lengths, since comparing
// misaligned bit streams silently would corrupt every experiment using it.
func ErrorRate(got, want []bool) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("stats: ErrorRate length mismatch: %d vs %d", len(got), len(want)))
	}
	if len(got) == 0 {
		return 0
	}
	errs := 0
	for i := range got {
		if got[i] != want[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(got))
}

// Hamming returns the number of positions at which a and b differ. It
// panics on length mismatch.
func Hamming[T comparable](a, b []T) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Hamming length mismatch: %d vs %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// Freq counts occurrences of each value in xs.
func Freq[T comparable](xs []T) map[T]int {
	m := make(map[T]int)
	for _, x := range xs {
		m[x]++
	}
	return m
}

// Mode returns the most frequent value in xs and its share of the total.
// For an empty slice it returns the zero value and 0. Ties are broken
// arbitrarily but deterministically for a given iteration order of counts,
// so callers that care should inspect Freq directly.
func Mode[T comparable](xs []T) (T, float64) {
	var best T
	if len(xs) == 0 {
		return best, 0
	}
	counts := Freq(xs)
	bestN := -1
	for v, n := range counts {
		if n > bestN {
			best, bestN = v, n
		}
	}
	return best, float64(bestN) / float64(len(xs))
}

// Histogram is a fixed-bin histogram over float64 samples.
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under and Over count samples falling outside [Min, Max).
	Under, Over int
	total       int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [min, max). It panics on a degenerate range or bin count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic("stats: degenerate histogram")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard FP edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range
// ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Summary holds the first two moments of a sample set, convenient for
// rendering "mean ± stddev" rows.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// SummarizeUint64 computes a Summary of unsigned samples.
func SummarizeUint64(xs []uint64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary as "mean ± stddev (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f (n=%d)", s.Mean, s.StdDev, s.N)
}

// Percent formats a ratio as a percentage with two decimals, the format
// used by the paper's error-rate tables.
func Percent(r float64) string {
	return fmt.Sprintf("%.2f%%", 100*r)
}
