package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); !almost(got, 2) {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almost(got, 2.5) {
		t.Errorf("Median even = %v", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestErrorRate(t *testing.T) {
	got := ErrorRate([]bool{true, false, true, true}, []bool{true, true, true, false})
	if !almost(got, 0.5) {
		t.Errorf("ErrorRate = %v, want 0.5", got)
	}
	if got := ErrorRate(nil, nil); got != 0 {
		t.Errorf("ErrorRate(nil) = %v", got)
	}
}

func TestErrorRatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	ErrorRate([]bool{true}, []bool{true, false})
}

func TestHamming(t *testing.T) {
	if got := Hamming([]int{1, 2, 3}, []int{1, 0, 3}); got != 1 {
		t.Errorf("Hamming = %d, want 1", got)
	}
	if got := Hamming([]string{"a"}, []string{"a"}); got != 0 {
		t.Errorf("Hamming equal = %d", got)
	}
}

func TestModeAndFreq(t *testing.T) {
	xs := []string{"MM", "MH", "MM", "MM", "HH"}
	v, share := Mode(xs)
	if v != "MM" || !almost(share, 0.6) {
		t.Errorf("Mode = %q %v", v, share)
	}
	f := Freq(xs)
	if f["MM"] != 3 || f["MH"] != 1 || f["HH"] != 1 {
		t.Errorf("Freq = %v", f)
	}
	var empty []int
	if _, share := Mode(empty); share != 0 {
		t.Errorf("Mode(empty) share = %v", share)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.BinCenter(0); !almost(got, 1) {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Min, 1) || !almost(s.Max, 3) {
		t.Errorf("Summarize = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("Summarize(nil).N != 0")
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	su := SummarizeUint64([]uint64{10, 20})
	if !almost(su.Mean, 15) {
		t.Errorf("SummarizeUint64 mean = %v", su.Mean)
	}
}

func TestMeanStdDevUint64(t *testing.T) {
	if got := MeanUint64([]uint64{2, 4}); !almost(got, 3) {
		t.Errorf("MeanUint64 = %v", got)
	}
	if got := MeanUint64(nil); got != 0 {
		t.Errorf("MeanUint64(nil) = %v", got)
	}
	if got := StdDevUint64([]uint64{7}); got != 0 {
		t.Errorf("StdDevUint64 single = %v", got)
	}
	if got := StdDevUint64([]uint64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 2) {
		t.Errorf("StdDevUint64 = %v", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.0046); got != "0.46%" {
		t.Errorf("Percent = %q", got)
	}
}

// Property: Hamming distance is a metric on equal-length slices —
// symmetric, zero iff equal, bounded by length.
func TestQuickHammingMetric(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		d1, d2 := Hamming(a, b), Hamming(b, a)
		if d1 != d2 || d1 < 0 || d1 > n {
			return false
		}
		if d1 == 0 {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return Hamming(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ErrorRate is within [0,1] and equals Hamming/len.
func TestQuickErrorRate(t *testing.T) {
	f := func(a, b []bool) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		r := ErrorRate(a, b)
		if r < 0 || r > 1 {
			return false
		}
		if n == 0 {
			return r == 0
		}
		return almost(r, float64(Hamming(a, b))/float64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
