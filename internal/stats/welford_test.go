package stats

import (
	"math"
	"testing"
)

func within(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// TestWelfordMatchesSummarize pins the contract that lets Welford
// replace the buffer-then-Summarize pattern: identical N, mean,
// population stddev, min and max on the same samples.
func TestWelfordMatchesSummarize(t *testing.T) {
	xs := []float64{64, 65, 80, 210, 64, 66, 190, 64, 1 << 20, 67}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	want := Summarize(xs)
	got := w.Summary()
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("Welford summary %+v, want %+v", got, want)
	}
	if !within(got.Mean, want.Mean, 1e-9*want.Mean) {
		t.Errorf("mean %v, want %v", got.Mean, want.Mean)
	}
	if !within(got.StdDev, want.StdDev, 1e-6) {
		t.Errorf("stddev %v, want %v", got.StdDev, want.StdDev)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if s := w.Summary(); s.N != 0 || s.Mean != 0 || s.StdDev != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty accumulator summary = %+v", s)
	}
	w.Add(42)
	if s := w.Summary(); s.N != 1 || s.Mean != 42 || s.StdDev != 0 || s.Min != 42 || s.Max != 42 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

// TestWelfordMerge: merging split halves equals accumulating the whole
// stream, the property the per-window → per-cell rollup relies on.
func TestWelfordMerge(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	var whole, a, b Welford
	for i, x := range xs {
		whole.Add(x)
		if i < len(xs)/2 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged N/min/max = %d/%v/%v, want %d/%v/%v",
			a.N(), a.Min(), a.Max(), whole.N(), whole.Min(), whole.Max())
	}
	if !within(a.Mean(), whole.Mean(), 1e-12) || !within(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged mean/var = %v/%v, want %v/%v", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	// Merging into an empty accumulator copies; merging an empty one is
	// a no-op.
	var empty Welford
	empty.Merge(whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Error("merge into empty lost the source")
	}
	before := whole
	whole.Merge(Welford{})
	if whole != before {
		t.Error("merging an empty accumulator changed state")
	}
}

func TestEntropyBits(t *testing.T) {
	cases := []struct {
		ps   []float64
		want float64
	}{
		{[]float64{0.5, 0.5}, 1},
		{[]float64{1, 0}, 0},
		{[]float64{0, 0, 1}, 0},
		{[]float64{0.25, 0.25, 0.25, 0.25}, 2},
		{nil, 0},
		{[]float64{0.5, 0.5, 0, -1e-18}, 1}, // FP slop must not yield NaN
	}
	for _, c := range cases {
		if got := EntropyBits(c.ps...); !within(got, c.want, 1e-12) {
			t.Errorf("EntropyBits(%v) = %v, want %v", c.ps, got, c.want)
		}
	}
}
