package stats

import "math"

// Welford is a streaming first-two-moments accumulator (Welford's
// online algorithm): mean and variance without buffering the samples,
// numerically stable against the catastrophic cancellation a naive
// sum-of-squares accumulator suffers on large cycle counts. The zero
// value is an empty accumulator ready for Add.
//
// It replaces the buffer-then-Summarize pattern in sample loops whose
// populations are large (the Figure 7/9 latency characterizations
// collect 10^5 samples per case) and backs the leakage estimators,
// which must run online per attack window.
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w (Chan et al.'s parallel
// variant), so per-window accumulators combine into per-cell ones.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := float64(w.n + o.n)
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/n
	w.mean += d * float64(o.n) / n
	w.n += o.n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the number of samples recorded.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, matching StdDev's
// convention (0 with fewer than two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample (0 when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample (0 when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Summary renders the accumulator in the Summarize shape, so streaming
// call sites keep the same reporting types as buffering ones.
func (w *Welford) Summary() Summary {
	return Summary{
		N:      int(w.n),
		Mean:   w.Mean(),
		StdDev: w.StdDev(),
		Min:    w.Min(),
		Max:    w.Max(),
	}
}

// EntropyBits returns the Shannon entropy, in bits, of a distribution
// given as probabilities. Zero (and negative, from floating-point
// slop) terms contribute nothing — the 0·log 0 = 0 convention — so
// degenerate channels (an all-Unknown window, a constant pattern)
// yield exact zeros instead of NaN.
func EntropyBits(ps ...float64) float64 {
	h := 0.0
	for _, p := range ps {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}
