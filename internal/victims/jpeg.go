package victims

import (
	"math"

	"branchscope/internal/cpu"
)

// IDCT victim (§9.2): JPEG decompression applies an inverse discrete
// cosine transform to 8×8 coefficient blocks. libjpeg's jpeg_idct_islow
// checks each column of the coefficient matrix for all-zero AC terms and,
// when the check passes, replaces the column transform with a trivial
// DC-only fill. Each check compiles to an individual conditional branch,
// so the sequence of branch directions reveals which columns (and, in the
// row pass, rows) carry non-zero coefficients — the relative complexity
// of the decoded pixel block. BranchScope recovers exactly these
// directions; prior work could only count page faults (§9.2).

// ColumnCheckAddr returns the virtual address of the all-AC-zero check
// branch for column c (the column loop is unrolled in the optimized
// decoder, giving each check its own address).
func ColumnCheckAddr(c int) uint64 {
	return 0x0042_1000 + uint64(c)*0x20
}

// RowCheckAddr returns the virtual address of the all-AC-zero check
// branch for row r of the second pass.
func RowCheckAddr(r int) uint64 {
	return 0x0042_2000 + uint64(r)*0x20
}

// Block is an 8×8 JPEG coefficient block in natural (row-major) order.
type Block [8][8]int32

// ColumnACZero reports whether column c has no non-zero AC coefficients
// (rows 1..7) — the ground truth for the column-check branch.
func (b *Block) ColumnACZero(c int) bool {
	for r := 1; r < 8; r++ {
		if b[r][c] != 0 {
			return false
		}
	}
	return true
}

// RowACZero reports whether row r of the intermediate matrix would be
// DC-only. For the victim model the check is applied to the input block's
// rows, matching the structure (one branch per row) rather than the exact
// intermediate values of libjpeg's fixed-point pipeline.
func (b *Block) RowACZero(r int) bool {
	for c := 1; c < 8; c++ {
		if b[r][c] != 0 {
			return false
		}
	}
	return true
}

// idctCost approximates the per-column/row instruction cost of the full
// transform versus the shortcut.
const (
	idctFullCost     = 60
	idctShortcutCost = 10
)

// IDCT performs the inverse DCT of one block on ctx, executing the
// column- and row-check branches the way the optimized decoder does
// (branch taken = shortcut applies = all AC terms zero), and returns the
// spatial-domain result computed with the separable float kernel.
func IDCT(ctx *cpu.Context, b *Block) *[8][8]float64 {
	var tmp [8][8]float64 // after column pass: tmp[r][c]
	// Column pass.
	for c := 0; c < 8; c++ {
		zero := b.ColumnACZero(c)
		ctx.Branch(ColumnCheckAddr(c), zero)
		if zero {
			// DC-only shortcut: constant column.
			v := idct1Point(float64(b[0][c]))
			for r := 0; r < 8; r++ {
				tmp[r][c] = v
			}
			ctx.Work(idctShortcutCost)
			continue
		}
		var col [8]float64
		for r := 0; r < 8; r++ {
			col[r] = float64(b[r][c])
		}
		out := idct1D(col)
		for r := 0; r < 8; r++ {
			tmp[r][c] = out[r]
		}
		ctx.Work(idctFullCost)
	}
	// Row pass.
	var px [8][8]float64
	for r := 0; r < 8; r++ {
		zero := b.RowACZero(r)
		ctx.Branch(RowCheckAddr(r), zero)
		out := idct1D(tmp[r])
		px[r] = out
		if zero {
			ctx.Work(idctShortcutCost)
		} else {
			ctx.Work(idctFullCost)
		}
	}
	return &px
}

// idct1D is the exact 8-point inverse DCT-II (orthonormal scaling).
func idct1D(in [8]float64) [8]float64 {
	var out [8]float64
	for x := 0; x < 8; x++ {
		sum := 0.0
		for u := 0; u < 8; u++ {
			cu := 1.0
			if u == 0 {
				cu = 1 / math.Sqrt2
			}
			sum += cu * in[u] * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16)
		}
		out[x] = sum / 2
	}
	return out
}

// idct1Point is the DC-only shortcut value: the inverse transform of a
// vector whose AC terms are all zero is constant.
func idct1Point(dc float64) float64 {
	return dc / (2 * math.Sqrt2)
}

// FDCT computes the forward 8×8 DCT of spatial samples — used by tests to
// round-trip the victim's transform.
func FDCT(px *[8][8]float64) *Block {
	var freq [8][8]float64
	// Column pass then row pass of the 1-D forward transform.
	for c := 0; c < 8; c++ {
		var col [8]float64
		for r := 0; r < 8; r++ {
			col[r] = px[r][c]
		}
		out := fdct1D(col)
		for r := 0; r < 8; r++ {
			freq[r][c] = out[r]
		}
	}
	var b Block
	for r := 0; r < 8; r++ {
		out := fdct1D(freq[r])
		for c := 0; c < 8; c++ {
			b[r][c] = int32(math.Round(out[c]))
		}
	}
	return &b
}

func fdct1D(in [8]float64) [8]float64 {
	var out [8]float64
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		sum := 0.0
		for x := 0; x < 8; x++ {
			sum += in[x] * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16)
		}
		out[u] = cu * sum / 2
	}
	return out
}

// IDCTProcess decodes a stream of blocks forever (a decoder service),
// appending results through out when non-nil.
func IDCTProcess(blocks []Block, out *[]*[8][8]float64) func(*cpu.Context) {
	return func(ctx *cpu.Context) {
		for {
			for i := range blocks {
				r := IDCT(ctx, &blocks[i])
				if out != nil {
					*out = append(*out, r)
				}
			}
		}
	}
}
