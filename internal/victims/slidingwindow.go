package victims

import (
	"math/big"

	"branchscope/internal/cpu"
)

// Sliding-window modular exponentiation — the victim behind §9.2's remark
// that "most recent versions of cryptographic libraries do not contain
// branches with outcomes dependent directly on the bits of a secret key,
// [but] often some limited information can still be recovered", citing
// the left-to-right sliding-window analyses. The scan loop branches on
// "is the current exponent bit zero": zeros are squared away one at a
// time, a set bit opens a width-w window that is consumed in one
// multiply. The branch *directions* therefore reveal the square/multiply
// skeleton: every position handled by the zero path is a known 0, every
// window start is a known 1, and only the w-1 bits inside each window
// stay hidden.

// WindowScanBranchAddr is the address of the per-position zero-check
// branch (taken when the bit is zero).
const WindowScanBranchAddr uint64 = 0x0041_5520

// SlidingWindowWidth is the window size w used by the victim.
const SlidingWindowWidth = 4

// SlidingWindowExp computes base^exp mod m with a left-to-right
// sliding-window exponentiation, executing the scan branch once per scan
// step on ctx.
func SlidingWindowExp(ctx *cpu.Context, base, exp, m *big.Int) *big.Int {
	if m.Sign() == 0 {
		panic("victims: zero modulus")
	}
	result := big.NewInt(1)
	if exp.Sign() == 0 {
		return result
	}
	// Precompute odd powers base^1, base^3, ..., base^(2^w - 1).
	b := new(big.Int).Mod(base, m)
	b2 := new(big.Int).Mul(b, b)
	b2.Mod(b2, m)
	odd := make([]*big.Int, 1<<(SlidingWindowWidth-1))
	odd[0] = new(big.Int).Set(b)
	for i := 1; i < len(odd); i++ {
		odd[i] = new(big.Int).Mul(odd[i-1], b2)
		odd[i].Mod(odd[i], m)
	}
	ctx.Work(uint64(len(odd)) * mulModCost)

	i := exp.BitLen() - 1
	for i >= 0 {
		zero := exp.Bit(i) == 0
		ctx.Branch(WindowScanBranchAddr, zero)
		if zero {
			result.Mul(result, result).Mod(result, m)
			ctx.Work(mulModCost)
			i--
			continue
		}
		// Open a window: take up to w bits ending in a set bit.
		l := SlidingWindowWidth
		if i+1 < l {
			l = i + 1
		}
		for exp.Bit(i-l+1) == 0 { // shrink to an odd window value
			l--
		}
		window := 0
		for k := 0; k < l; k++ {
			window = window<<1 | int(exp.Bit(i-k))
		}
		for k := 0; k < l; k++ {
			result.Mul(result, result).Mod(result, m)
		}
		result.Mul(result, odd[(window-1)/2]).Mod(result, m)
		ctx.Work(uint64(l+1) * mulModCost)
		i -= l
	}
	return result
}

// SlidingWindowProcess wraps the exponentiation as a looping service.
func SlidingWindowProcess(base, exp, m *big.Int, out *[]*big.Int) func(*cpu.Context) {
	return func(ctx *cpu.Context) {
		for {
			r := SlidingWindowExp(ctx, base, exp, m)
			if out != nil {
				*out = append(*out, r)
			}
		}
	}
}

// SlidingWindowSkeleton returns the scan-branch direction sequence the
// exponentiation executes (true = zero path) and, per scan step, how many
// exponent positions it consumes — the ground truth for the attack.
func SlidingWindowSkeleton(exp *big.Int) (zeros []bool, consumed []int) {
	i := exp.BitLen() - 1
	for i >= 0 {
		zero := exp.Bit(i) == 0
		zeros = append(zeros, zero)
		if zero {
			consumed = append(consumed, 1)
			i--
			continue
		}
		l := SlidingWindowWidth
		if i+1 < l {
			l = i + 1
		}
		for exp.Bit(i-l+1) == 0 {
			l--
		}
		consumed = append(consumed, l)
		i -= l
	}
	return zeros, consumed
}
