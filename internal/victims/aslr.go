package victims

import "branchscope/internal/cpu"

// ASLR victim (§9.2): address space layout randomization loads the
// victim's code at a secret base, so the attacker does not know where the
// interesting branch lives. BranchScope recovers the location by scanning
// candidate addresses for PHT collisions with the victim's branch — the
// same derandomization idea previously demonstrated with the BTB, which
// §9.2 notes no longer works on recent parts.

// ASLRVictim is a process with one heavily biased branch at a randomized
// secret address.
type ASLRVictim struct {
	// SecretAddr is the randomized branch address the attacker wants.
	SecretAddr uint64
}

// NewASLRVictim places the victim branch at slide+offset. In a real
// loader the slide is page-aligned with limited entropy; the attacker
// scans the possible slide values.
func NewASLRVictim(slide, offset uint64) *ASLRVictim {
	return &ASLRVictim{SecretAddr: slide + offset}
}

// Process returns the victim's main loop: it executes its branch,
// always taken (a loop back-edge), forever.
func (v *ASLRVictim) Process() func(*cpu.Context) {
	return func(ctx *cpu.Context) {
		for {
			ctx.Work(5)
			ctx.Branch(v.SecretAddr, true)
		}
	}
}

// MultiBranchASLRProcess is a victim binary with several known branch
// sites: each loop iteration executes one always-taken branch at
// slide+offset for every offset. The offsets are knowable from the binary
// (the attacker has a copy); the slide is the ASLR secret.
func MultiBranchASLRProcess(slide uint64, offsets []uint64) func(*cpu.Context) {
	return func(ctx *cpu.Context) {
		for {
			for _, off := range offsets {
				ctx.Work(3)
				ctx.Branch(slide+off, true)
			}
		}
	}
}
