// Package victims implements the victim programs BranchScope is
// demonstrated against: the secret-bit-array trojan of the covert-channel
// benchmark (§7, Listing 2), the Montgomery-ladder modular exponentiation
// of §9.2, a libjpeg-style inverse DCT with zero-skip branches (§9.2),
// and an ASLR victim whose branch location is the secret.
//
// Victims are ordinary computations instrumented at their conditional
// branch points: each secret-dependent comparison executes one simulated
// conditional branch at a fixed virtual address, exactly as the compiled
// x86 code would. The computations themselves are real — the Montgomery
// ladder really exponentiates, the IDCT really transforms — so the leaked
// branch streams have the true secret-dependent structure.
package victims

import "branchscope/internal/cpu"

// SecretBranchAddr is the virtual address of the Listing 2 victim branch
// (the `je 0x30006d` of the disassembly, placed in the victim_f
// neighbourhood).
const SecretBranchAddr uint64 = 0x0040_06d0

// SecretArraySender returns the Listing 2 victim: a process that walks a
// secret bit array and, for each bit, executes a conditional branch whose
// direction is the bit (taken = 1 under this package's convention; the
// paper's je-on-zero inversion is a compiler artifact with no bearing on
// the channel). The few NOPs of the taken path are modelled as Work.
func SecretArraySender(secret []bool, branchAddr uint64) func(*cpu.Context) {
	if branchAddr == 0 {
		branchAddr = SecretBranchAddr
	}
	return func(ctx *cpu.Context) {
		for _, bit := range secret {
			ctx.Work(3) // load sec_data[i], test
			ctx.Branch(branchAddr, bit)
			if bit {
				ctx.Work(2) // nop; nop
			}
			ctx.Work(1) // i++
		}
	}
}

// LoopingSecretArraySender is SecretArraySender restarted forever, for
// experiments that transmit more episodes than the array holds (the
// receiver tracks position modulo len(secret)).
func LoopingSecretArraySender(secret []bool, branchAddr uint64) func(*cpu.Context) {
	inner := SecretArraySender(secret, branchAddr)
	return func(ctx *cpu.Context) {
		for {
			inner(ctx)
		}
	}
}

// HeldBitSender is the retransmission-capable variant of the Listing 2
// sender: it transmits secret[*pos % len(secret)] over and over — one
// secret-dependent branch per iteration, same per-iteration shape as
// SecretArraySender — until the controlling harness advances *pos. A
// resilient receiver may spend several episodes (retries) deciding one
// bit and moves the cursor only once decided; the plain looping sender
// would desynchronize after the first retry. The strict scheduler
// handoff orders the harness's *pos writes before the sender's reads,
// so sharing the cursor is race-free by construction.
func HeldBitSender(secret []bool, branchAddr uint64, pos *int) func(*cpu.Context) {
	if branchAddr == 0 {
		branchAddr = SecretBranchAddr
	}
	return func(ctx *cpu.Context) {
		for {
			bit := secret[*pos%len(secret)]
			ctx.Work(3) // load sec_data[*pos], test
			ctx.Branch(branchAddr, bit)
			if bit {
				ctx.Work(2) // nop; nop
			}
			ctx.Work(1) // re-check cursor
		}
	}
}

// PacedIteration is the fixed instruction count of one PacedSender
// iteration.
const PacedIteration = 8

// PacedSender is the cross-hyperthread covert-channel sender (§1: the
// attack "can be performed across hyperthreaded cores", where the spy has
// no branch-granular control over the sibling context's scheduling). The
// sender cooperates — it is the attacker's own trojan — by self-clocking:
// each bit is transmitted for `repeats` iterations of exactly
// PacedIteration instructions regardless of the bit value, so the
// receiver can sample on a pure time base. It loops over the secret
// forever.
func PacedSender(secret []bool, branchAddr uint64, repeats int) func(*cpu.Context) {
	if branchAddr == 0 {
		branchAddr = SecretBranchAddr
	}
	if repeats < 1 {
		repeats = 1
	}
	return func(ctx *cpu.Context) {
		for {
			for _, bit := range secret {
				for r := 0; r < repeats; r++ {
					ctx.Work(4)
					ctx.Branch(branchAddr, bit)
					ctx.Work(3) // padding equalizes both paths
				}
			}
		}
	}
}
