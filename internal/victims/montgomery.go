package victims

import (
	"math/big"

	"branchscope/internal/cpu"
)

// LadderBranchAddr is the virtual address of the Montgomery ladder's
// key-bit branch — the single secret-dependent conditional branch of the
// algorithm (§9.2: "it requires a branch operating with direct dependency
// from the value of k_i").
const LadderBranchAddr uint64 = 0x0041_2340

// mulModCost approximates the instruction count of one modular
// multiplication at the modelled operand size; it paces the simulated
// execution (the big.Int arithmetic itself runs natively).
const mulModCost = 400

// MontgomeryLadder computes base^exp mod m with the Montgomery powering
// ladder, executing one conditional branch per exponent bit on ctx at
// LadderBranchAddr, taken when the bit is 1. Both ladder legs perform a
// multiplication and a squaring regardless of the bit — the
// constant-work property that defeats pure timing attacks — but the
// branch direction itself is what BranchScope steals.
//
// Bits are processed most-significant first, skipping the implicit
// leading 1, which matches the classic ladder and means the attack
// recovers exp.BitLen()-1 bits.
func MontgomeryLadder(ctx *cpu.Context, base, exp, m *big.Int) *big.Int {
	if m.Sign() == 0 {
		panic("victims: zero modulus")
	}
	r0 := new(big.Int).Mod(base, m) // R0 = base
	r1 := new(big.Int).Mul(r0, r0)  // R1 = base^2
	r1.Mod(r1, m)
	if exp.Sign() == 0 {
		return big.NewInt(1)
	}
	for i := exp.BitLen() - 2; i >= 0; i-- {
		bit := exp.Bit(i) == 1
		ctx.Branch(LadderBranchAddr, bit)
		if bit {
			// R0 = R0*R1; R1 = R1^2
			r0.Mul(r0, r1).Mod(r0, m)
			r1.Mul(r1, r1).Mod(r1, m)
		} else {
			// R1 = R0*R1; R0 = R0^2
			r1.Mul(r1, r0).Mod(r1, m)
			r0.Mul(r0, r0).Mod(r0, m)
		}
		ctx.Work(2 * mulModCost)
	}
	return r0
}

// MontgomeryLadderBranchless computes the same exponentiation with the
// §10.1 if-conversion mitigation applied: the key-bit branch is replaced
// by a pair of conditional swaps (cswap), compiled to cmov-style
// conditional moves that create no conditional branch instruction. The
// simulated instruction stream therefore contains nothing for
// BranchScope to prime or probe. The arithmetic schedule is fixed:
//
//	cswap(b, R0, R1); R1 = R0*R1; R0 = R0²; cswap(b, R0, R1)
//
// which is algebraically the classic ladder for both bit values.
func MontgomeryLadderBranchless(ctx *cpu.Context, base, exp, m *big.Int) *big.Int {
	if m.Sign() == 0 {
		panic("victims: zero modulus")
	}
	r0 := new(big.Int).Mod(base, m)
	r1 := new(big.Int).Mul(r0, r0)
	r1.Mod(r1, m)
	if exp.Sign() == 0 {
		return big.NewInt(1)
	}
	for i := exp.BitLen() - 2; i >= 0; i-- {
		bit := exp.Bit(i) == 1
		// The two cswaps and the multiply/square pair execute as
		// straight-line code: Work models the cmov sequence plus the
		// arithmetic; no conditional branch reaches the predictor.
		if bit { // models cswap (data dependency, not control)
			r0, r1 = r1, r0
		}
		r1.Mul(r0, r1).Mod(r1, m)
		r0.Mul(r0, r0).Mod(r0, m)
		if bit { // second cswap
			r0, r1 = r1, r0
		}
		ctx.Work(2*mulModCost + 8)
	}
	return r0
}

// BranchlessMontgomeryProcess wraps the if-converted ladder as a looping
// service, like MontgomeryProcess.
func BranchlessMontgomeryProcess(base, exp, m *big.Int, out *[]*big.Int) func(*cpu.Context) {
	return func(ctx *cpu.Context) {
		for {
			r := MontgomeryLadderBranchless(ctx, base, exp, m)
			if out != nil {
				*out = append(*out, r)
			}
		}
	}
}

// MontgomeryProcess wraps MontgomeryLadder as a spawnable process,
// storing the result through out when done. It loops the exponentiation
// forever (a decryption service handling repeated requests), so the
// attacker can trigger as many traces as it needs.
func MontgomeryProcess(base, exp, m *big.Int, out *[]*big.Int) func(*cpu.Context) {
	return func(ctx *cpu.Context) {
		for {
			r := MontgomeryLadder(ctx, base, exp, m)
			if out != nil {
				*out = append(*out, r)
			}
		}
	}
}

// ExponentBits returns the bits the ladder branches on, MSB-first without
// the leading 1 — the ground truth for attack accuracy checks.
func ExponentBits(exp *big.Int) []bool {
	if exp.Sign() == 0 {
		return nil
	}
	bits := make([]bool, 0, exp.BitLen()-1)
	for i := exp.BitLen() - 2; i >= 0; i-- {
		bits = append(bits, exp.Bit(i) == 1)
	}
	return bits
}

// BitsToExponent reconstructs an exponent from recovered ladder bits
// (MSB-first, excluding the implicit leading 1) — the attacker's final
// assembly step.
func BitsToExponent(bits []bool) *big.Int {
	e := big.NewInt(1)
	for _, b := range bits {
		e.Lsh(e, 1)
		if b {
			e.Or(e, big.NewInt(1))
		}
	}
	return e
}
