package victims

import (
	"math"
	"math/big"
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
)

func newSys() *sched.System {
	return sched.NewSystem(uarch.Skylake(), 1)
}

func TestSecretArraySenderBranchStream(t *testing.T) {
	sys := newSys()
	secret := []bool{true, false, true, true, false}
	th := sys.Spawn("v", SecretArraySender(secret, 0))
	// Step one branch at a time and verify the trace ordering via the
	// branch PMC.
	for i := range secret {
		th.StepBranches(1)
		if got := th.Context().ReadPMC(cpu.BranchInstructions); got != uint64(i+1) {
			t.Fatalf("after %d steps: %d branches", i+1, got)
		}
	}
	th.Run()
	if got := th.Context().ReadPMC(cpu.BranchInstructions); got != uint64(len(secret)) {
		t.Errorf("total branches = %d, want %d", got, len(secret))
	}
}

func TestLoopingSenderWraps(t *testing.T) {
	sys := newSys()
	secret := []bool{true, false}
	th := sys.Spawn("v", LoopingSecretArraySender(secret, 0))
	defer th.Kill()
	if !th.StepBranches(7) {
		t.Fatal("looping sender finished")
	}
	if got := th.Context().ReadPMC(cpu.BranchInstructions); got != 7 {
		t.Errorf("branches = %d", got)
	}
}

func TestMontgomeryLadderComputesModExp(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	base := big.NewInt(7)
	m := big.NewInt(1000003)
	for _, e := range []int64{1, 2, 3, 17, 1023, 65537, 999999} {
		exp := big.NewInt(e)
		got := MontgomeryLadder(ctx, base, exp, m)
		want := new(big.Int).Exp(base, exp, m)
		if got.Cmp(want) != 0 {
			t.Errorf("7^%d mod 1000003 = %v, want %v", e, got, want)
		}
	}
}

func TestMontgomeryLadderLargeOperands(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	r := rng.New(11)
	base := new(big.Int).SetUint64(r.Uint64())
	exp := new(big.Int).SetUint64(r.Uint64() | 1<<63)
	m := new(big.Int).SetUint64(r.Uint64() | 1)
	got := MontgomeryLadder(ctx, base, exp, m)
	want := new(big.Int).Exp(base, exp, m)
	if got.Cmp(want) != 0 {
		t.Errorf("large modexp mismatch: %v vs %v", got, want)
	}
}

func TestMontgomeryLadderZeroExponent(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	got := MontgomeryLadder(ctx, big.NewInt(5), big.NewInt(0), big.NewInt(13))
	if got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("x^0 = %v, want 1", got)
	}
}

func TestMontgomeryLadderZeroModulusPanics(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero modulus")
		}
	}()
	MontgomeryLadder(ctx, big.NewInt(5), big.NewInt(3), big.NewInt(0))
}

func TestMontgomeryBranchPerBit(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	exp := big.NewInt(0b1011011) // 7 bits -> 6 ladder branches
	MontgomeryLadder(ctx, big.NewInt(3), exp, big.NewInt(101))
	if got := ctx.ReadPMC(cpu.BranchInstructions); got != 6 {
		t.Errorf("ladder executed %d branches, want 6", got)
	}
}

func TestExponentBitsRoundTrip(t *testing.T) {
	for _, e := range []uint64{1, 2, 5, 0b1011011, 1 << 40, 0xdeadbeef} {
		exp := new(big.Int).SetUint64(e)
		bits := ExponentBits(exp)
		if len(bits) != exp.BitLen()-1 {
			t.Errorf("ExponentBits(%#x) len = %d, want %d", e, len(bits), exp.BitLen()-1)
		}
		back := BitsToExponent(bits)
		if back.Cmp(exp) != 0 {
			t.Errorf("round trip %#x -> %v", e, back)
		}
	}
	if got := ExponentBits(big.NewInt(0)); got != nil {
		t.Errorf("ExponentBits(0) = %v", got)
	}
}

func TestIDCTRoundTrip(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	// Build a spatial block, forward-transform it, and check that the
	// victim's IDCT inverts it (within rounding of the integer
	// coefficients).
	var px [8][8]float64
	r := rng.New(4)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			px[i][j] = float64(r.Intn(255)) - 128
		}
	}
	coeff := FDCT(&px)
	got := IDCT(ctx, coeff)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if d := math.Abs(got[i][j] - px[i][j]); d > 1.0 {
				t.Fatalf("IDCT(FDCT(px))[%d][%d] off by %.2f", i, j, d)
			}
		}
	}
}

func TestIDCTShortcutMatchesFullTransform(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	// A DC-only block must decode to a constant plane whether or not
	// the shortcut fires — and the shortcut must fire.
	var b Block
	b[0][0] = 80
	out := IDCT(ctx, &b)
	want := out[0][0]
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(out[i][j]-want) > 1e-9 {
				t.Fatalf("DC-only block not constant at [%d][%d]", i, j)
			}
		}
	}
	if math.Abs(want-80.0/8) > 1e-9 { // orthonormal: DC/ (2√2 * 2√2) = DC/8
		t.Errorf("DC plane level = %v, want 10", want)
	}
}

func TestIDCTBranchDirectionsMatchZeroStructure(t *testing.T) {
	sys := newSys()
	var b Block
	b[0][0] = 10
	b[3][5] = -4 // column 5 and row 3 have AC energy
	th := sys.Spawn("v", func(ctx *cpu.Context) { IDCT(ctx, &b) })
	// Column-check branches run first, in order; verify directions by
	// stepping one branch at a time and checking the mispredict PMC
	// never observes extra branches.
	for c := 0; c < 8; c++ {
		th.StepBranches(1)
		wantZero := c != 5
		if got := b.ColumnACZero(c); got != wantZero {
			t.Fatalf("ground truth broken for column %d", c)
		}
	}
	for r := 0; r < 8; r++ {
		th.StepBranches(1)
		wantZero := r != 3
		if got := b.RowACZero(r); got != wantZero {
			t.Fatalf("ground truth broken for row %d", r)
		}
	}
	th.Run()
	if got := th.Context().ReadPMC(cpu.BranchInstructions); got != 16 {
		t.Errorf("IDCT executed %d branches, want 16", got)
	}
}

func TestColumnRowAddrsDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		for _, a := range []uint64{ColumnCheckAddr(i), RowCheckAddr(i)} {
			if seen[a] {
				t.Fatalf("duplicate check address %#x", a)
			}
			seen[a] = true
		}
	}
}

func TestASLRVictim(t *testing.T) {
	sys := newSys()
	v := NewASLRVictim(0x5540_0000, 0x1234)
	if v.SecretAddr != 0x5540_1234 {
		t.Errorf("SecretAddr = %#x", v.SecretAddr)
	}
	th := sys.Spawn("v", v.Process())
	defer th.Kill()
	th.StepBranches(3)
	if got := th.Context().ReadPMC(cpu.BranchInstructions); got != 3 {
		t.Errorf("branches = %d", got)
	}
	// The victim's branch is always taken, so after a few executions the
	// shared PHT predicts a spy branch at the same address as taken.
	spy := sys.NewProcess("spy")
	before := spy.ReadPMC(cpu.BranchMisses)
	spy.Branch(v.SecretAddr, true)
	if spy.ReadPMC(cpu.BranchMisses) != before {
		t.Error("spy at secret address mispredicted: no collision")
	}
}

func TestIDCTProcessLoops(t *testing.T) {
	sys := newSys()
	blocks := []Block{{}, {}}
	blocks[0][0][0] = 8
	th := sys.Spawn("v", IDCTProcess(blocks, nil))
	defer th.Kill()
	if !th.StepBranches(40) { // 16 branches per block; loops past the slice
		t.Error("IDCT process finished unexpectedly")
	}
}

func TestBranchlessLadderComputesModExp(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	base := big.NewInt(11)
	m := big.NewInt(999983)
	for _, e := range []int64{1, 2, 3, 17, 1023, 65537, 999999} {
		exp := big.NewInt(e)
		got := MontgomeryLadderBranchless(ctx, base, exp, m)
		want := new(big.Int).Exp(base, exp, m)
		if got.Cmp(want) != 0 {
			t.Errorf("11^%d mod 999983 = %v, want %v", e, got, want)
		}
	}
	if got := MontgomeryLadderBranchless(ctx, base, big.NewInt(0), m); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("x^0 = %v", got)
	}
}

func TestBranchlessLadderExecutesNoBranches(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	exp := new(big.Int).SetUint64(0xdead_beef_1234_5678)
	MontgomeryLadderBranchless(ctx, big.NewInt(3), exp, big.NewInt(1000003))
	if got := ctx.ReadPMC(cpu.BranchInstructions); got != 0 {
		t.Errorf("if-converted ladder executed %d conditional branches", got)
	}
}

func TestBranchlessLadderZeroModulusPanics(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MontgomeryLadderBranchless(ctx, big.NewInt(5), big.NewInt(3), big.NewInt(0))
}

func TestBranchlessLadderMatchesBranchyLadder(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	r := rng.New(21)
	for i := 0; i < 20; i++ {
		base := new(big.Int).SetUint64(r.Uint64())
		exp := new(big.Int).SetUint64(r.Uint64() | 1)
		m := new(big.Int).SetUint64(r.Uint64() | 1)
		a := MontgomeryLadder(ctx, base, exp, m)
		b := MontgomeryLadderBranchless(ctx, base, exp, m)
		if a.Cmp(b) != 0 {
			t.Fatalf("ladders disagree for %v^%v mod %v: %v vs %v", base, exp, m, a, b)
		}
	}
}

func TestSlidingWindowExpComputesModExp(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	base := big.NewInt(5)
	m := big.NewInt(1000003)
	for _, e := range []int64{1, 2, 3, 15, 16, 17, 255, 1023, 65537, 987654} {
		exp := big.NewInt(e)
		got := SlidingWindowExp(ctx, base, exp, m)
		want := new(big.Int).Exp(base, exp, m)
		if got.Cmp(want) != 0 {
			t.Errorf("5^%d mod 1000003 = %v, want %v", e, got, want)
		}
	}
	if got := SlidingWindowExp(ctx, base, big.NewInt(0), m); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("x^0 = %v", got)
	}
}

func TestSlidingWindowExpLargeOperands(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	r := rng.New(31)
	for i := 0; i < 10; i++ {
		base := new(big.Int).SetUint64(r.Uint64())
		exp := new(big.Int).SetUint64(r.Uint64() | 1<<63)
		m := new(big.Int).SetUint64(r.Uint64() | 1)
		got := SlidingWindowExp(ctx, base, exp, m)
		want := new(big.Int).Exp(base, exp, m)
		if got.Cmp(want) != 0 {
			t.Fatalf("mismatch for %v^%v mod %v", base, exp, m)
		}
	}
}

func TestSlidingWindowSkeletonConsistency(t *testing.T) {
	sys := newSys()
	r := rng.New(33)
	for trial := 0; trial < 10; trial++ {
		exp := new(big.Int).SetUint64(r.Uint64() | 1<<63)
		zeros, consumed := SlidingWindowSkeleton(exp)
		if len(zeros) != len(consumed) {
			t.Fatal("skeleton length mismatch")
		}
		// Consumed positions must sum to the bit length.
		total := 0
		for i, c := range consumed {
			if zeros[i] && c != 1 {
				t.Fatalf("zero step consumed %d", c)
			}
			if !zeros[i] && (c < 1 || c > SlidingWindowWidth) {
				t.Fatalf("window step consumed %d", c)
			}
			total += c
		}
		if total != exp.BitLen() {
			t.Fatalf("skeleton consumed %d positions of %d", total, exp.BitLen())
		}
		// The branch stream of the real execution must match the skeleton.
		ctx := sys.NewProcess("v")
		before := ctx.ReadPMC(cpu.BranchInstructions)
		SlidingWindowExp(ctx, big.NewInt(3), exp, big.NewInt(1000003))
		if got := ctx.ReadPMC(cpu.BranchInstructions) - before; got != uint64(len(zeros)) {
			t.Fatalf("executed %d scan branches, skeleton has %d", got, len(zeros))
		}
	}
}

func TestSlidingWindowZeroModulusPanics(t *testing.T) {
	sys := newSys()
	ctx := sys.NewProcess("v")
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	SlidingWindowExp(ctx, big.NewInt(2), big.NewInt(5), big.NewInt(0))
}

func TestProcessWrappersLoop(t *testing.T) {
	sys := newSys()
	base, exp, m := big.NewInt(3), big.NewInt(0xbeef), big.NewInt(1000003)

	var outs []*big.Int
	th := sys.Spawn("modexp", MontgomeryProcess(base, exp, m, &outs))
	th.StepBranches(2 * (exp.BitLen() - 1)) // two full exponentiations
	th.Kill()
	want := new(big.Int).Exp(base, exp, m)
	if len(outs) < 1 || outs[0].Cmp(want) != 0 {
		t.Errorf("MontgomeryProcess results %v, want first %v", outs, want)
	}

	var bouts []*big.Int
	bth := sys.Spawn("modexp-ifconv", BranchlessMontgomeryProcess(base, exp, m, &bouts))
	bth.Step(2 * 15 * 810) // instruction-stepped: the branchless ladder has no branches
	bth.Kill()
	if len(bouts) < 1 || bouts[0].Cmp(want) != 0 {
		t.Errorf("BranchlessMontgomeryProcess results %v, want first %v", bouts, want)
	}

	var souts []*big.Int
	sth := sys.Spawn("sw", SlidingWindowProcess(base, exp, m, &souts))
	zeros, _ := SlidingWindowSkeleton(exp)
	sth.StepBranches(2 * len(zeros))
	sth.Kill()
	if len(souts) < 1 || souts[0].Cmp(want) != 0 {
		t.Errorf("SlidingWindowProcess results %v, want first %v", souts, want)
	}
}

func TestPacedSenderFixedRate(t *testing.T) {
	sys := newSys()
	secret := []bool{true, false, true}
	th := sys.Spawn("paced", PacedSender(secret, 0, 4))
	defer th.Kill()
	// Every PacedIteration instructions contains exactly one branch,
	// regardless of the bit value.
	for i := 0; i < 9; i++ {
		th.Step(PacedIteration)
		if got := th.Context().ReadPMC(cpu.BranchInstructions); got != uint64(i+1) {
			t.Fatalf("after %d iterations: %d branches", i+1, got)
		}
	}
	// Degenerate repeats fall back to 1.
	th2 := sys.Spawn("paced2", PacedSender(secret, 0, 0))
	defer th2.Kill()
	th2.Step(PacedIteration)
	if got := th2.Context().ReadPMC(cpu.BranchInstructions); got != 1 {
		t.Errorf("repeats=0 sender executed %d branches per iteration", got)
	}
}

func TestMultiBranchASLRProcessExecutesAllOffsets(t *testing.T) {
	sys := newSys()
	offsets := []uint64{0x100, 0x200, 0x300}
	th := sys.Spawn("aslr", MultiBranchASLRProcess(0x7000_0000, offsets))
	defer th.Kill()
	th.StepBranches(6) // two full rounds
	if got := th.Context().ReadPMC(cpu.BranchInstructions); got != 6 {
		t.Errorf("branches = %d", got)
	}
	// All offsets' branches trained taken: a spy collides at each.
	spy := sys.NewProcess("spy")
	for _, off := range offsets {
		before := spy.ReadPMC(cpu.BranchMisses)
		spy.Branch(0x7000_0000+off, true)
		if spy.ReadPMC(cpu.BranchMisses) != before {
			t.Errorf("no collision at offset %#x", off)
		}
	}
}
