package cliutil

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"branchscope/internal/campaign"
	"branchscope/internal/engine"
	"branchscope/internal/obs"
	"branchscope/internal/runstore"
	"branchscope/internal/telemetry"
	"branchscope/internal/telemetry/promtext"
)

// TestFlagRegistrationParity pins the shared flag surface: every CLI
// registers through Flags.Register, so the set of names and usage
// strings here IS the parity contract across cmd/branchscope,
// cmd/experiments and cmd/phtmap.
func TestFlagRegistrationParity(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	want := []string{
		"metrics-out", "trace-out", "serve", "ledger-out",
		"leakage-out", "introspect-out",
		"log-format", "log-level", "cpuprofile", "memprofile",
		"chaos", "chaos-seed", "retry",
		"checkpoint", "resume", "watchdog", "breaker",
		"archive",
		"coordinator", "workers", "worker",
		"service", "svc-jobs", "svc-queue",
		"svc-tenant-running", "svc-tenant-queue", "svc-journal",
	}
	for _, name := range want {
		if fs.Lookup(name) == nil {
			t.Errorf("shared flag -%s not registered", name)
		}
	}
	n := 0
	fs.VisitAll(func(*flag.Flag) { n++ })
	if n != len(want) {
		t.Errorf("registered %d flags, want %d", n, len(want))
	}
}

func TestNewSessionValidatesLogFlags(t *testing.T) {
	if _, err := NewSession("t", Flags{LogFormat: "xml", LogLevel: "info"}, Options{}); err == nil {
		t.Error("bad -log-format accepted")
	}
	if _, err := NewSession("t", Flags{LogFormat: "text", LogLevel: "screaming"}, Options{}); err == nil {
		t.Error("bad -log-level accepted")
	}
}

func TestSessionEnablesSinksPerFlags(t *testing.T) {
	var logBuf bytes.Buffer
	dir := t.TempDir()
	s, err := NewSession("t", Flags{
		LogFormat: "json", LogLevel: "debug",
		MetricsOut: filepath.Join(dir, "m.json"),
		LedgerOut:  filepath.Join(dir, "l.jsonl"),
	}, Options{LogWriter: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics == nil || s.Ledger == nil || s.Deltas == nil {
		t.Fatalf("sinks not enabled: %+v", s)
	}
	if s.Trace != nil {
		t.Error("tracer on without -trace-out")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Disabled-by-default session: no registry at all.
	s2, err := NewSession("t", Flags{LogFormat: "text", LogLevel: "info"}, Options{LogWriter: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Metrics != nil {
		t.Error("registry on without any flag asking for it")
	}
	defer s2.Close()
}

// TestInterruptedSuiteStillFlushesExports is the regression test for
// the SIGINT flush gap: a suite interrupted by cancellation mid-run
// must still leave a valid metrics JSON file and a parseable ledger
// behind, because Session.Close runs on the cancel path too.
func TestInterruptedSuiteStillFlushesExports(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	var logBuf bytes.Buffer
	sess, err := NewSession("test", Flags{
		LogFormat: "text", LogLevel: "info",
		MetricsOut: metricsPath,
		LedgerOut:  ledgerPath,
	}, Options{LogWriter: &logBuf})
	if err != nil {
		t.Fatal(err)
	}

	// A three-task suite; the first task records a metric and then
	// cancels the run, standing in for SIGINT arriving mid-suite.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tasks := []engine.Task{
		{ID: "first", Artifact: "T", Description: "cancels the suite", Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			sess.Metrics.Counter("test.progress").Add(41)
			cancel()
			return nil, ctx.Err()
		}},
		{ID: "second", Artifact: "T", Description: "never starts", Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			t.Error("second task ran after cancellation")
			return nil, nil
		}},
		{ID: "third", Artifact: "T", Description: "never starts", Run: func(ctx context.Context, cfg engine.Config) (engine.Result, error) {
			t.Error("third task ran after cancellation")
			return nil, nil
		}},
	}
	runner := &engine.Runner{
		OnStart: func(task engine.Task, seed uint64) { sess.Deltas.Begin(task.ID) },
		OnDone: func(rep engine.Report) {
			errStr := ""
			if rep.Err != nil {
				errStr = rep.Err.Error()
			}
			sess.Ledger.Append(obs.LedgerRecord{
				Program: "test", ID: rep.Task.ID,
				Config:   map[string]any{"quick": true},
				BaseSeed: 1, Seed: rep.Seed,
				Outcome: rep.Outcome(), Error: errStr,
				WallSeconds:  rep.Wall.Seconds(),
				MetricsDelta: sess.Deltas.End(rep.Task.ID),
			})
		},
	}
	reports := runner.RunSuite(ctx, tasks, engine.Config{Quick: true, Seed: 1})
	if engine.Failed(reports) != 3 {
		t.Fatalf("expected all 3 tasks to fail under cancellation, got %d", engine.Failed(reports))
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close on the cancel path: %v", err)
	}

	// The metrics file must exist and be valid snapshot JSON carrying
	// the pre-interrupt counter.
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics file missing after interrupt: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("interrupted metrics file is not valid JSON: %v\n%s", err, data)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "test.progress" || snap.Counters[0].Value != 41 {
		t.Errorf("interrupted metrics lost data: %+v", snap)
	}

	// The ledger must hold one schema-stamped record per task, with
	// the cancellation classified.
	lf, err := os.Open(ledgerPath)
	if err != nil {
		t.Fatalf("ledger missing after interrupt: %v", err)
	}
	defer lf.Close()
	outcomes := map[string]string{}
	sc := bufio.NewScanner(lf)
	for sc.Scan() {
		var rec obs.LedgerRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("ledger line unparseable: %v\n%s", err, sc.Text())
		}
		if rec.Schema != obs.LedgerSchema {
			t.Errorf("ledger schema = %q", rec.Schema)
		}
		outcomes[rec.ID] = rec.Outcome
	}
	if len(outcomes) != 3 {
		t.Fatalf("ledger records = %d, want 3 (skipped tasks must be recorded): %v", len(outcomes), outcomes)
	}
	for id, o := range outcomes {
		if o != "canceled" {
			t.Errorf("task %s outcome = %q, want canceled", id, o)
		}
	}
}

// TestSessionServeLifecycle starts the obs server through a session,
// scrapes it, and verifies Close shuts it down.
func TestSessionServeLifecycle(t *testing.T) {
	var logBuf bytes.Buffer
	s, err := NewSession("t", Flags{
		LogFormat: "text", LogLevel: "info", Serve: "127.0.0.1:0",
	}, Options{LogWriter: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics == nil {
		t.Fatal("-serve must enable the registry")
	}
	// The bound address is logged for the user; recover it from the
	// server handle via the log line.
	logLine := logBuf.String()
	idx := strings.Index(logLine, "addr=")
	if idx < 0 {
		t.Fatalf("bound address not logged: %q", logLine)
	}
	addr := strings.Fields(logLine[idx+len("addr="):])[0]
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("server not reachable at %s: %v", addr, err)
	}
	resp.Body.Close()

	// /leakage must serve a lint-clean exposition even before any
	// window has been observed (the comment-only degenerate case).
	resp, err = http.Get("http://" + addr + "/leakage")
	if err != nil {
		t.Fatalf("GET /leakage: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := promtext.Lint(bytes.NewReader(body)); err != nil {
		t.Errorf("/leakage fails exposition lint: %v\n%s", err, body)
	}

	// /introspect/pht must serve a schema-stamped JSON document.
	resp, err = http.Get("http://" + addr + "/introspect/pht")
	if err != nil {
		t.Fatalf("GET /introspect/pht: %v", err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/introspect/pht is not JSON: %v\n%s", err, body)
	}
	if doc.Schema != obs.IntrospectSchema {
		t.Errorf("/introspect/pht schema = %q, want %q", doc.Schema, obs.IntrospectSchema)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestCampaignFlagValidation pins the durability flag surface shared
// by the CLIs: -resume requires -checkpoint, no flags means no
// campaign, and single-task programs reject both.
func TestCampaignFlagValidation(t *testing.T) {
	if c, err := (Flags{}).Campaign(campaign.Header{}); err != nil || c != nil {
		t.Errorf("no flags: campaign=%v err=%v, want nil/nil", c, err)
	}
	if _, err := (Flags{Resume: true}).Campaign(campaign.Header{}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	if err := (Flags{}).RequireNoCampaign("prog"); err != nil {
		t.Errorf("RequireNoCampaign without flags: %v", err)
	}
	if err := (Flags{Checkpoint: "x"}).RequireNoCampaign("prog"); err == nil {
		t.Error("single-task program accepted -checkpoint")
	}
	if err := (Flags{Resume: true}).RequireNoCampaign("prog"); err == nil {
		t.Error("single-task program accepted -resume")
	}

	// A fresh -checkpoint campaign opens a journal ready for appends.
	path := filepath.Join(t.TempDir(), "j.journal")
	c, err := (Flags{Checkpoint: path}).Campaign(campaign.Header{Program: "t", Tasks: []string{"a"}})
	if err != nil || c == nil {
		t.Fatalf("fresh campaign: %v", err)
	}
	if _, err := c.Journal.Append(campaign.TaskRecord{ID: "a", Outcome: "ok"}); err != nil {
		t.Fatal(err)
	}
	c.Journal.Close()
	// And -resume reopens it with the completed record replayed.
	c2, err := (Flags{Checkpoint: path, Resume: true}).Campaign(campaign.Header{Program: "t", Tasks: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Journal.Close()
	if len(c2.Replayed) != 1 || c2.Replayed[0].ID != "a" {
		t.Errorf("resume replayed %+v, want record a", c2.Replayed)
	}
}

// TestIdentityConfigShape pins what makes it into the run identity:
// result-shaping flags yes, crash-only chaos no — a crash point only
// decides whether the process survives, so the crashed run and its
// resume must share a RunID with the uninterrupted oracle.
func TestIdentityConfigShape(t *testing.T) {
	cfg, err := (Flags{Retry: 3, Breaker: 2}).IdentityConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg["retry"] != 3 || cfg["breaker"] != 2 {
		t.Errorf("retry/breaker missing: %v", cfg)
	}
	if _, ok := cfg["chaos"]; ok {
		t.Errorf("chaos present without -chaos: %v", cfg)
	}

	cfg, err = (Flags{Chaos: `{"crash":{"magnitude":3}}`}).IdentityConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg["chaos"]; ok {
		t.Errorf("crash-only chaos plan leaked into the identity: %v", cfg)
	}

	cfg, err = (Flags{Chaos: "moderate"}).IdentityConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg["chaos"]; !ok {
		t.Errorf("episode-fault chaos plan missing from the identity: %v", cfg)
	}
}

// TestSessionArchiveLifecycle drives the full -archive path through a
// session: identity → archiver → outcomes/blobs → Close writes the
// run directory, and the ledger records carry the RunID.
func TestSessionArchiveLifecycle(t *testing.T) {
	dir := t.TempDir()
	archiveDir := filepath.Join(dir, "archive")
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	var logBuf bytes.Buffer
	f := Flags{
		LogFormat: "text", LogLevel: "info",
		LedgerOut: ledgerPath, Archive: archiveDir,
	}
	s, err := NewSession("t", f, Options{LogWriter: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	id := runstore.Identity{Program: "t", BaseSeed: 1, Tasks: []string{"a"}}
	arc := f.Archiver(id)
	if arc == nil {
		t.Fatal("-archive set but Archiver returned nil")
	}
	s.SetRunID(arc.RunID())
	s.SetArchiver(arc)

	s.Ledger.Append(obs.LedgerRecord{Program: "t", ID: "a", Outcome: "ok"})
	arc.Record(runstore.TaskOutcome{ID: "a", Seed: 1, Outcome: "ok", Attempts: 1})
	arc.AddBlob("report", []byte("a settled\n"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	runDir := filepath.Join(archiveDir, id.RunID())
	_, m, err := runstore.LoadRun(runDir)
	if err != nil {
		t.Fatalf("archive not written: %v", err)
	}
	if m.RunID != id.RunID() || m.Counts["ok"] != 1 {
		t.Errorf("manifest wrong: %+v", m)
	}
	kinds := map[string]bool{}
	for _, a := range m.Artifacts {
		kinds[a.Kind] = true
	}
	if !kinds["report"] || !kinds["ledger"] {
		t.Errorf("artifacts missing report/ledger: %+v", m.Artifacts)
	}

	lf, err := os.Open(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	recs, torn, err := obs.ReadLedger(lf)
	if err != nil || torn {
		t.Fatalf("ledger unreadable: torn=%v err=%v", torn, err)
	}
	if len(recs) != 1 || recs[0].RunID != id.RunID() {
		t.Errorf("ledger record missing RunID: %+v", recs)
	}
}

// TestSessionRepairsTornLedger: reopening a ledger whose final record
// was torn by a crash truncates the torn line (otherwise the next
// append would bury it mid-file as hard corruption) and flags the
// session so /statusz can surface the loss.
func TestSessionRepairsTornLedger(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	good := `{"schema":"branchscope.ledger/v1","program":"t","id":"a","config":{},"base_seed":1,"seed":1,"outcome":"ok","wall_seconds":0}` + "\n"
	if err := os.WriteFile(ledgerPath, []byte(good+`{"schema":"branchscope.le`), 0o644); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	s, err := NewSession("t", Flags{LogFormat: "text", LogLevel: "info", LedgerOut: ledgerPath},
		Options{LogWriter: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	if !s.LedgerTorn() {
		t.Error("torn ledger tail not flagged on the session")
	}
	if !strings.Contains(logBuf.String(), "torn") {
		t.Errorf("torn ledger not logged: %q", logBuf.String())
	}
	s.Ledger.Append(obs.LedgerRecord{Program: "t", ID: "b", Outcome: "ok"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	lf, err := os.Open(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	recs, torn, err := obs.ReadLedger(lf)
	if err != nil {
		t.Fatalf("ledger corrupt after repair+append: %v", err)
	}
	if torn {
		t.Error("ledger still torn after repair")
	}
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "b" {
		t.Errorf("ledger records = %+v, want a then b", recs)
	}
}

// TestFabricFlagValidation pins the fabric flag combinations shared by
// the campaign CLIs.
func TestFabricFlagValidation(t *testing.T) {
	if urls, err := (Flags{}).FabricWorkers(); err != nil || urls != nil {
		t.Errorf("no fabric flags: urls=%v err=%v, want nil/nil", urls, err)
	}
	if _, err := (Flags{Coordinator: true}).FabricWorkers(); err == nil {
		t.Error("-coordinator without -workers accepted")
	}
	if _, err := (Flags{Workers: "http://x:1"}).FabricWorkers(); err == nil {
		t.Error("-workers without -coordinator accepted")
	}
	if _, err := (Flags{Worker: true}).FabricWorkers(); err == nil {
		t.Error("-worker without -serve accepted")
	}
	if _, err := (Flags{Worker: true, Coordinator: true, Serve: ":0", Workers: "x"}).FabricWorkers(); err == nil {
		t.Error("-worker -coordinator accepted together")
	}
	if _, err := (Flags{Worker: true, Serve: ":0", Checkpoint: "j"}).FabricWorkers(); err == nil {
		t.Error("-worker with -checkpoint accepted (the coordinator owns the journal)")
	}
	urls, err := (Flags{Coordinator: true, Workers: " 127.0.0.1:9001 , http://127.0.0.1:9002/ "}).FabricWorkers()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://127.0.0.1:9001", "http://127.0.0.1:9002"}
	if len(urls) != 2 || urls[0] != want[0] || urls[1] != want[1] {
		t.Errorf("worker URLs = %v, want %v", urls, want)
	}

	if err := (Flags{}).RequireNoFabric("prog"); err != nil {
		t.Errorf("RequireNoFabric without flags: %v", err)
	}
	if err := (Flags{Coordinator: true}).RequireNoFabric("prog"); err == nil {
		t.Error("local-only program accepted -coordinator")
	}
	if err := (Flags{Worker: true}).RequireNoFabric("prog"); err == nil {
		t.Error("local-only program accepted -worker")
	}
}

// TestServiceFlagValidation pins the service flag combinations: the
// mode needs a serve address, excludes the fabric and campaign modes,
// and local-only programs reject the whole surface.
func TestServiceFlagValidation(t *testing.T) {
	if err := (Flags{}).ServiceMode(); err != nil {
		t.Errorf("no service flags: %v", err)
	}
	if err := (Flags{SvcJobs: 2}).ServiceMode(); err == nil {
		t.Error("-svc-jobs without -service accepted")
	}
	if err := (Flags{Service: true}).ServiceMode(); err == nil {
		t.Error("-service without -serve accepted")
	}
	if err := (Flags{Service: true, Serve: ":0", Worker: true}).ServiceMode(); err == nil {
		t.Error("-service with -worker accepted")
	}
	if err := (Flags{Service: true, Serve: ":0", Coordinator: true}).ServiceMode(); err == nil {
		t.Error("-service with -coordinator accepted")
	}
	if err := (Flags{Service: true, Serve: ":0", Checkpoint: "j"}).ServiceMode(); err == nil {
		t.Error("-service with -checkpoint accepted")
	}
	if err := (Flags{Service: true, Serve: ":0", SvcQueue: -1}).ServiceMode(); err == nil {
		t.Error("negative -svc-queue accepted")
	}
	if err := (Flags{Service: true, Serve: ":0", SvcJobs: 4, SvcJournal: "j"}).ServiceMode(); err != nil {
		t.Errorf("valid service flags rejected: %v", err)
	}

	if err := (Flags{}).RequireNoService("prog"); err != nil {
		t.Errorf("RequireNoService without flags: %v", err)
	}
	if err := (Flags{Service: true}).RequireNoService("prog"); err == nil {
		t.Error("local-only program accepted -service")
	}
	if err := (Flags{SvcJournal: "j"}).RequireNoService("prog"); err == nil {
		t.Error("local-only program accepted -svc-journal")
	}
}

// TestBreakersFlag: -breaker 0 disables breaking, N arms it.
func TestBreakersFlag(t *testing.T) {
	if (Flags{}).Breakers() != nil {
		t.Error("-breaker 0 built a breaker set")
	}
	b := (Flags{Breaker: 2}).Breakers()
	if b == nil {
		t.Fatal("-breaker 2 built no breaker set")
	}
	b.Observe("f", "error")
	b.Observe("f", "error")
	if b.Admit("f") {
		t.Error("breaker did not open at the flag's threshold")
	}
}
