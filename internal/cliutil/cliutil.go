// Package cliutil is the observability surface shared by the three
// CLIs (branchscope, experiments, phtmap): one flag set with identical
// names and usage wording, and a Session that owns every export sink —
// metrics and trace files, the provenance ledger, the live obs server,
// Go profiles — and flushes all of them in Close.
//
// Close is designed to run on *every* exit path via defer, including
// a SIGINT/SIGTERM-canceled run: a run interrupted halfway still
// leaves a valid metrics file, a parseable ledger, and a cleanly
// shut-down HTTP server behind. Exports that were not requested cost
// nothing (nil registry/tracer/ledger handles are no-ops).
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"branchscope/internal/campaign"
	"branchscope/internal/chaos"
	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/leakage"
	"branchscope/internal/obs"
	"branchscope/internal/runstore"
	"branchscope/internal/telemetry"
)

// Flags is the shared observability flag set. Register installs it
// with the same names and usage strings in every CLI — flag parity is
// a tested contract, not a convention.
type Flags struct {
	MetricsOut string
	TraceOut   string
	Serve      string
	LedgerOut  string
	// LeakageOut/IntrospectOut export the last published channel-
	// quality report and predictor snapshot at Close. Under a parallel
	// suite the live slots are last-writer-wins; the deterministic
	// per-cell values live in the report rows and the ledger.
	LeakageOut    string
	IntrospectOut string
	LogFormat     string
	LogLevel      string
	CPUProfile    string
	MemProfile    string
	// Chaos/ChaosSeed/Retry are the shared resilience surface: a
	// deterministic fault-injection plan and the resilient attack
	// loop's per-bit attempt budget. See ChaosPlan and RetryConfig.
	Chaos     string
	ChaosSeed uint64
	Retry     int
	// Checkpoint/Resume/Watchdog/Breaker are the durability surface: a
	// crash-safe campaign journal with resume, a soft per-task deadline,
	// and a per-family circuit breaker. See Campaign, RequireNoCampaign
	// and Breakers.
	Checkpoint string
	Resume     bool
	Watchdog   time.Duration
	Breaker    int
	// Archive is the run-archive root: at Close the session writes
	// <dir>/<run-id>/ with a branchscope.run/v1 manifest plus copies of
	// every sink the run produced. See internal/runstore.
	Archive string
	// Coordinator/Workers/Worker are the distributed-campaign surface
	// (see internal/fabric): coordinator mode shards the task list
	// across the -workers pool and merges the streamed outcomes;
	// worker mode serves fabric assignments on the -serve address.
	// Execution-shape flags: like -parallel and -checkpoint they are
	// excluded from the run identity, because where tasks run never
	// changes what they produce.
	Coordinator bool
	Workers     string
	Worker      bool
	// Service and the Svc* knobs are the multi-tenant campaign job
	// service surface (see internal/svc): -service accepts
	// branchscope.job/v1 submissions on the -serve address instead of
	// running the suite locally; the Svc* limits bound concurrent and
	// queued jobs globally and per tenant (0 = the service defaults),
	// and -svc-journal makes admitted jobs survive a restart. All
	// execution-shape: each job's run identity comes from its spec.
	Service          bool
	SvcJobs          int
	SvcQueue         int
	SvcTenantRunning int
	SvcTenantQueue   int
	SvcJournal       string
}

// Register installs the shared flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write telemetry metrics as JSON to this file")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Perfetto-loadable Chrome trace JSON to this file")
	fs.StringVar(&f.Serve, "serve", "", "serve live observability endpoints (/metrics, /leakage, /introspect/pht, /statusz, /healthz, /readyz, /debug/pprof) on this address during the run (e.g. :8080 or 127.0.0.1:0)")
	fs.StringVar(&f.LedgerOut, "ledger-out", "", "append one branchscope.ledger/v1 JSONL provenance record per completed task to this file")
	fs.StringVar(&f.LeakageOut, "leakage-out", "", "write the last published channel-quality report (branchscope.leakage/v1 JSON) to this file")
	fs.StringVar(&f.IntrospectOut, "introspect-out", "", "write the last published predictor introspection snapshot (branchscope.introspect/v1 JSON) to this file")
	fs.StringVar(&f.LogFormat, "log-format", "text", "structured stderr log format: text or json")
	fs.StringVar(&f.LogLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
	fs.StringVar(&f.Chaos, "chaos", "", "deterministic fault injection: off, light, moderate, heavy, a bare intensity multiplier, or a chaos plan JSON object")
	fs.Uint64Var(&f.ChaosSeed, "chaos-seed", 0, "seed for the chaos plan's fault schedule (0 = derive from -seed)")
	fs.IntVar(&f.Retry, "retry", 0, "per-bit attempt budget for the resilient attack loop; also retries transiently-failed tasks (0 = the paper's naive single-episode read)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "journal per-task outcomes to this crash-safe branchscope.campaign/v1 file as they complete (enables -resume)")
	fs.BoolVar(&f.Resume, "resume", false, "resume an interrupted campaign from the -checkpoint journal: replay completed tasks, re-run the rest with the same derived seeds")
	fs.DurationVar(&f.Watchdog, "watchdog", 0, "soft per-task deadline: tasks running past it are marked stuck in /statusz and logs but keep running (0 = off)")
	fs.IntVar(&f.Breaker, "breaker", 0, "open a per-family circuit breaker after N consecutive permanent task failures, skipping the family's remaining tasks (0 = off)")
	fs.StringVar(&f.Archive, "archive", "", "archive this run under <dir>/<run-id>/: a branchscope.run/v1 manifest plus copies of every sink (inspect with bsctl)")
	fs.BoolVar(&f.Coordinator, "coordinator", false, "run as a distributed-campaign coordinator: shard the task list across the -workers pool and merge their streamed outcomes (byte-identical to a single-process run)")
	fs.StringVar(&f.Workers, "workers", "", "comma-separated worker base URLs for -coordinator (e.g. http://127.0.0.1:9001,http://127.0.0.1:9002)")
	fs.BoolVar(&f.Worker, "worker", false, "run as a distributed-campaign worker: serve fabric assignments from a coordinator on the -serve address instead of running the suite locally")
	fs.BoolVar(&f.Service, "service", false, "run as a multi-tenant campaign job service: accept branchscope.job/v1 submissions on the -serve address (POST /jobs) instead of running the suite locally")
	fs.IntVar(&f.SvcJobs, "svc-jobs", 0, "service mode: max jobs running concurrently across all tenants (0 = 2)")
	fs.IntVar(&f.SvcQueue, "svc-queue", 0, "service mode: max jobs queued across all tenants before submissions shed with 429 (0 = 16)")
	fs.IntVar(&f.SvcTenantRunning, "svc-tenant-running", 0, "service mode: max jobs one tenant may run concurrently; excess queues fairly (0 = 1)")
	fs.IntVar(&f.SvcTenantQueue, "svc-tenant-queue", 0, "service mode: max jobs one tenant may have queued before its submissions shed with 429 (0 = 4)")
	fs.StringVar(&f.SvcJournal, "svc-journal", "", "service mode: journal admitted jobs to this crash-safe file so queued jobs survive a service restart")
}

// FabricWorkers validates the fabric flag combination and resolves the
// -workers list into worker base URLs. It returns nil (and no error)
// when neither fabric mode was requested.
func (f Flags) FabricWorkers() ([]string, error) {
	if f.Worker && f.Coordinator {
		return nil, errors.New("-worker and -coordinator are mutually exclusive (a process is one or the other)")
	}
	if f.Worker {
		if f.Serve == "" {
			return nil, errors.New("-worker requires -serve (the address the coordinator reaches this worker on)")
		}
		if f.Checkpoint != "" || f.Resume {
			return nil, errors.New("-worker cannot take -checkpoint/-resume: the coordinator owns the campaign journal")
		}
		if f.Workers != "" {
			return nil, errors.New("-workers applies to -coordinator, not -worker")
		}
		return nil, nil
	}
	if !f.Coordinator {
		if f.Workers != "" {
			return nil, errors.New("-workers requires -coordinator")
		}
		return nil, nil
	}
	if f.Workers == "" {
		return nil, errors.New("-coordinator requires -workers (the pool to shard tasks across)")
	}
	var urls []string
	for _, w := range strings.Split(f.Workers, ",") {
		w = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(w), "/"))
		if w == "" {
			continue
		}
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			w = "http://" + w
		}
		urls = append(urls, w)
	}
	if len(urls) == 0 {
		return nil, errors.New("-workers lists no usable worker URLs")
	}
	return urls, nil
}

// RequireNoFabric rejects the fabric flags for programs that only run
// locally: phtmap's mapping sweep has no campaign task list to shard.
func (f Flags) RequireNoFabric(prog string) error {
	if f.Coordinator || f.Worker || f.Workers != "" {
		return fmt.Errorf("%s runs locally only; -coordinator/-worker/-workers apply to campaign programs (use cmd/experiments or cmd/branchscope)", prog)
	}
	return nil
}

// ServiceMode validates the service flag combination for the one
// program that can serve jobs (cmd/experiments). Service mode needs an
// address to serve on and is exclusive with the fabric and campaign
// modes: jobs carry their own durability (-svc-journal) and a service
// process is a scheduler, not a one-shot campaign.
func (f Flags) ServiceMode() error {
	if !f.Service {
		if f.SvcJobs != 0 || f.SvcQueue != 0 || f.SvcTenantRunning != 0 || f.SvcTenantQueue != 0 || f.SvcJournal != "" {
			return errors.New("-svc-jobs/-svc-queue/-svc-tenant-running/-svc-tenant-queue/-svc-journal require -service")
		}
		return nil
	}
	if f.Serve == "" {
		return errors.New("-service requires -serve (the address clients submit jobs to)")
	}
	if f.Coordinator || f.Worker {
		return errors.New("-service excludes -coordinator/-worker: a process serves jobs or joins a fabric, not both")
	}
	if f.Checkpoint != "" || f.Resume {
		return errors.New("-service cannot take -checkpoint/-resume: job durability comes from -svc-journal, per admitted job")
	}
	if f.SvcJobs < 0 || f.SvcQueue < 0 || f.SvcTenantRunning < 0 || f.SvcTenantQueue < 0 {
		return errors.New("-svc-* limits must be >= 0 (0 = the service default)")
	}
	return nil
}

// RequireNoService rejects the service flags for programs that cannot
// serve jobs: only cmd/experiments has the task registry a job spec
// selects from.
func (f Flags) RequireNoService(prog string) error {
	if f.Service || f.SvcJobs != 0 || f.SvcQueue != 0 || f.SvcTenantRunning != 0 || f.SvcTenantQueue != 0 || f.SvcJournal != "" {
		return fmt.Errorf("%s runs locally only; -service and -svc-* apply to cmd/experiments", prog)
	}
	return nil
}

// ChaosPlan resolves -chaos/-chaos-seed into a fault plan. It returns
// nil when no (or a disabled) plan was requested, so callers can gate
// injector installation on the result. A zero -chaos-seed derives the
// schedule seed from the run's base seed, keeping chaos runs
// reproducible by default yet independently reseedable.
func (f Flags) ChaosPlan(baseSeed uint64) (*chaos.Plan, error) {
	if f.Chaos == "" {
		return nil, nil
	}
	seed := f.ChaosSeed
	if seed == 0 {
		seed = engine.DeriveSeed(baseSeed, "chaos")
	}
	plan, err := chaos.Parse(f.Chaos, seed)
	if err != nil {
		return nil, fmt.Errorf("-chaos: %w", err)
	}
	if !plan.Enabled() {
		return nil, nil
	}
	return &plan, nil
}

// IdentityConfig assembles the shared result-shaping flags for a
// runstore.Identity's Config: the retry budget, the breaker threshold,
// and the chaos plan — with its crash spec zeroed first, because a
// crash point only decides *whether* the process survives, never what
// the surviving measurements contain (crash-only plans install no
// injector), and a crashed run must resume under the same RunID as the
// uninterrupted oracle it is compared against. Execution-shape flags
// (-parallel, -checkpoint/-resume, -watchdog, sink paths) are
// deliberately absent. Callers merge in their program-specific knobs.
func (f Flags) IdentityConfig(baseSeed uint64) (map[string]any, error) {
	cfg := map[string]any{}
	if f.Retry > 0 {
		cfg["retry"] = f.Retry
	}
	if f.Breaker > 0 {
		cfg["breaker"] = f.Breaker
	}
	plan, err := f.ChaosPlan(baseSeed)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		p := *plan
		p.Crash = chaos.Spec{}
		if p.HasEpisodeFaults() {
			cfg["chaos"] = p.String()
		}
	}
	return cfg, nil
}

// Archiver resolves -archive into a run archiver for id, nil (a valid
// no-op sink) when no archive was requested. Attach it to the session
// with SetArchiver so Close writes it after the sinks flush.
func (f Flags) Archiver(id runstore.Identity) *runstore.Archiver {
	if f.Archive == "" {
		return nil
	}
	return runstore.New(f.Archive, id)
}

// Campaign resolves -checkpoint/-resume into a durable campaign: nil
// when neither flag asks for one, a fresh journal for -checkpoint
// alone, a resumed one for -checkpoint -resume. The header pins the
// run's identity; Resume fails loudly on a mismatched journal.
func (f Flags) Campaign(h campaign.Header) (*campaign.Campaign, error) {
	if f.Checkpoint == "" {
		if f.Resume {
			return nil, errors.New("-resume requires -checkpoint (the journal to resume from)")
		}
		return nil, nil
	}
	if f.Resume {
		return campaign.Resume(f.Checkpoint, h)
	}
	return campaign.New(f.Checkpoint, h)
}

// RequireNoCampaign rejects the campaign flags for single-task
// programs: with exactly one root task there is nothing to checkpoint
// between — rerunning the program is the resume path.
func (f Flags) RequireNoCampaign(prog string) error {
	if f.Checkpoint != "" || f.Resume {
		return fmt.Errorf("%s runs a single root task; -checkpoint/-resume only apply to multi-task campaigns (use cmd/experiments)", prog)
	}
	return nil
}

// Breakers resolves -breaker into the engine's circuit-breaker set
// (nil when disabled).
func (f Flags) Breakers() *engine.BreakerSet { return engine.NewBreakerSet(f.Breaker) }

// RetryConfig resolves -retry into the resilient read policy, nil when
// the flag keeps the naive loop.
func (f Flags) RetryConfig() *core.RetryConfig {
	if f.Retry <= 0 {
		return nil
	}
	return &core.RetryConfig{MaxAttempts: f.Retry}
}

// RetryPolicy resolves -retry into the engine's task-level policy: the
// same budget applied to transiently-failed tasks (timeouts,
// explicitly Transient errors), with capped simulated backoff recorded
// in the report. The zero flag yields the zero policy (one attempt).
func (f Flags) RetryPolicy() engine.RetryPolicy {
	if f.Retry <= 0 {
		return engine.RetryPolicy{}
	}
	return engine.RetryPolicy{MaxAttempts: f.Retry, Backoff: 100 * time.Millisecond}
}

// Options tunes session construction per CLI.
type Options struct {
	// ForceMetrics keeps the registry on even when no -metrics-out /
	// -serve / -ledger-out asked for it (branchscope's -v table reads
	// the registry unconditionally).
	ForceMetrics bool
	// Status and Ready feed /statusz and /readyz when -serve is set.
	Status func() obs.Status
	Ready  func() bool
	// LogWriter overrides the log destination (default os.Stderr;
	// tests pass a buffer). Stdout is never an option: it is reserved
	// for the deterministic report.
	LogWriter io.Writer
	// Fabric, when non-nil, mounts the distributed-campaign worker
	// endpoint under /fabric/ on the -serve server (typically a
	// fabric.Worker handler; see internal/fabric).
	Fabric http.Handler
	// Jobs, when non-nil, mounts the campaign job service at /jobs on
	// the -serve server (typically a svc.Service handler; see
	// internal/svc).
	Jobs http.Handler
}

// Session is one CLI run's observability state.
type Session struct {
	// Log is the process logger (stderr), never nil.
	Log *slog.Logger
	// Metrics is nil unless requested (see Options.ForceMetrics).
	Metrics *telemetry.Registry
	// Trace is nil unless -trace-out was given.
	Trace *telemetry.Tracer
	// Ledger is nil unless -ledger-out was given; nil-safe to use.
	Ledger *obs.Ledger
	// Deltas attributes per-task metrics windows for ledger records;
	// nil-safe to use.
	Deltas *obs.DeltaRecorder

	prog       string
	flags      Flags
	ledgerFile *os.File
	cpuFile    *os.File
	server     *obs.Handle
	closed     bool

	// runID is set by SetRunID after the CLI derives its identity —
	// potentially while the obs server is already serving scrapes, so
	// reads go through an atomic.
	runID atomic.Pointer[string]
	// ledgerTorn records that the reopened ledger had a torn final
	// record (truncated before append); surfaced in /statusz.
	ledgerTorn bool
	archiver   *runstore.Archiver
}

// NewSession validates the shared flags and opens every requested
// sink: logger, registry, tracer, ledger file (append mode — ledgers
// accumulate across runs), CPU profile, and the obs HTTP server. On
// error, everything already opened is closed again.
func NewSession(prog string, f Flags, o Options) (*Session, error) {
	logw := o.LogWriter
	if logw == nil {
		logw = os.Stderr
	}
	log, err := obs.NewLogger(logw, f.LogFormat, f.LogLevel)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", prog, err)
	}
	s := &Session{Log: log, prog: prog, flags: f}

	if o.ForceMetrics || f.MetricsOut != "" || f.Serve != "" || f.LedgerOut != "" {
		s.Metrics = telemetry.NewRegistry()
	}
	if f.TraceOut != "" {
		s.Trace = telemetry.NewTracer()
	}
	if f.LedgerOut != "" {
		// Heal a torn final record before appending: once new lines land
		// behind it, the torn line would read as mid-file corruption.
		torn, err := obs.RepairLedgerTail(f.LedgerOut)
		if err != nil {
			log.Warn("ledger tail check failed; appending anyway", "path", f.LedgerOut, "err", err)
		} else if torn {
			s.ledgerTorn = true
			log.Warn("ledger had a torn final record (crash mid-append); truncated it before reopening",
				"path", f.LedgerOut)
		}
		lf, err := os.OpenFile(f.LedgerOut, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("%s: opening ledger: %w", prog, err)
		}
		s.ledgerFile = lf
		s.Ledger = obs.NewLedger(lf)
		s.Deltas = obs.NewDeltaRecorder(s.Metrics)
	}
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("%s: %w", prog, err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			s.closeFiles()
			return nil, fmt.Errorf("%s: starting CPU profile: %w", prog, err)
		}
		s.cpuFile = cf
	}
	if f.Serve != "" {
		srv := &obs.Server{
			Program:    prog,
			Metrics:    s.Metrics,
			Status:     s.wrapStatus(o.Status),
			Ready:      o.Ready,
			Introspect: leakage.LatestIntrospection,
			Fabric:     o.Fabric,
			Jobs:       o.Jobs,
			Log:        log,
		}
		if f.Archive != "" {
			dir := f.Archive
			srv.Runs = func() (any, error) {
				ms, err := runstore.List(dir)
				if ms == nil {
					ms = []runstore.Manifest{}
				}
				return ms, err
			}
		}
		h, err := srv.Start(f.Serve)
		if err != nil {
			s.stopProfile()
			s.closeFiles()
			return nil, fmt.Errorf("%s: %w", prog, err)
		}
		s.server = h
		log.Info("observability server listening",
			"addr", h.Addr(), "endpoints", "/metrics /leakage /introspect/pht /statusz /runs /healthz /readyz /debug/pprof")
	}
	return s, nil
}

// wrapStatus stamps the session's run identity and ledger-tail health
// into every /statusz document the CLI's status func renders.
func (s *Session) wrapStatus(status func() obs.Status) func() obs.Status {
	return func() obs.Status {
		st := obs.Status{Schema: obs.StatusSchema, Program: s.prog}
		if status != nil {
			st = status()
		}
		st.RunID = s.RunID()
		st.LedgerTorn = s.ledgerTorn
		return st
	}
}

// SetRunID installs the run's causal identity on every sink the
// session owns: ledger records, leakage reports, and /statusz. Call it
// as soon as the identity is derived (before tasks run).
func (s *Session) SetRunID(id string) {
	if s == nil || id == "" {
		return
	}
	s.runID.Store(&id)
	s.Ledger.SetRunID(id)
	leakage.SetRunID(id)
}

// RunID returns the identity installed by SetRunID ("" before).
func (s *Session) RunID() string {
	if s == nil {
		return ""
	}
	p := s.runID.Load()
	if p == nil {
		return ""
	}
	return *p
}

// LedgerTorn reports whether the session truncated a torn final record
// off the reopened ledger.
func (s *Session) LedgerTorn() bool { return s != nil && s.ledgerTorn }

// SetArchiver attaches the run archiver the session writes at Close,
// and schedules every session-owned sink file for archiving. The CLI
// remains responsible for recording task outcomes and the canonical
// report/export blobs on the archiver. Nil-safe both ways.
func (s *Session) SetArchiver(a *runstore.Archiver) {
	if s == nil {
		return
	}
	s.archiver = a
	a.AddFile("ledger", s.flags.LedgerOut)
	a.AddFile("metrics", s.flags.MetricsOut)
	a.AddFile("trace", s.flags.TraceOut)
	a.AddFile("leakage", s.flags.LeakageOut)
	a.AddFile("introspect", s.flags.IntrospectOut)
}

func (s *Session) stopProfile() {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
	}
}

func (s *Session) closeFiles() {
	if s.ledgerFile != nil {
		s.ledgerFile.Close()
		s.ledgerFile = nil
	}
}

// Close flushes every sink. It must run on every exit path (defer it
// right after NewSession) — in particular on the SIGINT/SIGTERM
// cancellation path, where the partial run's metrics, trace, and
// ledger are exactly what a debugging user needs. Idempotent; returns
// the joined errors of all sinks.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var errs []error

	if s.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		res, err := s.server.Drain(ctx)
		if err != nil {
			errs = append(errs, fmt.Errorf("shutting down observability server: %w", err))
		}
		s.Log.Info("observability server stopped", "drain", res.String())
		cancel()
	}
	if s.flags.MetricsOut != "" {
		if err := WriteFile(s.flags.MetricsOut, s.Metrics.Snapshot().WriteJSON); err != nil {
			errs = append(errs, fmt.Errorf("writing metrics: %w", err))
		} else {
			s.Log.Info("metrics written", "path", s.flags.MetricsOut)
		}
	}
	if s.flags.TraceOut != "" {
		if err := WriteFile(s.flags.TraceOut, s.Trace.WriteJSON); err != nil {
			errs = append(errs, fmt.Errorf("writing trace: %w", err))
		} else {
			s.Log.Info("trace written", "path", s.flags.TraceOut, "viewer", "ui.perfetto.dev")
		}
	}
	if s.flags.LeakageOut != "" {
		if err := WriteFile(s.flags.LeakageOut, leakage.WriteLatestReport); err != nil {
			errs = append(errs, fmt.Errorf("writing leakage report: %w", err))
		} else {
			s.Log.Info("leakage report written", "path", s.flags.LeakageOut, "schema", leakage.Schema)
		}
	}
	if s.flags.IntrospectOut != "" {
		write := func(w io.Writer) error {
			return obs.WriteIntrospection(w, leakage.LatestIntrospection())
		}
		if err := WriteFile(s.flags.IntrospectOut, write); err != nil {
			errs = append(errs, fmt.Errorf("writing introspection snapshot: %w", err))
		} else {
			s.Log.Info("introspection snapshot written", "path", s.flags.IntrospectOut, "schema", obs.IntrospectSchema)
		}
	}
	if s.ledgerFile != nil {
		if err := s.ledgerFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("closing ledger: %w", err))
		} else {
			s.Log.Info("ledger appended", "path", s.flags.LedgerOut, "schema", obs.LedgerSchema)
		}
		s.ledgerFile = nil
	}
	if s.archiver != nil {
		// After the sink flushes above, so the archive copies final bytes.
		if dir, err := s.archiver.Write(); err != nil {
			errs = append(errs, fmt.Errorf("writing run archive: %w", err))
		} else {
			s.Log.Info("run archived", "dir", dir, "run_id", s.archiver.RunID(), "schema", runstore.Schema)
		}
	}
	s.stopProfile()
	if s.flags.MemProfile != "" {
		runtime.GC()
		if err := WriteFile(s.flags.MemProfile, pprof.WriteHeapProfile); err != nil {
			errs = append(errs, fmt.Errorf("writing heap profile: %w", err))
		}
	}
	return errors.Join(errs...)
}

// WriteFile streams writer-based output (WriteJSON and friends) into
// path, creating or truncating it.
func WriteFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
