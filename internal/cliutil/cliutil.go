// Package cliutil is the observability surface shared by the three
// CLIs (branchscope, experiments, phtmap): one flag set with identical
// names and usage wording, and a Session that owns every export sink —
// metrics and trace files, the provenance ledger, the live obs server,
// Go profiles — and flushes all of them in Close.
//
// Close is designed to run on *every* exit path via defer, including
// a SIGINT/SIGTERM-canceled run: a run interrupted halfway still
// leaves a valid metrics file, a parseable ledger, and a cleanly
// shut-down HTTP server behind. Exports that were not requested cost
// nothing (nil registry/tracer/ledger handles are no-ops).
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"branchscope/internal/campaign"
	"branchscope/internal/chaos"
	"branchscope/internal/core"
	"branchscope/internal/engine"
	"branchscope/internal/leakage"
	"branchscope/internal/obs"
	"branchscope/internal/telemetry"
)

// Flags is the shared observability flag set. Register installs it
// with the same names and usage strings in every CLI — flag parity is
// a tested contract, not a convention.
type Flags struct {
	MetricsOut string
	TraceOut   string
	Serve      string
	LedgerOut  string
	// LeakageOut/IntrospectOut export the last published channel-
	// quality report and predictor snapshot at Close. Under a parallel
	// suite the live slots are last-writer-wins; the deterministic
	// per-cell values live in the report rows and the ledger.
	LeakageOut    string
	IntrospectOut string
	LogFormat     string
	LogLevel      string
	CPUProfile    string
	MemProfile    string
	// Chaos/ChaosSeed/Retry are the shared resilience surface: a
	// deterministic fault-injection plan and the resilient attack
	// loop's per-bit attempt budget. See ChaosPlan and RetryConfig.
	Chaos     string
	ChaosSeed uint64
	Retry     int
	// Checkpoint/Resume/Watchdog/Breaker are the durability surface: a
	// crash-safe campaign journal with resume, a soft per-task deadline,
	// and a per-family circuit breaker. See Campaign, RequireNoCampaign
	// and Breakers.
	Checkpoint string
	Resume     bool
	Watchdog   time.Duration
	Breaker    int
}

// Register installs the shared flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write telemetry metrics as JSON to this file")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Perfetto-loadable Chrome trace JSON to this file")
	fs.StringVar(&f.Serve, "serve", "", "serve live observability endpoints (/metrics, /leakage, /introspect/pht, /statusz, /healthz, /readyz, /debug/pprof) on this address during the run (e.g. :8080 or 127.0.0.1:0)")
	fs.StringVar(&f.LedgerOut, "ledger-out", "", "append one branchscope.ledger/v1 JSONL provenance record per completed task to this file")
	fs.StringVar(&f.LeakageOut, "leakage-out", "", "write the last published channel-quality report (branchscope.leakage/v1 JSON) to this file")
	fs.StringVar(&f.IntrospectOut, "introspect-out", "", "write the last published predictor introspection snapshot (branchscope.introspect/v1 JSON) to this file")
	fs.StringVar(&f.LogFormat, "log-format", "text", "structured stderr log format: text or json")
	fs.StringVar(&f.LogLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
	fs.StringVar(&f.Chaos, "chaos", "", "deterministic fault injection: off, light, moderate, heavy, a bare intensity multiplier, or a chaos plan JSON object")
	fs.Uint64Var(&f.ChaosSeed, "chaos-seed", 0, "seed for the chaos plan's fault schedule (0 = derive from -seed)")
	fs.IntVar(&f.Retry, "retry", 0, "per-bit attempt budget for the resilient attack loop; also retries transiently-failed tasks (0 = the paper's naive single-episode read)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "journal per-task outcomes to this crash-safe branchscope.campaign/v1 file as they complete (enables -resume)")
	fs.BoolVar(&f.Resume, "resume", false, "resume an interrupted campaign from the -checkpoint journal: replay completed tasks, re-run the rest with the same derived seeds")
	fs.DurationVar(&f.Watchdog, "watchdog", 0, "soft per-task deadline: tasks running past it are marked stuck in /statusz and logs but keep running (0 = off)")
	fs.IntVar(&f.Breaker, "breaker", 0, "open a per-family circuit breaker after N consecutive permanent task failures, skipping the family's remaining tasks (0 = off)")
}

// ChaosPlan resolves -chaos/-chaos-seed into a fault plan. It returns
// nil when no (or a disabled) plan was requested, so callers can gate
// injector installation on the result. A zero -chaos-seed derives the
// schedule seed from the run's base seed, keeping chaos runs
// reproducible by default yet independently reseedable.
func (f Flags) ChaosPlan(baseSeed uint64) (*chaos.Plan, error) {
	if f.Chaos == "" {
		return nil, nil
	}
	seed := f.ChaosSeed
	if seed == 0 {
		seed = engine.DeriveSeed(baseSeed, "chaos")
	}
	plan, err := chaos.Parse(f.Chaos, seed)
	if err != nil {
		return nil, fmt.Errorf("-chaos: %w", err)
	}
	if !plan.Enabled() {
		return nil, nil
	}
	return &plan, nil
}

// Campaign resolves -checkpoint/-resume into a durable campaign: nil
// when neither flag asks for one, a fresh journal for -checkpoint
// alone, a resumed one for -checkpoint -resume. The header pins the
// run's identity; Resume fails loudly on a mismatched journal.
func (f Flags) Campaign(h campaign.Header) (*campaign.Campaign, error) {
	if f.Checkpoint == "" {
		if f.Resume {
			return nil, errors.New("-resume requires -checkpoint (the journal to resume from)")
		}
		return nil, nil
	}
	if f.Resume {
		return campaign.Resume(f.Checkpoint, h)
	}
	return campaign.New(f.Checkpoint, h)
}

// RequireNoCampaign rejects the campaign flags for single-task
// programs: with exactly one root task there is nothing to checkpoint
// between — rerunning the program is the resume path.
func (f Flags) RequireNoCampaign(prog string) error {
	if f.Checkpoint != "" || f.Resume {
		return fmt.Errorf("%s runs a single root task; -checkpoint/-resume only apply to multi-task campaigns (use cmd/experiments)", prog)
	}
	return nil
}

// Breakers resolves -breaker into the engine's circuit-breaker set
// (nil when disabled).
func (f Flags) Breakers() *engine.BreakerSet { return engine.NewBreakerSet(f.Breaker) }

// RetryConfig resolves -retry into the resilient read policy, nil when
// the flag keeps the naive loop.
func (f Flags) RetryConfig() *core.RetryConfig {
	if f.Retry <= 0 {
		return nil
	}
	return &core.RetryConfig{MaxAttempts: f.Retry}
}

// RetryPolicy resolves -retry into the engine's task-level policy: the
// same budget applied to transiently-failed tasks (timeouts,
// explicitly Transient errors), with capped simulated backoff recorded
// in the report. The zero flag yields the zero policy (one attempt).
func (f Flags) RetryPolicy() engine.RetryPolicy {
	if f.Retry <= 0 {
		return engine.RetryPolicy{}
	}
	return engine.RetryPolicy{MaxAttempts: f.Retry, Backoff: 100 * time.Millisecond}
}

// Options tunes session construction per CLI.
type Options struct {
	// ForceMetrics keeps the registry on even when no -metrics-out /
	// -serve / -ledger-out asked for it (branchscope's -v table reads
	// the registry unconditionally).
	ForceMetrics bool
	// Status and Ready feed /statusz and /readyz when -serve is set.
	Status func() obs.Status
	Ready  func() bool
	// LogWriter overrides the log destination (default os.Stderr;
	// tests pass a buffer). Stdout is never an option: it is reserved
	// for the deterministic report.
	LogWriter io.Writer
}

// Session is one CLI run's observability state.
type Session struct {
	// Log is the process logger (stderr), never nil.
	Log *slog.Logger
	// Metrics is nil unless requested (see Options.ForceMetrics).
	Metrics *telemetry.Registry
	// Trace is nil unless -trace-out was given.
	Trace *telemetry.Tracer
	// Ledger is nil unless -ledger-out was given; nil-safe to use.
	Ledger *obs.Ledger
	// Deltas attributes per-task metrics windows for ledger records;
	// nil-safe to use.
	Deltas *obs.DeltaRecorder

	prog       string
	flags      Flags
	ledgerFile *os.File
	cpuFile    *os.File
	server     *obs.Handle
	closed     bool
}

// NewSession validates the shared flags and opens every requested
// sink: logger, registry, tracer, ledger file (append mode — ledgers
// accumulate across runs), CPU profile, and the obs HTTP server. On
// error, everything already opened is closed again.
func NewSession(prog string, f Flags, o Options) (*Session, error) {
	logw := o.LogWriter
	if logw == nil {
		logw = os.Stderr
	}
	log, err := obs.NewLogger(logw, f.LogFormat, f.LogLevel)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", prog, err)
	}
	s := &Session{Log: log, prog: prog, flags: f}

	if o.ForceMetrics || f.MetricsOut != "" || f.Serve != "" || f.LedgerOut != "" {
		s.Metrics = telemetry.NewRegistry()
	}
	if f.TraceOut != "" {
		s.Trace = telemetry.NewTracer()
	}
	if f.LedgerOut != "" {
		lf, err := os.OpenFile(f.LedgerOut, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("%s: opening ledger: %w", prog, err)
		}
		s.ledgerFile = lf
		s.Ledger = obs.NewLedger(lf)
		s.Deltas = obs.NewDeltaRecorder(s.Metrics)
	}
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("%s: %w", prog, err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			s.closeFiles()
			return nil, fmt.Errorf("%s: starting CPU profile: %w", prog, err)
		}
		s.cpuFile = cf
	}
	if f.Serve != "" {
		srv := &obs.Server{
			Program:    prog,
			Metrics:    s.Metrics,
			Status:     o.Status,
			Ready:      o.Ready,
			Introspect: leakage.LatestIntrospection,
			Log:        log,
		}
		h, err := srv.Start(f.Serve)
		if err != nil {
			s.stopProfile()
			s.closeFiles()
			return nil, fmt.Errorf("%s: %w", prog, err)
		}
		s.server = h
		log.Info("observability server listening",
			"addr", h.Addr(), "endpoints", "/metrics /leakage /introspect/pht /statusz /healthz /readyz /debug/pprof")
	}
	return s, nil
}

func (s *Session) stopProfile() {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
	}
}

func (s *Session) closeFiles() {
	if s.ledgerFile != nil {
		s.ledgerFile.Close()
		s.ledgerFile = nil
	}
}

// Close flushes every sink. It must run on every exit path (defer it
// right after NewSession) — in particular on the SIGINT/SIGTERM
// cancellation path, where the partial run's metrics, trace, and
// ledger are exactly what a debugging user needs. Idempotent; returns
// the joined errors of all sinks.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var errs []error

	if s.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := s.server.Shutdown(ctx); err != nil {
			errs = append(errs, fmt.Errorf("shutting down observability server: %w", err))
		}
		cancel()
	}
	if s.flags.MetricsOut != "" {
		if err := WriteFile(s.flags.MetricsOut, s.Metrics.Snapshot().WriteJSON); err != nil {
			errs = append(errs, fmt.Errorf("writing metrics: %w", err))
		} else {
			s.Log.Info("metrics written", "path", s.flags.MetricsOut)
		}
	}
	if s.flags.TraceOut != "" {
		if err := WriteFile(s.flags.TraceOut, s.Trace.WriteJSON); err != nil {
			errs = append(errs, fmt.Errorf("writing trace: %w", err))
		} else {
			s.Log.Info("trace written", "path", s.flags.TraceOut, "viewer", "ui.perfetto.dev")
		}
	}
	if s.flags.LeakageOut != "" {
		if err := WriteFile(s.flags.LeakageOut, leakage.WriteLatestReport); err != nil {
			errs = append(errs, fmt.Errorf("writing leakage report: %w", err))
		} else {
			s.Log.Info("leakage report written", "path", s.flags.LeakageOut, "schema", leakage.Schema)
		}
	}
	if s.flags.IntrospectOut != "" {
		write := func(w io.Writer) error {
			return obs.WriteIntrospection(w, leakage.LatestIntrospection())
		}
		if err := WriteFile(s.flags.IntrospectOut, write); err != nil {
			errs = append(errs, fmt.Errorf("writing introspection snapshot: %w", err))
		} else {
			s.Log.Info("introspection snapshot written", "path", s.flags.IntrospectOut, "schema", obs.IntrospectSchema)
		}
	}
	if s.ledgerFile != nil {
		if err := s.ledgerFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("closing ledger: %w", err))
		} else {
			s.Log.Info("ledger appended", "path", s.flags.LedgerOut, "schema", obs.LedgerSchema)
		}
		s.ledgerFile = nil
	}
	s.stopProfile()
	if s.flags.MemProfile != "" {
		runtime.GC()
		if err := WriteFile(s.flags.MemProfile, pprof.WriteHeapProfile); err != nil {
			errs = append(errs, fmt.Errorf("writing heap profile: %w", err))
		}
	}
	return errors.Join(errs...)
}

// WriteFile streams writer-based output (WriteJSON and friends) into
// path, creating or truncating it.
func WriteFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
