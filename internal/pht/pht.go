// Package pht implements the pattern history table: the array of
// saturating-counter FSM entries at the core of a directional branch
// predictor, together with the index functions that map a branch to an
// entry.
//
// BranchScope's central observation is that when the 1-level (bimodal)
// predictor is in use, the PHT entry is a pure function of the branch
// virtual address, so two processes that place branches at the same
// virtual address collide in the same entry. The index functions here
// implement the bimodal scheme (address modulo table size, byte
// granularity per §6.3), the gshare scheme (address XOR global history),
// and a keyed randomized scheme used by the §10 mitigation study.
package pht

import (
	"fmt"

	"branchscope/internal/fsm"
	"branchscope/internal/rng"
)

// Table is a pattern history table: Size saturating counters sharing one
// FSM spec. The zero value is not usable; construct with New.
type Table struct {
	spec    *fsm.Spec
	entries []uint8
	// plane is the spec's compiled transition plane (see fsm.Plane),
	// cached so the deterministic Update fast path is a single indexed
	// load with no method call or probability check.
	plane []uint8

	// stochastic selects the slow Update path. It is recomputed by
	// SetStochastic so the hot path pays one boolean test instead of a
	// float compare plus a nil check per retired branch.
	stochastic bool
	// updateProb, when < 1, makes counter updates stochastic: each
	// update is applied with this probability. This implements the
	// "more stochastic FSM" hardware mitigation sketched in §10.2.
	updateProb float64
	rnd        *rng.Source
}

// New returns a table of size entries, each initialized to the spec's
// fresh-entry state. It panics if size is not positive.
func New(spec *fsm.Spec, size int) *Table {
	if size <= 0 {
		panic("pht: table size must be positive")
	}
	t := &Table{spec: spec, entries: make([]uint8, size), plane: spec.Plane(), updateProb: 1}
	t.Reset()
	return t
}

// SetStochastic makes updates apply only with probability p, drawing
// randomness from rnd. Passing p >= 1 restores deterministic updates.
// The deterministic/stochastic fork is resolved here, once, not per
// update.
func (t *Table) SetStochastic(p float64, rnd *rng.Source) {
	t.updateProb = p
	t.rnd = rnd
	t.stochastic = p < 1 && rnd != nil
}

// Size returns the number of entries.
func (t *Table) Size() int { return len(t.entries) }

// Spec returns the FSM spec shared by all entries.
func (t *Table) Spec() *fsm.Spec { return t.spec }

// Reset returns every entry to the fresh-entry state.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = t.spec.Init
	}
}

// Predict returns the predicted direction of entry idx.
func (t *Table) Predict(idx int) bool {
	return t.spec.Predict(t.entries[idx])
}

// Update advances entry idx by one observed outcome. The deterministic
// fast path is branch-free apart from the taken bit: a direct step
// through the compiled transition plane. Stochastic tables (§10.2
// mitigation) take the retained slow path, whose per-update randomness
// draw order is unchanged.
func (t *Table) Update(idx int, taken bool) {
	if t.stochastic {
		t.updateStochastic(idx, taken)
		return
	}
	b := uint(0)
	if taken {
		b = 1
	}
	t.entries[idx] = t.plane[uint(t.entries[idx])<<1|b]
}

func (t *Table) updateStochastic(idx int, taken bool) {
	if !t.rnd.Chance(t.updateProb) {
		return
	}
	t.entries[idx] = t.spec.Next(t.entries[idx], taken)
}

// Raw exposes the live entry array and the compiled transition plane so
// the BPU can step counters inline on its per-branch path without a
// method call per update. Callers must treat the plane as immutable and
// must not resize either slice; entry writes must go through the same
// transition discipline Update enforces. Restore copies in place, so
// the slices stay valid for the table's lifetime.
func (t *Table) Raw() (entries, plane []uint8) { return t.entries, t.plane }

// Stochastic reports whether updates currently take the stochastic slow
// path (§10.2 mitigation). Callers inlining updates via Raw must check
// this once and fall back to Update when set.
func (t *Table) Stochastic() bool { return t.stochastic }

// State returns the internal FSM state of entry idx. This is a simulator
// inspection hook used by white-box tests and ground-truth checks; attack
// code must not call it.
func (t *Table) State(idx int) uint8 { return t.entries[idx] }

// SetState forces entry idx into a specific state. Simulator/test hook.
func (t *Table) SetState(idx int, state uint8) {
	if !t.spec.Valid(state) {
		panic(fmt.Sprintf("pht: invalid state %d for %s", state, t.spec.Name))
	}
	t.entries[idx] = state
}

// Label returns the architectural label of entry idx. Simulator/test hook.
func (t *Table) Label(idx int) fsm.Label { return t.spec.Label(t.entries[idx]) }

// Snapshot returns a copy of all entry states, for checkpoint/replay.
func (t *Table) Snapshot() []uint8 {
	return append([]uint8(nil), t.entries...)
}

// Restore reinstates a snapshot previously produced by Snapshot. It panics
// on a size mismatch.
func (t *Table) Restore(snap []uint8) {
	if len(snap) != len(t.entries) {
		panic("pht: snapshot size mismatch")
	}
	copy(t.entries, snap)
}

// Introspection is a canonical-JSON snapshot of a table's per-entry
// 2-bit counter state: the FSM name, the raw entry states (marshals as
// base64 of one byte per entry), and a count per architectural label.
// Map keys marshal name-sorted, so identical table states produce
// byte-identical JSON.
type Introspection struct {
	FSM         string         `json:"fsm"`
	Size        int            `json:"size"`
	StateCounts map[string]int `json:"state_counts"`
	Entries     []byte         `json:"entries"`
}

// Introspect captures the table's current per-entry state. The result
// is a self-contained copy, safe to hold across further updates.
func (t *Table) Introspect() Introspection {
	in := Introspection{
		FSM:         t.spec.Name,
		Size:        len(t.entries),
		StateCounts: make(map[string]int),
		Entries:     append([]byte(nil), t.entries...),
	}
	for _, s := range t.entries {
		in.StateCounts[t.spec.Label(s).String()]++
	}
	return in
}

// Fold mixes the high half of a branch address into its low bits before
// table indexing. Real front-ends hash a wide slice of the address (prior
// BTB work exploited address bits up to bit 30); a pure low-bit modulo
// would make all address bits above the table index invisible, which
// contradicts the ability of branch-predictor side channels to
// de-randomize ASLR slides (§9.2). The fold preserves every observation
// of §6.3: single-byte index granularity, and exact periodicity at the
// table size within any 64 KiB-aligned probing window (the paper's Figure
// 5 window 0x300000–0x30ffff is one such window). It is exported so the
// BPU's resolved-site cache (see internal/bpu) can hoist it out of the
// per-branch gshare index computation.
func Fold(addr uint64) uint64 {
	return addr ^ (addr >> 16)
}

// IndexMod reduces a hash to a table index. Every realistic table size
// in the model is a power of two, where the reduction is a single mask;
// the modulo fallback keeps arbitrary sizes (e.g. odd partition spans)
// producing bit-identical values to the original `%`-based indexing.
func IndexMod(x uint64, size int) int {
	if m := uint64(size) - 1; uint64(size)&m == 0 {
		return int(x & m)
	}
	return int(x % uint64(size))
}

// BimodalIndex maps a branch address to a PHT entry for the 1-level
// predictor: the folded address modulo the table size, with single-byte
// granularity as discovered in §6.3 ("the granularity of PHT's indexing
// function is a single byte").
func BimodalIndex(addr uint64, size int) int {
	return IndexMod(Fold(addr), size)
}

// GshareIndex maps a branch address and global history register value to
// a PHT entry for the 2-level predictor: the folded address XORed with
// the history, modulo table size.
func GshareIndex(addr, ghr uint64, size int) int {
	return IndexMod(Fold(addr)^ghr, size)
}

// KeyedIndex is the randomized-index mitigation of §10.2: the address is
// mixed with a per-security-domain key before indexing, so an attacker in
// another domain cannot construct predictable collisions. The mix is a
// 64-bit finalizer, not a cryptographic primitive; the mitigation study
// only needs collision unpredictability, not secrecy of the key.
func KeyedIndex(addr, key uint64, size int) int {
	x := addr ^ key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return IndexMod(x, size)
}
